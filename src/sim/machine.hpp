#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "protocol/protocol_spec.hpp"
#include "sim/dispatch.hpp"
#include "sim/network.hpp"
#include "sim/types.hpp"

namespace ccsql::sim {

/// Outcome of a simulation run.
struct SimResult {
  bool completed = false;   // all injected transactions finished
  bool deadlocked = false;  // no progress with messages in flight
  bool stalled = false;     // hit max_steps without completing
  std::uint64_t steps = 0;
  int transactions_done = 0;
  /// Wall-clock duration of run() (throughput reporting only; every other
  /// field is deterministic for a given config and seed).
  double seconds = 0;
  /// Rows the tables could not cover (specification incompleteness) and
  /// coherence-monitor violations; empty on a healthy run.
  std::vector<std::string> errors;
  std::string deadlock_report;
  /// Per-run event counters (messages per VC, table hits/misses, stalls,
  /// cycle-model charges, events/sec).
  SimCounters counters;

  [[nodiscard]] bool healthy() const {
    return completed && !deadlocked && errors.empty();
  }
  /// Simulator events per wall-clock second (the scale-out throughput
  /// metric; also stored in counters.events_per_sec).
  [[nodiscard]] std::uint64_t events_per_sec() const {
    return counters.events_per_sec;
  }
};

/// A table-driven execution of the ASURA protocol: quads with a node each
/// (cache + node controller), a home engine per quad (directory + memory
/// controller) and a remote snoop engine, wired by finite virtual channels
/// per the chosen assignment.  All control decisions come from the
/// generated controller tables — the simulator owns state and transport
/// only, so a wrong table row surfaces as a dynamic error here.
class Machine {
 public:
  // ---- Controller-state records (public: Snapshot exposes them) -----------
  struct DirLine {
    Value dirst;             // I / SI / MESI
    std::set<QuadId> pv;     // sharers / owner
    Value bdirst;            // I or a busy state
    int pending = 0;         // outstanding snoop acks
    QuadId requester = -1;   // local node of the in-flight transaction
    std::int64_t held = -1;  // buffered data version
    std::int64_t txver = -1; // data version carried by the transaction
  };

  struct HomeEngine {
    std::map<Addr, DirLine> dir;
    std::map<Addr, std::int64_t> memory;
    int cooldown = 0;  // memory-latency countdown
  };

  struct Node {
    std::map<Addr, Value> cst;             // cache line states
    std::map<Addr, std::int64_t> cver;     // cache data versions
    Value ncst;                            // node controller state
    Addr cur = -1;                         // outstanding address
    Value iocst;                           // I/O controller state
    Addr io_cur = -1;                      // outstanding I/O address
    std::deque<SimMessage> outbox;         // the RAC decoupling buffer
    std::deque<std::pair<Value, Addr>> scripted;
    int random_remaining = 0;
    int done = 0;
    /// Per-node phase counter driving the deterministic workload shapes
    /// (Workload::kLock and friends); untouched by kRandom and by the
    /// exploration interface, so state encodings need not carry it.
    std::uint64_t wl_tick = 0;
  };

  /// Compiles the controller tables privately (per-machine cost, as the
  /// original TableIndex path paid; SimConfig::dense_dispatch picks the
  /// lookup engine).
  Machine(const ProtocolSpec& spec, const ChannelAssignment& v,
          SimConfig config);

  /// Shares a precompiled dispatch across machines — the sweep engine's
  /// constructor: compilation is paid once, every run reuses it read-only.
  /// `tables` must be dense-compiled (hashed mode owns mutable TableIndex
  /// state) and must outlive the machine, as must the spec it came from.
  Machine(const ProtocolSpec& spec, const ChannelAssignment& v,
          SimConfig config, std::shared_ptr<const CompiledTables> tables);

  /// Pre-establishes a line's global state: `dirst` in {I, SI, MESI}, with
  /// the given holders (sharers for SI, the single owner for MESI).
  void set_line(Addr addr, std::string_view dirst,
                const std::vector<QuadId>& holders);

  /// Scripts a processor operation (prd/pwr/pup/pwb/pfl); scripted ops are
  /// issued in order per node, each when the node controller is idle.
  void script(QuadId node, std::string_view op, Addr addr);

  /// Enables the configured workload shape (SimConfig::workload): each node
  /// issues `transactions_per_node` legal operations.
  void enable_workload();

  /// Back-compat alias: enables the workload budget (the legacy name; the
  /// shape actually generated is SimConfig::workload).
  void enable_random_workload() { enable_workload(); }

  /// Extra scheduler steps the memory controller waits between messages
  /// (models memory latency; the Figure 4 interleaving needs a slow
  /// memory).  Also applied as the initial busy time.
  void set_memory_latency(int steps) {
    memory_latency_ = steps;
    for (auto& he : homes_) he.cooldown = steps;
  }

  SimResult run();

  /// Quiescent-state cross-check (directory vs caches); called by run()
  /// at completion and available to tests.
  [[nodiscard]] std::vector<std::string> check_quiescent_state() const;

  // ---- Single-action interface (exhaustive exploration) --------------------
  // The explicit-state baseline (checks/reach.hpp) drives the machine one
  // atomic action at a time and snapshots/restores state between branches.

  struct Action {
    enum class Kind { kDeliver, kDrain, kInject };
    Kind kind = Kind::kDeliver;
    Network::QueueRef queue;  // kDeliver
    QuadId node = -1;         // kDrain / kInject
    Value op;                 // kInject (processor/device op)
    Addr addr = -1;           // kInject

    [[nodiscard]] std::string to_string() const;
  };

  /// Candidate actions in the current state.  A candidate may still fail
  /// to apply (blocked output channel): apply_action reports that.
  [[nodiscard]] std::vector<Action> possible_actions() const;

  /// Applies one action; returns true iff the state advanced.
  bool apply_action(const Action& action);

  /// Opaque copy of the entire mutable state.
  struct Snapshot {
    std::vector<HomeEngine> homes;
    std::vector<Node> nodes;
    std::map<Addr, std::int64_t> gv;
    Network::State net;
    std::vector<std::string> errors;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  /// Canonical encoding of the state, for visited-set hashing.
  [[nodiscard]] std::string fingerprint() const;

  // ---- Hashed canonical encodings (parallel exploration) -------------------
  // The parallel explorer (checks/reach.hpp) keys its visited set on 128-bit
  // hashes of a numeric state encoding instead of fingerprint() strings, and
  // canonicalizes modulo the protocol's structural symmetry: quads are
  // interchangeable, and so are addresses within one home class, as long as
  // both are relabeled consistently (home_of must commute with the
  // relabeling).

  /// A joint relabeling of quad and address identifiers: old id -> new id.
  /// Sound when `addr` maps every home class onto the class of the permuted
  /// home, i.e. addr[a] % n_quads == quad[a % n_quads] for all a.
  struct Relabeling {
    std::vector<QuadId> quad;
    std::vector<Addr> addr;
  };

  /// Appends the canonical numeric encoding of the current state to `out`,
  /// every quad/address id relabeled through `relabel` (identity when null).
  /// Two states encode equal iff fingerprint() distinguishes them equal
  /// under the same relabeling; data versions are dense-ranked per address
  /// exactly as in fingerprint().
  void encode_state(std::vector<std::uint64_t>& out,
                    const Relabeling* relabel = nullptr) const;

  /// 128-bit splitmix-style hash of encode_state() under one relabeling.
  [[nodiscard]] std::array<std::uint64_t, 2> state_hash(
      const Relabeling* relabel = nullptr) const;

  /// Orbit-canonical hash: the minimum state_hash over every relabeling in
  /// `group` (the identity hash when the group is empty).  Equivalent states
  /// — equal up to a group element — collapse onto one key.
  [[nodiscard]] std::array<std::uint64_t, 2> canonical_hash(
      const std::vector<Relabeling>& group) const;

  /// Virtual channels holding at least one queued message (deadlock
  /// classification: which VCG channels are actually wedged).
  [[nodiscard]] std::vector<Value> occupied_vcs() const {
    return net_.occupied_vcs();
  }

  /// True when nothing is in flight and every controller is idle.
  [[nodiscard]] bool quiescent() const;

  [[nodiscard]] const std::vector<std::string>& errors() const noexcept {
    return errors_;
  }
  void clear_errors() { errors_.clear(); }

  /// Remaining random-workload budget across all nodes (0 in scripted use).
  [[nodiscard]] int injection_budget() const;

  /// Occupied-channel dump (deadlock reporting).
  [[nodiscard]] std::string describe_network() const {
    return net_.describe_blocked();
  }

  /// Event counters so far (hit/miss accounting is per-machine even when
  /// the dispatch tables are shared).
  [[nodiscard]] SimCounters counters() const;

 private:

  // -- helpers ---------------------------------------------------------------
  [[nodiscard]] QuadId home_of(Addr a) const {
    return a % config_.n_quads;
  }
  /// Sorted distinct live data versions per address — the order-preserving
  /// dense-rank normalisation both fingerprint() and encode_state() apply so
  /// the visited set is finite.  Indexed by address (0..n_addrs-1); a
  /// version's rank is its position in the address's vector.
  [[nodiscard]] std::vector<std::vector<std::int64_t>> version_table() const;
  /// encode_state with a precomputed version table (the relabeling-invariant
  /// part), so orbit canonicalization pays for the ranking only once.
  void encode_with(std::vector<std::uint64_t>& out, const Relabeling* relabel,
                   const std::vector<std::vector<std::int64_t>>& vers) const;
  DirLine& line(QuadId home, Addr a);
  Node& node(QuadId q) { return nodes_[static_cast<std::size_t>(q)]; }
  static Value enc_count(std::size_t n);

  /// Controller-table lookup with per-run hit/miss accounting (the
  /// dispatch structures may be shared across machines, so the counters
  /// live here, not there).
  std::optional<std::size_t> lookup(const ControllerDispatch& t,
                                    std::initializer_list<Value> key) {
    auto row = t.find(key);
    if (row) {
      ++counters_.table_hits;
    } else {
      ++counters_.table_misses;
    }
    return row;
  }

  /// Snoop targets for the row being applied (fills snoop_scratch_).
  const std::vector<QuadId>& snoop_targets(const DirLine& l,
                                           QuadId requester);

  // -- controller steps (return true on progress) ----------------------------
  bool step_directory(QuadId q, const Network::QueueRef& ref,
                      const SimMessage& msg);
  bool step_memory(QuadId q, const Network::QueueRef& ref,
                   const SimMessage& msg);
  bool step_rsn(QuadId q, const Network::QueueRef& ref,
                const SimMessage& msg);
  bool step_node_response(QuadId q, const Network::QueueRef& ref,
                          const SimMessage& msg);
  bool step_ioc(QuadId q, const Network::QueueRef& ref,
                const SimMessage& msg);
  bool drain_outbox(QuadId q);
  bool inject(QuadId q);

  /// Routes a queue-head message to its consuming controller.
  bool deliver(QuadId q, const Network::QueueRef& ref, const SimMessage& msg);

  /// net_.send plus counter/trace bookkeeping.
  void post(const SimMessage& msg, QuadId home);
  /// net_.pop plus counter bookkeeping.
  void consume(const Network::QueueRef& ref);
  /// True when the global tracer wants per-event instants (constant false
  /// when instrumentation is compiled out) — guard before building strings.
  [[nodiscard]] static bool tracing() noexcept;
  /// Emits a per-event trace instant; call only under tracing().
  void trace_step(const char* what, QuadId q, const SimMessage& msg,
                  std::string_view extra = {});

  /// Issues one processor/device operation (hit handling included); true on
  /// progress.
  bool issue_op(QuadId q, Value op, Addr addr);

  /// Transaction-generating operations legal for this node right now.
  [[nodiscard]] std::vector<std::pair<Value, Addr>> legal_ops(QuadId q) const;

  /// Next (op, addr) for a deterministic workload shape (kLock etc.),
  /// legality-adjusted against the node's current cache state.
  [[nodiscard]] std::pair<Value, Addr> workload_op(QuadId q) const;

  /// One random-workload (op, addr) draw; advances rng_.
  [[nodiscard]] std::pair<Value, Addr> random_op(QuadId q);

  /// Applies a cache command via the CC table; returns the output message
  /// type (cack/cdata/cwbdata/hit/miss or NULL).
  Value apply_cache(QuadId q, Value cmd, Addr addr);

  /// Applies a node-internal NC input (wbcancel / synthetic retry) via the
  /// NC table — no network message involved.
  void apply_nc_internal(QuadId q, Value type, Addr addr);

  void record_error(std::string what);
  void check_swmr(Addr addr);

  const ProtocolSpec* spec_;
  SimConfig config_;
  Network net_;
  int memory_latency_ = 0;
  int c2c_cost_ = 0;  // precomputed CycleModel::c2c_cycles(n_quads)

  /// The compiled controller tables — shared read-only across a sweep's
  /// machines, or privately compiled by the two-argument constructor.
  std::shared_ptr<const CompiledTables> tables_;

  std::vector<HomeEngine> homes_;
  std::vector<Node> nodes_;
  std::map<Addr, std::int64_t> gv_;  // committed write versions

  std::vector<std::string> errors_;
  std::mt19937 rng_;
  SimCounters counters_;
  /// Per-VC send counts by Network VC code; counters() folds these into
  /// SimCounters::per_vc_sent (a map op per posted message is hot-path
  /// cost the flat array avoids).
  std::vector<std::uint64_t> vc_sent_;
  std::uint64_t now_ = 0;

  // Reusable hot-path scratch (the scheduler loop is allocation-free in
  // steady state; these only grow to high-water marks).
  std::vector<Network::QueueRef> queue_scratch_;
  std::vector<SimMessage> dir_out_;
  std::vector<QuadId> snoop_scratch_;
};

}  // namespace ccsql::sim
