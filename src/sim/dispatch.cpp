#include "sim/dispatch.hpp"

#include <algorithm>

#include "protocol/asura/asura.hpp"
#include "protocol/protocol_spec.hpp"
#include "relational/error.hpp"

namespace ccsql::sim {

ControllerDispatch::ControllerDispatch(const Table& table,
                                       std::vector<std::string> key_columns,
                                       Mode mode)
    : table_(&table) {
  if (mode == Mode::kDense) {
    // One code table per key column: the distinct symbols appearing in the
    // column, densely renumbered.  A queried symbol outside the column's
    // domain can match no row, so code 0 doubles as an early miss.
    std::vector<ColumnView> cols;
    cols.reserve(key_columns.size());
    for (const auto& name : key_columns) {
      cols.push_back(table.column(table.schema().index_of(name)));
    }
    key_cols_.resize(cols.size());
    std::size_t slots = 1;
    for (std::size_t k = 0; k < cols.size() && slots <= kDenseLimit; ++k) {
      KeyCol& kc = key_cols_[k];
      std::uint16_t next = 0;
      for (std::size_t r = 0; r < table.row_count(); ++r) {
        const std::uint32_t id = cols[k][r].id();
        if (id >= kc.codes.size()) kc.codes.resize(id + 1, 0);
        if (kc.codes[id] == 0) kc.codes[id] = ++next;
      }
      slots *= next == 0 ? 1 : next;
    }
    if (slots <= kDenseLimit) {
      std::uint32_t stride = 1;
      for (KeyCol& kc : key_cols_) {
        kc.stride = stride;
        const std::uint16_t card =
            kc.codes.empty()
                ? 0
                : *std::max_element(kc.codes.begin(), kc.codes.end());
        stride *= card == 0 ? 1 : card;
      }
      dense_rows_.assign(slots, -1);
      for (std::size_t r = 0; r < table.row_count(); ++r) {
        std::size_t idx = 0;
        for (std::size_t k = 0; k < cols.size(); ++k) {
          idx += static_cast<std::size_t>(
                     key_cols_[k].codes[cols[k][r].id()] - 1) *
                 key_cols_[k].stride;
        }
        if (dense_rows_[idx] >= 0) {
          throw Error("ControllerDispatch: duplicate key tuple at row " +
                      std::to_string(r));
        }
        dense_rows_[idx] = static_cast<std::int32_t>(r);
      }
      return;
    }
    // Sparse/overflow key space: fall through to the hashed fallback.
    key_cols_.clear();
  }
  fallback_ = std::make_unique<TableIndex>(table, std::move(key_columns));
}

ControllerDispatch::Col ControllerDispatch::col(std::string_view name) {
  const Col handle = static_cast<Col>(col_names_.size());
  col_names_.emplace_back(name);
  if (!dense_rows_.empty()) {
    col_data_.push_back(
        table_->column(table_->schema().index_of(name)).data());
  }
  return handle;
}

CompiledTables::CompiledTables(const ProtocolSpec& spec,
                               ControllerDispatch::Mode mode)
    : d(spec.database().catalog().get(asura::kDirectory),
        {"inmsg", "dirst", "dirlookup", "dirpv", "bdirst", "bdirpv"}, mode),
      m(spec.database().catalog().get(asura::kMemory), {"inmsg"}, mode),
      nc(spec.database().catalog().get(asura::kNode), {"inmsg", "ncst"},
         mode),
      cc(spec.database().catalog().get(asura::kCache), {"inmsg", "cst"},
         mode),
      rsn(spec.database().catalog().get(asura::kRemoteSnoop),
          {"inmsg", "rsnst"}, mode),
      ioc(spec.database().catalog().get(asura::kIo), {"inmsg", "iocst"},
          mode) {
  dc = {d.col("locmsg"),   d.col("remmsg"),   d.col("memmsg"),
        d.col("datapath"), d.col("nxtdirst"), d.col("nxtdirpv"),
        d.col("nxtbdirst"), d.col("nxtbdirpv"), d.col("bdirop")};
  mc = {m.col("outmsg"), m.col("memop")};
  ncc = {nc.col("netmsg"), nc.col("fillmsg"), nc.col("nxtncst"),
         nc.col("nccmpl")};
  ccc = {cc.col("nxtcst"), cc.col("outmsg")};
  rsnc = {rsn.col("cmdmsg"), rsn.col("nxtrsnst"), rsn.col("homemsg")};
  iocc = {ioc.col("outmsg"), ioc.col("devmsg"), ioc.col("nxtiocst")};
}

std::shared_ptr<const CompiledTables> CompiledTables::compile(
    const ProtocolSpec& spec, ControllerDispatch::Mode mode) {
  return std::shared_ptr<const CompiledTables>(
      new CompiledTables(spec, mode));
}

}  // namespace ccsql::sim
