#include "sim/network.hpp"

#include <algorithm>
#include <sstream>

namespace ccsql::sim {

Network::Network(const ChannelAssignment& v, int n_quads, int capacity)
    : v_(&v), n_quads_(n_quads), capacity_(static_cast<std::size_t>(capacity)) {}

std::pair<Value, Value> Network::role_pair(const SimMessage& msg,
                                           QuadId /*home*/) const {
  return {msg.role_src, msg.role_dst};
}

std::optional<Value> Network::vc_of(const SimMessage& msg,
                                    QuadId home) const {
  auto [rs, rd] = role_pair(msg, home);
  return v_->vc_for(msg.type, rs, rd);
}

bool Network::can_send(const SimMessage& msg, QuadId home) const {
  const auto vc = vc_of(msg, home);
  if (!vc) return true;  // dedicated path, unbounded
  auto it = queues_.find(Key{msg.src, msg.dst, *vc});
  return it == queues_.end() || it->second.size() < capacity_;
}

void Network::send(const SimMessage& msg, QuadId home) {
  const auto vc = vc_of(msg, home);
  const Value channel = vc ? *vc : Value{};
  queues_[Key{msg.src, msg.dst, channel}].push_back(msg);
  ++in_flight_;
}

std::vector<Network::QueueRef> Network::queues_to(QuadId dst) const {
  std::vector<QueueRef> out;
  for (const auto& [key, queue] : queues_) {
    if (key.dst == dst && !queue.empty()) {
      out.push_back(QueueRef{key.src, key.dst, key.vc});
    }
  }
  return out;
}

const SimMessage* Network::front(const QueueRef& q) const {
  auto it = queues_.find(Key{q.src, q.dst, q.vc});
  if (it == queues_.end() || it->second.empty()) return nullptr;
  return &it->second.front();
}

void Network::pop(const QueueRef& q) {
  auto it = queues_.find(Key{q.src, q.dst, q.vc});
  if (it != queues_.end() && !it->second.empty()) {
    it->second.pop_front();
    --in_flight_;
  }
}

void Network::set_state(State state) {
  queues_ = std::move(state);
  in_flight_ = 0;
  for (const auto& [key, queue] : queues_) in_flight_ += queue.size();
}

std::string Network::describe_blocked() const {
  std::ostringstream os;
  for (const auto& [key, queue] : queues_) {
    if (queue.empty()) continue;
    os << "  " << (key.vc.is_null() ? "direct" : std::string(key.vc.str()))
       << " " << key.src << "->" << key.dst << " [" << queue.size() << "/"
       << capacity_ << "]:";
    for (const auto& m : queue) os << ' ' << m.to_string();
    os << '\n';
  }
  return os.str();
}

std::vector<Value> Network::occupied_vcs() const {
  std::vector<Value> out;
  for (const auto& [key, queue] : queues_) {
    if (queue.empty() || key.vc.is_null()) continue;
    out.push_back(key.vc);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ccsql::sim
