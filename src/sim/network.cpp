#include "sim/network.hpp"

#include <algorithm>
#include <sstream>

namespace ccsql::sim {

Network::Network(const ChannelAssignment& v, int n_quads, int capacity)
    : v_(&v),
      n_quads_(n_quads),
      capacity_(static_cast<std::size_t>(capacity)),
      vc_memo_(64),
      vc_values_{Value{}},
      dst_index_(static_cast<std::size_t>(n_quads)) {
  // Register every channel up front: vc_for's codomain is channels(), so
  // the code space — and with it every slot index — is fixed for the
  // Network's lifetime.
  for (const Value& vc : v.channels()) vc_values_.push_back(vc);
  vc_cap_ = vc_values_.size();
  rebuild_slots();
}

std::pair<Value, Value> Network::role_pair(const SimMessage& msg,
                                           QuadId /*home*/) const {
  return {msg.role_src, msg.role_dst};
}

Network::VcCode Network::code_of(const Value& vc) const {
  for (std::size_t i = 0; i < vc_values_.size(); ++i) {
    if (vc_values_[i] == vc) return static_cast<VcCode>(i);
  }
  return kNoCode;
}

void Network::vc_memo_grow() const {
  std::vector<VcMemoEntry> bigger(vc_memo_.size() * 2);
  const std::size_t mask = bigger.size() - 1;
  for (const VcMemoEntry& e : vc_memo_) {
    if (e.key_plus1 == 0) continue;
    std::size_t i = static_cast<std::size_t>(e.key_plus1) & mask;
    while (bigger[i].key_plus1 != 0) i = (i + 1) & mask;
    bigger[i] = e;
  }
  vc_memo_ = std::move(bigger);
}

Network::VcCode Network::vc_code(const SimMessage& msg, QuadId home) const {
  // Symbol ids are process-wide interning indices (far below 2^21), so the
  // triple packs into one 64-bit memo key; +1 keeps 0 free as the
  // empty-bucket marker.
  const std::uint64_t key1 =
      ((static_cast<std::uint64_t>(msg.type.id()) << 42) |
       (static_cast<std::uint64_t>(msg.role_src.id()) << 21) |
       msg.role_dst.id()) +
      1;
  const std::size_t mask = vc_memo_.size() - 1;
  std::size_t i = static_cast<std::size_t>(key1) & mask;
  while (true) {
    const VcMemoEntry& e = vc_memo_[i];
    if (e.key_plus1 == key1) return e.code;
    if (e.key_plus1 == 0) break;
    i = (i + 1) & mask;
  }
  auto [rs, rd] = role_pair(msg, home);
  const Value vc = v_->vc_for(msg.type, rs, rd).value_or(Value{});
  const VcCode code = code_of(vc);  // always registered: see constructor
  if (vc_memo_used_ * 2 >= vc_memo_.size()) {
    vc_memo_grow();
    const std::size_t m2 = vc_memo_.size() - 1;
    i = static_cast<std::size_t>(key1) & m2;
    while (vc_memo_[i].key_plus1 != 0) i = (i + 1) & m2;
  }
  vc_memo_[i] = VcMemoEntry{key1, code};
  ++vc_memo_used_;
  return code;
}

std::optional<Value> Network::vc_of(const SimMessage& msg,
                                    QuadId home) const {
  const VcCode code = vc_code(msg, home);
  if (code == 0) return std::nullopt;  // dedicated path
  return vc_values_[code];
}

void Network::index_queue(State::iterator it) {
  const std::uint32_t slot = static_cast<std::uint32_t>(
      slot_index(it->first.src, it->first.dst, code_of(it->first.vc)));
  auto& list = dst_index_[static_cast<std::size_t>(it->first.dst)];
  const auto pos = std::lower_bound(
      list.begin(), list.end(), it,
      [](const DstEntry& a, State::iterator b) { return a.it->first < b->first; });
  list.insert(pos, DstEntry{it, slot});
}

void Network::rebuild_slots() {
  for (const auto& [key, queue] : queues_) {
    // A snapshot can only hold channels this network created, but stay
    // safe against foreign states: register the stragglers.
    if (code_of(key.vc) == kNoCode) vc_values_.push_back(key.vc);
  }
  if (vc_values_.size() > vc_cap_) vc_cap_ = vc_values_.size();
  slots_.assign(static_cast<std::size_t>(n_quads_) *
                    static_cast<std::size_t>(n_quads_) * vc_cap_,
                nullptr);
  slot_len_.assign(slots_.size(), 0);
  dst_index_.assign(static_cast<std::size_t>(n_quads_), {});
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    const std::uint32_t slot = static_cast<std::uint32_t>(
        slot_index(it->first.src, it->first.dst, code_of(it->first.vc)));
    slots_[slot] = &it->second;
    slot_len_[slot] = static_cast<std::uint32_t>(it->second.size());
    // Map order is Key order, so plain append keeps each list sorted.
    dst_index_[static_cast<std::size_t>(it->first.dst)].push_back(
        DstEntry{it, slot});
  }
}

std::deque<SimMessage>* Network::ref_queue(const QueueRef& q) const {
  if (q.slot != kNoSlot) return slots_[q.slot];
  const VcCode code = code_of(q.vc);
  if (code == kNoCode) return nullptr;
  return slots_[slot_index(q.src, q.dst, code)];
}

bool Network::can_send(const SimMessage& msg, QuadId home) const {
  const VcCode code = vc_code(msg, home);
  if (code == 0) return true;  // dedicated path, unbounded
  return slot_len_[slot_index(msg.src, msg.dst, code)] < capacity_;
}

void Network::send_coded(const SimMessage& msg, VcCode code) {
  const std::size_t idx = slot_index(msg.src, msg.dst, code);
  std::deque<SimMessage>* q = slots_[idx];
  if (q == nullptr) {
    const auto it = queues_
                        .emplace(Key{msg.src, msg.dst, vc_values_[code]},
                                 std::deque<SimMessage>{})
                        .first;
    index_queue(it);
    q = &it->second;
    slots_[idx] = q;
  }
  q->push_back(msg);
  ++slot_len_[idx];
  ++in_flight_;
}

void Network::send(const SimMessage& msg, QuadId home) {
  send_coded(msg, vc_code(msg, home));
}

std::vector<Network::QueueRef> Network::queues_to(QuadId dst) const {
  std::vector<QueueRef> out;
  queues_to(dst, out);
  return out;
}

void Network::queues_to(QuadId dst, std::vector<QueueRef>& out) const {
  out.clear();
  for (const DstEntry& e : dst_index_[static_cast<std::size_t>(dst)]) {
    if (slot_len_[e.slot] != 0) {
      out.push_back(
          QueueRef{e.it->first.src, e.it->first.dst, e.it->first.vc, e.slot});
    }
  }
}

const SimMessage* Network::front(const QueueRef& q) const {
  const std::deque<SimMessage>* queue = ref_queue(q);
  if (queue == nullptr || queue->empty()) return nullptr;
  return &queue->front();
}

void Network::pop(const QueueRef& q) {
  std::deque<SimMessage>* queue = ref_queue(q);
  if (queue != nullptr && !queue->empty()) {
    queue->pop_front();
    --slot_len_[q.slot != kNoSlot
                    ? q.slot
                    : slot_index(q.src, q.dst, code_of(q.vc))];
    --in_flight_;
  }
}

void Network::set_state(State state) {
  queues_ = std::move(state);
  in_flight_ = 0;
  for (const auto& [key, queue] : queues_) in_flight_ += queue.size();
  rebuild_slots();
}

std::string Network::describe_blocked() const {
  std::ostringstream os;
  for (const auto& [key, queue] : queues_) {
    if (queue.empty()) continue;
    os << "  " << (key.vc.is_null() ? "direct" : std::string(key.vc.str()))
       << " " << key.src << "->" << key.dst << " [" << queue.size() << "/"
       << capacity_ << "]:";
    for (const auto& m : queue) os << ' ' << m.to_string();
    os << '\n';
  }
  return os.str();
}

std::vector<Value> Network::occupied_vcs() const {
  std::vector<Value> out;
  for (const auto& [key, queue] : queues_) {
    if (queue.empty() || key.vc.is_null()) continue;
    out.push_back(key.vc);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ccsql::sim
