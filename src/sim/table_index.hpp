#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/table.hpp"

namespace ccsql::sim {

/// Hash index over selected key columns of a controller table, used by the
/// simulator to look up the unique row matching a controller's current
/// input and state.  Duplicate key tuples are rejected at construction —
/// a controller table that is ambiguous under its lookup key cannot drive
/// hardware (or a simulator).
class TableIndex {
 public:
  TableIndex(const Table& table, std::vector<std::string> key_columns);

  /// Row index for the key values (same order as key_columns), or nullopt
  /// if the table has no such row (an illegal input combination — a
  /// specification incompleteness the simulator reports as an error).
  [[nodiscard]] std::optional<std::size_t> find(
      const std::vector<Value>& key) const;

  [[nodiscard]] const Table& table() const noexcept { return *table_; }

  /// Cell accessor for a found row.
  [[nodiscard]] Value at(std::size_t row, std::string_view column) const {
    return table_->at(row, table_->schema().index_of(column));
  }

  /// Lifetime lookup counters (observability; see ccsql::obs).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  static std::string key_string(const std::vector<Value>& key);

  const Table* table_;
  std::vector<std::size_t> key_cols_;
  std::unordered_map<std::string, std::size_t> index_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace ccsql::sim
