#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "relational/value.hpp"

namespace ccsql::sim {

/// Node/quad identifier.  The simulator models one node per quad (the
/// paper's quads contain 4 nodes; coherence traffic is quad-level, so one
/// representative node per quad exercises the same protocol paths).
using QuadId = int;

/// Cache-line address.  The home quad of an address is addr % n_quads.
using Addr = int;

/// A protocol message in flight.
struct SimMessage {
  Value type;        // catalogued message name
  Addr addr = 0;
  QuadId src = 0;
  QuadId dst = 0;
  /// Role-level (source, destination) as stamped by the emitting controller
  /// table row — the key into the virtual channel assignment V.  Roles are
  /// carried explicitly because co-located roles (the paper's quad
  /// placements) make them unrecoverable from the quad endpoints alone.
  Value role_src;
  Value role_dst;
  /// Data version carried by data-bearing messages (coherence monitor).
  std::int64_t version = -1;

  [[nodiscard]] std::string to_string() const {
    return std::string(type.str()) + "(a" + std::to_string(addr) + " " +
           std::to_string(src) + "->" + std::to_string(dst) + ")";
  }
};

/// Cycle-delay cost model (after the classic snooping-simulator numbers:
/// 100 cycles to reach main memory, `4N + (P+1)` for a cache-to-cache
/// block transfer of N words across P processors — the P+1 models the
/// coordination overhead — 2 cycles per bus/interconnect transaction, and
/// cache hits are free).  Every run charges these per event, so results
/// report cycles and events/cycle alongside raw step counts.
struct CycleModel {
  int memory_cycles = 100;     // cache <-> main memory access
  int bus_cycles = 2;          // per message placed on the interconnect
  int words_per_line = 4;      // N in the cache-to-cache formula
  /// Cache-to-cache block transfer: 4N + (P+1) for `quads` processors.
  [[nodiscard]] int c2c_cycles(int quads) const noexcept {
    return 4 * words_per_line + (quads + 1);
  }
};

/// Always-on per-run event counters (plain increments, cheap enough for the
/// hot path).  Flushed into the global ccsql::obs metrics at the end of a
/// run and printed by `ccsql sim --metrics`.
struct SimCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t table_hits = 0;    // controller-table lookups that matched
  std::uint64_t table_misses = 0;  // specification incompleteness
  std::uint64_t send_stalls = 0;   // consume deferred: an output channel full
  std::uint64_t ops_injected = 0;  // processor/device ops issued
  std::uint64_t cache_hits = 0;    // ops completed locally (0 cycles)
  // Cycle-cost breakdown (CycleModel); cycles is the sum of the parts.
  std::uint64_t cycles = 0;
  std::uint64_t mem_cycles = 0;    // 100-cycle memory accesses
  std::uint64_t bus_cycles = 0;    // 2-cycle interconnect transactions
  std::uint64_t c2c_cycles = 0;    // 4N+(P+1) cache-to-cache transfers
  /// Per-run throughput, set by Machine::run() from wall time.  A *rate*:
  /// deliberately not additive, so operator+= zeroes it — sweep aggregation
  /// recomputes it from the merged events() and the sweep's wall clock.
  std::uint64_t events_per_sec = 0;
  /// Messages sent per virtual channel; the NULL key is the dedicated path.
  std::map<Value, std::uint64_t> per_vc_sent;

  /// Simulator events: every message enqueue/dequeue and every injected
  /// operation — the unit the events/sec throughput figures count.
  [[nodiscard]] std::uint64_t events() const noexcept {
    return msgs_sent + msgs_recv + ops_injected;
  }

  /// Merges another run's counters (sweep aggregation).  All additive
  /// fields sum; events_per_sec is reset to 0 (rates do not sum).
  SimCounters& operator+=(const SimCounters& o);

  /// Aligned per-run table ("counter  value" lines, VC breakdown last).
  [[nodiscard]] std::string summary() const;
};

/// Workload shapes the simulator can generate (modeled on the classic
/// adaptive-coherence test programs: a test-and-set lock, a producer/
/// consumer hand-off, false sharing, and a streaming scan).  All are
/// deterministic per (shape, node, tick) — only kRandom draws from the
/// seeded RNG — so sweep results replay bit-identically.
enum class Workload {
  kRandom,            // the legacy seeded mixed workload
  kLock,              // all nodes contend on a test-and-set lock line
  kProducerConsumer,  // even nodes write a buffer ring, odd nodes read it
  kFalseSharing,      // node pairs ping-pong writes on one shared line
  kStreaming,         // sequential scans with no reuse
};

/// Workload name <-> enum (CLI / sweep grids).  Unknown names -> nullopt.
std::optional<Workload> parse_workload(std::string_view name);
std::string_view workload_name(Workload w);

/// Simulation configuration.
struct SimConfig {
  int n_quads = 2;
  int n_addrs = 4;
  /// Per-link per-channel FIFO capacity; small capacities expose the
  /// Figure 4 deadlock quickly.
  int channel_capacity = 1;
  /// Maximum scheduler steps before the run is declared stalled.
  std::uint64_t max_steps = 200000;
  /// Transactions to inject per node.
  int transactions_per_node = 50;
  /// Per-node budgets overriding transactions_per_node (index = node id;
  /// nodes beyond the vector keep the uniform budget).  Asymmetric budgets
  /// break quad interchangeability, so the reachability explorer disables
  /// symmetry reduction when this is set.
  std::vector<int> transactions_by_node;
  /// When non-empty, the random workload injects only these operation
  /// names (directed exploration of a suspected interleaving, e.g.
  /// {"prd", "patomic"} for the Figure 4 memory-interference wedge).
  std::vector<std::string> workload_ops;
  /// Workload shape driven by enable_workload() (kRandom reproduces the
  /// legacy enable_random_workload behavior exactly).
  Workload workload = Workload::kRandom;
  /// Cycle-delay model charged per event into SimCounters.
  CycleModel cycle_model;
  /// Controller-table lookup engine: precompiled dense dispatch (the fast
  /// path) vs the original hashed TableIndex (the differential baseline).
  bool dense_dispatch = true;
  unsigned seed = 1;
};

}  // namespace ccsql::sim
