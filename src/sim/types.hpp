#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "relational/value.hpp"

namespace ccsql::sim {

/// Node/quad identifier.  The simulator models one node per quad (the
/// paper's quads contain 4 nodes; coherence traffic is quad-level, so one
/// representative node per quad exercises the same protocol paths).
using QuadId = int;

/// Cache-line address.  The home quad of an address is addr % n_quads.
using Addr = int;

/// A protocol message in flight.
struct SimMessage {
  Value type;        // catalogued message name
  Addr addr = 0;
  QuadId src = 0;
  QuadId dst = 0;
  /// Role-level (source, destination) as stamped by the emitting controller
  /// table row — the key into the virtual channel assignment V.  Roles are
  /// carried explicitly because co-located roles (the paper's quad
  /// placements) make them unrecoverable from the quad endpoints alone.
  Value role_src;
  Value role_dst;
  /// Data version carried by data-bearing messages (coherence monitor).
  std::int64_t version = -1;

  [[nodiscard]] std::string to_string() const {
    return std::string(type.str()) + "(a" + std::to_string(addr) + " " +
           std::to_string(src) + "->" + std::to_string(dst) + ")";
  }
};

/// Always-on per-run event counters (plain increments, cheap enough for the
/// hot path).  Flushed into the global ccsql::obs metrics at the end of a
/// run and printed by `ccsql sim --metrics`.
struct SimCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t table_hits = 0;    // controller-table lookups that matched
  std::uint64_t table_misses = 0;  // specification incompleteness
  std::uint64_t send_stalls = 0;   // consume deferred: an output channel full
  std::uint64_t ops_injected = 0;  // processor/device ops issued
  /// Messages sent per virtual channel; the NULL key is the dedicated path.
  std::map<Value, std::uint64_t> per_vc_sent;

  /// Aligned per-run table ("counter  value" lines, VC breakdown last).
  [[nodiscard]] std::string summary() const;
};

/// Simulation configuration.
struct SimConfig {
  int n_quads = 2;
  int n_addrs = 4;
  /// Per-link per-channel FIFO capacity; small capacities expose the
  /// Figure 4 deadlock quickly.
  int channel_capacity = 1;
  /// Maximum scheduler steps before the run is declared stalled.
  std::uint64_t max_steps = 200000;
  /// Transactions to inject per node.
  int transactions_per_node = 50;
  /// Per-node budgets overriding transactions_per_node (index = node id;
  /// nodes beyond the vector keep the uniform budget).  Asymmetric budgets
  /// break quad interchangeability, so the reachability explorer disables
  /// symmetry reduction when this is set.
  std::vector<int> transactions_by_node;
  /// When non-empty, the random workload injects only these operation
  /// names (directed exploration of a suspected interleaving, e.g.
  /// {"prd", "patomic"} for the Figure 4 memory-interference wedge).
  std::vector<std::string> workload_ops;
  unsigned seed = 1;
};

}  // namespace ccsql::sim
