#include "sim/table_index.hpp"

#include "relational/error.hpp"

namespace ccsql::sim {

TableIndex::TableIndex(const Table& table,
                       std::vector<std::string> key_columns)
    : table_(&table) {
  key_cols_.reserve(key_columns.size());
  for (const auto& name : key_columns) {
    key_cols_.push_back(table.schema().index_of(name));
  }
  std::vector<ColumnView> cols;
  cols.reserve(key_cols_.size());
  for (std::size_t c : key_cols_) cols.push_back(table.column(c));
  std::vector<Value> key(key_cols_.size());
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    for (std::size_t k = 0; k < key_cols_.size(); ++k) {
      key[k] = cols[k][r];
    }
    if (!index_.emplace(key_string(key), r).second) {
      throw Error("TableIndex: duplicate key tuple at row " +
                  std::to_string(r));
    }
  }
}

std::optional<std::size_t> TableIndex::find(
    const std::vector<Value>& key) const {
  auto it = index_.find(key_string(key));
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

std::string TableIndex::key_string(const std::vector<Value>& key) {
  std::string s;
  for (Value v : key) {
    s += std::to_string(v.id());
    s += ',';
  }
  return s;
}

}  // namespace ccsql::sim
