#include "sim/machine.hpp"

#include <algorithm>
#include <sstream>

#include "obs/obs.hpp"
#include "protocol/asura/asura.hpp"
#include "relational/error.hpp"

namespace ccsql::sim {

std::string SimCounters::summary() const {
  std::ostringstream os;
  const auto line = [&os](std::string_view name, std::uint64_t value) {
    os << name;
    for (std::size_t i = name.size(); i < 22; ++i) os << ' ';
    os << value << "\n";
  };
  line("sim.msgs_sent", msgs_sent);
  line("sim.msgs_recv", msgs_recv);
  line("sim.table_hits", table_hits);
  line("sim.table_misses", table_misses);
  line("sim.send_stalls", send_stalls);
  line("sim.ops_injected", ops_injected);
  for (const auto& [vc, n] : per_vc_sent) {
    line("sim.vc_sent." +
             std::string(vc.is_null() ? std::string_view("direct")
                                      : vc.str()),
         n);
  }
  return os.str();
}

namespace {

Value v_of(std::string_view s) { return Symbol::intern(s); }

bool is_snoop(Value t) {
  return t == v_of("sinv") || t == v_of("sfetch") || t == v_of("sflush");
}

bool is_mem_request(Value t) {
  return t == v_of("mread") || t == v_of("mwrite") || t == v_of("mupd") ||
         t == v_of("mrmw") || t == v_of("wb");
}

}  // namespace

Machine::Machine(const ProtocolSpec& spec, const ChannelAssignment& v,
                 SimConfig config)
    : spec_(&spec),
      config_(config),
      net_(v, config.n_quads, config.channel_capacity),
      rng_(config.seed) {
  const Catalog& db = spec.database().catalog();
  d_index_ = std::make_unique<TableIndex>(
      db.get(asura::kDirectory),
      std::vector<std::string>{"inmsg", "dirst", "dirlookup", "dirpv",
                               "bdirst", "bdirpv"});
  m_index_ = std::make_unique<TableIndex>(db.get(asura::kMemory),
                                          std::vector<std::string>{"inmsg"});
  nc_index_ = std::make_unique<TableIndex>(
      db.get(asura::kNode), std::vector<std::string>{"inmsg", "ncst"});
  cc_index_ = std::make_unique<TableIndex>(
      db.get(asura::kCache), std::vector<std::string>{"inmsg", "cst"});
  rsn_index_ = std::make_unique<TableIndex>(
      db.get(asura::kRemoteSnoop),
      std::vector<std::string>{"inmsg", "rsnst"});
  ioc_index_ = std::make_unique<TableIndex>(
      db.get(asura::kIo), std::vector<std::string>{"inmsg", "iocst"});

  homes_.resize(static_cast<std::size_t>(config_.n_quads));
  nodes_.resize(static_cast<std::size_t>(config_.n_quads));
  for (auto& n : nodes_) {
    n.ncst = v_of("idle");
    n.iocst = v_of("idle");
  }
  for (Addr a = 0; a < config_.n_addrs; ++a) {
    gv_[a] = 0;
    homes_[static_cast<std::size_t>(home_of(a))].memory[a] = 0;
  }
}

Machine::DirLine& Machine::line(QuadId home, Addr a) {
  auto& dir = homes_[static_cast<std::size_t>(home)].dir;
  auto it = dir.find(a);
  if (it == dir.end()) {
    DirLine l;
    l.dirst = v_of("I");
    l.bdirst = v_of("I");
    it = dir.emplace(a, std::move(l)).first;
  }
  return it->second;
}

Value Machine::enc_count(std::size_t n) {
  if (n == 0) return v_of("zero");
  if (n == 1) return v_of("one");
  return v_of("gone");
}

void Machine::set_line(Addr addr, std::string_view dirst,
                       const std::vector<QuadId>& holders) {
  const QuadId home = home_of(addr);
  DirLine& l = line(home, addr);
  l.dirst = v_of(dirst);
  l.pv.clear();
  const bool owned = l.dirst == v_of("MESI");
  for (QuadId q : holders) {
    l.pv.insert(q);
    node(q).cst[addr] = owned ? v_of("M") : v_of("S");
    node(q).cver[addr] = gv_[addr];
  }
  if (owned && holders.size() == 1) {
    // The owner holds a version ahead of memory.
    gv_[addr] += 1;
    node(holders[0]).cver[addr] = gv_[addr];
  }
}

void Machine::script(QuadId n, std::string_view op, Addr addr) {
  node(n).scripted.emplace_back(v_of(op), addr);
}

void Machine::enable_random_workload() {
  for (std::size_t q = 0; q < nodes_.size(); ++q) {
    nodes_[q].random_remaining =
        q < config_.transactions_by_node.size()
            ? config_.transactions_by_node[q]
            : config_.transactions_per_node;
  }
}

std::vector<QuadId> Machine::snoop_targets(const DirLine& l,
                                           QuadId /*requester*/) const {
  // Snoops go to every presence-vector member, including the requester
  // itself when it is one (an upgrading sharer's engine acknowledges its
  // own invalidation): the coarse zero/one/gone encoding means the
  // directory cannot exclude the requester, so the pending count is always
  // the full holder count.
  return std::vector<QuadId>(l.pv.begin(), l.pv.end());
}

void Machine::post(const SimMessage& msg, QuadId home) {
  ++counters_.msgs_sent;
  ++counters_.per_vc_sent[net_.vc_of(msg, home).value_or(Value{})];
  net_.send(msg, home);
}

void Machine::consume(const Network::QueueRef& ref) {
  ++counters_.msgs_recv;
  net_.pop(ref);
}

bool Machine::tracing() noexcept {
#if defined(CCSQL_TRACING_DISABLED)
  return false;
#else
  return obs::Tracer::global().tracing();
#endif
}

void Machine::trace_step(const char* what, QuadId q, const SimMessage& msg,
                         std::string_view extra) {
  CCSQL_INSTANT(what, "sim", obs::arg("t", now_), obs::arg("node", q),
                obs::arg("msg", msg.to_string()), obs::arg("extra", extra));
#if defined(CCSQL_TRACING_DISABLED)
  (void)what;
  (void)q;
  (void)msg;
  (void)extra;
#endif
}

void Machine::record_error(std::string what) {
  CCSQL_INSTANT("sim.error", "sim", obs::arg("t", now_),
                obs::arg("what", what));
  if (errors_.size() < 32) {
    errors_.push_back("[" + std::to_string(now_) + "] " + std::move(what));
  }
}

void Machine::check_swmr(Addr addr) {
  int owners = 0, sharers = 0;
  for (const auto& n : nodes_) {
    auto it = n.cst.find(addr);
    if (it == n.cst.end()) continue;
    if (it->second == v_of("M") || it->second == v_of("E")) ++owners;
    if (it->second == v_of("S")) ++sharers;
  }
  if (owners > 1 || (owners == 1 && sharers > 0)) {
    record_error("SWMR violated at addr " + std::to_string(addr) + ": " +
                 std::to_string(owners) + " owners, " +
                 std::to_string(sharers) + " sharers");
  }
}

Value Machine::apply_cache(QuadId q, std::string_view cmd, Addr addr) {
  Node& n = node(q);
  Value cst = n.cst.count(addr) ? n.cst[addr] : v_of("I");
  auto row = cc_index_->find({v_of(cmd), cst});
  if (!row) {
    record_error("CC table has no row for (" + std::string(cmd) + ", " +
                 std::string(cst.str()) + ")");
    return Value{};
  }
  const Value nxt = cc_index_->at(*row, "nxtcst");
  if (!nxt.is_null()) {
    n.cst[addr] = nxt;
    check_swmr(addr);
  }
  return cc_index_->at(*row, "outmsg");
}

bool Machine::step_directory(QuadId q, const Network::QueueRef& ref,
                             const SimMessage& msg) {
  DirLine& l = line(q, msg.addr);
  const bool busy = l.bdirst != v_of("I");
  // While busy the directory entry lives in the busy directory: the stable
  // lookup reads invalid/empty (mutual-exclusion invariant).
  const Value dirst = busy ? v_of("I") : l.dirst;
  const Value dirpv = busy ? v_of("zero") : enc_count(l.pv.size());
  const Value bdirpv = enc_count(static_cast<std::size_t>(l.pending));
  // The directory lookup compares writeback / eviction senders against the
  // recorded holders: a sender outside the presence vector is stale.
  Value dirlookup = dirst == v_of("I") ? v_of("miss") : v_of("hit");
  if (dirlookup == v_of("hit") &&
      (msg.type == v_of("wb") || msg.type == v_of("evict")) &&
      l.pv.count(msg.src) == 0) {
    dirlookup = v_of("stale");
  }

  auto row =
      d_index_->find({msg.type, dirst, dirlookup, dirpv, l.bdirst, bdirpv});
  if (!row) {
    record_error("D table has no row for " + msg.to_string() + " dirst=" +
                 std::string(dirst.str()) + " dirlookup=" +
                 std::string(dirlookup.str()) + " dirpv=" +
                 std::string(dirpv.str()) + " bdirst=" +
                 std::string(l.bdirst.str()) + " bdirpv=" +
                 std::string(bdirpv.str()));
    consume(ref);
    return true;
  }

  const bool request = spec_->messages().is_request(msg.type);
  const QuadId requester = request ? msg.src : l.requester;
  const Value locmsg = d_index_->at(*row, "locmsg");
  const Value remmsg = d_index_->at(*row, "remmsg");
  const Value memmsg = d_index_->at(*row, "memmsg");
  const Value datapath = d_index_->at(*row, "datapath");

  std::vector<SimMessage> out;
  const std::vector<QuadId> targets = snoop_targets(l, requester);

  if (!remmsg.is_null()) {
    for (QuadId t : targets) {
      out.push_back(SimMessage{remmsg, msg.addr, q, t, v_of("home"),
                               v_of("remote"), -1});
    }
  }
  if (!memmsg.is_null()) {
    std::int64_t ver = -1;
    if (memmsg == v_of("wb") || memmsg == v_of("mupd")) ver = msg.version;
    if (memmsg == v_of("mwrite")) {
      ver = msg.version >= 0 ? msg.version : l.txver;
    }
    out.push_back(SimMessage{memmsg, msg.addr, q, q, v_of("home"),
                             v_of("home"), ver});
  }
  // Data routed to the requester travels as a `data` response unless the
  // completion message itself carries it (iodata).
  std::int64_t data_ver = -1;
  if (datapath == v_of("mem2loc") || datapath == v_of("rem2loc")) {
    data_ver = msg.version >= 0 ? msg.version : l.held;
    if (locmsg != v_of("iodata")) {
      out.push_back(SimMessage{v_of("data"), msg.addr, q, requester,
                               v_of("home"), v_of("local"), data_ver});
    }
  }
  if (!locmsg.is_null()) {
    // An I/O read is serialized here: the data it returns must be the
    // globally latest committed value at this moment (later writes may
    // overtake the delivery, which is fine).
    if (locmsg == v_of("iodata") && data_ver != gv_[msg.addr]) {
      record_error("stale I/O read at addr " + std::to_string(msg.addr) +
                   ": got v" + std::to_string(data_ver) + " want v" +
                   std::to_string(gv_[msg.addr]));
    }
    out.push_back(SimMessage{locmsg, msg.addr, q, requester, v_of("home"),
                             v_of("local"),
                             locmsg == v_of("iodata") ? data_ver : -1});
  }

  for (const auto& m : out) {
    if (!net_.can_send(m, q)) {  // stall: output channel full
      ++counters_.send_stalls;
      return false;
    }
  }

  consume(ref);
  if (tracing()) {
    trace_step("sim.directory", q, msg, "row " + std::to_string(*row));
  }

  // State updates.
  const Value nxtdirst = d_index_->at(*row, "nxtdirst");
  const Value nxtdirpv = d_index_->at(*row, "nxtdirpv");
  const Value nxtbdirst = d_index_->at(*row, "nxtbdirst");
  const Value nxtbdirpv = d_index_->at(*row, "nxtbdirpv");
  const Value bdirop = d_index_->at(*row, "bdirop");

  if (bdirop == v_of("alloc")) {
    l.requester = msg.src;
    l.txver = msg.version;
  }
  if (!nxtbdirst.is_null()) l.bdirst = nxtbdirst;
  if (nxtbdirpv == v_of("repl")) {
    l.pending = static_cast<int>(targets.size());
  } else if (nxtbdirpv == v_of("dec")) {
    l.pending = std::max(0, l.pending - 1);
  }
  if (!nxtdirst.is_null()) l.dirst = nxtdirst;
  if (nxtdirpv == v_of("inc")) {
    l.pv.insert(requester);
  } else if (nxtdirpv == v_of("repl")) {
    l.pv = {requester};
  } else if (nxtdirpv == v_of("drepl")) {
    l.pv.clear();
  }
  // Buffer a data response that must be held until invalidations finish
  // (Figure 3: data at Busy-rx-sd).
  if (msg.type == v_of("data") && datapath.is_null() && busy) {
    l.held = msg.version;
  }
  if (bdirop == v_of("free")) {
    l.requester = -1;
    l.held = -1;
    l.txver = -1;
    l.pending = 0;
  }
  for (const auto& m : out) post(m, q);
  return true;
}

bool Machine::step_memory(QuadId q, const Network::QueueRef& ref,
                          const SimMessage& msg) {
  HomeEngine& he = homes_[static_cast<std::size_t>(q)];
  if (he.cooldown > 0) return false;  // modelling memory latency
  auto row = m_index_->find({msg.type});
  if (!row) {
    record_error("M table has no row for " + msg.to_string());
    consume(ref);
    return true;
  }
  const Value outmsg = m_index_->at(*row, "outmsg");
  SimMessage resp;
  if (!outmsg.is_null()) {
    resp = SimMessage{outmsg, msg.addr, q,       q,
                      v_of("home"),     v_of("home"),
                      outmsg == v_of("data") ? he.memory[msg.addr] : -1};
    if (!net_.can_send(resp, q)) {
      ++counters_.send_stalls;
      return false;
    }
  }
  consume(ref);
  if (m_index_->at(*row, "memop") == v_of("wr")) {
    if (msg.version >= 0) {
      // Writeback / flush / posted update: install the carried version.
      he.memory[msg.addr] = msg.version;
    } else if (msg.type == v_of("mwrite") || msg.type == v_of("mrmw")) {
      // Device write or atomic read-modify-write: commits a fresh value.
      gv_[msg.addr] += 1;
      he.memory[msg.addr] = gv_[msg.addr];
    }
  }
  if (!outmsg.is_null()) {
    // Reads observe memory after this request's own write (if any).
    if (outmsg == v_of("data")) resp.version = he.memory[msg.addr];
    post(resp, q);
  }
  he.cooldown = memory_latency_;
  if (tracing()) trace_step("sim.memory", q, msg);
  return true;
}

bool Machine::step_rsn(QuadId q, const Network::QueueRef& ref,
                       const SimMessage& msg) {
  // A snoop can overtake the data fill it targets (responses and snoops
  // travel on different channels).  Like the DASH remote access cache, the
  // engine defers snoops for a line whose fill is still outstanding at
  // this node; the fill arrives on the response channel independently, so
  // the deferral always resolves.
  // No snoop can ever target a line whose grant is still in flight: the
  // directory keeps the line busy (Busy-*-g) until the requester's gdone
  // confirms the grant was consumed, so snoops here always find settled
  // cache state.
  // The snoop is serviced atomically: snoop -> cache command -> cache
  // response -> home response.  Consuming the snoop therefore requires a
  // slot for the home response (this is the VC1 -> VC2 dependency).
  auto row = rsn_index_->find({msg.type, v_of("idle")});
  if (!row) {
    record_error("RSN table has no row for " + msg.to_string());
    consume(ref);
    return true;
  }
  const Value cmd = rsn_index_->at(*row, "cmdmsg");
  Node& n = node(q);
  const Value cst = n.cst.count(msg.addr) ? n.cst[msg.addr] : v_of("I");

  // Determine the cache response without mutating (peek).
  auto cc_row = cc_index_->find({cmd, cst});
  if (!cc_row) {
    record_error("CC table has no row for (" + std::string(cmd.str()) +
                 ", " + std::string(cst.str()) + ")");
    consume(ref);
    return true;
  }
  const Value cc_out = cc_index_->at(*cc_row, "outmsg");
  auto resp_row = rsn_index_->find({cc_out, rsn_index_->at(*row, "nxtrsnst")});
  if (!resp_row) {
    record_error("RSN table has no row for cache response " +
                 std::string(cc_out.str()));
    consume(ref);
    return true;
  }
  const Value homemsg = rsn_index_->at(*resp_row, "homemsg");
  // A snoop can hit a line whose writeback is still in flight (the node
  // invalidated its copy when it issued pwb).  The snoop absorbs the
  // writeback: the dirty data is written through now and the node
  // controller is told to drop the transaction (wbcancel).
  const bool pending_wb =
      n.ncst == v_of("w-wb") && n.cur == msg.addr;
  const bool dirty =
      cst == v_of("M") || cst == v_of("E") || pending_wb;
  std::int64_t ver = -1;
  if (cc_out == v_of("cdata") || (cc_out == v_of("cwbdata") && dirty)) {
    ver = n.cver.count(msg.addr) ? n.cver[msg.addr] : -1;
  }
  SimMessage resp{homemsg, msg.addr,     q, home_of(msg.addr),
                  v_of("remote"), v_of("home"), ver};
  if (!net_.can_send(resp, q)) {
    ++counters_.send_stalls;
    return false;
  }

  consume(ref);
  // Now apply the cache command for real.
  (void)apply_cache(q, std::string(cmd.str()), msg.addr);
  // An invalidated dirty owner writes its line through to home memory
  // before acknowledging (the Figure 4 race: the modified line reaches
  // memory before the invalidation acknowledgement is processed).
  if (dirty) {
    homes_[static_cast<std::size_t>(home_of(msg.addr))].memory[msg.addr] =
        n.cver[msg.addr];
  }
  if (pending_wb) {
    apply_nc_internal(q, v_of("wbcancel"), msg.addr);
    // If the writeback is still queued locally, purge it and complete the
    // transaction as absorbed; if it is already in the network it will
    // bounce off the busy line and its retry ends the transaction.
    auto it = std::find_if(n.outbox.begin(), n.outbox.end(),
                           [&](const SimMessage& m) {
                             return m.type == v_of("wb") &&
                                    m.addr == msg.addr;
                           });
    if (it != n.outbox.end()) {
      n.outbox.erase(it);
      apply_nc_internal(q, v_of("retry"), msg.addr);
    }
  }
  post(resp, q);
  if (tracing()) {
    trace_step("sim.rsnoop", q, msg, "-> " + resp.to_string());
  }
  return true;
}

void Machine::apply_nc_internal(QuadId q, Value type, Addr addr) {
  Node& n = node(q);
  auto row = nc_index_->find({type, n.ncst});
  if (!row) {
    record_error("NC table has no row for internal (" +
                 std::string(type.str()) + ", " +
                 std::string(n.ncst.str()) + ")");
    return;
  }
  const Value nxt = nc_index_->at(*row, "nxtncst");
  if (!nxt.is_null()) n.ncst = nxt;
  if (nc_index_->at(*row, "nccmpl") == v_of("done")) ++n.done;
  (void)addr;
}

bool Machine::step_node_response(QuadId q, const Network::QueueRef& ref,
                                 const SimMessage& msg) {
  Node& n = node(q);
  auto row = nc_index_->find({msg.type, n.ncst});
  if (!row) {
    record_error("NC table has no row for (" + msg.to_string() + ", " +
                 std::string(n.ncst.str()) + ")");
    consume(ref);
    return true;
  }
  consume(ref);
  const Value netmsg = nc_index_->at(*row, "netmsg");
  const Value fillmsg = nc_index_->at(*row, "fillmsg");
  const Value nxt = nc_index_->at(*row, "nxtncst");
  const Value cmpl = nc_index_->at(*row, "nccmpl");

  if (!fillmsg.is_null()) {
    if (fillmsg == v_of("pfill")) {
      // Reads must observe the latest committed write.
      if (msg.version != gv_[msg.addr]) {
        record_error("stale read fill at addr " + std::to_string(msg.addr) +
                     ": got v" + std::to_string(msg.version) + " want v" +
                     std::to_string(gv_[msg.addr]));
      }
      (void)apply_cache(q, "pfill", msg.addr);
      n.cver[msg.addr] = msg.version;
    } else if (fillmsg == v_of("pfillx")) {
      if (msg.version >= 0 && msg.version != gv_[msg.addr]) {
        record_error("stale exclusive fill at addr " +
                     std::to_string(msg.addr));
      }
      (void)apply_cache(q, "pfillx", msg.addr);
      gv_[msg.addr] += 1;  // the write commits
      n.cver[msg.addr] = gv_[msg.addr];
    }
  }
  if (!netmsg.is_null()) {
    // Retry: re-issue the pending operation through the RAC buffer.
    n.outbox.push_back(SimMessage{netmsg, n.cur, q, home_of(n.cur),
                                  v_of("local"), v_of("home"),
                                  n.cver.count(n.cur) ? n.cver[n.cur] : -1});
  }
  if (!nxt.is_null()) n.ncst = nxt;
  if (cmpl == v_of("done")) {
    ++n.done;
  }
  if (tracing()) {
    trace_step("sim.node", q, msg, "ncst=" + std::string(n.ncst.str()));
  }
  return true;
}

bool Machine::step_ioc(QuadId q, const Network::QueueRef& ref,
                       const SimMessage& msg) {
  Node& n = node(q);
  auto row = ioc_index_->find({msg.type, n.iocst});
  if (!row) {
    record_error("IOC table has no row for (" + msg.to_string() + ", " +
                 std::string(n.iocst.str()) + ")");
    consume(ref);
    return true;
  }
  consume(ref);
  const Value outmsg = ioc_index_->at(*row, "outmsg");
  const Value devmsg = ioc_index_->at(*row, "devmsg");
  const Value nxt = ioc_index_->at(*row, "nxtiocst");
  if (!outmsg.is_null()) {
    n.outbox.push_back(SimMessage{outmsg, n.io_cur, q, home_of(n.io_cur),
                                  v_of("local"), v_of("home"), -1});
  }
  if (devmsg == v_of("devdata")) {
    ++n.done;  // freshness was checked at the serialization point (D)
  } else if (devmsg == v_of("devdone")) {
    ++n.done;
  }
  if (!nxt.is_null()) n.iocst = nxt;
  if (tracing()) {
    trace_step("sim.ioc", q, msg, "iocst=" + std::string(n.iocst.str()));
  }
  return true;
}

bool Machine::deliver(QuadId q, const Network::QueueRef& ref,
                      const SimMessage& msg) {
  const Value role_src = msg.role_src;
  const Value role_dst = msg.role_dst;
  if (role_src == v_of("home") && role_dst == v_of("home")) {
    return is_mem_request(msg.type) ? step_memory(q, ref, msg)
                                    : step_directory(q, ref, msg);
  }
  if (role_dst == v_of("home")) return step_directory(q, ref, msg);
  if (is_snoop(msg.type)) return step_rsn(q, ref, msg);
  if (msg.type == v_of("iodata") || msg.type == v_of("iocompl") ||
      (msg.type == v_of("retry") && node(q).iocst != v_of("idle") &&
       node(q).io_cur == msg.addr)) {
    return step_ioc(q, ref, msg);
  }
  return step_node_response(q, ref, msg);
}

bool Machine::drain_outbox(QuadId q) {
  Node& n = node(q);
  if (n.outbox.empty()) return false;
  const SimMessage& m = n.outbox.front();
  if (!net_.can_send(m, home_of(m.addr))) {
    ++counters_.send_stalls;
    return false;
  }
  post(m, home_of(m.addr));
  n.outbox.pop_front();
  return true;
}

bool Machine::inject(QuadId q) {
  Node& n = node(q);
  if (n.ncst != v_of("idle") || n.iocst != v_of("idle")) return false;

  Value op;
  Addr addr = -1;
  if (!n.scripted.empty()) {
    op = n.scripted.front().first;
    addr = n.scripted.front().second;
    n.scripted.pop_front();
  } else if (n.random_remaining > 0) {
    addr = static_cast<Addr>(rng_() % static_cast<unsigned>(config_.n_addrs));
    const Value cst = n.cst.count(addr) ? n.cst[addr] : v_of("I");
    if (cst == v_of("I")) {
      // Reads and writes dominate; device I/O and atomics mixed in.
      const unsigned pick = rng_() % 8;
      if (pick < 3) {
        op = v_of("prd");
      } else if (pick < 6) {
        op = v_of("pwr");
      } else if (pick == 6) {
        op = v_of("patomic");
      } else {
        op = (rng_() % 2 == 0) ? v_of("iord") : v_of("iowr");
      }
    } else if (cst == v_of("S")) {
      // Read hit (checked by issue_op), upgrade, flush, or eviction hint.
      const unsigned pick = rng_() % 4;
      op = pick == 0 ? v_of("prd")
                     : (pick == 1 ? v_of("pup")
                                  : (pick == 2 ? v_of("pfl")
                                               : v_of("pevict")));
    } else {  // M (E is never installed by this protocol's fills)
      // A flush of one's own modified line is a writeback (pfl targets
      // lines owned elsewhere or shared), so owners write hit or pwb.
      op = (rng_() % 3 != 2) ? v_of("pwr") : v_of("pwb");
    }
    --n.random_remaining;
  } else {
    return false;
  }
  return issue_op(q, op, addr);
}

bool Machine::issue_op(QuadId q, Value op, Addr addr) {
  Node& n = node(q);
  ++counters_.ops_injected;
  const Value cst = n.cst.count(addr) ? n.cst[addr] : v_of("I");

  // Processor-side rules: hits complete locally; a write to a shared copy
  // is an upgrade.
  if (op == v_of("prd") && cst != v_of("I")) {
    if (n.cver[addr] != gv_[addr]) {
      record_error("stale local copy read at addr " + std::to_string(addr));
    }
    ++n.done;
    return true;
  }
  if (op == v_of("pwr")) {
    if (cst == v_of("M") || cst == v_of("E")) {
      // Silent write hit on the owned line.
      gv_[addr] += 1;
      n.cver[addr] = gv_[addr];
      ++n.done;
      return true;
    }
    if (cst == v_of("S")) op = v_of("pup");
  }
  if (op == v_of("iord") || op == v_of("iowr")) {
    // Device operations go through the I/O controller.
    auto io_row = ioc_index_->find({op, v_of("idle")});
    if (!io_row) {
      record_error("IOC table has no row for device op " +
                   std::string(op.str()));
      return true;
    }
    n.outbox.push_back(
        SimMessage{ioc_index_->at(*io_row, "outmsg"), addr, q,
                   home_of(addr), v_of("local"), v_of("home"), -1});
    n.io_cur = addr;
    n.iocst = ioc_index_->at(*io_row, "nxtiocst");
    if (tracing()) {
      CCSQL_INSTANT("sim.inject", "sim", ::ccsql::obs::arg("t", now_),
                    ::ccsql::obs::arg("node", q),
                    ::ccsql::obs::arg("op", op.str()),
                    ::ccsql::obs::arg("addr", addr));
    }
    return true;
  }

  auto row = nc_index_->find({op, v_of("idle")});
  if (!row) {
    record_error("NC table has no row for processor op " +
                 std::string(op.str()));
    return true;
  }
  const Value netmsg = nc_index_->at(*row, "netmsg");
  const Value fillmsg = nc_index_->at(*row, "fillmsg");
  const std::int64_t ver = n.cver.count(addr) ? n.cver[addr] : -1;
  if (!fillmsg.is_null()) {
    (void)apply_cache(q, std::string(fillmsg.str()), addr);
  }
  if (!netmsg.is_null()) {
    n.outbox.push_back(SimMessage{netmsg, addr, q, home_of(addr),
                                  v_of("local"), v_of("home"), ver});
  }
  n.cur = addr;
  n.ncst = nc_index_->at(*row, "nxtncst");
  if (tracing()) {
    CCSQL_INSTANT("sim.inject", "sim", ::ccsql::obs::arg("t", now_),
                  ::ccsql::obs::arg("node", q),
                  ::ccsql::obs::arg("op", op.str()),
                  ::ccsql::obs::arg("addr", addr));
  }
  return true;
}

SimResult Machine::run() {
  SimResult result;
  CCSQL_SPAN(run_span, "sim.run", "sim");
  run_span.arg("quads", config_.n_quads)
      .arg("addrs", config_.n_addrs)
      .arg("channel_capacity", config_.channel_capacity);
  const std::uint64_t stall_threshold =
      static_cast<std::uint64_t>(memory_latency_) + 16;
  std::uint64_t stall = 0;

  for (now_ = 0; now_ < config_.max_steps; ++now_) {
    bool progress = false;
    for (auto& he : homes_) {
      if (he.cooldown > 0) --he.cooldown;
    }
    for (QuadId q = 0; q < config_.n_quads; ++q) {
      for (const auto& ref : net_.queues_to(q)) {
        const SimMessage* msg = net_.front(ref);
        if (msg == nullptr) continue;
        progress |= deliver(q, ref, *msg);
      }
      progress |= drain_outbox(q);
      progress |= inject(q);
    }

    // Completion: nothing in flight, all nodes idle and out of work.
    bool all_done = net_.in_flight() == 0;
    for (const auto& n : nodes_) {
      if (n.ncst != v_of("idle") || n.iocst != v_of("idle") ||
          !n.outbox.empty() || !n.scripted.empty() ||
          n.random_remaining > 0) {
        all_done = false;
      }
    }
    if (all_done) {
      result.completed = true;
      break;
    }

    if (progress) {
      stall = 0;
    } else if (++stall > stall_threshold) {
      if (net_.in_flight() > 0) {
        result.deadlocked = true;
        result.deadlock_report = net_.describe_blocked();
        CCSQL_INSTANT("sim.deadlock", "sim", ::ccsql::obs::arg("t", now_),
                      ::ccsql::obs::arg("in_flight", net_.in_flight()),
                      ::ccsql::obs::arg("report", result.deadlock_report));
      } else {
        result.stalled = true;
      }
      break;
    }
  }

  result.steps = now_;
  for (const auto& n : nodes_) result.transactions_done += n.done;
  if (!result.completed && !result.deadlocked && !result.stalled) {
    result.stalled = true;  // ran out of steps
  }
  if (result.completed) {
    auto quiescent = check_quiescent_state();
    errors_.insert(errors_.end(), quiescent.begin(), quiescent.end());
  }
  result.errors = errors_;
  result.counters = counters();

  // Fold the per-run counters into the global metrics registry so a traced
  // or --metrics invocation sees sim.* alongside the other layers.
  CCSQL_COUNT("sim.runs", 1);
  CCSQL_COUNT("sim.msgs_sent", result.counters.msgs_sent);
  CCSQL_COUNT("sim.msgs_recv", result.counters.msgs_recv);
  CCSQL_COUNT("sim.table_hits", result.counters.table_hits);
  CCSQL_COUNT("sim.table_misses", result.counters.table_misses);
  CCSQL_COUNT("sim.send_stalls", result.counters.send_stalls);
  CCSQL_COUNT("sim.ops_injected", result.counters.ops_injected);
  CCSQL_OBSERVE("sim.steps", result.steps);

  run_span.arg("steps", result.steps)
      .arg("transactions_done", result.transactions_done)
      .arg("completed", result.completed)
      .arg("deadlocked", result.deadlocked)
      .arg("errors", result.errors.size());
  return result;
}

SimCounters Machine::counters() const {
  SimCounters c = counters_;
  for (const TableIndex* idx :
       {d_index_.get(), m_index_.get(), nc_index_.get(), cc_index_.get(),
        rsn_index_.get(), ioc_index_.get()}) {
    if (idx == nullptr) continue;
    c.table_hits += idx->hits();
    c.table_misses += idx->misses();
  }
  return c;
}

std::vector<std::string> Machine::check_quiescent_state() const {
  std::vector<std::string> out;
  for (Addr a = 0; a < config_.n_addrs; ++a) {
    const auto& dir = homes_[static_cast<std::size_t>(home_of(a))].dir;
    auto it = dir.find(a);
    const DirLine* l = it == dir.end() ? nullptr : &it->second;
    std::set<QuadId> holders;
    int owners = 0;
    for (QuadId q = 0; q < config_.n_quads; ++q) {
      auto cit = nodes_[static_cast<std::size_t>(q)].cst.find(a);
      if (cit == nodes_[static_cast<std::size_t>(q)].cst.end()) continue;
      if (cit->second == v_of("S")) holders.insert(q);
      if (cit->second == v_of("M") || cit->second == v_of("E")) {
        holders.insert(q);
        ++owners;
      }
    }
    const Value dirst = l ? l->dirst : v_of("I");
    if (l && l->bdirst != v_of("I")) {
      out.push_back("busy entry left at quiescence, addr " +
                    std::to_string(a));
      continue;
    }
    if (dirst == v_of("I") && !holders.empty()) {
      out.push_back("directory I but cached, addr " + std::to_string(a));
    }
    if (dirst == v_of("MESI") &&
        (owners != 1 || holders != l->pv || l->pv.size() != 1)) {
      out.push_back("directory MESI inconsistent, addr " +
                    std::to_string(a));
    }
    if (dirst == v_of("SI")) {
      // The presence vector may conservatively overcount (a sharer whose
      // writeback/flush was absorbed stays marked until re-invalidated)
      // but must never undercount, and no owner may exist.
      const bool covered = std::includes(l->pv.begin(), l->pv.end(),
                                         holders.begin(), holders.end());
      if (owners != 0 || !covered) {
        out.push_back("directory SI inconsistent, addr " +
                      std::to_string(a));
      }
    }
  }
  return out;
}


// ---- Single-action interface (exhaustive exploration) -----------------------

std::string Machine::Action::to_string() const {
  switch (kind) {
    case Kind::kDeliver:
      return "deliver(" + std::to_string(queue.src) + "->" +
             std::to_string(queue.dst) + " " +
             (queue.vc.is_null() ? "direct" : std::string(queue.vc.str())) +
             ")";
    case Kind::kDrain:
      return "drain(node " + std::to_string(node) + ")";
    case Kind::kInject:
      return std::string(op.str()) + "(node " + std::to_string(node) +
             ", a" + std::to_string(addr) + ")";
  }
  return "?";
}

std::vector<std::pair<Value, Addr>> Machine::legal_ops(QuadId q) const {
  std::vector<std::pair<Value, Addr>> out;
  const Node& n = nodes_[static_cast<std::size_t>(q)];
  if (n.ncst != v_of("idle") || n.iocst != v_of("idle")) return out;
  const auto allowed = [&](const char* op) {
    if (config_.workload_ops.empty()) return true;
    for (const auto& name : config_.workload_ops) {
      if (name == op) return true;
    }
    return false;
  };
  for (Addr a = 0; a < config_.n_addrs; ++a) {
    auto it = n.cst.find(a);
    const Value cst = it == n.cst.end() ? v_of("I") : it->second;
    if (cst == v_of("I")) {
      for (const char* op : {"prd", "pwr", "patomic", "iord", "iowr"}) {
        if (allowed(op)) out.emplace_back(v_of(op), a);
      }
    } else if (cst == v_of("S")) {
      for (const char* op : {"pup", "pfl", "pevict"}) {
        if (allowed(op)) out.emplace_back(v_of(op), a);
      }
    } else {
      if (allowed("pwb")) out.emplace_back(v_of("pwb"), a);
    }
  }
  return out;
}

std::vector<Machine::Action> Machine::possible_actions() const {
  std::vector<Action> out;
  for (QuadId q = 0; q < config_.n_quads; ++q) {
    for (const auto& ref : net_.queues_to(q)) {
      Action a;
      a.kind = Action::Kind::kDeliver;
      a.queue = ref;
      out.push_back(a);
    }
  }
  for (QuadId q = 0; q < config_.n_quads; ++q) {
    const Node& n = nodes_[static_cast<std::size_t>(q)];
    if (!n.outbox.empty()) {
      Action a;
      a.kind = Action::Kind::kDrain;
      a.node = q;
      out.push_back(a);
    }
    if (n.random_remaining > 0) {
      for (const auto& [op, addr] : legal_ops(q)) {
        Action a;
        a.kind = Action::Kind::kInject;
        a.node = q;
        a.op = op;
        a.addr = addr;
        out.push_back(a);
      }
    }
  }
  return out;
}

bool Machine::apply_action(const Action& action) {
  switch (action.kind) {
    case Action::Kind::kDeliver: {
      const SimMessage* msg = net_.front(action.queue);
      if (msg == nullptr) return false;
      // Exploration abstracts memory timing: the interleavings themselves
      // cover all orderings, so the cooldown is ignored here.
      for (auto& he : homes_) he.cooldown = 0;
      return deliver(action.queue.dst, action.queue, *msg);
    }
    case Action::Kind::kDrain:
      return drain_outbox(action.node);
    case Action::Kind::kInject: {
      Node& n = node(action.node);
      if (n.ncst != v_of("idle") || n.iocst != v_of("idle") ||
          n.random_remaining <= 0) {
        return false;
      }
      --n.random_remaining;
      return issue_op(action.node, action.op, action.addr);
    }
  }
  return false;
}

Machine::Snapshot Machine::snapshot() const {
  return Snapshot{homes_, nodes_, gv_, net_.state(), errors_};
}

void Machine::restore(const Snapshot& snap) {
  homes_ = snap.homes;
  nodes_ = snap.nodes;
  gv_ = snap.gv;
  net_.set_state(snap.net);
  errors_ = snap.errors;
}

namespace {

/// Dense rank of `v` among the sorted distinct versions of its address.
inline std::int64_t version_rank(const std::vector<std::int64_t>& vs,
                                 std::int64_t v) noexcept {
  if (v < 0) return -1;
  return std::lower_bound(vs.begin(), vs.end(), v) - vs.begin();
}

}  // namespace

std::vector<std::vector<std::int64_t>> Machine::version_table() const {
  // Data versions are normalised per address (order-preserving dense rank)
  // so the visited set is finite: states differing only by absolute version
  // numbers are control-equivalent.
  std::vector<std::vector<std::int64_t>> vers(
      static_cast<std::size_t>(config_.n_addrs));
  auto note = [&](Addr a, std::int64_t v) {
    if (v >= 0) vers[static_cast<std::size_t>(a)].push_back(v);
  };
  for (const auto& he : homes_) {
    for (const auto& [a, v] : he.memory) note(a, v);
    for (const auto& [a, l] : he.dir) {
      note(a, l.held);
      note(a, l.txver);
    }
  }
  for (const auto& n : nodes_) {
    for (const auto& [a, v] : n.cver) note(a, v);
    for (const auto& m : n.outbox) note(m.addr, m.version);
  }
  for (const auto& [key, queue] : net_.state()) {
    for (const auto& m : queue) note(m.addr, m.version);
  }
  for (const auto& [a, v] : gv_) note(a, v);
  for (auto& vs : vers) {
    std::sort(vs.begin(), vs.end());
    vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
  }
  return vers;
}

std::string Machine::fingerprint() const {
  const std::vector<std::vector<std::int64_t>> vers = version_table();
  auto enc = [&](Addr a, std::int64_t v) {
    return v < 0 ? std::string("-")
                 : std::to_string(version_rank(
                       vers[static_cast<std::size_t>(a)], v));
  };

  std::string fp;
  auto num = [&](long long v) {
    fp += std::to_string(v);
    fp += ',';
  };
  auto sym = [&](Value v) {
    fp += std::to_string(v.id());
    fp += ',';
  };
  for (const auto& he : homes_) {
    fp += "H:";
    for (const auto& [a, l] : he.dir) {
      num(a);
      sym(l.dirst);
      for (QuadId q : l.pv) num(q);
      fp += ';';
      sym(l.bdirst);
      num(l.pending);
      num(l.requester);
      fp += enc(a, l.held);
      fp += ',';
      fp += enc(a, l.txver);
      fp += '|';
    }
    fp += "M:";
    for (const auto& [a, v] : he.memory) {
      num(a);
      fp += enc(a, v);
      fp += '|';
    }
  }
  for (const auto& n : nodes_) {
    fp += "N:";
    for (const auto& [a, c] : n.cst) {
      num(a);
      sym(c);
      fp += enc(a, n.cver.count(a) ? n.cver.at(a) : -1);
      fp += '|';
    }
    sym(n.ncst);
    num(n.cur);
    sym(n.iocst);
    num(n.io_cur);
    num(n.random_remaining);
    for (const auto& m : n.outbox) {
      sym(m.type);
      num(m.addr);
      num(m.dst);
      fp += enc(m.addr, m.version);
      fp += '|';
    }
  }
  fp += "Q:";
  for (const auto& [key, queue] : net_.state()) {
    if (queue.empty()) continue;
    num(key.src);
    num(key.dst);
    sym(key.vc);
    for (const auto& m : queue) {
      sym(m.type);
      num(m.addr);
      num(m.src);
      fp += enc(m.addr, m.version);
      fp += '|';
    }
    fp += '/';
  }
  return fp;
}

void Machine::encode_state(std::vector<std::uint64_t>& out,
                           const Relabeling* relabel) const {
  encode_with(out, relabel, version_table());
}

void Machine::encode_with(
    std::vector<std::uint64_t>& out, const Relabeling* relabel,
    const std::vector<std::vector<std::int64_t>>& vers) const {
  auto qm = [&](QuadId q) -> std::int64_t {
    return (relabel != nullptr && q >= 0)
               ? relabel->quad[static_cast<std::size_t>(q)]
               : q;
  };
  auto am = [&](Addr a) -> std::int64_t {
    return (relabel != nullptr && a >= 0)
               ? relabel->addr[static_cast<std::size_t>(a)]
               : a;
  };
  auto rk = [&](Addr a, std::int64_t v) -> std::int64_t {
    if (v < 0) return -1;
    return version_rank(vers[static_cast<std::size_t>(a)], v);
  };
  auto w = [&](std::int64_t x) { out.push_back(static_cast<std::uint64_t>(x)); };

  // Inverse quad map: emit engines in relabeled order so equivalent states
  // encode identically.
  const auto n_quads = static_cast<std::size_t>(config_.n_quads);
  std::vector<std::size_t> qinv(n_quads);
  for (std::size_t q = 0; q < n_quads; ++q) {
    qinv[static_cast<std::size_t>(qm(static_cast<QuadId>(q)))] = q;
  }

  for (std::size_t hp = 0; hp < n_quads; ++hp) {
    const HomeEngine& he = homes_[qinv[hp]];
    std::vector<std::pair<std::int64_t, Addr>> order;
    order.reserve(he.dir.size());
    for (const auto& [a, l] : he.dir) order.emplace_back(am(a), a);
    std::sort(order.begin(), order.end());
    w(static_cast<std::int64_t>(order.size()));
    for (const auto& [ap, a] : order) {
      const DirLine& l = he.dir.at(a);
      w(ap);
      w(l.dirst.id());
      std::vector<std::int64_t> pv;
      pv.reserve(l.pv.size());
      for (QuadId q : l.pv) pv.push_back(qm(q));
      std::sort(pv.begin(), pv.end());
      w(static_cast<std::int64_t>(pv.size()));
      for (std::int64_t q : pv) w(q);
      w(l.bdirst.id());
      w(l.pending);
      w(qm(l.requester));
      w(rk(a, l.held));
      w(rk(a, l.txver));
    }
    order.clear();
    for (const auto& [a, v] : he.memory) order.emplace_back(am(a), a);
    std::sort(order.begin(), order.end());
    w(static_cast<std::int64_t>(order.size()));
    for (const auto& [ap, a] : order) {
      w(ap);
      w(rk(a, he.memory.at(a)));
    }
  }

  for (std::size_t qp = 0; qp < n_quads; ++qp) {
    const Node& nd = nodes_[qinv[qp]];
    std::vector<std::pair<std::int64_t, Addr>> order;
    order.reserve(nd.cst.size());
    for (const auto& [a, c] : nd.cst) order.emplace_back(am(a), a);
    std::sort(order.begin(), order.end());
    w(static_cast<std::int64_t>(order.size()));
    for (const auto& [ap, a] : order) {
      w(ap);
      w(nd.cst.at(a).id());
      const auto it = nd.cver.find(a);
      w(rk(a, it != nd.cver.end() ? it->second : -1));
    }
    w(nd.ncst.id());
    w(am(nd.cur));
    w(nd.iocst.id());
    w(am(nd.io_cur));
    w(nd.random_remaining);
    w(static_cast<std::int64_t>(nd.outbox.size()));
    for (const auto& m : nd.outbox) {
      w(m.type.id());
      w(am(m.addr));
      w(qm(m.dst));
      w(rk(m.addr, m.version));
    }
  }

  struct QueueEnc {
    std::int64_t src, dst;
    std::uint32_t vc;
    const std::deque<SimMessage>* q;
    bool operator<(const QueueEnc& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return vc < o.vc;
    }
  };
  std::vector<QueueEnc> queues;
  for (const auto& [key, queue] : net_.state()) {
    if (queue.empty()) continue;
    queues.push_back(QueueEnc{qm(key.src), qm(key.dst), key.vc.id(), &queue});
  }
  std::sort(queues.begin(), queues.end());
  w(static_cast<std::int64_t>(queues.size()));
  for (const QueueEnc& qe : queues) {
    w(qe.src);
    w(qe.dst);
    w(qe.vc);
    w(static_cast<std::int64_t>(qe.q->size()));
    for (const auto& m : *qe.q) {
      w(m.type.id());
      w(am(m.addr));
      w(qm(m.src));
      w(rk(m.addr, m.version));
    }
  }
}

namespace {

/// splitmix64 finalizer — fast, well-avalanched mixing for the state hash.
inline std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline std::array<std::uint64_t, 2> hash_words(
    const std::vector<std::uint64_t>& words) noexcept {
  // Two independently-seeded splitmix lanes give an effective 128-bit key:
  // at the few-million-state scales the explorer reaches, the collision
  // probability is ~n^2 / 2^128 — negligible.
  std::uint64_t h0 = 0x243F6A8885A308D3ull;
  std::uint64_t h1 = 0x13198A2E03707344ull;
  for (std::uint64_t wrd : words) {
    h0 = splitmix64(h0 ^ wrd);
    h1 = splitmix64(h1 + (wrd * 0xA24BAED4963EE407ull));
  }
  return {splitmix64(h0 ^ words.size()), splitmix64(h1 ^ words.size())};
}

}  // namespace

std::array<std::uint64_t, 2> Machine::state_hash(
    const Relabeling* relabel) const {
  static thread_local std::vector<std::uint64_t> words;
  words.clear();
  encode_state(words, relabel);
  return hash_words(words);
}

std::array<std::uint64_t, 2> Machine::canonical_hash(
    const std::vector<Relabeling>& group) const {
  if (group.empty()) return state_hash(nullptr);
  // The version ranking is relabeling-invariant modulo the per-address
  // permutation of the table itself (encode_with indexes it through the
  // *unrelabeled* address), so one computation serves the whole orbit.
  const auto vers = version_table();
  std::array<std::uint64_t, 2> best{~0ull, ~0ull};
  static thread_local std::vector<std::uint64_t> words;
  for (const Relabeling& r : group) {
    words.clear();
    encode_with(words, &r, vers);
    best = std::min(best, hash_words(words));
  }
  return best;
}

bool Machine::quiescent() const {
  if (net_.in_flight() != 0) return false;
  for (const auto& n : nodes_) {
    if (n.ncst != v_of("idle") || n.iocst != v_of("idle") ||
        !n.outbox.empty()) {
      return false;
    }
  }
  return true;
}

int Machine::injection_budget() const {
  int total = 0;
  for (const auto& n : nodes_) total += n.random_remaining;
  return total;
}

}  // namespace ccsql::sim
