#include "sim/machine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/obs.hpp"
#include "protocol/asura/asura.hpp"
#include "relational/error.hpp"

namespace ccsql::sim {

SimCounters& SimCounters::operator+=(const SimCounters& o) {
  msgs_sent += o.msgs_sent;
  msgs_recv += o.msgs_recv;
  table_hits += o.table_hits;
  table_misses += o.table_misses;
  send_stalls += o.send_stalls;
  ops_injected += o.ops_injected;
  cache_hits += o.cache_hits;
  cycles += o.cycles;
  mem_cycles += o.mem_cycles;
  bus_cycles += o.bus_cycles;
  c2c_cycles += o.c2c_cycles;
  // Rates do not sum: the merged rate is events()/wall-clock of the whole
  // sweep, which only the aggregator knows.  Zeroing keeps merges
  // deterministic (byte-identical at any job count).
  events_per_sec = 0;
  for (const auto& [vc, n] : o.per_vc_sent) per_vc_sent[vc] += n;
  return *this;
}

std::string SimCounters::summary() const {
  std::ostringstream os;
  const auto line = [&os](std::string_view name, std::uint64_t value) {
    os << name;
    for (std::size_t i = name.size(); i < 22; ++i) os << ' ';
    os << value << "\n";
  };
  line("sim.events", events());
  line("sim.events_per_sec", events_per_sec);
  line("sim.msgs_sent", msgs_sent);
  line("sim.msgs_recv", msgs_recv);
  line("sim.table_hits", table_hits);
  line("sim.table_misses", table_misses);
  line("sim.send_stalls", send_stalls);
  line("sim.ops_injected", ops_injected);
  line("sim.cache_hits", cache_hits);
  line("sim.cycles", cycles);
  line("sim.mem_cycles", mem_cycles);
  line("sim.bus_cycles", bus_cycles);
  line("sim.c2c_cycles", c2c_cycles);
  for (const auto& [vc, n] : per_vc_sent) {
    line("sim.vc_sent." +
             std::string(vc.is_null() ? std::string_view("direct")
                                      : vc.str()),
         n);
  }
  return os.str();
}

std::optional<Workload> parse_workload(std::string_view name) {
  if (name == "random") return Workload::kRandom;
  if (name == "lock") return Workload::kLock;
  if (name == "producer-consumer" || name == "pc") {
    return Workload::kProducerConsumer;
  }
  if (name == "false-sharing" || name == "fs") return Workload::kFalseSharing;
  if (name == "streaming" || name == "stream") return Workload::kStreaming;
  return std::nullopt;
}

std::string_view workload_name(Workload w) {
  switch (w) {
    case Workload::kRandom: return "random";
    case Workload::kLock: return "lock";
    case Workload::kProducerConsumer: return "producer-consumer";
    case Workload::kFalseSharing: return "false-sharing";
    case Workload::kStreaming: return "streaming";
  }
  return "?";
}

namespace {

Value v_of(std::string_view s) { return Symbol::intern(s); }

/// Interned symbols the scheduler compares against on every event — cached
/// once per process so the hot path never touches the intern pool's lock.
struct Sym {
  Value I = v_of("I"), S = v_of("S"), M = v_of("M"), E = v_of("E");
  Value SI = v_of("SI"), MESI = v_of("MESI");
  Value idle = v_of("idle"), w_wb = v_of("w-wb");
  Value zero = v_of("zero"), one = v_of("one"), gone = v_of("gone");
  Value miss = v_of("miss"), hit = v_of("hit"), stale = v_of("stale");
  Value wb = v_of("wb"), evict = v_of("evict"), data = v_of("data");
  Value iodata = v_of("iodata"), iocompl = v_of("iocompl");
  Value retry = v_of("retry"), wbcancel = v_of("wbcancel");
  Value mread = v_of("mread"), mwrite = v_of("mwrite");
  Value mupd = v_of("mupd"), mrmw = v_of("mrmw");
  Value sinv = v_of("sinv"), sfetch = v_of("sfetch"), sflush = v_of("sflush");
  Value home = v_of("home"), remote = v_of("remote"), local = v_of("local");
  Value mem2loc = v_of("mem2loc"), rem2loc = v_of("rem2loc");
  Value alloc = v_of("alloc"), free_op = v_of("free");
  Value repl = v_of("repl"), drepl = v_of("drepl");
  Value inc = v_of("inc"), dec = v_of("dec");
  Value done = v_of("done"), wr = v_of("wr");
  Value cdata = v_of("cdata"), cwbdata = v_of("cwbdata");
  Value pfill = v_of("pfill"), pfillx = v_of("pfillx");
  Value prd = v_of("prd"), pwr = v_of("pwr"), pup = v_of("pup");
  Value pwb = v_of("pwb"), pfl = v_of("pfl"), pevict = v_of("pevict");
  Value patomic = v_of("patomic");
  Value iord = v_of("iord"), iowr = v_of("iowr");
  Value devdata = v_of("devdata"), devdone = v_of("devdone");
};

const Sym& sym() {
  static const Sym s;
  return s;
}

bool is_snoop(Value t) {
  const Sym& s = sym();
  return t == s.sinv || t == s.sfetch || t == s.sflush;
}

bool is_mem_request(Value t) {
  const Sym& s = sym();
  return t == s.mread || t == s.mwrite || t == s.mupd || t == s.mrmw ||
         t == s.wb;
}

}  // namespace

Machine::Machine(const ProtocolSpec& spec, const ChannelAssignment& v,
                 SimConfig config)
    : Machine(spec, v, config,
              CompiledTables::compile(
                  spec, config.dense_dispatch
                            ? ControllerDispatch::Mode::kDense
                            : ControllerDispatch::Mode::kHashed)) {}

Machine::Machine(const ProtocolSpec& spec, const ChannelAssignment& v,
                 SimConfig config,
                 std::shared_ptr<const CompiledTables> tables)
    : spec_(&spec),
      config_(config),
      net_(v, config.n_quads, config.channel_capacity),
      c2c_cost_(config.cycle_model.c2c_cycles(config.n_quads)),
      tables_(std::move(tables)),
      rng_(config.seed) {
  homes_.resize(static_cast<std::size_t>(config_.n_quads));
  nodes_.resize(static_cast<std::size_t>(config_.n_quads));
  for (auto& n : nodes_) {
    n.ncst = sym().idle;
    n.iocst = sym().idle;
  }
  for (Addr a = 0; a < config_.n_addrs; ++a) {
    gv_[a] = 0;
    homes_[static_cast<std::size_t>(home_of(a))].memory[a] = 0;
  }
}

Machine::DirLine& Machine::line(QuadId home, Addr a) {
  auto& dir = homes_[static_cast<std::size_t>(home)].dir;
  auto it = dir.find(a);
  if (it == dir.end()) {
    DirLine l;
    l.dirst = v_of("I");
    l.bdirst = v_of("I");
    it = dir.emplace(a, std::move(l)).first;
  }
  return it->second;
}

Value Machine::enc_count(std::size_t n) {
  const Sym& sy = sym();
  if (n == 0) return sy.zero;
  if (n == 1) return sy.one;
  return sy.gone;
}

void Machine::set_line(Addr addr, std::string_view dirst,
                       const std::vector<QuadId>& holders) {
  const QuadId home = home_of(addr);
  DirLine& l = line(home, addr);
  l.dirst = v_of(dirst);
  l.pv.clear();
  const bool owned = l.dirst == v_of("MESI");
  for (QuadId q : holders) {
    l.pv.insert(q);
    node(q).cst[addr] = owned ? v_of("M") : v_of("S");
    node(q).cver[addr] = gv_[addr];
  }
  if (owned && holders.size() == 1) {
    // The owner holds a version ahead of memory.
    gv_[addr] += 1;
    node(holders[0]).cver[addr] = gv_[addr];
  }
}

void Machine::script(QuadId n, std::string_view op, Addr addr) {
  node(n).scripted.emplace_back(v_of(op), addr);
}

void Machine::enable_workload() {
  for (std::size_t q = 0; q < nodes_.size(); ++q) {
    nodes_[q].random_remaining =
        q < config_.transactions_by_node.size()
            ? config_.transactions_by_node[q]
            : config_.transactions_per_node;
  }
}

const std::vector<QuadId>& Machine::snoop_targets(const DirLine& l,
                                                  QuadId /*requester*/) {
  // Snoops go to every presence-vector member, including the requester
  // itself when it is one (an upgrading sharer's engine acknowledges its
  // own invalidation): the coarse zero/one/gone encoding means the
  // directory cannot exclude the requester, so the pending count is always
  // the full holder count.
  snoop_scratch_.assign(l.pv.begin(), l.pv.end());
  return snoop_scratch_;
}

void Machine::post(const SimMessage& msg, QuadId home) {
  ++counters_.msgs_sent;
  const Network::VcCode code = net_.vc_code(msg, home);
  // Per-VC accounting goes into a flat array by code; counters() folds it
  // into the per_vc_sent map — a map op per message would dominate post().
  if (code >= vc_sent_.size()) vc_sent_.resize(code + 1, 0);
  ++vc_sent_[code];
  const auto bus = static_cast<std::uint64_t>(config_.cycle_model.bus_cycles);
  counters_.bus_cycles += bus;
  counters_.cycles += bus;
  net_.send_coded(msg, code);
}

void Machine::consume(const Network::QueueRef& ref) {
  ++counters_.msgs_recv;
  net_.pop(ref);
}

bool Machine::tracing() noexcept {
#if defined(CCSQL_TRACING_DISABLED)
  return false;
#else
  return obs::Tracer::global().tracing();
#endif
}

void Machine::trace_step(const char* what, QuadId q, const SimMessage& msg,
                         std::string_view extra) {
  CCSQL_INSTANT(what, "sim", obs::arg("t", now_), obs::arg("node", q),
                obs::arg("msg", msg.to_string()), obs::arg("extra", extra));
#if defined(CCSQL_TRACING_DISABLED)
  (void)what;
  (void)q;
  (void)msg;
  (void)extra;
#endif
}

void Machine::record_error(std::string what) {
  CCSQL_INSTANT("sim.error", "sim", obs::arg("t", now_),
                obs::arg("what", what));
  if (errors_.size() < 32) {
    errors_.push_back("[" + std::to_string(now_) + "] " + std::move(what));
  }
}

void Machine::check_swmr(Addr addr) {
  int owners = 0, sharers = 0;
  for (const auto& n : nodes_) {
    auto it = n.cst.find(addr);
    if (it == n.cst.end()) continue;
    if (it->second == sym().M || it->second == sym().E) ++owners;
    if (it->second == sym().S) ++sharers;
  }
  if (owners > 1 || (owners == 1 && sharers > 0)) {
    record_error("SWMR violated at addr " + std::to_string(addr) + ": " +
                 std::to_string(owners) + " owners, " +
                 std::to_string(sharers) + " sharers");
  }
}

Value Machine::apply_cache(QuadId q, Value cmd, Addr addr) {
  Node& n = node(q);
  const auto cit = n.cst.find(addr);
  Value cst = cit != n.cst.end() ? cit->second : sym().I;
  const ControllerDispatch& cc = tables_->cc;
  auto row = lookup(cc, {cmd, cst});
  if (!row) {
    record_error("CC table has no row for (" + std::string(cmd.str()) +
                 ", " + std::string(cst.str()) + ")");
    return Value{};
  }
  const Value nxt = cc.at(*row, tables_->ccc.nxtcst);
  if (!nxt.is_null()) {
    n.cst[addr] = nxt;
    check_swmr(addr);
  }
  return cc.at(*row, tables_->ccc.outmsg);
}

bool Machine::step_directory(QuadId q, const Network::QueueRef& ref,
                             const SimMessage& msg) {
  const Sym& sy = sym();
  DirLine& l = line(q, msg.addr);
  const bool busy = l.bdirst != sy.I;
  // While busy the directory entry lives in the busy directory: the stable
  // lookup reads invalid/empty (mutual-exclusion invariant).
  const Value dirst = busy ? sy.I : l.dirst;
  const Value dirpv = busy ? sy.zero : enc_count(l.pv.size());
  const Value bdirpv = enc_count(static_cast<std::size_t>(l.pending));
  // The directory lookup compares writeback / eviction senders against the
  // recorded holders: a sender outside the presence vector is stale.
  Value dirlookup = dirst == sy.I ? sy.miss : sy.hit;
  if (dirlookup == sy.hit &&
      (msg.type == sy.wb || msg.type == sy.evict) &&
      l.pv.count(msg.src) == 0) {
    dirlookup = sy.stale;
  }

  const ControllerDispatch& d = tables_->d;
  const CompiledTables::DirCols& dc = tables_->dc;
  auto row = lookup(d, {msg.type, dirst, dirlookup, dirpv, l.bdirst, bdirpv});
  if (!row) {
    record_error("D table has no row for " + msg.to_string() + " dirst=" +
                 std::string(dirst.str()) + " dirlookup=" +
                 std::string(dirlookup.str()) + " dirpv=" +
                 std::string(dirpv.str()) + " bdirst=" +
                 std::string(l.bdirst.str()) + " bdirpv=" +
                 std::string(bdirpv.str()));
    consume(ref);
    return true;
  }

  const bool request = spec_->messages().is_request(msg.type);
  const QuadId requester = request ? msg.src : l.requester;
  const Value locmsg = d.at(*row, dc.locmsg);
  const Value remmsg = d.at(*row, dc.remmsg);
  const Value memmsg = d.at(*row, dc.memmsg);
  const Value datapath = d.at(*row, dc.datapath);

  std::vector<SimMessage>& out = dir_out_;
  out.clear();
  const std::vector<QuadId>& targets = snoop_targets(l, requester);

  if (!remmsg.is_null()) {
    for (QuadId t : targets) {
      out.push_back(SimMessage{remmsg, msg.addr, q, t, sy.home,
                               sy.remote, -1});
    }
  }
  if (!memmsg.is_null()) {
    std::int64_t ver = -1;
    if (memmsg == sy.wb || memmsg == sy.mupd) ver = msg.version;
    if (memmsg == sy.mwrite) {
      ver = msg.version >= 0 ? msg.version : l.txver;
    }
    out.push_back(SimMessage{memmsg, msg.addr, q, q, sy.home,
                             sy.home, ver});
  }
  // Data routed to the requester travels as a `data` response unless the
  // completion message itself carries it (iodata).
  std::int64_t data_ver = -1;
  if (datapath == sy.mem2loc || datapath == sy.rem2loc) {
    data_ver = msg.version >= 0 ? msg.version : l.held;
    if (locmsg != sy.iodata) {
      out.push_back(SimMessage{sy.data, msg.addr, q, requester,
                               sy.home, sy.local, data_ver});
    }
  }
  if (!locmsg.is_null()) {
    // An I/O read is serialized here: the data it returns must be the
    // globally latest committed value at this moment (later writes may
    // overtake the delivery, which is fine).
    if (locmsg == sy.iodata && data_ver != gv_[msg.addr]) {
      record_error("stale I/O read at addr " + std::to_string(msg.addr) +
                   ": got v" + std::to_string(data_ver) + " want v" +
                   std::to_string(gv_[msg.addr]));
    }
    out.push_back(SimMessage{locmsg, msg.addr, q, requester, sy.home,
                             sy.local,
                             locmsg == sy.iodata ? data_ver : -1});
  }

  for (const auto& m : out) {
    if (!net_.can_send(m, q)) {  // stall: output channel full
      ++counters_.send_stalls;
      return false;
    }
  }

  consume(ref);
  if (tracing()) {
    trace_step("sim.directory", q, msg, "row " + std::to_string(*row));
  }

  // State updates.
  const Value nxtdirst = d.at(*row, dc.nxtdirst);
  const Value nxtdirpv = d.at(*row, dc.nxtdirpv);
  const Value nxtbdirst = d.at(*row, dc.nxtbdirst);
  const Value nxtbdirpv = d.at(*row, dc.nxtbdirpv);
  const Value bdirop = d.at(*row, dc.bdirop);

  if (bdirop == sy.alloc) {
    l.requester = msg.src;
    l.txver = msg.version;
  }
  if (!nxtbdirst.is_null()) l.bdirst = nxtbdirst;
  if (nxtbdirpv == sy.repl) {
    l.pending = static_cast<int>(targets.size());
  } else if (nxtbdirpv == sy.dec) {
    l.pending = std::max(0, l.pending - 1);
  }
  if (!nxtdirst.is_null()) l.dirst = nxtdirst;
  if (nxtdirpv == sy.inc) {
    l.pv.insert(requester);
  } else if (nxtdirpv == sy.repl) {
    l.pv = {requester};
  } else if (nxtdirpv == sy.drepl) {
    l.pv.clear();
  }
  // Buffer a data response that must be held until invalidations finish
  // (Figure 3: data at Busy-rx-sd).
  if (msg.type == sy.data && datapath.is_null() && busy) {
    l.held = msg.version;
  }
  if (bdirop == sy.free_op) {
    l.requester = -1;
    l.held = -1;
    l.txver = -1;
    l.pending = 0;
  }
  for (const auto& m : out) post(m, q);
  return true;
}

bool Machine::step_memory(QuadId q, const Network::QueueRef& ref,
                          const SimMessage& msg) {
  const Sym& sy = sym();
  HomeEngine& he = homes_[static_cast<std::size_t>(q)];
  if (he.cooldown > 0) return false;  // modelling memory latency
  const ControllerDispatch& m = tables_->m;
  auto row = lookup(m, {msg.type});
  if (!row) {
    record_error("M table has no row for " + msg.to_string());
    consume(ref);
    return true;
  }
  const Value outmsg = m.at(*row, tables_->mc.outmsg);
  SimMessage resp;
  if (!outmsg.is_null()) {
    resp = SimMessage{outmsg, msg.addr, q, q, sy.home, sy.home,
                      outmsg == sy.data ? he.memory[msg.addr] : -1};
    if (!net_.can_send(resp, q)) {
      ++counters_.send_stalls;
      return false;
    }
  }
  consume(ref);
  // Every consumed memory-controller message is a main-memory access.
  const auto mem = static_cast<std::uint64_t>(config_.cycle_model.memory_cycles);
  counters_.mem_cycles += mem;
  counters_.cycles += mem;
  if (m.at(*row, tables_->mc.memop) == sy.wr) {
    if (msg.version >= 0) {
      // Writeback / flush / posted update: install the carried version.
      he.memory[msg.addr] = msg.version;
    } else if (msg.type == sy.mwrite || msg.type == sy.mrmw) {
      // Device write or atomic read-modify-write: commits a fresh value.
      gv_[msg.addr] += 1;
      he.memory[msg.addr] = gv_[msg.addr];
    }
  }
  if (!outmsg.is_null()) {
    // Reads observe memory after this request's own write (if any).
    if (outmsg == sy.data) resp.version = he.memory[msg.addr];
    post(resp, q);
  }
  he.cooldown = memory_latency_;
  if (tracing()) trace_step("sim.memory", q, msg);
  return true;
}

bool Machine::step_rsn(QuadId q, const Network::QueueRef& ref,
                       const SimMessage& msg) {
  // A snoop can overtake the data fill it targets (responses and snoops
  // travel on different channels).  Like the DASH remote access cache, the
  // engine defers snoops for a line whose fill is still outstanding at
  // this node; the fill arrives on the response channel independently, so
  // the deferral always resolves.
  // No snoop can ever target a line whose grant is still in flight: the
  // directory keeps the line busy (Busy-*-g) until the requester's gdone
  // confirms the grant was consumed, so snoops here always find settled
  // cache state.
  // The snoop is serviced atomically: snoop -> cache command -> cache
  // response -> home response.  Consuming the snoop therefore requires a
  // slot for the home response (this is the VC1 -> VC2 dependency).
  const Sym& sy = sym();
  const ControllerDispatch& rsn = tables_->rsn;
  const CompiledTables::RsnCols& rc = tables_->rsnc;
  auto row = lookup(rsn, {msg.type, sy.idle});
  if (!row) {
    record_error("RSN table has no row for " + msg.to_string());
    consume(ref);
    return true;
  }
  const Value cmd = rsn.at(*row, rc.cmdmsg);
  Node& n = node(q);
  const Value cst = n.cst.count(msg.addr) ? n.cst[msg.addr] : sy.I;

  // Determine the cache response without mutating (peek).
  const ControllerDispatch& cc = tables_->cc;
  auto cc_row = lookup(cc, {cmd, cst});
  if (!cc_row) {
    record_error("CC table has no row for (" + std::string(cmd.str()) +
                 ", " + std::string(cst.str()) + ")");
    consume(ref);
    return true;
  }
  const Value cc_out = cc.at(*cc_row, tables_->ccc.outmsg);
  auto resp_row = lookup(rsn, {cc_out, rsn.at(*row, rc.nxtrsnst)});
  if (!resp_row) {
    record_error("RSN table has no row for cache response " +
                 std::string(cc_out.str()));
    consume(ref);
    return true;
  }
  const Value homemsg = rsn.at(*resp_row, rc.homemsg);
  // A snoop can hit a line whose writeback is still in flight (the node
  // invalidated its copy when it issued pwb).  The snoop absorbs the
  // writeback: the dirty data is written through now and the node
  // controller is told to drop the transaction (wbcancel).
  const bool pending_wb =
      n.ncst == sy.w_wb && n.cur == msg.addr;
  const bool dirty =
      cst == sy.M || cst == sy.E || pending_wb;
  std::int64_t ver = -1;
  if (cc_out == sy.cdata || (cc_out == sy.cwbdata && dirty)) {
    ver = n.cver.count(msg.addr) ? n.cver[msg.addr] : -1;
  }
  SimMessage resp{homemsg, msg.addr, q, home_of(msg.addr),
                  sy.remote, sy.home, ver};
  if (!net_.can_send(resp, q)) {
    ++counters_.send_stalls;
    return false;
  }

  consume(ref);
  if (ver >= 0) {
    // The snoop response carries the block out of this cache: a
    // cache-to-cache transfer at 4N + (P+1) cycles.
    counters_.c2c_cycles += static_cast<std::uint64_t>(c2c_cost_);
    counters_.cycles += static_cast<std::uint64_t>(c2c_cost_);
  }
  // Now apply the cache command for real.
  (void)apply_cache(q, cmd, msg.addr);
  // An invalidated dirty owner writes its line through to home memory
  // before acknowledging (the Figure 4 race: the modified line reaches
  // memory before the invalidation acknowledgement is processed).
  if (dirty) {
    homes_[static_cast<std::size_t>(home_of(msg.addr))].memory[msg.addr] =
        n.cver[msg.addr];
  }
  if (pending_wb) {
    apply_nc_internal(q, sy.wbcancel, msg.addr);
    // If the writeback is still queued locally, purge it and complete the
    // transaction as absorbed; if it is already in the network it will
    // bounce off the busy line and its retry ends the transaction.
    auto it = std::find_if(n.outbox.begin(), n.outbox.end(),
                           [&](const SimMessage& m) {
                             return m.type == sy.wb &&
                                    m.addr == msg.addr;
                           });
    if (it != n.outbox.end()) {
      n.outbox.erase(it);
      apply_nc_internal(q, sy.retry, msg.addr);
    }
  }
  post(resp, q);
  if (tracing()) {
    trace_step("sim.rsnoop", q, msg, "-> " + resp.to_string());
  }
  return true;
}

void Machine::apply_nc_internal(QuadId q, Value type, Addr addr) {
  Node& n = node(q);
  const ControllerDispatch& nc = tables_->nc;
  auto row = lookup(nc, {type, n.ncst});
  if (!row) {
    record_error("NC table has no row for internal (" +
                 std::string(type.str()) + ", " +
                 std::string(n.ncst.str()) + ")");
    return;
  }
  const Value nxt = nc.at(*row, tables_->ncc.nxtncst);
  if (!nxt.is_null()) n.ncst = nxt;
  if (nc.at(*row, tables_->ncc.nccmpl) == sym().done) ++n.done;
  (void)addr;
}

bool Machine::step_node_response(QuadId q, const Network::QueueRef& ref,
                                 const SimMessage& msg) {
  const Sym& sy = sym();
  Node& n = node(q);
  const ControllerDispatch& nc = tables_->nc;
  const CompiledTables::NodeCols& ncc = tables_->ncc;
  auto row = lookup(nc, {msg.type, n.ncst});
  if (!row) {
    record_error("NC table has no row for (" + msg.to_string() + ", " +
                 std::string(n.ncst.str()) + ")");
    consume(ref);
    return true;
  }
  consume(ref);
  const Value netmsg = nc.at(*row, ncc.netmsg);
  const Value fillmsg = nc.at(*row, ncc.fillmsg);
  const Value nxt = nc.at(*row, ncc.nxtncst);
  const Value cmpl = nc.at(*row, ncc.nccmpl);

  if (!fillmsg.is_null()) {
    if (fillmsg == sy.pfill) {
      // Reads must observe the latest committed write.
      if (msg.version != gv_[msg.addr]) {
        record_error("stale read fill at addr " + std::to_string(msg.addr) +
                     ": got v" + std::to_string(msg.version) + " want v" +
                     std::to_string(gv_[msg.addr]));
      }
      (void)apply_cache(q, sy.pfill, msg.addr);
      n.cver[msg.addr] = msg.version;
    } else if (fillmsg == sy.pfillx) {
      if (msg.version >= 0 && msg.version != gv_[msg.addr]) {
        record_error("stale exclusive fill at addr " +
                     std::to_string(msg.addr));
      }
      (void)apply_cache(q, sy.pfillx, msg.addr);
      gv_[msg.addr] += 1;  // the write commits
      n.cver[msg.addr] = gv_[msg.addr];
    }
  }
  if (!netmsg.is_null()) {
    // Retry: re-issue the pending operation through the RAC buffer.
    n.outbox.push_back(SimMessage{netmsg, n.cur, q, home_of(n.cur),
                                  sy.local, sy.home,
                                  n.cver.count(n.cur) ? n.cver[n.cur] : -1});
  }
  if (!nxt.is_null()) n.ncst = nxt;
  if (cmpl == sy.done) {
    ++n.done;
  }
  if (tracing()) {
    trace_step("sim.node", q, msg, "ncst=" + std::string(n.ncst.str()));
  }
  return true;
}

bool Machine::step_ioc(QuadId q, const Network::QueueRef& ref,
                       const SimMessage& msg) {
  Node& n = node(q);
  const ControllerDispatch& ioc = tables_->ioc;
  const CompiledTables::IocCols& icc = tables_->iocc;
  auto row = lookup(ioc, {msg.type, n.iocst});
  if (!row) {
    record_error("IOC table has no row for (" + msg.to_string() + ", " +
                 std::string(n.iocst.str()) + ")");
    consume(ref);
    return true;
  }
  consume(ref);
  const Value outmsg = ioc.at(*row, icc.outmsg);
  const Value devmsg = ioc.at(*row, icc.devmsg);
  const Value nxt = ioc.at(*row, icc.nxtiocst);
  if (!outmsg.is_null()) {
    n.outbox.push_back(SimMessage{outmsg, n.io_cur, q, home_of(n.io_cur),
                                  sym().local, sym().home, -1});
  }
  if (devmsg == sym().devdata) {
    ++n.done;  // freshness was checked at the serialization point (D)
  } else if (devmsg == sym().devdone) {
    ++n.done;
  }
  if (!nxt.is_null()) n.iocst = nxt;
  if (tracing()) {
    trace_step("sim.ioc", q, msg, "iocst=" + std::string(n.iocst.str()));
  }
  return true;
}

bool Machine::deliver(QuadId q, const Network::QueueRef& ref,
                      const SimMessage& msg) {
  const Sym& sy = sym();
  const Value role_src = msg.role_src;
  const Value role_dst = msg.role_dst;
  if (role_src == sy.home && role_dst == sy.home) {
    return is_mem_request(msg.type) ? step_memory(q, ref, msg)
                                    : step_directory(q, ref, msg);
  }
  if (role_dst == sy.home) return step_directory(q, ref, msg);
  if (is_snoop(msg.type)) return step_rsn(q, ref, msg);
  if (msg.type == sy.iodata || msg.type == sy.iocompl ||
      (msg.type == sy.retry && node(q).iocst != sy.idle &&
       node(q).io_cur == msg.addr)) {
    return step_ioc(q, ref, msg);
  }
  return step_node_response(q, ref, msg);
}

bool Machine::drain_outbox(QuadId q) {
  Node& n = node(q);
  if (n.outbox.empty()) return false;
  const SimMessage& m = n.outbox.front();
  if (!net_.can_send(m, home_of(m.addr))) {
    ++counters_.send_stalls;
    return false;
  }
  post(m, home_of(m.addr));
  n.outbox.pop_front();
  return true;
}

std::pair<Value, Addr> Machine::random_op(QuadId q) {
  const Sym& sy = sym();
  Node& n = node(q);
  const Addr addr =
      static_cast<Addr>(rng_() % static_cast<unsigned>(config_.n_addrs));
  Value op;
  const auto cit = n.cst.find(addr);
  const Value cst = cit != n.cst.end() ? cit->second : sy.I;
  if (cst == sy.I) {
    // Reads and writes dominate; device I/O and atomics mixed in.
    const unsigned pick = rng_() % 8;
    if (pick < 3) {
      op = sy.prd;
    } else if (pick < 6) {
      op = sy.pwr;
    } else if (pick == 6) {
      op = sy.patomic;
    } else {
      op = (rng_() % 2 == 0) ? sy.iord : sy.iowr;
    }
  } else if (cst == sy.S) {
    // Read hit (checked by issue_op), upgrade, flush, or eviction hint.
    const unsigned pick = rng_() % 4;
    op = pick == 0 ? sy.prd
                   : (pick == 1 ? sy.pup
                                : (pick == 2 ? sy.pfl : sy.pevict));
  } else {  // M (E is never installed by this protocol's fills)
    // A flush of one's own modified line is a writeback (pfl targets
    // lines owned elsewhere or shared), so owners write hit or pwb.
    op = (rng_() % 3 != 2) ? sy.pwr : sy.pwb;
  }
  return {op, addr};
}

std::pair<Value, Addr> Machine::workload_op(QuadId q) const {
  const Sym& sy = sym();
  const Node& n = nodes_[static_cast<std::size_t>(q)];
  const std::uint64_t t = n.wl_tick;
  const auto addrs = static_cast<std::uint64_t>(config_.n_addrs);
  // Every shape is legality-adjusted against the node's cache state with
  // the same rules the random generator obeys (issue_op converts pwr@S to
  // pup; patomic/iord/iowr need I; pwb needs ownership), so a shape can
  // never steer the tables into an uncovered row.
  const auto cst_of = [&](Addr a) {
    auto it = n.cst.find(a);
    return it == n.cst.end() ? sy.I : it->second;
  };
  const auto write_to = [&](Addr a) -> std::pair<Value, Addr> {
    return {sy.pwr, a};  // issue_op: I -> miss, S -> pup, M -> hit
  };
  switch (config_.workload) {
    case Workload::kRandom:
      break;  // handled by random_op
    case Workload::kLock: {
      // Everyone spins on line 0 (acquire with an atomic when the line is
      // cold, write when held) and touches a private-ish payload line
      // between acquisitions — maximal invalidation traffic on the lock.
      const Addr lock = 0;
      switch (t % 3) {
        case 0:
          if (cst_of(lock) == sy.I) return {sy.patomic, lock};
          return write_to(lock);
        case 1: {
          const Addr payload =
              addrs > 1 ? static_cast<Addr>(
                              1 + (static_cast<std::uint64_t>(q) + t) %
                                      (addrs - 1))
                        : lock;
          return write_to(payload);
        }
        default:
          return write_to(lock);  // release
      }
    }
    case Workload::kProducerConsumer: {
      // Even nodes write the ring slot, odd nodes read it: data flows one
      // way, so fills are mostly cache-to-cache from the last producer.
      const Addr a = static_cast<Addr>(t % addrs);
      return q % 2 == 0 ? write_to(a) : std::pair<Value, Addr>{sy.prd, a};
    }
    case Workload::kFalseSharing: {
      // Node pairs hammer writes on one line per pair: the line ping-pongs
      // M-state between the two forever.
      const Addr a = static_cast<Addr>(static_cast<std::uint64_t>(q / 2) %
                                       addrs);
      return write_to(a);
    }
    case Workload::kStreaming: {
      // Sequential scan, per-node stride offset, no reuse before wrap:
      // almost every access misses and fills from memory.
      const std::uint64_t stride =
          std::max<std::uint64_t>(1, addrs / static_cast<std::uint64_t>(
                                             config_.n_quads));
      const Addr a = static_cast<Addr>(
          (static_cast<std::uint64_t>(q) * stride + t) % addrs);
      return q % 2 == 0 ? std::pair<Value, Addr>{sy.prd, a} : write_to(a);
    }
  }
  return {sy.prd, 0};
}

bool Machine::inject(QuadId q) {
  Node& n = node(q);
  if (n.ncst != sym().idle || n.iocst != sym().idle) return false;

  Value op;
  Addr addr = -1;
  if (!n.scripted.empty()) {
    op = n.scripted.front().first;
    addr = n.scripted.front().second;
    n.scripted.pop_front();
  } else if (n.random_remaining > 0) {
    const std::pair<Value, Addr> pick = config_.workload == Workload::kRandom
                                            ? random_op(q)
                                            : workload_op(q);
    op = pick.first;
    addr = pick.second;
    ++n.wl_tick;
    --n.random_remaining;
  } else {
    return false;
  }
  return issue_op(q, op, addr);
}

bool Machine::issue_op(QuadId q, Value op, Addr addr) {
  const Sym& sy = sym();
  Node& n = node(q);
  ++counters_.ops_injected;
  const auto cit = n.cst.find(addr);
  const Value cst = cit != n.cst.end() ? cit->second : sy.I;

  // Processor-side rules: hits complete locally; a write to a shared copy
  // is an upgrade.
  if (op == sy.prd && cst != sy.I) {
    if (n.cver[addr] != gv_[addr]) {
      record_error("stale local copy read at addr " + std::to_string(addr));
    }
    ++n.done;
    ++counters_.cache_hits;  // read hit: 0 cycles
    return true;
  }
  if (op == sy.pwr) {
    if (cst == sy.M || cst == sy.E) {
      // Silent write hit on the owned line.
      gv_[addr] += 1;
      n.cver[addr] = gv_[addr];
      ++n.done;
      ++counters_.cache_hits;  // write hit: 0 cycles
      return true;
    }
    if (cst == sy.S) op = sy.pup;
  }
  if (op == sy.iord || op == sy.iowr) {
    // Device operations go through the I/O controller.
    const ControllerDispatch& ioc = tables_->ioc;
    auto io_row = lookup(ioc, {op, sy.idle});
    if (!io_row) {
      record_error("IOC table has no row for device op " +
                   std::string(op.str()));
      return true;
    }
    n.outbox.push_back(
        SimMessage{ioc.at(*io_row, tables_->iocc.outmsg), addr, q,
                   home_of(addr), sy.local, sy.home, -1});
    n.io_cur = addr;
    n.iocst = ioc.at(*io_row, tables_->iocc.nxtiocst);
    if (tracing()) {
      CCSQL_INSTANT("sim.inject", "sim", ::ccsql::obs::arg("t", now_),
                    ::ccsql::obs::arg("node", q),
                    ::ccsql::obs::arg("op", op.str()),
                    ::ccsql::obs::arg("addr", addr));
    }
    return true;
  }

  const ControllerDispatch& nc = tables_->nc;
  auto row = lookup(nc, {op, sy.idle});
  if (!row) {
    record_error("NC table has no row for processor op " +
                 std::string(op.str()));
    return true;
  }
  const Value netmsg = nc.at(*row, tables_->ncc.netmsg);
  const Value fillmsg = nc.at(*row, tables_->ncc.fillmsg);
  const auto vit = n.cver.find(addr);
  const std::int64_t ver = vit != n.cver.end() ? vit->second : -1;
  if (!fillmsg.is_null()) {
    (void)apply_cache(q, fillmsg, addr);
  }
  if (!netmsg.is_null()) {
    n.outbox.push_back(SimMessage{netmsg, addr, q, home_of(addr),
                                  sy.local, sy.home, ver});
  }
  n.cur = addr;
  n.ncst = nc.at(*row, tables_->ncc.nxtncst);
  if (tracing()) {
    CCSQL_INSTANT("sim.inject", "sim", ::ccsql::obs::arg("t", now_),
                  ::ccsql::obs::arg("node", q),
                  ::ccsql::obs::arg("op", op.str()),
                  ::ccsql::obs::arg("addr", addr));
  }
  return true;
}

SimResult Machine::run() {
  SimResult result;
  CCSQL_SPAN(run_span, "sim.run", "sim");
  run_span.arg("quads", config_.n_quads)
      .arg("addrs", config_.n_addrs)
      .arg("channel_capacity", config_.channel_capacity);
  const std::uint64_t stall_threshold =
      static_cast<std::uint64_t>(memory_latency_) + 16;
  std::uint64_t stall = 0;
  const Value idle = sym().idle;
  const auto t0 = std::chrono::steady_clock::now();

  for (now_ = 0; now_ < config_.max_steps; ++now_) {
    bool progress = false;
    for (auto& he : homes_) {
      if (he.cooldown > 0) --he.cooldown;
    }
    for (QuadId q = 0; q < config_.n_quads; ++q) {
      net_.queues_to(q, queue_scratch_);
      for (const auto& ref : queue_scratch_) {
        const SimMessage* msg = net_.front(ref);
        if (msg == nullptr) continue;
        progress |= deliver(q, ref, *msg);
      }
      progress |= drain_outbox(q);
      progress |= inject(q);
    }

    // Completion: nothing in flight, all nodes idle and out of work.
    bool all_done = net_.in_flight() == 0;
    for (const auto& n : nodes_) {
      if (n.ncst != idle || n.iocst != idle ||
          !n.outbox.empty() || !n.scripted.empty() ||
          n.random_remaining > 0) {
        all_done = false;
      }
    }
    if (all_done) {
      result.completed = true;
      break;
    }

    if (progress) {
      stall = 0;
    } else if (++stall > stall_threshold) {
      if (net_.in_flight() > 0) {
        result.deadlocked = true;
        result.deadlock_report = net_.describe_blocked();
        CCSQL_INSTANT("sim.deadlock", "sim", ::ccsql::obs::arg("t", now_),
                      ::ccsql::obs::arg("in_flight", net_.in_flight()),
                      ::ccsql::obs::arg("report", result.deadlock_report));
      } else {
        result.stalled = true;
      }
      break;
    }
  }

  result.steps = now_;
  for (const auto& n : nodes_) result.transactions_done += n.done;
  if (!result.completed && !result.deadlocked && !result.stalled) {
    result.stalled = true;  // ran out of steps
  }
  if (result.completed) {
    auto quiescent = check_quiescent_state();
    errors_.insert(errors_.end(), quiescent.begin(), quiescent.end());
  }
  result.errors = errors_;
  const auto t1 = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  counters_.events_per_sec =
      result.seconds > 0
          ? static_cast<std::uint64_t>(
                static_cast<double>(counters_.events()) / result.seconds)
          : 0;
  result.counters = counters();

  // Fold the per-run counters into the global metrics registry so a traced
  // or --metrics invocation sees sim.* alongside the other layers.
  CCSQL_COUNT("sim.runs", 1);
  CCSQL_COUNT("sim.msgs_sent", result.counters.msgs_sent);
  CCSQL_COUNT("sim.msgs_recv", result.counters.msgs_recv);
  CCSQL_COUNT("sim.table_hits", result.counters.table_hits);
  CCSQL_COUNT("sim.table_misses", result.counters.table_misses);
  CCSQL_COUNT("sim.send_stalls", result.counters.send_stalls);
  CCSQL_COUNT("sim.ops_injected", result.counters.ops_injected);
  CCSQL_COUNT("sim.events", result.counters.events());
  CCSQL_COUNT("sim.cache_hits", result.counters.cache_hits);
  CCSQL_COUNT("sim.cycles", result.counters.cycles);
  CCSQL_COUNT("sim.run_us",
              static_cast<std::uint64_t>(result.seconds * 1e6));
  CCSQL_COUNT("sim.deadlocks", result.deadlocked ? 1 : 0);
  CCSQL_COUNT("sim.stalled_runs", result.stalled ? 1 : 0);
  CCSQL_OBSERVE("sim.steps", result.steps);

  run_span.arg("steps", result.steps)
      .arg("transactions_done", result.transactions_done)
      .arg("completed", result.completed)
      .arg("deadlocked", result.deadlocked)
      .arg("errors", result.errors.size());
  return result;
}

SimCounters Machine::counters() const {
  SimCounters out = counters_;
  for (std::size_t c = 0; c < vc_sent_.size(); ++c) {
    if (vc_sent_[c] == 0) continue;
    out.per_vc_sent[net_.vc_value(static_cast<Network::VcCode>(c))] +=
        vc_sent_[c];
  }
  return out;
}

std::vector<std::string> Machine::check_quiescent_state() const {
  std::vector<std::string> out;
  for (Addr a = 0; a < config_.n_addrs; ++a) {
    const auto& dir = homes_[static_cast<std::size_t>(home_of(a))].dir;
    auto it = dir.find(a);
    const DirLine* l = it == dir.end() ? nullptr : &it->second;
    std::set<QuadId> holders;
    int owners = 0;
    for (QuadId q = 0; q < config_.n_quads; ++q) {
      auto cit = nodes_[static_cast<std::size_t>(q)].cst.find(a);
      if (cit == nodes_[static_cast<std::size_t>(q)].cst.end()) continue;
      if (cit->second == v_of("S")) holders.insert(q);
      if (cit->second == v_of("M") || cit->second == v_of("E")) {
        holders.insert(q);
        ++owners;
      }
    }
    const Value dirst = l ? l->dirst : v_of("I");
    if (l && l->bdirst != v_of("I")) {
      out.push_back("busy entry left at quiescence, addr " +
                    std::to_string(a));
      continue;
    }
    if (dirst == v_of("I") && !holders.empty()) {
      out.push_back("directory I but cached, addr " + std::to_string(a));
    }
    if (dirst == v_of("MESI") &&
        (owners != 1 || holders != l->pv || l->pv.size() != 1)) {
      out.push_back("directory MESI inconsistent, addr " +
                    std::to_string(a));
    }
    if (dirst == v_of("SI")) {
      // The presence vector may conservatively overcount (a sharer whose
      // writeback/flush was absorbed stays marked until re-invalidated)
      // but must never undercount, and no owner may exist.
      const bool covered = std::includes(l->pv.begin(), l->pv.end(),
                                         holders.begin(), holders.end());
      if (owners != 0 || !covered) {
        out.push_back("directory SI inconsistent, addr " +
                      std::to_string(a));
      }
    }
  }
  return out;
}


// ---- Single-action interface (exhaustive exploration) -----------------------

std::string Machine::Action::to_string() const {
  switch (kind) {
    case Kind::kDeliver:
      return "deliver(" + std::to_string(queue.src) + "->" +
             std::to_string(queue.dst) + " " +
             (queue.vc.is_null() ? "direct" : std::string(queue.vc.str())) +
             ")";
    case Kind::kDrain:
      return "drain(node " + std::to_string(node) + ")";
    case Kind::kInject:
      return std::string(op.str()) + "(node " + std::to_string(node) +
             ", a" + std::to_string(addr) + ")";
  }
  return "?";
}

std::vector<std::pair<Value, Addr>> Machine::legal_ops(QuadId q) const {
  std::vector<std::pair<Value, Addr>> out;
  const Node& n = nodes_[static_cast<std::size_t>(q)];
  if (n.ncst != v_of("idle") || n.iocst != v_of("idle")) return out;
  const auto allowed = [&](const char* op) {
    if (config_.workload_ops.empty()) return true;
    for (const auto& name : config_.workload_ops) {
      if (name == op) return true;
    }
    return false;
  };
  for (Addr a = 0; a < config_.n_addrs; ++a) {
    auto it = n.cst.find(a);
    const Value cst = it == n.cst.end() ? v_of("I") : it->second;
    if (cst == v_of("I")) {
      for (const char* op : {"prd", "pwr", "patomic", "iord", "iowr"}) {
        if (allowed(op)) out.emplace_back(v_of(op), a);
      }
    } else if (cst == v_of("S")) {
      for (const char* op : {"pup", "pfl", "pevict"}) {
        if (allowed(op)) out.emplace_back(v_of(op), a);
      }
    } else {
      if (allowed("pwb")) out.emplace_back(v_of("pwb"), a);
    }
  }
  return out;
}

std::vector<Machine::Action> Machine::possible_actions() const {
  std::vector<Action> out;
  for (QuadId q = 0; q < config_.n_quads; ++q) {
    for (const auto& ref : net_.queues_to(q)) {
      Action a;
      a.kind = Action::Kind::kDeliver;
      a.queue = ref;
      out.push_back(a);
    }
  }
  for (QuadId q = 0; q < config_.n_quads; ++q) {
    const Node& n = nodes_[static_cast<std::size_t>(q)];
    if (!n.outbox.empty()) {
      Action a;
      a.kind = Action::Kind::kDrain;
      a.node = q;
      out.push_back(a);
    }
    if (n.random_remaining > 0) {
      for (const auto& [op, addr] : legal_ops(q)) {
        Action a;
        a.kind = Action::Kind::kInject;
        a.node = q;
        a.op = op;
        a.addr = addr;
        out.push_back(a);
      }
    }
  }
  return out;
}

bool Machine::apply_action(const Action& action) {
  switch (action.kind) {
    case Action::Kind::kDeliver: {
      const SimMessage* msg = net_.front(action.queue);
      if (msg == nullptr) return false;
      // Exploration abstracts memory timing: the interleavings themselves
      // cover all orderings, so the cooldown is ignored here.
      for (auto& he : homes_) he.cooldown = 0;
      return deliver(action.queue.dst, action.queue, *msg);
    }
    case Action::Kind::kDrain:
      return drain_outbox(action.node);
    case Action::Kind::kInject: {
      Node& n = node(action.node);
      if (n.ncst != v_of("idle") || n.iocst != v_of("idle") ||
          n.random_remaining <= 0) {
        return false;
      }
      --n.random_remaining;
      return issue_op(action.node, action.op, action.addr);
    }
  }
  return false;
}

Machine::Snapshot Machine::snapshot() const {
  return Snapshot{homes_, nodes_, gv_, net_.state(), errors_};
}

void Machine::restore(const Snapshot& snap) {
  homes_ = snap.homes;
  nodes_ = snap.nodes;
  gv_ = snap.gv;
  net_.set_state(snap.net);
  errors_ = snap.errors;
}

namespace {

/// Dense rank of `v` among the sorted distinct versions of its address.
inline std::int64_t version_rank(const std::vector<std::int64_t>& vs,
                                 std::int64_t v) noexcept {
  if (v < 0) return -1;
  return std::lower_bound(vs.begin(), vs.end(), v) - vs.begin();
}

}  // namespace

std::vector<std::vector<std::int64_t>> Machine::version_table() const {
  // Data versions are normalised per address (order-preserving dense rank)
  // so the visited set is finite: states differing only by absolute version
  // numbers are control-equivalent.
  std::vector<std::vector<std::int64_t>> vers(
      static_cast<std::size_t>(config_.n_addrs));
  auto note = [&](Addr a, std::int64_t v) {
    if (v >= 0) vers[static_cast<std::size_t>(a)].push_back(v);
  };
  for (const auto& he : homes_) {
    for (const auto& [a, v] : he.memory) note(a, v);
    for (const auto& [a, l] : he.dir) {
      note(a, l.held);
      note(a, l.txver);
    }
  }
  for (const auto& n : nodes_) {
    for (const auto& [a, v] : n.cver) note(a, v);
    for (const auto& m : n.outbox) note(m.addr, m.version);
  }
  for (const auto& [key, queue] : net_.state()) {
    for (const auto& m : queue) note(m.addr, m.version);
  }
  for (const auto& [a, v] : gv_) note(a, v);
  for (auto& vs : vers) {
    std::sort(vs.begin(), vs.end());
    vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
  }
  return vers;
}

std::string Machine::fingerprint() const {
  const std::vector<std::vector<std::int64_t>> vers = version_table();
  auto enc = [&](Addr a, std::int64_t v) {
    return v < 0 ? std::string("-")
                 : std::to_string(version_rank(
                       vers[static_cast<std::size_t>(a)], v));
  };

  std::string fp;
  auto num = [&](long long v) {
    fp += std::to_string(v);
    fp += ',';
  };
  auto sym = [&](Value v) {
    fp += std::to_string(v.id());
    fp += ',';
  };
  for (const auto& he : homes_) {
    fp += "H:";
    for (const auto& [a, l] : he.dir) {
      num(a);
      sym(l.dirst);
      for (QuadId q : l.pv) num(q);
      fp += ';';
      sym(l.bdirst);
      num(l.pending);
      num(l.requester);
      fp += enc(a, l.held);
      fp += ',';
      fp += enc(a, l.txver);
      fp += '|';
    }
    fp += "M:";
    for (const auto& [a, v] : he.memory) {
      num(a);
      fp += enc(a, v);
      fp += '|';
    }
  }
  for (const auto& n : nodes_) {
    fp += "N:";
    for (const auto& [a, c] : n.cst) {
      num(a);
      sym(c);
      fp += enc(a, n.cver.count(a) ? n.cver.at(a) : -1);
      fp += '|';
    }
    sym(n.ncst);
    num(n.cur);
    sym(n.iocst);
    num(n.io_cur);
    num(n.random_remaining);
    for (const auto& m : n.outbox) {
      sym(m.type);
      num(m.addr);
      num(m.dst);
      fp += enc(m.addr, m.version);
      fp += '|';
    }
  }
  fp += "Q:";
  for (const auto& [key, queue] : net_.state()) {
    if (queue.empty()) continue;
    num(key.src);
    num(key.dst);
    sym(key.vc);
    for (const auto& m : queue) {
      sym(m.type);
      num(m.addr);
      num(m.src);
      fp += enc(m.addr, m.version);
      fp += '|';
    }
    fp += '/';
  }
  return fp;
}

void Machine::encode_state(std::vector<std::uint64_t>& out,
                           const Relabeling* relabel) const {
  encode_with(out, relabel, version_table());
}

void Machine::encode_with(
    std::vector<std::uint64_t>& out, const Relabeling* relabel,
    const std::vector<std::vector<std::int64_t>>& vers) const {
  auto qm = [&](QuadId q) -> std::int64_t {
    return (relabel != nullptr && q >= 0)
               ? relabel->quad[static_cast<std::size_t>(q)]
               : q;
  };
  auto am = [&](Addr a) -> std::int64_t {
    return (relabel != nullptr && a >= 0)
               ? relabel->addr[static_cast<std::size_t>(a)]
               : a;
  };
  auto rk = [&](Addr a, std::int64_t v) -> std::int64_t {
    if (v < 0) return -1;
    return version_rank(vers[static_cast<std::size_t>(a)], v);
  };
  auto w = [&](std::int64_t x) { out.push_back(static_cast<std::uint64_t>(x)); };

  // Inverse quad map: emit engines in relabeled order so equivalent states
  // encode identically.
  const auto n_quads = static_cast<std::size_t>(config_.n_quads);
  std::vector<std::size_t> qinv(n_quads);
  for (std::size_t q = 0; q < n_quads; ++q) {
    qinv[static_cast<std::size_t>(qm(static_cast<QuadId>(q)))] = q;
  }

  for (std::size_t hp = 0; hp < n_quads; ++hp) {
    const HomeEngine& he = homes_[qinv[hp]];
    std::vector<std::pair<std::int64_t, Addr>> order;
    order.reserve(he.dir.size());
    for (const auto& [a, l] : he.dir) order.emplace_back(am(a), a);
    std::sort(order.begin(), order.end());
    w(static_cast<std::int64_t>(order.size()));
    for (const auto& [ap, a] : order) {
      const DirLine& l = he.dir.at(a);
      w(ap);
      w(l.dirst.id());
      std::vector<std::int64_t> pv;
      pv.reserve(l.pv.size());
      for (QuadId q : l.pv) pv.push_back(qm(q));
      std::sort(pv.begin(), pv.end());
      w(static_cast<std::int64_t>(pv.size()));
      for (std::int64_t q : pv) w(q);
      w(l.bdirst.id());
      w(l.pending);
      w(qm(l.requester));
      w(rk(a, l.held));
      w(rk(a, l.txver));
    }
    order.clear();
    for (const auto& [a, v] : he.memory) order.emplace_back(am(a), a);
    std::sort(order.begin(), order.end());
    w(static_cast<std::int64_t>(order.size()));
    for (const auto& [ap, a] : order) {
      w(ap);
      w(rk(a, he.memory.at(a)));
    }
  }

  for (std::size_t qp = 0; qp < n_quads; ++qp) {
    const Node& nd = nodes_[qinv[qp]];
    std::vector<std::pair<std::int64_t, Addr>> order;
    order.reserve(nd.cst.size());
    for (const auto& [a, c] : nd.cst) order.emplace_back(am(a), a);
    std::sort(order.begin(), order.end());
    w(static_cast<std::int64_t>(order.size()));
    for (const auto& [ap, a] : order) {
      w(ap);
      w(nd.cst.at(a).id());
      const auto it = nd.cver.find(a);
      w(rk(a, it != nd.cver.end() ? it->second : -1));
    }
    w(nd.ncst.id());
    w(am(nd.cur));
    w(nd.iocst.id());
    w(am(nd.io_cur));
    w(nd.random_remaining);
    w(static_cast<std::int64_t>(nd.outbox.size()));
    for (const auto& m : nd.outbox) {
      w(m.type.id());
      w(am(m.addr));
      w(qm(m.dst));
      w(rk(m.addr, m.version));
    }
  }

  struct QueueEnc {
    std::int64_t src, dst;
    std::uint32_t vc;
    const std::deque<SimMessage>* q;
    bool operator<(const QueueEnc& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return vc < o.vc;
    }
  };
  std::vector<QueueEnc> queues;
  for (const auto& [key, queue] : net_.state()) {
    if (queue.empty()) continue;
    queues.push_back(QueueEnc{qm(key.src), qm(key.dst), key.vc.id(), &queue});
  }
  std::sort(queues.begin(), queues.end());
  w(static_cast<std::int64_t>(queues.size()));
  for (const QueueEnc& qe : queues) {
    w(qe.src);
    w(qe.dst);
    w(qe.vc);
    w(static_cast<std::int64_t>(qe.q->size()));
    for (const auto& m : *qe.q) {
      w(m.type.id());
      w(am(m.addr));
      w(qm(m.src));
      w(rk(m.addr, m.version));
    }
  }
}

namespace {

/// splitmix64 finalizer — fast, well-avalanched mixing for the state hash.
inline std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline std::array<std::uint64_t, 2> hash_words(
    const std::vector<std::uint64_t>& words) noexcept {
  // Two independently-seeded splitmix lanes give an effective 128-bit key:
  // at the few-million-state scales the explorer reaches, the collision
  // probability is ~n^2 / 2^128 — negligible.
  std::uint64_t h0 = 0x243F6A8885A308D3ull;
  std::uint64_t h1 = 0x13198A2E03707344ull;
  for (std::uint64_t wrd : words) {
    h0 = splitmix64(h0 ^ wrd);
    h1 = splitmix64(h1 + (wrd * 0xA24BAED4963EE407ull));
  }
  return {splitmix64(h0 ^ words.size()), splitmix64(h1 ^ words.size())};
}

}  // namespace

std::array<std::uint64_t, 2> Machine::state_hash(
    const Relabeling* relabel) const {
  static thread_local std::vector<std::uint64_t> words;
  words.clear();
  encode_state(words, relabel);
  return hash_words(words);
}

std::array<std::uint64_t, 2> Machine::canonical_hash(
    const std::vector<Relabeling>& group) const {
  if (group.empty()) return state_hash(nullptr);
  // The version ranking is relabeling-invariant modulo the per-address
  // permutation of the table itself (encode_with indexes it through the
  // *unrelabeled* address), so one computation serves the whole orbit.
  const auto vers = version_table();
  std::array<std::uint64_t, 2> best{~0ull, ~0ull};
  static thread_local std::vector<std::uint64_t> words;
  for (const Relabeling& r : group) {
    words.clear();
    encode_with(words, &r, vers);
    best = std::min(best, hash_words(words));
  }
  return best;
}

bool Machine::quiescent() const {
  if (net_.in_flight() != 0) return false;
  const Value idle = sym().idle;
  for (const auto& n : nodes_) {
    if (n.ncst != idle || n.iocst != idle || !n.outbox.empty()) {
      return false;
    }
  }
  return true;
}

int Machine::injection_budget() const {
  int total = 0;
  for (const auto& n : nodes_) total += n.random_remaining;
  return total;
}

}  // namespace ccsql::sim
