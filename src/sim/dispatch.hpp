#pragma once

// Dense transition dispatch for the forward simulator (DESIGN.md §15).
//
// The per-step cost of the table-driven Machine used to be dominated by
// TableIndex: every controller lookup heap-allocated a key vector, rendered
// it to a string, and hashed it; every output-cell read re-resolved the
// column name through Schema::index_of.  ControllerDispatch compiles a
// controller table once into a flat row array indexed by a packed
// mixed-radix key over the interned symbol domains actually appearing in
// the key columns, and resolves output columns to raw column-span pointers
// at compile time.  A lookup is then a handful of array reads and one
// branch per key column; a cell read is one indexed load.
//
// The compiled form is immutable and holds only pointers into the spec's
// frozen catalog, so one CompiledTables instance is shared read-only by
// every Machine of a parallel sweep (sim/sweep.hpp) — compilation is paid
// once per process, not once per run.
//
// `Mode::kHashed` keeps the original TableIndex path alive behind the same
// interface: it is the differential oracle (tests/sim/dispatch_test.cpp)
// and the baseline bench_sim --smoke measures the dense speedup against.
// Hashed-mode dispatch owns a mutable TableIndex, so hashed CompiledTables
// must not be shared across threads; dense-mode sharing is safe.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/table_index.hpp"

namespace ccsql {
class ProtocolSpec;
}  // namespace ccsql

namespace ccsql::sim {

class ControllerDispatch {
 public:
  enum class Mode {
    kDense,   // packed-key flat array (falls back to kHashed on overflow)
    kHashed,  // the original TableIndex path (string keys, name lookups)
  };

  /// Handle to an output column, resolved once via col().
  using Col = std::uint16_t;

  /// Compiles `table` for lookup on `key_columns` (same contract as
  /// TableIndex: the key must be unique per row; duplicates throw).  Dense
  /// compilation falls back to hashed when the packed key space would
  /// exceed kDenseLimit slots (sparse/overflow keys).
  ControllerDispatch(const Table& table, std::vector<std::string> key_columns,
                     Mode mode);

  /// Row index matching the key values (order of key_columns), or nullopt
  /// when the table has no such row.  The caller owns hit/miss accounting
  /// (SimCounters is per-Machine; this object may be shared).
  [[nodiscard]] std::optional<std::size_t> find(
      std::initializer_list<Value> key) const {
    if (!dense_rows_.empty()) {
      std::size_t idx = 0;
      const Value* it = key.begin();
      for (const KeyCol& kc : key_cols_) {
        const std::uint32_t id = it->id();
        ++it;
        const std::uint16_t code =
            id < kc.codes.size() ? kc.codes[id] : 0;
        if (code == 0) return std::nullopt;  // symbol outside the domain
        idx += static_cast<std::size_t>(code - 1) * kc.stride;
      }
      const std::int32_t row = dense_rows_[idx];
      if (row < 0) return std::nullopt;
      return static_cast<std::size_t>(row);
    }
    // Hashed path: reproduce the original cost shape exactly (key vector
    // materialization + string key) so it stays an honest baseline.
    return fallback_->find(std::vector<Value>(key));
  }

  /// Resolves an output column to a handle; call at compile time only.
  [[nodiscard]] Col col(std::string_view name);

  /// Cell read for a found row.  Dense: one indexed load off the cached
  /// column span.  Hashed: the original name-resolving TableIndex::at.
  [[nodiscard]] Value at(std::size_t row, Col c) const {
    if (!dense_rows_.empty()) return col_data_[c][row];
    return fallback_->at(row, col_names_[c]);
  }

  [[nodiscard]] bool dense() const noexcept { return !dense_rows_.empty(); }
  [[nodiscard]] const Table& table() const noexcept { return *table_; }

  /// Dense slot budget: past this the packed key space falls back to the
  /// hash map rather than materializing an enormous, mostly-empty array.
  static constexpr std::size_t kDenseLimit = std::size_t{1} << 22;

 private:
  struct KeyCol {
    /// Symbol id -> 1 + dense code, 0 when the id never appears in this
    /// key column (indexing past the end means the same).
    std::vector<std::uint16_t> codes;
    std::uint32_t stride = 1;
  };

  const Table* table_;
  std::vector<KeyCol> key_cols_;
  std::vector<std::int32_t> dense_rows_;   // packed key -> row, -1 = none
  std::vector<const Value*> col_data_;     // per handle, dense mode
  std::vector<std::string> col_names_;     // per handle, hashed mode
  std::unique_ptr<TableIndex> fallback_;   // hashed mode only
};

/// The six ASURA controller dispatch structures plus every output-column
/// handle the Machine hot path reads — compiled once from a spec's frozen
/// catalog and shared read-only across the Machines of a sweep.
struct CompiledTables {
  ControllerDispatch d, m, nc, cc, rsn, ioc;

  struct DirCols {
    ControllerDispatch::Col locmsg, remmsg, memmsg, datapath, nxtdirst,
        nxtdirpv, nxtbdirst, nxtbdirpv, bdirop;
  } dc;
  struct MemCols {
    ControllerDispatch::Col outmsg, memop;
  } mc;
  struct NodeCols {
    ControllerDispatch::Col netmsg, fillmsg, nxtncst, nccmpl;
  } ncc;
  struct CacheCols {
    ControllerDispatch::Col nxtcst, outmsg;
  } ccc;
  struct RsnCols {
    ControllerDispatch::Col cmdmsg, nxtrsnst, homemsg;
  } rsnc;
  struct IocCols {
    ControllerDispatch::Col outmsg, devmsg, nxtiocst;
  } iocc;

  /// Compiles the spec's controller tables.  The returned object only
  /// references the spec's catalog; the spec must outlive it.  Dense
  /// compilations are immutable and safe to share across threads.
  static std::shared_ptr<const CompiledTables> compile(
      const ProtocolSpec& spec, ControllerDispatch::Mode mode);

 private:
  CompiledTables(const ProtocolSpec& spec, ControllerDispatch::Mode mode);
};

}  // namespace ccsql::sim
