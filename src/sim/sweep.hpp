#pragma once

// Pool-parallel simulation sweeps (DESIGN.md §15).
//
// A sweep runs a grid of independent simulations — topology x workload x
// channel-assignment x seed — and reports merged counters plus aggregate
// throughput in events/sec.  The engine compiles the spec's controller
// tables into dense dispatch ONCE and shares the immutable compiled form
// across every run's Machine, then fans the grid onto the process-wide
// core::Pool.
//
// Determinism contract: each grid cell writes its own result slot and the
// merge folds slots in grid order on the calling thread, so the merged
// counters and every per-run result are byte-identical at any --jobs value
// (only the wall-clock/throughput fields vary).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace ccsql::sim {

/// One grid cell: a full simulator configuration plus the V-table to wire
/// the network with and the memory latency to model.
struct SweepRun {
  SimConfig config;
  std::string assignment;  // channel-assignment name, e.g. "V5fix"
  int memory_latency = 0;

  /// One-line cell description for reports ("quads=4 cap=2 wl=lock ...").
  [[nodiscard]] std::string label() const;
};

/// Aggregate outcome of a sweep.
struct SweepResult {
  /// Per-run results, in grid order (deterministic at any job count).
  std::vector<SimResult> runs;
  /// Counters merged in grid order via SimCounters::operator+=
  /// (events_per_sec is zero here by the merge contract; the sweep-level
  /// rate lives below).
  SimCounters merged;
  int completed = 0;
  int deadlocked = 0;
  int stalled = 0;
  int unhealthy = 0;  // completed but with coherence/table errors
  /// Wall clock of the whole sweep and the recomputed aggregate rate —
  /// the only fields that vary across job counts.
  double seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t events_per_sec = 0;

  /// True when every run completed with no deadlock, stall or error —
  /// the sweep tool's exit criterion.
  [[nodiscard]] bool all_healthy() const noexcept {
    return deadlocked == 0 && stalled == 0 && unhealthy == 0;
  }
};

/// Runs sweep grids against one protocol spec, sharing one dense-compiled
/// dispatch across every run (hashed-mode cells compile privately: the
/// hashed fallback owns mutable state and cannot be shared).
class SweepEngine {
 public:
  explicit SweepEngine(const ProtocolSpec& spec);

  /// Runs every grid cell on up to `jobs` lanes of the global pool
  /// (jobs <= 1 is fully sequential on the calling thread).
  [[nodiscard]] SweepResult run(const std::vector<SweepRun>& grid,
                                std::size_t jobs) const;

  [[nodiscard]] const ProtocolSpec& spec() const noexcept { return *spec_; }

 private:
  const ProtocolSpec* spec_;
  std::shared_ptr<const CompiledTables> dense_;
};

/// The default validation grid: quads x channel capacity x workload shapes
/// x `seeds` seeds per cell under `assignment`, 60 transactions per node.
[[nodiscard]] std::vector<SweepRun> default_sweep_grid(
    const std::string& assignment, unsigned seeds);

}  // namespace ccsql::sim
