#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "protocol/channel_assignment.hpp"
#include "sim/types.hpp"

namespace ccsql::sim {

/// The interconnect: finite-capacity virtual-channel FIFOs per directed
/// quad pair, as assigned by the protocol's V table, plus unbounded
/// dedicated paths for messages V leaves unassigned (the paper's fix) and
/// for intra-node delivery.
///
/// Blocking-send semantics are what make deadlocks real here: a controller
/// may only consume an input if every output it must emit has channel
/// space, exactly like the paper's Figure 4 scenario.
class Network {
 public:
  Network(const ChannelAssignment& v, int n_quads, int capacity);

  /// The role-level (src, dst) pair used to look a message up in V.
  /// `home` is the home quad of msg.addr.
  [[nodiscard]] std::pair<Value, Value> role_pair(const SimMessage& msg,
                                                  QuadId home) const;

  /// The virtual channel of a message, or nullopt for dedicated paths.
  [[nodiscard]] std::optional<Value> vc_of(const SimMessage& msg,
                                           QuadId home) const;

  /// True if the message can be sent now (always true on dedicated paths).
  [[nodiscard]] bool can_send(const SimMessage& msg, QuadId home) const;

  /// Enqueues; the caller must have checked can_send.
  void send(const SimMessage& msg, QuadId home);

  /// A channel endpoint for receivers: all queues addressed to `dst`.
  struct QueueRef {
    QuadId src;
    QuadId dst;
    Value vc;  // NULL for the dedicated-path queue
    /// Internal O(1) queue handle, filled by queues_to.  Refs built by
    /// hand (snapshot replay) leave the default; front/pop then resolve
    /// the queue from (src, dst, vc).  Slot indices are stable: every VC
    /// registers at construction, so the slot table never re-layouts.
    std::uint32_t slot = kNoSlot;
  };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  [[nodiscard]] std::vector<QueueRef> queues_to(QuadId dst) const;

  /// Allocation-free variant for the scheduler hot loop: clears `out` and
  /// fills it with the non-empty queues addressed to `dst`, in the same
  /// (src, vc) order as queues_to.
  void queues_to(QuadId dst, std::vector<QueueRef>& out) const;

  [[nodiscard]] const SimMessage* front(const QueueRef& q) const;
  void pop(const QueueRef& q);

  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }

  /// Occupancy of every non-empty queue, for deadlock reports.
  [[nodiscard]] std::string describe_blocked() const;

  /// Distinct assigned virtual channels with at least one queued message
  /// (dedicated NULL-channel paths excluded), sorted.  In a deadlock state
  /// this is the wedge's channel set — what cycle classification matches
  /// against VCG cycles.
  [[nodiscard]] std::vector<Value> occupied_vcs() const;

  struct Key {
    QuadId src;
    QuadId dst;
    Value vc;
    bool operator<(const Key& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return vc < o.vc;
    }
  };

  /// Full queue state, for snapshot/restore in exhaustive exploration.
  using State = std::map<Key, std::deque<SimMessage>>;
  [[nodiscard]] const State& state() const noexcept { return queues_; }
  void set_state(State state);

  /// Small-integer handle for a virtual channel: 0 is the dedicated
  /// (NULL-channel) path, 1..k are assigned VCs in first-seen order.  The
  /// code space is tiny (one per distinct VC symbol in the assignment), so
  /// it indexes the dense queue-slot table below.
  using VcCode = std::uint16_t;

  /// The VC code of a message, registering the channel on first sight.
  /// Memoized on the (type, role_src, role_dst) triple — the V table is
  /// immutable during simulation.
  [[nodiscard]] VcCode vc_code(const SimMessage& msg, QuadId home) const;

  /// The channel Value for a code (null for code 0).
  [[nodiscard]] const Value& vc_value(VcCode code) const {
    return vc_values_[code];
  }

  /// Enqueue with a VC already resolved via vc_code — lets Machine::post
  /// resolve the channel once per message instead of per Network call.
  void send_coded(const SimMessage& msg, VcCode code);

 private:
  /// Registers a newly-created queue in the per-destination index, keeping
  /// each destination's list in Key order (delivery order must match map
  /// iteration exactly).
  void index_queue(State::iterator it);

  /// Dense slot for (src, dst, code): pointer slot into slots_.  The deque
  /// pointer is null until the queue's map entry exists.  Map entries are
  /// never erased, so the pointers stay valid across sends.
  [[nodiscard]] std::size_t slot_index(QuadId src, QuadId dst,
                                       VcCode code) const {
    return (static_cast<std::size_t>(src) * static_cast<std::size_t>(n_quads_) +
            static_cast<std::size_t>(dst)) *
               vc_cap_ +
           code;
  }

  /// Code for a VC value that may be unknown (a QueueRef for a queue that
  /// was never created); returns kNoCode then.
  [[nodiscard]] VcCode code_of(const Value& vc) const;
  static constexpr VcCode kNoCode = 0xffff;

  /// Queue for a QueueRef, or nullptr when it was never created.
  [[nodiscard]] std::deque<SimMessage>* ref_queue(const QueueRef& q) const;

  /// Repopulates slots_ and dst_index_ from the queue map.  Called from
  /// the constructor and set_state.
  void rebuild_slots();

  const ChannelAssignment* v_;
  int n_quads_;
  std::size_t capacity_;
  State queues_;
  std::size_t in_flight_ = 0;

  /// (type, role_src, role_dst) -> VC code, open-addressed with linear
  /// probing (the triple space is tiny and the lookup runs multiple times
  /// per message — a std::unordered_map find was measurable here).  The
  /// stored key is the packed triple plus one, so 0 marks an empty bucket.
  struct VcMemoEntry {
    std::uint64_t key_plus1 = 0;
    VcCode code = 0;
  };
  mutable std::vector<VcMemoEntry> vc_memo_;
  mutable std::size_t vc_memo_used_ = 0;
  void vc_memo_grow() const;

  /// Code -> channel Value; index 0 is the dedicated NULL channel, the
  /// rest are the assignment's channels() in order, registered up front so
  /// slot indices stay stable for the Network's lifetime.
  std::vector<Value> vc_values_;
  std::size_t vc_cap_;  // slot-table stride, fixed at construction

  /// (src, dst, code) -> queue, O(1); null until the queue exists.
  mutable std::vector<std::deque<SimMessage>*> slots_;

  /// Queue lengths parallel to slots_: occupancy checks in can_send and
  /// queues_to read this contiguous array instead of chasing map nodes.
  std::vector<std::uint32_t> slot_len_;

  /// Per-destination (queue iterator, slot index) pairs in Key order:
  /// queues_to scans only the destination's own queues and hands out O(1)
  /// slot handles.
  struct DstEntry {
    State::iterator it;
    std::uint32_t slot;
  };
  std::vector<std::vector<DstEntry>> dst_index_;
};

}  // namespace ccsql::sim
