#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "protocol/channel_assignment.hpp"
#include "sim/types.hpp"

namespace ccsql::sim {

/// The interconnect: finite-capacity virtual-channel FIFOs per directed
/// quad pair, as assigned by the protocol's V table, plus unbounded
/// dedicated paths for messages V leaves unassigned (the paper's fix) and
/// for intra-node delivery.
///
/// Blocking-send semantics are what make deadlocks real here: a controller
/// may only consume an input if every output it must emit has channel
/// space, exactly like the paper's Figure 4 scenario.
class Network {
 public:
  Network(const ChannelAssignment& v, int n_quads, int capacity);

  /// The role-level (src, dst) pair used to look a message up in V.
  /// `home` is the home quad of msg.addr.
  [[nodiscard]] std::pair<Value, Value> role_pair(const SimMessage& msg,
                                                  QuadId home) const;

  /// The virtual channel of a message, or nullopt for dedicated paths.
  [[nodiscard]] std::optional<Value> vc_of(const SimMessage& msg,
                                           QuadId home) const;

  /// True if the message can be sent now (always true on dedicated paths).
  [[nodiscard]] bool can_send(const SimMessage& msg, QuadId home) const;

  /// Enqueues; the caller must have checked can_send.
  void send(const SimMessage& msg, QuadId home);

  /// A channel endpoint for receivers: all queues addressed to `dst`.
  struct QueueRef {
    QuadId src;
    QuadId dst;
    Value vc;  // NULL for the dedicated-path queue
  };
  [[nodiscard]] std::vector<QueueRef> queues_to(QuadId dst) const;

  [[nodiscard]] const SimMessage* front(const QueueRef& q) const;
  void pop(const QueueRef& q);

  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }

  /// Occupancy of every non-empty queue, for deadlock reports.
  [[nodiscard]] std::string describe_blocked() const;

  /// Distinct assigned virtual channels with at least one queued message
  /// (dedicated NULL-channel paths excluded), sorted.  In a deadlock state
  /// this is the wedge's channel set — what cycle classification matches
  /// against VCG cycles.
  [[nodiscard]] std::vector<Value> occupied_vcs() const;

  struct Key {
    QuadId src;
    QuadId dst;
    Value vc;
    bool operator<(const Key& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return vc < o.vc;
    }
  };

  /// Full queue state, for snapshot/restore in exhaustive exploration.
  using State = std::map<Key, std::deque<SimMessage>>;
  [[nodiscard]] const State& state() const noexcept { return queues_; }
  void set_state(State state);

 private:

  const ChannelAssignment* v_;
  int n_quads_;
  std::size_t capacity_;
  State queues_;
  std::size_t in_flight_ = 0;
};

}  // namespace ccsql::sim
