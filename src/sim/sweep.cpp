#include "sim/sweep.hpp"

#include <chrono>
#include <sstream>

#include "core/pool.hpp"
#include "obs/obs.hpp"
#include "protocol/protocol_spec.hpp"

namespace ccsql::sim {

std::string SweepRun::label() const {
  std::ostringstream os;
  os << "quads=" << config.n_quads << " addrs=" << config.n_addrs
     << " cap=" << config.channel_capacity
     << " wl=" << workload_name(config.workload) << " v=" << assignment
     << " seed=" << config.seed
     << " dispatch=" << (config.dense_dispatch ? "dense" : "hashed");
  return os.str();
}

SweepEngine::SweepEngine(const ProtocolSpec& spec)
    : spec_(&spec),
      dense_(CompiledTables::compile(spec, ControllerDispatch::Mode::kDense)) {}

SweepResult SweepEngine::run(const std::vector<SweepRun>& grid,
                             std::size_t jobs) const {
  SweepResult out;
  out.runs.resize(grid.size());
  const auto t0 = std::chrono::steady_clock::now();

  CCSQL_SPAN(span, "sim.sweep", "sim");
  span.arg("runs", grid.size()).arg("jobs", jobs);

  core::Pool::global().parallel_tasks(
      grid.size(), jobs, [&](std::size_t i) {
        const SweepRun& cell = grid[i];
        const ChannelAssignment& v = spec_->assignment(cell.assignment);
        // Dense cells share the engine's compiled tables; hashed cells own
        // a private TableIndex (mutable, not shareable).
        Machine m = cell.config.dense_dispatch
                        ? Machine(*spec_, v, cell.config, dense_)
                        : Machine(*spec_, v, cell.config);
        m.set_memory_latency(cell.memory_latency);
        m.enable_workload();
        out.runs[i] = m.run();
      });

  // Merge on the calling thread, in grid order: deterministic at any jobs.
  for (const SimResult& r : out.runs) {
    out.merged += r.counters;
    out.events += r.counters.events();
    if (r.completed) ++out.completed;
    if (r.deadlocked) ++out.deadlocked;
    if (r.stalled) ++out.stalled;
    if (r.completed && !r.errors.empty()) ++out.unhealthy;
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events_per_sec =
      out.seconds > 0 ? static_cast<std::uint64_t>(
                            static_cast<double>(out.events) / out.seconds)
                      : 0;

  CCSQL_COUNT("sim.sweep_runs", grid.size());
  CCSQL_COUNT("sim.sweep_deadlocks", out.deadlocked);
  CCSQL_COUNT("sim.sweep_stalled", out.stalled);
  span.arg("events", out.events).arg("deadlocked", out.deadlocked);
  return out;
}

std::vector<SweepRun> default_sweep_grid(const std::string& assignment,
                                         unsigned seeds) {
  std::vector<SweepRun> grid;
  const Workload shapes[] = {Workload::kRandom, Workload::kLock,
                             Workload::kProducerConsumer,
                             Workload::kFalseSharing, Workload::kStreaming};
  for (int quads : {2, 3, 4}) {
    for (int cap : {1, 2, 4}) {
      for (Workload wl : shapes) {
        for (unsigned seed = 1; seed <= seeds; ++seed) {
          SweepRun cell;
          cell.config.n_quads = quads;
          cell.config.n_addrs = quads * 2;
          cell.config.channel_capacity = cap;
          cell.config.transactions_per_node = 60;
          cell.config.workload = wl;
          cell.config.seed = seed;
          cell.assignment = assignment;
          cell.memory_latency = static_cast<int>(seed % 5);
          grid.push_back(std::move(cell));
        }
      }
    }
  }
  return grid;
}

}  // namespace ccsql::sim
