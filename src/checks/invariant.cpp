#include "checks/invariant.hpp"

#include <chrono>
#include <sstream>

#include "core/pool.hpp"
#include "obs/obs.hpp"
#include "relational/format.hpp"
#include "relational/parser.hpp"

namespace ccsql {

InvariantResult InvariantChecker::check(const NamedInvariant& inv) const {
  CCSQL_SPAN(span, "invariant.check", "checks");
  span.arg("invariant", inv.name);
  const auto start = std::chrono::steady_clock::now();
  InvariantResult result;
  result.name = inv.name;
  result.holds = true;
  for (const SelectStmt& stmt : parse_invariant(inv.sql)) {
    // Fast path: probe emptiness in exists mode (Limit 1) — the common
    // all-invariants-hold run never materialises a full result.  Only a
    // violated check is re-run in full, for complete witness reporting.
    if (db_->check_empty(stmt)) continue;
    Table rows = db_->query(stmt).rows;
    if (rows.row_count() != 0) {
      result.holds = false;
      result.violations.push_back(std::move(rows));
    }
  }
  const auto end = std::chrono::steady_clock::now();
  result.micros =
      std::chrono::duration<double, std::micro>(end - start).count();
  span.arg("holds", result.holds);
  CCSQL_COUNT("invariant.checked", 1);
  if (!result.holds) CCSQL_COUNT("invariant.violated", 1);
  CCSQL_OBSERVE("invariant.micros", result.micros);
  return result;
}

std::vector<InvariantResult> InvariantChecker::check_all(
    const std::vector<NamedInvariant>& suite) const {
  CCSQL_SPAN(span, "invariant.suite", "checks");
  span.arg("invariants", suite.size());
  const std::size_t jobs = db_->jobs();
  span.arg("jobs", static_cast<std::uint64_t>(jobs));
  std::vector<InvariantResult> out(suite.size());
  if (jobs > 1 && suite.size() > 1) {
    // One pool task per invariant, each writing its own slot: the report
    // order (suite order) and every verdict are independent of scheduling.
    core::Pool::global().parallel_tasks(
        suite.size(), jobs,
        [&](std::size_t i) { out[i] = check(suite[i]); });
  } else {
    for (std::size_t i = 0; i < suite.size(); ++i) out[i] = check(suite[i]);
  }
  return out;
}

double InvariantChecker::total_micros(
    const std::vector<InvariantResult>& results) {
  double total = 0.0;
  for (const auto& r : results) total += r.micros;
  return total;
}

bool InvariantChecker::within_budget(
    const std::vector<InvariantResult>& results) {
  return total_micros(results) < kSuiteBudgetMicros;
}

bool InvariantChecker::all_hold(const std::vector<InvariantResult>& results) {
  for (const auto& r : results) {
    if (!r.holds) return false;
  }
  return true;
}

std::string InvariantChecker::report(
    const std::vector<InvariantResult>& results, bool verbose) {
  std::ostringstream os;
  std::size_t failed = 0;
  for (const auto& r : results) {
    if (!r.holds) ++failed;
    if (verbose || !r.holds) {
      os << (r.holds ? "PASS " : "FAIL ") << r.name << " ("
         << static_cast<long>(r.micros) << " us)\n";
      for (const auto& t : r.violations) {
        os << to_ascii(t, 10);
      }
    }
  }
  const double total_us = total_micros(results);
  os << results.size() << " invariants, " << failed << " violated\n"
     << "suite total: " << static_cast<long>(total_us) << " us ("
     << total_us / 1e6 << " s; paper budget 300 s: "
     << (total_us < kSuiteBudgetMicros ? "PASS" : "FAIL") << ")\n";
  return os.str();
}

}  // namespace ccsql
