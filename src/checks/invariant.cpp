#include "checks/invariant.hpp"

#include <chrono>
#include <sstream>

#include "relational/format.hpp"
#include "relational/parser.hpp"

namespace ccsql {

InvariantResult InvariantChecker::check(const NamedInvariant& inv) const {
  const auto start = std::chrono::steady_clock::now();
  InvariantResult result;
  result.name = inv.name;
  result.holds = true;
  for (const SelectStmt& stmt : parse_invariant(inv.sql)) {
    Table rows = db_->run(stmt);
    if (rows.row_count() != 0) {
      result.holds = false;
      result.violations.push_back(std::move(rows));
    }
  }
  const auto end = std::chrono::steady_clock::now();
  result.micros =
      std::chrono::duration<double, std::micro>(end - start).count();
  return result;
}

std::vector<InvariantResult> InvariantChecker::check_all(
    const std::vector<NamedInvariant>& suite) const {
  std::vector<InvariantResult> out;
  out.reserve(suite.size());
  for (const auto& inv : suite) out.push_back(check(inv));
  return out;
}

bool InvariantChecker::all_hold(const std::vector<InvariantResult>& results) {
  for (const auto& r : results) {
    if (!r.holds) return false;
  }
  return true;
}

std::string InvariantChecker::report(
    const std::vector<InvariantResult>& results, bool verbose) {
  std::ostringstream os;
  std::size_t failed = 0;
  double total_us = 0.0;
  for (const auto& r : results) {
    total_us += r.micros;
    if (!r.holds) ++failed;
    if (verbose || !r.holds) {
      os << (r.holds ? "PASS " : "FAIL ") << r.name << "\n";
      for (const auto& t : r.violations) {
        os << to_ascii(t, 10);
      }
    }
  }
  os << results.size() << " invariants, " << failed << " violated, "
     << static_cast<long>(total_us) << " us total\n";
  return os.str();
}

}  // namespace ccsql
