// Parallel, symmetry-reduced explicit-state exploration (checks/reach.hpp).
//
// The sequential explore() in reach.cpp is the oracle: a 100-line BFS over
// string fingerprints.  This file is the version that actually scales —
// the same wave-by-wave BFS semantics, executed as morsels on the shared
// work-stealing pool:
//
//  - The visited set stores 128-bit hashes of the canonical numeric state
//    encoding (sim::Machine::encode_state) instead of fingerprint strings.
//  - With symmetry on, each successor is hashed through every relabeling in
//    the quad/address symmetry group and keyed on the orbit minimum, so an
//    entire orbit of equivalent states costs one visited-set entry.
//  - Each wave expands in parallel; lookups against the visited set are
//    lock-free because inserts happen only in the single-threaded merge
//    between waves.  The merge walks morsel outputs in frontier order, so
//    every aggregate — and the choice of orbit representative when two
//    states in one wave collide — is a pure function of the input, never of
//    the worker schedule.  That is what makes results identical at any
//    --jobs value.
//  - Parent pointers (state id -> predecessor id + action) turn any
//    deadlock into a replayable action trace, and every distinct wedged-
//    channel set is recorded so VCG cycles can be classified against the
//    deadlocks that actually occur.
#include "checks/reach.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/pool.hpp"
#include "obs/obs.hpp"
#include "sim/machine.hpp"

namespace ccsql {
namespace {

using sim::Machine;
using Hash128 = std::array<std::uint64_t, 2>;

constexpr std::uint64_t kNoParent = ~0ull;

struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const noexcept {
    // h[0] is already splitmix-avalanched; use it directly as the bucket
    // hash and h[1] (an independent lane) for shard selection.
    return static_cast<std::size_t>(h[0]);
  }
};

/// The visited set, sharded to keep per-table rehash cost bounded.  Phase
/// discipline instead of locks: wave expansion only calls contains() (many
/// threads, no writers), the inter-wave merge only calls insert() (one
/// thread, no readers) — the pool's group barrier orders the two phases.
class ShardedVisited {
 public:
  ShardedVisited() : shards_(kShards) {}

  [[nodiscard]] bool contains(const Hash128& h) const {
    const auto& s = shards_[shard_of(h)];
    return s.find(h) != s.end();
  }
  /// Merge phase only.  True when `h` was new.
  bool insert(const Hash128& h) {
    return shards_[shard_of(h)].insert(h).second;
  }

 private:
  static constexpr std::size_t kShards = 64;
  static std::size_t shard_of(const Hash128& h) noexcept {
    return static_cast<std::size_t>(h[1]) & (kShards - 1);
  }
  std::vector<std::unordered_set<Hash128, Hash128Hasher>> shards_;
};

/// The structural symmetry group of a configuration: every permutation pi
/// of quads whose home classes ({a : a % n_quads == h}) map onto classes of
/// equal size, combined with every address bijection that sends class h
/// onto class pi(h).  home_of commutes with each relabeling by
/// construction, so each one is an automorphism of the transition system.
std::vector<Machine::Relabeling> symmetry_group(int n_quads, int n_addrs) {
  std::vector<Machine::Relabeling> out;
  std::vector<std::vector<sim::Addr>> cls(static_cast<std::size_t>(n_quads));
  for (sim::Addr a = 0; a < n_addrs; ++a) {
    cls[static_cast<std::size_t>(a % n_quads)].push_back(a);
  }
  std::vector<sim::QuadId> perm(static_cast<std::size_t>(n_quads));
  for (int q = 0; q < n_quads; ++q) perm[static_cast<std::size_t>(q)] = q;
  do {
    bool sizes_ok = true;
    for (std::size_t h = 0; h < cls.size(); ++h) {
      if (cls[h].size() != cls[static_cast<std::size_t>(perm[h])].size()) {
        sizes_ok = false;
      }
    }
    if (!sizes_ok) continue;
    // Enumerate the product of per-class permutations of the target class.
    std::vector<std::vector<sim::Addr>> target(cls.size());
    for (std::size_t h = 0; h < cls.size(); ++h) {
      target[h] = cls[static_cast<std::size_t>(perm[h])];
    }
    std::function<void(std::size_t)> emit = [&](std::size_t h) {
      if (h == cls.size()) {
        Machine::Relabeling r;
        r.quad = perm;
        r.addr.resize(static_cast<std::size_t>(n_addrs));
        for (std::size_t hh = 0; hh < cls.size(); ++hh) {
          for (std::size_t k = 0; k < cls[hh].size(); ++k) {
            r.addr[static_cast<std::size_t>(cls[hh][k])] = target[hh][k];
          }
        }
        out.push_back(std::move(r));
        return;
      }
      std::sort(target[h].begin(), target[h].end());
      do {
        emit(h + 1);
      } while (std::next_permutation(target[h].begin(), target[h].end()));
    };
    emit(0);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

struct ParentEdge {
  std::uint64_t parent = kNoParent;
  Machine::Action act{};
};

struct FrontierEntry {
  Machine::Snapshot snap;
  std::uint64_t id = 0;
};

/// A successor produced during wave expansion, pending the merge's
/// visited-set decision.
struct Candidate {
  Hash128 hash{};
  Machine::Snapshot snap;
  std::uint64_t parent = 0;
  Machine::Action act{};
};

/// One morsel's expansion output.  Slot-per-morsel and concatenated in
/// morsel order, per the pool's determinism contract.
struct MorselOut {
  std::vector<Candidate> candidates;
  std::vector<std::pair<std::string, std::string>> violations;  // raw, suffix
  std::vector<std::size_t> deadlocks;  // frontier indices
  std::uint64_t transitions = 0;
  std::uint64_t dedup_hits = 0;
};

}  // namespace

ReachParallelResult explore_parallel(const ProtocolSpec& spec,
                                     const ChannelAssignment& v,
                                     const ReachParallelConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  CCSQL_SPAN(span, "reach.explore_parallel", "checks");

  sim::SimConfig sim_cfg;
  sim_cfg.n_quads = config.n_quads;
  sim_cfg.n_addrs = config.n_addrs;
  sim_cfg.channel_capacity = config.channel_capacity;
  sim_cfg.transactions_per_node = config.ops_per_node;
  sim_cfg.transactions_by_node = config.ops_by_node;
  sim_cfg.workload_ops = config.inject_ops;

  core::Pool& pool = core::Pool::global();
  const std::size_t jobs =
      config.jobs != 0 ? config.jobs : core::Pool::default_jobs();
  const std::size_t lanes = pool.size() + 1;

  // One Machine per lane (workers plus the caller), created on first touch:
  // a machine carries six table indexes, so lanes that never run a morsel
  // should not pay for one.
  std::vector<std::unique_ptr<Machine>> machines(lanes);
  const std::unique_ptr<std::once_flag[]> machine_once(
      new std::once_flag[lanes]);
  auto lane_machine = [&]() -> Machine& {
    const auto lane = static_cast<std::size_t>(core::Pool::worker_id() + 1);
    std::call_once(machine_once[lane], [&, lane] {
      auto m = std::make_unique<Machine>(spec, v, sim_cfg);
      m->enable_random_workload();
      machines[lane] = std::move(m);
    });
    return *machines[lane];
  };

  // Per-node budgets make quads distinguishable, so the permutation group
  // is only sound under uniform budgets.
  const bool symmetric_config = config.ops_by_node.empty();
  const std::vector<Machine::Relabeling> group =
      (config.symmetry && symmetric_config)
          ? symmetry_group(config.n_quads, config.n_addrs)
          : std::vector<Machine::Relabeling>{};

  ReachParallelResult result;
  result.canon_group = group.empty() ? 1 : group.size();
  result.complete = true;

  ShardedVisited visited;
  std::vector<ParentEdge> parents;
  std::vector<FrontierEntry> frontier;

  Machine& root = lane_machine();  // the caller's lane
  visited.insert(root.canonical_hash(group));
  parents.push_back(ParentEdge{});
  frontier.push_back(FrontierEntry{root.snapshot(), 0});
  result.states = 1;

  std::unordered_set<std::string> violations_seen;
  // First deadlock state id per distinct wedged-channel set, BFS order.
  std::map<std::vector<Value>, std::uint64_t> first_by_wedge;
  std::uint64_t first_deadlock = kNoParent;

  constexpr std::size_t kGrain = 4;
  bool stop = false;
  bool truncated = false;

  while (!frontier.empty() && !stop) {
    ++result.waves;
    const std::size_t n = frontier.size();
    const std::size_t morsels = (n + kGrain - 1) / kGrain;
    std::vector<MorselOut> outs(morsels);

    pool.parallel_for(
        n, kGrain, jobs,
        [&](std::size_t begin, std::size_t end, std::size_t m) {
          Machine& mach = lane_machine();
          MorselOut& out = outs[m];
          for (std::size_t i = begin; i < end; ++i) {
            const Machine::Snapshot& state = frontier[i].snap;
            mach.restore(state);
            const auto actions = mach.possible_actions();
            bool any_fired = false;
            for (const auto& action : actions) {
              mach.restore(state);
              mach.clear_errors();
              if (!mach.apply_action(action)) continue;  // blocked channel
              any_fired = true;
              ++out.transitions;
              for (const auto& e : mach.errors()) {
                out.violations.emplace_back(
                    e, "  [after " + action.to_string() + "]");
              }
              const Hash128 h = mach.canonical_hash(group);
              if (visited.contains(h)) {
                ++out.dedup_hits;
                continue;
              }
              out.candidates.push_back(
                  Candidate{h, mach.snapshot(), frontier[i].id, action});
            }
            if (!any_fired) {
              // Terminal state: quiescent-and-done is fine; anything else
              // with messages in flight is a global deadlock.
              mach.restore(state);
              if (!mach.quiescent()) {
                out.deadlocks.push_back(i);
              } else {
                for (const auto& e : mach.check_quiescent_state()) {
                  out.violations.emplace_back(e, "  [terminal state]");
                }
              }
            }
          }
        });

    // Merge, single-threaded, in morsel order.  BFS discovery order here is
    // exactly the sequential explorer's, so first-occurrence annotations,
    // state ids, and the first-deadlock choice all agree with the oracle.
    std::vector<FrontierEntry> next;
    for (std::size_t m = 0; m < morsels; ++m) {
      MorselOut& out = outs[m];
      result.transitions += out.transitions;
      result.dedup_hits += out.dedup_hits;
      for (auto& [raw, suffix] : out.violations) {
        if (violations_seen.insert(raw).second) {
          result.violations.push_back(raw + suffix);
        }
      }
      for (std::size_t i : out.deadlocks) {
        ++result.deadlock_states;
        Machine& mach = lane_machine();
        mach.restore(frontier[i].snap);
        if (first_deadlock == kNoParent) {
          first_deadlock = frontier[i].id;
          result.deadlock_example = mach.describe_network();
        }
        first_by_wedge.try_emplace(mach.occupied_vcs(), frontier[i].id);
      }
      for (Candidate& cand : out.candidates) {
        if (truncated) break;
        if (!visited.insert(cand.hash)) {
          ++result.dedup_hits;  // same-wave duplicate
          continue;
        }
        const std::uint64_t id = parents.size();
        parents.push_back(ParentEdge{cand.parent, cand.act});
        next.push_back(FrontierEntry{std::move(cand.snap), id});
        ++result.states;
        if (result.states >= config.max_states) {
          truncated = true;
          result.complete = false;
        }
      }
    }

    if (config.stop_at_first_deadlock && first_deadlock != kNoParent) {
      result.complete = false;
      stop = true;
    }
    if (truncated) stop = true;

    CCSQL_INSTANT("reach.wave", "checks", obs::arg("wave", result.waves),
                  obs::arg("states", result.states),
                  obs::arg("frontier", next.size()));
    frontier = std::move(next);
  }

  // Parent-pointer witness reconstruction.
  const auto trace_of = [&](std::uint64_t id) {
    std::vector<Machine::Action> trace;
    for (std::uint64_t cur = id; cur != 0;) {
      const ParentEdge& e = parents[static_cast<std::size_t>(cur)];
      trace.push_back(e.act);
      cur = e.parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };
  for (const auto& [wedge, id] : first_by_wedge) {
    ReachDeadlock d;
    d.state = id;
    d.occupied = wedge;
    d.trace = trace_of(id);
    result.deadlocks.push_back(std::move(d));
  }
  std::sort(result.deadlocks.begin(), result.deadlocks.end(),
            [](const ReachDeadlock& a, const ReachDeadlock& b) {
              return a.state < b.state;
            });
  if (first_deadlock != kNoParent) {
    result.deadlock_trace = trace_of(first_deadlock);
  }

  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  span.arg("states", result.states);
  span.arg("transitions", result.transitions);
  span.arg("deadlock_states", result.deadlock_states);
  span.arg("waves", result.waves);
  CCSQL_COUNT("reach.states", result.states);
  CCSQL_COUNT("reach.transitions", result.transitions);
  CCSQL_COUNT("reach.deadlock_states", result.deadlock_states);
  CCSQL_COUNT("reach.waves", result.waves);
  CCSQL_COUNT("reach.dedup_hits", result.dedup_hits);
  CCSQL_COUNT("reach.canon_factor", result.canon_group);
  CCSQL_OBSERVE("reach.states_per_sec",
                result.states / std::max(result.seconds, 1e-9));
  return result;
}

std::vector<CycleClassification> classify_cycles(
    const ProtocolSpec& spec, const ChannelAssignment& v,
    const std::vector<VcgCycle>& cycles, const ReachParallelConfig& config) {
  CCSQL_SPAN(span, "reach.classify_cycles", "checks");
  const ReachParallelResult r = explore_parallel(spec, v, config);
  std::vector<CycleClassification> out;
  out.reserve(cycles.size());
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    CycleClassification c;
    c.cycle_index = i;
    c.channels = cycles[i].channels;
    std::sort(c.channels.begin(), c.channels.end());
    c.channels.erase(std::unique(c.channels.begin(), c.channels.end()),
                     c.channels.end());
    c.states_searched = r.states;
    c.verdict =
        r.complete ? CycleVerdict::kUnreachable : CycleVerdict::kBudget;
    // A deadlock realizes the cycle when its wedged-channel set is exactly
    // the cycle's channel set: every channel of the cycle is blocked and
    // nothing else is, which rules out matching a composition-artifact
    // sub-cycle against a wider wedge (Figure 4 wedges {VC2, VC4}, not the
    // VC2->VC2 or VC4->VC4 self-loops the composition also reports).
    for (const ReachDeadlock& d : r.deadlocks) {
      if (d.occupied == c.channels) {
        c.verdict = CycleVerdict::kReachable;
        c.witness = d.trace;
        break;
      }
    }
    out.push_back(std::move(c));
  }
  span.arg("cycles", cycles.size());
  span.arg("states", r.states);
  return out;
}

std::string format_classification(
    const std::vector<CycleClassification>& classifications) {
  std::ostringstream os;
  if (classifications.empty()) {
    os << "no cycles to classify\n";
    return os.str();
  }
  for (const auto& c : classifications) {
    os << "cycle " << c.cycle_index << " [";
    for (std::size_t i = 0; i < c.channels.size(); ++i) {
      os << (i == 0 ? "" : " ") << c.channels[i].str();
    }
    os << "]: ";
    switch (c.verdict) {
      case CycleVerdict::kReachable:
        os << "reachable  (witness: " << c.witness.size() << " actions)";
        break;
      case CycleVerdict::kUnreachable:
        os << "unreachable  (" << c.states_searched
           << " states, search complete)";
        break;
      case CycleVerdict::kBudget:
        os << "not reached within budget  (" << c.states_searched
           << " states, search truncated)";
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ccsql
