#pragma once

#include <string>
#include <vector>

#include "protocol/protocol_spec.hpp"

namespace ccsql {

/// A specification-hygiene finding.  Lint findings are advisories, not
/// errors: a value declared in a column table but never produced by the
/// constraints usually means a stale domain or a forgotten transition —
/// the kind of drift the paper's teams reviewed on every table revision.
struct LintFinding {
  enum class Kind {
    kUnusedDomainValue,   // value legal in a column but in no row
    kUnconstrainedOutput, // output column with no constraint at all
    kUnusedMessage,       // catalogued message never appears in any table
    kUnconsumedMessage,   // message produced but consumed by no controller
  };
  Kind kind;
  std::string controller;  // empty for catalog-level findings
  std::string column;      // for column-level findings
  std::string value;       // the offending value / message

  [[nodiscard]] std::string to_string() const;
};

/// Runs all hygiene checks over the generated tables of `spec`.
/// `sinks` lists messages legitimately consumed outside the controller
/// tables (processor/device-facing responses).
std::vector<LintFinding> lint(
    const ProtocolSpec& spec,
    const std::vector<std::string>& sinks = {});

/// Renders findings one per line.
std::string lint_report(const std::vector<LintFinding>& findings);

}  // namespace ccsql
