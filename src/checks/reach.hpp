#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "protocol/channel_assignment.hpp"
#include "protocol/protocol_spec.hpp"
#include "sim/types.hpp"

namespace ccsql {

/// Configuration for explicit-state reachability analysis.  State count is
/// exponential in every knob — which is the point: this is the
/// model-checking baseline the paper contrasts its SQL analyses with
/// (section 4.2 cites SPIN/SMV: powerful, but the controller tables "need
/// to be extensively abstracted to avoid the state explosion problem").
struct ReachConfig {
  int n_quads = 2;
  int n_addrs = 1;
  int channel_capacity = 1;
  /// Transaction-generating operations each node may inject, total.
  int ops_per_node = 2;
  /// Exploration budget; the search reports `complete = false` if hit.
  std::uint64_t max_states = 2'000'000;
  /// Stop as soon as one global deadlock state is found (witness hunting).
  bool stop_at_first_deadlock = false;
};

/// Outcome of the exhaustive search.
struct ReachResult {
  std::uint64_t states = 0;       // distinct states visited
  std::uint64_t transitions = 0;  // state transitions executed
  bool complete = false;          // search exhausted the state space
  /// Global deadlock states: messages in flight but no action can fire.
  std::uint64_t deadlock_states = 0;
  std::string deadlock_example;   // channel dump of the first one
  /// Coherence-monitor violations (SWMR, stale fills, ...) found on any
  /// path, deduplicated.
  std::vector<std::string> violations;
  double seconds = 0.0;

  [[nodiscard]] bool verified() const {
    return complete && deadlock_states == 0 && violations.empty();
  }
};

/// Breadth-first exploration of every interleaving of the table-driven
/// protocol under the given channel assignment, from the all-invalid
/// initial state.  Checks the same properties the paper establishes
/// statically: coherence invariants on every state and absence of global
/// deadlock.  Exhaustive but exponential — run it next to the millisecond
/// SQL analyses (bench_reach) to reproduce the paper's argument for the
/// database approach.
ReachResult explore(const ProtocolSpec& spec, const ChannelAssignment& v,
                    const ReachConfig& config);

}  // namespace ccsql
