#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "checks/vcg.hpp"
#include "protocol/channel_assignment.hpp"
#include "protocol/protocol_spec.hpp"
#include "sim/machine.hpp"
#include "sim/types.hpp"

namespace ccsql {

/// Configuration for explicit-state reachability analysis.  State count is
/// exponential in every knob — which is the point: this is the
/// model-checking baseline the paper contrasts its SQL analyses with
/// (section 4.2 cites SPIN/SMV: powerful, but the controller tables "need
/// to be extensively abstracted to avoid the state explosion problem").
struct ReachConfig {
  int n_quads = 2;
  int n_addrs = 1;
  int channel_capacity = 1;
  /// Transaction-generating operations each node may inject, total.
  int ops_per_node = 2;
  /// Exploration budget; the search reports `complete = false` if hit.
  std::uint64_t max_states = 2'000'000;
  /// Stop as soon as one global deadlock state is found (witness hunting).
  bool stop_at_first_deadlock = false;
  /// Directed exploration: when non-empty, only these operation names are
  /// injected (e.g. {"prd", "patomic"} reaches the Figure 4 wedge without
  /// paying for the full alphabet's interleavings).
  std::vector<std::string> inject_ops;
  /// Per-node injection budgets overriding ops_per_node (index = node id;
  /// empty = uniform).  Asymmetric budgets break quad interchangeability,
  /// so explore_parallel ignores `symmetry` when this is set.
  std::vector<int> ops_by_node;
};

/// Outcome of the exhaustive search.
struct ReachResult {
  std::uint64_t states = 0;       // distinct states visited
  std::uint64_t transitions = 0;  // state transitions executed
  bool complete = false;          // search exhausted the state space
  /// Global deadlock states: messages in flight but no action can fire.
  std::uint64_t deadlock_states = 0;
  std::string deadlock_example;   // channel dump of the first one
  /// Coherence-monitor violations (SWMR, stale fills, ...) found on any
  /// path, deduplicated.
  std::vector<std::string> violations;
  double seconds = 0.0;

  [[nodiscard]] bool verified() const {
    return complete && deadlock_states == 0 && violations.empty();
  }
};

/// Breadth-first exploration of every interleaving of the table-driven
/// protocol under the given channel assignment, from the all-invalid
/// initial state.  Checks the same properties the paper establishes
/// statically: coherence invariants on every state and absence of global
/// deadlock.  Exhaustive but exponential — run it next to the millisecond
/// SQL analyses (bench_reach) to reproduce the paper's argument for the
/// database approach.
ReachResult explore(const ProtocolSpec& spec, const ChannelAssignment& v,
                    const ReachConfig& config);

// ---- Parallel, symmetry-reduced exploration ---------------------------------
// explore_parallel() is the scaled-up successor of explore(): the same BFS
// semantics, but driven as waves on the shared work-stealing pool, with the
// visited set keyed on 128-bit hashed canonical fingerprints instead of
// strings, optional quad/address orbit canonicalization, and parent-pointer
// bookkeeping so every deadlock comes back with a replayable action trace.
// Aggregates (states, transitions, deadlock count, the violation set) are
// identical at any `jobs` value, and — with symmetry off — identical to the
// sequential explore() on every config neither search truncates.

struct ReachParallelConfig : ReachConfig {
  /// Parallel lanes for wave expansion; 0 = core::Pool::default_jobs().
  std::size_t jobs = 0;
  /// Collapse states equal up to quad permutation (plus the consistent
  /// address relabeling the home function requires) onto one visited-set
  /// key.  Sound: the relabelings are automorphisms of the transition
  /// system, so verdicts are preserved; visited-state counts shrink by up
  /// to the orbit factor.
  bool symmetry = false;
};

/// One reachable global-deadlock state, with enough context to classify
/// VCG cycles against it and to replay it.
struct ReachDeadlock {
  std::uint64_t state = 0;            // explorer state id (BFS order)
  std::vector<Value> occupied;        // wedged virtual channels, sorted
  /// Action trace from the initial state; feeding it through a fresh
  /// sim::Machine reproduces the deadlock.
  std::vector<sim::Machine::Action> trace;
};

struct ReachParallelResult : ReachResult {
  std::uint64_t waves = 0;       // BFS depth reached
  std::uint64_t dedup_hits = 0;  // successor candidates already visited
  std::uint64_t canon_group = 1; // symmetry-group order (relabelings tried)
  /// First deadlock found per distinct wedged-channel set, in BFS order.
  std::vector<ReachDeadlock> deadlocks;
  /// Convenience: the trace of the first deadlock (empty when none).
  std::vector<sim::Machine::Action> deadlock_trace;
};

ReachParallelResult explore_parallel(const ProtocolSpec& spec,
                                     const ChannelAssignment& v,
                                     const ReachParallelConfig& config);

// ---- VCG cycle classification ----------------------------------------------
// The static deadlock analysis (checks/vcg.hpp) reports *potential* cycles;
// classify_cycles() closes the loop against ground truth: one reachability
// run collects every distinct wedged-channel set, and each VCG cycle is
// labeled by whether some reachable deadlock's wedge is exactly the cycle's
// channel set (the Figure 4 VC2/VC4 wedge matches the VC2<->VC4 cycle, but
// not the composition-artifact VC2->VC2 / VC4->VC4 self-loops).

enum class CycleVerdict {
  kReachable,    // a reachable deadlock realizes exactly this channel set
  kUnreachable,  // search exhausted the space without realizing it
  kBudget,       // search truncated (max_states / first-deadlock stop)
};

struct CycleClassification {
  std::size_t cycle_index = 0;     // index into the input cycle list
  std::vector<Value> channels;     // the cycle's channel set, sorted
  CycleVerdict verdict = CycleVerdict::kBudget;
  /// Replayable witness trace for kReachable (empty otherwise).
  std::vector<sim::Machine::Action> witness;
  std::uint64_t states_searched = 0;
};

/// Labels each VCG cycle by targeted reachability under `config`.  The
/// verdicts are deterministic at any jobs value; kUnreachable is only issued
/// when the search completed, so it certifies spuriousness at this config.
std::vector<CycleClassification> classify_cycles(
    const ProtocolSpec& spec, const ChannelAssignment& v,
    const std::vector<VcgCycle>& cycles, const ReachParallelConfig& config);

/// The `reach_dump --classify` report: one line per cycle, golden-testable.
std::string format_classification(
    const std::vector<CycleClassification>& classifications);

}  // namespace ccsql
