#include "checks/vcg.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/pool.hpp"
#include "obs/obs.hpp"
#include "relational/database.hpp"
#include "relational/error.hpp"

namespace ccsql {

ControllerTableRef ControllerTableRef::from_spec(const ControllerSpec& spec,
                                                 const Table& table) {
  ControllerTableRef ref;
  ref.name = spec.name();
  ref.table = &table;
  const MessageTriple* in = spec.input_triple();
  if (in == nullptr) {
    throw Error("controller " + spec.name() + " declares no input triple");
  }
  ref.input = *in;
  ref.outputs = spec.output_triples();
  return ref;
}

std::string DependencyRow::key() const {
  std::string k;
  for (Value v : {m1, s1, d1, v1, m2, s2, d2, v2}) {
    k += v.str();
    k += '|';
  }
  return k;
}

std::string VcgCycle::to_string() const {
  std::ostringstream os;
  os << "cycle:";
  for (Value c : channels) os << ' ' << c.str();
  os << " -> " << channels.front().str() << '\n';
  for (const auto& w : witnesses) {
    os << "  (" << w.m1.str() << ", " << w.s1.str() << ", " << w.d1.str()
       << ", " << w.v1.str() << ") -> (" << w.m2.str() << ", " << w.s2.str()
       << ", " << w.d2.str() << ", " << w.v2.str() << ")  [" << w.origin
       << "]\n";
  }
  return os.str();
}

DeadlockAnalysis::DeadlockAnalysis(std::vector<ControllerTableRef> tables,
                                   const ChannelAssignment& v,
                                   DeadlockOptions options)
    : options_(options) {
  CCSQL_SPAN(span, "vcg.analysis", "checks");
  {
    CCSQL_SPAN(s, "vcg.controller_rows", "checks");
    build_controller_rows(tables, v);
    s.arg("rows", controller_rows_.size());
  }
  {
    CCSQL_SPAN(s, "vcg.compose", "checks");
    compose();
    s.arg("protocol_rows", protocol_rows_.size());
  }
  {
    CCSQL_SPAN(s, "vcg.build_graph", "checks");
    build_graph();
    s.arg("edges", edges_.size());
  }
  {
    CCSQL_SPAN(s, "vcg.find_cycles", "checks");
    find_cycles();
    s.arg("cycles", cycles_.size());
  }
  span.arg("protocol_rows", protocol_rows_.size());
  span.arg("cycles", cycles_.size());
  CCSQL_COUNT("vcg.analyses", 1);
  CCSQL_COUNT("vcg.controller_rows", controller_rows_.size());
  CCSQL_COUNT("vcg.protocol_rows", protocol_rows_.size());
  CCSQL_COUNT("vcg.edges", edges_.size());
  CCSQL_COUNT("vcg.cycles", cycles_.size());
}

void DeadlockAnalysis::build_controller_rows(
    const std::vector<ControllerTableRef>& tables,
    const ChannelAssignment& v) {
  std::vector<QuadPlacement> placements;
  if (options_.use_placements) {
    placements.assign(kAllPlacements.begin(), kAllPlacements.end());
  } else {
    placements.push_back(QuadPlacement::kAllDistinct);
  }

  // One task per placement relation.  Dedup keys carry the placement, so
  // cross-placement collisions cannot occur: a per-placement local seen set
  // plus a merge in placement order produces exactly the rows (and row
  // order) of the old single-threaded global-set loop.
  std::vector<std::vector<DependencyRow>> per_placement(placements.size());
  auto build_one = [&](std::size_t pi) {
    const QuadPlacement placement = placements[pi];
    std::vector<DependencyRow>& rows = per_placement[pi];
    // Deduplicate per placement: identical role-substituted rows from
    // different table rows carry the same dependency.
    std::unordered_set<std::string> seen;
    for (const auto& ref : tables) {
      const Table& t = *ref.table;
      const Schema& schema = t.schema();
      const ColumnView im = t.column(schema.index_of(ref.input.msg));
      const ColumnView is = t.column(schema.index_of(ref.input.src));
      const ColumnView id = t.column(schema.index_of(ref.input.dst));
      // Resolve each output triple's columns once, outside the row loop.
      struct OutCols {
        ColumnView m, s, d;
      };
      std::vector<OutCols> out_cols;
      out_cols.reserve(ref.outputs.size());
      for (const auto& out : ref.outputs) {
        out_cols.push_back({t.column(schema.index_of(out.msg)),
                            t.column(schema.index_of(out.src)),
                            t.column(schema.index_of(out.dst))});
      }
      for (std::size_t r = 0; r < t.row_count(); ++r) {
        const Value m1 = im[r];
        if (m1.is_null()) continue;
        const Value s1 = is[r], d1 = id[r];
        // The channel is assigned by the original roles; the placement
        // substitution is applied afterwards (paper: the extended tables
        // are modified per placement).
        const auto vc1 = v.vc_for(m1, s1, d1);
        if (!vc1) continue;
        for (const OutCols& out : out_cols) {
          const Value m2 = out.m[r];
          if (m2.is_null()) continue;
          const Value s2 = out.s[r];
          const Value d2 = out.d[r];
          const auto vc2 = v.vc_for(m2, s2, d2);
          if (!vc2) continue;  // dedicated path: no channel dependency
          DependencyRow row;
          row.m1 = m1;
          row.s1 = place_role(placement, s1);
          row.d1 = place_role(placement, d1);
          row.v1 = *vc1;
          row.m2 = m2;
          row.s2 = place_role(placement, s2);
          row.d2 = place_role(placement, d2);
          row.v2 = *vc2;
          row.placement = placement;
          row.origin = ref.name + "#" + std::to_string(r) + " [" +
                       std::string(to_string(placement)) + "]";
          const std::string k =
              row.key() + std::string(to_string(placement));
          if (seen.insert(k).second) {
            rows.push_back(std::move(row));
          }
        }
      }
    }
  };
  const std::size_t jobs =
      options_.jobs != 0 ? options_.jobs : core::Pool::default_jobs();
  if (jobs > 1 && placements.size() > 1) {
    core::Pool::global().parallel_tasks(placements.size(), jobs, build_one);
  } else {
    for (std::size_t pi = 0; pi < placements.size(); ++pi) build_one(pi);
  }
  for (std::vector<DependencyRow>& rows : per_placement) {
    controller_rows_.insert(controller_rows_.end(),
                            std::make_move_iterator(rows.begin()),
                            std::make_move_iterator(rows.end()));
  }
}

void DeadlockAnalysis::compose() {
  // Start the protocol dependency table with the controller rows.
  std::unordered_set<std::string> seen;
  for (const auto& row : controller_rows_) {
    if (seen.insert(row.key()).second) protocol_rows_.push_back(row);
  }

  std::vector<DependencyRow> frontier = controller_rows_;
  for (int round = 0; round < options_.composition_rounds; ++round) {
    // The composition step is itself a relational join: the frontier rows'
    // *output* assignment against every protocol row's *input* assignment,
    // same placement (paper, section 4.4).  Stage both sides as tables and
    // let the query planner turn the match into a hash join; the idx
    // columns carry row provenance back out.
    Database db;
    db.set_jobs(options_.jobs != 0 ? options_.jobs
                                   : core::Pool::default_jobs());
    Table f(Schema::of({"m2", "s2", "d2", "v2", "placement", "idx"}));
    f.reserve_rows(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const DependencyRow& r = frontier[i];
      f.append({r.m2, r.s2, r.d2, r.v2, V(to_string(r.placement)),
                V(std::to_string(i))});
    }
    Table p(Schema::of({"m1", "s1", "d1", "v1", "placement", "idx"}));
    p.reserve_rows(protocol_rows_.size());
    for (std::size_t i = 0; i < protocol_rows_.size(); ++i) {
      const DependencyRow& r = protocol_rows_[i];
      p.append({r.m1, r.s1, r.d1, r.v1, V(to_string(r.placement)),
                V(std::to_string(i))});
    }
    db.put("F", std::move(f));
    db.put("P", std::move(p));
    std::string sql =
        "select f.idx, p.idx from F f, P p "
        "where f.s2 = p.s1 and f.d2 = p.d1 and f.v2 = p.v1 "
        "and f.placement = p.placement";
    // Relaxed matching joins regardless of message; exactness is recorded
    // per pair below.
    if (!options_.ignore_messages) sql += " and f.m2 = p.m1";
    // The join probe fans out across the pool (morsel-parallel); the pair
    // post-processing below stays serial so the global dedup is ordered.
    const Table pairs = db.query(sql).rows;

    std::vector<DependencyRow> fresh;
    const ColumnView fidx = pairs.column(0);
    const ColumnView pidx = pairs.column(1);
    for (std::size_t i = 0; i < pairs.row_count(); ++i) {
      const DependencyRow& r =
          frontier[std::stoul(std::string(fidx[i].str()))];
      const DependencyRow& s =
          protocol_rows_[std::stoul(std::string(pidx[i].str()))];
      const bool exact = s.m1 == r.m2;
      DependencyRow composed;
      composed.m1 = r.m1;
      composed.s1 = r.s1;
      composed.d1 = r.d1;
      composed.v1 = r.v1;
      composed.m2 = s.m2;
      composed.s2 = s.s2;
      composed.d2 = s.d2;
      composed.v2 = s.v2;
      composed.placement = r.placement;
      composed.composed = true;
      composed.ignored_message = !exact;
      composed.origin = "compose(" + r.origin + " ; " + s.origin + ")" +
                        (exact ? "" : " ignoring message");
      if (seen.insert(composed.key()).second) {
        fresh.push_back(composed);
      }
    }
    CCSQL_COUNT("vcg.compositions", fresh.size());
    CCSQL_INSTANT("vcg.compose_round", "checks",
                  ::ccsql::obs::arg("round", round),
                  ::ccsql::obs::arg("frontier", frontier.size()),
                  ::ccsql::obs::arg("fresh", fresh.size()));
    if (fresh.empty()) break;
    protocol_rows_.insert(protocol_rows_.end(), fresh.begin(), fresh.end());
    frontier = std::move(fresh);
  }
}

void DeadlockAnalysis::build_graph() {
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < protocol_rows_.size(); ++i) {
    const auto& r = protocol_rows_[i];
    const std::uint64_t k =
        (static_cast<std::uint64_t>(r.v1.id()) << 32) | r.v2.id();
    if (seen.insert(k).second) {
      edges_.push_back(Edge{r.v1, r.v2, i});
    }
  }
}

void DeadlockAnalysis::find_cycles() {
  // Collect nodes.
  std::vector<Value> nodes;
  auto node_index = [&](Value v) -> std::size_t {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == v) return i;
    }
    nodes.push_back(v);
    return nodes.size() - 1;
  };
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj;  // (to, edge)
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const std::size_t a = node_index(edges_[e].from);
    const std::size_t b = node_index(edges_[e].to);
    if (adj.size() < nodes.size()) adj.resize(nodes.size());
    adj[a].push_back({b, e});
  }
  adj.resize(nodes.size());

  // Enumerate simple cycles: DFS from each start node, visiting only nodes
  // with index >= start, closing back to start.  The channel graph is tiny
  // (a handful of virtual channels), so this is exact and cheap.
  std::vector<std::size_t> path;       // node indices
  std::vector<std::size_t> path_edges;  // edge indices
  std::vector<bool> on_path(nodes.size(), false);

  auto emit = [&](std::size_t closing_edge) {
    if (cycles_.size() >= options_.max_cycles) return;
    VcgCycle cycle;
    for (std::size_t n : path) cycle.channels.push_back(nodes[n]);
    for (std::size_t e : path_edges) {
      cycle.witnesses.push_back(protocol_rows_[edges_[e].witness]);
    }
    cycle.witnesses.push_back(protocol_rows_[edges_[closing_edge].witness]);
    cycles_.push_back(std::move(cycle));
  };

  std::size_t start = 0;
  std::function<void(std::size_t)> dfs = [&](std::size_t u) {
    if (cycles_.size() >= options_.max_cycles) return;
    for (const auto& [w, e] : adj[u]) {
      if (w == start) {
        emit(e);
      } else if (w > start && !on_path[w]) {
        on_path[w] = true;
        path.push_back(w);
        path_edges.push_back(e);
        dfs(w);
        path_edges.pop_back();
        path.pop_back();
        on_path[w] = false;
      }
    }
  };

  for (start = 0; start < nodes.size(); ++start) {
    on_path[start] = true;
    path = {start};
    path_edges.clear();
    dfs(start);
    on_path[start] = false;
  }
}

Table DeadlockAnalysis::protocol_dependency_table() const {
  Table t(Schema::of({"m1", "s1", "d1", "v1", "m2", "s2", "d2", "v2"}));
  t.reserve_rows(protocol_rows_.size());
  for (const auto& r : protocol_rows_) {
    t.append({r.m1, r.s1, r.d1, r.v1, r.m2, r.s2, r.d2, r.v2});
  }
  return t.distinct();
}

std::vector<Value> DeadlockAnalysis::cyclic_channels() const {
  std::vector<Value> out;
  for (const auto& c : cycles_) {
    for (Value v : c.channels) {
      if (std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  }
  return out;
}

std::string DeadlockAnalysis::report() const {
  std::ostringstream os;
  os << "protocol dependency table: " << protocol_rows_.size() << " rows ("
     << controller_rows_.size() << " from controllers)\n";
  os << "VCG edges:";
  for (const auto& e : edges_) {
    os << ' ' << e.from.str() << "->" << e.to.str();
  }
  os << '\n';
  if (cycles_.empty()) {
    os << "no cycles: assignment is deadlock-free\n";
  } else {
    os << cycles_.size() << " cycle(s) found:\n";
    for (const auto& c : cycles_) os << c.to_string();
  }
  return os.str();
}

}  // namespace ccsql
