#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "protocol/channel_assignment.hpp"
#include "protocol/controller_spec.hpp"
#include "protocol/roles.hpp"
#include "relational/table.hpp"

namespace ccsql {

/// A controller table together with the interpretation of its message
/// ports, as consumed by the deadlock analysis.
struct ControllerTableRef {
  std::string name;
  const Table* table = nullptr;
  MessageTriple input;
  std::vector<MessageTriple> outputs;

  /// Binds a spec's port declarations to its generated table.
  static ControllerTableRef from_spec(const ControllerSpec& spec,
                                      const Table& table);
};

/// One row of a (individual / pairwise / protocol) dependency table:
/// input assignment (m1,s1,d1,v1) followed by output assignment
/// (m2,s2,d2,v2) — processing a message held in v1 requires a free slot in
/// v2 (paper, section 4.1).
struct DependencyRow {
  Value m1, s1, d1, v1;
  Value m2, s2, d2, v2;
  QuadPlacement placement = QuadPlacement::kAllDistinct;
  bool composed = false;       // produced by pairwise composition
  bool ignored_message = false;  // produced by the relaxed matching
  std::string origin;          // human-readable provenance

  /// The 8-tuple as text, for deduplication and display.
  [[nodiscard]] std::string key() const;
};

/// A cycle in the virtual channel dependency graph: the channel sequence
/// (first channel repeated implicitly) and one witness dependency row per
/// edge.
struct VcgCycle {
  std::vector<Value> channels;
  std::vector<DependencyRow> witnesses;

  [[nodiscard]] std::string to_string() const;
};

/// Options controlling the analysis.  Defaults reproduce the paper's
/// procedure: all five quad placements, one round of pairwise composition
/// with both exact and message-ignoring matching.
struct DeadlockOptions {
  bool use_placements = true;   // all five quad-placement relations
  bool ignore_messages = true;  // the interleaving relaxation
  int composition_rounds = 1;   // paper used 1; footnote 2 allows more
  std::size_t max_cycles = 64;  // cap on reported simple cycles
  /// Parallel lanes: the five placement relations build concurrently and
  /// the composition join fans out across the pool.  0 = process default
  /// (core::Pool::default_jobs); results are identical at any value.
  std::size_t jobs = 0;
};

/// The SQL-based deadlock detection method of section 4.1: build the
/// protocol dependency table from the controller tables and the virtual
/// channel assignment V, derive the virtual channel dependency graph, and
/// report cycles.
class DeadlockAnalysis {
 public:
  DeadlockAnalysis(std::vector<ControllerTableRef> tables,
                   const ChannelAssignment& v,
                   DeadlockOptions options = {});

  /// Individual controller dependency rows (all placements), before
  /// composition.
  [[nodiscard]] const std::vector<DependencyRow>& controller_rows() const {
    return controller_rows_;
  }

  /// The full protocol dependency table rows (controller rows plus
  /// pairwise compositions), deduplicated on the 8-tuple.
  [[nodiscard]] const std::vector<DependencyRow>& protocol_rows() const {
    return protocol_rows_;
  }

  /// The protocol dependency table as a relation with columns
  /// m1,s1,d1,v1,m2,s2,d2,v2 — the tabular form of VCG.
  [[nodiscard]] Table protocol_dependency_table() const;

  /// Distinct VCG edges (v1 -> v2) with one witness row index each.
  struct Edge {
    Value from, to;
    std::size_t witness;  // index into protocol_rows()
  };
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Simple cycles of the VCG (bounded by options.max_cycles), each with
  /// witness rows.  An empty result certifies absence of deadlocks under
  /// this assignment.
  [[nodiscard]] const std::vector<VcgCycle>& cycles() const {
    return cycles_;
  }
  [[nodiscard]] bool deadlock_free() const { return cycles_.empty(); }

  /// Channels that appear in at least one cycle.
  [[nodiscard]] std::vector<Value> cyclic_channels() const;

  /// Human-readable report of edges and cycles.
  [[nodiscard]] std::string report() const;

 private:
  void build_controller_rows(const std::vector<ControllerTableRef>& tables,
                             const ChannelAssignment& v);
  void compose();
  void build_graph();
  void find_cycles();

  DeadlockOptions options_;
  std::vector<DependencyRow> controller_rows_;
  std::vector<DependencyRow> protocol_rows_;
  std::vector<Edge> edges_;
  std::vector<VcgCycle> cycles_;
};

}  // namespace ccsql
