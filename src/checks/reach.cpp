#include "checks/reach.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <unordered_set>

#include "obs/obs.hpp"
#include "sim/machine.hpp"

namespace ccsql {

ReachResult explore(const ProtocolSpec& spec, const ChannelAssignment& v,
                    const ReachConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  CCSQL_SPAN(span, "reach.explore", "checks");

  sim::SimConfig sim_cfg;
  sim_cfg.n_quads = config.n_quads;
  sim_cfg.n_addrs = config.n_addrs;
  sim_cfg.channel_capacity = config.channel_capacity;
  sim_cfg.transactions_per_node = config.ops_per_node;
  sim_cfg.transactions_by_node = config.ops_by_node;
  sim_cfg.workload_ops = config.inject_ops;

  sim::Machine machine(spec, v, sim_cfg);
  machine.enable_random_workload();  // sets the per-node injection budget

  ReachResult result;
  std::unordered_set<std::string> visited;
  std::unordered_set<std::string> violations_seen;
  std::deque<sim::Machine::Snapshot> frontier;

  visited.insert(machine.fingerprint());
  frontier.push_back(machine.snapshot());
  result.states = 1;
  result.complete = true;

  while (!frontier.empty()) {
    if (result.states >= config.max_states) {
      result.complete = false;
      break;
    }
    if ((result.states & 0xfff) == 0) {
      CCSQL_INSTANT(
          "reach.progress", "checks", obs::arg("states", result.states),
          obs::arg("frontier", frontier.size()),
          obs::arg("states_per_sec",
                   result.states /
                       std::max(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count(),
                                1e-9)));
    }
    sim::Machine::Snapshot state = std::move(frontier.front());
    frontier.pop_front();

    machine.restore(state);
    const auto actions = machine.possible_actions();
    bool any_fired = false;
    for (const auto& action : actions) {
      machine.restore(state);
      machine.clear_errors();
      if (!machine.apply_action(action)) continue;  // blocked channel
      any_fired = true;
      ++result.transitions;
      for (const auto& e : machine.errors()) {
        if (violations_seen.insert(e).second) {
          result.violations.push_back(e + "  [after " + action.to_string() +
                                      "]");
        }
      }
      const std::string fp = machine.fingerprint();
      if (visited.insert(fp).second) {
        ++result.states;
        frontier.push_back(machine.snapshot());
      }
    }

    if (!any_fired) {
      // Terminal state: quiescent-and-done is fine; anything else with
      // messages in flight is a global deadlock.
      machine.restore(state);
      if (!machine.quiescent()) {
        if (result.deadlock_states++ == 0) {
          result.deadlock_example = machine.describe_network();
          if (config.stop_at_first_deadlock) {
            result.complete = false;
            break;
          }
        }
      } else {
        // Quiescent terminal state: run the directory/cache agreement
        // check the simulator applies at completion.
        for (const auto& e : machine.check_quiescent_state()) {
          if (violations_seen.insert(e).second) {
            result.violations.push_back(e + "  [terminal state]");
          }
        }
      }
    }
  }

  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  span.arg("states", result.states);
  span.arg("transitions", result.transitions);
  span.arg("deadlock_states", result.deadlock_states);
  CCSQL_COUNT("reach.states", result.states);
  CCSQL_COUNT("reach.transitions", result.transitions);
  CCSQL_COUNT("reach.deadlock_states", result.deadlock_states);
  CCSQL_OBSERVE("reach.states_per_sec",
                result.states / std::max(result.seconds, 1e-9));
  return result;
}

}  // namespace ccsql
