#pragma once

#include <string>
#include <vector>

#include "protocol/protocol_spec.hpp"
#include "relational/query.hpp"

namespace ccsql {

/// Result of checking one invariant: whether it holds, the violating rows
/// of every failing emptiness check, and the time spent
/// (std::chrono::steady_clock, also mirrored as an `invariant.check` span
/// and the `invariant.micros` histogram through ccsql::obs).
struct InvariantResult {
  std::string name;
  bool holds = false;
  std::vector<Table> violations;  // one per failing SELECT
  double micros = 0.0;
};

/// Runs named SQL invariants against a protocol database (paper, section
/// 4.3) through the Database session facade: emptiness probes in exists
/// mode first, full materialisation only for violated checks.
class InvariantChecker {
 public:
  explicit InvariantChecker(const Database& db) : db_(&db) {}

  /// Checks one invariant; never throws on violation (only on malformed
  /// SQL).
  [[nodiscard]] InvariantResult check(const NamedInvariant& inv) const;

  /// Checks a whole suite.  With the session's jobs > 1 the invariants run
  /// as one pool task each; results always come back in suite order, and
  /// each verdict/witness set is identical to a serial run.
  [[nodiscard]] std::vector<InvariantResult> check_all(
      const std::vector<NamedInvariant>& suite) const;

  /// True iff all results hold.
  static bool all_hold(const std::vector<InvariantResult>& results);

  /// The paper's headline claim: the whole ~50-invariant suite runs in
  /// under five minutes.
  static constexpr double kSuiteBudgetMicros = 5.0 * 60.0 * 1e6;

  /// Wall time the suite spent, summed over all results.
  static double total_micros(const std::vector<InvariantResult>& results);

  /// True iff the suite finished inside kSuiteBudgetMicros.
  static bool within_budget(const std::vector<InvariantResult>& results);

  /// Human-readable summary (one line per invariant + violation tables,
  /// then a suite-total line with the <5-minute budget verdict).
  static std::string report(const std::vector<InvariantResult>& results,
                            bool verbose = false);

 private:
  const Database* db_;
};

}  // namespace ccsql
