#include "checks/lint.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace ccsql {

std::string LintFinding::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kUnusedDomainValue:
      os << controller << "." << column << ": domain value '" << value
         << "' appears in no generated row";
      break;
    case Kind::kUnconstrainedOutput:
      os << controller << "." << column
         << ": output column has no constraint (free cross product)";
      break;
    case Kind::kUnusedMessage:
      os << "message '" << value << "' appears in no controller table";
      break;
    case Kind::kUnconsumedMessage:
      os << "message '" << value
         << "' is produced but consumed by no controller";
      break;
  }
  return os.str();
}

std::vector<LintFinding> lint(const ProtocolSpec& spec,
                              const std::vector<std::string>& sinks) {
  std::vector<LintFinding> findings;
  const Database& db = spec.database();

  std::set<std::string> used_messages;   // message values seen anywhere
  std::set<std::string> consumed;        // seen in some input column
  std::set<std::string> produced;        // seen in some output column

  for (const auto& c : spec.controllers()) {
    const Table& t = db.get(c->name());
    const Schema& schema = t.schema();
    const GenerationInput& gen =
        c->generation_input(&spec.database().functions());

    // Unused domain values.
    for (std::size_t col = 0; col < schema.size(); ++col) {
      const ColumnView values = t.column(col);
      const std::set<Value> seen(values.begin(), values.end());
      for (const Domain& d : gen.domains) {
        if (d.column() != schema.column(col).name) continue;
        for (Value v : d.values()) {
          if (seen.count(v) == 0) {
            findings.push_back(LintFinding{
                LintFinding::Kind::kUnusedDomainValue, c->name(),
                schema.column(col).name, std::string(v.str())});
          }
        }
      }
    }

    // Unconstrained outputs.
    for (std::size_t col = 0; col < schema.size(); ++col) {
      if (schema.column(col).kind != ColumnKind::kOutput) continue;
      const auto& name = schema.column(col).name;
      const bool constrained = std::any_of(
          gen.constraints.begin(), gen.constraints.end(),
          [&](const ColumnConstraint& cc) { return cc.column == name; });
      if (!constrained) {
        findings.push_back(LintFinding{
            LintFinding::Kind::kUnconstrainedOutput, c->name(), name, ""});
      }
    }

    // Message usage: any column may carry message values (e.g. the node
    // controller's processor port); network-level produce/consume routing
    // is tracked through the declared message triples only.
    for (std::size_t col = 0; col < schema.size(); ++col) {
      for (const Value m : t.column(col)) {
        if (!m.is_null() && spec.messages().has(m)) {
          used_messages.insert(std::string(m.str()));
        }
      }
    }
    for (const auto& triple : c->message_triples()) {
      for (const Value m : t.column(schema.index_of(triple.msg))) {
        if (m.is_null()) continue;
        (triple.is_input ? consumed : produced)
            .insert(std::string(m.str()));
      }
    }
  }

  for (const auto& m : spec.messages().all()) {
    if (used_messages.count(m.name) == 0) {
      findings.push_back(LintFinding{LintFinding::Kind::kUnusedMessage, "",
                                     "", m.name});
    }
  }
  for (const auto& m : produced) {
    if (consumed.count(m) == 0 &&
        std::find(sinks.begin(), sinks.end(), m) == sinks.end()) {
      findings.push_back(
          LintFinding{LintFinding::Kind::kUnconsumedMessage, "", "", m});
    }
  }
  return findings;
}

std::string lint_report(const std::vector<LintFinding>& findings) {
  std::ostringstream os;
  for (const auto& f : findings) os << f.to_string() << '\n';
  os << findings.size() << " finding(s)\n";
  return os.str();
}

}  // namespace ccsql
