#pragma once

// The single public entry header.  examples/ and apps/ include this instead
// of reaching into subsystem-internal headers:
//
//   #include "ccsql.hpp"
//
//   ccsql::ProtocolSpec spec = ccsql::asura_spec();
//   const ccsql::Database& db = spec.database();
//   ccsql::QueryResult r = db.query("select * from PCC where s2 = 'IV'");
//   ccsql::InvariantChecker checker(db);
//   ccsql::DeadlockAnalysis vcg(spec);
//
// Exposed here:
//  - Database / QueryResult — the query-session facade (planner + --jobs
//    settings, morsel-parallel execution, timing)
//  - Table / Catalog / format helpers — the relational substrate
//  - ProtocolSpec + the bundled protocols (asura_spec, snoopbus_spec)
//  - InvariantChecker — the paper's error-detection suite runner
//  - DeadlockAnalysis — VCG construction / cycle detection
//  - bytecode_enabled / set_bytecode_enabled — the predicate-engine switch
//    (--no-bytecode / CCSQL_NO_BYTECODE falls back to the interpreted walk)
//
// Deeper layers (plan IR, the solver, the simulator core) stay internal;
// include their headers directly only from within src/.

#include "checks/invariant.hpp"
#include "checks/vcg.hpp"
#include "protocol/protocol_spec.hpp"
#include "relational/bytecode.hpp"
#include "relational/database.hpp"
#include "relational/format.hpp"
