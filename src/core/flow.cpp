#include "core/flow.hpp"

#include <chrono>
#include <algorithm>
#include <sstream>

namespace ccsql {

bool FlowReport::invariants_hold() const {
  return InvariantChecker::all_hold(invariants);
}

bool FlowReport::deadlock_free(std::string_view assignment) const {
  for (const auto& a : assignments) {
    if (!assignment.empty() && a.name != assignment) continue;
    if (!a.cycles.empty()) return false;
  }
  return true;
}

bool FlowReport::debugged(std::string_view assignment) const {
  return invariants_hold() && deadlock_free(assignment) &&
         (!mapping_ran || mapping.ok());
}

std::string FlowReport::summary() const {
  std::ostringstream os;
  os << "controller tables:\n";
  for (const auto& t : tables) {
    os << "  " << t.name << ": " << t.rows << " rows x " << t.cols
       << " cols (" << static_cast<long>(t.gen_micros) << " us)\n";
  }
  std::size_t violated = 0;
  for (const auto& r : invariants) {
    if (!r.holds) ++violated;
  }
  os << "invariants: " << invariants.size() << " checked, " << violated
     << " violated\n";
  for (const auto& a : assignments) {
    os << "assignment " << a.name << ": " << a.dependency_rows
       << " dependency rows, " << a.edges << " VCG edges, " << a.cycles.size()
       << " cycle(s)\n";
  }
  if (mapping_ran) {
    os << "hardware mapping: ED " << mapping.ed_rows << " rows, "
       << mapping.table_rows.size() << " implementation tables, "
       << (mapping.ok() ? "verified" : "FAILED") << "\n";
  }
  return os.str();
}

FlowReport Flow::run(const FlowOptions& options) const {
  FlowReport report;

  // 1. Generate the controller tables (paper, section 3).
  for (const auto& c : spec_->controllers()) {
    const auto start = std::chrono::steady_clock::now();
    c->invalidate();
    const Table& t = c->generate(&spec_->database().functions());
    const auto end = std::chrono::steady_clock::now();
    report.tables.push_back(FlowReport::TableInfo{
        c->name(), t.row_count(), t.column_count(),
        std::chrono::duration<double, std::micro>(end - start).count()});
  }

  // 2. Static checks: invariants (section 4.3).
  if (options.check_invariants) {
    InvariantChecker checker(spec_->database());
    report.invariants = checker.check_all(spec_->invariants());
  }

  // 3. Static checks: deadlocks per channel assignment (section 4.1).
  std::vector<ControllerTableRef> refs;
  for (const auto& c : spec_->controllers()) {
    refs.push_back(ControllerTableRef::from_spec(
        *c, spec_->database().get(c->name())));
  }
  for (const auto& a : spec_->assignments()) {
    if (!options.assignments.empty() &&
        std::find(options.assignments.begin(), options.assignments.end(),
                  a->name()) == options.assignments.end()) {
      continue;
    }
    DeadlockAnalysis analysis(refs, *a, options.vcg);
    FlowReport::AssignmentResult result;
    result.name = a->name();
    result.dependency_rows = analysis.protocol_rows().size();
    result.edges = analysis.edges().size();
    result.cycles = analysis.cycles();
    report.assignments.push_back(std::move(result));
  }

  // 4. Hardware mapping (section 5).
  if (options.map_directory) {
    report.mapping = mapping::verify_directory_mapping(*spec_);
    report.mapping_ran = true;
  }
  return report;
}

}  // namespace ccsql
