#include "core/flow.hpp"

#include <chrono>
#include <algorithm>
#include <sstream>

#include "obs/obs.hpp"
#include "sim/machine.hpp"

namespace ccsql {

bool FlowReport::invariants_hold() const {
  return InvariantChecker::all_hold(invariants);
}

bool FlowReport::invariants_within_budget() const {
  return InvariantChecker::within_budget(invariants);
}

bool FlowReport::deadlock_free(std::string_view assignment) const {
  for (const auto& a : assignments) {
    if (!assignment.empty() && a.name != assignment) continue;
    if (!a.cycles.empty()) return false;
  }
  return true;
}

bool FlowReport::debugged(std::string_view assignment) const {
  return invariants_hold() && deadlock_free(assignment) &&
         (!mapping_ran || mapping.ok()) && (!sim.ran || sim.healthy);
}

std::string FlowReport::summary() const {
  std::ostringstream os;
  os << "controller tables:\n";
  for (const auto& t : tables) {
    os << "  " << t.name << ": " << t.rows << " rows x " << t.cols
       << " cols (" << static_cast<long>(t.gen_micros) << " us)\n";
  }
  std::size_t violated = 0;
  for (const auto& r : invariants) {
    if (!r.holds) ++violated;
  }
  const double suite_us = InvariantChecker::total_micros(invariants);
  os << "invariants: " << invariants.size() << " checked, " << violated
     << " violated, " << static_cast<long>(suite_us) << " us total (budget "
     << (invariants_within_budget() ? "OK" : "EXCEEDED") << ")\n";
  for (const auto& a : assignments) {
    os << "assignment " << a.name << ": " << a.dependency_rows
       << " dependency rows, " << a.edges << " VCG edges, " << a.cycles.size()
       << " cycle(s)\n";
  }
  if (mapping_ran) {
    os << "hardware mapping: ED " << mapping.ed_rows << " rows, "
       << mapping.table_rows.size() << " implementation tables, "
       << (mapping.ok() ? "verified" : "FAILED") << "\n";
  }
  if (sim.ran) {
    os << "sim validation (" << sim.assignment << "): "
       << (sim.healthy ? "healthy" : "UNHEALTHY") << ", " << sim.transactions
       << " transactions in " << sim.steps << " steps, " << sim.error_count
       << " error(s)";
    if (!sim.detail.empty()) os << " [" << sim.detail << "]";
    os << "\n";
  } else if (sim.skipped) {
    os << "sim validation: skipped (" << sim.detail << ")\n";
  }
  return os.str();
}

FlowReport Flow::run(const FlowOptions& options) const {
  FlowReport report;
  CCSQL_SPAN(flow_span, "flow.run", "core");

  // 1. Generate the controller tables (paper, section 3).
  {
    CCSQL_SPAN(span, "flow.generate", "core");
    for (const auto& c : spec_->controllers()) {
      const auto start = std::chrono::steady_clock::now();
      c->invalidate();
      const Table& t = c->generate(&spec_->database().functions());
      const auto end = std::chrono::steady_clock::now();
      report.tables.push_back(FlowReport::TableInfo{
          c->name(), t.row_count(), t.column_count(),
          std::chrono::duration<double, std::micro>(end - start).count()});
    }
    span.arg("tables", report.tables.size());
  }

  // 2. Static checks: invariants (section 4.3).
  if (options.check_invariants) {
    CCSQL_SPAN(span, "flow.invariants", "core");
    InvariantChecker checker(spec_->database());
    report.invariants = checker.check_all(spec_->invariants());
    span.arg("checked", report.invariants.size())
        .arg("within_budget", report.invariants_within_budget());
  }

  // 3. Static checks: deadlocks per channel assignment (section 4.1).
  {
    CCSQL_SPAN(span, "flow.deadlock", "core");
    std::vector<ControllerTableRef> refs;
    for (const auto& c : spec_->controllers()) {
      refs.push_back(ControllerTableRef::from_spec(
          *c, spec_->database().get(c->name())));
    }
    for (const auto& a : spec_->assignments()) {
      if (!options.assignments.empty() &&
          std::find(options.assignments.begin(), options.assignments.end(),
                    a->name()) == options.assignments.end()) {
        continue;
      }
      DeadlockAnalysis analysis(refs, *a, options.vcg);
      FlowReport::AssignmentResult result;
      result.name = a->name();
      result.dependency_rows = analysis.protocol_rows().size();
      result.edges = analysis.edges().size();
      result.cycles = analysis.cycles();
      report.assignments.push_back(std::move(result));
    }
    span.arg("assignments", report.assignments.size());
  }

  // 4. Hardware mapping (section 5).
  if (options.map_directory) {
    CCSQL_SPAN(span, "flow.mapping", "core");
    report.mapping = mapping::verify_directory_mapping(*spec_);
    report.mapping_ran = true;
    span.arg("ok", report.mapping.ok());
  }

  // 5. Dynamic validation: a small random workload on the table-driven
  // simulator, under the first cycle-free analysed assignment.
  if (options.sim_validate) {
    CCSQL_SPAN(span, "flow.sim_validate", "core");
    const FlowReport::AssignmentResult* chosen = nullptr;
    for (const auto& a : report.assignments) {
      if (a.cycles.empty()) {
        chosen = &a;
        break;
      }
    }
    if (chosen == nullptr) {
      report.sim.skipped = true;
      report.sim.detail = "no cycle-free assignment to simulate";
    } else {
      report.sim.assignment = chosen->name;
      try {
        sim::SimConfig cfg;
        cfg.n_quads = 2;
        cfg.n_addrs = 4;
        cfg.channel_capacity = 2;
        cfg.transactions_per_node = options.sim_transactions;
        sim::Machine m(*spec_, spec_->assignment(chosen->name), cfg);
        m.set_memory_latency(2);
        m.enable_random_workload();
        sim::SimResult r = m.run();
        report.sim.ran = true;
        report.sim.healthy = r.healthy();
        report.sim.steps = r.steps;
        report.sim.transactions = r.transactions_done;
        report.sim.error_count = r.errors.size();
        if (!r.errors.empty()) report.sim.detail = r.errors.front();
        else if (r.deadlocked) report.sim.detail = "deadlocked";
        else if (r.stalled) report.sim.detail = "stalled";
      } catch (const std::exception& e) {
        // The simulator is ASURA-shaped; other specs legitimately lack the
        // tables it drives.  Record why and carry on.
        report.sim = FlowReport::SimValidation{};
        report.sim.skipped = true;
        report.sim.detail = e.what();
      }
    }
    span.arg("ran", report.sim.ran).arg("healthy", report.sim.healthy);
  }

  flow_span.arg("debugged_all", report.invariants_hold() &&
                                    report.deadlock_free(""));
  return report;
}

}  // namespace ccsql
