#pragma once

#include <map>
#include <string>
#include <vector>

#include "checks/invariant.hpp"
#include "checks/vcg.hpp"
#include "mapping/asura_map.hpp"
#include "protocol/protocol_spec.hpp"

namespace ccsql {

/// Options for one run of the methodology flow.
struct FlowOptions {
  bool check_invariants = true;
  /// Channel assignments to analyse for deadlocks; empty = all of the
  /// spec's assignments.
  std::vector<std::string> assignments;
  DeadlockOptions vcg;
  /// Run the section 5 hardware-mapping flow for the directory controller
  /// (ASURA-shaped specs only: requires a controller named "D").
  bool map_directory = false;
  /// Dynamic validation: drive the table-driven simulator with a small
  /// random workload under the first cycle-free analysed assignment.
  /// Skipped gracefully (reported, not fatal) on specs the ASURA-shaped
  /// simulator cannot execute.
  bool sim_validate = true;
  /// Workload size for the validation run (transactions per node).
  int sim_transactions = 12;
};

/// Everything one run of the flow produced: per-table generation stats,
/// invariant results, per-assignment cycle reports and (optionally) the
/// hardware-mapping verification.
struct FlowReport {
  struct TableInfo {
    std::string name;
    std::size_t rows = 0;
    std::size_t cols = 0;
    double gen_micros = 0.0;
  };

  std::vector<TableInfo> tables;
  std::vector<InvariantResult> invariants;
  struct AssignmentResult {
    std::string name;
    std::size_t dependency_rows = 0;
    std::size_t edges = 0;
    std::vector<VcgCycle> cycles;
  };
  std::vector<AssignmentResult> assignments;
  mapping::MappingReport mapping;
  bool mapping_ran = false;

  /// Outcome of the dynamic-validation simulation (FlowOptions::sim_validate).
  struct SimValidation {
    bool ran = false;      // a run finished (healthy or not)
    bool skipped = false;  // spec not executable by the ASURA-shaped sim
    std::string assignment;
    bool healthy = false;
    std::uint64_t steps = 0;
    int transactions = 0;
    std::size_t error_count = 0;
    std::string detail;  // first error, or the reason it was skipped
  };
  SimValidation sim;

  /// True iff every invariant holds.
  [[nodiscard]] bool invariants_hold() const;

  /// True iff the invariant suite finished inside the paper's <5-minute
  /// interactive budget (trivially true when invariants were not run).
  [[nodiscard]] bool invariants_within_budget() const;

  /// True iff the named assignment (or all analysed ones) is cycle-free.
  [[nodiscard]] bool deadlock_free(std::string_view assignment = "") const;

  /// The paper's acceptance criterion for an enhanced architecture
  /// specification: tables generated, all invariants hold, the chosen
  /// assignment is deadlock-free, (when run) the mapping round-trips and
  /// the validation simulation is healthy.
  [[nodiscard]] bool debugged(std::string_view assignment) const;

  /// Human-readable multi-line summary.
  [[nodiscard]] std::string summary() const;
};

/// The push-button methodology of the paper: from a protocol spec
/// ("database input": schemas, constraints, checks) to debugged tables and
/// verified implementation tables.
class Flow {
 public:
  explicit Flow(const ProtocolSpec& spec) : spec_(&spec) {}

  [[nodiscard]] FlowReport run(const FlowOptions& options = {}) const;

 private:
  const ProtocolSpec* spec_;
};

}  // namespace ccsql
