#pragma once

// Shared work-stealing thread pool (ccsql::core::Pool) underpinning the
// parallel execution layer: morsel-driven query operators (src/plan), the
// parallel invariant-suite runner (src/checks) and parallel VCG composition.
//
// Design (after Leis et al.'s morsel-driven parallelism):
//
//  - One process-wide pool (Pool::global()), sized by --jobs / CCSQL_JOBS /
//    std::thread::hardware_concurrency at first use.  Every layer shares it;
//    nested parallel regions never oversubscribe.
//  - Each worker owns a deque: it pushes/pops its own tasks LIFO (cache-warm)
//    and steals FIFO from victims when idle.
//  - Group::wait() *helps*: a thread blocked on a group keeps draining pool
//    tasks, so nested parallelism (a parallel invariant task running a
//    parallel hash join) cannot deadlock and the caller's core is never idle.
//  - parallel_for() hands out fixed-size morsels from an atomic dispenser.
//    Morsel boundaries depend only on (n, grain) — never on the worker count
//    — so callers that write one result slot per morsel and concatenate in
//    morsel order produce bit-identical output at any --jobs value.
//
// Determinism contract: `jobs` decides only *where* morsels run, never how
// the input is split.  jobs <= 1 executes inline on the calling thread.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ccsql::obs {
class Metrics;
}  // namespace ccsql::obs

namespace ccsql::core {

/// Snapshot of pool activity counters, cumulative since pool construction.
/// busy/idle nanoseconds cover worker threads only (helping lanes in
/// Group::wait are accounted in tasks_run/help_runs but keep no clock).
struct PoolStats {
  std::size_t workers = 0;
  std::uint64_t tasks_run = 0;        // tasks executed on any lane
  std::uint64_t help_runs = 0;        // of which: run by off-pool helpers
  std::uint64_t steals = 0;           // worker takes from a sibling's queue
  std::uint64_t steal_failures = 0;   // full sweeps that found every queue empty
  std::uint64_t queue_high_water = 0; // max queue length seen on any worker
  std::uint64_t busy_nanos = 0;       // summed worker time spent running tasks
  std::uint64_t idle_nanos = 0;       // summed worker time spent waiting

  /// busy / (busy + idle) over the worker threads; 0 with no workers.
  [[nodiscard]] double utilization() const noexcept;
  /// One line, e.g. `pool: 3 workers, 128 tasks (41 stolen), util 87.2%`.
  [[nodiscard]] std::string summary() const;
};

class Pool {
 public:
  /// A pool with `threads` worker threads.  Zero is valid: tasks then run
  /// only via Group::wait() helping on the submitting thread.
  explicit Pool(std::size_t threads);
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// The process-wide pool shared by all subsystems.  Created on first use
  /// with default_jobs() - 1 workers (the calling thread is the extra lane).
  static Pool& global();

  /// Process-wide parallelism default: the last set_default_jobs() value,
  /// else CCSQL_JOBS from the environment, else hardware_concurrency (min 1).
  [[nodiscard]] static std::size_t default_jobs();

  /// Overrides default_jobs (the CLI's --jobs flag).  Call before the first
  /// parallel region to also size the global pool; later calls still cap
  /// effective parallelism but cannot grow an already-created pool.
  static void set_default_jobs(std::size_t jobs);

  /// Index of the calling pool worker thread, or -1 off-pool.
  [[nodiscard]] static int worker_id() noexcept;

  /// Worker-thread count (the pool supports size()+1 concurrent lanes: the
  /// workers plus the thread waiting in Group::wait).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Snapshot of the activity counters (cheap: relaxed loads only).
  [[nodiscard]] PoolStats stats() const;
  /// Writes the snapshot as pool.* gauges into `metrics` (overwrite
  /// semantics, so repeated publishes do not accumulate).
  void publish_stats(obs::Metrics& metrics) const;

  /// A set of tasks completed together.  wait() (or the destructor) blocks
  /// until every task ran, helping with queued pool work meanwhile, and
  /// rethrows the first exception a task threw.
  class Group {
   public:
    explicit Group(Pool& pool) : pool_(&pool) {}
    ~Group();
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    /// Schedules `fn` on the pool.
    void run(std::function<void()> fn);
    void wait();

   private:
    friend class Pool;
    void finish_one(std::exception_ptr err) noexcept;

    Pool* pool_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
    std::exception_ptr error_;
  };

  /// Morsel-driven loop over [0, n): body(begin, end, morsel) for each chunk
  /// of at most `grain` indices, claimed dynamically by up to `jobs` lanes
  /// (the caller participates).  Morsel boundaries are a pure function of
  /// (n, grain); `morsel` is the chunk ordinal, for slot-per-morsel output.
  /// body must be thread-safe; exceptions propagate to the caller.
  void parallel_for(std::size_t n, std::size_t grain, std::size_t jobs,
                    const std::function<void(std::size_t begin,
                                             std::size_t end,
                                             std::size_t morsel)>& body);

  /// Runs `count` independent tasks body(i) for i in [0, count) on up to
  /// `jobs` lanes; equivalent to parallel_for(count, 1, jobs, ...).
  void parallel_tasks(std::size_t count, std::size_t jobs,
                      const std::function<void(std::size_t)>& body);

 private:
  struct Task {
    std::function<void()> fn;
    Group* group = nullptr;
  };
  struct Worker;

  /// Pops or steals one task and runs it; false when every queue was empty.
  bool try_run_one();
  void run_task(Task& task) noexcept;
  void worker_loop(std::size_t wid);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};

  // Telemetry (relaxed: counters tolerate torn reads across each other).
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> help_runs_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_failures_{0};
  std::atomic<std::uint64_t> queue_high_water_{0};
};

}  // namespace ccsql::core
