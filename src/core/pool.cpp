#include "core/pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <thread>
#include <utility>

#include "obs/obs.hpp"

namespace ccsql::core {
namespace {

/// Worker index of the current thread within its owning pool (-1 off-pool).
thread_local int t_worker_id = -1;

std::atomic<std::size_t>& default_jobs_cell() {
  static std::atomic<std::size_t> cell{0};  // 0 = not yet resolved
  return cell;
}

std::size_t resolve_default_jobs() {
  if (const char* env = std::getenv("CCSQL_JOBS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

struct Pool::Worker {
  std::mutex mu;
  std::deque<Task> queue;
  std::thread thread;
  // Written only by the owning worker thread; read by Pool::stats().
  std::atomic<std::uint64_t> busy_nanos{0};
  std::atomic<std::uint64_t> idle_nanos{0};
};

Pool::Pool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after every Worker exists: worker_loop steals from
  // siblings and must never observe a partially-built vector.
  for (std::size_t i = 0; i < threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() {
  stop_.store(true, std::memory_order_relaxed);
  sleep_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

Pool& Pool::global() {
  static Pool pool(default_jobs() > 0 ? default_jobs() - 1 : 0);
  return pool;
}

std::size_t Pool::default_jobs() {
  std::size_t v = default_jobs_cell().load(std::memory_order_relaxed);
  if (v == 0) {
    v = resolve_default_jobs();
    default_jobs_cell().store(v, std::memory_order_relaxed);
  }
  return v;
}

void Pool::set_default_jobs(std::size_t jobs) {
  default_jobs_cell().store(std::max<std::size_t>(1, jobs),
                            std::memory_order_relaxed);
}

int Pool::worker_id() noexcept { return t_worker_id; }

PoolStats Pool::stats() const {
  PoolStats s;
  s.workers = workers_.size();
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.help_runs = help_runs_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.steal_failures = steal_failures_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    s.busy_nanos += w->busy_nanos.load(std::memory_order_relaxed);
    s.idle_nanos += w->idle_nanos.load(std::memory_order_relaxed);
  }
  return s;
}

void Pool::publish_stats(obs::Metrics& metrics) const {
  const PoolStats s = stats();
  metrics.set("pool.workers", s.workers);
  metrics.set("pool.tasks_run", s.tasks_run);
  metrics.set("pool.help_runs", s.help_runs);
  metrics.set("pool.steals", s.steals);
  metrics.set("pool.steal_failures", s.steal_failures);
  metrics.set("pool.queue_high_water", s.queue_high_water);
  metrics.set("pool.busy_nanos", s.busy_nanos);
  metrics.set("pool.idle_nanos", s.idle_nanos);
  metrics.set("pool.utilization_pct",
              static_cast<std::uint64_t>(s.utilization() * 100.0 + 0.5));
}

double PoolStats::utilization() const noexcept {
  const double denom =
      static_cast<double>(busy_nanos) + static_cast<double>(idle_nanos);
  return denom > 0 ? static_cast<double>(busy_nanos) / denom : 0.0;
}

std::string PoolStats::summary() const {
  char util[16];
  std::snprintf(util, sizeof(util), "%.1f%%", utilization() * 100.0);
  std::string out = "pool: " + std::to_string(workers) + " workers, " +
                    std::to_string(tasks_run) + " tasks (" +
                    std::to_string(steals) + " stolen, " +
                    std::to_string(help_runs) + " helped), " +
                    std::to_string(steal_failures) + " empty sweeps, " +
                    "queue high-water " + std::to_string(queue_high_water) +
                    ", utilization " + util;
  return out;
}

bool Pool::try_run_one() {
  const int self = t_worker_id;
  const std::size_t n = workers_.size();
  if (n == 0) return false;
  // Own queue first (back = LIFO), then round the victims (front = FIFO).
  const std::size_t start =
      self >= 0 ? static_cast<std::size_t>(self)
                : next_queue_.load(std::memory_order_relaxed) % n;
  for (std::size_t k = 0; k < n; ++k) {
    Worker& w = *workers_[(start + k) % n];
    Task task;
    {
      std::lock_guard<std::mutex> lock(w.mu);
      if (w.queue.empty()) continue;
      if (k == 0 && self >= 0) {
        task = std::move(w.queue.back());
        w.queue.pop_back();
      } else {
        task = std::move(w.queue.front());
        w.queue.pop_front();
      }
    }
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (self < 0) {
      help_runs_.fetch_add(1, std::memory_order_relaxed);
    } else if (k != 0) {
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
    run_task(task);
    return true;
  }
  steal_failures_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Pool::run_task(Task& task) noexcept {
  std::exception_ptr err;
  try {
    task.fn();
  } catch (...) {
    err = std::current_exception();
  }
  if (task.group != nullptr) task.group->finish_one(err);
}

void Pool::worker_loop(std::size_t wid) {
  t_worker_id = static_cast<int>(wid);
  obs::set_current_worker(static_cast<int>(wid));
  Worker& self = *workers_[wid];
  auto mark = std::chrono::steady_clock::now();
  const auto elapsed_nanos = [&mark] {
    const auto now = std::chrono::steady_clock::now();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        now - mark)
                        .count();
    mark = now;
    return static_cast<std::uint64_t>(ns > 0 ? ns : 0);
  };
  while (!stop_.load(std::memory_order_relaxed)) {
    if (try_run_one()) {
      // The interval covered the queue sweep plus the task body: busy.
      self.busy_nanos.fetch_add(elapsed_nanos(), std::memory_order_relaxed);
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleep_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
    self.idle_nanos.fetch_add(elapsed_nanos(), std::memory_order_relaxed);
  }
}

// ---- Group ------------------------------------------------------------------

Pool::Group::~Group() {
  try {
    wait();
  } catch (...) {
    // A destructor must not throw; wait() explicitly to observe errors.
  }
}

void Pool::Group::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  Task task{std::move(fn), this};
  Pool& p = *pool_;
  const std::size_t n = p.workers_.size();
  if (n == 0) {
    // No workers: run through the deferred path — wait() executes it.
    // Queue on a synthetic slot is impossible, so run inline immediately.
    p.run_task(task);
    return;
  }
  const int self = t_worker_id;
  const std::size_t target =
      self >= 0 && static_cast<std::size_t>(self) < n
          ? static_cast<std::size_t>(self)
          : p.next_queue_.fetch_add(1, std::memory_order_relaxed) % n;
  std::size_t depth = 0;
  {
    Worker& w = *p.workers_[target];
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(std::move(task));
    depth = w.queue.size();
  }
  std::uint64_t hw = p.queue_high_water_.load(std::memory_order_relaxed);
  while (depth > hw && !p.queue_high_water_.compare_exchange_weak(
                           hw, depth, std::memory_order_relaxed)) {
  }
  p.sleep_cv_.notify_one();
}

void Pool::Group::finish_one(std::exception_ptr err) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (err && !error_) error_ = err;
  if (--pending_ == 0) cv_.notify_all();
}

void Pool::Group::wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_ == 0) break;
    }
    // Help: drain pool work while our tasks are in flight.  When nothing is
    // queued (our tasks are running on other workers), sleep briefly.
    if (pool_->try_run_one()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (pending_ == 0) break;
    cv_.wait_for(lock, std::chrono::microseconds(200));
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

// ---- parallel loops ---------------------------------------------------------

void Pool::parallel_for(
    std::size_t n, std::size_t grain, std::size_t jobs,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t morsels = (n + grain - 1) / grain;
  auto run_morsel = [&](std::size_t m) {
    const std::size_t begin = m * grain;
    body(begin, std::min(n, begin + grain), m);
  };
  if (jobs <= 1 || morsels <= 1) {
    for (std::size_t m = 0; m < morsels; ++m) run_morsel(m);
    return;
  }
  // Morsel dispenser: lanes claim chunk ordinals until exhausted.  The
  // split depends only on (n, grain), so output assembled per-morsel is
  // identical at any jobs value.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto claim_loop = [next, morsels, run_morsel]() {
    for (;;) {
      const std::size_t m = next->fetch_add(1, std::memory_order_relaxed);
      if (m >= morsels) break;
      run_morsel(m);
    }
  };
  const std::size_t lanes = std::min({jobs, morsels, size() + 1});
  Group group(*this);
  for (std::size_t i = 1; i < lanes; ++i) group.run(claim_loop);
  claim_loop();  // the caller is a lane too
  group.wait();
}

void Pool::parallel_tasks(std::size_t count, std::size_t jobs,
                          const std::function<void(std::size_t)>& body) {
  parallel_for(count, 1, jobs,
               [&](std::size_t begin, std::size_t, std::size_t) {
                 body(begin);
               });
}

}  // namespace ccsql::core
