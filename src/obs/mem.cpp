#include "obs/mem.hpp"

#include <cstdio>
#include <sstream>

#include "obs/obs.hpp"

namespace ccsql::obs {

MemTracker& MemTracker::global() {
  // Leaked like Tracer::global(): reservations held by function-local
  // statics (catalogs, cached specs) release during static destruction and
  // must still find a live tracker.
  static MemTracker* instance = new MemTracker();
  return *instance;
}

void MemTracker::bump(Cell& cell, std::uint64_t bytes) noexcept {
  const std::uint64_t live =
      cell.live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = cell.peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !cell.peak.compare_exchange_weak(peak, live,
                                          std::memory_order_relaxed)) {
  }
}

void MemTracker::add(Category cat, std::uint64_t bytes) noexcept {
  bump(cells_[static_cast<unsigned>(cat)], bytes);
  bump(total_, bytes);
}

void MemTracker::release(Category cat, std::uint64_t bytes) noexcept {
  cells_[static_cast<unsigned>(cat)].live.fetch_sub(bytes,
                                                    std::memory_order_relaxed);
  total_.live.fetch_sub(bytes, std::memory_order_relaxed);
}

MemTracker::Usage MemTracker::usage(Category cat) const noexcept {
  const Cell& c = cells_[static_cast<unsigned>(cat)];
  return {c.live.load(std::memory_order_relaxed),
          c.peak.load(std::memory_order_relaxed)};
}

MemTracker::Usage MemTracker::total() const noexcept {
  return {total_.live.load(std::memory_order_relaxed),
          total_.peak.load(std::memory_order_relaxed)};
}

void MemTracker::publish(Metrics& metrics) const {
  for (unsigned i = 0; i < kCategories; ++i) {
    const Usage u = usage(static_cast<Category>(i));
    const std::string base =
        std::string("mem.") + to_string(static_cast<Category>(i));
    metrics.set(base + "_live_bytes", u.live);
    metrics.set(base + "_peak_bytes", u.peak);
  }
  const Usage t = total();
  metrics.set("mem.total_live_bytes", t.live);
  metrics.set("mem.total_peak_bytes", t.peak);
}

std::string MemTracker::summary() const {
  std::ostringstream os;
  os << "memory:";
  for (unsigned i = 0; i < kCategories; ++i) {
    const Usage u = usage(static_cast<Category>(i));
    os << (i == 0 ? " " : ", ") << to_string(static_cast<Category>(i)) << " "
       << format_bytes(u.live) << " live / " << format_bytes(u.peak)
       << " peak";
  }
  const Usage t = total();
  os << ", total " << format_bytes(t.live) << " live / "
     << format_bytes(t.peak) << " peak";
  return os.str();
}

void MemTracker::reset() noexcept {
  for (Cell& c : cells_) {
    c.live.store(0, std::memory_order_relaxed);
    c.peak.store(0, std::memory_order_relaxed);
  }
  total_.live.store(0, std::memory_order_relaxed);
  total_.peak.store(0, std::memory_order_relaxed);
}

const char* to_string(MemTracker::Category cat) noexcept {
  switch (cat) {
    case MemTracker::Category::kTables:
      return "tables";
    case MemTracker::Category::kIndexes:
      return "indexes";
    case MemTracker::Category::kHashBuilds:
      return "hash_builds";
    case MemTracker::Category::kPlans:
      return "plans";
  }
  return "?";
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  unsigned u = 0;
  while (v >= 1024.0 && u + 1 < sizeof(units) / sizeof(units[0])) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

}  // namespace ccsql::obs
