#pragma once

// Cross-cutting observability for the ccsql tree: structured trace events
// (nested spans + instants) and named metrics (counters + histograms),
// written through pluggable sinks (human text, JSON-Lines, Chrome
// trace_event for Perfetto).
//
// Design rules:
//  - Disabled is the default and must stay near-free: every instrumentation
//    site guards on one relaxed atomic load before doing any work.
//  - Instrumentation goes through the CCSQL_* macros below; building with
//    -DCCSQL_TRACING=OFF compiles the sites out entirely (the library
//    itself — sinks, metrics, the summary tool — still builds).
//  - One process-wide tracer (Tracer::global()) so deep layers (the query
//    engine, the simulator) need no plumbing; tests may construct private
//    Tracer instances.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ccsql::obs {

// ---- events -----------------------------------------------------------------

/// Chrome trace_event phase letters, reused across all sinks.
enum class Phase : char {
  kBegin = 'B',    // span opened
  kEnd = 'E',      // span closed (carries dur + args)
  kInstant = 'i',  // point event
  kCounter = 'C',  // metric sample (emitted when a trace is finalised)
};

/// One key/value annotation.  `numeric` values are emitted unquoted by the
/// JSON sinks.
struct Arg {
  std::string key;
  std::string value;
  bool numeric = false;
};

Arg arg(std::string_view key, std::string_view value);
Arg arg(std::string_view key, const char* value);
Arg arg(std::string_view key, std::int64_t value);
Arg arg(std::string_view key, std::uint64_t value);
Arg arg(std::string_view key, int value);
Arg arg(std::string_view key, bool value);
Arg arg(std::string_view key, double value);

/// One trace record, as handed to sinks.
struct Event {
  Phase phase = Phase::kInstant;
  std::string name;
  std::string category;  // layer tag: relational / solver / checks / sim / ...
  std::uint64_t ts_micros = 0;   // microseconds since the tracer's epoch
  std::uint64_t dur_micros = 0;  // kEnd only
  int depth = 0;                 // span nesting depth at emission
  int worker = -1;               // pool worker id; -1 = main / off-pool
  std::vector<Arg> args;
};

/// Tags the calling thread as pool worker `id` (-1 = not a worker).  Every
/// event emitted from this thread then carries the id, so parallel traces
/// stay attributable (the Chrome sink maps it to a tid lane).  Called by
/// ccsql::core::Pool when worker threads start.
void set_current_worker(int id) noexcept;
[[nodiscard]] int current_worker() noexcept;

// ---- sinks ------------------------------------------------------------------

/// Receives every event of a trace.  Writes arrive already serialised under
/// the tracer's lock; sinks need no locking of their own.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const Event& event) = 0;
  /// Called exactly once, after the last write.
  virtual void finish() {}
};

/// Human-readable lines, indented by span depth.
class TextSink : public Sink {
 public:
  explicit TextSink(std::ostream& os) : os_(&os) {}
  void write(const Event& event) override;

 private:
  std::ostream* os_;
};

/// One JSON object per line; the format read back by tools/trace_summary.
class JsonlSink : public Sink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(&os) {}
  void write(const Event& event) override;

 private:
  std::ostream* os_;
};

/// Chrome trace_event JSON array, loadable in Perfetto / chrome://tracing.
class ChromeSink : public Sink {
 public:
  explicit ChromeSink(std::ostream& os) : os_(&os) {}
  void write(const Event& event) override;
  void finish() override;

 private:
  std::ostream* os_;
  bool first_ = true;
};

enum class Format { kText, kJsonl, kChrome };

/// Parses "text" / "jsonl" / "chrome"; nullopt on anything else.
std::optional<Format> parse_format(std::string_view name);

/// Guesses a format from a path: .jsonl -> jsonl, .json -> chrome,
/// everything else -> text.
Format format_for_path(std::string_view path);

/// Opens `path` for writing and wraps it in the sink for `format`.
/// Throws std::runtime_error if the file cannot be opened.
std::unique_ptr<Sink> open_trace_file(const std::string& path, Format format);

/// JSON string-body escaping shared by the sinks (no surrounding quotes).
std::string json_escape(std::string_view text);

// ---- metrics ----------------------------------------------------------------

/// Log2-bucketed histogram: bucket i counts values in [2^(i-1), 2^i), with
/// bucket 0 for values < 1.
struct Histogram {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::vector<std::uint64_t> buckets;  // grown on demand

  void observe(double value);
  [[nodiscard]] double mean() const { return count ? sum / count : 0.0; }
  /// Approximate quantile (q in [0,1]) reconstructed from the log2 buckets
  /// by linear interpolation inside the crossing bucket, clamped to
  /// [min, max].  Exact for q=0/q=1; within a factor of 2 otherwise.
  [[nodiscard]] double percentile(double q) const;
};

/// Named counters and histograms.  Thread-safe; snapshot accessors copy.
class Metrics {
 public:
  void add(std::string_view counter, std::uint64_t delta = 1);
  /// Overwrites a counter (gauge semantics — repeated publishes of pool or
  /// memory snapshots must not accumulate).
  void set(std::string_view counter, std::uint64_t value);
  void observe(std::string_view histogram, double value);

  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  [[nodiscard]] std::map<std::string, Histogram> histograms() const;
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  void clear();

  /// Aligned human-readable table.
  [[nodiscard]] std::string summary() const;
  /// {"counters":{...},"histograms":{...}} on one line.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// ---- tracer -----------------------------------------------------------------

class Tracer;

/// RAII span: emits kBegin on creation (when tracing) and kEnd, carrying
/// accumulated args and the duration, on destruction.  A default-constructed
/// or moved-from span is inactive and all operations are no-ops.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span();

  Span& arg(Arg a);
  template <typename T>
  Span& arg(std::string_view key, T&& value) {
    if (tracer_ != nullptr) arg(obs::arg(key, std::forward<T>(value)));
    return *this;
  }

  /// Emits the end event now instead of at destruction.
  void end();

  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string_view name, std::string_view category);

  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string category_;
  std::uint64_t begin_micros_ = 0;
  std::vector<Arg> args_;
};

/// The event/metric hub.  Tracing and metrics toggle independently; both
/// default to off.  `CCSQL_TRACE=<path>` (with optional `CCSQL_TRACE_FORMAT`)
/// and `CCSQL_METRICS=1` in the environment configure the global instance at
/// first use.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  /// The process-wide tracer used by the CCSQL_* macros.
  static Tracer& global();

  [[nodiscard]] bool tracing() const noexcept {
    return tracing_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool metrics_enabled() const noexcept {
    return metrics_on_.load(std::memory_order_relaxed);
  }
  /// True when any instrumentation should run (the hot-path guard).
  [[nodiscard]] bool enabled() const noexcept {
    return tracing() || metrics_enabled();
  }

  /// Installs a sink and enables tracing (nullptr disables).
  void set_sink(std::unique_ptr<Sink> sink);
  void enable_metrics(bool on = true);

  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Opens a span (inactive when tracing is off).
  [[nodiscard]] Span span(std::string_view name, std::string_view category);
  void instant(std::string_view name, std::string_view category,
               std::vector<Arg> args = {});
  /// Counter/histogram shorthands; no-ops unless enabled().
  void count(std::string_view counter, std::uint64_t delta = 1);
  void observe(std::string_view histogram, double value);

  /// Dumps every metric into the trace as kCounter events, finishes and
  /// releases the sink, and stops tracing.  Metrics stay readable.
  void finish();

  [[nodiscard]] std::uint64_t now_micros() const;

 private:
  friend class Span;
  void emit(Event event);
  void end_span(Span& span);

  std::atomic<bool> tracing_{false};
  std::atomic<bool> metrics_on_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;            // guards sink_ + depth_
  std::unique_ptr<Sink> sink_;
  int depth_ = 0;
  Metrics metrics_;
};

}  // namespace ccsql::obs

// ---- instrumentation macros -------------------------------------------------
//
// All call sites in src/ use these; `cmake -DCCSQL_TRACING=OFF` defines
// CCSQL_TRACING_DISABLED and compiles them out (spans become inert objects,
// instants and counts disappear, their argument expressions unevaluated).

#if !defined(CCSQL_TRACING_DISABLED)

/// Declares `var` as a scoped span over the rest of the enclosing block.
#define CCSQL_SPAN(var, name, category)             \
  ::ccsql::obs::Span var =                          \
      ::ccsql::obs::Tracer::global().span((name), (category))

/// Point event; extra ::ccsql::obs::arg(...) entries may follow the category.
#define CCSQL_INSTANT(name, category, ...)                              \
  do {                                                                  \
    ::ccsql::obs::Tracer& ccsql_obs_t = ::ccsql::obs::Tracer::global(); \
    if (ccsql_obs_t.tracing()) {                                        \
      ccsql_obs_t.instant((name), (category), {__VA_ARGS__});           \
    }                                                                   \
  } while (0)

/// Adds `delta` to a named counter when metrics or tracing are enabled.
#define CCSQL_COUNT(name, delta)                                        \
  do {                                                                  \
    ::ccsql::obs::Tracer& ccsql_obs_t = ::ccsql::obs::Tracer::global(); \
    if (ccsql_obs_t.enabled()) ccsql_obs_t.count((name), (delta));      \
  } while (0)

/// Records `value` into a named histogram when metrics/tracing are enabled.
#define CCSQL_OBSERVE(name, value)                                      \
  do {                                                                  \
    ::ccsql::obs::Tracer& ccsql_obs_t = ::ccsql::obs::Tracer::global(); \
    if (ccsql_obs_t.enabled()) ccsql_obs_t.observe((name), (value));    \
  } while (0)

#else  // CCSQL_TRACING_DISABLED

#define CCSQL_SPAN(var, name, category) \
  ::ccsql::obs::Span var {}
#define CCSQL_INSTANT(name, category, ...) \
  do {                                     \
  } while (0)
#define CCSQL_COUNT(name, delta) \
  do {                           \
  } while (0)
#define CCSQL_OBSERVE(name, value) \
  do {                             \
  } while (0)

#endif  // CCSQL_TRACING_DISABLED
