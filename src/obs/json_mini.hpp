#pragma once

// A deliberately tiny recursive-descent JSON reader, enough to read back the
// traces the obs sinks write (tools/trace_summary, format tests).  Not a
// general-purpose parser: numbers become double, no \uXXXX surrogate pairs.

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ccsql::obs::json {

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;

  [[nodiscard]] bool has(const std::string& key) const {
    return obj.find(key) != obj.end();
  }
  [[nodiscard]] const JValue& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("json: no key " + key);
    return it->second;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JValue parse() {
    JValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JValue v;
      v.kind = JValue::Kind::kString;
      v.str = string();
      return v;
    }
    if (consume_literal("true")) {
      JValue v;
      v.kind = JValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JValue v;
      v.kind = JValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return JValue{};
    return number();
  }

  JValue object() {
    JValue v;
    v.kind = JValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JValue array() {
    JValue v;
    v.kind = JValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16));
          pos_ += 4;
          // ASCII only; anything else renders as '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    JValue v;
    v.kind = JValue::Kind::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline JValue parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace ccsql::obs::json
