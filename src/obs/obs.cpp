#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace ccsql::obs {

namespace {
thread_local int t_current_worker = -1;
}  // namespace

void set_current_worker(int id) noexcept { t_current_worker = id; }
int current_worker() noexcept { return t_current_worker; }

// ---- args -------------------------------------------------------------------

Arg arg(std::string_view key, std::string_view value) {
  return Arg{std::string(key), std::string(value), false};
}
Arg arg(std::string_view key, const char* value) {
  return arg(key, std::string_view(value));
}
Arg arg(std::string_view key, std::int64_t value) {
  return Arg{std::string(key), std::to_string(value), true};
}
Arg arg(std::string_view key, std::uint64_t value) {
  return Arg{std::string(key), std::to_string(value), true};
}
Arg arg(std::string_view key, int value) {
  return arg(key, static_cast<std::int64_t>(value));
}
Arg arg(std::string_view key, bool value) {
  return Arg{std::string(key), value ? "true" : "false", true};
}
Arg arg(std::string_view key, double value) {
  std::ostringstream os;
  os << value;
  return Arg{std::string(key), os.str(), true};
}

// ---- metrics ----------------------------------------------------------------

void Histogram::observe(double value) {
  if (count == 0) {
    min = max = value;
  } else {
    if (value < min) min = value;
    if (value > max) max = value;
  }
  ++count;
  sum += value;
  std::size_t bucket = 0;
  if (value >= 1.0) {
    // Bucket i covers [2^(i-1), 2^i).
    bucket = 1;
    double upper = 2.0;
    while (value >= upper && bucket < 64) {
      upper *= 2.0;
      ++bucket;
    }
  }
  if (buckets.size() <= bucket) buckets.resize(bucket + 1, 0);
  ++buckets[bucket];
}

double Histogram::percentile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[i];
    if (static_cast<double>(seen) < target) continue;
    // Bucket 0 covers [0, 1); bucket i >= 1 covers [2^(i-1), 2^i).
    const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
    const double hi = i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
    const double frac =
        (target - before) / static_cast<double>(buckets[i]);
    const double v = lo + frac * (hi - lo);
    return std::max(min, std::min(max, v));
  }
  return max;
}

void Metrics::add(std::string_view counter, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void Metrics::set(std::string_view counter, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), value);
  } else {
    it->second = value;
  }
}

void Metrics::observe(std::string_view histogram, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(histogram);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(histogram), Histogram{}).first;
  }
  it->second.observe(value);
}

std::map<std::string, std::uint64_t> Metrics::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, Histogram> Metrics::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

std::uint64_t Metrics::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

std::string Metrics::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t width = 0;
  for (const auto& [name, _] : counters_) width = std::max(width, name.size());
  for (const auto& [name, _] : histograms_) {
    width = std::max(width, name.size());
  }
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << std::string(width - name.size() + 2, ' ') << value << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << std::string(width - name.size() + 2, ' ') << "count="
       << h.count << " sum=" << h.sum << " min=" << h.min << " max=" << h.max
       << " mean=" << h.mean() << "\n";
  }
  return os.str();
}

std::string Metrics::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":" << value;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":{\"count\":"
       << h.count << ",\"sum\":" << h.sum << ",\"min\":" << h.min
       << ",\"max\":" << h.max << ",\"mean\":" << h.mean() << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

// ---- span -------------------------------------------------------------------

Span::Span(Tracer* tracer, std::string_view name, std::string_view category)
    : tracer_(tracer), name_(name), category_(category) {}

Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      begin_micros_(other.begin_micros_),
      args_(std::move(other.args_)) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = std::exchange(other.tracer_, nullptr);
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    begin_micros_ = other.begin_micros_;
    args_ = std::move(other.args_);
  }
  return *this;
}

Span::~Span() { end(); }

Span& Span::arg(Arg a) {
  if (tracer_ != nullptr) args_.push_back(std::move(a));
  return *this;
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* t = std::exchange(tracer_, nullptr);
  t->end_span(*this);
}

// ---- tracer -----------------------------------------------------------------

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() { finish(); }

Tracer& Tracer::global() {
  static Tracer* instance = [] {
    auto* t = new Tracer();  // leaked: outlives every static destructor
    if (const char* path = std::getenv("CCSQL_TRACE");
        path != nullptr && *path != '\0') {
      Format format = format_for_path(path);
      if (const char* f = std::getenv("CCSQL_TRACE_FORMAT")) {
        if (auto parsed = parse_format(f)) format = *parsed;
      }
      try {
        t->set_sink(open_trace_file(path, format));
      } catch (const std::exception&) {
        // A bad CCSQL_TRACE path must not take the process down.
      }
    }
    if (const char* m = std::getenv("CCSQL_METRICS");
        m != nullptr && *m != '\0' && std::string_view(m) != "0") {
      t->enable_metrics();
    }
    // The instance is leaked, so nothing ever runs its destructor; flush at
    // exit instead so env-configured traces (benches, tools) are complete
    // even when no code path calls finish() explicitly.  finish() is
    // idempotent, so an explicit earlier call makes this a no-op.
    std::atexit([] { Tracer::global().finish(); });
    return t;
  }();
  return *instance;
}

std::uint64_t Tracer::now_micros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::set_sink(std::unique_ptr<Sink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) sink_->finish();
  sink_ = std::move(sink);
  depth_ = 0;
  tracing_.store(sink_ != nullptr, std::memory_order_relaxed);
}

void Tracer::enable_metrics(bool on) {
  metrics_on_.store(on, std::memory_order_relaxed);
}

Span Tracer::span(std::string_view name, std::string_view category) {
  if (!tracing()) return Span{};
  Span s(this, name, category);
  s.begin_micros_ = now_micros();
  Event e;
  e.phase = Phase::kBegin;
  e.name = s.name_;
  e.category = s.category_;
  e.ts_micros = s.begin_micros_;
  e.worker = current_worker();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sink_) {
      e.depth = depth_++;
      sink_->write(e);
    }
  }
  return s;
}

void Tracer::end_span(Span& span) {
  if (!tracing()) return;
  Event e;
  e.phase = Phase::kEnd;
  e.name = std::move(span.name_);
  e.category = std::move(span.category_);
  e.ts_micros = now_micros();
  e.dur_micros = e.ts_micros >= span.begin_micros_
                     ? e.ts_micros - span.begin_micros_
                     : 0;
  e.worker = current_worker();
  e.args = std::move(span.args_);
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    if (depth_ > 0) --depth_;
    e.depth = depth_;
    sink_->write(e);
  }
}

void Tracer::instant(std::string_view name, std::string_view category,
                     std::vector<Arg> args) {
  if (!tracing()) return;
  Event e;
  e.phase = Phase::kInstant;
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts_micros = now_micros();
  e.worker = current_worker();
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    e.depth = depth_;
    sink_->write(e);
  }
}

void Tracer::count(std::string_view counter, std::uint64_t delta) {
  if (!enabled()) return;
  metrics_.add(counter, delta);
}

void Tracer::observe(std::string_view histogram, double value) {
  if (!enabled()) return;
  metrics_.observe(histogram, value);
}

void Tracer::finish() {
  std::unique_ptr<Sink> sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = std::move(sink_);
    tracing_.store(false, std::memory_order_relaxed);
  }
  if (!sink) return;
  const std::uint64_t ts = now_micros();
  for (const auto& [name, value] : metrics_.counters()) {
    Event e;
    e.phase = Phase::kCounter;
    e.name = name;
    e.category = "metrics";
    e.ts_micros = ts;
    e.args.push_back(arg("value", value));
    sink->write(e);
  }
  for (const auto& [name, h] : metrics_.histograms()) {
    Event e;
    e.phase = Phase::kCounter;
    e.name = name;
    e.category = "metrics";
    e.ts_micros = ts;
    e.args.push_back(arg("count", h.count));
    e.args.push_back(arg("mean", h.mean()));
    e.args.push_back(arg("max", h.max));
    sink->write(e);
  }
  sink->finish();
}

}  // namespace ccsql::obs
