#pragma once

// Memory accounting for the long-lived allocations the query engine makes:
// catalog-resident tables, secondary indexes, and hash-join build sides.
//
// MemTracker keeps a live/peak byte pair per category behind relaxed
// atomics, so the hooks (Catalog::put, Table::index_on, the executor's
// local build sides) cost two atomic RMWs each — cheap enough to stay on
// unconditionally, with or without tracing.  EXPLAIN ANALYZE, the CLI's
// --stats page, and the bench metrics JSON all read the same tracker.
//
// MemReservation is the RAII handle the hooks hold: it registers bytes on
// construction and releases them on destruction, so live counts stay
// correct across table replacement, index-cache invalidation, and early
// exits.  Copying a reservation re-registers the same size (a copied table
// really does hold a second buffer); moves transfer ownership.

#include <atomic>
#include <cstdint>
#include <string>

namespace ccsql::obs {

class Metrics;

class MemTracker {
 public:
  enum class Category : unsigned {
    kTables = 0,      // catalog-resident table buffers
    kIndexes = 1,     // secondary indexes (Table::index_on cache)
    kHashBuilds = 2,  // materialised hash-join build sides
    kPlans = 3,       // prepared-statement cache (serve::PlanCache)
  };
  static constexpr unsigned kCategories = 4;

  MemTracker() = default;
  MemTracker(const MemTracker&) = delete;
  MemTracker& operator=(const MemTracker&) = delete;

  /// The process-wide tracker every hook reports to.
  static MemTracker& global();

  void add(Category cat, std::uint64_t bytes) noexcept;
  void release(Category cat, std::uint64_t bytes) noexcept;

  struct Usage {
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
  };
  [[nodiscard]] Usage usage(Category cat) const noexcept;
  /// Sum over categories; peak is the high-water mark of the summed live.
  [[nodiscard]] Usage total() const noexcept;

  /// Writes mem.<category>_live_bytes / _peak_bytes gauges into `metrics`
  /// (overwriting, so repeated publishes do not accumulate).
  void publish(Metrics& metrics) const;

  /// One line, e.g. `memory: tables 1.2 MiB live / 1.5 MiB peak, ...`.
  [[nodiscard]] std::string summary() const;

  /// Zeroes every counter (tests only — live reservations then underflow
  /// on release, so call it only between isolated workloads).
  void reset() noexcept;

 private:
  struct Cell {
    std::atomic<std::uint64_t> live{0};
    std::atomic<std::uint64_t> peak{0};
  };
  void bump(Cell& cell, std::uint64_t bytes) noexcept;

  Cell cells_[kCategories];
  Cell total_;
};

[[nodiscard]] const char* to_string(MemTracker::Category cat) noexcept;

/// "1.2 KiB" / "3.4 MiB" rendering shared by summaries and EXPLAIN ANALYZE.
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// RAII byte registration against MemTracker::global().
class MemReservation {
 public:
  MemReservation() = default;
  MemReservation(MemTracker::Category cat, std::uint64_t bytes)
      : cat_(cat), bytes_(bytes) {
    if (bytes_ != 0) MemTracker::global().add(cat_, bytes_);
  }
  /// A copy registers its own bytes: the copied owner holds its own buffer.
  MemReservation(const MemReservation& other)
      : MemReservation(other.cat_, other.bytes_) {}
  MemReservation& operator=(const MemReservation& other) {
    if (this != &other) {
      reset();
      cat_ = other.cat_;
      bytes_ = other.bytes_;
      if (bytes_ != 0) MemTracker::global().add(cat_, bytes_);
    }
    return *this;
  }
  MemReservation(MemReservation&& other) noexcept
      : cat_(other.cat_), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  MemReservation& operator=(MemReservation&& other) noexcept {
    if (this != &other) {
      reset();
      cat_ = other.cat_;
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~MemReservation() { reset(); }

  void reset() noexcept {
    if (bytes_ != 0) MemTracker::global().release(cat_, bytes_);
    bytes_ = 0;
  }

  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  MemTracker::Category cat_ = MemTracker::Category::kTables;
  std::uint64_t bytes_ = 0;
};

}  // namespace ccsql::obs
