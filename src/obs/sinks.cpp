#include <fstream>
#include <memory>
#include <stdexcept>

#include "obs/obs.hpp"

namespace ccsql::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_args_json(std::string& line, const std::vector<Arg>& args) {
  line += "\"args\":{";
  bool first = true;
  for (const auto& a : args) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += json_escape(a.key);
    line += "\":";
    if (a.numeric) {
      line += a.value;
    } else {
      line += '"';
      line += json_escape(a.value);
      line += '"';
    }
  }
  line += '}';
}

}  // namespace

// ---- TextSink ---------------------------------------------------------------

void TextSink::write(const Event& e) {
  std::string line(static_cast<std::size_t>(e.depth) * 2, ' ');
  switch (e.phase) {
    case Phase::kBegin:
      line += "> ";
      break;
    case Phase::kEnd:
      line += "< ";
      break;
    case Phase::kInstant:
      line += "- ";
      break;
    case Phase::kCounter:
      line += "# ";
      break;
  }
  line += e.category;
  line += '/';
  line += e.name;
  line += " @";
  line += std::to_string(e.ts_micros);
  line += "us";
  if (e.worker >= 0) {
    line += " [w";
    line += std::to_string(e.worker);
    line += ']';
  }
  if (e.phase == Phase::kEnd) {
    line += " (+";
    line += std::to_string(e.dur_micros);
    line += "us)";
  }
  for (const auto& a : e.args) {
    line += ' ';
    line += a.key;
    line += '=';
    line += a.value;
  }
  *os_ << line << '\n';
}

// ---- JsonlSink --------------------------------------------------------------

void JsonlSink::write(const Event& e) {
  std::string line = "{\"ph\":\"";
  line += static_cast<char>(e.phase);
  line += "\",\"ts\":";
  line += std::to_string(e.ts_micros);
  if (e.phase == Phase::kEnd) {
    line += ",\"dur\":";
    line += std::to_string(e.dur_micros);
  }
  line += ",\"name\":\"";
  line += json_escape(e.name);
  line += "\",\"cat\":\"";
  line += json_escape(e.category);
  line += "\",\"depth\":";
  line += std::to_string(e.depth);
  if (e.worker >= 0) {
    line += ",\"worker\":";
    line += std::to_string(e.worker);
  }
  if (!e.args.empty()) {
    line += ',';
    append_args_json(line, e.args);
  }
  line += '}';
  *os_ << line << '\n';
}

// ---- ChromeSink -------------------------------------------------------------

void ChromeSink::write(const Event& e) {
  std::string line = first_ ? "[\n" : ",\n";
  first_ = false;
  line += "{\"name\":\"";
  line += json_escape(e.name);
  line += "\",\"cat\":\"";
  line += json_escape(e.category);
  line += "\",\"ph\":\"";
  line += static_cast<char>(e.phase);
  line += "\",\"ts\":";
  line += std::to_string(e.ts_micros);
  // Off-pool events stay on tid 1; pool worker w lands on its own lane.
  line += ",\"pid\":1,\"tid\":";
  line += std::to_string(e.worker >= 0 ? e.worker + 2 : 1);
  if (e.phase == Phase::kInstant) line += ",\"s\":\"t\"";
  if (e.phase == Phase::kCounter && !e.args.empty()) {
    // Chrome counter tracks chart their args directly.
    line += ',';
    append_args_json(line, e.args);
  } else if (!e.args.empty()) {
    line += ',';
    append_args_json(line, e.args);
  }
  line += '}';
  *os_ << line;
}

void ChromeSink::finish() {
  if (first_) {
    *os_ << "[]";
  } else {
    *os_ << "\n]";
  }
  *os_ << '\n';
  os_->flush();
}

// ---- factories --------------------------------------------------------------

std::optional<Format> parse_format(std::string_view name) {
  if (name == "text") return Format::kText;
  if (name == "jsonl") return Format::kJsonl;
  if (name == "chrome") return Format::kChrome;
  return std::nullopt;
}

Format format_for_path(std::string_view path) {
  if (path.size() >= 6 && path.substr(path.size() - 6) == ".jsonl") {
    return Format::kJsonl;
  }
  if (path.size() >= 5 && path.substr(path.size() - 5) == ".json") {
    return Format::kChrome;
  }
  return Format::kText;
}

namespace {

/// A sink that owns the output file of the inner sink.
class FileSink : public Sink {
 public:
  FileSink(std::unique_ptr<std::ofstream> file, Format format)
      : file_(std::move(file)) {
    switch (format) {
      case Format::kText:
        inner_ = std::make_unique<TextSink>(*file_);
        break;
      case Format::kJsonl:
        inner_ = std::make_unique<JsonlSink>(*file_);
        break;
      case Format::kChrome:
        inner_ = std::make_unique<ChromeSink>(*file_);
        break;
    }
  }
  void write(const Event& e) override { inner_->write(e); }
  void finish() override {
    inner_->finish();
    file_->flush();
  }

 private:
  std::unique_ptr<std::ofstream> file_;
  std::unique_ptr<Sink> inner_;
};

}  // namespace

std::unique_ptr<Sink> open_trace_file(const std::string& path, Format format) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  return std::make_unique<FileSink>(std::move(file), format);
}

}  // namespace ccsql::obs
