#pragma once

// Multi-session workload driver for the serving layer: runs N client
// sessions as pool tasks over one serve::Server (each session = the
// paper's run-the-invariant-suite loop, or an arbitrary statement list),
// optionally alongside a writer thread that regenerates a table on a fixed
// cadence.  This is the engine behind the ccsql_serve app, the `ccsql
// serve` subcommand and bench_serve.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace ccsql::serve {

struct DriveOptions {
  /// Concurrent client sessions (each is one pool task).
  std::size_t sessions = 8;
  /// Times each session loops over the statement list.
  std::size_t iterations = 1;
  /// Run statements as invariants (check_empty) rather than SELECTs.
  bool exists_mode = true;
  /// Pool lanes for the session fan-out; 0 = the process default.
  std::size_t jobs = 0;
  /// Concurrent writer: perform this many identical-content regenerations
  /// of `writer_table` while the sessions run (0 = no writer).  Each swap
  /// rebuilds the table's storage and bumps the catalog generation, so
  /// reader results must be unaffected byte-for-byte.
  std::size_t writer_swaps = 0;
  std::string writer_table;
  /// Pause between writer swaps.
  std::size_t writer_period_us = 200;
};

struct SessionReport {
  std::size_t id = 0;
  std::uint64_t queries = 0;
  /// Non-empty invariants (exists mode) / total rows returned (query mode).
  std::uint64_t violations = 0;
  std::uint64_t run_us = 0;
  /// Per-query latencies, microseconds, in issue order.
  std::vector<std::uint32_t> latencies_us;
};

struct DriveReport {
  std::vector<SessionReport> sessions;
  std::uint64_t wall_us = 0;
  std::uint64_t queries = 0;
  std::uint64_t violations = 0;
  std::uint64_t writer_swaps = 0;
  /// All sessions' latencies, sorted ascending (percentile-ready).
  std::vector<std::uint32_t> latencies_us;

  [[nodiscard]] double qps() const noexcept {
    return wall_us != 0 ? static_cast<double>(queries) * 1e6 /
                              static_cast<double>(wall_us)
                        : 0.0;
  }
  /// q in [0,1]; nearest-rank percentile of the merged latencies.
  [[nodiscard]] std::uint32_t latency_percentile_us(double q) const;
};

/// Runs `statements` through `server` from opts.sessions concurrent
/// sessions and aggregates the result.  Statement order within a session
/// is fixed (suite order), so verdict sequences are comparable across
/// runs regardless of interleaving.
[[nodiscard]] DriveReport drive(Server& server,
                                const std::vector<std::string>& statements,
                                const DriveOptions& opts);

}  // namespace ccsql::serve
