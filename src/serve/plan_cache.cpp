#include "serve/plan_cache.hpp"

#include <algorithm>
#include <cctype>

#include "obs/obs.hpp"
#include "plan/executor.hpp"
#include "plan/planner.hpp"
#include "plan/vectorized.hpp"
#include "relational/error.hpp"

namespace ccsql::serve {
namespace {

/// Rough footprint of a plan tree for the kPlans memory gauge: node
/// structs, their string payloads, and the predicate text (standing in for
/// the compiled program, which is proportional to it).
std::size_t estimate_plan_bytes(const plan::PlanNode& n) {
  std::size_t bytes = sizeof(plan::PlanNode);
  bytes += n.table_name.size() + n.alias.size();
  for (const auto& c : n.columns) bytes += c.size();
  for (const auto& k : n.left_keys) bytes += k.size();
  for (const auto& k : n.right_keys) bytes += k.size();
  for (const auto& o : n.order_by) bytes += o.size();
  if (n.predicate) bytes += 4 * n.predicate->to_string().size();
  for (const auto& c : n.children) bytes += estimate_plan_bytes(*c);
  return bytes;
}

/// Attaches a shared pre-compiled RowFilter to every kSelect node.  The
/// executor runs this tree with ident_schema unset, so filters compile
/// against (node schema, node schema) — the same pair the executor would
/// use.
void precompile_filters(plan::PlanNode& n, const Catalog& catalog) {
  if (n.kind == plan::PlanNode::Kind::kSelect && n.predicate) {
    n.compiled = std::make_shared<const plan::vec::RowFilter>(
        *n.predicate, *n.schema, *n.schema, &catalog.functions());
  }
  for (auto& c : n.children) precompile_filters(*c, catalog);
}

/// Precomputes the FastEmpty probe when the plan matches the supported
/// shapes: emptiness-preserving wrappers (Limit >= 1, Project, Distinct,
/// Sort) over a chain of compiled kSelects over one kScan or kIndexLookup.
/// The secondary index is resolved (and thereby built and cached on the
/// snapshot's table) here, at build time.
std::optional<CachedStatement::Unit::FastEmpty> make_fast_empty(
    const plan::PlanNode& root, const Catalog& catalog) {
  using Kind = plan::PlanNode::Kind;
  const plan::PlanNode* n = &root;
  while (n->kind == Kind::kProject || n->kind == Kind::kDistinct ||
         n->kind == Kind::kSort ||
         (n->kind == Kind::kLimit && n->limit >= 1)) {
    if (n->children.size() != 1) return std::nullopt;
    n = &n->child();
  }
  CachedStatement::Unit::FastEmpty out;
  while (n->kind == Kind::kSelect) {
    if (!n->compiled || n->children.size() != 1) return std::nullopt;
    out.filters.push_back(n->compiled.get());
    n = &n->child();
  }
  // Innermost filter first: cheapest-first, matching executor order.
  std::reverse(out.filters.begin(), out.filters.end());
  if (n->kind != Kind::kScan && n->kind != Kind::kIndexLookup) {
    return std::nullopt;
  }
  if (n->bound != nullptr) {
    out.base = n->bound;
  } else if (!n->table_name.empty()) {
    out.base = &catalog.get(n->table_name);
  } else {
    return std::nullopt;
  }
  if (n->kind == Kind::kIndexLookup) {
    std::vector<std::size_t> cols;
    cols.reserve(n->columns.size());
    for (const auto& name : n->columns) {
      cols.push_back(n->schema->index_of(name));
    }
    out.index = &out.base->index_on(cols);
    out.probe = Table::index_key(n->key_values);
  }
  return out;
}

}  // namespace

namespace {

/// Appends normalize_sql(sql) to `out` (which may hold a key prefix).
void normalize_append(std::string_view sql, std::string& out) {
  const std::size_t start = out.size();
  bool in_quotes = false;
  bool pending_space = false;
  for (const char c : sql) {
    if (in_quotes) {
      out.push_back(c);
      if (c == '"') in_quotes = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = out.size() > start;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '"') in_quotes = true;
  }
}

}  // namespace

std::string normalize_sql(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  normalize_append(sql, out);
  return out;
}

std::string cache_key(char mode, std::string_view sql) {
  std::string out;
  out.reserve(sql.size() + 2);
  out.push_back(mode);
  out.push_back('\x1f');
  normalize_append(sql, out);
  return out;
}

SelectStmt bind_params(const SelectStmt& stmt,
                       const std::vector<std::string>& values) {
  SelectStmt out = stmt;
  if (out.where) out.where = out.where->bind_params(values);
  for (auto& u : out.union_with) u = bind_params(u, values);
  return out;
}

std::size_t param_count(const SelectStmt& stmt) {
  std::size_t n = stmt.where ? stmt.where->param_count() : 0;
  for (const auto& u : stmt.union_with) n = std::max(n, param_count(u));
  return n;
}

CachedStatementPtr PlanCache::lookup(const std::string& key,
                                     std::uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second->entry->generation != generation) {
    // A writer moved the catalog on: the plan (and the snapshot it pins)
    // is stale.  Drop it; the caller re-plans at the new generation.
    ++invalidations_;
    ++misses_;
    bytes_ -= it->second->entry->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->entry;
}

void PlanCache::insert(const std::string& key, CachedStatementPtr entry) {
  if (!entry) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->entry->bytes;
    bytes_ += entry->bytes;
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  bytes_ += entry->bytes;
  lru_.push_front(Slot{key, std::move(entry)});
  index_.emplace(key, lru_.begin());
  while (index_.size() > capacity_) evict_lru_locked();
}

void PlanCache::evict_lru_locked() {
  const Slot& victim = lru_.back();
  bytes_ -= victim.entry->bytes;
  index_.erase(victim.key);
  lru_.pop_back();
  ++evictions_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.entries = index_.size();
  s.bytes = bytes_;
  return s;
}

CachedStatementPtr build_statement(const Snapshot& snap,
                                   std::vector<SelectStmt> stmts,
                                   bool exists_mode) {
  if (!snap.valid()) throw BindError("build_statement: empty snapshot");
  auto out = std::make_shared<CachedStatement>();
  out->exists_mode = exists_mode;
  out->generation = snap.generation();
  out->catalog = snap.shared_catalog();
  plan::PlannerOptions opts;
  opts.exists_only = exists_mode;
  out->units.reserve(stmts.size());
  for (auto& stmt : stmts) {
    CachedStatement::Unit unit;
    unit.plan = plan::plan_select(*out->catalog, stmt, opts);
    precompile_filters(*unit.plan, *out->catalog);
    if (exists_mode) unit.fast = make_fast_empty(*unit.plan, *out->catalog);
    unit.stmt = std::move(stmt);
    out->bytes += estimate_plan_bytes(*unit.plan);
    out->units.push_back(std::move(unit));
  }
  out->mem = obs::MemReservation(obs::MemTracker::Category::kPlans,
                                 out->bytes);
  CCSQL_COUNT("serve.statements_compiled", 1);
  return out;
}

Table run_unit(const CachedStatement& cs, std::size_t index,
               std::size_t jobs) {
  const CachedStatement::Unit& unit = cs.units.at(index);
  plan::ExecContext ctx;
  ctx.catalog = cs.catalog.get();
  ctx.functions = &cs.catalog->functions();
  // Mirrors plan::run_select: the executor itself keeps row-budgeted
  // (exists-mode) paths serial regardless of jobs.
  ctx.jobs = jobs;
  // Const overload: record/analyze forced off, so the shared plan tree is
  // executed in place — no per-query clone, safe from any number of
  // sessions at once.
  const plan::PlanNode& root = *unit.plan;
  return plan::execute(root, ctx, cs.exists_mode ? 1 : plan::kNoLimit);
}

bool unit_is_empty(const CachedStatement& cs, std::size_t index) {
  const CachedStatement::Unit& unit = cs.units.at(index);
  if (!unit.fast) return run_unit(cs, index, 1).row_count() == 0;
  const CachedStatement::Unit::FastEmpty& f = *unit.fast;
  auto passes = [&f](RowView row) {
    for (const plan::vec::RowFilter* filter : f.filters) {
      if (!filter->eval(row)) return false;
    }
    return true;
  };
  std::size_t visited = 0;
  bool empty = true;
  if (f.index != nullptr) {
    if (const auto it = f.index->find(f.probe); it != f.index->end()) {
      if (f.filters.empty()) {
        empty = it->second.empty();
      } else {
        for (const std::size_t i : it->second) {
          ++visited;
          if (passes(f.base->row(i))) {
            empty = false;
            break;
          }
        }
      }
    }
  } else if (f.filters.empty()) {
    empty = f.base->row_count() == 0;
  } else {
    const std::size_t n = f.base->row_count();
    for (std::size_t i = 0; i < n; ++i) {
      ++visited;
      if (passes(f.base->row(i))) {
        empty = false;
        break;
      }
    }
  }
  CCSQL_COUNT("query.rows_scanned", visited);
  return empty;
}

}  // namespace ccsql::serve
