#pragma once

// The serving layer: a thread-safe front end over one ccsql::Database for
// many concurrent client sessions (DESIGN.md section 12).
//
//   serve::Server server(spec.database());
//   bool ok = server.check_empty(invariant_sql);      // any thread
//   server.update([&](Database& db) { db.put("D", fresh); });  // writer
//
// Readers never touch the live catalog: every query runs against the
// current copy-on-write Snapshot, which shares table storage and indexes
// with the live side and stays valid across writer swaps.  Parsing and
// planning are amortized through the prepared-statement PlanCache, keyed
// on normalized SQL and invalidated by catalog generation.  An optional
// admission gate bounds in-flight queries (max_inflight), queueing the
// rest FIFO and recording the wait.

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"
#include "relational/database.hpp"
#include "serve/plan_cache.hpp"

namespace ccsql::serve {

struct ServerOptions {
  /// Prepared-statement cache entries (LRU beyond this).
  std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
  /// Off: every query re-parses and re-plans (the bench_serve baseline
  /// leg and the cached-vs-fresh differential oracle).
  bool use_plan_cache = true;
  /// Maximum queries executing at once; 0 = unlimited.  Excess callers
  /// block FIFO-ish on a condition variable (admission queueing).
  std::size_t max_inflight = 0;
  /// Parallel lanes inside one query; serving workloads multiplex many
  /// sessions over the pool, so intra-query parallelism defaults off.
  std::size_t jobs_per_query = 1;
};

struct ServerStats {
  std::uint64_t queries = 0;
  /// Queries that bypassed the cache (cache off or planner off).
  std::uint64_t uncached_queries = 0;
  std::uint64_t writer_swaps = 0;
  std::uint64_t admission_waits = 0;    // acquisitions that had to block
  std::uint64_t admission_wait_us = 0;  // total time spent blocked
  std::uint64_t generation = 0;
  std::size_t snapshots_active = 0;     // process-wide live Snapshot handles
  PlanCacheStats cache;
};

class Server {
 public:
  explicit Server(Database db, ServerOptions options = {});
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// The current catalog snapshot (cheap: a shared_ptr copy).
  [[nodiscard]] Snapshot snapshot() const;

  /// Executes a SELECT.  Thread-safe; cached when the cache is on.
  [[nodiscard]] QueryResult query(std::string_view select_text);

  /// True iff every SELECT of the invariant yields no rows.  Thread-safe;
  /// the compiled probe suite is cached per invariant text.
  [[nodiscard]] bool check_empty(std::string_view invariant_text);

  /// A prepared SELECT handle: normalized text plus its parameter arity.
  /// Cheap to copy; execute() resolves it against the cache per call, so a
  /// handle survives catalog generations (it just re-plans after a swap).
  struct Prepared {
    std::string sql;          // normalized statement text
    std::size_t params = 0;   // $N slots the statement references
  };

  [[nodiscard]] Prepared prepare(std::string_view select_text) const;

  /// Executes a prepared statement with `values` bound to $1..$N.  Each
  /// distinct value vector compiles (and caches) its own plan — parameter
  /// domains here are tiny symbol sets, so the key space stays bounded.
  [[nodiscard]] QueryResult execute(const Prepared& prepared,
                                    const std::vector<std::string>& values = {});

  /// Applies a catalog mutation.  Serialized against other writers; the
  /// visible effect for readers is one snapshot swap after `mutator`
  /// returns — in-flight readers keep their old snapshot, new acquisitions
  /// see the new generation.  Cached plans invalidate via the generation
  /// key on their next lookup.
  void update(const std::function<void(Database&)>& mutator);

  [[nodiscard]] ServerStats stats() const;

  /// Folds the serve.* gauges (queries, cache hits/misses/evictions,
  /// snapshot.active, admission waits, ...) into `metrics` — the --stats
  /// one-pager and trace_summary read these.
  void publish_stats(obs::Metrics& metrics) const;

 private:
  /// RAII admission slot: blocks in the constructor while max_inflight
  /// queries are executing, releases (and wakes one waiter) on scope exit —
  /// including the exception paths out of a query.
  struct AdmissionGuard {
    explicit AdmissionGuard(Server& s) : server(s) { server.admit(); }
    ~AdmissionGuard() { server.release(); }
    AdmissionGuard(const AdmissionGuard&) = delete;
    AdmissionGuard& operator=(const AdmissionGuard&) = delete;
    Server& server;
  };

  [[nodiscard]] CachedStatementPtr get_or_build(
      const std::string& key, const Snapshot& snap, bool exists_mode,
      const std::function<std::vector<SelectStmt>()>& parse);

  void admit();
  void release();

  const ServerOptions options_;
  Database db_;                // guarded by db_mu_ (writers only)
  mutable std::mutex db_mu_;
  Snapshot snap_;              // current published snapshot
  mutable std::mutex snap_mu_;
  PlanCache cache_;

  std::mutex adm_mu_;
  std::condition_variable adm_cv_;
  std::size_t inflight_ = 0;

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> uncached_{0};
  std::atomic<std::uint64_t> writer_swaps_{0};
  std::atomic<std::uint64_t> admission_waits_{0};
  std::atomic<std::uint64_t> admission_wait_us_{0};
};

}  // namespace ccsql::serve
