#pragma once

// Prepared-statement cache of the serving layer (DESIGN.md section 12).
//
// Key: a mode marker ("Q"/"E") plus the whitespace-normalized statement
// text, plus — for parameterized executions — the bound parameter values.
// Value: the parsed statements with their optimized plans, predicates
// pre-compiled to bytecode, pinned to the exact catalog snapshot they were
// planned against.  An entry is valid only while the live catalog is still
// at the generation the entry captured; a lookup at any other generation
// misses (counted as an invalidation) and the caller re-plans.
//
// A cached plan tree is executed in place, concurrently, with no per-query
// clone: the executor's const overload runs with ExecContext::record off,
// under which no PlanNode field is ever written.  Pre-compiled RowFilters
// are likewise shared — their evaluation is const and thread-safe.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/mem.hpp"
#include "plan/ir.hpp"
#include "relational/database.hpp"

namespace ccsql::serve {

/// Canonical statement text for cache keying: runs of whitespace outside
/// quoted strings collapse to one space, leading/trailing whitespace is
/// trimmed.  Case is preserved — identifiers are case-sensitive, so folding
/// would alias distinct statements.
[[nodiscard]] std::string normalize_sql(std::string_view sql);

/// One-pass cache key: `mode` marker, a separator below any SQL character
/// (0x1f), then the normalized text — built in a single allocation, since
/// every cached query builds one.
[[nodiscard]] std::string cache_key(char mode, std::string_view sql);

/// `stmt` with every $i parameter atom (in WHERE clauses, including union
/// branches) replaced by values[i-1] as a quoted literal.
[[nodiscard]] SelectStmt bind_params(const SelectStmt& stmt,
                                     const std::vector<std::string>& values);

/// Highest parameter slot referenced anywhere in `stmt` (0 = none).
[[nodiscard]] std::size_t param_count(const SelectStmt& stmt);

/// One cached, immutable compilation product.  Holds the snapshot catalog
/// it was planned against: the plans' bound-table pointers, index caches
/// and function-registry references stay valid for as long as the entry
/// lives, regardless of what the live catalog does.
struct CachedStatement {
  /// One SELECT of the statement (invariants may union several probes).
  struct Unit {
    SelectStmt stmt;    // parameter-free parse tree
    plan::PlanPtr plan; // optimized; kSelect nodes carry compiled filters

    /// Zero-allocation emptiness probe, precomputed at build time for the
    /// common exists-mode shapes (Limit/Project/Distinct wrappers over a
    /// filtered scan or index lookup).  Emptiness is invariant under those
    /// wrappers, so the probe inspects base rows directly: find the index
    /// bucket (or scan), evaluate the pre-compiled filter, stop at the
    /// first passing row.  All pointers target the pinned snapshot catalog
    /// (tables, their index caches, compiled filters), so they live as
    /// long as the entry.  Unset: probe shapes the walk doesn't cover
    /// (unions, joins) fall back to the generic executor.
    struct FastEmpty {
      const Table* base = nullptr;
      const Table::IndexMap* index = nullptr;  // null: scan all base rows
      TupleKey probe;                          // index bucket key
      /// Conjunctive predicate chain (stacked kSelects), innermost first;
      /// empty: bucket/table non-emptiness is the answer.
      std::vector<const plan::vec::RowFilter*> filters;
    };
    std::optional<FastEmpty> fast;
  };

  std::vector<Unit> units;
  bool exists_mode = false;  // invariant probe: stop at the first row
  std::uint64_t generation = 0;
  std::shared_ptr<const Catalog> catalog;
  std::size_t bytes = 0;      // estimated footprint (MemTracker kPlans)
  obs::MemReservation mem;
};

using CachedStatementPtr = std::shared_ptr<const CachedStatement>;

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Misses caused by a generation mismatch on a resident entry (a writer
  /// swapped a table since the plan was built).  Also counted in misses.
  std::uint64_t invalidations = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// Thread-safe LRU map: normalized SQL -> CachedStatement, bounded by entry
/// count.  Entries whose generation no longer matches the live catalog are
/// dropped on lookup.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  static constexpr std::size_t kDefaultCapacity = 256;

  /// The entry for `key` if present and planned at `generation`, else
  /// nullptr.  A hit refreshes LRU recency; a resident entry at the wrong
  /// generation is evicted and counted as an invalidation.
  [[nodiscard]] CachedStatementPtr lookup(const std::string& key,
                                          std::uint64_t generation);

  /// Inserts (or replaces) `entry` under `key`, evicting the least
  /// recently used entries beyond capacity.
  void insert(const std::string& key, CachedStatementPtr entry);

  void clear();

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    std::string key;
    CachedStatementPtr entry;
  };

  void evict_lru_locked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Slot>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  std::size_t bytes_ = 0;
};

/// Plans, optimizes and pre-compiles `stmts` against `snap`'s catalog.
/// `exists_mode` plans invariant probes (LIMIT 1 short-circuit shape).
[[nodiscard]] CachedStatementPtr build_statement(const Snapshot& snap,
                                                 std::vector<SelectStmt> stmts,
                                                 bool exists_mode);

/// Executes unit `index` of a cached statement in place (no clone — the
/// executor's read-only mode) against the pinned snapshot catalog with
/// `jobs` parallel lanes.  Exists mode stops at the first row.
[[nodiscard]] Table run_unit(const CachedStatement& cs, std::size_t index,
                             std::size_t jobs);

/// True when unit `index` produces no rows.  Takes the unit's precomputed
/// FastEmpty probe when available (no plan walk, no row materialisation),
/// else falls back to run_unit.
[[nodiscard]] bool unit_is_empty(const CachedStatement& cs,
                                 std::size_t index);

}  // namespace ccsql::serve
