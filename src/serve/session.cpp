#include "serve/session.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "core/pool.hpp"
#include "obs/obs.hpp"

namespace ccsql::serve {
namespace {

std::uint64_t micros_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// One session: loops the statement list, recording per-query latency.
void run_session(Server& server, const std::vector<std::string>& statements,
                 const DriveOptions& opts, SessionReport& report) {
  const auto session_t0 = std::chrono::steady_clock::now();
  report.latencies_us.reserve(opts.iterations * statements.size());
  for (std::size_t iter = 0; iter < opts.iterations; ++iter) {
    for (const std::string& sql : statements) {
      const auto t0 = std::chrono::steady_clock::now();
      if (opts.exists_mode) {
        if (!server.check_empty(sql)) ++report.violations;
      } else {
        report.violations += server.query(sql).row_count();
      }
      const std::uint64_t us = micros_since(t0);
      report.latencies_us.push_back(static_cast<std::uint32_t>(
          std::min<std::uint64_t>(us, UINT32_MAX)));
      ++report.queries;
      CCSQL_OBSERVE("serve.query_us", static_cast<double>(us));
    }
  }
  report.run_us = micros_since(session_t0);
}

}  // namespace

std::uint32_t DriveReport::latency_percentile_us(double q) const {
  if (latencies_us.empty()) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(latencies_us.size())));
  return latencies_us[rank == 0 ? 0 : rank - 1];
}

DriveReport drive(Server& server, const std::vector<std::string>& statements,
                  const DriveOptions& opts) {
  CCSQL_SPAN(span, "serve.drive", "serve");
  DriveReport out;
  out.sessions.resize(opts.sessions);
  for (std::size_t i = 0; i < opts.sessions; ++i) out.sessions[i].id = i;

  // Writer thread: identical-content table regenerations on a cadence.
  // Each swap deep-copies the current rows into fresh storage and re-puts
  // the table — a real regeneration (new buffers, new generation), with
  // reader-visible contents unchanged so results stay byte-identical.
  std::atomic<bool> stop{false};
  std::thread writer;
  if (opts.writer_swaps > 0 && !opts.writer_table.empty()) {
    writer = std::thread([&server, &opts, &stop, &out] {
      for (std::size_t i = 0; i < opts.writer_swaps; ++i) {
        if (stop.load(std::memory_order_relaxed)) break;
        std::this_thread::sleep_for(
            std::chrono::microseconds(opts.writer_period_us));
        Table copy = server.snapshot().catalog().get(opts.writer_table);
        server.update([&opts, &copy](Database& db) {
          db.put(opts.writer_table, std::move(copy));
        });
        ++out.writer_swaps;
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t lanes =
      opts.jobs != 0 ? opts.jobs : core::Pool::default_jobs();
  core::Pool::global().parallel_tasks(
      opts.sessions, lanes, [&server, &statements, &opts, &out](std::size_t i) {
        run_session(server, statements, opts, out.sessions[i]);
      });
  out.wall_us = micros_since(t0);

  if (writer.joinable()) {
    stop.store(true, std::memory_order_relaxed);
    writer.join();
  }

  for (const SessionReport& s : out.sessions) {
    out.queries += s.queries;
    out.violations += s.violations;
    out.latencies_us.insert(out.latencies_us.end(), s.latencies_us.begin(),
                            s.latencies_us.end());
  }
  std::sort(out.latencies_us.begin(), out.latencies_us.end());
  span.arg("sessions", static_cast<std::uint64_t>(opts.sessions));
  span.arg("queries", out.queries);
  CCSQL_COUNT("serve.drive_queries", out.queries);
  return out;
}

}  // namespace ccsql::serve
