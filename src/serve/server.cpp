#include "serve/server.hpp"

#include <chrono>

#include "relational/parser.hpp"

namespace ccsql::serve {
namespace {

std::uint64_t micros_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Separates bound parameter values in an execute() cache key; below any
/// character that can appear in SQL text.  (The mode/text separator is
/// cache_key's 0x1f.)
constexpr char kValueSep = '\x1e';

}  // namespace

Server::Server(Database db, ServerOptions options)
    : options_(options),
      db_(std::move(db)),
      cache_(options.plan_cache_capacity) {
  snap_ = db_.snapshot();
}

Snapshot Server::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snap_;
}

void Server::admit() {
  if (options_.max_inflight == 0) return;
  std::unique_lock<std::mutex> lock(adm_mu_);
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  adm_cv_.wait(lock, [this] { return inflight_ < options_.max_inflight; });
  ++inflight_;
  const std::uint64_t waited = micros_since(t0);
  admission_waits_.fetch_add(1, std::memory_order_relaxed);
  admission_wait_us_.fetch_add(waited, std::memory_order_relaxed);
  CCSQL_OBSERVE("serve.admission.wait_us", static_cast<double>(waited));
}

void Server::release() {
  if (options_.max_inflight == 0) return;
  {
    std::lock_guard<std::mutex> lock(adm_mu_);
    --inflight_;
  }
  adm_cv_.notify_one();
}

CachedStatementPtr Server::get_or_build(
    const std::string& key, const Snapshot& snap, bool exists_mode,
    const std::function<std::vector<SelectStmt>()>& parse) {
  if (CachedStatementPtr hit = cache_.lookup(key, snap.generation())) {
    return hit;
  }
  // Concurrent misses on one key each build; the last insert wins.  Builds
  // are pure (they touch only the immutable snapshot), so that is merely
  // duplicated work on a cold key, never an inconsistency.
  CachedStatementPtr built = build_statement(snap, parse(), exists_mode);
  cache_.insert(key, built);
  return built;
}

QueryResult Server::query(std::string_view select_text) {
  AdmissionGuard slot(*this);
  queries_.fetch_add(1, std::memory_order_relaxed);
  Snapshot snap = snapshot();
  if (!options_.use_plan_cache || !snap.planner_on()) {
    uncached_.fetch_add(1, std::memory_order_relaxed);
    return snap.query(select_text);
  }
  const std::string key = cache_key('Q', select_text);
  CachedStatementPtr cs = get_or_build(key, snap, /*exists_mode=*/false, [&] {
    std::vector<SelectStmt> stmts;
    stmts.push_back(parse_select(std::string_view(key).substr(2)));
    return stmts;
  });
  QueryResult r;
  r.planned = true;
  r.jobs = options_.jobs_per_query != 0 ? options_.jobs_per_query
                                        : snap.jobs();
  const auto t0 = std::chrono::steady_clock::now();
  r.rows = run_unit(*cs, 0, r.jobs);
  r.micros = micros_since(t0);
  return r;
}

bool Server::check_empty(std::string_view invariant_text) {
  AdmissionGuard slot(*this);
  queries_.fetch_add(1, std::memory_order_relaxed);
  Snapshot snap = snapshot();
  if (!options_.use_plan_cache || !snap.planner_on()) {
    uncached_.fetch_add(1, std::memory_order_relaxed);
    return snap.check_empty(invariant_text);
  }
  const std::string key = cache_key('E', invariant_text);
  CachedStatementPtr cs = get_or_build(key, snap, /*exists_mode=*/true, [&] {
    return parse_invariant(std::string_view(key).substr(2));
  });
  for (std::size_t i = 0; i < cs->units.size(); ++i) {
    if (!unit_is_empty(*cs, i)) return false;
  }
  return true;
}

Server::Prepared Server::prepare(std::string_view select_text) const {
  Prepared p;
  p.sql = normalize_sql(select_text);
  p.params = param_count(parse_select(p.sql));  // also validates the syntax
  return p;
}

QueryResult Server::execute(const Prepared& prepared,
                            const std::vector<std::string>& values) {
  AdmissionGuard slot(*this);
  queries_.fetch_add(1, std::memory_order_relaxed);
  Snapshot snap = snapshot();
  if (!options_.use_plan_cache || !snap.planner_on()) {
    uncached_.fetch_add(1, std::memory_order_relaxed);
    SelectStmt stmt = bind_params(parse_select(prepared.sql), values);
    return snap.query(stmt);
  }
  std::string key = cache_key('Q', prepared.sql);
  for (const std::string& v : values) {
    key += kValueSep;
    key += v;
  }
  CachedStatementPtr cs = get_or_build(key, snap, /*exists_mode=*/false, [&] {
    std::vector<SelectStmt> stmts;
    stmts.push_back(bind_params(parse_select(prepared.sql), values));
    return stmts;
  });
  QueryResult r;
  r.planned = true;
  r.jobs = options_.jobs_per_query != 0 ? options_.jobs_per_query
                                        : snap.jobs();
  const auto t0 = std::chrono::steady_clock::now();
  r.rows = run_unit(*cs, 0, r.jobs);
  r.micros = micros_since(t0);
  return r;
}

void Server::update(const std::function<void(Database&)>& mutator) {
  std::lock_guard<std::mutex> db_lock(db_mu_);
  mutator(db_);
  // One swap publishes the whole mutation: the frozen per-generation
  // catalog is rebuilt (table pointers are shared, so this is O(#tables)),
  // and readers pick it up on their next snapshot() — in-flight readers
  // keep the generation they started with.
  Snapshot fresh = db_.snapshot();
  {
    std::lock_guard<std::mutex> snap_lock(snap_mu_);
    snap_ = std::move(fresh);
  }
  writer_swaps_.fetch_add(1, std::memory_order_relaxed);
  CCSQL_COUNT("serve.writer_swaps", 1);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.uncached_queries = uncached_.load(std::memory_order_relaxed);
  s.writer_swaps = writer_swaps_.load(std::memory_order_relaxed);
  s.admission_waits = admission_waits_.load(std::memory_order_relaxed);
  s.admission_wait_us = admission_wait_us_.load(std::memory_order_relaxed);
  s.snapshots_active = Snapshot::active();
  s.cache = cache_.stats();
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    s.generation = snap_.generation();
  }
  return s;
}

void Server::publish_stats(obs::Metrics& metrics) const {
  const ServerStats s = stats();
  metrics.set("serve.queries", s.queries);
  metrics.set("serve.uncached_queries", s.uncached_queries);
  metrics.set("serve.plan_cache.hits", s.cache.hits);
  metrics.set("serve.plan_cache.misses", s.cache.misses);
  metrics.set("serve.plan_cache.evictions", s.cache.evictions);
  metrics.set("serve.plan_cache.invalidations", s.cache.invalidations);
  metrics.set("serve.plan_cache.entries", s.cache.entries);
  metrics.set("serve.plan_cache.mem_bytes", s.cache.bytes);
  metrics.set("serve.snapshot.active", s.snapshots_active);
  metrics.set("serve.writer_swaps", s.writer_swaps);
  metrics.set("serve.admission.waits", s.admission_waits);
  metrics.set("serve.admission.wait_us", s.admission_wait_us);
  metrics.set("serve.generation", s.generation);
}

}  // namespace ccsql::serve
