#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relational/domain.hpp"
#include "relational/function_registry.hpp"
#include "relational/table.hpp"
#include "solver/column_constraint.hpp"

namespace ccsql {

/// Everything needed to generate one controller table: the target schema
/// (column order = generation order; the paper generates inputs first, then
/// one output column at a time), one value domain per column, and the column
/// constraints.  `functions` may be null when no constraint calls predicates.
struct GenerationInput {
  SchemaPtr schema;
  std::vector<Domain> domains;
  std::vector<ColumnConstraint> constraints;
  const FunctionRegistry* functions = nullptr;
  /// Parallel lanes for each per-column cross+filter step (0 = process
  /// default).  Output is identical at any value.
  std::size_t jobs = 0;

  /// Throws SchemaError/BindError unless every schema column has exactly one
  /// domain and every constraint names a schema column.
  void validate() const;

  /// Product of domain sizes: the size of the unsolved cross product the
  /// monolithic strategy enumerates (saturates at uint64 max).
  [[nodiscard]] std::uint64_t cross_cardinality() const;
};

/// Per-column progress record of incremental generation, used by tests and
/// by the generation bench to report where pruning happens.
struct IncrementalTrace {
  struct Step {
    std::string column;
    std::uint64_t rows_before_filter = 0;  // after crossing in the column
    std::uint64_t rows_after = 0;          // after applying constraints
    std::vector<std::string> constraints_applied;
  };
  std::vector<Step> steps;
};

/// Incremental generation (paper, section 3): seed with the 0-column unit
/// table, then for each column in schema order cross in its domain and apply
/// every not-yet-applied constraint whose referenced columns are all bound.
/// Equivalent to solving the conjunction, but prunes after every column,
/// which is what turned the paper's 6-hour solve into minutes.
Table generate_incremental(const GenerationInput& input,
                           IncrementalTrace* trace = nullptr);

/// Monolithic generation: enumerate the full cross product of all domains
/// (without materializing it) and keep rows satisfying the conjunction of
/// all constraints.  Exponential in the column count; exists as the paper's
/// baseline and as a differential-testing oracle for the incremental path.
Table generate_monolithic(const GenerationInput& input);

/// Diagnoses an empty generation result: returns the name of the first
/// column whose addition pruned the table to zero rows (the paper notes an
/// inconsistent constraint set yields a zero-row table), or "" if the table
/// is non-empty.
std::string first_emptying_column(const GenerationInput& input);

}  // namespace ccsql
