#pragma once

#include <string>

#include "relational/expr.hpp"
#include "relational/parser.hpp"

namespace ccsql {

/// A column constraint (paper, section 3): a boolean expression attached to
/// one column of a controller table, relating that column's value to the
/// other columns.  A controller table is the set of all assignments over the
/// column domains satisfying the conjunction of its column constraints.
///
/// The constraint of an unconstrained column is `true`.
struct ColumnConstraint {
  std::string column;
  Expr expr;

  /// Parses constraint text, e.g.
  ///   `inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL`
  static ColumnConstraint from_text(std::string column,
                                    std::string_view text) {
    return ColumnConstraint{std::move(column), parse_expr(text)};
  }

  /// The always-true constraint for an unconstrained column.
  static ColumnConstraint unconstrained(std::string column) {
    return ColumnConstraint{std::move(column), Expr::boolean(true)};
  }
};

}  // namespace ccsql
