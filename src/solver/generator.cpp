#include "solver/generator.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"
#include "relational/database.hpp"
#include "relational/error.hpp"
#include "relational/expr.hpp"

namespace ccsql {

void GenerationInput::validate() const {
  if (!schema) throw SchemaError("GenerationInput: null schema");
  if (domains.size() != schema->size()) {
    throw SchemaError("GenerationInput: " + std::to_string(domains.size()) +
                      " domains for " + std::to_string(schema->size()) +
                      " columns");
  }
  for (const auto& d : domains) {
    if (!schema->has(d.column())) {
      throw BindError("domain for unknown column: " + d.column());
    }
    if (d.size() == 0) {
      throw SchemaError("empty domain for column: " + d.column());
    }
  }
  // Exactly one domain per column.
  for (std::size_t i = 0; i < schema->size(); ++i) {
    const auto& name = schema->column(i).name;
    const auto count = std::count_if(
        domains.begin(), domains.end(),
        [&](const Domain& d) { return d.column() == name; });
    if (count != 1) {
      throw SchemaError("column " + name + " has " + std::to_string(count) +
                        " domains");
    }
  }
  for (const auto& c : constraints) {
    if (!schema->has(c.column)) {
      throw BindError("constraint on unknown column: " + c.column);
    }
  }
}

std::uint64_t GenerationInput::cross_cardinality() const {
  std::uint64_t n = 1;
  for (const auto& d : domains) {
    const std::uint64_t s = d.size();
    if (n > std::numeric_limits<std::uint64_t>::max() / s) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    n *= s;
  }
  return n;
}

namespace {

const Domain& domain_for(const GenerationInput& in, const std::string& name) {
  for (const auto& d : in.domains) {
    if (d.column() == name) return d;
  }
  throw BindError("no domain for column: " + name);  // validate() precludes
}

/// One-column table over a domain, carrying the column kind from `schema`.
Table domain_table(const Domain& d, const Schema& schema) {
  Column col = schema.column(schema.index_of(d.column()));
  Table t(make_schema({col}));
  t.reserve_rows(d.size());
  for (Value v : d.values()) t.append({v});
  return t;
}

}  // namespace

Table generate_incremental(const GenerationInput& input,
                           IncrementalTrace* trace) {
  input.validate();
  const Schema& full = *input.schema;
  std::vector<bool> applied(input.constraints.size(), false);

  CCSQL_SPAN(gen_span, "solver.generate_incremental", "solver");
  gen_span.arg("columns", full.size());
  gen_span.arg("constraints", input.constraints.size());

  // The per-column cross+filter steps run as queries of a scratch session:
  // it carries the constraint predicates and this generation's jobs setting.
  Database session;
  if (input.functions != nullptr) session.functions() = *input.functions;
  session.set_jobs(input.jobs);

  Table cur = Table::unit();
  for (std::size_t ci = 0; ci < full.size(); ++ci) {
    const std::string& col = full.column(ci).name;
    CCSQL_SPAN(col_span, "solver.column", "solver");
    col_span.arg("column", col);
    Table dom = domain_table(domain_for(input, col), full);

    IncrementalTrace::Step step;
    step.column = col;
    step.rows_before_filter = cur.row_count() * dom.row_count();

    // Every pending constraint that becomes fully bound once `col` joins
    // the prefix is conjoined into this step's filter.
    std::vector<Expr> ready;
    for (std::size_t k = 0; k < input.constraints.size(); ++k) {
      if (applied[k]) continue;
      bool bound = true;
      for (const auto& ref :
           input.constraints[k].expr.referenced_columns(full)) {
        if (!cur.schema().has(ref) && ref != col) {
          bound = false;
          break;
        }
      }
      if (bound) {
        applied[k] = true;
        ready.push_back(input.constraints[k].expr);
        step.constraints_applied.push_back(input.constraints[k].column);
      }
    }
    if (ready.empty()) {
      cur = Table::cross(cur, dom);
    } else {
      // The planner pushes single-side conjuncts below the cross and turns
      // prefix-column = new-column equalities into a hash join, so the
      // unconstrained product is never materialised.
      cur = session.cross_select(cur, dom, Expr::conjunction(std::move(ready)),
                                 full);
    }
    col_span.arg("rows_before", step.rows_before_filter);
    col_span.arg("rows_after", cur.row_count());
    col_span.arg("constraints_applied", step.constraints_applied.size());
    CCSQL_COUNT("solver.columns_generated", 1);
    CCSQL_COUNT("solver.rows_pruned",
                step.rows_before_filter - cur.row_count());
    step.rows_after = cur.row_count();
    if (trace != nullptr) trace->steps.push_back(std::move(step));
  }
  gen_span.arg("rows", cur.row_count());
  CCSQL_COUNT("solver.tables_generated", 1);
  return cur;
}

Table generate_monolithic(const GenerationInput& input) {
  input.validate();
  const Schema& full = *input.schema;
  CCSQL_SPAN(span, "solver.generate_monolithic", "solver");
  span.arg("columns", full.size());
  span.arg("cross_cardinality", input.cross_cardinality());

  // Domains in schema order.
  std::vector<const Domain*> doms;
  doms.reserve(full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    doms.push_back(&domain_for(input, full.column(i).name));
  }

  // The odometer's per-candidate filter stays on the interpreted walk: its
  // short-circuit beats the bytecode engine's linear scalar pass at
  // one-row granularity, and keeping this path interpreter-only makes the
  // monolithic-vs-incremental equivalence tests a genuine cross-engine
  // check (the incremental path filters through the vectorized executor).
  std::vector<CompiledExpr> preds;
  for (const auto& c : input.constraints) {
    preds.push_back(compile(c.expr, full, full, input.functions));
  }

  Table out(input.schema);
  if (full.size() == 0) return Table::unit();

  // Odometer enumeration of the cross product (no materialization).
  std::vector<std::size_t> idx(full.size(), 0);
  std::vector<Value> row(full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    row[i] = doms[i]->values()[0];
  }
  for (;;) {
    bool ok = true;
    for (const auto& p : preds) {
      if (!p.eval(RowView(row))) {
        ok = false;
        break;
      }
    }
    if (ok) out.append(RowView(row));

    // Advance the odometer (last column fastest).
    std::size_t i = full.size();
    while (i > 0) {
      --i;
      if (++idx[i] < doms[i]->size()) {
        row[i] = doms[i]->values()[idx[i]];
        break;
      }
      idx[i] = 0;
      row[i] = doms[i]->values()[0];
      if (i == 0) return out;
    }
  }
}

std::string first_emptying_column(const GenerationInput& input) {
  IncrementalTrace trace;
  Table t = generate_incremental(input, &trace);
  if (t.row_count() != 0) return "";
  for (const auto& s : trace.steps) {
    if (s.rows_after == 0) return s.column;
  }
  return "";
}

}  // namespace ccsql
