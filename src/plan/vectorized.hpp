#pragma once

// Vectorized batch execution for the plan operators (DESIGN.md section 10).
//
// RowFilter is the executor's one predicate object: it compiles a resolved
// Expr into whichever engine is active — the bytecode batch evaluator
// (default) or the interpreted CompiledExpr walk (--no-bytecode) — and
// exposes both a scalar row test and a batch filter over row-index ranges.
//
// The batch path walks the table in batches of kBatchRows rows, seeds a
// dense selection vector per batch, and lets the bytecode program refine it
// (bc::Program::eval_batch).  Row-index output keeps table order, so the
// selection a batch produces is byte-identical to the serial scalar scan —
// including under a row budget, where the filter stops at exactly the row
// that fills the limit, like the scalar loop does.
//
// Morsels and batches share the same 1024-row grain: a parallel morsel is
// one batch, so the parallel and serial paths see identical batch
// boundaries and emit identical selections.

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "relational/bytecode.hpp"
#include "relational/expr.hpp"
#include "relational/table.hpp"

namespace ccsql::plan::vec {

/// Rows per evaluation batch; equal to the executor's morsel grain so a
/// morsel is exactly one batch.
inline constexpr std::size_t kBatchRows = 1024;

class RowFilter {
 public:
  RowFilter() = default;

  /// Compiles `expr` for rows of `row_schema` (identifier-hood from
  /// `full_schema`) into the active engine.
  RowFilter(const Expr& expr, const Schema& row_schema,
            const Schema& full_schema, const FunctionRegistry* functions);

  /// True when the bytecode batch engine is active for this filter.
  [[nodiscard]] bool vectorized() const noexcept {
    return static_cast<bool>(prog_);
  }

  /// Scalar row test (either engine).
  [[nodiscard]] bool eval(RowView row) const {
    return prog_ ? prog_.eval(row) : interp_.eval(row);
  }

  /// Distinct columns this predicate reads per row — the bytes-touched
  /// basis for EXPLAIN ANALYZE.  The interpreted walk materialises whole
  /// rows, so it reports the full `width`.
  [[nodiscard]] std::size_t columns_read(std::size_t width) const {
    return prog_ ? std::min(prog_.columns_read(), width) : width;
  }

  /// Batch-filters rows [begin, end) of `src`, appending passing row
  /// indices to `sel` in ascending order, stopping once `limit` indices
  /// have been appended in total across the call.  Returns the number of
  /// rows visited — under a limit, exactly the index distance up to and
  /// including the row that filled it, matching the scalar loop's count.
  /// Requires vectorized().
  std::size_t filter_range(const Table& src, std::size_t begin,
                           std::size_t end, std::size_t limit,
                           bc::Sel& sel) const;

 private:
  bc::Program prog_;     // bytecode engine (empty when interpreting)
  CompiledExpr interp_;  // interpreted oracle engine
};

}  // namespace ccsql::plan::vec
