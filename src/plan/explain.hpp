#pragma once

// EXPLAIN rendering: a plan tree as indented text, one operator per line,
// each carrying the optimizer's cardinality estimate and — when the plan has
// been executed — the observed output row count:
//
//   Project [a.memmsg, b.outmsg] distinct (est=3.2, actual=1)
//     HashJoin (a.memmsg = b.inmsg) (est=14.4, actual=6)
//       Scan D as a (est=12, actual=12)
//       IndexLookup M as b (b.inmsg = "wb") (est=2, actual=3)

#include <string>

#include "plan/ir.hpp"

namespace ccsql::plan {

/// Renders `root` (children indented two spaces per level).  Nodes that were
/// never executed show `actual=-`.
[[nodiscard]] std::string render(const PlanNode& root);

/// EXPLAIN ANALYZE rendering: render() plus a profile bracket per executed
/// operator — inclusive and self wall time, rows in/out, vectorized batches,
/// parallel morsels, selection density, and hash-join build size:
///
///   Select (a.st = "bad") (est=3.2, actual=1) [time=1.2ms self=1.2ms
///       rows_in=4096 batches=4 sel=0.0%]
///
/// Self time is inclusive minus the children's inclusive sums.  Operators
/// the executor fused into their parent (scan under select, scan build
/// sides) never run their own exec() and are tagged `[fused]`; their work
/// is attributed to the fusing operator.  Requires a plan executed with
/// ExecContext::analyze set; nodes without stats render as plain render().
[[nodiscard]] std::string render_analyze(const PlanNode& root);

}  // namespace ccsql::plan
