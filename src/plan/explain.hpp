#pragma once

// EXPLAIN rendering: a plan tree as indented text, one operator per line,
// each carrying the optimizer's cardinality estimate and — when the plan has
// been executed — the observed output row count:
//
//   Project [a.memmsg, b.outmsg] distinct (est=3.2, actual=1)
//     HashJoin (a.memmsg = b.inmsg) (est=14.4, actual=6)
//       Scan D as a (est=12, actual=12)
//       IndexLookup M as b (b.inmsg = "wb") (est=2, actual=3)

#include <string>

#include "plan/ir.hpp"

namespace ccsql::plan {

/// Renders `root` (children indented two spaces per level).  Nodes that were
/// never executed show `actual=-`.
[[nodiscard]] std::string render(const PlanNode& root);

}  // namespace ccsql::plan
