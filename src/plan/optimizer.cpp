#include "plan/optimizer.hpp"

#include <cmath>
#include <utility>

#include "obs/obs.hpp"

namespace ccsql::plan {
namespace {

bool is_const(const Expr& e) { return e.op() == Expr::Op::kBool; }

/// `not e` with the negation folded into comparisons / IN / constants where
/// possible (`e` is assumed already folded).
Expr fold_not(const Expr& e) {
  switch (e.op()) {
    case Expr::Op::kBool:
      return Expr::boolean(!e.bool_value());
    case Expr::Op::kNot:
      return e.children()[0];
    case Expr::Op::kCompare:
      return Expr::compare(e.atoms()[0], !e.negated(), e.atoms()[1]);
    case Expr::Op::kIn: {
      std::vector<Atom> set(e.atoms().begin() + 1, e.atoms().end());
      return Expr::in(e.atoms()[0], !e.negated(), std::move(set));
    }
    default:
      return Expr::negation(e);
  }
}

const Schema& ident_schema_of(const PlanNode& node, const PlannerOptions& opts) {
  return opts.ident_schema != nullptr ? *opts.ident_schema : *node.schema;
}

/// Same identifier-hood rule as compile() in relational/expr.cpp.
bool is_column(const Atom& a, const Schema& ident) {
  return a.kind == Atom::Kind::kIdent && ident.has(a.text);
}

bool all_in(const std::vector<std::string>& names, const Schema& schema) {
  for (const auto& n : names) {
    if (!schema.has(n)) return false;
  }
  return true;
}

// ---- 1. constant folding ----------------------------------------------------

std::size_t fold_predicates(PlanPtr& node) {
  std::size_t n = 0;
  for (auto& c : node->children) n += fold_predicates(c);
  if (node->kind == PlanNode::Kind::kSelect && node->predicate) {
    Expr folded = fold_expr(*node->predicate);
    if (folded.to_string() != node->predicate->to_string()) {
      node->predicate = std::move(folded);
      ++n;
    }
    if (is_const(*node->predicate) && node->predicate->bool_value()) {
      // Always-true filter: splice it out.
      PlanPtr child = std::move(node->children[0]);
      node = std::move(child);
      ++n;
    }
  }
  return n;
}

// ---- 2. conjunction splitting -----------------------------------------------

void collect_conjuncts(const Expr& e, std::vector<Expr>& out) {
  if (e.op() == Expr::Op::kAnd) {
    for (const auto& c : e.children()) collect_conjuncts(c, out);
  } else {
    out.push_back(e);
  }
}

std::size_t split_conjunctions(PlanPtr& node) {
  std::size_t n = 0;
  for (auto& c : node->children) n += split_conjunctions(c);
  if (node->kind == PlanNode::Kind::kSelect && node->predicate &&
      node->predicate->op() == Expr::Op::kAnd) {
    std::vector<Expr> conjuncts;
    collect_conjuncts(*node->predicate, conjuncts);
    PlanPtr cur = std::move(node->children[0]);
    for (std::size_t i = conjuncts.size(); i-- > 0;) {
      PlanPtr sel = make_node(PlanNode::Kind::kSelect);
      sel->predicate = std::move(conjuncts[i]);
      sel->schema = cur->schema;
      sel->children.push_back(std::move(cur));
      cur = std::move(sel);
    }
    node = std::move(cur);
    ++n;
  }
  return n;
}

// ---- 3. predicate pushdown --------------------------------------------------

/// One sweep: moves the first pushable Select below the Cross at the bottom
/// of its Select chain and reports whether anything moved (optimize() loops
/// this to fixpoint).  Walking the whole chain matters: a non-pushable
/// residual (e.g. a cross-side inequality) sitting directly above the Cross
/// must not pin the pushable filters stacked above it.
bool push_once(PlanPtr& node, const PlannerOptions& opts) {
  if (node->kind == PlanNode::Kind::kSelect) {
    std::vector<PlanPtr*> links;  // slots holding each Select of the chain
    PlanPtr* cur = &node;
    while ((*cur)->kind == PlanNode::Kind::kSelect) {
      links.push_back(cur);
      cur = &(*cur)->children[0];
    }
    if ((*cur)->kind == PlanNode::Kind::kCross) {
      PlanNode& cross = **cur;
      for (PlanPtr* slot : links) {
        PlanNode& sel = **slot;
        const std::vector<std::string> cols =
            sel.predicate->referenced_columns(ident_schema_of(sel, opts));
        for (std::size_t side = 0; side < 2; ++side) {
          if (cols.empty() || !all_in(cols, *cross.children[side]->schema)) {
            continue;
          }
          PlanPtr pushed = make_node(PlanNode::Kind::kSelect);
          pushed->predicate = std::move(sel.predicate);
          pushed->children.push_back(std::move(cross.children[side]));
          pushed->schema = pushed->children[0]->schema;
          cross.children[side] = std::move(pushed);
          // Splice the emptied Select out of the chain.  The Cross object
          // itself never moves, so mutating it first is safe even when
          // `slot` is the Select directly above it.
          PlanPtr child = std::move((*slot)->children[0]);
          *slot = std::move(child);
          return true;
        }
      }
    }
  }
  for (auto& c : node->children) {
    if (push_once(c, opts)) return true;
  }
  return false;
}

// ---- 4. hash-join lowering --------------------------------------------------

/// If `node` heads a chain of Selects over a Cross, converts the
/// column=column equalities that span the two sides into HashJoin keys and
/// removes the consumed Selects.  Returns the number of rewrites.
std::size_t try_lower_join(PlanPtr& node, const PlannerOptions& opts) {
  if (node->kind != PlanNode::Kind::kSelect) return 0;
  std::vector<PlanPtr*> links;  // slots holding each Select of the chain
  PlanPtr* cur = &node;
  while ((*cur)->kind == PlanNode::Kind::kSelect) {
    links.push_back(cur);
    cur = &(*cur)->children[0];
  }
  if ((*cur)->kind != PlanNode::Kind::kCross) return 0;
  PlanNode& cross = **cur;
  const Schema& left = *cross.children[0]->schema;
  const Schema& right = *cross.children[1]->schema;

  std::vector<std::string> left_keys, right_keys;
  std::vector<std::size_t> consumed;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const Expr& p = *(*links[i])->predicate;
    if (p.op() != Expr::Op::kCompare || p.negated()) continue;
    const Schema& ident = ident_schema_of(**links[i], opts);
    const Atom& a = p.atoms()[0];
    const Atom& b = p.atoms()[1];
    if (!is_column(a, ident) || !is_column(b, ident)) continue;
    if (left.has(a.text) && right.has(b.text)) {
      left_keys.push_back(a.text);
      right_keys.push_back(b.text);
      consumed.push_back(i);
    } else if (left.has(b.text) && right.has(a.text)) {
      left_keys.push_back(b.text);
      right_keys.push_back(a.text);
      consumed.push_back(i);
    }
  }
  if (consumed.empty()) return 0;

  cross.kind = PlanNode::Kind::kHashJoin;
  cross.left_keys = std::move(left_keys);
  cross.right_keys = std::move(right_keys);
  // Splice out the consumed Selects, deepest first so shallower slots stay
  // valid.
  for (std::size_t i = consumed.size(); i-- > 0;) {
    PlanPtr* slot = links[consumed[i]];
    PlanPtr child = std::move((*slot)->children[0]);
    *slot = std::move(child);
  }
  return 1;
}

std::size_t lower_hash_joins(PlanPtr& node, const PlannerOptions& opts) {
  std::size_t n = try_lower_join(node, opts);
  for (auto& c : node->children) n += lower_hash_joins(c, opts);
  return n;
}

// ---- 4b. join column pruning ------------------------------------------------

/// A Project directly above a HashJoin narrows the join's output schema to
/// the projected columns: the executor then gathers only those columns when
/// materialising match pairs (the join keys are read from the *children*,
/// so dropping unprojected output columns never affects matching).  On wide
/// joins feeding narrow projections this removes most of the output copy —
/// the dominant cost of a high-fanout join under columnar storage.
std::size_t try_prune_join_columns(PlanNode& node) {
  if (node.kind != PlanNode::Kind::kProject || node.children.empty()) {
    return 0;
  }
  PlanNode& join = *node.children[0];
  if (join.kind != PlanNode::Kind::kHashJoin) return 0;
  std::vector<Column> kept;
  for (const Column& c : join.schema->columns()) {
    for (const std::string& name : node.columns) {
      if (c.name == name) {
        kept.push_back(c);
        break;
      }
    }
  }
  if (kept.size() >= join.schema->size()) return 0;
  join.schema = make_schema(std::move(kept));
  return 1;
}

std::size_t prune_join_columns(PlanPtr& node) {
  std::size_t n = try_prune_join_columns(*node);
  for (auto& c : node->children) n += prune_join_columns(c);
  return n;
}

// ---- 5. index lowering ------------------------------------------------------

/// If `node` heads a chain of Selects over a Scan, turns the column=literal
/// equalities into an IndexLookup on the scan and removes those Selects.
std::size_t try_lower_index(PlanPtr& node, const PlannerOptions& opts) {
  if (node->kind != PlanNode::Kind::kSelect) return 0;
  std::vector<PlanPtr*> links;
  PlanPtr* cur = &node;
  while ((*cur)->kind == PlanNode::Kind::kSelect) {
    links.push_back(cur);
    cur = &(*cur)->children[0];
  }
  if ((*cur)->kind != PlanNode::Kind::kScan) return 0;
  PlanNode& scan = **cur;

  std::vector<std::string> key_cols;
  std::vector<Value> key_vals;
  std::vector<std::size_t> consumed;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const Expr& p = *(*links[i])->predicate;
    if (p.op() != Expr::Op::kCompare || p.negated()) continue;
    const Schema& ident = ident_schema_of(**links[i], opts);
    const Atom& a = p.atoms()[0];
    const Atom& b = p.atoms()[1];
    // Exactly one side a column of the scan, the other a literal (same
    // interning rule as expression compilation).
    const Atom* col = nullptr;
    const Atom* lit = nullptr;
    if (is_column(a, ident) && !is_column(b, ident)) {
      col = &a;
      lit = &b;
    } else if (is_column(b, ident) && !is_column(a, ident)) {
      col = &b;
      lit = &a;
    } else {
      continue;
    }
    // An unbound $N parameter is not a literal: interning it here would
    // silently probe for its slot number.  Leave the predicate in place so
    // filter compilation raises BindError.
    if (lit->kind == Atom::Kind::kParam) continue;
    if (!scan.schema->has(col->text)) continue;
    key_cols.push_back(col->text);
    key_vals.push_back(Symbol::intern(lit->text));
    consumed.push_back(i);
  }
  if (consumed.empty()) return 0;

  scan.kind = PlanNode::Kind::kIndexLookup;
  scan.columns = std::move(key_cols);
  scan.key_values = std::move(key_vals);
  for (std::size_t i = consumed.size(); i-- > 0;) {
    PlanPtr* slot = links[consumed[i]];
    PlanPtr child = std::move((*slot)->children[0]);
    *slot = std::move(child);
  }
  return 1;
}

std::size_t lower_index_lookups(PlanPtr& node, const PlannerOptions& opts) {
  std::size_t n = try_lower_index(node, opts);
  for (auto& c : node->children) n += lower_index_lookups(c, opts);
  return n;
}

// ---- 6. exists mode ---------------------------------------------------------

std::size_t drop_sorts(PlanPtr& node) {
  std::size_t n = 0;
  while (node->kind == PlanNode::Kind::kSort) {
    PlanPtr child = std::move(node->children[0]);
    node = std::move(child);
    ++n;
  }
  for (auto& c : node->children) n += drop_sorts(c);
  return n;
}

// ---- 7. estimation ----------------------------------------------------------

void estimate(PlanNode& node) {
  for (auto& c : node.children) estimate(*c);
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      break;  // set from the base table at build time
    case PlanNode::Kind::kIndexLookup:
      // est_rows still holds the base-table size from build time; each key
      // column is assumed to select ~10% of it.
      node.est_rows = std::max(
          1.0, node.est_rows *
                   std::pow(0.1, static_cast<double>(node.columns.size())));
      break;
    case PlanNode::Kind::kSelect: {
      const bool equality = node.predicate &&
                            node.predicate->op() == Expr::Op::kCompare &&
                            !node.predicate->negated();
      node.est_rows = node.child().est_rows * (equality ? 0.1 : 0.33);
      break;
    }
    case PlanNode::Kind::kCross:
      node.est_rows = node.child(0).est_rows * node.child(1).est_rows;
      break;
    case PlanNode::Kind::kHashJoin:
      node.est_rows =
          node.child(0).est_rows * node.child(1).est_rows *
          std::pow(0.1, static_cast<double>(node.left_keys.size()));
      break;
    case PlanNode::Kind::kProject:
      node.est_rows = node.distinct && node.child().est_rows > 0
                          ? std::max(1.0, node.child().est_rows * 0.5)
                          : node.child().est_rows;
      break;
    case PlanNode::Kind::kDistinct:
      node.est_rows = node.child().est_rows > 0
                          ? std::max(1.0, node.child().est_rows * 0.5)
                          : 0.0;
      break;
    case PlanNode::Kind::kUnion: {
      double sum = 0;
      for (const auto& c : node.children) sum += c->est_rows;
      node.est_rows = sum;
      break;
    }
    case PlanNode::Kind::kSort:
      node.est_rows = node.child().est_rows;
      break;
    case PlanNode::Kind::kLimit:
      node.est_rows = node.limit == kNoLimit
                          ? node.child().est_rows
                          : std::min(node.child().est_rows,
                                     static_cast<double>(node.limit));
      break;
    case PlanNode::Kind::kCount:
      node.est_rows = 1.0;
      break;
  }
}

}  // namespace

Expr fold_expr(const Expr& e) {
  switch (e.op()) {
    case Expr::Op::kAnd: {
      std::vector<Expr> kids;
      for (const auto& c : e.children()) {
        Expr f = fold_expr(c);
        if (is_const(f)) {
          if (!f.bool_value()) return Expr::boolean(false);
          continue;  // drop neutral `true`
        }
        kids.push_back(std::move(f));
      }
      if (kids.empty()) return Expr::boolean(true);
      return Expr::conjunction(std::move(kids));
    }
    case Expr::Op::kOr: {
      std::vector<Expr> kids;
      for (const auto& c : e.children()) {
        Expr f = fold_expr(c);
        if (is_const(f)) {
          if (f.bool_value()) return Expr::boolean(true);
          continue;
        }
        kids.push_back(std::move(f));
      }
      if (kids.empty()) return Expr::boolean(false);
      return Expr::disjunction(std::move(kids));
    }
    case Expr::Op::kNot:
      return fold_not(fold_expr(e.children()[0]));
    case Expr::Op::kTernary: {
      Expr cond = fold_expr(e.children()[0]);
      Expr then_e = fold_expr(e.children()[1]);
      Expr else_e = fold_expr(e.children()[2]);
      if (is_const(cond)) return cond.bool_value() ? then_e : else_e;
      if (is_const(then_e) && is_const(else_e)) {
        if (then_e.bool_value() == else_e.bool_value()) return then_e;
        return then_e.bool_value() ? cond : fold_not(cond);
      }
      return Expr::ternary(std::move(cond), std::move(then_e),
                           std::move(else_e));
    }
    default:
      return e;
  }
}

void optimize(PlanPtr& root, const PlannerOptions& opts) {
  std::size_t rewrites = 0;
  if (opts.optimize) {
    rewrites += fold_predicates(root);
    rewrites += split_conjunctions(root);
    while (push_once(root, opts)) ++rewrites;
    rewrites += lower_hash_joins(root, opts);
    rewrites += prune_join_columns(root);
    rewrites += lower_index_lookups(root, opts);
  }
  if (opts.exists_only) {
    rewrites += drop_sorts(root);
    PlanPtr lim = make_node(PlanNode::Kind::kLimit);
    lim->limit = 1;
    lim->schema = root->schema;
    lim->children.push_back(std::move(root));
    root = std::move(lim);
    ++rewrites;
  }
  estimate(*root);
  if (rewrites > 0) CCSQL_COUNT("plan.rewrites", rewrites);
}

}  // namespace ccsql::plan
