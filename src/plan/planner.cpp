#include "plan/planner.hpp"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "obs/obs.hpp"
#include "plan/explain.hpp"

namespace ccsql::plan {
namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CCSQL_NO_PLANNER");
    const bool off =
        env != nullptr && env[0] != '\0' && std::string_view(env) != "0";
    return !off;
  }();
  return flag;
}

/// A Cross node over `l` and `r` (schema = concatenation; duplicate column
/// names throw SchemaError just like Table::cross would).
PlanPtr make_cross(PlanPtr l, PlanPtr r) {
  PlanPtr cross = make_node(PlanNode::Kind::kCross);
  std::vector<Column> cols = l->schema->columns();
  for (const Column& c : r->schema->columns()) cols.push_back(c);
  cross->schema = make_schema(std::move(cols));
  cross->children.push_back(std::move(l));
  cross->children.push_back(std::move(r));
  return cross;
}

PlanPtr make_select(PlanPtr child, Expr pred) {
  PlanPtr sel = make_node(PlanNode::Kind::kSelect);
  sel->schema = child->schema;
  sel->predicate = std::move(pred);
  sel->children.push_back(std::move(child));
  return sel;
}

/// The plan of one SELECT without its union branches / ORDER BY:
/// scans crossed left-to-right, WHERE, then count/distinct/projection.
PlanPtr build_core(const Catalog& db, const SelectStmt& stmt) {
  PlanPtr cur;
  for (const TableRef& ref : stmt.from) {
    const Table& base = db.get(ref.table);
    PlanPtr scan = make_node(PlanNode::Kind::kScan);
    scan->table_name = ref.table;
    scan->alias = ref.alias;
    scan->schema = scan_schema(base.schema(), ref.alias);
    scan->est_rows = static_cast<double>(base.row_count());
    cur = cur ? make_cross(std::move(cur), std::move(scan)) : std::move(scan);
  }
  if (stmt.where) cur = make_select(std::move(cur), *stmt.where);
  if (stmt.count_star) {
    PlanPtr count = make_node(PlanNode::Kind::kCount);
    count->schema = make_schema({{"count", ColumnKind::kOutput}});
    count->children.push_back(std::move(cur));
    return count;
  }
  if (stmt.star) {
    if (!stmt.distinct) return cur;
    PlanPtr d = make_node(PlanNode::Kind::kDistinct);
    d->schema = cur->schema;
    d->children.push_back(std::move(cur));
    return d;
  }
  PlanPtr proj = make_node(PlanNode::Kind::kProject);
  proj->schema = cur->schema->project(stmt.columns);
  proj->columns = stmt.columns;
  proj->distinct = stmt.distinct;
  proj->children.push_back(std::move(cur));
  return proj;
}

}  // namespace

bool planner_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_planner_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

PlanPtr build_plan(const Catalog& db, const SelectStmt& stmt) {
  PlanPtr root = build_core(db, stmt);
  if (!stmt.union_with.empty()) {
    PlanPtr u = make_node(PlanNode::Kind::kUnion);
    u->schema = root->schema;
    u->children.push_back(std::move(root));
    for (const SelectStmt& branch : stmt.union_with) {
      u->children.push_back(build_plan(db, branch));
    }
    root = std::move(u);
  }
  if (!stmt.order_by.empty()) {
    PlanPtr sort = make_node(PlanNode::Kind::kSort);
    sort->schema = root->schema;
    sort->order_by = stmt.order_by;
    sort->children.push_back(std::move(root));
    root = std::move(sort);
  }
  return root;
}

PlanPtr plan_select(const Catalog& db, const SelectStmt& stmt,
                    const PlannerOptions& opts) {
  PlanPtr root = build_plan(db, stmt);
  optimize(root, opts);
  return root;
}

Table run_select(const Catalog& db, const SelectStmt& stmt,
                 const PlannerOptions& opts) {
  CCSQL_SPAN(span, "plan.query", "plan");
  PlanPtr root = plan_select(db, stmt, opts);
  ExecContext ctx{&db, &db.functions(), opts.ident_schema, opts.jobs,
                  opts.analyze};
  return execute(*root, ctx, opts.exists_only ? 1 : kNoLimit);
}

bool is_empty(const Catalog& db, const SelectStmt& stmt) {
  PlannerOptions opts;
  opts.exists_only = true;
  return run_select(db, stmt, opts).row_count() == 0;
}

Table cross_select(const Table& left, const Table& right, const Expr& pred,
                   const Schema& ident_schema,
                   const FunctionRegistry* functions, std::size_t jobs) {
  if (!planner_enabled()) {
    Table crossed = Table::cross(left, right);
    CompiledExpr compiled =
        compile(pred, crossed.schema(), ident_schema, functions);
    return crossed.select(compiled.predicate());
  }
  CCSQL_SPAN(span, "plan.cross_select", "plan");
  auto scan_of = [](const Table& t) {
    PlanPtr scan = make_node(PlanNode::Kind::kScan);
    scan->bound = &t;
    scan->schema = t.schema_ptr();
    scan->est_rows = static_cast<double>(t.row_count());
    return scan;
  };
  PlanPtr root =
      make_select(make_cross(scan_of(left), scan_of(right)), pred);
  PlannerOptions opts;
  opts.ident_schema = &ident_schema;
  optimize(root, opts);
  ExecContext ctx{nullptr, functions, &ident_schema, jobs};
  return execute(*root, ctx);
}

std::string explain(const Catalog& db, const SelectStmt& stmt,
                    const PlannerOptions& opts) {
  PlanPtr root = plan_select(db, stmt, opts);
  ExecContext ctx{&db, &db.functions(), opts.ident_schema, opts.jobs,
                  opts.analyze};
  (void)execute(*root, ctx, opts.exists_only ? 1 : kNoLimit);
  return opts.analyze ? render_analyze(*root) : render(*root);
}

std::string explain_sql(const Catalog& db, std::string_view select_text,
                        const PlannerOptions& opts) {
  return explain(db, parse_select(select_text), opts);
}

}  // namespace ccsql::plan
