#pragma once

// Logical-plan IR of the ccsql query planner (ccsql::plan).
//
// A SELECT is compiled into a tree of PlanNodes (scan / select / project /
// cross / hash-join / union / distinct / sort / limit / count), rewritten by
// the rule-based optimizer (optimizer.hpp) and run by the executor
// (executor.hpp).  The paper offloads this to Oracle8's planner; here it is
// the layer that turns the naive "materialise the cross product, then
// filter" reading of an invariant query into pushed-down filters, indexed
// point lookups and hash joins.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/expr.hpp"
#include "relational/parser.hpp"
#include "relational/schema.hpp"
#include "relational/table.hpp"

namespace ccsql::plan {

namespace vec {
class RowFilter;
}  // namespace vec

/// "No limit" sentinel for row budgets.
inline constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);
/// actual_rows value of a node that has not been executed.
inline constexpr std::size_t kNotExecuted = static_cast<std::size_t>(-1);

struct PlanNode;
using PlanPtr = std::unique_ptr<PlanNode>;

/// Per-operator runtime profile, filled by the executor when
/// ExecContext::analyze is set (EXPLAIN ANALYZE).  wall_micros is inclusive
/// of children executed through exec(); exclusive (self) time is derived at
/// render time as inclusive minus the children's inclusive sums.  Fused
/// paths (select-over-scan, hash-join scan sides) never run the child's
/// exec(), so the fused work stays attributed to the fusing operator and
/// the child's wall time reads 0.
struct OpStats {
  std::uint64_t invocations = 0;   // exec() calls on this node
  std::uint64_t wall_micros = 0;   // inclusive wall time
  std::uint64_t rows_in = 0;       // input rows examined (filter/probe visits)
  std::uint64_t rows_out = 0;      // rows produced
  std::uint64_t batches = 0;       // vectorized batches evaluated
  std::uint64_t morsels = 0;       // parallel morsels dispatched
  std::uint64_t build_rows = 0;    // hash join: build-side rows indexed
  std::uint64_t build_keys = 0;    // hash join: distinct keys in the index
  std::uint64_t build_bytes = 0;   // hash join: estimated build memory
  std::uint64_t bytes_touched = 0;  // column bytes read + written (columnar)

  [[nodiscard]] bool executed() const noexcept { return invocations > 0; }
};

/// One operator of a query plan.  A single tagged struct (rather than a
/// class hierarchy) keeps rewrites — which splice, replace and retype nodes
/// constantly — simple.
struct PlanNode {
  enum class Kind {
    kScan,         // whole catalog table (table_name) or bound table
    kIndexLookup,  // point lookup on a base table via a secondary index
    kSelect,       // filter rows by predicate
    kProject,      // named columns, optionally distinct
    kDistinct,     // remove duplicate rows
    kCross,        // cartesian product of the two children
    kHashJoin,     // equality join of the two children (build = right)
    kUnion,        // set union of children, aligned by column position
    kSort,         // ORDER BY
    kLimit,        // first `limit` rows
    kCount,        // COUNT(*) over the child
  };

  Kind kind = Kind::kScan;

  /// Output schema of this operator (scan schemas are alias-renamed).
  SchemaPtr schema;

  // -- kScan / kIndexLookup ---------------------------------------------------
  std::string table_name;        // catalog scans; empty when `bound` is set
  const Table* bound = nullptr;  // externally-owned base table (solver, vcg)
  std::string alias;             // non-empty: columns read as "alias.name"

  // -- kSelect ----------------------------------------------------------------
  std::optional<Expr> predicate;
  /// Pre-compiled predicate (prepared-statement cache).  When set, the
  /// executor evaluates it instead of compiling `predicate` per execution.
  /// Shared — clone_plan copies the pointer — and immutable: RowFilter
  /// evaluation is const and thread-safe, so concurrent sessions executing
  /// clones of one cached plan reuse a single compiled artifact.
  std::shared_ptr<const vec::RowFilter> compiled;

  // -- kProject (projection list) / kIndexLookup (key columns) ---------------
  std::vector<std::string> columns;  // names in this node's schema
  bool distinct = false;             // kProject

  // -- kIndexLookup -----------------------------------------------------------
  std::vector<Value> key_values;  // parallel to `columns`

  // -- kHashJoin --------------------------------------------------------------
  std::vector<std::string> left_keys;   // names in children[0]'s schema
  std::vector<std::string> right_keys;  // names in children[1]'s schema

  // -- kSort ------------------------------------------------------------------
  std::vector<std::string> order_by;

  // -- kLimit -----------------------------------------------------------------
  std::size_t limit = kNoLimit;

  std::vector<PlanPtr> children;

  /// Cardinality estimate (optimizer) and observed output rows (executor),
  /// rendered side by side by EXPLAIN.
  double est_rows = 0.0;
  std::size_t actual_rows = kNotExecuted;

  /// Runtime profile; populated only under EXPLAIN ANALYZE.
  OpStats stats;

  [[nodiscard]] PlanNode& child(std::size_t i = 0) { return *children[i]; }
  [[nodiscard]] const PlanNode& child(std::size_t i = 0) const {
    return *children[i];
  }

  [[nodiscard]] bool is_scan() const noexcept { return kind == Kind::kScan; }

  /// One-line operator description (no row counts), e.g.
  /// `HashJoin (a.memmsg = b.inmsg)` or `IndexLookup D (dirst = "MESI")`.
  [[nodiscard]] std::string label() const;
};

[[nodiscard]] PlanPtr make_node(PlanNode::Kind kind);

/// Deep copy of a plan tree with fresh (unexecuted) runtime state:
/// actual_rows / stats reset, everything else — including the shared
/// pre-compiled predicates — carried over.  The executor mutates the nodes
/// it runs, so a cached plan is cloned once per execution and the cached
/// original stays immutable.
[[nodiscard]] PlanPtr clone_plan(const PlanNode& root);

/// Returns "Scan", "HashJoin", ... for tests and diagnostics.
[[nodiscard]] std::string_view to_string(PlanNode::Kind kind) noexcept;

/// The schema of a base table viewed through a FROM alias: every column
/// renamed to "alias.name" (kinds preserved).  The base schema when `alias`
/// is empty.
[[nodiscard]] SchemaPtr scan_schema(const Schema& base,
                                    const std::string& alias);

}  // namespace ccsql::plan
