#include "plan/explain.hpp"

#include <cmath>
#include <cstdio>

namespace ccsql::plan {
namespace {

/// Estimates render as integers when whole, else with one decimal.
std::string format_est(double est) {
  if (est == std::floor(est) && est < 1e15) {
    return std::to_string(static_cast<long long>(est));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", est);
  return buf;
}

void render_node(const PlanNode& node, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += node.label();
  out += " (est=" + format_est(node.est_rows) + ", actual=";
  out += node.actual_rows == kNotExecuted ? "-"
                                          : std::to_string(node.actual_rows);
  out += ")\n";
  for (const auto& c : node.children) render_node(*c, depth + 1, out);
}

}  // namespace

std::string render(const PlanNode& root) {
  std::string out;
  render_node(root, 0, out);
  return out;
}

}  // namespace ccsql::plan
