#include "plan/explain.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>

#include "obs/mem.hpp"

namespace ccsql::plan {
namespace {

/// Estimates render as integers when whole, else with one decimal.
std::string format_est(double est) {
  if (est == std::floor(est) && est < 1e15) {
    return std::to_string(static_cast<long long>(est));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", est);
  return buf;
}

void render_node(const PlanNode& node, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += node.label();
  out += " (est=" + format_est(node.est_rows) + ", actual=";
  out += node.actual_rows == kNotExecuted ? "-"
                                          : std::to_string(node.actual_rows);
  out += ")\n";
  for (const auto& c : node.children) render_node(*c, depth + 1, out);
}

std::string format_micros(std::uint64_t us) {
  char buf[32];
  if (us < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(us));
  } else if (us < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fms",
                  static_cast<double>(us) / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs",
                  static_cast<double>(us) / 1e6);
  }
  return buf;
}

void render_analyze_node(const PlanNode& node, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += node.label();
  out += " (est=" + format_est(node.est_rows) + ", actual=";
  out += node.actual_rows == kNotExecuted ? "-"
                                          : std::to_string(node.actual_rows);
  out += ")";
  const OpStats& s = node.stats;
  if (s.executed()) {
    std::uint64_t child_micros = 0;
    for (const auto& c : node.children) child_micros += c->stats.wall_micros;
    const std::uint64_t self =
        s.wall_micros >= child_micros ? s.wall_micros - child_micros : 0;
    out += " [time=" + format_micros(s.wall_micros) +
           " self=" + format_micros(self);
    if (s.rows_in > 0) out += " rows_in=" + std::to_string(s.rows_in);
    out += " rows_out=" + std::to_string(s.rows_out);
    if (s.batches > 0) out += " batches=" + std::to_string(s.batches);
    if (s.morsels > 0) out += " morsels=" + std::to_string(s.morsels);
    if (s.rows_in > 0 && node.kind == PlanNode::Kind::kSelect) {
      char sel[16];
      std::snprintf(sel, sizeof(sel), "%.1f%%",
                    100.0 * static_cast<double>(s.rows_out) /
                        static_cast<double>(s.rows_in));
      out += " sel=";
      out += sel;
    }
    if (s.build_rows > 0) {
      out += " build=" + std::to_string(s.build_rows) + " rows/" +
             std::to_string(s.build_keys) + " keys/" +
             obs::format_bytes(s.build_bytes);
    }
    if (s.bytes_touched > 0) {
      out += " bytes=" + obs::format_bytes(s.bytes_touched);
    }
    out += "]";
  } else if (node.actual_rows != kNotExecuted) {
    // Executed, but only through a parent's fused path.
    out += " [fused]";
  }
  out += "\n";
  for (const auto& c : node.children) {
    render_analyze_node(*c, depth + 1, out);
  }
}

}  // namespace

std::string render(const PlanNode& root) {
  std::string out;
  render_node(root, 0, out);
  return out;
}

std::string render_analyze(const PlanNode& root) {
  std::string out;
  render_analyze_node(root, 0, out);
  return out;
}

}  // namespace ccsql::plan
