#pragma once

// Rule-based rewrites over the plan IR (ir.hpp).  optimize() runs the rules
// in a fixed order:
//
//   1. constant folding     — ternary/not/and/or predicates with constant
//                             parts collapse; always-true filters vanish
//   2. conjunction splitting — Select(a and b) becomes Select(a)·Select(b)
//                             so each conjunct can move independently
//   3. predicate pushdown   — selects sink through Cross into the side whose
//                             columns they mention (to fixpoint)
//   4. hash-join lowering   — column=column equalities left above a Cross
//                             turn it into a HashJoin on those keys
//   5. index lowering       — column=literal filters directly above a Scan
//                             become an IndexLookup on a secondary index
//   6. exists mode          — for emptiness checks: sorts are dropped and
//                             the plan is capped with Limit 1
//   7. estimation           — bottom-up est_rows for EXPLAIN
//
// Each applied rewrite bumps the `plan.rewrites` counter.

#include "plan/ir.hpp"

namespace ccsql::plan {

struct PlannerOptions {
  /// The caller only needs to know whether the result is empty (invariant
  /// checks): drop ORDER BY and stop after the first row.
  bool exists_only = false;
  /// Disable all rewrites (est/actual bookkeeping still happens); the plan
  /// executes in its naive built shape.
  bool optimize = true;
  /// Schema deciding identifier-hood of bare atoms (see compile() in
  /// relational/expr.hpp).  Defaults to each node's own schema; the solver
  /// passes the full target schema so partially-built rows resolve the same
  /// way as complete ones.
  const Schema* ident_schema = nullptr;
  /// Parallel lanes for execution (copied into ExecContext::jobs by the
  /// planner entry points); <= 1 runs serially.  Does not affect plan shape.
  std::size_t jobs = 1;
  /// EXPLAIN ANALYZE: profile every operator (PlanNode::stats) and render
  /// the profile next to est/actual.  Does not affect plan shape or rows.
  bool analyze = false;
};

/// Rewrites `root` in place according to `opts`.
void optimize(PlanPtr& root, const PlannerOptions& opts = {});

/// Constant-folds one predicate expression (exposed for tests): resolves
/// ternaries/negations/conjunctions with constant parts.
[[nodiscard]] Expr fold_expr(const Expr& e);

}  // namespace ccsql::plan
