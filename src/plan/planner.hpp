#pragma once

// Planner facade: parse tree -> plan -> optimized plan -> result, plus the
// process-wide enable switch every SQL-consuming layer honours (the CLI's
// --no-planner flag and the CCSQL_NO_PLANNER environment variable flip it
// off, falling back to Catalog::run_naive everywhere).

#include <string>
#include <string_view>

#include "plan/executor.hpp"
#include "plan/ir.hpp"
#include "plan/optimizer.hpp"
#include "relational/query.hpp"

namespace ccsql::plan {

/// True (the default) when SQL entry points should plan + optimize instead
/// of running naively.  Initialised from the environment on first query:
/// CCSQL_NO_PLANNER=1 starts it off.
[[nodiscard]] bool planner_enabled();
void set_planner_enabled(bool enabled);

/// Builds the naive plan for `stmt`: scans crossed left-to-right, then the
/// WHERE filter, then count/distinct/projection, union branches, ORDER BY.
[[nodiscard]] PlanPtr build_plan(const Catalog& db, const SelectStmt& stmt);

/// build_plan + optimize.
[[nodiscard]] PlanPtr plan_select(const Catalog& db, const SelectStmt& stmt,
                                  const PlannerOptions& opts = {});

/// Plans and executes `stmt` against `db`.
[[nodiscard]] Table run_select(const Catalog& db, const SelectStmt& stmt,
                               const PlannerOptions& opts = {});

/// Emptiness check for `stmt` in exists mode: stops at the first row.
[[nodiscard]] bool is_empty(const Catalog& db, const SelectStmt& stmt);

/// Plans and runs `select(pred, cross(left, right))` over two free-standing
/// tables — the solver's incremental-generation step.  `ident_schema`
/// decides which bare identifiers in `pred` are columns (the solver passes
/// the full target schema so constraints resolve identically at every
/// prefix width).
[[nodiscard]] Table cross_select(const Table& left, const Table& right,
                                 const Expr& pred, const Schema& ident_schema,
                                 const FunctionRegistry* functions = nullptr,
                                 std::size_t jobs = 1);

/// Plans, executes, and renders `stmt` with estimated vs actual row counts
/// (see explain.hpp for the format).
[[nodiscard]] std::string explain(const Catalog& db, const SelectStmt& stmt,
                                  const PlannerOptions& opts = {});
[[nodiscard]] std::string explain_sql(const Catalog& db,
                                      std::string_view select_text,
                                      const PlannerOptions& opts = {});

}  // namespace ccsql::plan
