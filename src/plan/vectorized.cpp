#include "plan/vectorized.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace ccsql::plan::vec {

RowFilter::RowFilter(const Expr& expr, const Schema& row_schema,
                     const Schema& full_schema,
                     const FunctionRegistry* functions) {
  if (bytecode_enabled()) {
    prog_ = compile_bytecode(expr, row_schema, full_schema, functions);
  } else {
    interp_ = compile(expr, row_schema, full_schema, functions);
  }
}

std::size_t RowFilter::filter_range(const Table& src, std::size_t begin,
                                    std::size_t end, std::size_t limit,
                                    bc::Sel& sel) const {
  // One base pointer per column: the bytecode leaves scan each referenced
  // column stride-1 (DESIGN.md section 13).
  const std::vector<const Value*> cols = src.column_ptrs();
  // Scratch selection buffers are acquired/released LIFO, so one
  // thread-local pool serves nested evaluations (a registry predicate that
  // itself filters) and is reused across every batch this thread runs.
  thread_local bc::Scratch scratch;
  bc::Sel hits;
  std::size_t added = 0;
  std::size_t visited = 0;
  if (limit == 0) return 0;
  for (std::size_t b = begin; b < end; b += kBatchRows) {
    const std::size_t be = std::min(b + kBatchRows, end);
    prog_.eval_range(cols, static_cast<std::uint32_t>(b),
                     static_cast<std::uint32_t>(be), hits, scratch);
    CCSQL_COUNT("exec.batches", 1);
    CCSQL_OBSERVE("exec.sel_density",
                  static_cast<double>(hits.size()) /
                      static_cast<double>(be - b));
    if (added + hits.size() < limit) {
      sel.insert(sel.end(), hits.begin(), hits.end());
      added += hits.size();
      visited = be - begin;
      continue;
    }
    // This batch fills the budget: stop at exactly the row that fills it,
    // like the scalar loop would.
    const std::size_t take = limit - added;
    sel.insert(sel.end(), hits.begin(), hits.begin() + take);
    visited = static_cast<std::size_t>(hits[take - 1]) + 1 - begin;
    break;
  }
  return visited;
}

}  // namespace ccsql::plan::vec
