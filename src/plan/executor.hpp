#pragma once

// Plan execution.  Walks a PlanNode tree bottom-up, materialising Tables,
// with two fusions the naive interpreter cannot do:
//
//  - Select over Scan evaluates the compiled predicate directly against the
//    base table's rows (no intermediate copy of the whole table), and
//  - HashJoin over a Scan build side probes the base table's persistent
//    secondary index (Table::index_on), so repeated queries against catalog
//    tables reuse the index across calls.
//
// A row budget (`limit`) flows down where sound — most importantly the
// budget of 1 used by emptiness checks, which stops every operator at its
// first produced row.  Each executed node records its output size in
// `actual_rows` for EXPLAIN.

#include "plan/ir.hpp"
#include "relational/query.hpp"

namespace ccsql::plan {

/// Everything a plan needs at run time.
struct ExecContext {
  /// Resolves named scans; may be null when every scan is bound to a table.
  const Catalog* catalog = nullptr;
  /// WHERE-clause predicate functions (usually &catalog->functions()).
  const FunctionRegistry* functions = nullptr;
  /// Identifier-hood schema override for predicate compilation; defaults to
  /// each node's own schema.  See PlannerOptions::ident_schema.
  const Schema* ident_schema = nullptr;
  /// Parallel lanes for the morsel-driven operators (filter, hash-join
  /// build/probe, union branches, count); <= 1 executes serially.  Results
  /// are bit-identical at any value: morsel boundaries depend only on input
  /// size, and per-morsel output is concatenated in morsel order.  Paths
  /// with a row budget (exists mode / LIMIT) always run serially.
  std::size_t jobs = 1;
  /// EXPLAIN ANALYZE: time every operator and fill PlanNode::stats.  Costs
  /// two steady_clock reads per operator invocation, so it defaults off.
  bool analyze = false;
  /// Write runtime state (actual_rows, OpStats row counts) into the plan
  /// nodes.  On by default — EXPLAIN reads it after execution.  The const
  /// execute() overload clears it so a shared cached plan can run on many
  /// threads at once without cloning (the tree is never written).
  bool record = true;
};

/// Executes `root`, producing at most `limit` rows (kNoLimit = all).
Table execute(PlanNode& root, const ExecContext& ctx,
              std::size_t limit = kNoLimit);

/// Read-only execution of a shared plan (prepared-statement cache): forces
/// ctx.record/analyze off, so the tree is not mutated and concurrent
/// executions of the same PlanNode tree are race-free.
Table execute(const PlanNode& root, const ExecContext& ctx,
              std::size_t limit = kNoLimit);

}  // namespace ccsql::plan
