#include "plan/executor.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "relational/error.hpp"
#include "relational/expr.hpp"

namespace ccsql::plan {
namespace {

/// First `limit` rows of `t` (t itself when it is already small enough).
Table take(Table t, std::size_t limit) {
  if (limit == kNoLimit || t.row_count() <= limit) return t;
  Table out(t.schema_ptr());
  out.reserve_rows(limit);
  for (std::size_t i = 0; i < limit; ++i) out.append(t.row(i));
  return out;
}

struct Executor {
  const ExecContext& ctx;

  [[nodiscard]] const Table& base_of(const PlanNode& scan) const {
    if (scan.bound != nullptr) return *scan.bound;
    if (ctx.catalog == nullptr) {
      throw BindError("plan: scan of '" + scan.table_name +
                      "' without a catalog");
    }
    return ctx.catalog->get(scan.table_name);
  }

  /// Identifier-hood schema for compiling `node`'s predicate.
  [[nodiscard]] const Schema& full_of(const PlanNode& node) const {
    return ctx.ident_schema != nullptr ? *ctx.ident_schema : *node.schema;
  }

  Table exec(PlanNode& node, std::size_t limit) {  // NOLINT(misc-no-recursion)
    Table out;
    switch (node.kind) {
      case PlanNode::Kind::kScan:
        out = scan(node, limit);
        break;
      case PlanNode::Kind::kIndexLookup:
        out = index_lookup(node, limit);
        break;
      case PlanNode::Kind::kSelect:
        out = select(node, limit);
        break;
      case PlanNode::Kind::kProject: {
        const std::size_t child_limit =
            node.distinct ? (limit == 1 ? 1 : kNoLimit) : limit;
        Table in = exec(node.child(), child_limit);
        out = take(in.project(node.columns, node.distinct), limit);
        break;
      }
      case PlanNode::Kind::kDistinct: {
        Table in = exec(node.child(), limit == 1 ? 1 : kNoLimit);
        out = take(in.distinct(), limit);
        break;
      }
      case PlanNode::Kind::kCross: {
        // A budget of 1 flows into both sides: the product is empty iff
        // either side is.
        const std::size_t child_limit = limit == 1 ? 1 : kNoLimit;
        Table l = exec(node.child(0), child_limit);
        Table r = exec(node.child(1), child_limit);
        out = take(Table::cross(l, r), limit);
        break;
      }
      case PlanNode::Kind::kHashJoin:
        out = hash_join(node, limit);
        break;
      case PlanNode::Kind::kUnion: {
        const std::size_t child_limit = limit == 1 ? 1 : kNoLimit;
        Table result = exec(node.child(0), child_limit);
        for (std::size_t i = 1; i < node.children.size(); ++i) {
          if (limit == 1 && result.row_count() > 0) break;
          Table b = exec(node.child(i), child_limit);
          result =
              Table::union_distinct(result, b.with_schema(result.schema_ptr()));
        }
        out = take(std::move(result), limit);
        break;
      }
      case PlanNode::Kind::kSort: {
        Table in = exec(node.child(), kNoLimit);
        out = take(in.sorted_by(node.order_by), limit);
        break;
      }
      case PlanNode::Kind::kLimit: {
        Table in = exec(node.child(), std::min(limit, node.limit));
        out = take(std::move(in), node.limit);
        break;
      }
      case PlanNode::Kind::kCount: {
        Table in = exec(node.child(), kNoLimit);
        Table counted(node.schema);
        counted.append({Symbol::intern(std::to_string(in.row_count()))});
        out = std::move(counted);
        break;
      }
    }
    node.actual_rows = out.row_count();
    return out;
  }

  Table scan(PlanNode& node, std::size_t limit) {
    const Table& base = base_of(node);
    if (limit >= base.row_count()) {
      CCSQL_COUNT("query.rows_scanned", base.row_count());
      return base.with_schema(node.schema);
    }
    Table out(node.schema);
    out.reserve_rows(limit);
    for (std::size_t i = 0; i < limit; ++i) out.append(base.row(i));
    CCSQL_COUNT("query.rows_scanned", limit);
    return out;
  }

  Table index_lookup(PlanNode& node, std::size_t limit) {
    const Table& base = base_of(node);
    std::vector<std::size_t> cols;
    cols.reserve(node.columns.size());
    for (const auto& name : node.columns) {
      // node.schema is positionally identical to the base schema (only
      // alias-renamed), so its indices address base rows directly.
      cols.push_back(node.schema->index_of(name));
    }
    const bool cached = base.has_cached_index(cols);
    const Table::IndexMap& index = base.index_on(cols);
    CCSQL_COUNT(cached ? "plan.index_hits" : "plan.index_builds", 1);
    Table out(node.schema);
    auto it = index.find(Table::index_key(node.key_values));
    if (it != index.end()) {
      for (std::size_t i : it->second) {
        if (out.row_count() >= limit) break;
        out.append(base.row(i));
      }
    }
    CCSQL_COUNT("query.rows_scanned", out.row_count());
    return out;
  }

  Table select(PlanNode& node, std::size_t limit) {
    CompiledExpr pred =
        compile(*node.predicate, *node.schema, full_of(node), ctx.functions);
    if (node.child().is_scan()) {
      // Fused path: filter base rows in place, no intermediate copy.
      const Table& base = base_of(node.child());
      Table out(node.schema);
      std::size_t visited = 0;
      for (std::size_t i = 0;
           i < base.row_count() && out.row_count() < limit; ++i) {
        ++visited;
        RowView r = base.row(i);
        if (pred.eval(r)) out.append(r);
      }
      node.child().actual_rows = visited;
      CCSQL_COUNT("query.rows_scanned", visited);
      return out;
    }
    Table in = exec(node.child(), kNoLimit);
    Table out(node.schema);
    for (std::size_t i = 0; i < in.row_count() && out.row_count() < limit;
         ++i) {
      RowView r = in.row(i);
      if (pred.eval(r)) out.append(r);
    }
    return out;
  }

  Table hash_join(PlanNode& node, std::size_t limit) {
    PlanNode& lhs = node.child(0);
    PlanNode& rhs = node.child(1);
    std::vector<std::size_t> lk, rk;
    for (const auto& name : node.left_keys) {
      lk.push_back(lhs.schema->index_of(name));
    }
    for (const auto& name : node.right_keys) {
      rk.push_back(rhs.schema->index_of(name));
    }

    // Build side: the right child.  A scan build side probes the base
    // table's persistent index (reused across queries); anything else
    // materialises and indexes its local result.
    const Table* right = nullptr;
    Table right_local;
    if (rhs.is_scan()) {
      right = &base_of(rhs);
      const bool cached = right->has_cached_index(rk);
      CCSQL_COUNT(cached ? "plan.index_hits" : "plan.index_builds", 1);
      rhs.actual_rows = right->row_count();
    } else {
      right_local = exec(rhs, kNoLimit);
      right = &right_local;
    }
    const Table::IndexMap& index = right->index_on(rk);

    // Probe side: the left child, streamed straight off the base table when
    // it is a scan.
    const Table* left = nullptr;
    Table left_local;
    if (lhs.is_scan()) {
      left = &base_of(lhs);
    } else {
      left_local = exec(lhs, kNoLimit);
      left = &left_local;
    }

    Table out(node.schema);
    std::vector<Value> tmp(node.schema->size());
    const std::size_t lw = lhs.schema->size();
    std::size_t visited = 0;
    for (std::size_t i = 0;
         i < left->row_count() && out.row_count() < limit; ++i) {
      ++visited;
      RowView lr = left->row(i);
      auto it = index.find(Table::index_key(lr, lk));
      if (it == index.end()) continue;
      std::copy(lr.begin(), lr.end(), tmp.begin());
      for (std::size_t j : it->second) {
        RowView rr = right->row(j);
        std::copy(rr.begin(), rr.end(), tmp.begin() + lw);
        out.append(RowView(tmp));
        if (out.row_count() >= limit) break;
      }
    }
    if (lhs.is_scan()) {
      lhs.actual_rows = visited;
      CCSQL_COUNT("query.rows_scanned", visited);
    }
    return out;
  }
};

}  // namespace

Table execute(PlanNode& root, const ExecContext& ctx, std::size_t limit) {
  CCSQL_SPAN(span, "plan.execute", "plan");
  Executor ex{ctx};
  Table out = ex.exec(root, limit);
  span.arg("rows", out.row_count());
  return out;
}

}  // namespace ccsql::plan
