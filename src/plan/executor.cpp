#include "plan/executor.hpp"

#include <algorithm>
#include <chrono>

#include "core/pool.hpp"
#include "obs/mem.hpp"
#include "obs/obs.hpp"
#include "plan/vectorized.hpp"
#include "relational/error.hpp"
#include "relational/expr.hpp"

namespace ccsql::plan {
namespace {

/// Morsel sizing for the parallel operators.  Below the threshold the
/// fork/join overhead exceeds the work; the grain is the per-claim row
/// chunk (fixed, so morsel boundaries — and therefore output order — are
/// independent of the worker count).  The grain doubles as the vectorized
/// batch size (vec::kBatchRows), so a parallel morsel is exactly one batch.
constexpr std::size_t kParallelRowThreshold = 2048;
constexpr std::size_t kMorselGrain = vec::kBatchRows;

/// First `limit` rows of `t` (t itself when it is already small enough).
/// Columnar storage makes this O(columns): head() shares column vectors.
Table take(Table t, std::size_t limit) {
  if (limit == kNoLimit || t.row_count() <= limit) return t;
  return t.head(limit);
}

/// Bytes a predicate scan reads: only the columns the program references,
/// 4 bytes (one interned id) per cell.
std::uint64_t scan_bytes(std::size_t rows_visited, std::size_t columns) {
  return static_cast<std::uint64_t>(rows_visited) * columns * sizeof(Value);
}

struct Executor {
  const ExecContext& ctx;

  [[nodiscard]] const Table& base_of(const PlanNode& scan) const {
    if (scan.bound != nullptr) return *scan.bound;
    if (ctx.catalog == nullptr) {
      throw BindError("plan: scan of '" + scan.table_name +
                      "' without a catalog");
    }
    return ctx.catalog->get(scan.table_name);
  }

  /// Identifier-hood schema for compiling `node`'s predicate.
  [[nodiscard]] const Schema& full_of(const PlanNode& node) const {
    return ctx.ident_schema != nullptr ? *ctx.ident_schema : *node.schema;
  }

  /// True when work over `rows` input rows should fan out across the pool.
  /// Row-budgeted paths (exists mode / LIMIT) stay serial: their early exit
  /// depends on production order, which parallel lanes cannot honour.
  [[nodiscard]] bool go_parallel(std::size_t limit, std::size_t rows) const {
    return ctx.jobs > 1 && limit == kNoLimit && rows >= kParallelRowThreshold;
  }

  Table exec(PlanNode& node, std::size_t limit) {  // NOLINT(misc-no-recursion)
    if (!ctx.analyze) return exec_impl(node, limit);
    const auto t0 = std::chrono::steady_clock::now();
    Table out = exec_impl(node, limit);
    const auto t1 = std::chrono::steady_clock::now();
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count();
    ++node.stats.invocations;
    node.stats.wall_micros += static_cast<std::uint64_t>(us > 0 ? us : 0);
    node.stats.rows_out += out.row_count();
    return out;
  }

  // NOLINTNEXTLINE(misc-no-recursion)
  Table exec_impl(PlanNode& node, std::size_t limit) {
    Table out;
    switch (node.kind) {
      case PlanNode::Kind::kScan:
        out = scan(node, limit);
        break;
      case PlanNode::Kind::kIndexLookup:
        out = index_lookup(node, limit);
        break;
      case PlanNode::Kind::kSelect:
        out = select(node, limit);
        break;
      case PlanNode::Kind::kProject: {
        const std::size_t child_limit =
            node.distinct ? (limit == 1 ? 1 : kNoLimit) : limit;
        Table in = exec(node.child(), child_limit);
        out = take(in.project(node.columns, node.distinct), limit);
        break;
      }
      case PlanNode::Kind::kDistinct: {
        Table in = exec(node.child(), limit == 1 ? 1 : kNoLimit);
        out = take(in.distinct(), limit);
        break;
      }
      case PlanNode::Kind::kCross: {
        // A budget of 1 flows into both sides: the product is empty iff
        // either side is.
        const std::size_t child_limit = limit == 1 ? 1 : kNoLimit;
        Table l = exec(node.child(0), child_limit);
        Table r = exec(node.child(1), child_limit);
        out = take(Table::cross(l, r), limit);
        break;
      }
      case PlanNode::Kind::kHashJoin:
        out = hash_join(node, limit);
        break;
      case PlanNode::Kind::kUnion: {
        if (ctx.jobs > 1 && limit == kNoLimit && node.children.size() > 1) {
          // Branches execute concurrently (each touches only its own
          // subtree); the distinct-merge runs in branch order afterwards,
          // so the result matches the serial fold exactly.
          std::vector<Table> branches(node.children.size());
          core::Pool::global().parallel_tasks(
              node.children.size(), ctx.jobs,
              [&](std::size_t i) { branches[i] = exec(node.child(i), kNoLimit); });
          Table result = std::move(branches[0]);
          for (std::size_t i = 1; i < branches.size(); ++i) {
            result = Table::union_distinct(
                result, branches[i].with_schema(result.schema_ptr()));
          }
          out = std::move(result);
          break;
        }
        const std::size_t child_limit = limit == 1 ? 1 : kNoLimit;
        Table result = exec(node.child(0), child_limit);
        for (std::size_t i = 1; i < node.children.size(); ++i) {
          if (limit == 1 && result.row_count() > 0) break;
          Table b = exec(node.child(i), child_limit);
          result =
              Table::union_distinct(result, b.with_schema(result.schema_ptr()));
        }
        out = take(std::move(result), limit);
        break;
      }
      case PlanNode::Kind::kSort: {
        Table in = exec(node.child(), kNoLimit);
        out = take(in.sorted_by(node.order_by), limit);
        break;
      }
      case PlanNode::Kind::kLimit: {
        Table in = exec(node.child(), std::min(limit, node.limit));
        out = take(std::move(in), node.limit);
        break;
      }
      case PlanNode::Kind::kCount: {
        if (std::size_t total = 0; fused_count(node, total)) {
          Table counted(node.schema);
          counted.append({Symbol::intern(std::to_string(total))});
          out = std::move(counted);
          break;
        }
        Table in = exec(node.child(), kNoLimit);
        Table counted(node.schema);
        counted.append({Symbol::intern(std::to_string(in.row_count()))});
        out = std::move(counted);
        break;
      }
    }
    if (ctx.record) node.actual_rows = out.row_count();
    return out;
  }

  Table scan(PlanNode& node, std::size_t limit) {
    const Table& base = base_of(node);
    if (limit >= base.row_count()) {
      CCSQL_COUNT("query.rows_scanned", base.row_count());
      return base.with_schema(node.schema);
    }
    // O(columns): the head shares the base table's column vectors.
    CCSQL_COUNT("query.rows_scanned", limit);
    return base.head(limit).with_schema(node.schema);
  }

  Table index_lookup(PlanNode& node, std::size_t limit) {
    const Table& base = base_of(node);
    std::vector<std::size_t> cols;
    cols.reserve(node.columns.size());
    for (const auto& name : node.columns) {
      // node.schema is positionally identical to the base schema (only
      // alias-renamed), so its indices address base rows directly.
      cols.push_back(node.schema->index_of(name));
    }
    const bool cached = base.has_cached_index(cols);
    const Table::IndexMap& index = base.index_on(cols);
    CCSQL_COUNT(cached ? "plan.index_hits" : "plan.index_builds", 1);
    bc::Sel sel;
    auto it = index.find(Table::index_key(node.key_values));
    if (it != index.end()) {
      for (std::size_t i : it->second) {
        if (sel.size() >= limit) break;
        sel.push_back(static_cast<std::uint32_t>(i));
      }
    }
    CCSQL_COUNT("query.rows_scanned", sel.size());
    return base.gather(sel).with_schema(node.schema);
  }

  /// Rows of `src` passing `pred`, in table order, as a table over `schema`.
  /// Parallel when go_parallel(): each morsel collects its hits, morsels
  /// concatenate in order — identical output to the serial scan.  With the
  /// bytecode engine (the default) each morsel/batch evaluates over a
  /// selection vector; --no-bytecode keeps the interpreted row loop.
  Table filter(const Table& src, const SchemaPtr& schema,
               const vec::RowFilter& pred, std::size_t limit,
               std::size_t& visited, OpStats& stats) {
    const std::size_t n = src.row_count();
    const std::size_t pred_cols = pred.columns_read(src.column_count());
    bc::Sel sel;
    if (go_parallel(limit, n)) {
      const std::size_t morsels = (n + kMorselGrain - 1) / kMorselGrain;
      stats.morsels += morsels;
      std::vector<bc::Sel> hits(morsels);
      if (pred.vectorized()) {
        // One morsel = one vectorized batch (kMorselGrain == kBatchRows).
        stats.batches += morsels;
        core::Pool::global().parallel_for(
            n, kMorselGrain, ctx.jobs,
            [&](std::size_t begin, std::size_t end, std::size_t morsel) {
              pred.filter_range(src, begin, end, kNoLimit, hits[morsel]);
            });
      } else {
        core::Pool::global().parallel_for(
            n, kMorselGrain, ctx.jobs,
            [&](std::size_t begin, std::size_t end, std::size_t morsel) {
              auto& h = hits[morsel];
              for (std::size_t i = begin; i < end; ++i) {
                if (pred.eval(src.row(i))) {
                  h.push_back(static_cast<std::uint32_t>(i));
                }
              }
            });
      }
      std::size_t total = 0;
      for (const auto& h : hits) total += h.size();
      sel.reserve(total);
      for (const auto& h : hits) sel.insert(sel.end(), h.begin(), h.end());
      visited = n;
    } else if (pred.vectorized()) {
      visited = pred.filter_range(src, 0, n, limit, sel);
      stats.batches += (visited + vec::kBatchRows - 1) / vec::kBatchRows;
    } else {
      for (std::size_t i = 0; i < n && sel.size() < limit; ++i) {
        ++visited;
        if (pred.eval(src.row(i))) sel.push_back(static_cast<std::uint32_t>(i));
      }
    }
    // Predicate pass reads only the referenced columns; the output gather
    // reads and writes every cell of the passing rows.
    stats.bytes_touched +=
        scan_bytes(visited, pred_cols) +
        2 * scan_bytes(sel.size(), src.column_count());
    return src.gather(sel).with_schema(schema);
  }

  Table select(PlanNode& node, std::size_t limit) {
    // A cached plan carries its predicate pre-compiled (shared across
    // concurrent executions); otherwise compile here, per execution.
    std::optional<vec::RowFilter> local;
    const vec::RowFilter& pred =
        node.compiled ? *node.compiled
                      : local.emplace(*node.predicate, *node.schema,
                                      full_of(node), ctx.functions);
    std::size_t visited = 0;
    OpStats scratch;  // discarded stats sink for record-off executions
    OpStats& stats = ctx.record ? node.stats : scratch;
    if (node.child().kind == PlanNode::Kind::kIndexLookup) {
      // Fused path: evaluate the predicate on base rows straight out of the
      // index bucket.  Skips materialising the (possibly large) lookup
      // result — with a row budget of 1 (exists mode) this stops at the
      // first passing row.  Sound because an IndexLookup's schema is
      // positionally identical to its base table's.
      PlanNode& lookup = node.child();
      const Table& base = base_of(lookup);
      std::vector<std::size_t> cols;
      cols.reserve(lookup.columns.size());
      for (const auto& name : lookup.columns) {
        cols.push_back(lookup.schema->index_of(name));
      }
      const bool cached = base.has_cached_index(cols);
      const Table::IndexMap& index = base.index_on(cols);
      CCSQL_COUNT(cached ? "plan.index_hits" : "plan.index_builds", 1);
      bc::Sel hits;
      auto it = index.find(Table::index_key(lookup.key_values));
      if (it != index.end()) {
        for (std::size_t i : it->second) {
          if (hits.size() >= limit) break;
          ++visited;
          if (pred.eval(base.row(i))) {
            hits.push_back(static_cast<std::uint32_t>(i));
          }
        }
      }
      if (ctx.record) {
        lookup.actual_rows = visited;
        node.stats.rows_in += visited;
        node.stats.bytes_touched +=
            scan_bytes(visited, base.column_count()) +
            2 * scan_bytes(hits.size(), base.column_count());
      }
      CCSQL_COUNT("query.rows_scanned", visited);
      return base.gather(hits).with_schema(node.schema);
    }
    if (node.child().is_scan()) {
      // Fused path: filter base rows in place, no intermediate copy.
      const Table& base = base_of(node.child());
      Table out = filter(base, node.schema, pred, limit, visited, stats);
      if (ctx.record) {
        node.child().actual_rows = visited;
        node.stats.rows_in += visited;
      }
      CCSQL_COUNT("query.rows_scanned", visited);
      return out;
    }
    Table in = exec(node.child(), kNoLimit);
    Table out = filter(in, node.schema, pred, limit, visited, stats);
    if (ctx.record) node.stats.rows_in += visited;
    return out;
  }

  /// Count over Select over Scan, evaluated without materialising the
  /// filtered rows: per-morsel counters summed in morsel order.  Returns
  /// false (leaving `total` alone) when the shape or size does not apply;
  /// the caller then takes the generic path.
  bool fused_count(PlanNode& node, std::size_t& total) {
    PlanNode& sel = node.child();
    if (sel.kind != PlanNode::Kind::kSelect || !sel.child().is_scan()) {
      return false;
    }
    const Table& base = base_of(sel.child());
    const std::size_t n = base.row_count();
    if (!go_parallel(kNoLimit, n)) return false;
    std::optional<vec::RowFilter> local;
    const vec::RowFilter& pred =
        sel.compiled ? *sel.compiled
                     : local.emplace(*sel.predicate, *sel.schema, full_of(sel),
                                     ctx.functions);
    const std::size_t morsels = (n + kMorselGrain - 1) / kMorselGrain;
    if (ctx.record) {
      node.stats.morsels += morsels;
      node.stats.rows_in += n;
      if (pred.vectorized()) node.stats.batches += morsels;
      node.stats.bytes_touched +=
          scan_bytes(n, pred.columns_read(base.column_count()));
    }
    std::vector<std::size_t> counts(morsels, 0);
    core::Pool::global().parallel_for(
        n, kMorselGrain, ctx.jobs,
        [&](std::size_t begin, std::size_t end, std::size_t morsel) {
          if (pred.vectorized()) {
            bc::Sel hits;
            pred.filter_range(base, begin, end, kNoLimit, hits);
            counts[morsel] = hits.size();
            return;
          }
          std::size_t c = 0;
          for (std::size_t i = begin; i < end; ++i) {
            if (pred.eval(base.row(i))) ++c;
          }
          counts[morsel] = c;
        });
    total = 0;
    for (std::size_t c : counts) total += c;
    if (ctx.record) {
      sel.actual_rows = total;
      sel.child().actual_rows = n;
    }
    CCSQL_COUNT("query.rows_scanned", n);
    return true;
  }

  Table hash_join(PlanNode& node, std::size_t limit) {
    PlanNode& lhs = node.child(0);
    PlanNode& rhs = node.child(1);
    std::vector<std::size_t> lk, rk;
    for (const auto& name : node.left_keys) {
      lk.push_back(lhs.schema->index_of(name));
    }
    for (const auto& name : node.right_keys) {
      rk.push_back(rhs.schema->index_of(name));
    }

    // Build side: the right child.  A scan build side probes the base
    // table's persistent radix join index (reused across queries); anything
    // else materialises and indexes its local result.  The index partitions
    // by key-hash radix above ~8k build rows (partitions built in parallel
    // on the pool) and degenerates to the classic single hash table below.
    const Table* right = nullptr;
    Table right_local;
    obs::MemReservation build_mem;
    if (rhs.is_scan()) {
      right = &base_of(rhs);
      const bool cached = right->has_cached_join_index(rk);
      CCSQL_COUNT(cached ? "plan.index_hits" : "plan.index_builds", 1);
      if (ctx.record) rhs.actual_rows = right->row_count();
    } else {
      right_local = exec(rhs, kNoLimit);
      right = &right_local;
      // The materialised build side is join-local memory; the index built
      // over it is accounted by the table's index cache.
      build_mem = obs::MemReservation(obs::MemTracker::Category::kHashBuilds,
                                      right_local.memory_bytes());
    }
    const JoinIndex& index = right->join_index_on(rk, ctx.jobs);
    if (ctx.record) {
      node.stats.build_rows += right->row_count();
      node.stats.build_keys += index.key_count();
      node.stats.build_bytes += index.memory_bytes() + build_mem.bytes();
    }

    // Probe side: the left child, streamed straight off the base table when
    // it is a scan.
    const Table* left = nullptr;
    Table left_local;
    if (lhs.is_scan()) {
      left = &base_of(lhs);
    } else {
      left_local = exec(lhs, kNoLimit);
      left = &left_local;
    }

    // Probe emits (probe-row, build-row) id pairs; the output is then one
    // gather per column from each side — no per-row assembly.  Only the
    // build side is partitioned, so probing stays in probe-row order and
    // output order matches the single-partition join exactly.
    const std::size_t n = left->row_count();
    bc::Sel lsel, rsel;
    std::size_t visited = 0;
    if (go_parallel(limit, n)) {
      const std::size_t morsels = (n + kMorselGrain - 1) / kMorselGrain;
      if (ctx.record) node.stats.morsels += morsels;
      std::vector<std::pair<bc::Sel, bc::Sel>> parts(morsels);
      core::Pool::global().parallel_for(
          n, kMorselGrain, ctx.jobs,
          [&](std::size_t begin, std::size_t end, std::size_t morsel) {
            auto& [ls, rs] = parts[morsel];
            std::vector<TupleKey> keys(end - begin);
            left->build_keys(lk, begin, end, keys.data());
            for (std::size_t i = begin; i < end; ++i) {
              const auto* rows = index.find(keys[i - begin]);
              if (rows == nullptr) continue;
              for (std::size_t j : *rows) {
                ls.push_back(static_cast<std::uint32_t>(i));
                rs.push_back(static_cast<std::uint32_t>(j));
              }
            }
          });
      std::size_t total = 0;
      for (const auto& p : parts) total += p.first.size();
      lsel.reserve(total);
      rsel.reserve(total);
      for (auto& [ls, rs] : parts) {
        lsel.insert(lsel.end(), ls.begin(), ls.end());
        rsel.insert(rsel.end(), rs.begin(), rs.end());
      }
      visited = n;
    } else {
      std::vector<TupleKey> keys;
      for (std::size_t begin = 0; begin < n && lsel.size() < limit;
           begin += kMorselGrain) {
        const std::size_t end = std::min(n, begin + kMorselGrain);
        keys.assign(end - begin, TupleKey{});
        left->build_keys(lk, begin, end, keys.data());
        for (std::size_t i = begin; i < end && lsel.size() < limit; ++i) {
          ++visited;
          const auto* rows = index.find(keys[i - begin]);
          if (rows == nullptr) continue;
          for (std::size_t j : *rows) {
            lsel.push_back(static_cast<std::uint32_t>(i));
            rsel.push_back(static_cast<std::uint32_t>(j));
            if (lsel.size() >= limit) break;
          }
        }
      }
    }

    // The output schema may be narrower than the two inputs (projection
    // pushdown, optimizer pass 4b): gather only the surviving columns.
    // project() shares column storage, so the narrowing itself is free.
    std::vector<std::string> lnames, rnames;
    for (const Column& c : node.schema->columns()) {
      (lhs.schema->has(c.name) ? lnames : rnames).push_back(c.name);
    }
    // Rebind the children's qualified schemas first: a scan probes the bare
    // base table, whose column names are unqualified.  Both rebind and
    // project share column storage — only the gathers below copy.
    const Table lcols =
        left->with_schema(lhs.schema).project(lnames, /*distinct=*/false);
    const Table rcols =
        right->with_schema(rhs.schema).project(rnames, /*distinct=*/false);
    Table out =
        Table::hcat(node.schema, lcols.gather(lsel), rcols.gather(rsel));
    if (ctx.record) {
      node.stats.rows_in += visited;
      node.stats.bytes_touched +=
          scan_bytes(visited, lk.size()) +
          scan_bytes(lsel.size(), lcols.column_count()) +
          scan_bytes(rsel.size(), rcols.column_count()) +
          scan_bytes(out.row_count(), out.column_count());
      if (lhs.is_scan()) lhs.actual_rows = visited;
    }
    if (lhs.is_scan()) CCSQL_COUNT("query.rows_scanned", visited);
    return out;
  }
};

}  // namespace

Table execute(PlanNode& root, const ExecContext& ctx, std::size_t limit) {
  CCSQL_SPAN(span, "plan.execute", "plan");
  Executor ex{ctx};
  Table out = ex.exec(root, limit);
  span.arg("rows", out.row_count());
  return out;
}

Table execute(const PlanNode& root, const ExecContext& ctx,
              std::size_t limit) {
  // With record (and therefore analyze) off, the executor never writes a
  // PlanNode field, so the const_cast is sound and one cached plan can be
  // executed concurrently from any number of threads.
  ExecContext read_only = ctx;
  read_only.record = false;
  read_only.analyze = false;
  return execute(const_cast<PlanNode&>(root), read_only, limit);
}

}  // namespace ccsql::plan
