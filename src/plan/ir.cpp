#include "plan/ir.hpp"

namespace ccsql::plan {
namespace {

std::string join(const std::vector<std::string>& parts,
                 const char* sep = ", ") {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace

PlanPtr make_node(PlanNode::Kind kind) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  return node;
}

std::string_view to_string(PlanNode::Kind kind) noexcept {
  switch (kind) {
    case PlanNode::Kind::kScan:
      return "Scan";
    case PlanNode::Kind::kIndexLookup:
      return "IndexLookup";
    case PlanNode::Kind::kSelect:
      return "Select";
    case PlanNode::Kind::kProject:
      return "Project";
    case PlanNode::Kind::kDistinct:
      return "Distinct";
    case PlanNode::Kind::kCross:
      return "Cross";
    case PlanNode::Kind::kHashJoin:
      return "HashJoin";
    case PlanNode::Kind::kUnion:
      return "Union";
    case PlanNode::Kind::kSort:
      return "Sort";
    case PlanNode::Kind::kLimit:
      return "Limit";
    case PlanNode::Kind::kCount:
      return "Count";
  }
  return "?";
}

std::string PlanNode::label() const {
  std::string out(plan::to_string(kind));
  switch (kind) {
    case Kind::kScan: {
      out += ' ';
      out += table_name.empty() ? "<bound>" : table_name;
      if (!alias.empty()) out += " as " + alias;
      break;
    }
    case Kind::kIndexLookup: {
      out += ' ';
      out += table_name.empty() ? "<bound>" : table_name;
      if (!alias.empty()) out += " as " + alias;
      out += " (";
      for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += columns[i];
        out += " = \"";
        out += key_values[i].str();
        out += '"';
      }
      out += ')';
      break;
    }
    case Kind::kSelect:
      if (predicate) out += " (" + predicate->to_string() + ")";
      break;
    case Kind::kProject:
      out += " [" + join(columns) + "]";
      if (distinct) out += " distinct";
      break;
    case Kind::kHashJoin: {
      out += " (";
      for (std::size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += " and ";
        out += left_keys[i] + " = " + right_keys[i];
      }
      out += ')';
      break;
    }
    case Kind::kSort:
      out += " [" + join(order_by) + "]";
      break;
    case Kind::kLimit:
      out += ' ';
      out += limit == kNoLimit ? "none" : std::to_string(limit);
      break;
    case Kind::kCount:
      out += "(*)";
      break;
    case Kind::kDistinct:
    case Kind::kCross:
    case Kind::kUnion:
      break;
  }
  return out;
}

PlanPtr clone_plan(const PlanNode& root) {
  auto out = std::make_unique<PlanNode>();
  out->kind = root.kind;
  out->schema = root.schema;
  out->table_name = root.table_name;
  out->bound = root.bound;
  out->alias = root.alias;
  out->predicate = root.predicate;
  out->compiled = root.compiled;
  out->columns = root.columns;
  out->distinct = root.distinct;
  out->key_values = root.key_values;
  out->left_keys = root.left_keys;
  out->right_keys = root.right_keys;
  out->order_by = root.order_by;
  out->limit = root.limit;
  out->est_rows = root.est_rows;
  // Runtime state (actual_rows, stats) deliberately left at the fresh
  // defaults: the clone has not been executed.
  out->children.reserve(root.children.size());
  for (const PlanPtr& c : root.children) {
    out->children.push_back(clone_plan(*c));
  }
  return out;
}

SchemaPtr scan_schema(const Schema& base, const std::string& alias) {
  if (alias.empty()) {
    return std::make_shared<const Schema>(base);
  }
  std::vector<Column> cols;
  cols.reserve(base.size());
  for (const Column& c : base.columns()) {
    cols.push_back(Column{alias + "." + c.name, c.kind});
  }
  return make_schema(std::move(cols));
}

}  // namespace ccsql::plan
