#include "plan/ir.hpp"

namespace ccsql::plan {
namespace {

std::string join(const std::vector<std::string>& parts,
                 const char* sep = ", ") {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace

PlanPtr make_node(PlanNode::Kind kind) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  return node;
}

std::string_view to_string(PlanNode::Kind kind) noexcept {
  switch (kind) {
    case PlanNode::Kind::kScan:
      return "Scan";
    case PlanNode::Kind::kIndexLookup:
      return "IndexLookup";
    case PlanNode::Kind::kSelect:
      return "Select";
    case PlanNode::Kind::kProject:
      return "Project";
    case PlanNode::Kind::kDistinct:
      return "Distinct";
    case PlanNode::Kind::kCross:
      return "Cross";
    case PlanNode::Kind::kHashJoin:
      return "HashJoin";
    case PlanNode::Kind::kUnion:
      return "Union";
    case PlanNode::Kind::kSort:
      return "Sort";
    case PlanNode::Kind::kLimit:
      return "Limit";
    case PlanNode::Kind::kCount:
      return "Count";
  }
  return "?";
}

std::string PlanNode::label() const {
  std::string out(plan::to_string(kind));
  switch (kind) {
    case Kind::kScan: {
      out += ' ';
      out += table_name.empty() ? "<bound>" : table_name;
      if (!alias.empty()) out += " as " + alias;
      break;
    }
    case Kind::kIndexLookup: {
      out += ' ';
      out += table_name.empty() ? "<bound>" : table_name;
      if (!alias.empty()) out += " as " + alias;
      out += " (";
      for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += columns[i];
        out += " = \"";
        out += key_values[i].str();
        out += '"';
      }
      out += ')';
      break;
    }
    case Kind::kSelect:
      if (predicate) out += " (" + predicate->to_string() + ")";
      break;
    case Kind::kProject:
      out += " [" + join(columns) + "]";
      if (distinct) out += " distinct";
      break;
    case Kind::kHashJoin: {
      out += " (";
      for (std::size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += " and ";
        out += left_keys[i] + " = " + right_keys[i];
      }
      out += ')';
      break;
    }
    case Kind::kSort:
      out += " [" + join(order_by) + "]";
      break;
    case Kind::kLimit:
      out += ' ';
      out += limit == kNoLimit ? "none" : std::to_string(limit);
      break;
    case Kind::kCount:
      out += "(*)";
      break;
    case Kind::kDistinct:
    case Kind::kCross:
    case Kind::kUnion:
      break;
  }
  return out;
}

SchemaPtr scan_schema(const Schema& base, const std::string& alias) {
  if (alias.empty()) {
    return std::make_shared<const Schema>(base);
  }
  std::vector<Column> cols;
  cols.reserve(base.size());
  for (const Column& c : base.columns()) {
    cols.push_back(Column{alias + "." + c.name, c.kind});
  }
  return make_schema(std::move(cols));
}

}  // namespace ccsql::plan
