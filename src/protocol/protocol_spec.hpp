#pragma once

#include <memory>
#include <string>
#include <vector>

#include "protocol/channel_assignment.hpp"
#include "protocol/controller_spec.hpp"
#include "protocol/message.hpp"
#include "relational/database.hpp"

namespace ccsql {

/// A protocol property written as SQL that must evaluate to the empty set
/// over the controller tables (paper, section 4.3).
struct NamedInvariant {
  std::string name;
  std::string description;
  std::string sql;  // parse_invariant() syntax
};

/// The complete database input for a protocol (paper: "table schema + SQL
/// constraints + static checks"): the message vocabulary, one ControllerSpec
/// per controller, the invariant suite, and one or more candidate virtual
/// channel assignments.
///
/// ProtocolSpec owns the FunctionRegistry wired to its message catalog, so
/// it is non-copyable; pass by reference or unique_ptr.
class ProtocolSpec {
 public:
  explicit ProtocolSpec(std::string name);
  ProtocolSpec(const ProtocolSpec&) = delete;
  ProtocolSpec& operator=(const ProtocolSpec&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] MessageCatalog& messages() noexcept { return messages_; }
  [[nodiscard]] const MessageCatalog& messages() const noexcept {
    return messages_;
  }

  /// Adds a controller and returns a reference for further configuration.
  ControllerSpec& add_controller(std::string name);

  [[nodiscard]] const std::vector<std::unique_ptr<ControllerSpec>>&
  controllers() const noexcept {
    return controllers_;
  }
  [[nodiscard]] const ControllerSpec& controller(std::string_view name) const;

  void add_invariant(NamedInvariant inv);
  [[nodiscard]] const std::vector<NamedInvariant>& invariants()
      const noexcept {
    return invariants_;
  }

  ChannelAssignment& add_assignment(std::string name);
  [[nodiscard]] const ChannelAssignment& assignment(
      std::string_view name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<ChannelAssignment>>&
  assignments() const noexcept {
    return assignments_;
  }

  /// The registry holding isrequest/isresponse plus any protocol-specific
  /// predicates.  Call install_functions() after the message catalog is
  /// final and before generating tables.
  [[nodiscard]] FunctionRegistry& functions() noexcept { return functions_; }
  void install_functions();

  /// Generates every controller table (cached) and returns a query session
  /// over a catalog with one table per controller (named by the controller),
  /// plus the message catalog under "Messages".  The catalog's function
  /// registry mirrors this spec's.  The session carries the process-default
  /// planner/jobs settings; callers needing different ones copy the
  /// Database (cheap relative to generation) and override.
  [[nodiscard]] const Database& database() const;

  /// Forces regeneration on next database() call.
  void invalidate();

 private:
  std::string name_;
  MessageCatalog messages_;
  std::vector<std::unique_ptr<ControllerSpec>> controllers_;
  std::vector<NamedInvariant> invariants_;
  std::vector<std::unique_ptr<ChannelAssignment>> assignments_;
  // Mutable: database() lazily (re)installs the message predicates.
  mutable FunctionRegistry functions_;
  mutable bool built_ = false;
  mutable Database db_;
};

}  // namespace ccsql
