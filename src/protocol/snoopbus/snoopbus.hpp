#pragma once

#include <memory>

#include "protocol/protocol_spec.hpp"

namespace ccsql::snoopbus {

/// A second, independent protocol built with the same machinery — the
/// paper's generality claim ("the approach can be easily applied to other
/// cache coherence protocols such as those described in [2, 10]").  This is
/// a miniature split-transaction snooping-bus MSI protocol in the style of
/// Sorin et al. [10]: requesters broadcast GetS / GetM / PutM on an ordered
/// request bus; the owner (a modified cache or memory) answers on a data
/// network; writebacks are acknowledged by memory.
///
/// Controllers:
///   SC   the snooping cache controller (requester and snooper roles)
///   MC   the memory controller (owner of last resort)
///   ARB  the bus arbiter / order point
///
/// Channel assignments:
///   shared  data responses share the request bus — cyclic (a request
///           cannot be drained while the data it waits for is behind it)
///   split   dedicated data network — deadlock-free
inline constexpr const char* kCache = "SC";
inline constexpr const char* kMemory = "MC";
inline constexpr const char* kArbiter = "ARB";

inline constexpr const char* kAssignShared = "shared";
inline constexpr const char* kAssignSplit = "split";

std::unique_ptr<ProtocolSpec> make_snoopbus();

}  // namespace ccsql::snoopbus
