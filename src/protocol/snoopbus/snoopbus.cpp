#include "protocol/snoopbus/snoopbus.hpp"

namespace ccsql::snoopbus {
namespace {

// The snooping cache controller: MSI states driven by processor accesses
// and by the totally-ordered request bus.  Every cache sees every bus
// request (its own included — self-snoops confirm order); the owner of a
// modified line sources data, memory sources it otherwise.
void add_cache(ProtocolSpec& p) {
  auto& c = p.add_controller(kCache);

  c.add_input("inmsg", {"ld", "st", "evict", "GetS", "GetM", "PutM",
                        "DataMem", "DataOwner", "WbAck"});
  c.add_input("inmsgsrc", {"local", "remote", "home"});
  c.add_input("inmsgdest", {"local", "remote"});
  // own: the bus request being snooped is this cache's own (self-snoop).
  c.add_input("own", {"yes", "no", "na"});
  c.add_input("cst", {"M", "S", "I", "ISd", "IMd", "MIa"});

  c.add_output("busmsg", {"NULL", "GetS", "GetM", "PutM"});
  c.add_output("busmsgsrc", {"NULL", "local"});
  c.add_output("busmsgdest", {"NULL", "home"});
  c.add_output("datamsg", {"NULL", "DataOwner"});
  c.add_output("datamsgsrc", {"NULL", "remote"});
  c.add_output("datamsgdest", {"NULL", "home"});
  c.add_output("nxtcst", {"NULL", "M", "S", "I", "ISd", "IMd", "MIa"});

  // Processor ops are local; snooped bus requests arrive at the remote
  // role (the bus delivers them to everyone); data/acks come from home.
  c.constrain("inmsgsrc",
              "inmsg in (ld, st, evict) ? inmsgsrc = local : "
              "(inmsg in (GetS, GetM, PutM) ? inmsgsrc = remote : "
              "inmsgsrc = home)");
  c.constrain("inmsgdest",
              "inmsg in (ld, st, evict) ? inmsgdest = local : "
              "(inmsg in (GetS, GetM, PutM) ? inmsgdest = remote : "
              "inmsgdest = local)");
  // Self-snoop marking applies to bus requests only.
  c.constrain("own",
              "inmsg in (GetS, GetM, PutM) ? own in (yes, no) : own = na");

  // Input legality: processor ops only in stable states (one outstanding
  // request per line); data fills only in the transient -d states;
  // writeback acks only while awaiting one.
  c.constrain(
      "cst",
      "inmsg in (ld, st) ? cst in (M, S, I) : "
      "(inmsg = evict ? cst = M : "
      "(inmsg in (DataMem, DataOwner) ? cst in (ISd, IMd) : "
      "(inmsg = WbAck ? cst = MIa : "
      "(inmsg = PutM and own = yes ? cst = MIa : "
      "(inmsg = GetS and own = yes ? cst = ISd : "
      "(inmsg = GetM and own = yes ? cst in (IMd, M) : true))))))");

  // Bus requests issued by processor misses and evictions.
  c.constrain("busmsg",
              "inmsg = ld and cst = I ? busmsg = GetS : "
              "(inmsg = st and cst in (S, I) ? busmsg = GetM : "
              "(inmsg = evict ? busmsg = PutM : busmsg = NULL))");
  c.constrain("busmsgsrc",
              "busmsg = NULL ? busmsgsrc = NULL : busmsgsrc = local");
  c.constrain("busmsgdest",
              "busmsg = NULL ? busmsgdest = NULL : busmsgdest = home");

  // Owner data: a modified snooper answers GetS / GetM from another cache.
  c.constrain("datamsg",
              "inmsg in (GetS, GetM) and own = no and cst = M ? "
              "datamsg = DataOwner : datamsg = NULL");
  c.constrain("datamsgsrc",
              "datamsg = NULL ? datamsgsrc = NULL : datamsgsrc = remote");
  c.constrain("datamsgdest",
              "datamsg = NULL ? datamsgdest = NULL : datamsgdest = home");

  c.constrain(
      "nxtcst",
      "inmsg = ld and cst = I ? nxtcst = ISd : "
      "(inmsg = st and cst in (S, I) ? nxtcst = IMd : "
      "(inmsg = st and cst = M ? nxtcst = NULL : "
      "(inmsg = evict ? nxtcst = MIa : "
      "(inmsg in (DataMem, DataOwner) ? "
      "(cst = ISd ? nxtcst = S : nxtcst = M) : "
      "(inmsg = WbAck ? nxtcst = I : "
      "(inmsg = GetS and own = no and cst = M ? nxtcst = S : "
      "(inmsg = GetM and own = no and cst in (M, S) ? nxtcst = I : "
      "nxtcst = NULL)))))))");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"busmsg", "busmsgsrc", "busmsgdest", false});
  c.add_message_triple({"datamsg", "datamsgsrc", "datamsgdest", false});
}

// The memory controller: sources data for requests no owner answers, and
// acknowledges writebacks.  `owned` is the snoop result line (some cache
// asserted ownership on the bus).
void add_memory(ProtocolSpec& p) {
  auto& c = p.add_controller(kMemory);

  c.add_input("inmsg", {"GetS", "GetM", "PutM", "DataOwner"});
  c.add_input("inmsgsrc", {"remote", "home"});
  c.add_input("inmsgdest", {"home"});
  c.add_input("owned", {"yes", "no", "na"});

  c.add_output("outmsg", {"NULL", "DataMem", "WbAck"});
  c.add_output("outmsgsrc", {"NULL", "home"});
  c.add_output("outmsgdest", {"NULL", "local"});
  c.add_output("memop", {"NULL", "rd", "wr"});

  c.constrain("inmsgsrc",
              "inmsg = DataOwner ? inmsgsrc = home : inmsgsrc = remote");
  c.constrain("owned",
              "inmsg in (GetS, GetM) ? owned in (yes, no) : owned = na");

  c.constrain("outmsg",
              "inmsg in (GetS, GetM) and owned = no ? outmsg = DataMem : "
              "(inmsg = PutM ? outmsg = WbAck : outmsg = NULL)");
  c.constrain("outmsgsrc",
              "outmsg = NULL ? outmsgsrc = NULL : outmsgsrc = home");
  c.constrain("outmsgdest",
              "outmsg = NULL ? outmsgdest = NULL : outmsgdest = local");
  c.constrain("memop",
              "inmsg in (PutM, DataOwner) ? memop = wr : "
              "(owned = no ? memop = rd : memop = NULL)");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"outmsg", "outmsgsrc", "outmsgdest", false});
}

// The arbiter / order point: accepts a bus request from a requester and
// broadcasts it (role-level: one remote delivery represents the snoop
// broadcast, one home delivery reaches memory).
void add_arbiter(ProtocolSpec& p) {
  auto& c = p.add_controller(kArbiter);

  c.add_input("inmsg", {"GetS", "GetM", "PutM"});
  c.add_input("inmsgsrc", {"local"});
  c.add_input("inmsgdest", {"home"});

  c.add_output("snoopmsg", {"GetS", "GetM", "PutM"});
  c.add_output("snoopmsgsrc", {"home"});
  c.add_output("snoopmsgdest", {"remote"});
  c.add_output("memmsg", {"GetS", "GetM", "PutM"});
  c.add_output("memmsgsrc", {"remote"});
  c.add_output("memmsgdest", {"home"});

  c.constrain("snoopmsg", "snoopmsg = inmsg");
  c.constrain("memmsg", "memmsg = inmsg");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"snoopmsg", "snoopmsgsrc", "snoopmsgdest", false});
  c.add_message_triple({"memmsg", "memmsgsrc", "memmsgdest", false});
}

}  // namespace

std::unique_ptr<ProtocolSpec> make_snoopbus() {
  auto p = std::make_unique<ProtocolSpec>("SNOOPBUS");
  auto& m = p->messages();
  const auto req = MessageClass::kRequest;
  const auto rsp = MessageClass::kResponse;
  m.add("ld", req, "processor load");
  m.add("st", req, "processor store");
  m.add("evict", req, "processor replaces a modified line");
  m.add("GetS", req, "bus read-shared");
  m.add("GetM", req, "bus read-modified");
  m.add("PutM", req, "bus writeback of a modified line");
  m.add("DataMem", rsp, "data sourced by memory");
  m.add("DataOwner", rsp, "data sourced by the owning cache");
  m.add("WbAck", rsp, "writeback acknowledged by memory");
  p->install_functions();

  add_cache(*p);
  add_memory(*p);
  add_arbiter(*p);

  // Invariants in the paper's style.
  p->add_invariant(
      {"sb-single-writer",
       "a store hit is only silent in M; stores elsewhere go to the bus",
       "[select inmsg, cst, busmsg from SC where inmsg = st and "
       "not cst = \"M\" and not busmsg = GetM] = empty"});
  p->add_invariant(
      {"sb-owner-answers",
       "a modified snooper sources data for every foreign request",
       "[select inmsg, cst, datamsg from SC where inmsg in (GetS, GetM) "
       "and own = no and cst = \"M\" and not datamsg = DataOwner] = empty"});
  p->add_invariant(
      {"sb-getm-invalidates",
       "a foreign GetM invalidates every valid copy",
       "[select inmsg, cst, nxtcst from SC where inmsg = GetM and "
       "own = no and cst in (\"M\", \"S\") and not nxtcst = \"I\"] = empty"});
  p->add_invariant(
      {"sb-memory-backstop",
       "memory sources data exactly when no owner does",
       "[select inmsg, owned, outmsg from MC where inmsg in (GetS, GetM) "
       "and owned = no and not outmsg = DataMem] = empty and "
       "[select inmsg, owned, outmsg from MC where inmsg in (GetS, GetM) "
       "and owned = yes and not outmsg = NULL] = empty"});
  p->add_invariant(
      {"sb-writeback-acked",
       "every writeback is written and acknowledged",
       "[select inmsg, outmsg, memop from MC where inmsg = PutM and "
       "(not outmsg = WbAck or not memop = wr)] = empty"});
  p->add_invariant(
      {"sb-self-snoop-transients",
       "a self-snooped request moves the line to the matching transient",
       "[select inmsg, own, cst, nxtcst from SC where inmsg = GetS and "
       "own = yes and not nxtcst = NULL] = empty"});
  p->add_invariant(
      {"sb-fills-complete",
       "a data response installs the requested stable state",
       "[select inmsg, cst, nxtcst from SC where inmsg in (DataMem, "
       "DataOwner) and cst = \"ISd\" and not nxtcst = \"S\"] = empty and "
       "[select inmsg, cst, nxtcst from SC where inmsg in (DataMem, "
       "DataOwner) and cst = \"IMd\" and not nxtcst = \"M\"] = empty"});
  p->add_invariant(
      {"sb-arbiter-broadcasts",
       "the arbiter forwards each request unchanged to snoopers and memory",
       "[select inmsg, snoopmsg, memmsg from ARB where "
       "not snoopmsg = inmsg or not memmsg = inmsg] = empty"});

  // Channel assignments: the broken one funnels data responses through the
  // same channel class as the snoop broadcast, so a snooper that must
  // source data depends on the channel its own pending fill occupies.
  {
    auto& v = p->add_assignment(kAssignShared);
    for (const char* msg : {"GetS", "GetM", "PutM"}) {
      v.assign(msg, "local", "home", "BUSREQ");
      v.assign(msg, "home", "remote", "BUSSNOOP");
      v.assign(msg, "remote", "home", "BUSSNOOP");
    }
    for (const char* msg : {"DataMem", "WbAck"}) {
      v.assign(msg, "home", "local", "BUSSNOOP");
    }
    v.assign("DataOwner", "remote", "home", "BUSSNOOP");
  }
  {
    auto& v = p->add_assignment(kAssignSplit);
    for (const char* msg : {"GetS", "GetM", "PutM"}) {
      v.assign(msg, "local", "home", "BUSREQ");
      v.assign(msg, "home", "remote", "BUSSNOOP");
      v.assign(msg, "remote", "home", "MEMREQ");
    }
    for (const char* msg : {"DataMem", "WbAck"}) {
      v.assign(msg, "home", "local", "DATA");
    }
    v.assign("DataOwner", "remote", "home", "DATA");
  }
  return p;
}

}  // namespace ccsql::snoopbus
