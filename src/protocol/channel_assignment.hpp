#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/table.hpp"
#include "relational/value.hpp"

namespace ccsql {

/// The virtual-channel assignment table V of the paper (section 4.1): for
/// each (message, source-role, destination-role) triple, the virtual channel
/// the message travels on.  Messages deliberately left unassigned model
/// dedicated hardware paths — they occupy no virtual channel and therefore
/// contribute no channel dependencies (this is exactly the paper's fix for
/// the Figure 4 deadlock).
class ChannelAssignment {
 public:
  ChannelAssignment() = default;
  explicit ChannelAssignment(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Assigns (msg, src, dst) -> vc.  Re-assigning a triple replaces the
  /// previous channel (the paper's iterative re-assignment workflow).
  void assign(std::string_view msg, std::string_view src,
              std::string_view dst, std::string_view vc);

  /// Removes a triple, modelling a dedicated (non-virtual-channel) path.
  void unassign(std::string_view msg, std::string_view src,
                std::string_view dst);

  /// The channel for a triple, or nullopt for dedicated paths / unknown
  /// messages.
  [[nodiscard]] std::optional<Value> vc_for(Value msg, Value src,
                                            Value dst) const;

  /// Distinct channels, in first-assignment order.
  [[nodiscard]] std::vector<Value> channels() const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Renders V as a database table with columns m, s, d, v.
  [[nodiscard]] Table to_table() const;

 private:
  struct Key {
    Value m, s, d;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = std::hash<Value>{}(k.m);
      h = h * 1000003u ^ std::hash<Value>{}(k.s);
      h = h * 1000003u ^ std::hash<Value>{}(k.d);
      return h;
    }
  };

  std::string name_;
  std::vector<std::pair<Key, Value>> entries_;  // insertion order
  std::unordered_map<Key, std::size_t, KeyHash> index_;
};

}  // namespace ccsql
