#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {

// The home memory controller M: serves directory-issued memory reads and
// writes, and writebacks forwarded verbatim by D (Figure 4's R1 row:
// processing wb produces a compl response on the home->home response
// channel).  mupd is a posted update and produces no response.
void add_memory(ProtocolSpec& p) {
  auto& c = p.add_controller(kMemory);

  c.add_input("inmsg", {"mread", "mwrite", "mupd", "mrmw", "wb"});
  c.add_input("inmsgsrc", {"home"});
  c.add_input("inmsgdest", {"home"});
  c.add_input("inmsgres", {"reqq"});

  c.add_output("memop", {"rd", "wr"});
  c.add_output("outmsg", {"NULL", "data", "mdone", "compl"});
  c.add_output("outmsgsrc", {"NULL", "home"});
  c.add_output("outmsgdest", {"NULL", "home"});
  c.add_output("outmsgres", {"NULL", "respq"});
  c.add_output("mcmpl", {"done"});

  c.constrain("inmsgres", "inmsgres = reqq");
  c.constrain("memop", "inmsg = mread ? memop = rd : memop = wr");
  c.constrain("outmsg",
              "inmsg = mread ? outmsg = data : "
              "(inmsg in (mwrite, mrmw) ? outmsg = mdone : "
              "(inmsg = wb ? outmsg = compl : outmsg = NULL))");
  c.constrain("outmsgsrc",
              "outmsg = NULL ? outmsgsrc = NULL : outmsgsrc = home");
  c.constrain("outmsgdest",
              "outmsg = NULL ? outmsgdest = NULL : outmsgdest = home");
  c.constrain("outmsgres",
              "outmsg = NULL ? outmsgres = NULL : outmsgres = respq");
  c.constrain("mcmpl", "mcmpl = done");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"outmsg", "outmsgsrc", "outmsgdest", false});
}

}  // namespace ccsql::asura::detail
