#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {

// The remote snoop engine RSN at the remote quad's protocol engine: accepts
// snoop requests from the home directory, drives the local caches of its
// quad with cache-level commands, and returns the aggregate response to
// home.  Home serializes snoops per line, so at most one snoop is in flight
// here.
void add_remote_snoop(ProtocolSpec& p) {
  auto& c = p.add_controller(kRemoteSnoop);

  c.add_input("inmsg", {"sinv", "sfetch", "sflush", "cack", "cdata",
                        "cwbdata"});
  c.add_input("inmsgsrc", {"home", "remote"});
  c.add_input("inmsgdest", {"remote"});
  c.add_input("rsnst", {"idle", "w-inv", "w-fetch", "w-flush"});

  c.add_output("cmdmsg", {"NULL", "cinv", "cfetch", "cflush"});
  c.add_output("cmdmsgsrc", {"NULL", "remote"});
  c.add_output("cmdmsgdest", {"NULL", "remote"});
  c.add_output("homemsg", {"NULL", "idone", "rdata", "fdone"});
  c.add_output("homemsgsrc", {"NULL", "remote"});
  c.add_output("homemsgdest", {"NULL", "home"});
  c.add_output("nxtrsnst", {"idle", "w-inv", "w-fetch", "w-flush"});

  c.constrain("inmsgsrc",
              "inmsg in (sinv, sfetch, sflush) ? inmsgsrc = home : "
              "inmsgsrc = remote");
  c.constrain("inmsgdest", "inmsgdest = remote");
  c.constrain("rsnst",
              "inmsg in (sinv, sfetch, sflush) ? rsnst = idle : "
              "(inmsg = cack ? rsnst = w-inv : "
              "(inmsg = cdata ? rsnst = w-fetch : rsnst = w-flush))");

  c.constrain("cmdmsg",
              "inmsg = sinv ? cmdmsg = cinv : "
              "(inmsg = sfetch ? cmdmsg = cfetch : "
              "(inmsg = sflush ? cmdmsg = cflush : cmdmsg = NULL))");
  c.constrain("cmdmsgsrc",
              "cmdmsg = NULL ? cmdmsgsrc = NULL : cmdmsgsrc = remote");
  c.constrain("cmdmsgdest",
              "cmdmsg = NULL ? cmdmsgdest = NULL : cmdmsgdest = remote");

  c.constrain("homemsg",
              "inmsg = cack ? homemsg = idone : "
              "(inmsg = cdata ? homemsg = rdata : "
              "(inmsg = cwbdata ? homemsg = fdone : homemsg = NULL))");
  c.constrain("homemsgsrc",
              "homemsg = NULL ? homemsgsrc = NULL : homemsgsrc = remote");
  c.constrain("homemsgdest",
              "homemsg = NULL ? homemsgdest = NULL : homemsgdest = home");

  c.constrain("nxtrsnst",
              "inmsg = sinv ? nxtrsnst = w-inv : "
              "(inmsg = sfetch ? nxtrsnst = w-fetch : "
              "(inmsg = sflush ? nxtrsnst = w-flush : nxtrsnst = idle))");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"cmdmsg", "cmdmsgsrc", "cmdmsgdest", false});
  c.add_message_triple({"homemsg", "homemsgsrc", "homemsgdest", false});
}

}  // namespace ccsql::asura::detail
