#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {

// The cache controller CC: the MESI state machine proper.  A cache serves
// two roles: at the local node it answers processor accesses and performs
// fills/invalidations commanded by the node controller; at a remote node it
// executes snoop commands (cinv/cfetch/cflush) forwarded by the remote
// snoop engine and produces cache-level responses.
void add_cache(ProtocolSpec& p) {
  auto& c = p.add_controller(kCache);

  c.add_input("inmsg", {"prd", "pwr", "pfill", "pfillx", "pinv", "cinv",
                        "cfetch", "cflush"});
  c.add_input("inmsgsrc", {"local", "remote"});
  c.add_input("inmsgdest", {"local", "remote"});
  c.add_input("cst", {"M", "E", "S", "I"});

  c.add_output("outmsg", {"NULL", "hit", "miss", "cack", "cdata", "cwbdata"});
  c.add_output("outmsgsrc", {"NULL", "local", "remote"});
  c.add_output("outmsgdest", {"NULL", "local", "remote"});
  c.add_output("nxtcst", {"NULL", "M", "E", "S", "I"});

  // Role consistency: processor ops and NC commands are local-to-local;
  // snoop commands arrive at the remote role.
  c.constrain("inmsgsrc",
              "inmsg in (cinv, cfetch, cflush) ? inmsgsrc = remote : "
              "inmsgsrc = local");
  c.constrain("inmsgdest",
              "inmsg in (cinv, cfetch, cflush) ? inmsgdest = remote : "
              "inmsgdest = local");

  // Input legality per MESI state.  Fills only into an invalid frame.  A
  // cinv can find the line already invalid (the Figure 4 race: the remote
  // node wrote the line back before the invalidation arrived) or still
  // owned (readex at MESI invalidates the owner; the dirty data is written
  // through to home memory as part of the invalidation).  cfetch / cflush
  // tolerate I but never target a merely-shared copy.
  // pfillx is also the upgrade-completion fill: it installs M into an
  // invalid frame (read-exclusive) or a shared frame (upgrade).
  c.constrain("cst",
              "inmsg = pfill ? cst = I : "
              "(inmsg = pfillx ? cst in (I, S) : "
              "(inmsg = cinv ? cst in (I, S, M) : "
              "(inmsg in (cfetch, cflush) ? cst in (I, E, M) : true)))");

  c.constrain(
      "outmsg",
      "inmsg = prd ? (cst = I ? outmsg = miss : outmsg = hit) : "
      "(inmsg = pwr ? (cst in (I, S) ? outmsg = miss : outmsg = hit) : "
      "(inmsg = cinv ? outmsg = cack : "
      "(inmsg = cfetch ? outmsg = cdata : "
      "(inmsg = cflush ? outmsg = cwbdata : outmsg = NULL))))");
  c.constrain("outmsgsrc",
              "outmsg = NULL ? outmsgsrc = NULL : outmsgsrc = inmsgdest");
  c.constrain("outmsgdest",
              "outmsg = NULL ? outmsgdest = NULL : outmsgdest = inmsgsrc");

  c.constrain(
      "nxtcst",
      "inmsg = pfill ? nxtcst = S : "
      "(inmsg = pfillx ? nxtcst = M : "
      "(inmsg in (pinv, cinv, cflush) ? nxtcst = I : "
      "(inmsg = cfetch ? (cst = I ? nxtcst = NULL : nxtcst = S) : "
      "(inmsg = pwr and cst = E ? nxtcst = M : nxtcst = NULL))))");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"outmsg", "outmsgsrc", "outmsgdest", false});
}

}  // namespace ccsql::asura::detail
