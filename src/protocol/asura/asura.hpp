#pragma once

#include <memory>

#include "protocol/protocol_spec.hpp"

namespace ccsql::asura {

/// Controller names used in the ASURA reconstruction.  The paper's system
/// maintains 8 controller database tables; these are ours:
///
///   D    directory controller at home (the paper's detailed example; 30
///        columns, busy-directory columns included)
///   M    home memory controller
///   NC   node controller at the local node (processor <-> network ops)
///   CC   cache controller (local role for processor ops and fills, remote
///        role for snoop handling)
///   RSN  remote snoop engine at the remote quad's protocol engine
///   RAC  remote access cache controller at the local quad's protocol engine
///   IOC  I/O controller at the local node
///   INT  interrupt controller at the local node
inline constexpr const char* kDirectory = "D";
inline constexpr const char* kMemory = "M";
inline constexpr const char* kNode = "NC";
inline constexpr const char* kCache = "CC";
inline constexpr const char* kRemoteSnoop = "RSN";
inline constexpr const char* kRac = "RAC";
inline constexpr const char* kIo = "IOC";
inline constexpr const char* kInterrupt = "INT";

/// Names of the channel assignments built by make_asura():
///
///   V4    the initial assignment with channels VC0..VC3 only (directory ->
///         memory requests share VC0 with local->home requests); yields
///         many cycles, mirroring the paper's first iteration
///   V5    VC4 added for home-directory -> home-memory requests; yields the
///         Figure 4 deadlock (VC2/VC4 cycle)
///   V5fix the shipped fix: mread moves to a dedicated hardware path (no
///         virtual channel), breaking the cycle
inline constexpr const char* kAssignV4 = "V4";
inline constexpr const char* kAssignV5 = "V5";
inline constexpr const char* kAssignV5Fix = "V5fix";

/// Builds the full ASURA protocol reconstruction: message catalog, the 8
/// controller specs with their column constraints, the invariant suite, and
/// the three channel assignments.  Generate tables via spec->database().
std::unique_ptr<ProtocolSpec> make_asura();

/// The busy states of the directory controller (subset of the bdirst
/// domain).  Exposed for tests and the simulator.
const std::vector<std::string>& busy_states();

/// Messages legitimately consumed outside the controller tables (delivered
/// to processors or devices); used as the sink list for spec linting.
const std::vector<std::string>& processor_sinks();

}  // namespace ccsql::asura
