#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {

// The interrupt controller INT at the local node: dispatches processor
// interrupts as intr transactions to home (where the directory controller
// acknowledges them) and also carries the protocol's special
// state-communication transactions (sstate / astate).
void add_interrupt(ProtocolSpec& p) {
  auto& c = p.add_controller(kInterrupt);

  c.add_input("inmsg", {"pint", "intack", "sstate", "astate", "retry"});
  c.add_input("inmsgsrc", {"local", "home", "remote"});
  c.add_input("inmsgdest", {"local"});
  c.add_input("intst", {"idle", "w-int", "w-st"});

  c.add_output("outmsg", {"NULL", "intr", "astate"});
  c.add_output("outmsgsrc", {"NULL", "local"});
  c.add_output("outmsgdest", {"NULL", "home", "remote"});
  c.add_output("procmsg", {"NULL", "pdone"});
  c.add_output("nxtintst", {"NULL", "idle", "w-int", "w-st"});

  // pint / intack / retry are local-node traffic (responses arrive via the
  // RAC); sstate is a role-level state-communication message from remote.
  c.constrain("inmsgsrc",
              "inmsg = sstate ? inmsgsrc = remote : inmsgsrc = local");
  c.constrain("inmsgdest", "inmsgdest = local");
  c.constrain("intst",
              "inmsg in (pint, sstate) ? intst = idle : "
              "(inmsg = intack ? intst = w-int : "
              "(inmsg = astate ? intst = w-st : intst = w-int))");

  c.constrain("outmsg",
              "inmsg = pint ? outmsg = intr : "
              "(inmsg = sstate ? outmsg = astate : "
              "(inmsg = retry ? outmsg = intr : outmsg = NULL))");
  c.constrain("outmsgsrc",
              "outmsg = NULL ? outmsgsrc = NULL : outmsgsrc = local");
  c.constrain("outmsgdest",
              "outmsg = NULL ? outmsgdest = NULL : "
              "(outmsg = astate ? outmsgdest = remote : outmsgdest = home)");

  c.constrain("procmsg",
              "inmsg = intack ? procmsg = pdone : procmsg = NULL");

  c.constrain("nxtintst",
              "inmsg = pint ? nxtintst = w-int : "
              "(inmsg = sstate ? nxtintst = NULL : "
              "(inmsg = retry ? nxtintst = NULL : nxtintst = idle))");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"outmsg", "outmsgsrc", "outmsgdest", false});
}

}  // namespace ccsql::asura::detail
