#include "protocol/asura/asura.hpp"

#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura {

std::unique_ptr<ProtocolSpec> make_asura() {
  auto p = std::make_unique<ProtocolSpec>("ASURA");
  detail::add_messages(*p);
  p->install_functions();
  detail::add_directory(*p);
  detail::add_memory(*p);
  detail::add_node(*p);
  detail::add_cache(*p);
  detail::add_remote_snoop(*p);
  detail::add_rac(*p);
  detail::add_io(*p);
  detail::add_interrupt(*p);
  detail::add_channels(*p);
  detail::add_invariants(*p);
  return p;
}

const std::vector<std::string>& busy_states() {
  // s = snoop-invalidation acks pending, d = memory data pending,
  // r = remote (owner) data pending, f = flush data pending,
  // m = memory acknowledgement pending, si = owner invalidation pending
  // before the memory read is issued (the Figure 4 path: the mread is sent
  // only when the idone is processed), g = grant sent, requester's
  // acknowledgement (gdone) pending.
  // Upgrades share the rx states: with the coarse presence-vector encoding
  // (zero/one/gone) the directory cannot tell whether the requester still
  // holds its shared copy, so every upgrade is handled exactly like a
  // read-exclusive (invalidate all holders, deliver data with the grant).
  // Coherent I/O writes and atomics mirror the writeback/invalidate
  // structure with their own transaction prefixes (iow-*, at-*).
  static const std::vector<std::string> kStates = {
      "Busy-rd-d",  "Busy-rd-r",  "Busy-rd-g",   "Busy-rx-d",
      "Busy-rx-sd", "Busy-rx-s",  "Busy-rx-si",  "Busy-rx-g",
      "Busy-wb-m",  "Busy-fl-s",  "Busy-fl-f",   "Busy-fl-m",
      "Busy-ior-d", "Busy-ior-e", "Busy-ior-r",  "Busy-iow-m",
      "Busy-iow-s", "Busy-iow-si", "Busy-at-m",  "Busy-at-s",
      "Busy-at-si"};
  return kStates;
}

const std::vector<std::string>& processor_sinks() {
  static const std::vector<std::string> kSinks = {
      "pdata", "pdone", "devdata", "devdone", "hit", "miss", "astate"};
  return kSinks;
}

}  // namespace ccsql::asura
