#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {

// The remote access cache controller RAC at the local quad's protocol
// engine: allocates an entry per outstanding remote transaction, forwards
// requests to home and responses back to the node controller, retries
// requests immediately when the RAC is full, and enforces one outstanding
// transaction per line.
void add_rac(ProtocolSpec& p) {
  auto& c = p.add_controller(kRac);

  c.add_input("inmsg", {"read", "readex", "upgr", "wb", "flush", "rdio",
                        "wrio", "intr", "compl", "data", "retry", "iodata",
                        "iocompl", "intack"});
  c.add_input("inmsgsrc", {"local", "home"});
  c.add_input("inmsgdest", {"local"});
  c.add_input("racst", {"I", "pend"});
  c.add_input("racfull", {"full", "notfull"});

  c.add_output("fwdmsg", {"NULL", "read", "readex", "upgr", "wb", "flush",
                          "rdio", "wrio", "intr", "compl", "data", "retry",
                          "iodata", "iocompl", "intack"});
  c.add_output("fwdmsgsrc", {"NULL", "local", "home"});
  c.add_output("fwdmsgdest", {"NULL", "local", "home"});
  c.add_output("locresp", {"NULL", "retry"});
  c.add_output("nxtracst", {"NULL", "I", "pend"});
  c.add_output("racop", {"NULL", "alloc", "free"});

  // Outbound requests come from the node (local role); inbound responses
  // from home.
  c.constrain("inmsgsrc",
              "isrequest(inmsg) ? inmsgsrc = local : inmsgsrc = home");
  c.constrain("inmsgdest", "inmsgdest = local");

  // Responses only arrive for a pending entry; occupancy is only
  // meaningful for fresh requests.
  c.constrain("racst", "isresponse(inmsg) ? racst = pend : true");
  c.constrain("racfull",
              "isresponse(inmsg) or racst = pend ? racfull = notfull : true");

  // Forwarding: fresh requests to home when an entry is available;
  // responses back to the node controller.
  c.constrain("fwdmsg",
              "isrequest(inmsg) ? "
              "(racst = I and racfull = notfull ? fwdmsg = inmsg : "
              "fwdmsg = NULL) : fwdmsg = inmsg");
  // Requests are injected into the local->home channel; responses are
  // handed to the node-level controllers over the intra-quad (local,local)
  // path, which occupies no virtual channel.  This decoupling is what lets
  // the response channels be pure sinks in the deadlock analysis.
  c.constrain("fwdmsgsrc",
              "fwdmsg = NULL ? fwdmsgsrc = NULL : fwdmsgsrc = local");
  c.constrain("fwdmsgdest",
              "fwdmsg = NULL ? fwdmsgdest = NULL : "
              "(isrequest(inmsg) ? fwdmsgdest = home : fwdmsgdest = local)");

  // Immediate retry when the request cannot be accepted (RAC full or line
  // already pending).
  c.constrain("locresp",
              "isrequest(inmsg) and (racst = pend or racfull = full) ? "
              "locresp = retry : locresp = NULL");

  c.constrain("nxtracst",
              "isrequest(inmsg) ? "
              "(fwdmsg = NULL ? nxtracst = NULL : nxtracst = pend) : "
              "(inmsg = data ? nxtracst = NULL : nxtracst = I)");
  c.constrain("racop",
              "nxtracst = pend ? racop = alloc : "
              "(nxtracst = I ? racop = free : racop = NULL)");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"fwdmsg", "fwdmsgsrc", "fwdmsgdest", false});
}

}  // namespace ccsql::asura::detail
