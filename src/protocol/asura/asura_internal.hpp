#pragma once

// Internal builder functions for the ASURA reconstruction.  Each function
// adds one controller spec (schema + domains + column constraints) to the
// protocol; they are called from make_asura() only.

#include "protocol/asura/asura.hpp"

namespace ccsql::asura::detail {

void add_messages(ProtocolSpec& p);
void add_directory(ProtocolSpec& p);
void add_memory(ProtocolSpec& p);
void add_node(ProtocolSpec& p);
void add_cache(ProtocolSpec& p);
void add_remote_snoop(ProtocolSpec& p);
void add_rac(ProtocolSpec& p);
void add_io(ProtocolSpec& p);
void add_interrupt(ProtocolSpec& p);
void add_channels(ProtocolSpec& p);
void add_invariants(ProtocolSpec& p);

}  // namespace ccsql::asura::detail
