#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {
namespace {

std::vector<std::string> with(std::vector<std::string> base,
                              const std::vector<std::string>& more) {
  base.insert(base.end(), more.begin(), more.end());
  return base;
}

}  // namespace

// The directory controller D (paper, sections 2.1 and 3): 30 columns — 10
// inputs and 20 outputs.  The directory proper holds stable states
// {I, SI, MESI}; in-flight transactions live in the busy directory (bdirst,
// bdirpv), mirroring the paper's separate busy-directory structure and its
// mutual-exclusion invariant.
//
// Protocol structure beyond the paper's published fragment (all of it
// surfaced by driving the generated table in the simulator — the "errors
// found early" the methodology is about):
//  * Copy-installing grants (read / read-exclusive / upgrade) are
//    acknowledged: the line stays busy in a Busy-*-g state until the
//    requester's gdone arrives, so no snoop can overtake a grant in
//    flight.  The directory write happens when the gdone is processed,
//    preserving the directory / busy-directory mutual exclusion.
//  * An upgrade that finds the line MESI or I lost an invalidation race
//    and is converted into a read-exclusive.
//  * A writeback that finds the line not owned is stale (it was absorbed
//    by a snoop while in flight) and is nacked.
//
// Output conventions:
//  * One message port per destination: locmsg (to the requesting local
//    node), remmsg (snoops to remote), memmsg (to home memory), each with
//    source/destination/resource columns, as in the paper.
//  * Data movement is recorded in the `datapath` column (mem2loc etc.);
//    the completion locmsg carries the control part.  NULL = no-op.
void add_directory(ProtocolSpec& p) {
  auto& c = p.add_controller(kDirectory);
  const std::vector<std::string>& busy = busy_states();

  // ---- Inputs --------------------------------------------------------------
  c.add_input("inmsg",
              {"read", "readex", "upgr", "wb", "flush", "rdio", "wrio",
               "intr", "evict", "atomic", "idone", "rdata", "fdone", "data",
               "mdone", "compl", "gdone"});
  c.add_input("inmsgsrc", {"local", "remote", "home"});
  c.add_input("inmsgdest", {"home"});
  c.add_input("inmsgres", {"reqq", "respq"});
  c.add_input("dirlookup", {"hit", "miss", "stale"});
  c.add_input("dirst", {"I", "SI", "MESI"});
  c.add_input("dirpv", {"zero", "one", "gone"});
  c.add_input("bdirlookup", {"hit", "miss"});
  c.add_input("bdirst", with({"I"}, busy));
  c.add_input("bdirpv", {"zero", "one", "gone"});

  // ---- Outputs -------------------------------------------------------------
  c.add_output("locmsg", {"NULL", "compl", "retry", "nack", "iodata",
                          "iocompl", "intack"});
  c.add_output("locmsgsrc", {"NULL", "home"});
  c.add_output("locmsgdest", {"NULL", "local"});
  c.add_output("locmsgres", {"NULL", "respq"});
  c.add_output("remmsg", {"NULL", "sinv", "sfetch", "sflush"});
  c.add_output("remmsgsrc", {"NULL", "home"});
  c.add_output("remmsgdest", {"NULL", "remote"});
  c.add_output("remmsgres", {"NULL", "reqq"});
  c.add_output("memmsg",
               {"NULL", "mread", "mwrite", "mupd", "mrmw", "wb"});
  c.add_output("memmsgsrc", {"NULL", "home"});
  c.add_output("memmsgdest", {"NULL", "home"});
  c.add_output("memmsgres", {"NULL", "reqq"});
  c.add_output("nxtdirst", {"NULL", "I", "SI", "MESI"});
  c.add_output("nxtdirpv", {"NULL", "inc", "dec", "repl", "drepl"});
  c.add_output("nxtbdirst", with({"NULL", "I"}, busy));
  c.add_output("nxtbdirpv", {"NULL", "inc", "dec", "repl", "drepl"});
  c.add_output("bdirop", {"NULL", "alloc", "free"});
  c.add_output("dirupd", {"NULL", "upd"});
  c.add_output("datapath",
               {"NULL", "mem2loc", "rem2loc", "rem2mem", "loc2mem"});
  c.add_output("cmpl", {"NULL", "done", "cont"});

  // ---- Input-legality constraints -------------------------------------------

  // Requests and the grant acknowledgement come from the local node;
  // invalidation/flush/owner-data responses from remote; memory responses
  // from home.
  c.constrain("inmsgsrc",
              "inmsg in (read, readex, upgr, wb, flush, rdio, wrio, intr, "
              "evict, atomic, gdone) ? inmsgsrc = local : "
              "(inmsg in (idone, rdata, fdone) ? inmsgsrc = remote : "
              "inmsgsrc = home)");
  c.constrain("inmsgdest", "inmsgdest = home");
  c.constrain("inmsgres",
              "isrequest(inmsg) ? inmsgres = reqq : inmsgres = respq");

  // Directory lookup result: miss for an invalid line, otherwise hit —
  // except that for writebacks and eviction hints the lookup also compares
  // the requester against the presence vector, reporting `stale` when the
  // sender is not a recorded holder (the late-writeback race: the copy was
  // absorbed and ownership has moved on).
  c.constrain("dirlookup",
              "dirst = I ? dirlookup = miss : "
              "(inmsg in (wb, evict) and bdirst = I ? "
              "dirlookup in (hit, stale) : dirlookup = hit)");

  // Directory state / presence vector consistency (the paper's first
  // invariant, enforced already at generation time for legal inputs).
  c.constrain("dirpv",
              "dirst = I ? dirpv = zero : "
              "(dirst = MESI ? dirpv = one : dirpv in (one, gone))");

  // Legal (request, stable state) combinations; while a line is busy its
  // directory entry has been moved to the busy directory (mutual
  // exclusion), so dirst must read I.  An upgrade may find the line SI
  // (normal) or MESI / I (its copy was invalidated in flight: the upgrade
  // converts to a read-exclusive); a writeback may find the line SI or I
  // (stale: it was absorbed by a snoop and is nacked).
  // A flush may find the line already invalid (its holder's copy was
  // invalidated while the flush was in flight): it completes trivially.
  c.constrain("dirst",
              "bdirst = I ? ("
              "inmsg = intr ? dirst = I : true"
              ") : dirst = I");

  // A response is only legal in a busy state that awaits it.
  c.constrain(
      "bdirst",
      "inmsg = data ? "
      "bdirst in (Busy-rd-d, Busy-rx-d, Busy-rx-sd, Busy-ior-d, "
      "Busy-ior-e) : "
      "(inmsg = idone ? "
      "bdirst in (Busy-rx-sd, Busy-rx-s, Busy-rx-si, Busy-fl-s, "
      "Busy-iow-s, Busy-iow-si, Busy-at-s, Busy-at-si) : "
      "(inmsg = rdata ? bdirst in (Busy-rd-r, Busy-ior-r) : "
      "(inmsg = fdone ? bdirst = Busy-fl-f : "
      "(inmsg = mdone ? bdirst in (Busy-fl-m, Busy-iow-m, Busy-at-m) : "
      "(inmsg = compl ? bdirst = Busy-wb-m : "
      "(inmsg = gdone ? "
      "bdirst in (Busy-rd-g, Busy-rx-g) : true))))))");
  c.constrain("bdirlookup",
              "bdirst = I ? bdirlookup = miss : bdirlookup = hit");

  // The busy presence vector counts outstanding snoop acknowledgements; an
  // owner invalidation (Busy-rx-si) always awaits exactly one idone.
  c.constrain("bdirpv",
              "bdirst in (Busy-rx-si, Busy-iow-si, Busy-at-si) ? "
              "bdirpv = one : "
              "(bdirst in (Busy-rx-sd, Busy-rx-s, Busy-fl-s, Busy-iow-s, "
              "Busy-at-s) ? bdirpv in (one, gone) : bdirpv = zero)");

  // ---- Output constraints ----------------------------------------------------

  // Response to the local node.  Requests against a busy line are retried
  // (this is what serializes requests per address, section 4.3); stale
  // writebacks are nacked.
  c.constrain(
      "locmsg",
      "isrequest(inmsg) and bdirst != I ? locmsg = retry : "
      "(inmsg = wb and (dirst != MESI or dirlookup = stale) ? "
      "locmsg = nack : "
      "(inmsg = evict and (dirst != SI or dirlookup = stale) ? "
      "locmsg = nack : "
      "(inmsg = evict ? locmsg = compl : "
      "(inmsg = intr ? locmsg = intack : "
      "(inmsg = flush and dirst = I ? locmsg = compl : "
      "(inmsg = data and bdirst in (Busy-rd-d, Busy-rx-d) ? locmsg = compl : "
      "(inmsg = data and bdirst in (Busy-ior-d, Busy-ior-e) ? "
      "locmsg = iodata : "
      "(inmsg = rdata ? "
      "(bdirst = Busy-rd-r ? locmsg = compl : locmsg = iodata) : "
      "(inmsg = idone and bdirpv = one and "
      "bdirst in (Busy-rx-s, Busy-fl-s) ? locmsg = compl : "
      "(inmsg = compl ? locmsg = compl : "
      "(inmsg = mdone and bdirst = Busy-iow-m ? locmsg = iocompl : "
      "(inmsg = mdone and bdirst in (Busy-fl-m, Busy-at-m) ? "
      "locmsg = compl : "
      "locmsg = NULL))))))))))))");
  c.constrain("locmsgsrc",
              "locmsg = NULL ? locmsgsrc = NULL : locmsgsrc = home");
  c.constrain("locmsgdest",
              "locmsg = NULL ? locmsgdest = NULL : locmsgdest = local");
  c.constrain("locmsgres",
              "locmsg = NULL ? locmsgres = NULL : locmsgres = respq");

  // Snoop requests to remote nodes, issued when a fresh request finds the
  // line shared or owned elsewhere (Figure 2: readex at SI sends sinv).
  c.constrain(
      "remmsg",
      "bdirst = I ? ("
      "inmsg in (read, rdio) and dirst = MESI ? remmsg = sfetch : "
      "(inmsg in (readex, upgr, wrio, atomic) and "
      "dirst in (SI, MESI) ? remmsg = sinv : "
      "(inmsg = flush and dirst = SI ? remmsg = sinv : "
      "(inmsg = flush and dirst = MESI ? remmsg = sflush : "
      "remmsg = NULL)))"
      ") : remmsg = NULL");
  c.constrain("remmsgsrc",
              "remmsg = NULL ? remmsgsrc = NULL : remmsgsrc = home");
  c.constrain("remmsgdest",
              "remmsg = NULL ? remmsgdest = NULL : remmsgdest = remote");
  c.constrain("remmsgres",
              "remmsg = NULL ? remmsgres = NULL : remmsgres = reqq");

  // Requests to the home memory controller (Figure 2: readex at SI sends
  // mread concurrently with the snoop; Figure 4: wb is forwarded as-is and
  // the mread of an owner invalidation is issued when the idone is
  // processed).
  c.constrain(
      "memmsg",
      "bdirst = I ? ("
      "inmsg in (read, readex, upgr) and dirst in (I, SI) ? memmsg = mread : "
      "(inmsg = rdio and dirst in (I, SI) ? memmsg = mread : "
      "(inmsg = wb and dirst = MESI and dirlookup = hit ? "
      "memmsg = wb : "
      "(inmsg = wrio and dirst = I ? memmsg = mwrite : "
      "(inmsg = atomic and dirst = I ? memmsg = mrmw : memmsg = NULL))))"
      ") : ("
      "inmsg = idone and bdirst = Busy-rx-si ? memmsg = mread : "
      "(inmsg = idone and bdirpv = one and "
      "bdirst in (Busy-iow-s, Busy-iow-si) ? memmsg = mwrite : "
      "(inmsg = idone and bdirpv = one and "
      "bdirst in (Busy-at-s, Busy-at-si) ? memmsg = mrmw : "
      "(inmsg = rdata ? memmsg = mupd : "
      "(inmsg = fdone ? memmsg = mwrite : memmsg = NULL)))))");
  c.constrain("memmsgsrc",
              "memmsg = NULL ? memmsgsrc = NULL : memmsgsrc = home");
  c.constrain("memmsgdest",
              "memmsg = NULL ? memmsgdest = NULL : memmsgdest = home");
  c.constrain("memmsgres",
              "memmsg = NULL ? memmsgres = NULL : memmsgres = reqq");

  // Next stable directory state.  Busy-allocating requests move the entry
  // into the busy directory (stable state reads I until the transaction is
  // over); the grant acknowledgement installs the final state.
  c.constrain(
      "nxtdirst",
      "bdirst != I and isrequest(inmsg) ? nxtdirst = NULL : "
      "(inmsg = wb and (dirst != MESI or dirlookup = stale) ? "
      "nxtdirst = NULL : "
      "(inmsg = intr ? nxtdirst = NULL : "
      "(inmsg = evict ? (dirst = SI and dirlookup = hit and "
      "dirpv = one ? nxtdirst = I : nxtdirst = NULL) : "
      "(isrequest(inmsg) ? (dirst = I ? nxtdirst = NULL : nxtdirst = I) : "
      "(inmsg = gdone and bdirst = Busy-rd-g ? nxtdirst = SI : "
      "(inmsg = gdone ? nxtdirst = MESI : "
      "(inmsg = data and bdirst = Busy-ior-e ? nxtdirst = SI : "
      "(inmsg = rdata and bdirst = Busy-ior-r ? nxtdirst = SI : "
      "nxtdirst = NULL))))))))");

  // Presence-vector operation applied when the directory entry is written
  // (paper: inc / dec / repl / drepl).
  c.constrain(
      "nxtdirpv",
      "inmsg = evict and dirst = SI and dirlookup = hit ? "
      "(dirpv = one ? nxtdirpv = drepl : nxtdirpv = dec) : "
      "(inmsg = gdone and bdirst = Busy-rd-g ? nxtdirpv = inc : "
      "(inmsg = gdone ? nxtdirpv = repl : "
      "(inmsg = compl and bdirst = Busy-wb-m ? nxtdirpv = drepl : "
      "(inmsg = idone and bdirpv = one and bdirst = Busy-fl-s ? "
      "nxtdirpv = drepl : "
      "(inmsg = mdone and bdirst in (Busy-fl-m, Busy-iow-m, Busy-at-m) ? "
      "nxtdirpv = drepl : "
      "nxtdirpv = NULL)))))");

  // Busy-directory state machine (Figure 3: Busy-sd -data-> Busy-s,
  // Busy-sd -idone(last)-> Busy-d; here with the transaction prefix rx,
  // plus the grant-acknowledgement tail).
  c.constrain(
      "nxtbdirst",
      "bdirst = I ? ("
      "inmsg = read ? "
      "(dirst = MESI ? nxtbdirst = Busy-rd-r : nxtbdirst = Busy-rd-d) : "
      "(inmsg = readex ? (dirst = I ? nxtbdirst = Busy-rx-d : "
      "(dirst = SI ? nxtbdirst = Busy-rx-sd : nxtbdirst = Busy-rx-si)) : "
      "(inmsg = upgr ? (dirst = I ? nxtbdirst = Busy-rx-d : "
      "(dirst = MESI ? nxtbdirst = Busy-rx-si : nxtbdirst = Busy-rx-sd)) : "
      "(inmsg = wb ? "
      "(dirst = MESI and dirlookup = hit ? nxtbdirst = Busy-wb-m : "
      "nxtbdirst = NULL) : "
      "(inmsg = flush ? (dirst = SI ? nxtbdirst = Busy-fl-s : "
      "(dirst = MESI ? nxtbdirst = Busy-fl-f : nxtbdirst = NULL)) : "
      "(inmsg = rdio ? (dirst = I ? nxtbdirst = Busy-ior-d : "
      "(dirst = SI ? nxtbdirst = Busy-ior-e : nxtbdirst = Busy-ior-r)) : "
      "(inmsg = wrio ? (dirst = I ? nxtbdirst = Busy-iow-m : "
      "(dirst = SI ? nxtbdirst = Busy-iow-s : nxtbdirst = Busy-iow-si)) : "
      "(inmsg = atomic ? (dirst = I ? nxtbdirst = Busy-at-m : "
      "(dirst = SI ? nxtbdirst = Busy-at-s : nxtbdirst = Busy-at-si)) : "
      "nxtbdirst = NULL)))))))"
      ") : ("
      "isrequest(inmsg) ? nxtbdirst = NULL : "
      "(inmsg = gdone ? nxtbdirst = I : "
      "(inmsg = data and bdirst = Busy-rx-sd ? nxtbdirst = Busy-rx-s : "
      "(inmsg = data and bdirst = Busy-rd-d ? nxtbdirst = Busy-rd-g : "
      "(inmsg = data and bdirst = Busy-rx-d ? nxtbdirst = Busy-rx-g : "
      "(inmsg = rdata ? (bdirst = Busy-rd-r ? nxtbdirst = Busy-rd-g : "
      "nxtbdirst = I) : "
      "(inmsg = idone and bdirpv = gone ? nxtbdirst = NULL : "
      "(inmsg = idone and bdirst in (Busy-rx-sd, Busy-rx-si) ? "
      "nxtbdirst = Busy-rx-d : "
      "(inmsg = idone and bdirst = Busy-rx-s ? nxtbdirst = Busy-rx-g : "
      "(inmsg = idone and bdirst in (Busy-iow-s, Busy-iow-si) ? "
      "nxtbdirst = Busy-iow-m : "
      "(inmsg = idone and bdirst in (Busy-at-s, Busy-at-si) ? "
      "nxtbdirst = Busy-at-m : "
      "(inmsg = fdone ? nxtbdirst = Busy-fl-m : nxtbdirst = I)))))))))))"
      ")");

  // Busy presence vector: set to the sharer count when invalidations are
  // issued; decremented per idone.
  c.constrain("nxtbdirpv",
              "inmsg = idone ? nxtbdirpv = dec : "
              "(remmsg = sinv ? nxtbdirpv = repl : nxtbdirpv = NULL)");

  // Busy-directory entry management.
  c.constrain("bdirop",
              "bdirst = I and nxtbdirst != NULL and nxtbdirst != I ? "
              "bdirop = alloc : "
              "(bdirst != I and nxtbdirst = I ? bdirop = free : "
              "bdirop = NULL)");

  // Directory write needed whenever stable state or presence vector change.
  c.constrain("dirupd",
              "nxtdirst != NULL or nxtdirpv != NULL ? dirupd = upd : "
              "dirupd = NULL");

  // Data routing.
  c.constrain(
      "datapath",
      "inmsg = data and bdirst in (Busy-rd-d, Busy-rx-d) ? "
      "datapath = mem2loc : "
      "(inmsg = data and bdirst in (Busy-ior-d, Busy-ior-e) ? "
      "datapath = mem2loc : "
      "(inmsg = rdata ? datapath = rem2loc : "
      "(inmsg = idone and bdirpv = one and bdirst = Busy-rx-s ? "
      "datapath = mem2loc : "
      "(inmsg = fdone ? datapath = rem2mem : "
      "(inmsg = wb and bdirst = I and dirst = MESI and "
      "dirlookup = hit ? datapath = loc2mem : "
      "(inmsg = wrio and bdirst = I ? datapath = loc2mem : "
      "datapath = NULL))))))");

  // Transaction progress marker: done (transaction over), cont (it
  // continues), NULL (retried / nacked).
  c.constrain("cmpl",
              "locmsg in (retry, nack) ? cmpl = NULL : "
              "(bdirop = free or (bdirst = I and bdirop = NULL and "
              "locmsg in (compl, intack, iodata, iocompl)) ? cmpl = done : "
              "cmpl = cont)");

  // ---- Message ports ---------------------------------------------------------
  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", /*is_input=*/true});
  c.add_message_triple({"locmsg", "locmsgsrc", "locmsgdest", false});
  c.add_message_triple({"remmsg", "remmsgsrc", "remmsgdest", false});
  c.add_message_triple({"memmsg", "memmsgsrc", "memmsgdest", false});
}

}  // namespace ccsql::asura::detail
