#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {
namespace {

void inv(ProtocolSpec& p, const char* name, const char* description,
         std::string sql) {
  p.add_invariant(NamedInvariant{name, description, std::move(sql)});
}

}  // namespace

// The protocol invariant suite (paper, section 4.3: "All of the protocol
// invariants (around 50) are checked ... within 5 minutes").  Each invariant
// is one or more SQL emptiness checks over a controller table.
//
// The paper's published invariants appear first.  Note on the first one:
// the paper prints it as a single WHERE conjunction (dirst = "MESI" and ...
// and dirst = "SI" and ...), which is vacuously empty because dirst cannot
// take two values at once; we state the evidently intended per-state checks
// as a conjunction of emptiness checks.
void add_invariants(ProtocolSpec& p) {
  // ---- Published invariants (section 4.3) -----------------------------------
  inv(p, "dir-state-pv-consistency",
      "Directory state and presence vector agree: MESI has exactly one "
      "sharer, SI one or more, I none (paper's first invariant).",
      "[Select dirst, dirpv from D where dirst = \"MESI\" and "
      "not dirpv = \"one\"] = empty and "
      "[Select dirst, dirpv from D where dirst = \"SI\" and "
      "not dirpv in (\"one\", \"gone\")] = empty and "
      "[Select dirst, dirpv from D where dirst = \"I\" and "
      "not dirpv = \"zero\"] = empty");

  inv(p, "dir-busy-mutual-exclusion",
      "A line is in the busy directory or in the directory, never both "
      "(paper's second invariant, verbatim).",
      "[Select dirst, bdirst from D where not dirst = \"I\" and "
      "not bdirst = \"I\"] = empty");

  inv(p, "dir-serializes-requests",
      "Requests to a busy line are retried, and a busy entry is freed only "
      "at completion (paper's third invariant).",
      "[Select inmsg, bdirst, locmsg from D where isrequest(inmsg) and "
      "not bdirst = \"I\" and not locmsg = \"retry\"] = empty and "
      "[Select inmsg, bdirst, nxtbdirst, cmpl from D where "
      "nxtbdirst = \"I\" and not cmpl = done] = empty");

  inv(p, "dir-completion-responds",
      "Every transaction that completes at D responds to the requestor "
      "(paper: D sends or receives a compl for every busy entry); grant "
      "acknowledgements end an already-responded transaction.",
      "[Select inmsg, locmsg, cmpl from D where cmpl = done and "
      "locmsg = NULL and not inmsg in (\"compl\", \"gdone\")] = empty");

  // ---- Directory controller ---------------------------------------------------
  inv(p, "dir-lookup-consistency",
      "Directory lookup result matches the stable state; the stale result "
      "(requester absent from the presence vector) only ever appears for "
      "writebacks and eviction hints on a valid entry.",
      "[Select dirst, dirlookup from D where dirst = \"I\" and "
      "not dirlookup = miss] = empty and "
      "[Select dirst, dirlookup from D where not dirst = \"I\" and "
      "dirlookup = miss] = empty and "
      "[Select inmsg, dirlookup from D where dirlookup = stale and "
      "not inmsg in (\"wb\", \"evict\")] = empty");

  inv(p, "bdir-lookup-consistency",
      "Busy-directory lookup result matches the busy state.",
      "[Select bdirst, bdirlookup from D where bdirst = \"I\" and "
      "bdirlookup = hit] = empty and "
      "[Select bdirst, bdirlookup from D where not bdirst = \"I\" and "
      "bdirlookup = miss] = empty");

  inv(p, "dir-retry-only-when-busy",
      "D retries a request only because the line is busy.",
      "[Select inmsg, bdirst, locmsg from D where locmsg = \"retry\" and "
      "bdirst = \"I\"] = empty");

  inv(p, "dir-responses-only-when-busy",
      "Responses are only legal for lines with a busy entry.",
      "[Select inmsg, bdirst from D where isresponse(inmsg) and "
      "bdirst = \"I\"] = empty");

  inv(p, "dir-requests-from-local",
      "All requests processed by D originate at the local role.",
      "[Select inmsg, inmsgsrc from D where isrequest(inmsg) and "
      "not inmsgsrc = local] = empty");

  inv(p, "dir-request-on-reqq",
      "Requests arrive on the request queue, responses on the response "
      "queue.",
      "[Select inmsg, inmsgres from D where isrequest(inmsg) and "
      "not inmsgres = reqq] = empty and "
      "[Select inmsg, inmsgres from D where isresponse(inmsg) and "
      "not inmsgres = respq] = empty");

  inv(p, "dir-locmsg-wellformed",
      "locmsg routing columns are set exactly when a message is sent.",
      "[Select locmsg, locmsgsrc, locmsgdest from D where "
      "not locmsg = NULL and (not locmsgsrc = home or "
      "not locmsgdest = local or not locmsgres = respq)] = empty and "
      "[Select locmsg, locmsgsrc, locmsgdest from D where locmsg = NULL and "
      "(not locmsgsrc = NULL or not locmsgdest = NULL or "
      "not locmsgres = NULL)] = empty");

  inv(p, "dir-remmsg-wellformed",
      "remmsg routing columns are set exactly when a snoop is sent.",
      "[Select remmsg, remmsgsrc, remmsgdest from D where "
      "not remmsg = NULL and (not remmsgsrc = home or "
      "not remmsgdest = remote or not remmsgres = reqq)] = empty and "
      "[Select remmsg, remmsgsrc, remmsgdest from D where remmsg = NULL and "
      "(not remmsgsrc = NULL or not remmsgdest = NULL or "
      "not remmsgres = NULL)] = empty");

  inv(p, "dir-memmsg-wellformed",
      "memmsg routing columns are set exactly when a memory request is "
      "sent.",
      "[Select memmsg, memmsgsrc, memmsgdest from D where "
      "not memmsg = NULL and (not memmsgsrc = home or "
      "not memmsgdest = home or not memmsgres = reqq)] = empty and "
      "[Select memmsg, memmsgsrc, memmsgdest from D where memmsg = NULL and "
      "(not memmsgsrc = NULL or not memmsgdest = NULL or "
      "not memmsgres = NULL)] = empty");

  inv(p, "dir-snoops-only-for-requests",
      "Snoops are generated while accepting a fresh request, never while "
      "processing a response.",
      "[Select inmsg, remmsg from D where not remmsg = NULL and "
      "isresponse(inmsg)] = empty");

  inv(p, "dir-snoop-needs-sharers",
      "An invalidation is only sent when the line has sharers or an owner.",
      "[Select remmsg, dirst, dirpv from D where remmsg = \"sinv\" and "
      "dirpv = \"zero\"] = empty");

  inv(p, "dir-alloc-from-free",
      "A busy entry is allocated only when the line is not already busy, "
      "and allocation installs a busy state.",
      "[Select bdirop, bdirst from D where bdirop = alloc and "
      "not bdirst = \"I\"] = empty and "
      "[Select bdirop, nxtbdirst from D where bdirop = alloc and "
      "(nxtbdirst = NULL or nxtbdirst = \"I\")] = empty");

  inv(p, "dir-free-from-busy",
      "A busy entry is freed only when one exists.",
      "[Select bdirop, bdirst from D where bdirop = free and "
      "bdirst = \"I\"] = empty");

  inv(p, "dir-upd-consistency",
      "The directory is written exactly when state or presence vector "
      "change.",
      "[Select dirupd, nxtdirst, nxtdirpv from D where dirupd = NULL and "
      "(not nxtdirst = NULL or not nxtdirpv = NULL)] = empty and "
      "[Select dirupd, nxtdirst, nxtdirpv from D where dirupd = upd and "
      "nxtdirst = NULL and nxtdirpv = NULL] = empty");

  inv(p, "dir-sinv-arms-busy-pv",
      "Issuing invalidations installs the pending-acknowledgement count.",
      "[Select remmsg, nxtbdirpv from D where remmsg = \"sinv\" and "
      "not nxtbdirpv = repl] = empty");

  inv(p, "dir-idone-decrements",
      "Every invalidation acknowledgement decrements the pending count.",
      "[Select inmsg, nxtbdirpv from D where inmsg = \"idone\" and "
      "not nxtbdirpv = dec] = empty");

  inv(p, "dir-idone-completes-only-last",
      "Invalidation acknowledgements complete a transaction only when they "
      "are the last pending one.",
      "[Select inmsg, bdirpv, cmpl from D where inmsg = \"idone\" and "
      "bdirpv = gone and not cmpl = cont] = empty");

  inv(p, "dir-figure3-hold-data",
      "In the Figure 3 scenario the data response at Busy-rx-sd is held: "
      "the transaction continues to Busy-rx-s.",
      "[Select inmsg, bdirst, nxtbdirst, cmpl from D where "
      "inmsg = \"data\" and bdirst = \"Busy-rx-sd\" and "
      "(not nxtbdirst = \"Busy-rx-s\" or not cmpl = cont)] = empty");

  inv(p, "dir-readex-transfers-ownership",
      "An acknowledged read-exclusive (or converted upgrade) grant installs "
      "MESI and replaces the presence vector with the new owner (Figure 2).",
      "[Select inmsg, bdirst, nxtdirst, nxtdirpv from D where "
      "inmsg = \"gdone\" and bdirst = \"Busy-rx-g\" and "
      "(not nxtdirst = \"MESI\" or not nxtdirpv = repl)] = empty");

  inv(p, "dir-read-installs-shared",
      "An acknowledged read grant installs SI and adds the requester.",
      "[Select inmsg, bdirst, nxtdirst, nxtdirpv from D where "
      "inmsg = \"gdone\" and bdirst = \"Busy-rd-g\" and "
      "(not nxtdirst = \"SI\" or not nxtdirpv = inc)] = empty");

  inv(p, "dir-grants-protected",
      "A copy-installing grant keeps the line busy until the requester's "
      "acknowledgement, and the acknowledgement frees it without any "
      "message traffic.",
      "[Select inmsg, bdirst, nxtbdirst from D where "
      "inmsg in (\"data\", \"rdata\") and "
      "bdirst in (\"Busy-rd-d\", \"Busy-rd-r\", \"Busy-rx-d\") and "
      "not nxtbdirst in (\"Busy-rd-g\", \"Busy-rx-g\")] = empty and "
      "[Select inmsg, bdirop, locmsg, remmsg, memmsg from D where "
      "inmsg = \"gdone\" and (not bdirop = free or not locmsg = NULL or "
      "not remmsg = NULL or not memmsg = NULL)] = empty");

  inv(p, "dir-owner-inv-then-mread",
      "Invalidating the previous owner of a read-exclusive issues the "
      "memory read when the idone is processed (the Figure 4 path).",
      "[Select inmsg, bdirst, memmsg, nxtbdirst from D where "
      "inmsg = \"idone\" and bdirst = \"Busy-rx-si\" and "
      "(not memmsg = \"mread\" or not nxtbdirst = \"Busy-rx-d\")] = empty");

  inv(p, "dir-interrupt-immediate",
      "Interrupts are acknowledged immediately and allocate nothing.",
      "[Select inmsg, locmsg, cmpl, bdirop from D where inmsg = \"intr\" and "
      "bdirst = \"I\" and (not locmsg = \"intack\" or not cmpl = done or "
      "not bdirop = NULL)] = empty");

  inv(p, "dir-nonsnoop-busy-pv-zero",
      "Busy states that await no invalidation acknowledgements carry an "
      "empty pending count.",
      "[Select bdirst, bdirpv from D where bdirst in (\"Busy-rd-d\", "
      "\"Busy-rd-r\", \"Busy-rd-g\", \"Busy-rx-d\", \"Busy-rx-g\", "
      "\"Busy-wb-m\", \"Busy-fl-f\", "
      "\"Busy-fl-m\", \"Busy-ior-d\", \"Busy-iow-m\") and "
      "not bdirpv = zero] = empty");

  inv(p, "dir-every-row-acts",
      "No controller row is a silent no-op: a retry carries a response and "
      "anything else progresses a transaction.",
      "[Select locmsg, cmpl from D where cmpl = NULL and "
      "locmsg = NULL] = empty");

  inv(p, "dir-wb-forwarded",
      "A live writeback is forwarded verbatim to the memory controller "
      "(Figure 4: wb travels home->home); a stale one (line no longer "
      "owned: it was absorbed by a snoop in flight) is nacked.",
      "[Select inmsg, memmsg, nxtbdirst from D where inmsg = \"wb\" and "
      "bdirst = \"I\" and dirst = \"MESI\" and dirlookup = hit and "
      "(not memmsg = \"wb\" or "
      "not nxtbdirst = \"Busy-wb-m\")] = empty and "
      "[Select inmsg, dirst, locmsg from D where inmsg = \"wb\" and "
      "bdirst = \"I\" and (not dirst = \"MESI\" or dirlookup = stale) "
      "and not locmsg = \"nack\"] = empty");

  inv(p, "dir-evict-exact",
      "An eviction hint from a recorded sharer removes exactly that sharer "
      "(clearing the entry when it was the last); hints from non-members "
      "or against non-shared lines are stale and are nacked.",
      "[Select inmsg, dirlookup, locmsg from D where inmsg = \"evict\" "
      "and bdirst = \"I\" and (dirlookup = stale or "
      "not dirst = \"SI\") and not locmsg = \"nack\"] = empty and "
      "[Select inmsg, dirpv, nxtdirpv, nxtdirst from D where "
      "inmsg = \"evict\" and dirst = \"SI\" and dirlookup = hit and "
      "dirpv = one and (not nxtdirpv = drepl or "
      "not nxtdirst = \"I\")] = empty and "
      "[Select inmsg, dirpv, nxtdirpv from D where inmsg = \"evict\" and "
      "dirst = \"SI\" and dirlookup = hit and dirpv = gone and "
      "not nxtdirpv = dec] = empty");

  inv(p, "dir-atomic-invalidates-first",
      "An atomic read-modify-write invalidates every cached copy before the "
      "memory operation is issued.",
      "[Select inmsg, dirst, remmsg, memmsg from D where "
      "inmsg = \"atomic\" and bdirst = \"I\" and not dirst = \"I\" and "
      "(not remmsg = \"sinv\" or not memmsg = NULL)] = empty and "
      "[Select inmsg, bdirst, memmsg from D where inmsg = \"idone\" and "
      "bdirpv = one and bdirst in (\"Busy-at-s\", \"Busy-at-si\") and "
      "not memmsg = \"mrmw\"] = empty");

  inv(p, "dir-io-write-invalidates-first",
      "A coherent I/O write invalidates every cached copy before writing "
      "memory.",
      "[Select inmsg, dirst, remmsg, memmsg from D where inmsg = \"wrio\" "
      "and bdirst = \"I\" and not dirst = \"I\" and "
      "(not remmsg = \"sinv\" or not memmsg = NULL)] = empty and "
      "[Select inmsg, bdirst, memmsg from D where inmsg = \"idone\" and "
      "bdirpv = one and bdirst in (\"Busy-iow-s\", \"Busy-iow-si\") and "
      "not memmsg = \"mwrite\"] = empty");

  inv(p, "dir-io-read-restores-state",
      "A coherent I/O read leaves the sharing state as it found it: reads "
      "from shared or owned lines restore SI (the owner is downgraded), "
      "reads from invalid lines leave the line invalid, and no I/O "
      "transaction ever installs a cache copy (no grant state).",
      "[Select inmsg, bdirst, nxtdirst from D where "
      "inmsg in (\"data\", \"rdata\") and "
      "bdirst in (\"Busy-ior-e\", \"Busy-ior-r\") and "
      "not nxtdirst = \"SI\"] = empty and "
      "[Select inmsg, bdirst, nxtdirst from D where inmsg = \"data\" and "
      "bdirst = \"Busy-ior-d\" and not nxtdirst = NULL] = empty and "
      "[Select bdirst, nxtbdirst from D where "
      "bdirst in (\"Busy-ior-d\", \"Busy-ior-e\", \"Busy-ior-r\") and "
      "nxtbdirst in (\"Busy-rd-g\", \"Busy-rx-g\")] = empty");

  inv(p, "dir-io-atomic-uncached-completion",
      "I/O and atomic completions leave the line uncached: the memory "
      "acknowledgement clears the presence vector.",
      "[Select inmsg, bdirst, nxtdirpv from D where inmsg = \"mdone\" and "
      "bdirst in (\"Busy-iow-m\", \"Busy-at-m\") and "
      "not nxtdirpv = drepl] = empty");

  // ---- Memory controller -------------------------------------------------------
  inv(p, "mem-read-returns-data",
      "A memory read produces a data response to the directory.",
      "[Select inmsg, outmsg from M where inmsg = \"mread\" and "
      "not outmsg = \"data\"] = empty");

  inv(p, "mem-write-acknowledged",
      "A memory write produces an acknowledgement.",
      "[Select inmsg, outmsg from M where inmsg = \"mwrite\" and "
      "not outmsg = \"mdone\"] = empty");

  inv(p, "mem-wb-completes",
      "Processing a forwarded writeback produces a compl response on the "
      "home->home response channel (Figure 4's row R1).",
      "[Select inmsg, outmsg, outmsgsrc, outmsgdest from M where "
      "inmsg = \"wb\" and (not outmsg = \"compl\" or "
      "not outmsgsrc = home or not outmsgdest = home)] = empty");

  inv(p, "mem-rmw-acknowledged",
      "A memory read-modify-write performs a write and is acknowledged.",
      "[Select inmsg, memop, outmsg from M where inmsg = \"mrmw\" and "
      "(not memop = wr or not outmsg = \"mdone\")] = empty");

  inv(p, "mem-posted-update-silent",
      "A posted update produces no response.",
      "[Select inmsg, outmsg from M where inmsg = \"mupd\" and "
      "not outmsg = NULL] = empty");

  inv(p, "mem-op-direction",
      "Reads perform a memory read, writes a memory write.",
      "[Select inmsg, memop from M where inmsg = \"mread\" and "
      "not memop = rd] = empty and "
      "[Select inmsg, memop from M where not inmsg = \"mread\" and "
      "not memop = wr] = empty");

  // ---- Node controller -----------------------------------------------------------
  inv(p, "nc-proc-ops-only-when-idle",
      "Processor operations are accepted only when no transaction is "
      "outstanding.",
      "[Select inmsg, ncst from NC where inmsg in (prd, pwr, pup, pwb, "
      "pfl) and not ncst = idle] = empty");

  inv(p, "nc-proc-op-issues-request",
      "Every accepted processor operation issues the corresponding network "
      "request.",
      "[Select inmsg, netmsg from NC where inmsg = prd and "
      "not netmsg = \"read\"] = empty and "
      "[Select inmsg, netmsg from NC where inmsg = pwr and "
      "not netmsg = \"readex\"] = empty and "
      "[Select inmsg, netmsg from NC where inmsg = pwb and "
      "not netmsg = \"wb\"] = empty");

  inv(p, "nc-retry-reissues",
      "A retry response re-issues the pending operation and stays in the "
      "wait state — except for an absorbed writeback (w-wb-x), whose "
      "bounced retry ends the transaction.",
      "[Select inmsg, netmsg, nxtncst from NC where inmsg = \"retry\" and "
      "not ncst = \"w-wb-x\" and "
      "(netmsg = NULL or not nxtncst = NULL)] = empty and "
      "[Select inmsg, ncst, netmsg, nxtncst from NC where "
      "inmsg = \"retry\" and ncst = \"w-wb-x\" and "
      "(not netmsg = NULL or not nxtncst = idle)] = empty");

  inv(p, "nc-data-fills-cache",
      "Every data response fills the cache (shared for reads, exclusive "
      "for read-exclusives) and notifies the processor.",
      "[Select inmsg, ncst, fillmsg from NC where inmsg = \"data\" and "
      "ncst in (w-rd, w-rd-d) and not fillmsg = pfill] = empty and "
      "[Select inmsg, ncst, fillmsg from NC where inmsg = \"data\" and "
      "ncst in (w-rx, w-rx-d) and not fillmsg = pfillx] = empty and "
      "[Select inmsg, procmsg from NC where inmsg = \"data\" and "
      "not procmsg = pdata] = empty");

  inv(p, "nc-writeback-invalidates",
      "Issuing a writeback or flush invalidates the local copy.",
      "[Select inmsg, fillmsg from NC where inmsg in (pwb, pfl) and "
      "not fillmsg = pinv] = empty");

  inv(p, "nc-completion-returns-idle",
      "The final completion returns the controller to idle and notifies "
      "the processor.",
      "[Select inmsg, ncst, nxtncst, procmsg from NC where "
      "inmsg = \"compl\" and ncst in (w-rd-c, w-rx-c, w-up-c, w-wb, w-fl) and "
      "(not nxtncst = idle or not procmsg = pdone)] = empty");

  // ---- Cache controller ------------------------------------------------------------
  inv(p, "cc-fill-into-invalid",
      "Shared fills only target an invalid frame; exclusive fills target an "
      "invalid frame or upgrade a shared one, and always install M.",
      "[Select inmsg, cst from CC where inmsg = pfill and "
      "not cst = \"I\"] = empty and "
      "[Select inmsg, cst from CC where inmsg = pfillx and "
      "not cst in (\"I\", \"S\")] = empty and "
      "[Select inmsg, nxtcst from CC where inmsg = pfillx and "
      "not nxtcst = \"M\"] = empty");

  inv(p, "cc-snoop-commands-acknowledged",
      "Every snoop command produces its cache-level response.",
      "[Select inmsg, outmsg from CC where inmsg = cinv and "
      "not outmsg = cack] = empty and "
      "[Select inmsg, outmsg from CC where inmsg = cfetch and "
      "not outmsg = cdata] = empty and "
      "[Select inmsg, outmsg from CC where inmsg = cflush and "
      "not outmsg = cwbdata] = empty");

  inv(p, "cc-invalidations-invalidate",
      "Invalidations and flushes leave the line invalid.",
      "[Select inmsg, nxtcst from CC where inmsg in (pinv, cinv, cflush) "
      "and not nxtcst = \"I\"] = empty");

  inv(p, "cc-fetch-downgrades-owner",
      "A fetch downgrades an exclusive/modified copy to shared.",
      "[Select inmsg, cst, nxtcst from CC where inmsg = cfetch and "
      "cst in (\"E\", \"M\") and not nxtcst = \"S\"] = empty");

  inv(p, "cc-write-hit-dirties",
      "A write hit on an exclusive copy moves it to modified.",
      "[Select inmsg, cst, nxtcst from CC where inmsg = pwr and "
      "cst = \"E\" and not nxtcst = \"M\"] = empty");

  inv(p, "cc-hit-miss-consistency",
      "Processor reads hit on any valid copy and miss on invalid; writes "
      "hit only on E/M.",
      "[Select inmsg, cst, outmsg from CC where inmsg = prd and "
      "not cst = \"I\" and not outmsg = hit] = empty and "
      "[Select inmsg, cst, outmsg from CC where inmsg = prd and "
      "cst = \"I\" and not outmsg = miss] = empty and "
      "[Select inmsg, cst, outmsg from CC where inmsg = pwr and "
      "cst in (\"I\", \"S\") and not outmsg = miss] = empty");

  // ---- Remote snoop engine ------------------------------------------------------------
  inv(p, "rsn-snoops-only-when-idle",
      "Home serializes snoops per line: a snoop arrives only when the "
      "engine is idle.",
      "[Select inmsg, rsnst from RSN where inmsg in (sinv, sfetch, sflush) "
      "and not rsnst = idle] = empty");

  inv(p, "rsn-forwards-commands",
      "Every snoop is forwarded to the caches as the matching command.",
      "[Select inmsg, cmdmsg from RSN where inmsg = \"sinv\" and "
      "not cmdmsg = cinv] = empty and "
      "[Select inmsg, cmdmsg from RSN where inmsg = \"sfetch\" and "
      "not cmdmsg = cfetch] = empty and "
      "[Select inmsg, cmdmsg from RSN where inmsg = \"sflush\" and "
      "not cmdmsg = cflush] = empty");

  inv(p, "rsn-responds-home",
      "Every cache-level response is translated into the home-level "
      "response.",
      "[Select inmsg, homemsg from RSN where inmsg = cack and "
      "not homemsg = \"idone\"] = empty and "
      "[Select inmsg, homemsg from RSN where inmsg = cdata and "
      "not homemsg = \"rdata\"] = empty and "
      "[Select inmsg, homemsg from RSN where inmsg = cwbdata and "
      "not homemsg = \"fdone\"] = empty");

  inv(p, "rsn-response-matches-pending",
      "Cache responses arrive only in the matching wait state.",
      "[Select inmsg, rsnst from RSN where inmsg = cack and "
      "not rsnst = w-inv] = empty and "
      "[Select inmsg, rsnst from RSN where inmsg = cdata and "
      "not rsnst = w-fetch] = empty and "
      "[Select inmsg, rsnst from RSN where inmsg = cwbdata and "
      "not rsnst = w-flush] = empty");

  inv(p, "rsn-returns-idle",
      "Responding to home returns the engine to idle.",
      "[Select inmsg, nxtrsnst from RSN where inmsg in (cack, cdata, "
      "cwbdata) and not nxtrsnst = idle] = empty");

  // ---- Remote access cache ----------------------------------------------------------------
  inv(p, "rac-full-retries",
      "A request that cannot allocate an entry is retried locally and not "
      "forwarded.",
      "[Select inmsg, racfull, locresp, fwdmsg from RAC where "
      "isrequest(inmsg) and racfull = full and (not locresp = \"retry\" or "
      "not fwdmsg = NULL)] = empty");

  inv(p, "rac-serializes-line",
      "A second request to a pending line is retried (one outstanding "
      "transaction per line).",
      "[Select inmsg, racst, locresp from RAC where isrequest(inmsg) and "
      "racst = pend and not locresp = \"retry\"] = empty");

  inv(p, "rac-forwards-when-free",
      "An accepted request is forwarded to home and allocates an entry.",
      "[Select inmsg, fwdmsg, racop from RAC where isrequest(inmsg) and "
      "racst = \"I\" and racfull = notfull and "
      "(fwdmsg = NULL or not racop = alloc)] = empty");

  inv(p, "rac-responses-forwarded",
      "Every response is forwarded to the node-level controllers.",
      "[Select inmsg, fwdmsg, fwdmsgdest from RAC where "
      "isresponse(inmsg) and (fwdmsg = NULL or "
      "not fwdmsgdest = local)] = empty");

  inv(p, "rac-final-response-frees",
      "The final response of a transaction frees the entry; an "
      "intermediate data response keeps it.",
      "[Select inmsg, racop from RAC where inmsg in (\"compl\", \"retry\", "
      "\"iodata\", \"iocompl\", \"intack\") and not racop = free] = empty "
      "and [Select inmsg, racop from RAC where inmsg = \"data\" and "
      "not racop = NULL] = empty");

  // ---- I/O and interrupt controllers ---------------------------------------------------------
  inv(p, "ioc-device-ops-issue",
      "Device operations issue the uncached transactions.",
      "[Select inmsg, outmsg from IOC where inmsg = iord and "
      "not outmsg = \"rdio\"] = empty and "
      "[Select inmsg, outmsg from IOC where inmsg = iowr and "
      "not outmsg = \"wrio\"] = empty");

  inv(p, "ioc-completions-notify-device",
      "I/O completions notify the device and return to idle.",
      "[Select inmsg, devmsg, nxtiocst from IOC where inmsg = \"iodata\" "
      "and (not devmsg = devdata or not nxtiocst = idle)] = empty and "
      "[Select inmsg, devmsg, nxtiocst from IOC where inmsg = \"iocompl\" "
      "and (not devmsg = devdone or not nxtiocst = idle)] = empty");

  inv(p, "ioc-retry-reissues",
      "A retried I/O transaction is re-issued.",
      "[Select inmsg, iocst, outmsg from IOC where inmsg = \"retry\" and "
      "iocst = w-rd and not outmsg = \"rdio\"] = empty and "
      "[Select inmsg, iocst, outmsg from IOC where inmsg = \"retry\" and "
      "iocst = w-wr and not outmsg = \"wrio\"] = empty");

  inv(p, "int-dispatch",
      "Processor interrupts are dispatched to home and acknowledged back "
      "to the processor.",
      "[Select inmsg, outmsg from INT where inmsg = pint and "
      "not outmsg = \"intr\"] = empty and "
      "[Select inmsg, procmsg, nxtintst from INT where inmsg = \"intack\" "
      "and (not procmsg = pdone or not nxtintst = idle)] = empty");

  inv(p, "int-state-communication",
      "State-communication requests are answered immediately.",
      "[Select inmsg, outmsg from INT where inmsg = \"sstate\" and "
      "not outmsg = \"astate\"] = empty");

  // ---- Cross-controller handshakes -----------------------------------------------------------
  // Messages the directory sends to home memory joined against the memory
  // controller's handling of them: every emitted request must be answered
  // with the matching response.

  inv(p, "mem-wb-reaches-completion",
      "A directory writeback accepted by home memory completes the "
      "transaction.",
      "[Select a.memmsg, b.inmsg, b.outmsg from D a, M b "
      "where a.memmsg = b.inmsg and a.memmsg = \"wb\" and "
      "not b.outmsg = \"compl\"] = empty");

  inv(p, "mem-read-returns-data",
      "A directory memory read is served with data from a memory read "
      "operation.",
      "[Select a.memmsg, b.outmsg, b.memop from D a, M b "
      "where a.memmsg = b.inmsg and a.memmsg = \"mread\" and "
      "(not b.outmsg = \"data\" or not b.memop = rd)] = empty");
}

}  // namespace ccsql::asura::detail
