#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {

// The I/O controller IOC at the local node: translates device reads and
// writes into uncached rdio / wrio transactions to home and completes them
// back to the device.  Retried transactions are re-issued.
void add_io(ProtocolSpec& p) {
  auto& c = p.add_controller(kIo);

  c.add_input("inmsg", {"iord", "iowr", "iodata", "iocompl", "retry"});
  c.add_input("inmsgsrc", {"local"});
  c.add_input("inmsgdest", {"local"});
  c.add_input("iocst", {"idle", "w-rd", "w-wr"});

  c.add_output("outmsg", {"NULL", "rdio", "wrio"});
  c.add_output("outmsgsrc", {"NULL", "local"});
  c.add_output("outmsgdest", {"NULL", "home"});
  c.add_output("devmsg", {"NULL", "devdata", "devdone"});
  c.add_output("nxtiocst", {"NULL", "idle", "w-rd", "w-wr"});

  // Device ops originate locally; responses are delivered intra-quad by
  // the RAC (see rac.cpp / node.cpp).
  c.constrain("inmsgsrc", "inmsgsrc = local");
  c.constrain("inmsgdest", "inmsgdest = local");
  c.constrain("iocst",
              "inmsg in (iord, iowr) ? iocst = idle : "
              "(inmsg = iodata ? iocst = w-rd : "
              "(inmsg = iocompl ? iocst = w-wr : iocst in (w-rd, w-wr)))");

  c.constrain("outmsg",
              "inmsg = iord ? outmsg = rdio : "
              "(inmsg = iowr ? outmsg = wrio : "
              "(inmsg = retry ? "
              "(iocst = w-rd ? outmsg = rdio : outmsg = wrio) : "
              "outmsg = NULL))");
  c.constrain("outmsgsrc",
              "outmsg = NULL ? outmsgsrc = NULL : outmsgsrc = local");
  c.constrain("outmsgdest",
              "outmsg = NULL ? outmsgdest = NULL : outmsgdest = home");

  c.constrain("devmsg",
              "inmsg = iodata ? devmsg = devdata : "
              "(inmsg = iocompl ? devmsg = devdone : devmsg = NULL)");

  c.constrain("nxtiocst",
              "inmsg = iord ? nxtiocst = w-rd : "
              "(inmsg = iowr ? nxtiocst = w-wr : "
              "(inmsg = retry ? nxtiocst = NULL : nxtiocst = idle))");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"outmsg", "outmsgsrc", "outmsgdest", false});
}

}  // namespace ccsql::asura::detail
