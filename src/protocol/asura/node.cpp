#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {

// The node controller NC at the local node: turns processor memory
// operations into network requests to home, and network responses into
// processor completions.  One outstanding memory transaction per line; the
// completion of read / readex consists of a data response and a compl
// response whose arrival order is not fixed, hence the -c (compl pending)
// and -d (data pending) sub-states.
//
// Two race states beyond the happy path:
//  * w-up-c: an upgrade whose shared copy was invalidated in flight is
//    converted to a read-exclusive by the directory, so a data response
//    can arrive while waiting for the upgrade completion.
//  * w-wb-x: a pending writeback absorbed by a snoop invalidation (the
//    dirty data was written through to home memory when the invalidation
//    hit); the bounced writeback's retry simply ends the transaction.
void add_node(ProtocolSpec& p) {
  auto& c = p.add_controller(kNode);

  c.add_input("inmsg", {"prd", "pwr", "pup", "pwb", "pfl", "pevict",
                        "patomic", "data", "compl", "retry", "nack",
                        "wbcancel"});
  c.add_input("inmsgsrc", {"local"});
  c.add_input("inmsgdest", {"local"});
  c.add_input("ncst", {"idle", "w-rd", "w-rd-c", "w-rd-d", "w-rx", "w-rx-c",
                       "w-rx-d", "w-up", "w-up-c", "w-up-d", "w-wb", "w-wb-x",
                       "w-fl", "w-ev", "w-at"});

  c.add_output("netmsg", {"NULL", "read", "readex", "upgr", "wb", "flush",
                          "evict", "atomic", "gdone"});
  c.add_output("netmsgsrc", {"NULL", "local"});
  c.add_output("netmsgdest", {"NULL", "home"});
  c.add_output("procmsg", {"NULL", "pdata", "pdone"});
  c.add_output("fillmsg", {"NULL", "pfill", "pfillx", "pinv"});
  c.add_output("nxtncst", {"NULL", "idle", "w-rd", "w-rd-c", "w-rd-d",
                           "w-rx", "w-rx-c", "w-rx-d", "w-up", "w-up-c",
                           "w-up-d", "w-wb", "w-wb-x", "w-fl", "w-ev",
                           "w-at"});
  c.add_output("nccmpl", {"NULL", "done", "cont"});

  // Processor ops originate locally; network responses are delivered
  // intra-quad by the RAC (the RAC is the controller that holds the
  // home->local virtual channel; see rac.cpp), so every NC input is local.
  c.constrain("inmsgsrc", "inmsgsrc = local");
  c.constrain("inmsgdest", "inmsgdest = local");

  // Input legality: processor ops only when idle; each response only in the
  // states that await it; a writeback cancel only with a writeback pending.
  c.constrain(
      "ncst",
      "inmsg in (prd, pwr, pup, pwb, pfl, pevict, patomic) ? "
      "ncst = idle : "
      "(inmsg = data ? ncst in (w-rd, w-rd-d, w-rx, w-rx-d, w-up, "
      "w-up-d) : "
      "(inmsg = compl ? ncst in (w-rd, w-rd-c, w-rx, w-rx-c, w-up, w-up-c, "
      "w-wb, w-wb-x, w-fl, w-ev, w-at) : "
      "(inmsg = wbcancel ? ncst = w-wb : "
      "(inmsg = nack ? ncst in (w-wb, w-wb-x, w-ev) : "
      "ncst in (w-rd, w-rx, w-up, w-wb, w-wb-x, w-fl, w-ev, w-at)))))");

  // Network message issued: fresh op; re-issue of the pending op on retry
  // (recovered from the wait state; an absorbed writeback is not
  // re-issued); or the grant acknowledgement when a copy-installing grant
  // has been fully consumed.
  c.constrain(
      "netmsg",
      "inmsg = prd ? netmsg = read : "
      "(inmsg = pwr ? netmsg = readex : "
      "(inmsg = pup ? netmsg = upgr : "
      "(inmsg = pwb ? netmsg = wb : "
      "(inmsg = pfl ? netmsg = flush : "
      "(inmsg = pevict ? netmsg = evict : "
      "(inmsg = patomic ? netmsg = atomic : "
      "(inmsg = retry ? ("
      "ncst = w-rd ? netmsg = read : "
      "(ncst = w-rx ? netmsg = readex : "
      "(ncst = w-up ? netmsg = upgr : "
      "(ncst = w-wb ? netmsg = wb : "
      "(ncst = w-fl ? netmsg = flush : "
      "(ncst = w-ev ? netmsg = evict : "
      "(ncst = w-at ? netmsg = atomic : netmsg = NULL))))))"
      ") : "
      "(inmsg = compl and ncst in (w-rd-c, w-rx-c, w-up-c) ? "
      "netmsg = gdone : "
      "(inmsg = data and ncst in (w-rd-d, w-rx-d, w-up-d) ? netmsg = gdone : "
      "netmsg = NULL)))))))))");
  c.constrain("netmsgsrc",
              "netmsg = NULL ? netmsgsrc = NULL : netmsgsrc = local");
  c.constrain("netmsgdest",
              "netmsg = NULL ? netmsgdest = NULL : netmsgdest = home");

  // Completion signalling to the processor: data responses deliver pdata;
  // final compl (or compl of data-less ops) delivers pdone; the retry of an
  // absorbed writeback completes the write-back as absorbed.
  c.constrain("procmsg",
              "inmsg = data ? procmsg = pdata : "
              "(inmsg = compl and ncst in (w-rd-c, w-rx-c, w-up-c, "
              "w-wb, w-wb-x, w-fl, w-ev, w-at) ? procmsg = pdone : "
              "(inmsg = retry and ncst = w-wb-x ? procmsg = pdone : "
              "(inmsg = nack ? procmsg = pdone : "
              "procmsg = NULL)))");

  // Cache maintenance: fills on data arrival (exclusive for read-exclusive
  // and for upgrades, which install M), invalidate on writeback / flush
  // issue.
  c.constrain("fillmsg",
              "inmsg = data and ncst in (w-rd, w-rd-d) ? fillmsg = pfill : "
              "(inmsg = data and ncst in (w-rx, w-rx-d, w-up, w-up-d) ? "
              "fillmsg = pfillx : "
              "(inmsg in (pwb, pfl, pevict) ? fillmsg = pinv : "
              "fillmsg = NULL))");

  c.constrain(
      "nxtncst",
      "inmsg = prd ? nxtncst = w-rd : "
      "(inmsg = pwr ? nxtncst = w-rx : "
      "(inmsg = pup ? nxtncst = w-up : "
      "(inmsg = pwb ? nxtncst = w-wb : "
      "(inmsg = pfl ? nxtncst = w-fl : "
      "(inmsg = pevict ? nxtncst = w-ev : "
      "(inmsg = patomic ? nxtncst = w-at : "
      "(inmsg = wbcancel ? nxtncst = w-wb-x : "
      "(inmsg = nack ? nxtncst = idle : "
      "(inmsg = retry ? "
      "(ncst = w-wb-x ? nxtncst = idle : nxtncst = NULL) : "
      "(inmsg = data ? "
      "(ncst = w-rd ? nxtncst = w-rd-c : "
      "(ncst = w-rx ? nxtncst = w-rx-c : "
      "(ncst = w-up ? nxtncst = w-up-c : nxtncst = idle))) : "
      "(ncst = w-rd ? nxtncst = w-rd-d : "
      "(ncst = w-rx ? nxtncst = w-rx-d : "
      "(ncst = w-up ? nxtncst = w-up-d : nxtncst = idle)))))))))))))");

  c.constrain("nccmpl",
              "procmsg = pdone or (inmsg = data and ncst in (w-rd-d, "
              "w-rx-d, w-up-d)) ? nccmpl = done : nccmpl = cont");

  c.add_message_triple({"inmsg", "inmsgsrc", "inmsgdest", true});
  c.add_message_triple({"netmsg", "netmsgsrc", "netmsgdest", false});
}

}  // namespace ccsql::asura::detail
