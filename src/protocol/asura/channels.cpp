#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {
namespace {

/// Requests issued by the local node (or its protocol engine) to home.
/// The grant acknowledgement gdone rides the same channel: it flows
/// local -> home and is ordered with the node's subsequent requests.
const char* kLocalToHomeRequests[] = {"read", "readex", "upgr", "wb",
                                      "flush", "rdio", "wrio", "intr",
                                      "evict", "atomic", "gdone"};

/// Snoop requests from the home directory to remote nodes.
const char* kHomeToRemoteRequests[] = {"sinv", "sfetch", "sflush"};

/// Requests from the home directory to the home memory controller,
/// including the verbatim-forwarded writeback (Figure 4).
const char* kDirToMemRequests[] = {"mread", "mwrite", "mupd", "mrmw",
                                   "wb"};

/// Responses from remote nodes to home.
const char* kRemoteToHomeResponses[] = {"idone", "rdata", "fdone"};

/// Responses from the home memory controller to the home directory.
const char* kMemToDirResponses[] = {"data", "mdone", "compl"};

/// Responses from home to the local node.
const char* kHomeToLocalResponses[] = {"compl",   "data", "retry", "nack",
                                       "iodata", "iocompl", "intack"};

void assign_all(ChannelAssignment& v, const char* const* msgs, std::size_t n,
                const char* src, const char* dst, const char* vc) {
  for (std::size_t i = 0; i < n; ++i) v.assign(msgs[i], src, dst, vc);
}

template <std::size_t N>
void assign_all(ChannelAssignment& v, const char* const (&msgs)[N],
                const char* src, const char* dst, const char* vc) {
  assign_all(v, msgs, N, src, dst, vc);
}

/// The paper's section 4.2 assignment: VC0 requests local->home, VC1
/// requests home->remote, VC2 responses remote->home (and the home-internal
/// memory responses), VC3 responses home->local.
void assign_base(ChannelAssignment& v) {
  assign_all(v, kLocalToHomeRequests, "local", "home", "VC0");
  assign_all(v, kHomeToRemoteRequests, "home", "remote", "VC1");
  assign_all(v, kRemoteToHomeResponses, "remote", "home", "VC2");
  assign_all(v, kMemToDirResponses, "home", "home", "VC2");
  assign_all(v, kHomeToLocalResponses, "home", "local", "VC3");
}

}  // namespace

void add_channels(ProtocolSpec& p) {
  // V4: the initial assignment with four channels only.  Directory ->
  // memory requests share VC0 with the local->home requests; the paper
  // reports that this version produced several cycles, most involving the
  // directory and memory controllers at home.
  {
    auto& v = p.add_assignment(kAssignV4);
    assign_base(v);
    assign_all(v, kDirToMemRequests, "home", "home", "VC0");
  }

  // V5: a fifth channel VC4 is added to carry the directory -> memory
  // requests.  This is the assignment in which the paper's Figure 4
  // deadlock (the VC2 / VC4 cycle) was discovered.
  {
    auto& v = p.add_assignment(kAssignV5);
    assign_base(v);
    assign_all(v, kDirToMemRequests, "home", "home", "VC4");
  }

  // V5fix: the shipped design — directory -> memory requests move to a
  // dedicated hardware path (the paper added the path for mread; our
  // directory can also emit mupd / mwrite / forwarded wb while processing
  // responses, so the whole directory->memory port is dedicated).  With no
  // virtual channel assigned, these messages induce no channel
  // dependencies and the VC2/VC4 cycle disappears.
  {
    auto& v = p.add_assignment(kAssignV5Fix);
    assign_base(v);
  }
}

}  // namespace ccsql::asura::detail
