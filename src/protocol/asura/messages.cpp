#include "protocol/asura/asura_internal.hpp"

namespace ccsql::asura::detail {

// The ASURA protocol uses around 50 message types (paper, section 2).  The
// published ones (Figure 1 and the running examples) are reproduced with
// their published names; the remainder are synthesized to complete each
// controller's vocabulary.
void add_messages(ProtocolSpec& p) {
  auto& m = p.messages();
  const auto req = MessageClass::kRequest;
  const auto rsp = MessageClass::kResponse;

  // Processor <-> node controller (local node internal).
  m.add("prd", req, "processor read");
  m.add("pwr", req, "processor write (allocating)");
  m.add("pup", req, "processor upgrade (S -> M)");
  m.add("pwb", req, "processor-initiated writeback");
  m.add("pfl", req, "processor cache flush");
  m.add("pdata", rsp, "data delivered to processor");
  m.add("pdone", rsp, "operation completed to processor");

  // Local node -> home directory memory requests (published names).
  m.add("read", req, "read shared");
  m.add("readex", req, "read exclusive");
  m.add("upgr", req, "upgrade shared copy to exclusive");
  m.add("wb", req, "writeback of a modified line");
  m.add("flush", req, "flush line from all caches");

  // I/O transactions.
  m.add("iord", req, "device read at the local node");
  m.add("iowr", req, "device write at the local node");
  m.add("rdio", req, "uncached I/O read to home");
  m.add("wrio", req, "uncached I/O write to home");
  m.add("iodata", rsp, "I/O read data to local");
  m.add("iocompl", rsp, "I/O write completion to local");
  m.add("devdata", rsp, "I/O data to the device");
  m.add("devdone", rsp, "I/O completion to the device");

  // Interrupt / special transactions.
  m.add("pint", req, "processor interrupt dispatch");
  m.add("intr", req, "interrupt to home");
  m.add("intack", rsp, "interrupt acknowledged");
  m.add("sstate", req, "state communication between controllers");
  m.add("astate", rsp, "state communication acknowledgement");

  // Replacement hints and atomics.
  m.add("pevict", req, "processor replaces a shared line");
  m.add("evict", req, "shared-copy eviction hint to home");
  m.add("patomic", req, "processor atomic read-modify-write");
  m.add("atomic", req, "uncached atomic read-modify-write at home");
  m.add("mrmw", req, "memory read-modify-write");

  // Home directory -> remote snoops (published names).
  m.add("sinv", req, "snoop: invalidate shared copies");
  m.add("sfetch", req, "snoop: fetch data from owner, downgrade to shared");
  m.add("sflush", req, "snoop: flush owner copy (fetch + invalidate)");

  // Remote snoop engine <-> caches at the remote quad.
  m.add("cinv", req, "cache invalidate command");
  m.add("cfetch", req, "cache fetch command");
  m.add("cflush", req, "cache flush command");
  m.add("cack", rsp, "cache invalidate acknowledged");
  m.add("cdata", rsp, "cache data (downgrade)");
  m.add("cwbdata", rsp, "cache data (flush/writeback)");

  // Remote -> home responses (published names: idone).
  m.add("idone", rsp, "invalidation done");
  m.add("rdata", rsp, "remote owner data to home");
  m.add("fdone", rsp, "flush done, data to home");

  // Home directory <-> home memory (published names: mread).
  m.add("mread", req, "memory read");
  m.add("mwrite", req, "memory write");
  m.add("mupd", req, "posted memory update (no acknowledgement)");
  m.add("mdone", rsp, "memory write acknowledged");

  // Home -> local responses (published names: compl, data, retry).
  m.add("compl", rsp, "transaction completion");
  m.add("data", rsp, "memory data");
  m.add("retry", rsp, "request must be retried");
  m.add("nack", rsp, "negative acknowledgement");
  // Local -> home grant acknowledgement: the directory keeps the line busy
  // until the requester confirms it consumed a copy-installing grant, so
  // no snoop can ever overtake a grant in flight.
  m.add("gdone", rsp, "grant consumed by the requester");

  // Node controller -> cache fills / invalidations (local).
  m.add("pfill", req, "fill cache line shared");
  m.add("pfillx", req, "fill cache line exclusive");
  m.add("pinv", req, "invalidate local cache line");

  // Cache -> node controller hit/miss indications.
  m.add("hit", rsp, "cache hit");
  m.add("miss", rsp, "cache miss");

  // Node-internal: a snoop invalidation hitting a line whose writeback is
  // still in flight absorbs the writeback; the node controller is told to
  // drop the transaction (late-writeback race).
  m.add("wbcancel", req, "pending writeback absorbed by an invalidation");

  // Implementation-defined (section 5): the directory feedback request.
  m.add("Dfdback", req, "directory update feedback (implementation only)");
}

}  // namespace ccsql::asura::detail
