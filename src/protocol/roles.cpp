#include "protocol/roles.hpp"

namespace ccsql {

std::string_view to_string(QuadPlacement p) noexcept {
  switch (p) {
    case QuadPlacement::kAllDistinct:
      return "L!=H!=R";
    case QuadPlacement::kAllSame:
      return "L=H=R";
    case QuadPlacement::kLocalHome:
      return "L=H!=R";
    case QuadPlacement::kHomeRemote:
      return "L!=H=R";
    case QuadPlacement::kLocalRemote:
      return "L=R!=H";
  }
  return "?";
}

Value place_role(QuadPlacement p, Value role) {
  const Value l = roles::local(), h = roles::home(), r = roles::remote();
  switch (p) {
    case QuadPlacement::kAllDistinct:
      return role;
    case QuadPlacement::kAllSame:
      return (role == l || role == r) ? h : role;
    case QuadPlacement::kLocalHome:
      return role == l ? h : role;
    case QuadPlacement::kHomeRemote:
      return role == r ? h : role;
    case QuadPlacement::kLocalRemote:
      return role == r ? l : role;
  }
  return role;
}

}  // namespace ccsql
