#pragma once

#include <array>
#include <string_view>

#include "relational/value.hpp"

namespace ccsql {

/// Node roles of a protocol transaction (paper, Figure 2): the node that
/// initiates the request (local), the node owning the memory/directory for
/// the line (home), and the nodes that may hold cached copies (remote).
/// All message source/destination columns and the virtual channel assignment
/// table V are expressed in these roles.
namespace roles {

inline constexpr std::string_view kLocal = "local";
inline constexpr std::string_view kHome = "home";
inline constexpr std::string_view kRemote = "remote";

inline Value local() { return Symbol::intern(kLocal); }
inline Value home() { return Symbol::intern(kHome); }
inline Value remote() { return Symbol::intern(kRemote); }

inline std::array<Value, 3> all() { return {local(), home(), remote()}; }

inline bool is_role(Value v) {
  return v == local() || v == home() || v == remote();
}

}  // namespace roles

/// The five quad-placement relations of the paper (section 4.1): which of
/// the local (L), home (H) and remote (R) roles share a quad.  Dependency
/// composition is repeated under every placement, with co-located roles
/// identified.
enum class QuadPlacement {
  kAllDistinct,   // L != H != R
  kAllSame,       // L = H = R
  kLocalHome,     // L = H != R
  kHomeRemote,    // L != H = R
  kLocalRemote,   // L = R != H
};

inline constexpr std::array<QuadPlacement, 5> kAllPlacements = {
    QuadPlacement::kAllDistinct, QuadPlacement::kAllSame,
    QuadPlacement::kLocalHome, QuadPlacement::kHomeRemote,
    QuadPlacement::kLocalRemote};

std::string_view to_string(QuadPlacement p) noexcept;

/// Maps a role value to its canonical representative under `p` (co-located
/// roles map to the same representative).  Non-role values pass through.
Value place_role(QuadPlacement p, Value role);

}  // namespace ccsql
