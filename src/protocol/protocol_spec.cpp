#include "protocol/protocol_spec.hpp"

#include "relational/error.hpp"

namespace ccsql {

ProtocolSpec::ProtocolSpec(std::string name) : name_(std::move(name)) {}

ControllerSpec& ProtocolSpec::add_controller(std::string name) {
  controllers_.push_back(std::make_unique<ControllerSpec>(std::move(name)));
  return *controllers_.back();
}

const ControllerSpec& ProtocolSpec::controller(std::string_view name) const {
  for (const auto& c : controllers_) {
    if (c->name() == name) return *c;
  }
  throw BindError("unknown controller: " + std::string(name));
}

void ProtocolSpec::add_invariant(NamedInvariant inv) {
  invariants_.push_back(std::move(inv));
}

ChannelAssignment& ProtocolSpec::add_assignment(std::string name) {
  assignments_.push_back(std::make_unique<ChannelAssignment>(name));
  return *assignments_.back();
}

const ChannelAssignment& ProtocolSpec::assignment(
    std::string_view name) const {
  for (const auto& a : assignments_) {
    if (a->name() == name) return *a;
  }
  throw BindError("unknown channel assignment: " + std::string(name));
}

void ProtocolSpec::install_functions() { messages_.install(functions_); }

const Database& ProtocolSpec::database() const {
  if (!built_) {
    db_ = Database();
    messages_.install(functions_);
    // Mirror the full registry (message predicates + protocol-specific
    // functions) so WHERE clauses in invariants can use all of them.
    db_.functions() = functions_;
    for (const auto& c : controllers_) {
      db_.put(c->name(), c->generate(&functions_));
    }
    db_.put("Messages", messages_.to_table());
    built_ = true;
  }
  return db_;
}

void ProtocolSpec::invalidate() {
  built_ = false;
  for (auto& c : controllers_) c->invalidate();
}

}  // namespace ccsql
