#pragma once

#include <string>
#include <vector>

#include "relational/function_registry.hpp"
#include "relational/table.hpp"
#include "solver/generator.hpp"

namespace ccsql {

/// Declares that three columns of a controller table together describe one
/// message port: the message type, its source role, and its destination
/// role.  The deadlock analysis (section 4.1) adds one virtual-channel
/// column per triple.
struct MessageTriple {
  std::string msg;   // message-type column, e.g. "inmsg" / "remmsg"
  std::string src;   // source-role column, e.g. "inmsgsrc"
  std::string dst;   // destination-role column
  bool is_input = false;
};

/// The database input for one controller (paper, section 3): the table
/// schema, the column tables (domains) and the column constraints.  Calling
/// generate() runs the constraint solver and yields the controller table.
///
/// The spec additionally records which column triples are message ports so
/// analyses can interpret the table without protocol-specific knowledge.
class ControllerSpec {
 public:
  ControllerSpec() = default;
  explicit ControllerSpec(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Appends a column with its domain.  Columns are generated in insertion
  /// order, so put inputs first (the paper's incremental strategy).
  void add_column(Column column, Domain domain);
  void add_input(const std::string& name, std::vector<std::string> values);
  void add_output(const std::string& name, std::vector<std::string> values);

  /// Attaches constraint text to a column (see ColumnConstraint).  Multiple
  /// constraints per column are allowed and conjoined.
  void constrain(const std::string& column, std::string_view text);

  /// Declares a message port.
  void add_message_triple(MessageTriple triple);

  [[nodiscard]] const std::vector<MessageTriple>& message_triples()
      const noexcept {
    return triples_;
  }
  [[nodiscard]] const MessageTriple* input_triple() const;
  [[nodiscard]] std::vector<MessageTriple> output_triples() const;

  [[nodiscard]] const SchemaPtr& schema() const;
  [[nodiscard]] const std::vector<Domain>& domains() const noexcept {
    return input_.domains;
  }
  [[nodiscard]] const std::vector<ColumnConstraint>& constraints()
      const noexcept {
    return input_.constraints;
  }

  /// Builds the GenerationInput (schema is finalized on first call).
  [[nodiscard]] const GenerationInput& generation_input(
      const FunctionRegistry* functions) const;

  /// Solves the constraints and returns the controller table.  The result is
  /// cached; pass `trace` to observe per-column pruning on a fresh solve.
  [[nodiscard]] const Table& generate(const FunctionRegistry* functions,
                                      IncrementalTrace* trace = nullptr) const;

  /// Drops the cached table (e.g. after mutating constraints in tests).
  void invalidate() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<MessageTriple> triples_;
  mutable GenerationInput input_;
  mutable bool generated_ = false;
  mutable Table table_;
};

}  // namespace ccsql
