#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/function_registry.hpp"
#include "relational/table.hpp"
#include "relational/value.hpp"

namespace ccsql {

/// Classification of protocol messages (paper, section 2): every message is
/// either a request or a response; virtual-channel assignment and several
/// invariants depend on the class.
enum class MessageClass { kRequest, kResponse };

std::string_view to_string(MessageClass c) noexcept;

/// One protocol message type.
struct MessageDef {
  std::string name;
  MessageClass cls = MessageClass::kRequest;
  std::string description;
};

/// The protocol's message vocabulary (~50 messages in ASURA).  Also provides
/// the classification predicates (`isrequest`, `isresponse`) that constraint
/// and invariant text uses, and renders itself as a database table for
/// SQL-level inspection (Figure 1 of the paper).
class MessageCatalog {
 public:
  /// Registers a message; throws Error on duplicates.
  void add(std::string name, MessageClass cls, std::string description = "");

  [[nodiscard]] bool has(Value name) const;
  [[nodiscard]] bool is_request(Value name) const;
  [[nodiscard]] bool is_response(Value name) const;
  [[nodiscard]] std::optional<MessageClass> classify(Value name) const;
  [[nodiscard]] const std::vector<MessageDef>& all() const noexcept {
    return messages_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return messages_.size(); }

  /// Names of all messages (optionally filtered by class).
  [[nodiscard]] std::vector<std::string> names(
      std::optional<MessageClass> cls = std::nullopt) const;

  /// Registers `isrequest` / `isresponse` predicates.  The registry must not
  /// outlive this catalog.
  void install(FunctionRegistry& registry) const;

  /// The catalog as a table (name, class, description) — Figure 1.
  [[nodiscard]] Table to_table() const;

 private:
  std::vector<MessageDef> messages_;
  // Interned-name index; classification runs per candidate row during table
  // generation, so lookups must be O(1).
  std::unordered_map<Value, MessageClass> index_;
};

}  // namespace ccsql
