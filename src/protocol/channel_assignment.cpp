#include "protocol/channel_assignment.hpp"

#include <algorithm>

namespace ccsql {

void ChannelAssignment::assign(std::string_view msg, std::string_view src,
                               std::string_view dst, std::string_view vc) {
  const Key key{Symbol::intern(msg), Symbol::intern(src),
                Symbol::intern(dst)};
  const Value channel = Symbol::intern(vc);
  if (auto it = index_.find(key); it != index_.end()) {
    entries_[it->second].second = channel;
    return;
  }
  index_.emplace(key, entries_.size());
  entries_.emplace_back(key, channel);
}

void ChannelAssignment::unassign(std::string_view msg, std::string_view src,
                                 std::string_view dst) {
  const Key key{Symbol::intern(msg), Symbol::intern(src),
                Symbol::intern(dst)};
  auto it = index_.find(key);
  if (it == index_.end()) return;
  const std::size_t pos = it->second;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(pos));
  index_.erase(it);
  for (auto& [k, idx] : index_) {
    if (idx > pos) --idx;
  }
}

std::optional<Value> ChannelAssignment::vc_for(Value msg, Value src,
                                               Value dst) const {
  auto it = index_.find(Key{msg, src, dst});
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second].second;
}

std::vector<Value> ChannelAssignment::channels() const {
  std::vector<Value> out;
  for (const auto& [key, vc] : entries_) {
    if (std::find(out.begin(), out.end(), vc) == out.end()) out.push_back(vc);
  }
  return out;
}

Table ChannelAssignment::to_table() const {
  Table t(Schema::of({"m", "s", "d", "v"}));
  t.reserve_rows(entries_.size());
  for (const auto& [key, vc] : entries_) {
    t.append({key.m, key.s, key.d, vc});
  }
  return t;
}

}  // namespace ccsql
