#include "protocol/controller_spec.hpp"

#include "relational/error.hpp"

namespace ccsql {

void ControllerSpec::add_column(Column column, Domain domain) {
  if (domain.column() != column.name) {
    throw SchemaError("domain/column name mismatch: " + column.name + " vs " +
                      domain.column());
  }
  if (generated_ || input_.schema) {
    throw SchemaError("controller " + name_ +
                      ": cannot add columns after schema finalization");
  }
  columns_.push_back(std::move(column));
  input_.domains.push_back(std::move(domain));
}

void ControllerSpec::add_input(const std::string& name,
                               std::vector<std::string> values) {
  add_column({name, ColumnKind::kInput}, Domain(name, std::move(values)));
}

void ControllerSpec::add_output(const std::string& name,
                                std::vector<std::string> values) {
  add_column({name, ColumnKind::kOutput}, Domain(name, std::move(values)));
}

void ControllerSpec::constrain(const std::string& column,
                               std::string_view text) {
  try {
    input_.constraints.push_back(ColumnConstraint::from_text(column, text));
  } catch (const Error& e) {
    throw ParseError("controller " + name_ + ", column " + column + ": " +
                     e.what() + "\n  in: " + std::string(text));
  }
}

void ControllerSpec::add_message_triple(MessageTriple triple) {
  triples_.push_back(std::move(triple));
}

const MessageTriple* ControllerSpec::input_triple() const {
  for (const auto& t : triples_) {
    if (t.is_input) return &t;
  }
  return nullptr;
}

std::vector<MessageTriple> ControllerSpec::output_triples() const {
  std::vector<MessageTriple> out;
  for (const auto& t : triples_) {
    if (!t.is_input) out.push_back(t);
  }
  return out;
}

const SchemaPtr& ControllerSpec::schema() const {
  if (!input_.schema) input_.schema = make_schema(columns_);
  return input_.schema;
}

const GenerationInput& ControllerSpec::generation_input(
    const FunctionRegistry* functions) const {
  (void)schema();  // finalize
  input_.functions = functions;
  return input_;
}

const Table& ControllerSpec::generate(const FunctionRegistry* functions,
                                      IncrementalTrace* trace) const {
  if (!generated_ || trace != nullptr) {
    table_ = generate_incremental(generation_input(functions), trace);
    generated_ = true;
  }
  return table_;
}

void ControllerSpec::invalidate() const { generated_ = false; }

}  // namespace ccsql
