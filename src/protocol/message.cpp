#include "protocol/message.hpp"

#include <algorithm>

#include "relational/error.hpp"

namespace ccsql {

std::string_view to_string(MessageClass c) noexcept {
  return c == MessageClass::kRequest ? "request" : "response";
}

void MessageCatalog::add(std::string name, MessageClass cls,
                         std::string description) {
  const Value v = Symbol::intern(name);
  if (!index_.emplace(v, cls).second) {
    throw Error("duplicate message: " + name);
  }
  messages_.push_back(
      MessageDef{std::move(name), cls, std::move(description)});
}

bool MessageCatalog::has(Value name) const {
  return index_.count(name) != 0;
}

std::optional<MessageClass> MessageCatalog::classify(Value name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool MessageCatalog::is_request(Value name) const {
  return classify(name) == MessageClass::kRequest;
}

bool MessageCatalog::is_response(Value name) const {
  return classify(name) == MessageClass::kResponse;
}

std::vector<std::string> MessageCatalog::names(
    std::optional<MessageClass> cls) const {
  std::vector<std::string> out;
  for (const auto& m : messages_) {
    if (!cls || m.cls == *cls) out.push_back(m.name);
  }
  return out;
}

void MessageCatalog::install(FunctionRegistry& registry) const {
  registry.add_unary("isrequest",
                     [this](Value v) { return is_request(v); });
  registry.add_unary("isresponse",
                     [this](Value v) { return is_response(v); });
}

Table MessageCatalog::to_table() const {
  Table t(Schema::of({"message", "class", "description"}));
  t.reserve_rows(messages_.size());
  for (const auto& m : messages_) {
    t.append({Symbol::intern(m.name), Symbol::intern(to_string(m.cls)),
              Symbol::intern(m.description)});
  }
  return t;
}

}  // namespace ccsql
