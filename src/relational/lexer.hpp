#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ccsql {

/// Token kinds of the constraint / query language.
enum class TokenKind {
  kIdent,     // bare identifier (column name, value literal, function name)
  kString,    // "quoted" value literal
  kEq,        // =
  kNe,        // != or <>
  kQuestion,  // ?
  kColon,     // :
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,     // ,
  kStar,      // *
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier / string payload
  std::size_t pos = 0;  // byte offset in the source, for diagnostics
};

/// Tokenizes constraint-language text.  Identifiers may contain letters,
/// digits, '_', '.', and internal '-' (protocol state names such as
/// "Busy-sd").  Throws ParseError on an illegal character or an unterminated
/// string.
std::vector<Token> lex(std::string_view text);

}  // namespace ccsql
