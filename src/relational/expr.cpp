#include "relational/expr.hpp"

#include <algorithm>

#include "relational/error.hpp"

namespace ccsql {

Expr Expr::boolean(bool v) {
  Expr e;
  e.op_ = Op::kBool;
  e.bool_value_ = v;
  return e;
}

Expr Expr::compare(Atom lhs, bool negated, Atom rhs) {
  Expr e;
  e.op_ = Op::kCompare;
  e.negated_ = negated;
  e.atoms_ = {std::move(lhs), std::move(rhs)};
  return e;
}

Expr Expr::in(Atom lhs, bool negated, std::vector<Atom> set) {
  Expr e;
  e.op_ = Op::kIn;
  e.negated_ = negated;
  e.atoms_.reserve(set.size() + 1);
  e.atoms_.push_back(std::move(lhs));
  for (auto& a : set) e.atoms_.push_back(std::move(a));
  return e;
}

Expr Expr::conjunction(std::vector<Expr> children) {
  if (children.size() == 1) return std::move(children.front());
  Expr e;
  e.op_ = Op::kAnd;
  e.children_ = std::move(children);
  return e;
}

Expr Expr::disjunction(std::vector<Expr> children) {
  if (children.size() == 1) return std::move(children.front());
  Expr e;
  e.op_ = Op::kOr;
  e.children_ = std::move(children);
  return e;
}

Expr Expr::negation(Expr child) {
  Expr e;
  e.op_ = Op::kNot;
  e.children_.push_back(std::move(child));
  return e;
}

Expr Expr::ternary(Expr cond, Expr then_e, Expr else_e) {
  Expr e;
  e.op_ = Op::kTernary;
  e.children_ = {std::move(cond), std::move(then_e), std::move(else_e)};
  return e;
}

Expr Expr::call(std::string name, std::vector<Atom> args) {
  Expr e;
  e.op_ = Op::kCall;
  e.callee_ = std::move(name);
  e.atoms_ = std::move(args);
  return e;
}

namespace {

void collect_columns(const Expr& e, const Schema& full,
                     std::vector<std::string>& out) {
  for (const auto& a : e.atoms()) {
    if (a.kind == Atom::Kind::kIdent && full.has(a.text)) {
      if (std::find(out.begin(), out.end(), a.text) == out.end()) {
        out.push_back(a.text);
      }
    }
  }
  for (const auto& c : e.children()) collect_columns(c, full, out);
}

std::string atom_str(const Atom& a) {
  if (a.kind == Atom::Kind::kQuoted) return "\"" + a.text + "\"";
  if (a.kind == Atom::Kind::kParam) return "$" + a.text;
  return a.text;
}

void collect_param_max(const Expr& e, std::size_t& max_slot) {
  for (const auto& a : e.atoms()) {
    if (a.kind == Atom::Kind::kParam) {
      max_slot = std::max(max_slot, a.param_slot());
    }
  }
  for (const auto& c : e.children()) collect_param_max(c, max_slot);
}

Atom bind_atom(const Atom& a, const std::vector<std::string>& values) {
  if (a.kind != Atom::Kind::kParam) return a;
  const std::size_t slot = a.param_slot();
  if (slot == 0 || slot > values.size()) {
    throw BindError("bind_params: no value for parameter $" + a.text + " (" +
                    std::to_string(values.size()) + " bound)");
  }
  return Atom::quoted(values[slot - 1]);
}

}  // namespace

std::size_t Atom::param_slot() const {
  std::size_t slot = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return 0;
    slot = slot * 10 + static_cast<std::size_t>(c - '0');
  }
  return slot;
}

std::size_t Expr::param_count() const {
  std::size_t max_slot = 0;
  collect_param_max(*this, max_slot);
  return max_slot;
}

Expr Expr::bind_params(const std::vector<std::string>& values) const {
  Expr e;
  e.op_ = op_;
  e.bool_value_ = bool_value_;
  e.negated_ = negated_;
  e.callee_ = callee_;
  e.atoms_.reserve(atoms_.size());
  for (const auto& a : atoms_) e.atoms_.push_back(bind_atom(a, values));
  e.children_.reserve(children_.size());
  for (const auto& c : children_) e.children_.push_back(c.bind_params(values));
  return e;
}

std::vector<std::string> Expr::referenced_columns(const Schema& full) const {
  std::vector<std::string> out;
  collect_columns(*this, full, out);
  return out;
}

std::string Expr::to_string() const {
  switch (op_) {
    case Op::kBool:
      return bool_value_ ? "true" : "false";
    case Op::kCompare:
      return atom_str(atoms_[0]) + (negated_ ? " != " : " = ") +
             atom_str(atoms_[1]);
    case Op::kIn: {
      std::string s = atom_str(atoms_[0]);
      s += negated_ ? " not in (" : " in (";
      for (std::size_t i = 1; i < atoms_.size(); ++i) {
        if (i > 1) s += ", ";
        s += atom_str(atoms_[i]);
      }
      return s + ")";
    }
    case Op::kAnd:
    case Op::kOr: {
      std::string s = "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) s += op_ == Op::kAnd ? " and " : " or ";
        s += children_[i].to_string();
      }
      return s + ")";
    }
    case Op::kNot:
      return "not " + children_[0].to_string();
    case Op::kTernary:
      return "(" + children_[0].to_string() + " ? " +
             children_[1].to_string() + " : " + children_[2].to_string() + ")";
    case Op::kCall: {
      std::string s = callee_ + "(";
      for (std::size_t i = 0; i < atoms_.size(); ++i) {
        if (i > 0) s += ", ";
        s += atom_str(atoms_[i]);
      }
      return s + ")";
    }
  }
  return "?";
}

// ---- Compilation -----------------------------------------------------------

/// Compiled node: a small closed hierarchy evaluated by virtual dispatch.
/// Operand references are pre-resolved to column indices or constant values.
struct CompiledExpr::Node {
  virtual ~Node() = default;
  [[nodiscard]] virtual bool eval(RowView row) const = 0;
};

namespace {

/// A resolved operand: either a column index or a constant value.
struct Operand {
  bool is_column = false;
  std::size_t index = 0;
  Value value;

  [[nodiscard]] Value get(RowView row) const {
    return is_column ? row[index] : value;
  }
};

using NodePtr = std::shared_ptr<const CompiledExpr::Node>;

struct BoolNode final : CompiledExpr::Node {
  bool value;
  explicit BoolNode(bool v) : value(v) {}
  bool eval(RowView) const override { return value; }
};

struct CompareNode final : CompiledExpr::Node {
  Operand lhs, rhs;
  bool negated;
  bool eval(RowView row) const override {
    return (lhs.get(row) == rhs.get(row)) != negated;
  }
};

struct InNode final : CompiledExpr::Node {
  Operand lhs;
  std::vector<Operand> set;
  bool negated;
  bool eval(RowView row) const override {
    const Value v = lhs.get(row);
    bool found = false;
    for (const auto& s : set) {
      if (s.get(row) == v) {
        found = true;
        break;
      }
    }
    return found != negated;
  }
};

struct AndNode final : CompiledExpr::Node {
  std::vector<NodePtr> children;
  bool eval(RowView row) const override {
    for (const auto& c : children) {
      if (!c->eval(row)) return false;
    }
    return true;
  }
};

struct OrNode final : CompiledExpr::Node {
  std::vector<NodePtr> children;
  bool eval(RowView row) const override {
    for (const auto& c : children) {
      if (c->eval(row)) return true;
    }
    return false;
  }
};

struct NotNode final : CompiledExpr::Node {
  NodePtr child;
  bool eval(RowView row) const override { return !child->eval(row); }
};

struct TernaryNode final : CompiledExpr::Node {
  NodePtr cond, then_n, else_n;
  bool eval(RowView row) const override {
    return cond->eval(row) ? then_n->eval(row) : else_n->eval(row);
  }
};

struct CallNode final : CompiledExpr::Node {
  const FunctionRegistry::Predicate* fn = nullptr;
  std::vector<Operand> args;
  bool eval(RowView row) const override {
    std::vector<Value> vals;
    vals.reserve(args.size());
    for (const auto& a : args) vals.push_back(a.get(row));
    return (*fn)(std::span<const Value>(vals));
  }
};

struct Compiler {
  const Schema& row_schema;
  const Schema& full_schema;
  const FunctionRegistry* functions;

  Operand operand(const Atom& a) const {
    if (a.kind == Atom::Kind::kParam) {
      throw BindError("unbound parameter $" + a.text +
                      " (prepare and bind before compiling)");
    }
    Operand op;
    if (a.kind == Atom::Kind::kIdent && full_schema.has(a.text)) {
      op.is_column = true;
      op.index = row_schema.index_of(a.text);  // throws if not bound yet
      return op;
    }
    op.value = Symbol::intern(a.text);
    return op;
  }

  NodePtr build(const Expr& e) const {
    switch (e.op()) {
      case Expr::Op::kBool:
        return std::make_shared<BoolNode>(e.bool_value());
      case Expr::Op::kCompare: {
        auto n = std::make_shared<CompareNode>();
        n->lhs = operand(e.atoms()[0]);
        n->rhs = operand(e.atoms()[1]);
        n->negated = e.negated();
        return n;
      }
      case Expr::Op::kIn: {
        auto n = std::make_shared<InNode>();
        n->lhs = operand(e.atoms()[0]);
        for (std::size_t i = 1; i < e.atoms().size(); ++i) {
          n->set.push_back(operand(e.atoms()[i]));
        }
        n->negated = e.negated();
        return n;
      }
      case Expr::Op::kAnd: {
        auto n = std::make_shared<AndNode>();
        for (const auto& c : e.children()) n->children.push_back(build(c));
        return n;
      }
      case Expr::Op::kOr: {
        auto n = std::make_shared<OrNode>();
        for (const auto& c : e.children()) n->children.push_back(build(c));
        return n;
      }
      case Expr::Op::kNot: {
        auto n = std::make_shared<NotNode>();
        n->child = build(e.children()[0]);
        return n;
      }
      case Expr::Op::kTernary: {
        auto n = std::make_shared<TernaryNode>();
        n->cond = build(e.children()[0]);
        n->then_n = build(e.children()[1]);
        n->else_n = build(e.children()[2]);
        return n;
      }
      case Expr::Op::kCall: {
        auto n = std::make_shared<CallNode>();
        if (functions == nullptr || !functions->has(e.callee())) {
          throw BindError("unknown function: " + e.callee());
        }
        n->fn = functions->find(e.callee());
        for (const auto& a : e.atoms()) n->args.push_back(operand(a));
        return n;
      }
    }
    throw BindError("unreachable expression op");
  }
};

}  // namespace

bool CompiledExpr::eval(RowView row) const { return root_->eval(row); }

std::function<bool(RowView)> CompiledExpr::predicate() const {
  auto root = root_;
  return [root](RowView row) { return root->eval(row); };
}

CompiledExpr compile(const Expr& expr, const Schema& row_schema,
                     const Schema& full_schema,
                     const FunctionRegistry* functions) {
  Compiler c{row_schema, full_schema, functions};
  CompiledExpr out;
  out.root_ = c.build(expr);
  return out;
}

}  // namespace ccsql
