#pragma once

#include <functional>
#include <span>
#include <string>
#include <unordered_map>

#include "relational/value.hpp"

namespace ccsql {

/// Named boolean predicates usable in constraint expressions, e.g. the
/// paper's `isrequest(inmsg)`.  Protocols register their own predicates
/// (typically classification of the message catalog) and hand the registry
/// to the expression compiler.
class FunctionRegistry {
 public:
  /// A predicate over already-evaluated argument values.
  using Predicate = std::function<bool(std::span<const Value>)>;

  /// Registers (or replaces) a predicate under `name`.
  void add(std::string name, Predicate fn);

  /// Convenience: registers a unary predicate.
  void add_unary(std::string name, std::function<bool(Value)> fn);

  /// Returns the predicate, or nullptr if unknown.
  [[nodiscard]] const Predicate* find(const std::string& name) const;

  [[nodiscard]] bool has(const std::string& name) const {
    return find(name) != nullptr;
  }

 private:
  std::unordered_map<std::string, Predicate> fns_;
};

}  // namespace ccsql
