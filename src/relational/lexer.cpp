#include "relational/lexer.hpp"

#include <cctype>

#include "relational/error.hpp"

namespace ccsql {
namespace {

bool is_ident_start(char c) {
  // Digits may start identifiers: bare value literals such as `1` or `16`
  // appear in constraints (column names conventionally start with a letter).
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

std::vector<Token> lex(std::string_view text) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto push = [&](TokenKind k, std::string t, std::size_t pos) {
    out.push_back(Token{k, std::move(t), pos});
  };
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t pos = i;
    switch (c) {
      case '=':
        push(TokenKind::kEq, "=", pos);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kNe, "!=", pos);
          i += 2;
          continue;
        }
        throw ParseError("lex: stray '!' at offset " + std::to_string(pos));
      case '<':
        if (i + 1 < n && text[i + 1] == '>') {
          push(TokenKind::kNe, "<>", pos);
          i += 2;
          continue;
        }
        throw ParseError("lex: stray '<' at offset " + std::to_string(pos));
      case '?':
        push(TokenKind::kQuestion, "?", pos);
        ++i;
        continue;
      case ':':
        push(TokenKind::kColon, ":", pos);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, "(", pos);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, ")", pos);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, "[", pos);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, "]", pos);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, ",", pos);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, "*", pos);
        ++i;
        continue;
      case '"': {
        std::size_t j = i + 1;
        while (j < n && text[j] != '"') ++j;
        if (j >= n) {
          throw ParseError("lex: unterminated string at offset " +
                           std::to_string(pos));
        }
        push(TokenKind::kString, std::string(text.substr(i + 1, j - i - 1)),
             pos);
        i = j + 1;
        continue;
      }
      case '$': {
        // Parameter placeholder: $1, $2, ... ('?' is taken by the ternary).
        std::size_t j = i + 1;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
        if (j == i + 1) {
          throw ParseError("lex: '$' must be followed by a parameter number "
                           "at offset " +
                           std::to_string(pos));
        }
        push(TokenKind::kIdent, std::string(text.substr(i, j - i)), pos);
        i = j;
        continue;
      }
      default:
        break;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n) {
        if (is_ident_char(text[j])) {
          ++j;
        } else if (text[j] == '-' && j + 1 < n && is_ident_char(text[j + 1])) {
          // internal dash, as in "Busy-sd"
          j += 2;
        } else {
          break;
        }
      }
      push(TokenKind::kIdent, std::string(text.substr(i, j - i)), pos);
      i = j;
      continue;
    }
    throw ParseError(std::string("lex: unexpected character '") + c +
                     "' at offset " + std::to_string(pos));
  }
  push(TokenKind::kEnd, "", n);
  return out;
}

}  // namespace ccsql
