#include "relational/domain.hpp"

#include <algorithm>

namespace ccsql {

Domain::Domain(std::string column, std::vector<std::string> values)
    : column_(std::move(column)) {
  values_.reserve(values.size());
  for (const auto& v : values) add(Symbol::intern(v));
}

Domain::Domain(std::string column, std::vector<Value> values)
    : column_(std::move(column)) {
  values_.reserve(values.size());
  for (Value v : values) add(v);
}

bool Domain::contains(Value v) const noexcept {
  return std::find(values_.begin(), values_.end(), v) != values_.end();
}

Domain Domain::with_null() const {
  if (contains(null_value())) return *this;
  Domain d;
  d.column_ = column_;
  d.values_.reserve(values_.size() + 1);
  d.values_.push_back(null_value());
  d.values_.insert(d.values_.end(), values_.begin(), values_.end());
  return d;
}

void Domain::add(Value v) {
  if (!contains(v)) values_.push_back(v);
}

}  // namespace ccsql
