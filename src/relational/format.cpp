#include "relational/format.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

#include "relational/error.hpp"

namespace ccsql {

std::string to_ascii(const Table& t, std::size_t max_rows) {
  const std::size_t ncol = t.column_count();
  const std::size_t nrow = t.row_count();
  const std::size_t shown =
      (max_rows == 0 || nrow <= max_rows) ? nrow : max_rows;

  std::vector<std::size_t> widths(ncol);
  for (std::size_t c = 0; c < ncol; ++c) {
    widths[c] = t.schema().column(c).name.size();
  }
  // Column-first: one span per column, indexed per row below.
  std::vector<ColumnView> cols(ncol);
  for (std::size_t c = 0; c < ncol; ++c) cols[c] = t.column(c);
  auto cell = [&](std::size_t r, std::size_t c) -> std::string {
    const Value v = cols[c][r];
    return v.is_null() ? std::string("-") : std::string(v.str());
  };
  for (std::size_t r = 0; r < shown; ++r) {
    for (std::size_t c = 0; c < ncol; ++c) {
      widths[c] = std::max(widths[c], cell(r, c).size());
    }
  }

  std::ostringstream os;
  auto pad = [&](const std::string& s, std::size_t w) {
    os << s << std::string(w - s.size() + 2, ' ');
  };
  for (std::size_t c = 0; c < ncol; ++c) {
    pad(t.schema().column(c).name, widths[c]);
  }
  os << '\n';
  for (std::size_t c = 0; c < ncol; ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << '\n';
  for (std::size_t r = 0; r < shown; ++r) {
    for (std::size_t c = 0; c < ncol; ++c) pad(cell(r, c), widths[c]);
    os << '\n';
  }
  if (shown < nrow) {
    os << "... (" << (nrow - shown) << " more rows)\n";
  }
  return os.str();
}

std::string to_csv(const Table& t) {
  std::ostringstream os;
  const std::size_t ncol = t.column_count();
  for (std::size_t c = 0; c < ncol; ++c) {
    if (c > 0) os << ',';
    os << t.schema().column(c).name;
  }
  os << '\n';
  std::vector<ColumnView> cols(ncol);
  for (std::size_t c = 0; c < ncol; ++c) cols[c] = t.column(c);
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    for (std::size_t c = 0; c < ncol; ++c) {
      if (c > 0) os << ',';
      const Value v = cols[c][r];
      if (!v.is_null()) os << v.str();
    }
    os << '\n';
  }
  return os.str();
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

Table from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line)) throw ParseError("from_csv: empty document");
  Table t(Schema::of(split_csv_line(line)));
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto cells = split_csv_line(line);
    if (cells.size() != t.column_count()) {
      throw ParseError("from_csv: row arity mismatch");
    }
    t.append_texts(cells);
  }
  return t;
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << to_ascii(t);
}

}  // namespace ccsql
