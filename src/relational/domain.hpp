#pragma once

#include <string>
#include <vector>

#include "relational/value.hpp"

namespace ccsql {

/// A "column table" (paper, section 3): the set of values that are legal in
/// one column of a controller table.  Per the paper every column table also
/// contains the special NULL value, denoting don't-care for input columns
/// and no-op for output columns; call with_null() to add it.
class Domain {
 public:
  Domain() = default;

  /// Builds a domain over the given value texts (interned in order).
  Domain(std::string column, std::vector<std::string> values);

  /// Builds a domain over pre-interned values.
  Domain(std::string column, std::vector<Value> values);

  [[nodiscard]] const std::string& column() const noexcept { return column_; }
  [[nodiscard]] const std::vector<Value>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool contains(Value v) const noexcept;

  /// Returns a copy with NULL prepended (if not already present).
  [[nodiscard]] Domain with_null() const;

  /// Appends `v` if not already present.
  void add(Value v);

 private:
  std::string column_;
  std::vector<Value> values_;
};

}  // namespace ccsql
