#include "relational/symbol.hpp"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace ccsql {
namespace {

/// Process-wide intern pool.  A deque keeps the stored strings at stable
/// addresses so string_views handed out by Symbol::str() never dangle.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::uint32_t intern(std::string_view text) {
    {
      std::shared_lock lock(mu_);
      if (auto it = index_.find(text); it != index_.end()) return it->second;
    }
    std::unique_lock lock(mu_);
    if (auto it = index_.find(text); it != index_.end()) return it->second;
    strings_.emplace_back(text);
    const auto id = static_cast<std::uint32_t>(strings_.size() - 1);
    index_.emplace(strings_.back(), id);
    return id;
  }

  std::uint32_t lookup(std::string_view text) const noexcept {
    std::shared_lock lock(mu_);
    if (auto it = index_.find(text); it != index_.end()) return it->second;
    return 0;
  }

  std::string_view str(std::uint32_t id) const noexcept {
    std::shared_lock lock(mu_);
    return strings_[id];
  }

  std::size_t size() const noexcept {
    std::shared_lock lock(mu_);
    return strings_.size();
  }

 private:
  Pool() {
    strings_.emplace_back("NULL");
    index_.emplace(strings_.back(), 0u);
  }

  mutable std::shared_mutex mu_;
  std::deque<std::string> strings_;
  // Keys view into strings_, which never relocates entries.
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace

Symbol Symbol::intern(std::string_view text) {
  if (text.empty() || text == "NULL") return Symbol{};
  Symbol s;
  s.id_ = Pool::instance().intern(text);
  return s;
}

Symbol Symbol::lookup(std::string_view text) noexcept {
  Symbol s;
  s.id_ = Pool::instance().lookup(text);
  return s;
}

std::string_view Symbol::str() const noexcept {
  return Pool::instance().str(id_);
}

std::size_t Symbol::pool_size() noexcept { return Pool::instance().size(); }

}  // namespace ccsql
