#include "relational/bytecode.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <string_view>

#include "obs/obs.hpp"
#include "relational/error.hpp"

namespace ccsql {
namespace {

std::atomic<bool>& bytecode_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CCSQL_NO_BYTECODE");
    const bool off =
        env != nullptr && env[0] != '\0' && std::string_view(env) != "0";
    return !off;
  }();
  return flag;
}

/// Extends `out` by `extra` slots and returns a pointer to the first new
/// slot.  The batch kernels write unconditionally through this pointer and
/// advance a cursor only for accepted rows ("branchless selection"), then
/// trim with shrink_to().
std::uint32_t* grow(bc::Sel& out, std::size_t extra) {
  const std::size_t base = out.size();
  out.resize(base + extra);
  return out.data() + base;
}

void shrink_to(bc::Sel& out, const std::uint32_t* end) {
  out.resize(static_cast<std::size_t>(end - out.data()));
}

/// Appends the members of `sel` not present in `sub` (sub is a sorted
/// subsequence of sel) to `out` — the selection-vector complement used by
/// NOT, the OR remainder, and the ternary's else branch.
void complement(std::span<const std::uint32_t> sel, const bc::Sel& sub,
                bc::Sel& out) {
  std::uint32_t* dst = grow(out, sel.size());
  const std::uint32_t* s = sub.data();
  const std::uint32_t* s_end = s + sub.size();
  for (std::uint32_t i : sel) {
    const bool drop = s != s_end && *s == i;
    s += drop;
    *dst = i;
    dst += !drop;
  }
  shrink_to(out, dst);
}

/// Sorted disjoint merge of `a` and `b` appended to `out`.
void merge_into(const bc::Sel& a, const bc::Sel& b, bc::Sel& out) {
  std::uint32_t* dst = grow(out, a.size() + b.size());
  std::uint32_t* end =
      std::merge(a.begin(), a.end(), b.begin(), b.end(), dst);
  shrink_to(out, end);
}

/// complement() against the implicit dense selection [begin, end).
void complement_range(std::uint32_t begin, std::uint32_t end,
                      const bc::Sel& sub, bc::Sel& out) {
  std::uint32_t* dst = grow(out, end - begin);
  const std::uint32_t* s = sub.data();
  const std::uint32_t* s_end = s + sub.size();
  for (std::uint32_t i = begin; i < end; ++i) {
    const bool drop = s != s_end && *s == i;
    s += drop;
    *dst = i;
    dst += !drop;
  }
  shrink_to(out, dst);
}

/// Appends begin..end-1 to `out`.
void append_iota(std::uint32_t begin, std::uint32_t end, bc::Sel& out) {
  std::uint32_t* dst = grow(out, end - begin);
  for (std::uint32_t i = begin; i < end; ++i) *dst++ = i;
}

}  // namespace

bool bytecode_enabled() {
  return bytecode_flag().load(std::memory_order_relaxed);
}

void set_bytecode_enabled(bool enabled) {
  bytecode_flag().store(enabled, std::memory_order_relaxed);
}

namespace bc {

// ---- evaluation -------------------------------------------------------------

struct Program::NodeEval {
  const Program& p;
  const Value* const* cols = nullptr;  // one base pointer per schema column
  Scratch* scratch = nullptr;

  [[nodiscard]] bool call_at(const Insn& in, std::uint32_t i) const {
    Value inline_args[8];
    std::vector<Value> heap_args;
    Value* args = inline_args;
    if (in.argc > 8) {
      heap_args.resize(in.argc);
      args = heap_args.data();
    }
    for (std::uint32_t k = 0; k < in.argc; ++k) {
      args[k] = p.operands_[in.args + k].get_at(cols, i);
    }
    return (*in.fn)(std::span<const Value>(args, in.argc));
  }

  // -- batch ------------------------------------------------------------------

  /// Appends the members of `sel` accepted by the subtree rooted at insn
  /// `r` to `out`, preserving ascending order.
  // NOLINTNEXTLINE(misc-no-recursion)
  void run(std::uint32_t r, std::span<const std::uint32_t> sel,
           Sel& out) const {
    // The ternary hands each branch only its side of the condition split,
    // which can be empty — and cmp_batch's dense-batch detection reads
    // sel.front()/sel.back(), so the empty selection must stop here.
    if (sel.empty()) return;
    const Insn& in = p.insns_[r];
    switch (in.op) {
      case Op::kConst:
        if (in.imm) out.insert(out.end(), sel.begin(), sel.end());
        return;
      case Op::kCmp:
        cmp_batch(in, sel, out);
        return;
      case Op::kIn: {
        std::uint32_t* dst = grow(out, sel.size());
        const Operand* members = p.operands_.data() + in.args;
        const std::uint32_t argc = in.argc;
        const bool neg = in.negated;
        const Operand& lhs = p.operands_[in.a];
        for (std::uint32_t i : sel) {
          const Value v = lhs.get_at(cols, i);
          bool found = false;
          for (std::uint32_t k = 0; k < argc; ++k) {
            found |= members[k].get_at(cols, i) == v;
          }
          *dst = i;
          dst += found != neg;
        }
        shrink_to(out, dst);
        return;
      }
      case Op::kCall: {
        std::uint32_t* dst = grow(out, sel.size());
        for (std::uint32_t i : sel) {
          *dst = i;
          dst += call_at(in, i);
        }
        shrink_to(out, dst);
        return;
      }
      case Op::kAnd: {
        if (in.argc == 0) {  // vacuous conjunction: everything passes
          out.insert(out.end(), sel.begin(), sel.end());
          return;
        }
        // Refine the selection conjunct by conjunct; later conjuncts only
        // ever see rows every earlier conjunct accepted.
        Sel& a = scratch->acquire();
        Sel& b = scratch->acquire();
        std::span<const std::uint32_t> cur = sel;
        for (std::uint32_t k = 0; k + 1 < in.argc; ++k) {
          Sel& dst = (cur.data() == a.data()) ? b : a;
          dst.clear();
          run(p.roots_[in.args + k], cur, dst);
          cur = dst;
          if (cur.empty()) break;
        }
        if (!cur.empty()) run(p.roots_[in.args + in.argc - 1], cur, out);
        scratch->release(2);
        return;
      }
      case Op::kOr: {
        // Later disjuncts only see rows every earlier disjunct rejected;
        // accepted sets are disjoint, so the union is a sorted merge.
        Sel& rem = scratch->acquire();
        Sel& next_rem = scratch->acquire();
        Sel& hit = scratch->acquire();
        Sel& acc = scratch->acquire();
        Sel& merged = scratch->acquire();
        rem.assign(sel.begin(), sel.end());
        for (std::uint32_t k = 0; k < in.argc && !rem.empty(); ++k) {
          hit.clear();
          run(p.roots_[in.args + k], rem, hit);
          if (hit.empty()) continue;
          merged.clear();
          merge_into(acc, hit, merged);
          acc.swap(merged);
          next_rem.clear();
          complement(rem, hit, next_rem);
          rem.swap(next_rem);
        }
        out.insert(out.end(), acc.begin(), acc.end());
        scratch->release(5);
        return;
      }
      case Op::kNot: {
        Sel& hit = scratch->acquire();
        run(p.roots_[in.args], sel, hit);
        complement(sel, hit, out);
        scratch->release();
        return;
      }
      case Op::kTernary: {
        Sel& cond = scratch->acquire();
        Sel& rest = scratch->acquire();
        Sel& then_hit = scratch->acquire();
        Sel& else_hit = scratch->acquire();
        run(p.roots_[in.args], sel, cond);
        complement(sel, cond, rest);
        run(p.roots_[in.args + 1], cond, then_hit);
        run(p.roots_[in.args + 2], rest, else_hit);
        merge_into(then_hit, else_hit, out);
        scratch->release(4);
        return;
      }
    }
  }

  /// Dense-range twin of run(): evaluates the subtree over the implicit
  /// selection {begin, ..., end-1}, so the first full-width pass of every
  /// predicate is a sequential strided loop — no index materialisation, no
  /// gather.  Refined (sparse) selections drop down to run().
  // NOLINTNEXTLINE(misc-no-recursion)
  void run_range(std::uint32_t r, std::uint32_t begin, std::uint32_t end,
                 Sel& out) const {
    if (begin >= end) return;
    const Insn& in = p.insns_[r];
    switch (in.op) {
      case Op::kConst:
        if (in.imm) append_iota(begin, end, out);
        return;
      case Op::kCmp:
        cmp_range(in, begin, end, out);
        return;
      case Op::kIn: {
        std::uint32_t* dst = grow(out, end - begin);
        const Operand* members = p.operands_.data() + in.args;
        const std::uint32_t argc = in.argc;
        const bool neg = in.negated;
        const Operand& lhs = p.operands_[in.a];
        for (std::uint32_t i = begin; i < end; ++i) {
          const Value v = lhs.get_at(cols, i);
          bool found = false;
          for (std::uint32_t k = 0; k < argc; ++k) {
            found |= members[k].get_at(cols, i) == v;
          }
          *dst = i;
          dst += found != neg;
        }
        shrink_to(out, dst);
        return;
      }
      case Op::kCall: {
        std::uint32_t* dst = grow(out, end - begin);
        for (std::uint32_t i = begin; i < end; ++i) {
          *dst = i;
          dst += call_at(in, i);
        }
        shrink_to(out, dst);
        return;
      }
      case Op::kAnd: {
        if (in.argc == 0) {
          append_iota(begin, end, out);
          return;
        }
        if (in.argc == 1) {
          run_range(p.roots_[in.args], begin, end, out);
          return;
        }
        Sel& a = scratch->acquire();
        Sel& b = scratch->acquire();
        run_range(p.roots_[in.args], begin, end, a);
        std::span<const std::uint32_t> cur = a;
        for (std::uint32_t k = 1; k + 1 < in.argc && !cur.empty(); ++k) {
          Sel& dst = (cur.data() == a.data()) ? b : a;
          dst.clear();
          run(p.roots_[in.args + k], cur, dst);
          cur = dst;
        }
        if (!cur.empty()) run(p.roots_[in.args + in.argc - 1], cur, out);
        scratch->release(2);
        return;
      }
      case Op::kOr: {
        if (in.argc == 0) return;  // vacuous disjunction: nothing passes
        Sel& rem = scratch->acquire();
        Sel& next_rem = scratch->acquire();
        Sel& hit = scratch->acquire();
        Sel& acc = scratch->acquire();
        Sel& merged = scratch->acquire();
        run_range(p.roots_[in.args], begin, end, acc);
        complement_range(begin, end, acc, rem);
        for (std::uint32_t k = 1; k < in.argc && !rem.empty(); ++k) {
          hit.clear();
          run(p.roots_[in.args + k], rem, hit);
          if (hit.empty()) continue;
          merged.clear();
          merge_into(acc, hit, merged);
          acc.swap(merged);
          next_rem.clear();
          complement(rem, hit, next_rem);
          rem.swap(next_rem);
        }
        out.insert(out.end(), acc.begin(), acc.end());
        scratch->release(5);
        return;
      }
      case Op::kNot: {
        Sel& hit = scratch->acquire();
        run_range(p.roots_[in.args], begin, end, hit);
        complement_range(begin, end, hit, out);
        scratch->release();
        return;
      }
      case Op::kTernary: {
        Sel& cond = scratch->acquire();
        Sel& rest = scratch->acquire();
        Sel& then_hit = scratch->acquire();
        Sel& else_hit = scratch->acquire();
        run_range(p.roots_[in.args], begin, end, cond);
        complement_range(begin, end, cond, rest);
        run(p.roots_[in.args + 1], cond, then_hit);
        run(p.roots_[in.args + 2], rest, else_hit);
        merge_into(then_hit, else_hit, out);
        scratch->release(4);
        return;
      }
    }
  }

  /// Dense-range twin of cmp_batch: stride-1 sequential loops over the
  /// referenced columns — columnar storage makes the hot leaf a contiguous
  /// scan of exactly the cells the predicate names.
  void cmp_range(const Insn& in, std::uint32_t begin, std::uint32_t end,
                 Sel& out) const {
    const Operand& l = p.operands_[in.a];
    const Operand& r = p.operands_[in.b];
    const bool neg = in.negated;
    if (!l.is_column && !r.is_column) {
      if ((l.value == r.value) != neg) append_iota(begin, end, out);
      return;
    }
    std::uint32_t* dst = grow(out, end - begin);
    if (l.is_column != r.is_column) {
      const Value* col = cols[l.is_column ? l.column : r.column];
      const Value c = l.is_column ? r.value : l.value;
      for (std::uint32_t i = begin; i < end; ++i) {
        *dst = i;
        dst += (col[i] == c) != neg;
      }
    } else {
      const Value* ca = cols[l.column];
      const Value* cb = cols[r.column];
      for (std::uint32_t i = begin; i < end; ++i) {
        *dst = i;
        dst += (ca[i] == cb[i]) != neg;
      }
    }
    shrink_to(out, dst);
  }

  /// The hot leaf: specialised branchless loops per operand shape, no
  /// dispatch inside.
  void cmp_batch(const Insn& in, std::span<const std::uint32_t> sel,
                 Sel& out) const {
    const Operand& l = p.operands_[in.a];
    const Operand& r = p.operands_[in.b];
    const bool neg = in.negated;
    if (!l.is_column && !r.is_column) {
      if ((l.value == r.value) != neg) {
        out.insert(out.end(), sel.begin(), sel.end());
      }
      return;
    }
    std::uint32_t* dst = grow(out, sel.size());
    // A dense batch degenerates to the stride-1 range loop; only refined
    // (sparse) selections pay the per-index gather.
    const bool dense =
        sel.back() - sel.front() + 1 == static_cast<std::uint32_t>(sel.size());
    if (l.is_column != r.is_column) {
      const Value* col = cols[l.is_column ? l.column : r.column];
      const Value c = l.is_column ? r.value : l.value;
      if (dense) {
        for (std::uint32_t i = sel.front(); i <= sel.back(); ++i) {
          *dst = i;
          dst += (col[i] == c) != neg;
        }
      } else {
        for (std::uint32_t i : sel) {
          *dst = i;
          dst += (col[i] == c) != neg;
        }
      }
    } else {
      const Value* ca = cols[l.column];
      const Value* cb = cols[r.column];
      if (dense) {
        for (std::uint32_t i = sel.front(); i <= sel.back(); ++i) {
          *dst = i;
          dst += (ca[i] == cb[i]) != neg;
        }
      } else {
        for (std::uint32_t i : sel) {
          *dst = i;
          dst += (ca[i] == cb[i]) != neg;
        }
      }
    }
    shrink_to(out, dst);
  }
};

bool Program::eval(RowView row) const {
  // Postfix pays off here: children precede parents and each subtree leaves
  // exactly one value, so one linear pass over insns_ with a bool stack
  // evaluates the whole program — no recursion, no child-root chasing.
  // (Unlike the interpreted walk this does not short-circuit; predicates
  // are pure, so only timing can differ, never the result.)
  if (insns_.empty()) return false;  // uncompiled program
  bool inline_stack[64];
  std::unique_ptr<bool[]> heap_stack;
  bool* stack = inline_stack;
  if (insns_.size() > 64) {
    heap_stack = std::make_unique<bool[]>(insns_.size());
    stack = heap_stack.get();
  }
  std::size_t sp = 0;
  auto call = [&](const Insn& in) {
    Value inline_args[8];
    std::vector<Value> heap_args;
    Value* args = inline_args;
    if (in.argc > 8) {
      heap_args.resize(in.argc);
      args = heap_args.data();
    }
    for (std::uint32_t k = 0; k < in.argc; ++k) {
      args[k] = operands_[in.args + k].get(row);
    }
    return (*in.fn)(std::span<const Value>(args, in.argc));
  };
  for (const Insn& in : insns_) {
    switch (in.op) {
      case Op::kConst:
        stack[sp++] = in.imm;
        break;
      case Op::kCmp:
        stack[sp++] = (operands_[in.a].get(row) == operands_[in.b].get(row)) !=
                      in.negated;
        break;
      case Op::kIn: {
        const Value v = operands_[in.a].get(row);
        bool found = false;
        for (std::uint32_t k = 0; k < in.argc; ++k) {
          found |= operands_[in.args + k].get(row) == v;
        }
        stack[sp++] = found != in.negated;
        break;
      }
      case Op::kCall:
        stack[sp++] = call(in);
        break;
      case Op::kAnd: {
        bool v = true;
        for (std::uint32_t k = 0; k < in.argc; ++k) v &= stack[sp - in.argc + k];
        sp -= in.argc;
        stack[sp++] = v;
        break;
      }
      case Op::kOr: {
        bool v = false;
        for (std::uint32_t k = 0; k < in.argc; ++k) v |= stack[sp - in.argc + k];
        sp -= in.argc;
        stack[sp++] = v;
        break;
      }
      case Op::kNot:
        stack[sp - 1] = !stack[sp - 1];
        break;
      case Op::kTernary: {
        const bool else_v = stack[--sp];
        const bool then_v = stack[--sp];
        const bool cond_v = stack[--sp];
        stack[sp++] = cond_v ? then_v : else_v;
        break;
      }
    }
  }
  return stack[0];
}

void Program::eval_batch(std::span<const Value* const> cols,
                         std::span<const std::uint32_t> sel, Sel& out,
                         Scratch& scratch) const {
  out.clear();
  if (sel.empty()) return;
  NodeEval ev{*this, cols.data(), &scratch};
  ev.run(static_cast<std::uint32_t>(insns_.size() - 1), sel, out);
}

void Program::eval_range(std::span<const Value* const> cols,
                         std::uint32_t begin, std::uint32_t end, Sel& out,
                         Scratch& scratch) const {
  out.clear();
  if (begin >= end) return;
  NodeEval ev{*this, cols.data(), &scratch};
  ev.run_range(static_cast<std::uint32_t>(insns_.size() - 1), begin, end, out);
}

std::size_t Program::columns_read() const {
  std::vector<std::uint32_t> seen;
  for (const Operand& op : operands_) {
    if (!op.is_column) continue;
    if (std::find(seen.begin(), seen.end(), op.column) == seen.end()) {
      seen.push_back(op.column);
    }
  }
  return seen.size();
}

}  // namespace bc

// ---- compilation ------------------------------------------------------------

namespace {

struct BcCompiler {
  const Schema& row_schema;
  const Schema& full_schema;
  const FunctionRegistry* functions;
  bc::Program& out;

  std::vector<bc::Insn>& insns;
  std::vector<bc::Operand>& operands;
  std::vector<std::uint32_t>& roots;

  std::uint32_t operand(const Atom& a) const {
    if (a.kind == Atom::Kind::kParam) {
      throw BindError("unbound parameter $" + a.text +
                      " (prepare and bind before compiling)");
    }
    bc::Operand op;
    if (a.kind == Atom::Kind::kIdent && full_schema.has(a.text)) {
      op.is_column = true;
      op.column = static_cast<std::uint32_t>(
          row_schema.index_of(a.text));  // throws if not bound yet
    } else {
      op.value = Symbol::intern(a.text);
    }
    operands.push_back(op);
    return static_cast<std::uint32_t>(operands.size() - 1);
  }

  std::uint32_t emit(bc::Insn in) const {
    insns.push_back(in);
    return static_cast<std::uint32_t>(insns.size() - 1);
  }

  /// Appends the subtree of `e` in postfix order; returns its root index.
  // NOLINTNEXTLINE(misc-no-recursion)
  std::uint32_t build(const Expr& e) const {
    bc::Insn in;
    switch (e.op()) {
      case Expr::Op::kBool:
        in.op = bc::Op::kConst;
        in.imm = e.bool_value();
        return emit(in);
      case Expr::Op::kCompare:
        in.op = bc::Op::kCmp;
        in.negated = e.negated();
        in.a = operand(e.atoms()[0]);
        in.b = operand(e.atoms()[1]);
        return emit(in);
      case Expr::Op::kIn: {
        in.op = bc::Op::kIn;
        in.negated = e.negated();
        in.a = operand(e.atoms()[0]);
        in.args = static_cast<std::uint32_t>(operands.size());
        in.argc = static_cast<std::uint32_t>(e.atoms().size() - 1);
        for (std::size_t i = 1; i < e.atoms().size(); ++i) {
          operand(e.atoms()[i]);
        }
        return emit(in);
      }
      case Expr::Op::kCall: {
        if (functions == nullptr || !functions->has(e.callee())) {
          throw BindError("unknown function: " + e.callee());
        }
        in.op = bc::Op::kCall;
        in.fn = functions->find(e.callee());
        in.args = static_cast<std::uint32_t>(operands.size());
        in.argc = static_cast<std::uint32_t>(e.atoms().size());
        for (const Atom& a : e.atoms()) operand(a);
        return emit(in);
      }
      case Expr::Op::kAnd:
      case Expr::Op::kOr:
      case Expr::Op::kNot:
      case Expr::Op::kTernary: {
        std::vector<std::uint32_t> child_roots;
        child_roots.reserve(e.children().size());
        for (const Expr& c : e.children()) child_roots.push_back(build(c));
        switch (e.op()) {
          case Expr::Op::kAnd:
            in.op = bc::Op::kAnd;
            break;
          case Expr::Op::kOr:
            in.op = bc::Op::kOr;
            break;
          case Expr::Op::kNot:
            in.op = bc::Op::kNot;
            break;
          default:
            in.op = bc::Op::kTernary;
            break;
        }
        in.args = static_cast<std::uint32_t>(roots.size());
        in.argc = static_cast<std::uint32_t>(child_roots.size());
        roots.insert(roots.end(), child_roots.begin(), child_roots.end());
        return emit(in);
      }
    }
    throw BindError("unreachable expression op");
  }
};

}  // namespace

bc::Program compile_bytecode(const Expr& expr, const Schema& row_schema,
                             const Schema& full_schema,
                             const FunctionRegistry* functions) {
  bc::Program out;
  BcCompiler c{row_schema, full_schema, functions, out,
               out.insns_,  out.operands_, out.roots_};
  (void)c.build(expr);
  CCSQL_COUNT("bytecode.programs_compiled", 1);
  return out;
}

}  // namespace ccsql
