#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace ccsql {

/// An interned string.
///
/// All values stored in tables, all column names, and all literals appearing
/// in constraints are interned in a process-wide pool so that rows can be
/// stored and compared as fixed-width integers.  Symbol id 0 is reserved for
/// SQL NULL (see Value); user strings always intern to ids >= 1.
///
/// Interning is thread-safe; lookups of already-interned strings take a
/// shared lock only.
class Symbol {
 public:
  /// Constructs the reserved NULL symbol.
  constexpr Symbol() noexcept : id_(0) {}

  /// Interns `text` and returns its symbol.  Interning the same text twice
  /// yields equal symbols.  The empty string and the literal text "NULL" both
  /// intern to the reserved NULL symbol.
  static Symbol intern(std::string_view text);

  /// Returns the symbol for `text` if it has been interned before, otherwise
  /// the NULL symbol.  Never allocates.
  static Symbol lookup(std::string_view text) noexcept;

  /// The interned text.  NULL renders as "NULL".
  [[nodiscard]] std::string_view str() const noexcept;

  [[nodiscard]] constexpr bool is_null() const noexcept { return id_ == 0; }
  [[nodiscard]] constexpr std::uint32_t id() const noexcept { return id_; }

  friend constexpr bool operator==(Symbol a, Symbol b) noexcept {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(Symbol a, Symbol b) noexcept {
    return a.id_ != b.id_;
  }
  /// Orders by interning id (stable within a process run, not alphabetical).
  friend constexpr bool operator<(Symbol a, Symbol b) noexcept {
    return a.id_ < b.id_;
  }

  /// Total number of distinct symbols interned so far (including NULL).
  static std::size_t pool_size() noexcept;

 private:
  constexpr explicit Symbol(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

}  // namespace ccsql

template <>
struct std::hash<ccsql::Symbol> {
  std::size_t operator()(ccsql::Symbol s) const noexcept {
    return std::hash<std::uint32_t>{}(s.id());
  }
};
