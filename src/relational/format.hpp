#pragma once

#include <iosfwd>
#include <string>

#include "relational/table.hpp"

namespace ccsql {

/// Renders `t` as an aligned ASCII table (column header row, separator,
/// one line per row).  NULL cells render as '-' to match the paper's
/// figures.  `max_rows` truncates long tables (0 = no limit).
std::string to_ascii(const Table& t, std::size_t max_rows = 0);

/// Renders `t` as CSV (header + rows, NULL as empty cell).
std::string to_csv(const Table& t);

/// Parses a CSV document produced by to_csv back into a table (all columns
/// kInput).  Intended for golden-file tests, not a general CSV reader.
Table from_csv(const std::string& csv);

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace ccsql
