#include "relational/schema.hpp"

#include <algorithm>

#include "relational/error.hpp"

namespace ccsql {

std::string_view to_string(ColumnKind kind) noexcept {
  switch (kind) {
    case ColumnKind::kInput:
      return "input";
    case ColumnKind::kOutput:
      return "output";
    case ColumnKind::kMeta:
      return "meta";
  }
  return "?";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    for (std::size_t j = i + 1; j < columns_.size(); ++j) {
      if (columns_[i].name == columns_[j].name) {
        throw SchemaError("duplicate column name: " + columns_[i].name);
      }
    }
  }
}

std::shared_ptr<const Schema> Schema::of(std::vector<std::string> names) {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (auto& n : names) cols.push_back(Column{std::move(n)});
  return std::make_shared<const Schema>(std::move(cols));
}

std::optional<std::size_t> Schema::find(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

std::size_t Schema::index_of(std::string_view name) const {
  if (auto i = find(name)) return *i;
  throw BindError("unknown column: " + std::string(name));
}

bool Schema::same_names(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name) return false;
  }
  return true;
}

std::shared_ptr<const Schema> Schema::extended(Column column) const {
  if (has(column.name)) {
    throw SchemaError("column already exists: " + column.name);
  }
  auto cols = columns_;
  cols.push_back(std::move(column));
  return std::make_shared<const Schema>(std::move(cols));
}

std::shared_ptr<const Schema> Schema::project(
    const std::vector<std::string>& names) const {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const auto& n : names) cols.push_back(columns_[index_of(n)]);
  return std::make_shared<const Schema>(std::move(cols));
}

std::shared_ptr<const Schema> Schema::renamed(std::string_view from,
                                              std::string_view to) const {
  auto cols = columns_;
  cols[index_of(from)].name = std::string(to);
  return std::make_shared<const Schema>(std::move(cols));
}

SchemaPtr make_schema(std::vector<Column> columns) {
  return std::make_shared<const Schema>(std::move(columns));
}

}  // namespace ccsql
