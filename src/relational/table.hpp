#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/mem.hpp"
#include "relational/schema.hpp"
#include "relational/value.hpp"

namespace ccsql {

/// A read-only view of one row of a table.
using RowView = std::span<const Value>;

/// A tuple of symbol ids packed for hashing: the key type of secondary
/// indexes, join probes, and row deduplication.  Values are already interned
/// 32-bit ids, so up to four of them pack into two inline words (no heap
/// traffic for the common 1-4 column keys); wider tuples spill the remainder
/// into an overflow vector.  Equality always compares the full tuple; the
/// hash is the packed word for short keys and an FNV-1a mix otherwise.
///
/// Keys of different arities may collide structurally (a NULL id is 0), but
/// every map is keyed by tuples of one fixed arity, so this never matters.
class TupleKey {
 public:
  TupleKey() = default;

  /// Key of the given cells of `row`, in `cols` order.
  static TupleKey of_row(RowView row, std::span<const std::size_t> cols);
  /// Key of an explicit tuple (same encoding as of_row).
  static TupleKey of_values(std::span<const Value> key);

  [[nodiscard]] std::size_t hash() const noexcept;

  friend bool operator==(const TupleKey& a, const TupleKey& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_ && a.overflow_ == b.overflow_;
  }

 private:
  void set(std::size_t pos, std::uint32_t id);

  std::uint64_t lo_ = 0;  // ids 0-1, packed high-to-low
  std::uint64_t hi_ = 0;  // ids 2-3
  std::vector<std::uint32_t> overflow_;  // ids 4+
};

struct TupleKeyHash {
  std::size_t operator()(const TupleKey& k) const noexcept { return k.hash(); }
};

/// An in-memory relation: an ordered multiset of fixed-width rows over a
/// shared immutable Schema.  This is the database-table substrate on which
/// the whole methodology runs: controller tables, column tables, dependency
/// tables and implementation tables are all instances of Table.
///
/// Storage is row-major and flat; rows are spans into it, so iteration is
/// cache-friendly and copying a table is a single vector copy.
class Table {
 public:
  /// An empty table over an empty schema.  Note this still has zero rows;
  /// use Table::unit() for the 0-column, 1-row identity of cross products.
  Table() : schema_(std::make_shared<const Schema>()) {}

  explicit Table(SchemaPtr schema);

  /// The 0-column table with a single (empty) row: the identity element of
  /// cross(), used to seed incremental table generation.
  static Table unit();

  [[nodiscard]] const Schema& schema() const noexcept { return *schema_; }
  [[nodiscard]] const SchemaPtr& schema_ptr() const noexcept {
    return schema_;
  }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return schema_->size();
  }
  [[nodiscard]] std::size_t row_count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] RowView row(std::size_t i) const noexcept {
    return RowView(data_.data() + i * width(), width());
  }
  [[nodiscard]] Value at(std::size_t row, std::size_t col) const noexcept {
    return data_[row * width() + col];
  }
  [[nodiscard]] Value at(std::size_t row, std::string_view col) const {
    return at(row, schema_->index_of(col));
  }

  /// Appends a row; throws SchemaError if the arity does not match.
  void append(RowView row);
  void append(std::initializer_list<Value> row);
  /// Appends the row given as value texts (interned on the fly).
  void append_texts(const std::vector<std::string>& texts);

  void reserve_rows(std::size_t n);

  // ---- Relational algebra ------------------------------------------------
  // All operations return new tables; none mutate the receiver.

  /// sigma: rows satisfying `pred`.
  [[nodiscard]] Table select(
      const std::function<bool(RowView)>& pred) const;

  /// pi: the named columns, in the given order.  If `distinct`, duplicate
  /// result rows are removed (SELECT DISTINCT).
  [[nodiscard]] Table project(const std::vector<std::string>& names,
                              bool distinct = true) const;

  /// Removes duplicate rows, keeping first occurrences in order.
  [[nodiscard]] Table distinct() const;

  /// Cartesian product; column names must be disjoint.
  [[nodiscard]] static Table cross(const Table& a, const Table& b);

  /// Multiset union; schemas must have identical column names/order.
  [[nodiscard]] static Table union_all(const Table& a, const Table& b);

  /// Set union (duplicates removed).
  [[nodiscard]] static Table union_distinct(const Table& a, const Table& b);

  /// Set difference a \ b.
  [[nodiscard]] static Table difference(const Table& a, const Table& b);

  /// Natural join: rows of `a` and `b` agreeing on all columns common to
  /// both schemas; result columns are a's columns followed by b's
  /// non-common columns.  Throws SchemaError when the schemas share no
  /// column.
  [[nodiscard]] static Table natural_join(const Table& a, const Table& b);

  /// Renames one column.
  [[nodiscard]] Table renamed(std::string_view from,
                              std::string_view to) const;

  /// Reorders/renames columns to match `schema` by position (arity must
  /// match); used to align tables before union/difference.
  [[nodiscard]] Table with_schema(SchemaPtr schema) const;

  // ---- Set queries ---------------------------------------------------------

  /// True if `r` occurs in this table.
  [[nodiscard]] bool contains(RowView r) const;

  /// True if every row of `other` occurs in this table (both projected to
  /// their common order; schemas must have identical names).  This is the
  /// paper's "reconstructed table contains the original debugged table"
  /// check.
  [[nodiscard]] bool contains_all(const Table& other) const;

  /// True if both tables hold the same set of rows (duplicates ignored).
  [[nodiscard]] bool set_equal(const Table& other) const;

  /// Rows sorted lexicographically by symbol id (canonical order for
  /// deterministic output and comparisons).
  [[nodiscard]] Table sorted() const;

  /// Rows sorted by the given columns' textual values (SQL ORDER BY).
  [[nodiscard]] Table sorted_by(const std::vector<std::string>& columns) const;

  // ---- Secondary indexes ---------------------------------------------------

  /// A hash index over a column set: key tuple (encoded by index_key) to the
  /// row indices holding it, in table order.  Keys are packed symbol-id
  /// tuples (TupleKey), not strings: probing never formats or allocates for
  /// keys of up to four columns.
  using IndexMap =
      std::unordered_map<TupleKey, std::vector<std::size_t>, TupleKeyHash>;

  /// Encodes the given cells of a row as an index probe key.
  static TupleKey index_key(RowView row, std::span<const std::size_t> cols) {
    return TupleKey::of_row(row, cols);
  }
  /// Encodes an explicit key tuple (same format as the row overload).
  static TupleKey index_key(std::span<const Value> key) {
    return TupleKey::of_values(key);
  }

  /// Lazily-built secondary index keyed by the named columns.  Built on
  /// first use and cached on the table (appending invalidates the cache);
  /// copies of a table share the already-built indexes.  Used by the query
  /// planner for point-lookup selects and hash-join build sides.
  ///
  /// Thread-safe: concurrent callers may race to build the same index, but
  /// exactly one result is cached and all callers see a consistent map.
  /// The build itself runs outside the cache lock, so a pool worker building
  /// an index can still help with other pool tasks.  `jobs` > 1 partitions
  /// the build across the pool; per-key row lists stay in ascending table
  /// order (partitions are merged in row order), so results are identical
  /// at any jobs value.
  const IndexMap& index_on(const std::vector<std::string>& columns,
                           std::size_t jobs = 1) const;
  const IndexMap& index_on(const std::vector<std::size_t>& columns,
                           std::size_t jobs = 1) const;

  /// True if index_on(columns) has already been built (observability).
  [[nodiscard]] bool has_cached_index(
      const std::vector<std::size_t>& columns) const;

  // ---- Memory accounting ---------------------------------------------------

  /// Approximate heap footprint of the row storage (capacity, not size —
  /// the bytes actually held).  Schema and index cache are not included.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return data_.capacity() * sizeof(Value);
  }

  /// Approximate heap footprint of a secondary index: bucket array plus
  /// per-key node and row-list storage.  O(keys).
  [[nodiscard]] static std::size_t index_memory_bytes(const IndexMap& index);

 private:
  [[nodiscard]] std::size_t width() const noexcept {
    // A 0-column table still needs a nonzero stride of 0 handled specially;
    // row_count() accounts for it via unit_rows_.
    return schema_->size();
  }

  void check_same_names(const Table& other) const;

  [[nodiscard]] IndexMap build_index(const std::vector<std::size_t>& columns,
                                     std::size_t jobs) const;

  /// Drops the index cache before a mutation.  A copy sharing the cache
  /// keeps the old (still valid for its rows) indexes; this table starts
  /// a fresh cache on next use.
  void invalidate_indexes() noexcept {
    if (index_cache_) index_cache_.reset();
  }

  /// A built index plus the MemTracker reservation covering it.  The
  /// reservation lives in the shared cache map, so the bytes release when
  /// the last table copy drops (or invalidates) the cache — copies sharing
  /// the cache never double-count.
  struct CachedIndex {
    IndexMap map;
    obs::MemReservation mem;
  };

  SchemaPtr schema_;
  std::vector<Value> data_;
  // Number of rows when width()==0 (data_ cannot encode them).
  std::size_t unit_rows_ = 0;
  // Secondary indexes by column-index set, built lazily.  Shared between
  // copies (rows are identical until one of them mutates, which resets only
  // that copy's pointer).
  mutable std::shared_ptr<std::map<std::vector<std::size_t>, CachedIndex>>
      index_cache_;
};

}  // namespace ccsql
