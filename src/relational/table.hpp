#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iterator>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/mem.hpp"
#include "relational/schema.hpp"
#include "relational/value.hpp"

namespace ccsql {

class Table;

/// A contiguous read-only view of one column of a table: the primary
/// data-access shape of the engine (DESIGN.md section 13).  Scans, joins,
/// projections and the bytecode batch kernels all read column spans; rows
/// exist only as a compatibility gather (RowView).
using ColumnView = std::span<const Value>;

/// A read-only view of one row.
///
/// Storage is column-major, so a row is no longer contiguous memory: this is
/// a gather *proxy* — `operator[]` reads cell j out of column j — kept for
/// cold consumers (per-row predicates, tests, formatting).  Hot paths should
/// iterate columns instead (Table::column / QueryResult::column); treat the
/// per-row path as deprecated for bulk work (DESIGN.md section 13).
///
/// A RowView can also wrap a flat contiguous buffer (a temporary row being
/// assembled, the solver's odometer row), which is what the old span-typed
/// RowView was; both shapes evaluate identically.
class RowView {
 public:
  constexpr RowView() = default;
  /// Flat contiguous row (temporary buffers, odometer rows).
  constexpr RowView(const Value* data, std::size_t n) : flat_(data), n_(n) {}
  // NOLINTNEXTLINE(google-explicit-constructor): span compatibility
  constexpr RowView(std::span<const Value> s)
      : flat_(s.data()), n_(s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  RowView(const std::vector<Value>& v) : flat_(v.data()), n_(v.size()) {}
  /// Row `row` of a columnar table (the gather path).
  inline RowView(const Table& t, std::size_t row) noexcept;

  [[nodiscard]] constexpr std::size_t size() const noexcept { return n_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] inline Value operator[](std::size_t j) const noexcept;
  [[nodiscard]] Value front() const noexcept { return (*this)[0]; }
  [[nodiscard]] Value back() const noexcept { return (*this)[n_ - 1]; }

  /// Value-copying random-access iterator (cells are 4-byte ids; there is
  /// no contiguous memory to point into on the columnar side).  Carries the
  /// view's representation by value, so it stays valid after the temporary
  /// RowView it came from is gone.
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Value;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Value;

    iterator() = default;
    iterator(const Table* t, const Value* flat, std::size_t row,
             std::size_t i)
        : t_(t), flat_(flat), row_(row), i_(i) {}
    inline Value operator*() const noexcept;
    Value operator[](difference_type d) const noexcept {
      return *(*this + d);
    }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++i_;
      return t;
    }
    iterator& operator--() {
      --i_;
      return *this;
    }
    iterator operator--(int) {
      iterator t = *this;
      --i_;
      return t;
    }
    iterator& operator+=(difference_type d) {
      i_ += static_cast<std::size_t>(d);
      return *this;
    }
    iterator& operator-=(difference_type d) {
      i_ -= static_cast<std::size_t>(d);
      return *this;
    }
    friend iterator operator+(iterator it, difference_type d) {
      return it += d;
    }
    friend iterator operator+(difference_type d, iterator it) {
      return it += d;
    }
    friend iterator operator-(iterator it, difference_type d) {
      return it -= d;
    }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.i_ != b.i_;
    }
    friend bool operator<(const iterator& a, const iterator& b) {
      return a.i_ < b.i_;
    }

   private:
    const Table* t_ = nullptr;
    const Value* flat_ = nullptr;
    std::size_t row_ = 0;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const noexcept {
    return {table_, flat_, row_, 0};
  }
  [[nodiscard]] iterator end() const noexcept {
    return {table_, flat_, row_, n_};
  }

 private:
  const Table* table_ = nullptr;  // columnar source (else flat_)
  const Value* flat_ = nullptr;
  std::size_t row_ = 0;
  std::size_t n_ = 0;
};

/// A tuple of symbol ids packed for hashing: the key type of secondary
/// indexes, join probes, and row deduplication.  Values are already interned
/// 32-bit ids, so up to four of them pack into two inline words (no heap
/// traffic for the common 1-4 column keys); wider tuples spill the remainder
/// into an overflow vector.  Equality always compares the full tuple; the
/// hash is the packed word for short keys and an FNV-1a mix otherwise.
///
/// Keys of different arities may collide structurally (a NULL id is 0), but
/// every map is keyed by tuples of one fixed arity, so this never matters.
class TupleKey {
 public:
  TupleKey() = default;

  /// Key of the given cells of `row`, in `cols` order.
  static TupleKey of_row(RowView row, std::span<const std::size_t> cols);
  /// Key of an explicit tuple (same encoding as of_row).
  static TupleKey of_values(std::span<const Value> key);

  [[nodiscard]] std::size_t hash() const noexcept;

  /// Heap bytes held by an overflow (arity > 4) key; 0 for inline keys.
  /// MemTracker's index accounting adds this per cached key.
  [[nodiscard]] std::size_t heap_bytes() const noexcept {
    return overflow_.capacity() * sizeof(std::uint32_t);
  }

  friend bool operator==(const TupleKey& a, const TupleKey& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_ && a.overflow_ == b.overflow_;
  }

 private:
  friend class Table;  // batch (column-at-a-time) key building

  void set(std::size_t pos, std::uint32_t id);

  std::uint64_t lo_ = 0;  // ids 0-1, packed high-to-low
  std::uint64_t hi_ = 0;  // ids 2-3
  std::vector<std::uint32_t> overflow_;  // ids 4+
};

struct TupleKeyHash {
  std::size_t operator()(const TupleKey& k) const noexcept { return k.hash(); }
};

/// A hash index over a column set: key tuple to the row indices holding it,
/// ascending.  Keys are packed symbol-id tuples, not strings: probing never
/// formats or allocates for keys of up to four columns.
using IndexMap =
    std::unordered_map<TupleKey, std::vector<std::size_t>, TupleKeyHash>;

/// True (the default) when hash joins should use the radix-partitioned
/// build+probe (JoinIndex with >1 partition on large build sides).
/// CCSQL_NO_RADIX=1 (or set_radix_join_enabled(false)) forces every join
/// index down to a single partition — the differential-test configuration.
[[nodiscard]] bool radix_join_enabled();
void set_radix_join_enabled(bool enabled);

/// A radix-partitioned hash index: build-side rows are scattered into
/// 2^bits partitions by the low bits of their key hash, and each partition
/// is an independent IndexMap built in parallel (no serial merge).  Probes
/// route by the same bits, so each lookup touches one cache-resident
/// partition.  With bits == 0 this is exactly the old single hash index;
/// row lists stay ascending at any partition count and any jobs value, so
/// probe output is byte-identical across configurations.
class JoinIndex {
 public:
  JoinIndex() : parts_(1) {}

  /// Builds over the given columns of `t`; partition count is chosen from
  /// the row count (1 below the radix threshold or when radix is disabled).
  /// `jobs` > 1 parallelizes both the partition scatter and the per-
  /// partition map builds on the pool.
  static JoinIndex build(const Table& t, std::span<const std::size_t> cols,
                         std::size_t jobs);

  /// The build rows holding `k`, ascending; nullptr when absent.
  [[nodiscard]] const std::vector<std::size_t>* find(
      const TupleKey& k) const noexcept {
    const IndexMap& m = parts_[k.hash() & mask_];
    auto it = m.find(k);
    return it == m.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t partitions() const noexcept {
    return parts_.size();
  }
  [[nodiscard]] std::size_t key_count() const noexcept;
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_; }
  /// Approximate heap footprint (buckets, key nodes incl. overflow spill,
  /// row lists) — the MemTracker kIndexes reservation backing the cache.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  std::vector<IndexMap> parts_;  // power-of-two count
  std::size_t mask_ = 0;
  std::size_t rows_ = 0;
};

/// An in-memory relation: an ordered multiset of fixed-width rows over a
/// shared immutable Schema.  This is the database-table substrate on which
/// the whole methodology runs: controller tables, column tables, dependency
/// tables and implementation tables are all instances of Table.
///
/// Storage is column-major: one shared, contiguous Value vector per column.
/// Copying a table shares every column (a few shared_ptr copies); mutation
/// is copy-on-write per column, so catalog snapshots freeze columns, not
/// tables, and operators that keep a column intact (projection, renaming,
/// LIMIT heads) share it outright instead of copying rows.
class Table {
 public:
  /// An empty table over an empty schema.  Note this still has zero rows;
  /// use Table::unit() for the 0-column, 1-row identity of cross products.
  Table() : schema_(std::make_shared<const Schema>()) {}

  explicit Table(SchemaPtr schema);

  /// The 0-column table with a single (empty) row: the identity element of
  /// cross(), used to seed incremental table generation.
  static Table unit();

  [[nodiscard]] const Schema& schema() const noexcept { return *schema_; }
  [[nodiscard]] const SchemaPtr& schema_ptr() const noexcept {
    return schema_;
  }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return schema_->size();
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  // ---- Column access (the primary API) -------------------------------------

  /// Column `j` as a contiguous span of `row_count()` cells.
  [[nodiscard]] ColumnView column(std::size_t j) const noexcept {
    return ColumnView(cols_[j]->data(), rows_);
  }
  [[nodiscard]] ColumnView column(std::string_view name) const {
    return column(schema_->index_of(name));
  }
  /// Raw cell pointer of column `j` — what the bytecode batch kernels and
  /// gather loops read.  Valid for row indices [0, row_count()).
  [[nodiscard]] const Value* column_data(std::size_t j) const noexcept {
    return cols_[j]->data();
  }
  /// One base pointer per schema column, in order — the argument shape of
  /// bc::Program::eval_batch/eval_range.  Pointers stay valid while this
  /// table (or any table sharing its columns) is alive and unmutated.
  [[nodiscard]] std::vector<const Value*> column_ptrs() const {
    std::vector<const Value*> ptrs(cols_.size());
    for (std::size_t j = 0; j < cols_.size(); ++j) ptrs[j] = cols_[j]->data();
    return ptrs;
  }

  // ---- Row access (compatibility gather path) ------------------------------

  [[nodiscard]] RowView row(std::size_t i) const noexcept {
    return RowView(*this, i);
  }
  [[nodiscard]] Value at(std::size_t row, std::size_t col) const noexcept {
    return (*cols_[col])[row];
  }
  [[nodiscard]] Value at(std::size_t row, std::string_view col) const {
    return at(row, schema_->index_of(col));
  }

  /// Forward row iteration adapter: `for (RowView r : t.rows())`.
  class RowRange {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = RowView;
      using difference_type = std::ptrdiff_t;

      iterator(const Table* t, std::size_t i) : t_(t), i_(i) {}
      RowView operator*() const noexcept { return t_->row(i_); }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      iterator operator++(int) {
        iterator t = *this;
        ++i_;
        return t;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.i_ == b.i_;
      }
      friend bool operator!=(const iterator& a, const iterator& b) {
        return a.i_ != b.i_;
      }

     private:
      const Table* t_;
      std::size_t i_;
    };
    explicit RowRange(const Table* t) : t_(t) {}
    [[nodiscard]] iterator begin() const { return {t_, 0}; }
    [[nodiscard]] iterator end() const { return {t_, t_->row_count()}; }

   private:
    const Table* t_;
  };
  [[nodiscard]] RowRange rows() const noexcept { return RowRange(this); }

  // ---- Mutation ------------------------------------------------------------

  /// Appends a row; throws SchemaError if the arity does not match.
  void append(RowView row);
  void append(std::initializer_list<Value> row);
  /// Appends the row given as value texts (interned on the fly).
  void append_texts(const std::vector<std::string>& texts);

  void reserve_rows(std::size_t n);

  // ---- Relational algebra ------------------------------------------------
  // All operations return new tables; none mutate the receiver.

  /// sigma: rows satisfying `pred`.
  [[nodiscard]] Table select(
      const std::function<bool(RowView)>& pred) const;

  /// pi: the named columns, in the given order.  If `distinct`, duplicate
  /// result rows are removed (SELECT DISTINCT).  A non-distinct projection
  /// copies no cells at all: the result shares the selected column vectors.
  [[nodiscard]] Table project(const std::vector<std::string>& names,
                              bool distinct = true) const;

  /// Removes duplicate rows, keeping first occurrences in order.
  [[nodiscard]] Table distinct() const;

  /// The given rows of this table, in `sel` order, as a new table.  The
  /// column-at-a-time gather every selecting operator (filter, join,
  /// sort, limit) funnels through.
  [[nodiscard]] Table gather(std::span<const std::uint32_t> sel) const;

  /// First min(n, row_count()) rows.  O(columns): shares column storage.
  [[nodiscard]] Table head(std::size_t n) const;

  /// Cartesian product; column names must be disjoint.
  [[nodiscard]] static Table cross(const Table& a, const Table& b);

  /// Horizontal concatenation: a's columns followed by b's, under `schema`
  /// (arity must equal a.width + b.width; row counts must match).  Shares
  /// column storage with both inputs — the hash join's output assembler.
  [[nodiscard]] static Table hcat(SchemaPtr schema, const Table& a,
                                  const Table& b);

  /// Multiset union; schemas must have identical column names/order.
  [[nodiscard]] static Table union_all(const Table& a, const Table& b);

  /// Set union (duplicates removed).
  [[nodiscard]] static Table union_distinct(const Table& a, const Table& b);

  /// Set difference a \ b.
  [[nodiscard]] static Table difference(const Table& a, const Table& b);

  /// Natural join: rows of `a` and `b` agreeing on all columns common to
  /// both schemas; result columns are a's columns followed by b's
  /// non-common columns.  Throws SchemaError when the schemas share no
  /// column.
  [[nodiscard]] static Table natural_join(const Table& a, const Table& b);

  /// Renames one column.
  [[nodiscard]] Table renamed(std::string_view from,
                              std::string_view to) const;

  /// Reorders/renames columns to match `schema` by position (arity must
  /// match); used to align tables before union/difference.
  [[nodiscard]] Table with_schema(SchemaPtr schema) const;

  // ---- Set queries ---------------------------------------------------------

  /// True if `r` occurs in this table.
  [[nodiscard]] bool contains(RowView r) const;

  /// True if every row of `other` occurs in this table (both projected to
  /// their common order; schemas must have identical names).  This is the
  /// paper's "reconstructed table contains the original debugged table"
  /// check.
  [[nodiscard]] bool contains_all(const Table& other) const;

  /// True if both tables hold the same set of rows (duplicates ignored).
  [[nodiscard]] bool set_equal(const Table& other) const;

  /// Rows sorted lexicographically by symbol id (canonical order for
  /// deterministic output and comparisons).
  [[nodiscard]] Table sorted() const;

  /// Rows sorted by the given columns' textual values (SQL ORDER BY).
  [[nodiscard]] Table sorted_by(const std::vector<std::string>& columns) const;

  // ---- Secondary indexes ---------------------------------------------------

  using IndexMap = ccsql::IndexMap;

  /// Encodes the given cells of a row as an index probe key.
  static TupleKey index_key(RowView row, std::span<const std::size_t> cols) {
    return TupleKey::of_row(row, cols);
  }
  /// Encodes an explicit key tuple (same format as the row overload).
  static TupleKey index_key(std::span<const Value> key) {
    return TupleKey::of_values(key);
  }

  /// Packs rows [begin, end) restricted to `cols` into out[0 .. end-begin),
  /// column at a time (one sequential pass per key column, no row gather).
  /// `out` must hold default-constructed keys.  This is the batch form of
  /// index_key that index builds, joins, and distinct all use.
  void build_keys(std::span<const std::size_t> cols, std::size_t begin,
                  std::size_t end, TupleKey* out) const;

  /// Lazily-built secondary index keyed by the named columns.  Built on
  /// first use and cached on the table (appending invalidates the cache);
  /// copies of a table share the already-built indexes.  Used by the query
  /// planner for point-lookup selects.
  ///
  /// Thread-safe: concurrent callers may race to build the same index, but
  /// exactly one result is cached and all callers see a consistent map.
  /// The build itself runs outside the cache lock, so a pool worker building
  /// an index can still help with other pool tasks.  `jobs` > 1 partitions
  /// the build across the pool; per-key row lists stay in ascending table
  /// order (partitions are merged in row order), so results are identical
  /// at any jobs value.
  const IndexMap& index_on(const std::vector<std::string>& columns,
                           std::size_t jobs = 1) const;
  const IndexMap& index_on(const std::vector<std::size_t>& columns,
                           std::size_t jobs = 1) const;

  /// Lazily-built radix-partitioned join index over the named columns —
  /// the hash-join build side (cached and shared like index_on).
  const JoinIndex& join_index_on(const std::vector<std::size_t>& columns,
                                 std::size_t jobs = 1) const;

  /// True if index_on(columns) has already been built (observability).
  [[nodiscard]] bool has_cached_index(
      const std::vector<std::size_t>& columns) const;
  /// True if join_index_on(columns) has already been built.
  [[nodiscard]] bool has_cached_join_index(
      const std::vector<std::size_t>& columns) const;

  // ---- Memory accounting ---------------------------------------------------

  /// Approximate heap footprint of the column storage referenced by this
  /// table (per-column capacity, not size).  Columns shared copy-on-write
  /// with other tables are counted by every holder, mirroring the
  /// MemReservation copy semantics.  Schema and index cache not included.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t bytes = cols_.capacity() * sizeof(ColumnPtr);
    for (const auto& c : cols_) bytes += c->capacity() * sizeof(Value);
    return bytes;
  }

  /// Approximate heap footprint of a secondary index: bucket array plus
  /// per-key node (including TupleKey overflow spill) and row-list
  /// storage.  O(keys).
  [[nodiscard]] static std::size_t index_memory_bytes(const IndexMap& index);

 private:
  friend class RowView;
  friend RowView::iterator;
  friend class JoinIndex;

  using ColumnData = std::vector<Value>;
  using ColumnPtr = std::shared_ptr<ColumnData>;

  [[nodiscard]] std::size_t width() const noexcept { return schema_->size(); }

  /// Column `j`, uniquely owned and trimmed to row_count(), ready to
  /// mutate.  Clones a column shared with another table (COW) or one with
  /// a tail beyond row_count() (a shared LIMIT head).
  ColumnData& mut_col(std::size_t j);

  void check_same_names(const Table& other) const;

  [[nodiscard]] IndexMap build_index(const std::vector<std::size_t>& columns,
                                     std::size_t jobs) const;

  /// Drops the index caches before a mutation.  A copy sharing the caches
  /// keeps the old (still valid for its rows) indexes; this table starts
  /// fresh caches on next use.
  void invalidate_indexes() noexcept {
    if (index_cache_) index_cache_.reset();
    if (join_cache_) join_cache_.reset();
  }

  /// A built index plus the MemTracker reservation covering it.  The
  /// reservation lives in the shared cache map, so the bytes release when
  /// the last table copy drops (or invalidates) the cache — copies sharing
  /// the cache never double-count.
  struct CachedIndex {
    IndexMap map;
    obs::MemReservation mem;
  };
  struct CachedJoin {
    JoinIndex index;
    obs::MemReservation mem;
  };

  SchemaPtr schema_;
  // One shared column vector per schema column; each holds >= rows_ cells
  // (a shared LIMIT head leaves a tail that mut_col trims on first write).
  std::vector<ColumnPtr> cols_;
  std::size_t rows_ = 0;
  // Secondary indexes by column-index set, built lazily.  Shared between
  // copies (rows are identical until one of them mutates, which resets only
  // that copy's pointer).
  mutable std::shared_ptr<std::map<std::vector<std::size_t>, CachedIndex>>
      index_cache_;
  mutable std::shared_ptr<std::map<std::vector<std::size_t>, CachedJoin>>
      join_cache_;
};

inline RowView::RowView(const Table& t, std::size_t row) noexcept
    : table_(&t), row_(row), n_(t.column_count()) {}

inline Value RowView::operator[](std::size_t j) const noexcept {
  return table_ != nullptr ? (*table_->cols_[j])[row_] : flat_[j];
}

inline Value RowView::iterator::operator*() const noexcept {
  return t_ != nullptr ? (*t_->cols_[i_])[row_] : flat_[i_];
}

}  // namespace ccsql
