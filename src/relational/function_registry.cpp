#include "relational/function_registry.hpp"

namespace ccsql {

void FunctionRegistry::add(std::string name, Predicate fn) {
  fns_[std::move(name)] = std::move(fn);
}

void FunctionRegistry::add_unary(std::string name,
                                 std::function<bool(Value)> fn) {
  add(std::move(name), [f = std::move(fn)](std::span<const Value> args) {
    return args.size() == 1 && f(args[0]);
  });
}

const FunctionRegistry::Predicate* FunctionRegistry::find(
    const std::string& name) const {
  auto it = fns_.find(name);
  return it == fns_.end() ? nullptr : &it->second;
}

}  // namespace ccsql
