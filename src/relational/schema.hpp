#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ccsql {

/// Role of a column in a controller table (paper, section 3).  Inputs are the
/// columns matched against incoming messages and current state; outputs are
/// the actions and next-state columns.  Meta columns carry bookkeeping added
/// by analyses (e.g. virtual-channel columns added during deadlock checking).
enum class ColumnKind { kInput, kOutput, kMeta };

/// Returns "input" / "output" / "meta".
std::string_view to_string(ColumnKind kind) noexcept;

/// A named, kind-tagged column.
struct Column {
  std::string name;
  ColumnKind kind = ColumnKind::kInput;

  friend bool operator==(const Column& a, const Column& b) = default;
};

/// An ordered list of columns.  Schemas are immutable once constructed and
/// shared between tables via shared_ptr, so copying tables is cheap.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Builds a schema of all-input columns from bare names.
  static std::shared_ptr<const Schema> of(std::vector<std::string> names);

  [[nodiscard]] std::size_t size() const noexcept { return columns_.size(); }
  [[nodiscard]] const Column& column(std::size_t i) const {
    return columns_[i];
  }
  [[nodiscard]] const std::vector<Column>& columns() const noexcept {
    return columns_;
  }

  /// Index of `name`, or nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> find(std::string_view name) const;

  /// Index of `name`; throws BindError if absent.
  [[nodiscard]] std::size_t index_of(std::string_view name) const;

  [[nodiscard]] bool has(std::string_view name) const {
    return find(name).has_value();
  }

  /// True if both schemas have the same column names in the same order
  /// (kinds are ignored: kinds are advisory metadata).
  [[nodiscard]] bool same_names(const Schema& other) const;

  /// Returns a new schema with `column` appended; throws SchemaError on a
  /// duplicate name.
  [[nodiscard]] std::shared_ptr<const Schema> extended(Column column) const;

  /// Returns a new schema consisting of the given columns of this schema, in
  /// the given order.
  [[nodiscard]] std::shared_ptr<const Schema> project(
      const std::vector<std::string>& names) const;

  /// Returns a new schema with column `from` renamed to `to`.
  [[nodiscard]] std::shared_ptr<const Schema> renamed(
      std::string_view from, std::string_view to) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.columns_ == b.columns_;
  }

 private:
  std::vector<Column> columns_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// Convenience: make a schema from (name, kind) pairs.
SchemaPtr make_schema(std::vector<Column> columns);

}  // namespace ccsql
