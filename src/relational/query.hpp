#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "obs/mem.hpp"
#include "relational/function_registry.hpp"
#include "relational/parser.hpp"
#include "relational/table.hpp"

namespace ccsql {

/// A named collection of tables — the "central database" of the paper in
/// which all controller tables live.  Also owns the function registry used
/// when compiling WHERE clauses.
///
/// Tables are held by shared_ptr: copying a catalog (the serving layer's
/// snapshot) shares row storage and lazily-built TupleKey indexes with the
/// original, so a snapshot is O(#tables) pointer copies.  Every mutation is
/// copy-on-write — it replaces the affected pointer and bumps generation(),
/// never touching rows a concurrent reader may hold.
class Catalog {
 public:
  /// One resident table plus its MemTracker reservation.  shared_ptr-held
  /// so catalog copies share storage (and the bytes are counted once, for
  /// as long as any holder keeps the version alive).
  struct StoredTable {
    explicit StoredTable(Table t)
        : table(std::move(t)),
          mem(obs::MemTracker::Category::kTables, table.memory_bytes()) {}
    Table table;
    obs::MemReservation mem;
  };
  using TablePtr = std::shared_ptr<const StoredTable>;
  using TableMap = std::map<std::string, TablePtr, std::less<>>;

  /// Inserts or replaces a table.
  void put(std::string name, Table table);

  [[nodiscard]] bool has(std::string_view name) const;

  /// Throws BindError if absent.
  [[nodiscard]] const Table& get(std::string_view name) const;

  /// Shared ownership of a resident table version, or nullptr if absent.
  /// What a snapshot holds: the rows stay valid after the catalog moves on.
  [[nodiscard]] TablePtr get_shared(std::string_view name) const;

  [[nodiscard]] FunctionRegistry& functions() noexcept { return functions_; }
  [[nodiscard]] const FunctionRegistry& functions() const noexcept {
    return functions_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return tables_.size(); }
  [[nodiscard]] const TableMap& tables() const noexcept { return tables_; }

  /// Monotonic mutation counter: put / drop / insert each bump it.  Cached
  /// plans and snapshots are valid exactly while the generation they were
  /// built against still matches.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Executes a parsed SELECT against this catalog.  Goes through the query
  /// planner (src/plan) unless it is disabled (plan::set_planner_enabled /
  /// --no-planner), in which case run_naive is used.
  [[nodiscard]] Table run(const SelectStmt& stmt) const;

  /// The reference executor: materialises the FROM cross product, filters,
  /// then projects — no rewrites, no indexes.  Kept as the oracle the
  /// planner is property-tested against.
  [[nodiscard]] Table run_naive(const SelectStmt& stmt) const;

  /// Parses and executes a full statement.  SELECT returns its result;
  /// CREATE TABLE ... AS SELECT materialises the result under the new name
  /// and returns it (the paper's flow for the implementation tables);
  /// DROP TABLE / INSERT INTO return an empty unit table.
  Table execute(std::string_view statement_text);
  Table execute(const Statement& stmt);

  /// Parses and executes SELECT text.
  [[nodiscard]] Table query(std::string_view select_text) const;

  /// Parses invariant text (see parse_invariant) and evaluates it: returns
  /// true iff every constituent SELECT yields an empty result.
  [[nodiscard]] bool check_empty(std::string_view invariant_text) const;

 private:
  TableMap tables_;
  std::uint64_t generation_ = 0;
  FunctionRegistry functions_;
};

}  // namespace ccsql
