#pragma once

#include <map>
#include <string>
#include <string_view>

#include "obs/mem.hpp"
#include "relational/function_registry.hpp"
#include "relational/parser.hpp"
#include "relational/table.hpp"

namespace ccsql {

/// A named collection of tables — the "central database" of the paper in
/// which all controller tables live.  Also owns the function registry used
/// when compiling WHERE clauses.
class Catalog {
 public:
  /// Inserts or replaces a table.
  void put(std::string name, Table table);

  [[nodiscard]] bool has(std::string_view name) const;

  /// Throws BindError if absent.
  [[nodiscard]] const Table& get(std::string_view name) const;

  [[nodiscard]] FunctionRegistry& functions() noexcept { return functions_; }
  [[nodiscard]] const FunctionRegistry& functions() const noexcept {
    return functions_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return tables_.size(); }
  [[nodiscard]] const std::map<std::string, Table, std::less<>>& tables()
      const noexcept {
    return tables_;
  }

  /// Executes a parsed SELECT against this catalog.  Goes through the query
  /// planner (src/plan) unless it is disabled (plan::set_planner_enabled /
  /// --no-planner), in which case run_naive is used.
  [[nodiscard]] Table run(const SelectStmt& stmt) const;

  /// The reference executor: materialises the FROM cross product, filters,
  /// then projects — no rewrites, no indexes.  Kept as the oracle the
  /// planner is property-tested against.
  [[nodiscard]] Table run_naive(const SelectStmt& stmt) const;

  /// Parses and executes a full statement.  SELECT returns its result;
  /// CREATE TABLE ... AS SELECT materialises the result under the new name
  /// and returns it (the paper's flow for the implementation tables);
  /// DROP TABLE / INSERT INTO return an empty unit table.
  Table execute(std::string_view statement_text);
  Table execute(const Statement& stmt);

  /// Parses and executes SELECT text.
  [[nodiscard]] Table query(std::string_view select_text) const;

  /// Parses invariant text (see parse_invariant) and evaluates it: returns
  /// true iff every constituent SELECT yields an empty result.
  [[nodiscard]] bool check_empty(std::string_view invariant_text) const;

 private:
  std::map<std::string, Table, std::less<>> tables_;
  /// MemTracker (kTables) reservations for the resident tables, keyed in
  /// lockstep with tables_: put/drop/insert keep each entry equal to its
  /// table's current memory_bytes().  Copying a catalog re-registers every
  /// reservation (the copy really holds second buffers).
  std::map<std::string, obs::MemReservation, std::less<>> table_mem_;
  FunctionRegistry functions_;
};

}  // namespace ccsql
