#include "relational/table.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "core/pool.hpp"
#include "relational/error.hpp"

namespace ccsql {

// ---- TupleKey ---------------------------------------------------------------

void TupleKey::set(std::size_t pos, std::uint32_t id) {
  if (pos < 2) {
    lo_ |= static_cast<std::uint64_t>(id) << (pos == 0 ? 32 : 0);
  } else if (pos < 4) {
    hi_ |= static_cast<std::uint64_t>(id) << (pos == 2 ? 32 : 0);
  } else {
    overflow_.push_back(id);
  }
}

TupleKey TupleKey::of_row(RowView row, std::span<const std::size_t> cols) {
  TupleKey k;
  if (cols.size() > 4) k.overflow_.reserve(cols.size() - 4);
  for (std::size_t i = 0; i < cols.size(); ++i) k.set(i, row[cols[i]].id());
  return k;
}

TupleKey TupleKey::of_values(std::span<const Value> key) {
  TupleKey k;
  if (key.size() > 4) k.overflow_.reserve(key.size() - 4);
  for (std::size_t i = 0; i < key.size(); ++i) k.set(i, key[i].id());
  return k;
}

std::size_t TupleKey::hash() const noexcept {
  if (hi_ == 0 && overflow_.empty()) {
    // Short key: one splitmix64 finalizer round over the packed word.
    std::uint64_t h = lo_ + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the full tuple
  auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 0x100000001b3ull;
  };
  mix(lo_);
  mix(hi_);
  for (std::uint32_t id : overflow_) mix(id);
  return static_cast<std::size_t>(h);
}

namespace {

/// Hash/equality over rows referenced by index into a flat value buffer.
/// Used to deduplicate without copying rows into a temporary container.
struct RowRef {
  const std::vector<Value>* data;
  std::size_t width;
  std::size_t row;

  [[nodiscard]] const Value* begin() const {
    return data->data() + row * width;
  }
};

struct RowRefHash {
  std::size_t operator()(const RowRef& r) const noexcept {
    std::size_t h = 0x9e3779b97f4a7c15ull;
    const Value* p = r.begin();
    for (std::size_t i = 0; i < r.width; ++i) {
      h ^= std::hash<Value>{}(p[i]) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

struct RowRefEq {
  bool operator()(const RowRef& a, const RowRef& b) const noexcept {
    return std::equal(a.begin(), a.begin() + a.width, b.begin());
  }
};

using RowSet = std::unordered_set<RowRef, RowRefHash, RowRefEq>;

}  // namespace

Table::Table(SchemaPtr schema) : schema_(std::move(schema)) {
  if (!schema_) throw SchemaError("Table: null schema");
}

Table Table::unit() {
  Table t;
  t.unit_rows_ = 1;
  return t;
}

std::size_t Table::row_count() const noexcept {
  return width() == 0 ? unit_rows_ : data_.size() / width();
}

void Table::append(RowView row) {
  if (row.size() != width()) {
    throw SchemaError("append: row arity " + std::to_string(row.size()) +
                      " != schema arity " + std::to_string(width()));
  }
  invalidate_indexes();
  if (width() == 0) {
    ++unit_rows_;
    return;
  }
  data_.insert(data_.end(), row.begin(), row.end());
}

void Table::append(std::initializer_list<Value> row) {
  append(RowView(row.begin(), row.size()));
}

void Table::append_texts(const std::vector<std::string>& texts) {
  std::vector<Value> vals;
  vals.reserve(texts.size());
  for (const auto& t : texts) vals.push_back(Symbol::intern(t));
  append(RowView(vals));
}

void Table::reserve_rows(std::size_t n) { data_.reserve(n * width()); }

Table Table::select(const std::function<bool(RowView)>& pred) const {
  Table out(schema_);
  if (width() == 0) {
    for (std::size_t i = 0; i < unit_rows_; ++i) {
      if (pred(RowView{})) ++out.unit_rows_;
    }
    return out;
  }
  for (std::size_t i = 0; i < row_count(); ++i) {
    RowView r = row(i);
    if (pred(r)) out.append(r);
  }
  return out;
}

Table Table::project(const std::vector<std::string>& names,
                     bool distinct) const {
  std::vector<std::size_t> idx;
  idx.reserve(names.size());
  for (const auto& n : names) idx.push_back(schema_->index_of(n));
  Table out(schema_->project(names));
  out.reserve_rows(row_count());
  std::vector<Value> tmp(idx.size());
  for (std::size_t i = 0; i < row_count(); ++i) {
    RowView r = row(i);
    for (std::size_t j = 0; j < idx.size(); ++j) tmp[j] = r[idx[j]];
    out.append(RowView(tmp));
  }
  return distinct ? out.distinct() : out;
}

Table Table::distinct() const {
  Table out(schema_);
  if (width() == 0) {
    out.unit_rows_ = unit_rows_ > 0 ? 1 : 0;
    return out;
  }
  // Dedupe on packed symbol-id tuples: rows of up to four columns hash and
  // compare as two inline words, with no per-row key formatting.
  std::unordered_set<TupleKey, TupleKeyHash> seen;
  seen.reserve(row_count());
  out.reserve_rows(row_count());
  for (std::size_t i = 0; i < row_count(); ++i) {
    RowView r = row(i);
    if (seen.insert(TupleKey::of_values(r)).second) out.append(r);
  }
  return out;
}

Table Table::cross(const Table& a, const Table& b) {
  std::vector<Column> cols = a.schema().columns();
  for (const auto& c : b.schema().columns()) {
    cols.push_back(c);
  }
  Table out(make_schema(std::move(cols)));  // throws on duplicate names
  if (out.width() == 0) {
    out.unit_rows_ = a.row_count() * b.row_count();
    return out;
  }
  out.reserve_rows(a.row_count() * b.row_count());
  std::vector<Value> tmp(out.width());
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    RowView ra = a.row(i);
    std::copy(ra.begin(), ra.end(), tmp.begin());
    for (std::size_t j = 0; j < b.row_count(); ++j) {
      RowView rb = b.row(j);
      std::copy(rb.begin(), rb.end(), tmp.begin() + a.width());
      out.append(RowView(tmp));
    }
  }
  return out;
}

void Table::check_same_names(const Table& other) const {
  if (!schema_->same_names(other.schema())) {
    throw SchemaError("tables have different column names/order");
  }
}

Table Table::union_all(const Table& a, const Table& b) {
  a.check_same_names(b);
  Table out = a;
  out.invalidate_indexes();
  if (out.width() == 0) {
    out.unit_rows_ += b.unit_rows_;
    return out;
  }
  out.data_.reserve(out.data_.size() + b.data_.size());
  out.data_.insert(out.data_.end(), b.data_.begin(), b.data_.end());
  return out;
}

Table Table::union_distinct(const Table& a, const Table& b) {
  return union_all(a, b).distinct();
}

Table Table::difference(const Table& a, const Table& b) {
  a.check_same_names(b);
  Table out(a.schema_);
  if (a.width() == 0) {
    out.unit_rows_ = (a.unit_rows_ > 0 && b.unit_rows_ == 0) ? a.unit_rows_ : 0;
    return out;
  }
  RowSet forbidden;
  forbidden.reserve(b.row_count());
  for (std::size_t i = 0; i < b.row_count(); ++i) {
    forbidden.insert(RowRef{&b.data_, b.width(), i});
  }
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    if (!forbidden.count(RowRef{&a.data_, a.width(), i})) out.append(a.row(i));
  }
  return out;
}

Table Table::natural_join(const Table& a, const Table& b) {
  // Common columns and b's private columns.
  std::vector<std::size_t> a_keys, b_keys, b_rest;
  for (std::size_t j = 0; j < b.column_count(); ++j) {
    if (auto i = a.schema().find(b.schema().column(j).name)) {
      a_keys.push_back(*i);
      b_keys.push_back(j);
    } else {
      b_rest.push_back(j);
    }
  }
  if (a_keys.empty()) {
    throw SchemaError("natural_join: schemas share no column");
  }

  std::vector<Column> cols = a.schema().columns();
  for (std::size_t j : b_rest) cols.push_back(b.schema().column(j));
  Table out(make_schema(std::move(cols)));

  // Hash b's rows by their key tuple.
  IndexMap index;
  index.reserve(b.row_count());
  for (std::size_t j = 0; j < b.row_count(); ++j) {
    index[TupleKey::of_row(b.row(j), b_keys)].push_back(j);
  }

  std::vector<Value> tmp(out.width());
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    RowView ra = a.row(i);
    auto it = index.find(TupleKey::of_row(ra, a_keys));
    if (it == index.end()) continue;
    std::copy(ra.begin(), ra.end(), tmp.begin());
    for (std::size_t j : it->second) {
      RowView rb = b.row(j);
      for (std::size_t k = 0; k < b_rest.size(); ++k) {
        tmp[a.column_count() + k] = rb[b_rest[k]];
      }
      out.append(RowView(tmp));
    }
  }
  return out;
}

Table Table::renamed(std::string_view from, std::string_view to) const {
  Table out = *this;
  out.schema_ = schema_->renamed(from, to);
  return out;
}

Table Table::with_schema(SchemaPtr schema) const {
  if (!schema || schema->size() != schema_->size()) {
    throw SchemaError("with_schema: arity mismatch");
  }
  Table out = *this;
  out.schema_ = std::move(schema);
  return out;
}

bool Table::contains(RowView r) const {
  if (r.size() != width()) return false;
  for (std::size_t i = 0; i < row_count(); ++i) {
    RowView mine = row(i);
    if (std::equal(mine.begin(), mine.end(), r.begin())) return true;
  }
  return false;
}

bool Table::contains_all(const Table& other) const {
  check_same_names(other);
  if (width() == 0) return unit_rows_ > 0 || other.unit_rows_ == 0;
  RowSet mine;
  mine.reserve(row_count());
  for (std::size_t i = 0; i < row_count(); ++i) {
    mine.insert(RowRef{&data_, width(), i});
  }
  for (std::size_t i = 0; i < other.row_count(); ++i) {
    if (!mine.count(RowRef{&other.data_, other.width(), i})) return false;
  }
  return true;
}

bool Table::set_equal(const Table& other) const {
  return contains_all(other) && other.contains_all(*this);
}

Table Table::sorted_by(const std::vector<std::string>& columns) const {
  std::vector<std::size_t> keys;
  keys.reserve(columns.size());
  for (const auto& c : columns) keys.push_back(schema_->index_of(c));
  std::vector<std::size_t> order(row_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     for (std::size_t k : keys) {
                       const std::string_view va = at(a, k).str();
                       const std::string_view vb = at(b, k).str();
                       if (va != vb) return va < vb;
                     }
                     return false;
                   });
  Table out(schema_);
  out.reserve_rows(row_count());
  for (std::size_t i : order) out.append(row(i));
  return out;
}

namespace {

/// Guards every table's index-cache pointer and map structure.  One global
/// mutex (not per-table) keeps Table trivially copyable; the guarded
/// sections are pointer installs and map lookups only — index *builds*
/// happen outside it.
std::mutex& index_cache_mutex() {
  static std::mutex mu;
  return mu;
}

/// Below this row count a parallel index build costs more than it saves.
constexpr std::size_t kParallelIndexThreshold = 2048;
constexpr std::size_t kIndexBuildGrain = 1024;

}  // namespace

const Table::IndexMap& Table::index_on(const std::vector<std::string>& columns,
                                       std::size_t jobs) const {
  std::vector<std::size_t> idx;
  idx.reserve(columns.size());
  for (const auto& name : columns) idx.push_back(schema_->index_of(name));
  return index_on(idx, jobs);
}

const Table::IndexMap& Table::index_on(const std::vector<std::size_t>& columns,
                                       std::size_t jobs) const {
  {
    std::lock_guard<std::mutex> lock(index_cache_mutex());
    if (index_cache_) {
      auto it = index_cache_->find(columns);
      // std::map nodes are stable: the reference survives later inserts.
      if (it != index_cache_->end()) return it->second.map;
    }
  }
  // Build outside the lock: a pool worker building here can still take part
  // in nested parallel work (Group::wait helping) without holding the cache
  // mutex across it.  Concurrent callers may build the same index twice;
  // emplace below keeps the first and drops the duplicate — wasted work,
  // never a wrong answer.
  IndexMap m = build_index(columns, jobs);
  obs::MemReservation mem(obs::MemTracker::Category::kIndexes,
                          index_memory_bytes(m));
  std::lock_guard<std::mutex> lock(index_cache_mutex());
  if (!index_cache_) {
    index_cache_ =
        std::make_shared<std::map<std::vector<std::size_t>, CachedIndex>>();
  }
  return index_cache_
      ->emplace(columns, CachedIndex{std::move(m), std::move(mem)})
      .first->second.map;
}

std::size_t Table::index_memory_bytes(const IndexMap& index) {
  std::size_t bytes = index.bucket_count() * sizeof(void*);
  for (const auto& [key, rows] : index) {
    bytes += sizeof(std::pair<TupleKey, std::vector<std::size_t>>) +
             rows.capacity() * sizeof(std::size_t);
  }
  return bytes;
}

Table::IndexMap Table::build_index(const std::vector<std::size_t>& columns,
                                   std::size_t jobs) const {
  const std::size_t n = row_count();
  IndexMap m;
  if (jobs > 1 && n >= kParallelIndexThreshold) {
    // Partitioned build: each morsel hashes its own row range, partitions
    // merge in morsel order.  Morsel i's rows all precede morsel j's for
    // i < j, so every key's row list comes out ascending — byte-identical
    // to the serial build.
    const std::size_t morsels =
        (n + kIndexBuildGrain - 1) / kIndexBuildGrain;
    std::vector<IndexMap> parts(morsels);
    core::Pool::global().parallel_for(
        n, kIndexBuildGrain, jobs,
        [&](std::size_t begin, std::size_t end, std::size_t morsel) {
          IndexMap& part = parts[morsel];
          part.reserve(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            part[index_key(row(i), columns)].push_back(i);
          }
        });
    m.reserve(n);
    for (IndexMap& part : parts) {
      for (auto& [key, rows] : part) {
        auto& dst = m[key];
        dst.insert(dst.end(), rows.begin(), rows.end());
      }
    }
  } else {
    m.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      m[index_key(row(i), columns)].push_back(i);
    }
  }
  return m;
}

bool Table::has_cached_index(const std::vector<std::size_t>& columns) const {
  std::lock_guard<std::mutex> lock(index_cache_mutex());
  return index_cache_ && index_cache_->count(columns) > 0;
}

Table Table::sorted() const {
  std::vector<std::size_t> order(row_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    RowView ra = row(a), rb = row(b);
    return std::lexicographical_compare(
        ra.begin(), ra.end(), rb.begin(), rb.end(),
        [](Value x, Value y) { return x.id() < y.id(); });
  });
  Table out(schema_);
  out.unit_rows_ = unit_rows_;
  out.reserve_rows(row_count());
  for (std::size_t i : order) out.append(row(i));
  return out;
}

}  // namespace ccsql
