#include "relational/table.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "core/pool.hpp"
#include "relational/error.hpp"

namespace ccsql {

// ---- TupleKey ---------------------------------------------------------------

void TupleKey::set(std::size_t pos, std::uint32_t id) {
  if (pos < 2) {
    lo_ |= static_cast<std::uint64_t>(id) << (pos == 0 ? 32 : 0);
  } else if (pos < 4) {
    hi_ |= static_cast<std::uint64_t>(id) << (pos == 2 ? 32 : 0);
  } else {
    overflow_.push_back(id);
  }
}

TupleKey TupleKey::of_row(RowView row, std::span<const std::size_t> cols) {
  TupleKey k;
  if (cols.size() > 4) k.overflow_.reserve(cols.size() - 4);
  for (std::size_t i = 0; i < cols.size(); ++i) k.set(i, row[cols[i]].id());
  return k;
}

TupleKey TupleKey::of_values(std::span<const Value> key) {
  TupleKey k;
  if (key.size() > 4) k.overflow_.reserve(key.size() - 4);
  for (std::size_t i = 0; i < key.size(); ++i) k.set(i, key[i].id());
  return k;
}

std::size_t TupleKey::hash() const noexcept {
  if (hi_ == 0 && overflow_.empty()) {
    // Short key: one splitmix64 finalizer round over the packed word.
    std::uint64_t h = lo_ + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the full tuple
  auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 0x100000001b3ull;
  };
  mix(lo_);
  mix(hi_);
  for (std::uint32_t id : overflow_) mix(id);
  return static_cast<std::size_t>(h);
}

// ---- Table ------------------------------------------------------------------

namespace {

/// Rows packed per build_keys / TupleKey-set pass before the key buffer is
/// recycled; also the morsel grain of parallel index builds.
constexpr std::size_t kKeyChunk = 4096;

/// Below this row count a parallel index build costs more than it saves.
constexpr std::size_t kParallelIndexThreshold = 2048;
constexpr std::size_t kIndexBuildGrain = 1024;

std::vector<std::size_t> iota_cols(std::size_t n) {
  std::vector<std::size_t> cols(n);
  std::iota(cols.begin(), cols.end(), std::size_t{0});
  return cols;
}

}  // namespace

Table::Table(SchemaPtr schema) : schema_(std::move(schema)) {
  if (!schema_) throw SchemaError("Table: null schema");
  cols_.reserve(schema_->size());
  for (std::size_t j = 0; j < schema_->size(); ++j) {
    cols_.push_back(std::make_shared<ColumnData>());
  }
}

Table Table::unit() {
  Table t;
  t.rows_ = 1;
  return t;
}

Table::ColumnData& Table::mut_col(std::size_t j) {
  ColumnPtr& c = cols_[j];
  if (c.use_count() != 1) {
    // Shared with another table: copy-on-write, trimming any tail beyond
    // row_count() (a shared LIMIT head) in the same pass.
    c = std::make_shared<ColumnData>(c->begin(),
                                     c->begin() + static_cast<std::ptrdiff_t>(
                                                      rows_));
  } else if (c->size() != rows_) {
    c->resize(rows_);
  }
  return *c;
}

void Table::append(RowView row) {
  if (row.size() != width()) {
    throw SchemaError("append: row arity " + std::to_string(row.size()) +
                      " != schema arity " + std::to_string(width()));
  }
  invalidate_indexes();
  for (std::size_t j = 0; j < width(); ++j) mut_col(j).push_back(row[j]);
  ++rows_;
}

void Table::append(std::initializer_list<Value> row) {
  append(RowView(row.begin(), row.size()));
}

void Table::append_texts(const std::vector<std::string>& texts) {
  std::vector<Value> vals;
  vals.reserve(texts.size());
  for (const auto& t : texts) vals.push_back(Symbol::intern(t));
  append(RowView(vals));
}

void Table::reserve_rows(std::size_t n) {
  for (std::size_t j = 0; j < width(); ++j) mut_col(j).reserve(n);
}

Table Table::gather(std::span<const std::uint32_t> sel) const {
  Table out(schema_);
  out.rows_ = sel.size();
  for (std::size_t j = 0; j < width(); ++j) {
    const Value* src = cols_[j]->data();
    auto c = std::make_shared<ColumnData>(sel.size());
    Value* dst = c->data();
    for (std::size_t i = 0; i < sel.size(); ++i) dst[i] = src[sel[i]];
    out.cols_[j] = std::move(c);
  }
  return out;
}

Table Table::head(std::size_t n) const {
  Table out(schema_);
  out.cols_ = cols_;  // shared: mut_col trims the tail if `out` ever mutates
  out.rows_ = std::min(n, rows_);
  return out;
}

Table Table::select(const std::function<bool(RowView)>& pred) const {
  if (width() == 0) {
    Table out(schema_);
    for (std::size_t i = 0; i < rows_; ++i) {
      if (pred(RowView{})) ++out.rows_;
    }
    return out;
  }
  std::vector<std::uint32_t> sel;
  for (std::size_t i = 0; i < rows_; ++i) {
    if (pred(row(i))) sel.push_back(static_cast<std::uint32_t>(i));
  }
  return gather(sel);
}

Table Table::project(const std::vector<std::string>& names,
                     bool distinct) const {
  Table out(schema_->project(names));
  for (std::size_t j = 0; j < names.size(); ++j) {
    // Zero-copy: the projected table shares the source column vectors.
    out.cols_[j] = cols_[schema_->index_of(names[j])];
  }
  out.rows_ = rows_;
  return distinct ? out.distinct() : out;
}

Table Table::distinct() const {
  if (width() == 0) {
    Table out(schema_);
    out.rows_ = rows_ > 0 ? 1 : 0;
    return out;
  }
  // Dedupe on packed symbol-id tuples built column-at-a-time: rows of up to
  // four columns hash and compare as two inline words, with no per-row key
  // formatting and no row materialisation.
  const std::vector<std::size_t> cols = iota_cols(width());
  std::unordered_set<TupleKey, TupleKeyHash> seen;
  seen.reserve(rows_);
  std::vector<std::uint32_t> sel;
  std::vector<TupleKey> keys;
  for (std::size_t begin = 0; begin < rows_; begin += kKeyChunk) {
    const std::size_t end = std::min(rows_, begin + kKeyChunk);
    keys.assign(end - begin, TupleKey{});
    build_keys(cols, begin, end, keys.data());
    for (std::size_t i = begin; i < end; ++i) {
      if (seen.insert(std::move(keys[i - begin])).second) {
        sel.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  return gather(sel);
}

Table Table::cross(const Table& a, const Table& b) {
  std::vector<Column> cols = a.schema().columns();
  for (const auto& c : b.schema().columns()) {
    cols.push_back(c);
  }
  Table out(make_schema(std::move(cols)));  // throws on duplicate names
  const std::size_t an = a.row_count(), bn = b.row_count();
  out.rows_ = an * bn;
  // Row (i*bn + j) pairs a-row i with b-row j, so a's columns repeat each
  // cell bn times and b's columns tile whole an times — two sequential
  // fills, no row assembly.
  for (std::size_t j = 0; j < a.width(); ++j) {
    const Value* src = a.cols_[j]->data();
    auto c = std::make_shared<ColumnData>();
    c->reserve(out.rows_);
    for (std::size_t i = 0; i < an; ++i) c->insert(c->end(), bn, src[i]);
    out.cols_[j] = std::move(c);
  }
  for (std::size_t j = 0; j < b.width(); ++j) {
    const Value* src = b.cols_[j]->data();
    auto c = std::make_shared<ColumnData>();
    c->reserve(out.rows_);
    for (std::size_t i = 0; i < an; ++i) c->insert(c->end(), src, src + bn);
    out.cols_[a.width() + j] = std::move(c);
  }
  return out;
}

Table Table::hcat(SchemaPtr schema, const Table& a, const Table& b) {
  if (!schema || schema->size() != a.width() + b.width()) {
    throw SchemaError("hcat: schema arity != sum of input arities");
  }
  if (a.row_count() != b.row_count()) {
    throw SchemaError("hcat: row count mismatch");
  }
  Table out(std::move(schema));
  for (std::size_t j = 0; j < a.width(); ++j) out.cols_[j] = a.cols_[j];
  for (std::size_t j = 0; j < b.width(); ++j) {
    out.cols_[a.width() + j] = b.cols_[j];
  }
  out.rows_ = a.rows_;
  return out;
}

void Table::check_same_names(const Table& other) const {
  if (!schema_->same_names(other.schema())) {
    throw SchemaError("tables have different column names/order");
  }
}

Table Table::union_all(const Table& a, const Table& b) {
  a.check_same_names(b);
  Table out = a;
  out.invalidate_indexes();
  for (std::size_t j = 0; j < out.width(); ++j) {
    ColumnData& c = out.mut_col(j);
    const ColumnView bc = b.column(j);
    c.reserve(out.rows_ + bc.size());
    c.insert(c.end(), bc.begin(), bc.end());
  }
  out.rows_ += b.rows_;
  return out;
}

Table Table::union_distinct(const Table& a, const Table& b) {
  return union_all(a, b).distinct();
}

namespace {

/// Full-row key set of a table, built column-at-a-time — the shape
/// difference/contains_all dedupe against.
std::unordered_set<TupleKey, TupleKeyHash> row_key_set(const Table& t) {
  std::unordered_set<TupleKey, TupleKeyHash> set;
  const std::size_t n = t.row_count();
  set.reserve(n);
  const std::vector<std::size_t> cols = iota_cols(t.column_count());
  std::vector<TupleKey> keys;
  for (std::size_t begin = 0; begin < n; begin += kKeyChunk) {
    const std::size_t end = std::min(n, begin + kKeyChunk);
    keys.assign(end - begin, TupleKey{});
    t.build_keys(cols, begin, end, keys.data());
    for (auto& k : keys) set.insert(std::move(k));
  }
  return set;
}

}  // namespace

Table Table::difference(const Table& a, const Table& b) {
  a.check_same_names(b);
  if (a.width() == 0) {
    Table out(a.schema_);
    out.rows_ = (a.rows_ > 0 && b.rows_ == 0) ? a.rows_ : 0;
    return out;
  }
  const auto forbidden = row_key_set(b);
  const std::vector<std::size_t> cols = iota_cols(a.width());
  std::vector<std::uint32_t> sel;
  std::vector<TupleKey> keys;
  for (std::size_t begin = 0; begin < a.rows_; begin += kKeyChunk) {
    const std::size_t end = std::min(a.rows_, begin + kKeyChunk);
    keys.assign(end - begin, TupleKey{});
    a.build_keys(cols, begin, end, keys.data());
    for (std::size_t i = begin; i < end; ++i) {
      if (forbidden.count(keys[i - begin]) == 0) {
        sel.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  return a.gather(sel);
}

Table Table::natural_join(const Table& a, const Table& b) {
  // Common columns and b's private columns.
  std::vector<std::size_t> a_keys, b_keys, b_rest;
  for (std::size_t j = 0; j < b.column_count(); ++j) {
    if (auto i = a.schema().find(b.schema().column(j).name)) {
      a_keys.push_back(*i);
      b_keys.push_back(j);
    } else {
      b_rest.push_back(j);
    }
  }
  if (a_keys.empty()) {
    throw SchemaError("natural_join: schemas share no column");
  }

  std::vector<Column> cols = a.schema().columns();
  for (std::size_t j : b_rest) cols.push_back(b.schema().column(j));
  Table out(make_schema(std::move(cols)));

  // Hash b's rows by their key tuple (keys packed per-column).
  IndexMap index;
  index.reserve(b.row_count());
  std::vector<TupleKey> keys;
  for (std::size_t begin = 0; begin < b.row_count(); begin += kKeyChunk) {
    const std::size_t end = std::min(b.row_count(), begin + kKeyChunk);
    keys.assign(end - begin, TupleKey{});
    b.build_keys(b_keys, begin, end, keys.data());
    for (std::size_t j = begin; j < end; ++j) {
      index[std::move(keys[j - begin])].push_back(j);
    }
  }

  // Probe in a-row order, collecting matching (a-row, b-row) id pairs; the
  // output is then a per-column gather from each side.
  std::vector<std::uint32_t> lsel, rsel;
  for (std::size_t begin = 0; begin < a.row_count(); begin += kKeyChunk) {
    const std::size_t end = std::min(a.row_count(), begin + kKeyChunk);
    keys.assign(end - begin, TupleKey{});
    a.build_keys(a_keys, begin, end, keys.data());
    for (std::size_t i = begin; i < end; ++i) {
      auto it = index.find(keys[i - begin]);
      if (it == index.end()) continue;
      for (std::size_t j : it->second) {
        lsel.push_back(static_cast<std::uint32_t>(i));
        rsel.push_back(static_cast<std::uint32_t>(j));
      }
    }
  }

  out.rows_ = lsel.size();
  auto gather_col = [](const Value* src, std::span<const std::uint32_t> sel) {
    auto c = std::make_shared<ColumnData>(sel.size());
    Value* dst = c->data();
    for (std::size_t i = 0; i < sel.size(); ++i) dst[i] = src[sel[i]];
    return c;
  };
  for (std::size_t j = 0; j < a.width(); ++j) {
    out.cols_[j] = gather_col(a.cols_[j]->data(), lsel);
  }
  for (std::size_t k = 0; k < b_rest.size(); ++k) {
    out.cols_[a.width() + k] = gather_col(b.cols_[b_rest[k]]->data(), rsel);
  }
  return out;
}

Table Table::renamed(std::string_view from, std::string_view to) const {
  Table out = *this;
  out.schema_ = schema_->renamed(from, to);
  return out;
}

Table Table::with_schema(SchemaPtr schema) const {
  if (!schema || schema->size() != schema_->size()) {
    throw SchemaError("with_schema: arity mismatch");
  }
  Table out = *this;
  out.schema_ = std::move(schema);
  return out;
}

bool Table::contains(RowView r) const {
  if (r.size() != width()) return false;
  if (width() == 0) return rows_ > 0;
  for (std::size_t i = 0; i < rows_; ++i) {
    bool eq = true;
    for (std::size_t j = 0; j < width(); ++j) {
      if ((*cols_[j])[i] != r[j]) {
        eq = false;
        break;
      }
    }
    if (eq) return true;
  }
  return false;
}

bool Table::contains_all(const Table& other) const {
  check_same_names(other);
  if (width() == 0) return rows_ > 0 || other.rows_ == 0;
  const auto mine = row_key_set(*this);
  const std::vector<std::size_t> cols = iota_cols(width());
  std::vector<TupleKey> keys;
  for (std::size_t begin = 0; begin < other.rows_; begin += kKeyChunk) {
    const std::size_t end = std::min(other.rows_, begin + kKeyChunk);
    keys.assign(end - begin, TupleKey{});
    other.build_keys(cols, begin, end, keys.data());
    for (const auto& k : keys) {
      if (mine.count(k) == 0) return false;
    }
  }
  return true;
}

bool Table::set_equal(const Table& other) const {
  return contains_all(other) && other.contains_all(*this);
}

Table Table::sorted() const {
  std::vector<std::uint32_t> order(rows_);
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              for (std::size_t j = 0; j < width(); ++j) {
                const std::uint32_t x = (*cols_[j])[a].id();
                const std::uint32_t y = (*cols_[j])[b].id();
                if (x != y) return x < y;
              }
              return false;
            });
  return gather(order);
}

Table Table::sorted_by(const std::vector<std::string>& columns) const {
  std::vector<std::size_t> keys;
  keys.reserve(columns.size());
  for (const auto& c : columns) keys.push_back(schema_->index_of(c));
  std::vector<std::uint32_t> order(rows_);
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     for (std::size_t k : keys) {
                       const std::string_view va = at(a, k).str();
                       const std::string_view vb = at(b, k).str();
                       if (va != vb) return va < vb;
                     }
                     return false;
                   });
  return gather(order);
}

// ---- Key building -----------------------------------------------------------

void Table::build_keys(std::span<const std::size_t> cols, std::size_t begin,
                       std::size_t end, TupleKey* out) const {
  const std::size_t n = end - begin;
  // Position-major: one sequential pass per key column.  Positions ascend,
  // so overflow ids (arity > 4) push in the same order of_row encodes them.
  for (std::size_t pos = 0; pos < cols.size(); ++pos) {
    const Value* col = cols_[cols[pos]]->data() + begin;
    if (pos < 4) {
      const unsigned shift = (pos % 2 == 0) ? 32u : 0u;
      if (pos < 2) {
        for (std::size_t i = 0; i < n; ++i) {
          out[i].lo_ |= static_cast<std::uint64_t>(col[i].id()) << shift;
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          out[i].hi_ |= static_cast<std::uint64_t>(col[i].id()) << shift;
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        out[i].overflow_.push_back(col[i].id());
      }
    }
  }
}

// ---- Secondary indexes ------------------------------------------------------

namespace {

/// Guards every table's index-cache pointers and map structure.  One global
/// mutex (not per-table) keeps Table trivially copyable; the guarded
/// sections are pointer installs and map lookups only — index *builds*
/// happen outside it.
std::mutex& index_cache_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

const Table::IndexMap& Table::index_on(const std::vector<std::string>& columns,
                                       std::size_t jobs) const {
  std::vector<std::size_t> idx;
  idx.reserve(columns.size());
  for (const auto& name : columns) idx.push_back(schema_->index_of(name));
  return index_on(idx, jobs);
}

const Table::IndexMap& Table::index_on(const std::vector<std::size_t>& columns,
                                       std::size_t jobs) const {
  {
    std::lock_guard<std::mutex> lock(index_cache_mutex());
    if (index_cache_) {
      auto it = index_cache_->find(columns);
      // std::map nodes are stable: the reference survives later inserts.
      if (it != index_cache_->end()) return it->second.map;
    }
  }
  // Build outside the lock: a pool worker building here can still take part
  // in nested parallel work (Group::wait helping) without holding the cache
  // mutex across it.  Concurrent callers may build the same index twice;
  // emplace below keeps the first and drops the duplicate — wasted work,
  // never a wrong answer.
  IndexMap m = build_index(columns, jobs);
  obs::MemReservation mem(obs::MemTracker::Category::kIndexes,
                          index_memory_bytes(m));
  std::lock_guard<std::mutex> lock(index_cache_mutex());
  if (!index_cache_) {
    index_cache_ =
        std::make_shared<std::map<std::vector<std::size_t>, CachedIndex>>();
  }
  return index_cache_
      ->emplace(columns, CachedIndex{std::move(m), std::move(mem)})
      .first->second.map;
}

const JoinIndex& Table::join_index_on(const std::vector<std::size_t>& columns,
                                      std::size_t jobs) const {
  {
    std::lock_guard<std::mutex> lock(index_cache_mutex());
    if (join_cache_) {
      auto it = join_cache_->find(columns);
      if (it != join_cache_->end()) return it->second.index;
    }
  }
  JoinIndex built = JoinIndex::build(*this, columns, jobs);
  obs::MemReservation mem(obs::MemTracker::Category::kIndexes,
                          built.memory_bytes());
  std::lock_guard<std::mutex> lock(index_cache_mutex());
  if (!join_cache_) {
    join_cache_ =
        std::make_shared<std::map<std::vector<std::size_t>, CachedJoin>>();
  }
  return join_cache_
      ->emplace(columns, CachedJoin{std::move(built), std::move(mem)})
      .first->second.index;
}

std::size_t Table::index_memory_bytes(const IndexMap& index) {
  std::size_t bytes = index.bucket_count() * sizeof(void*);
  for (const auto& [key, rows] : index) {
    bytes += sizeof(std::pair<TupleKey, std::vector<std::size_t>>) +
             key.heap_bytes() + rows.capacity() * sizeof(std::size_t);
  }
  return bytes;
}

Table::IndexMap Table::build_index(const std::vector<std::size_t>& columns,
                                   std::size_t jobs) const {
  const std::size_t n = row_count();
  IndexMap m;
  m.reserve(n);
  if (jobs > 1 && n >= kParallelIndexThreshold) {
    // Partitioned build: each morsel packs and hashes its own row range,
    // partitions merge in morsel order.  Morsel i's rows all precede morsel
    // j's for i < j, so every key's row list comes out ascending —
    // byte-identical to the serial build.
    const std::size_t morsels =
        (n + kIndexBuildGrain - 1) / kIndexBuildGrain;
    std::vector<IndexMap> parts(morsels);
    core::Pool::global().parallel_for(
        n, kIndexBuildGrain, jobs,
        [&](std::size_t begin, std::size_t end, std::size_t morsel) {
          IndexMap& part = parts[morsel];
          part.reserve(end - begin);
          std::vector<TupleKey> keys(end - begin);
          build_keys(columns, begin, end, keys.data());
          for (std::size_t i = begin; i < end; ++i) {
            part[std::move(keys[i - begin])].push_back(i);
          }
        });
    for (IndexMap& part : parts) {
      for (auto& [key, rows] : part) {
        auto& dst = m[key];
        dst.insert(dst.end(), rows.begin(), rows.end());
      }
    }
  } else {
    std::vector<TupleKey> keys;
    for (std::size_t begin = 0; begin < n; begin += kKeyChunk) {
      const std::size_t end = std::min(n, begin + kKeyChunk);
      keys.assign(end - begin, TupleKey{});
      build_keys(columns, begin, end, keys.data());
      for (std::size_t i = begin; i < end; ++i) {
        m[std::move(keys[i - begin])].push_back(i);
      }
    }
  }
  return m;
}

bool Table::has_cached_index(const std::vector<std::size_t>& columns) const {
  std::lock_guard<std::mutex> lock(index_cache_mutex());
  return index_cache_ && index_cache_->count(columns) > 0;
}

bool Table::has_cached_join_index(
    const std::vector<std::size_t>& columns) const {
  std::lock_guard<std::mutex> lock(index_cache_mutex());
  return join_cache_ && join_cache_->count(columns) > 0;
}

// ---- Radix join index -------------------------------------------------------

namespace {

/// Build sides below this row count get a single partition: the whole hash
/// table already fits in cache, so radix scatter is pure overhead.
constexpr std::size_t kRadixMinRows = 8192;
/// Partition count targets ~this many build rows per partition.
constexpr std::size_t kRadixTargetRows = 4096;
constexpr std::size_t kRadixMaxBits = 6;  // at most 64 partitions

std::atomic<bool>& radix_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CCSQL_NO_RADIX");
    return env == nullptr || env[0] == '\0' || env[0] == '0';
  }();
  return flag;
}

}  // namespace

bool radix_join_enabled() {
  return radix_flag().load(std::memory_order_relaxed);
}

void set_radix_join_enabled(bool enabled) {
  radix_flag().store(enabled, std::memory_order_relaxed);
}

JoinIndex JoinIndex::build(const Table& t, std::span<const std::size_t> cols,
                           std::size_t jobs) {
  JoinIndex idx;
  const std::size_t n = t.row_count();
  idx.rows_ = n;

  std::size_t bits = 0;
  if (radix_join_enabled() && n >= kRadixMinRows) {
    while (bits < kRadixMaxBits &&
           (std::size_t{1} << (bits + 1)) <= n / kRadixTargetRows) {
      ++bits;
    }
    if (bits == 0) bits = 1;  // past the threshold, always partition
  }
  const std::size_t parts = std::size_t{1} << bits;
  idx.mask_ = parts - 1;
  idx.parts_.assign(parts, IndexMap{});

  // Pass 1: pack every row's key, morsel-parallel (morsel boundaries are
  // jobs-independent, and each morsel writes disjoint key slots).
  std::vector<TupleKey> keys(n);
  core::Pool::global().parallel_for(
      n, kKeyChunk, jobs,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        t.build_keys(cols, begin, end, keys.data() + begin);
      });

  if (parts == 1) {
    IndexMap& m = idx.parts_[0];
    m.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      m[std::move(keys[i])].push_back(i);
    }
    return idx;
  }

  // Pass 2: count rows per (morsel, partition), then prefix-sum into
  // scatter offsets.  Scattering in morsel order keeps each partition's
  // (key, row) list in ascending row order, so per-key row lists — and
  // therefore probe output — are byte-identical to the single-partition
  // build at any partition count and any jobs value.
  const std::size_t morsels = (n + kKeyChunk - 1) / kKeyChunk;
  std::vector<std::uint8_t> pid(n);
  std::vector<std::vector<std::uint32_t>> counts(
      morsels, std::vector<std::uint32_t>(parts, 0));
  core::Pool::global().parallel_for(
      n, kKeyChunk, jobs,
      [&](std::size_t begin, std::size_t end, std::size_t morsel) {
        std::vector<std::uint32_t>& c = counts[morsel];
        for (std::size_t i = begin; i < end; ++i) {
          const auto p =
              static_cast<std::uint8_t>(keys[i].hash() & idx.mask_);
          pid[i] = p;
          ++c[p];
        }
      });

  std::vector<std::size_t> part_total(parts, 0);
  std::vector<std::vector<std::uint32_t>> offsets(
      morsels, std::vector<std::uint32_t>(parts, 0));
  for (std::size_t p = 0; p < parts; ++p) {
    std::size_t running = 0;
    for (std::size_t m = 0; m < morsels; ++m) {
      offsets[m][p] = static_cast<std::uint32_t>(running);
      running += counts[m][p];
    }
    part_total[p] = running;
  }

  struct PartInput {
    std::vector<TupleKey> keys;
    std::vector<std::uint32_t> rows;
  };
  std::vector<PartInput> inputs(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    inputs[p].keys.resize(part_total[p]);
    inputs[p].rows.resize(part_total[p]);
  }
  core::Pool::global().parallel_for(
      n, kKeyChunk, jobs,
      [&](std::size_t begin, std::size_t end, std::size_t morsel) {
        std::vector<std::uint32_t> cursor = offsets[morsel];
        for (std::size_t i = begin; i < end; ++i) {
          PartInput& in = inputs[pid[i]];
          const std::uint32_t d = cursor[pid[i]]++;
          in.keys[d] = std::move(keys[i]);
          in.rows[d] = static_cast<std::uint32_t>(i);
        }
      });

  // Pass 3: each partition's hash map builds independently — no serial
  // merge, and a probe only ever touches one partition-sized map.
  core::Pool::global().parallel_tasks(parts, jobs, [&](std::size_t p) {
    PartInput& in = inputs[p];
    IndexMap& m = idx.parts_[p];
    m.reserve(in.keys.size());
    for (std::size_t d = 0; d < in.keys.size(); ++d) {
      m[std::move(in.keys[d])].push_back(in.rows[d]);
    }
  });
  return idx;
}

std::size_t JoinIndex::key_count() const noexcept {
  std::size_t keys = 0;
  for (const auto& p : parts_) keys += p.size();
  return keys;
}

std::size_t JoinIndex::memory_bytes() const noexcept {
  std::size_t bytes = parts_.capacity() * sizeof(IndexMap);
  for (const auto& p : parts_) bytes += Table::index_memory_bytes(p);
  return bytes;
}

}  // namespace ccsql
