#pragma once

// Compiled predicate bytecode: the fast evaluation engine behind every hot
// filter in the system (planner selects, hash-join residuals via selects,
// fused counts, emptiness probes, solver generation).
//
// A resolved Expr is flattened into a postfix program over interned symbol
// ids.  The program evaluates two ways:
//
//  - scalar: one row at a time (Program::eval), used by the row-budgeted
//    serial paths and the monolithic solver's odometer loop;
//  - batch: over a *selection vector* of ~1024 row indices at a time
//    (Program::eval_batch), refining the selection operator by operator —
//    AND evaluates its second conjunct only over rows the first accepted,
//    OR evaluates later disjuncts only over rows still rejected, the
//    ternary splits the selection on its condition.  Leaf comparisons run
//    as tight loops over column data with no virtual dispatch.
//
// Batch evaluation reads columnar storage directly: the caller passes one
// base pointer per schema column (Table::column_ptrs) and the leaf loops
// index column[row] — dense passes are stride-1 sequential reads over
// exactly the columns the predicate names, never whole rows.
//
// Both engines are exact drop-ins for CompiledExpr::eval: NULL is symbol
// id 0 and compares as an ordinary value, and selection order is table
// order, so results are byte-identical to the interpreted walk.  The
// interpreter stays available behind --no-bytecode / CCSQL_NO_BYTECODE as
// the differential oracle.

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "relational/expr.hpp"
#include "relational/function_registry.hpp"
#include "relational/schema.hpp"
#include "relational/table.hpp"
#include "relational/value.hpp"

namespace ccsql {

/// True (the default) when predicate evaluation should go through the
/// bytecode engine instead of the interpreted CompiledExpr walk.
/// Initialised from the environment on first use: CCSQL_NO_BYTECODE=1
/// starts it off (the CLI's --no-bytecode does the same).
[[nodiscard]] bool bytecode_enabled();
void set_bytecode_enabled(bool enabled);

namespace bc {
class Program;
}

/// Compiles `expr` to bytecode, resolved against `row_schema` with
/// identifier-hood decided by `full_schema` — the same contract as
/// ccsql::compile for CompiledExpr (BindError on unknown columns or
/// functions).
bc::Program compile_bytecode(const Expr& expr, const Schema& row_schema,
                             const Schema& full_schema,
                             const FunctionRegistry* functions = nullptr);

namespace bc {

/// Row indices into a table, ascending.  u32 suffices: a row needs at least
/// one 4-byte cell, so a table cannot hold 2^32 rows.
using Sel = std::vector<std::uint32_t>;

enum class Op : std::uint8_t {
  kConst,    // push the immediate boolean
  kCmp,      // push (operand(a) == operand(b)) != negated
  kIn,       // push (operand(a) in operands[args..args+argc)) != negated
  kCall,     // push fn(operands[args..args+argc))
  kAnd,      // all children true (children at roots[args..args+argc))
  kOr,       // any child true
  kNot,      // single child false
  kTernary,  // children cond, then, else
};

/// A resolved operand: a column index into the row, or a constant symbol.
struct Operand {
  bool is_column = false;
  std::uint32_t column = 0;
  Value value;

  /// Scalar access through the row proxy (flat or columnar).
  [[nodiscard]] Value get(RowView row) const noexcept {
    return is_column ? row[column] : value;
  }
  /// Batch access: cell `i` of the column-pointer array.
  [[nodiscard]] Value get_at(const Value* const* cols,
                             std::uint32_t i) const noexcept {
    return is_column ? cols[column][i] : value;
  }
};

/// One instruction.  Composite ops locate their operand subtrees through
/// the program's child-root pool, so the flat postfix form still supports
/// the structured (short-circuiting, selection-refining) evaluation order.
struct Insn {
  Op op = Op::kConst;
  bool negated = false;  // kCmp / kIn
  bool imm = false;      // kConst payload
  std::uint32_t a = 0;   // operand-pool index: lhs of kCmp / kIn
  std::uint32_t b = 0;   // operand-pool index: rhs of kCmp
  std::uint32_t argc = 0;  // operand count (kIn/kCall) or child count
  std::uint32_t args = 0;  // pool offset: operands_ (kIn/kCall), roots_ (else)
  const FunctionRegistry::Predicate* fn = nullptr;  // kCall
};

/// Reusable selection buffers for eval_batch.  Acquire/release is LIFO per
/// recursion depth, so one thread-local Scratch serves nested evaluations.
/// The pool is a deque: growing it must not invalidate buffers handed out
/// to enclosing recursion levels.
class Scratch {
 public:
  [[nodiscard]] Sel& acquire() {
    if (used_ == pool_.size()) pool_.emplace_back();
    Sel& s = pool_[used_++];
    s.clear();
    return s;
  }
  void release(std::size_t n = 1) { used_ -= n; }

 private:
  std::deque<Sel> pool_;
  std::size_t used_ = 0;
};

class Program {
 public:
  Program() = default;

  /// False for a default-constructed (uncompiled) program.
  [[nodiscard]] explicit operator bool() const noexcept {
    return !insns_.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept { return insns_.size(); }
  [[nodiscard]] const std::vector<Insn>& insns() const noexcept {
    return insns_;
  }

  /// Scalar evaluation of one row: a single linear pass over the postfix
  /// program with a bool stack.  Evaluates every node (no short-circuit);
  /// predicates are pure, so results match the interpreted walk exactly.
  [[nodiscard]] bool eval(RowView row) const;

  /// Batch evaluation: appends to `out` the members of `sel` (ascending row
  /// indices into the columnar table whose per-column base pointers are
  /// `cols`, one per schema column in order — Table::column_ptrs) that
  /// satisfy the program, preserving order.  `out` is cleared first.
  void eval_batch(std::span<const Value* const> cols,
                  std::span<const std::uint32_t> sel, Sel& out,
                  Scratch& scratch) const;

  /// Dense-range form of eval_batch over rows [begin, end): the selection
  /// vector is implicit, so the first (full-batch) pass of every predicate
  /// runs as a stride-1 sequential loop over each referenced column with no
  /// index materialisation.  This is the executor's entry point — morsels
  /// are dense by construction.
  void eval_range(std::span<const Value* const> cols, std::uint32_t begin,
                  std::uint32_t end, Sel& out, Scratch& scratch) const;

  /// Number of distinct table columns the program reads — the basis of
  /// EXPLAIN ANALYZE's bytes-touched estimate (columns_read * 4 bytes per
  /// row visited, since cells are interned u32 symbol ids).
  [[nodiscard]] std::size_t columns_read() const;

 private:
  friend Program (::ccsql::compile_bytecode)(const Expr&, const Schema&,
                                             const Schema&,
                                             const FunctionRegistry*);
  struct NodeEval;

  std::vector<Insn> insns_;
  std::vector<Operand> operands_;
  // Child root instruction indices of composite ops, in source order.
  std::vector<std::uint32_t> roots_;
};

}  // namespace bc

inline bc::Program compile_bytecode(const Expr& expr, const Schema& schema,
                                    const FunctionRegistry* functions = nullptr) {
  return compile_bytecode(expr, schema, schema, functions);
}

}  // namespace ccsql
