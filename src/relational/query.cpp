#include "relational/query.hpp"

#include "obs/obs.hpp"
#include "plan/ir.hpp"
#include "plan/planner.hpp"
#include "relational/error.hpp"

namespace ccsql {

void Catalog::put(std::string name, Table table) {
  tables_.insert_or_assign(std::move(name),
                           std::make_shared<const StoredTable>(std::move(table)));
  ++generation_;
}

bool Catalog::has(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

const Table& Catalog::get(std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw BindError("unknown table: " + std::string(name));
  }
  return it->second->table;
}

Catalog::TablePtr Catalog::get_shared(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

Table Catalog::run(const SelectStmt& stmt) const {
  CCSQL_SPAN(span, "query.select", "relational");
  span.arg("table", stmt.from.empty() ? "" : stmt.from[0].table);
  span.arg("planned", plan::planner_enabled());
  Table result = plan::planner_enabled() ? plan::run_select(*this, stmt)
                                         : run_naive(stmt);
  span.arg("rows_emitted", result.row_count());
  CCSQL_COUNT("query.selects", 1);
  CCSQL_COUNT("query.rows_emitted", result.row_count());
  return result;
}

Table Catalog::run_naive(const SelectStmt& stmt) const {
  // The FROM list as one cross product, columns renamed through aliases.
  Table source;
  bool first = true;
  std::size_t scanned = 0;
  for (const TableRef& ref : stmt.from) {
    const Table& base = get(ref.table);
    scanned += base.row_count();
    Table t = ref.alias.empty()
                  ? base
                  : base.with_schema(plan::scan_schema(base.schema(),
                                                       ref.alias));
    source = first ? std::move(t) : Table::cross(source, t);
    first = false;
  }
  Table filtered = source;
  if (stmt.where) {
    CompiledExpr pred =
        compile(*stmt.where, source.schema(), source.schema(), &functions_);
    filtered = source.select(pred.predicate());
  }
  Table result;
  if (stmt.count_star) {
    Table counted(make_schema({{"count", ColumnKind::kOutput}}));
    counted.append({Symbol::intern(std::to_string(filtered.row_count()))});
    result = std::move(counted);
  } else if (stmt.star) {
    result = stmt.distinct ? filtered.distinct() : std::move(filtered);
  } else {
    result = filtered.project(stmt.columns, stmt.distinct);
  }
  for (const SelectStmt& u : stmt.union_with) {
    Table branch = run_naive(u);
    result = Table::union_distinct(result,
                                   branch.with_schema(result.schema_ptr()));
  }
  if (!stmt.order_by.empty()) result = result.sorted_by(stmt.order_by);
  CCSQL_COUNT("query.rows_scanned", scanned);
  return result;
}

Table Catalog::execute(std::string_view statement_text) {
  return execute(parse_statement(statement_text));
}

Table Catalog::execute(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return run(stmt.select);
    case Statement::Kind::kCreateTableAs: {
      Table result = run(stmt.select);
      put(stmt.table, result);
      return result;
    }
    case Statement::Kind::kDropTable: {
      if (!has(stmt.table)) {
        throw BindError("drop table: unknown table " + stmt.table);
      }
      tables_.erase(tables_.find(stmt.table));
      ++generation_;
      return Table();
    }
    case Statement::Kind::kInsert: {
      auto it = tables_.find(stmt.table);
      if (it == tables_.end()) {
        throw BindError("insert into: unknown table " + stmt.table);
      }
      // Copy-on-write: snapshots holding the old version keep its rows and
      // index cache; only this catalog sees the appended rows.
      Table copy = it->second->table;
      for (const auto& row : stmt.rows) {
        copy.append_texts(row);
      }
      it->second = std::make_shared<const StoredTable>(std::move(copy));
      ++generation_;
      return Table();
    }
  }
  return Table();
}

Table Catalog::query(std::string_view select_text) const {
  return run(parse_select(select_text));
}

bool Catalog::check_empty(std::string_view invariant_text) const {
  for (const SelectStmt& s : parse_invariant(invariant_text)) {
    // Emptiness only: the planner stops at the first row (Limit 1).
    if (plan::planner_enabled()) {
      if (!plan::is_empty(*this, s)) return false;
    } else if (run_naive(s).row_count() != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace ccsql
