#pragma once

// The unified query-session facade.  Every subsystem (invariant checker,
// VCG composition, solver, simulator setup, CLI) issues SQL through a
// Database instead of picking between Catalog::run / run_naive /
// check_empty and carrying its own planner-toggle plumbing:
//
//   Database db(spec.database());      // or build a Catalog and wrap it
//   QueryResult r = db.query("select * from t where s = 'I'");
//   bool holds   = db.check_empty(invariant_sql);
//   std::string p = db.explain(sql).plan;
//
// A Database owns its Catalog plus the session's execution settings: the
// planner override (unset = follow the process-wide flag) and the parallel
// lane count `jobs` (0 = the --jobs / CCSQL_JOBS / hardware default) that
// the morsel-driven operators in src/plan fan out across the shared
// core::Pool.  Results are bit-identical at any jobs value.
//
// Catalog::run / run_naive remain public only as the property-test oracle;
// production code goes through Database.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "relational/query.hpp"

namespace ccsql {

/// Rows plus the execution facts that accompany them.
///
/// Results are columnar like the tables they come from: column() hands out
/// contiguous spans with no copying, and is the primary way to consume a
/// result (DESIGN.md section 13).  row()/row_views() remain as gather
/// adapters for cold consumers.
struct QueryResult {
  Table rows;
  /// Rendered plan with est/actual row counts; filled by explain() only.
  std::string plan;
  /// Whether the statement went through the planner (else the naive oracle).
  bool planned = false;
  /// Parallel lanes the execution was allowed to use.
  std::size_t jobs = 1;
  /// Wall-clock plan+execute time.
  std::uint64_t micros = 0;

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows.row_count();
  }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return rows.column_count();
  }
  [[nodiscard]] bool empty() const noexcept { return rows.row_count() == 0; }

  /// Column-first access: a contiguous read-only span of one result column.
  [[nodiscard]] ColumnView column(std::size_t j) const noexcept {
    return rows.column(j);
  }
  [[nodiscard]] ColumnView column(std::string_view name) const {
    return rows.column(name);
  }

  /// Row-at-a-time adapters (gather path — prefer column() in bulk code).
  [[nodiscard]] RowView row(std::size_t i) const noexcept {
    return rows.row(i);
  }
  [[nodiscard]] Table::RowRange row_views() const noexcept {
    return rows.rows();
  }
};

/// An immutable point-in-time view of a Database's catalog, plus the
/// session settings it was taken with.  Cheap to copy (a shared_ptr and a
/// few scalars); safe to query from any thread.  The tables — rows and
/// their lazily-built TupleKey indexes — are shared with whatever versions
/// the live catalog still holds, and stay valid after the live side
/// regenerates them: a writer swap never blocks or invalidates a reader.
class Snapshot {
 public:
  /// An empty snapshot; queries throw until one is assigned.
  Snapshot() = default;
  Snapshot(const Snapshot& other);
  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(const Snapshot& other);
  Snapshot& operator=(Snapshot&& other) noexcept;
  ~Snapshot();

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  /// The catalog generation this snapshot captured.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  /// The frozen catalog.  Shared: every snapshot of one generation is the
  /// same Catalog object.
  [[nodiscard]] const Catalog& catalog() const { return *state_; }
  [[nodiscard]] const std::shared_ptr<const Catalog>& shared_catalog()
      const noexcept {
    return state_;
  }
  [[nodiscard]] std::size_t jobs() const;
  [[nodiscard]] bool planner_on() const;

  /// SELECT / invariant evaluation against the frozen catalog, with the
  /// originating session's planner/jobs settings.  Same semantics as the
  /// Database methods of the same names.
  [[nodiscard]] QueryResult query(std::string_view select_text) const;
  [[nodiscard]] QueryResult query(const SelectStmt& stmt) const;
  [[nodiscard]] bool check_empty(std::string_view invariant_text) const;
  [[nodiscard]] bool check_empty(const SelectStmt& stmt) const;

  /// Live snapshot handles process-wide — the serve.snapshot.active gauge.
  [[nodiscard]] static std::size_t active() noexcept;

 private:
  friend class Database;
  Snapshot(std::shared_ptr<const Catalog> state, std::uint64_t generation,
           std::optional<bool> use_planner, std::size_t jobs);

  std::shared_ptr<const Catalog> state_;
  std::uint64_t generation_ = 0;
  std::optional<bool> use_planner_;
  std::size_t jobs_ = 0;
};

class Database {
 public:
  Database() = default;
  explicit Database(Catalog catalog) : catalog_(std::move(catalog)) {}
  // Copies and moves carry the catalog and session settings; the snapshot
  // cache (and its mutex) is per-object and starts cold in the destination.
  Database(const Database& other)
      : catalog_(other.catalog_),
        use_planner_(other.use_planner_),
        jobs_(other.jobs_) {}
  Database(Database&& other) noexcept
      : catalog_(std::move(other.catalog_)),
        use_planner_(other.use_planner_),
        jobs_(other.jobs_) {}
  Database& operator=(const Database& other) {
    if (this != &other) {
      catalog_ = other.catalog_;
      use_planner_ = other.use_planner_;
      jobs_ = other.jobs_;
      std::lock_guard<std::mutex> lock(snap_mu_);
      snap_cache_.reset();
    }
    return *this;
  }
  Database& operator=(Database&& other) noexcept {
    if (this != &other) {
      catalog_ = std::move(other.catalog_);
      use_planner_ = other.use_planner_;
      jobs_ = other.jobs_;
      std::lock_guard<std::mutex> lock(snap_mu_);
      snap_cache_.reset();
    }
    return *this;
  }

  // ---- session settings ----------------------------------------------------

  /// Forces the planner on/off for this session.  Unset (the default)
  /// follows the process-wide flag (plan::planner_enabled, i.e. the CLI's
  /// --no-planner / CCSQL_NO_PLANNER).
  Database& set_planner(bool on) {
    use_planner_ = on;
    return *this;
  }
  /// Parallel lanes for this session's queries; 0 = process default
  /// (core::Pool::default_jobs, i.e. --jobs / CCSQL_JOBS / hardware).
  Database& set_jobs(std::size_t jobs) {
    jobs_ = jobs;
    return *this;
  }
  /// The resolved lane count (never 0).
  [[nodiscard]] std::size_t jobs() const;
  [[nodiscard]] bool planner_on() const;

  // ---- catalog -------------------------------------------------------------

  [[nodiscard]] Catalog& catalog() noexcept { return catalog_; }
  [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }

  void put(std::string name, Table table) {
    catalog_.put(std::move(name), std::move(table));
  }
  [[nodiscard]] bool has(std::string_view name) const {
    return catalog_.has(name);
  }
  [[nodiscard]] const Table& get(std::string_view name) const {
    return catalog_.get(name);
  }
  [[nodiscard]] FunctionRegistry& functions() noexcept {
    return catalog_.functions();
  }
  [[nodiscard]] const FunctionRegistry& functions() const noexcept {
    return catalog_.functions();
  }
  [[nodiscard]] const Catalog::TableMap& tables() const noexcept {
    return catalog_.tables();
  }

  /// Catalog mutation counter (see Catalog::generation).
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return catalog_.generation();
  }

  // ---- snapshots -----------------------------------------------------------

  /// An immutable view of the catalog as of now.  All snapshots taken at
  /// one generation share a single frozen Catalog (the copy is made at most
  /// once per generation and cached), so acquisition is a pointer copy in
  /// the steady state.  The caller must serialize snapshot() against
  /// catalog mutations (as serve::Server does); concurrent snapshot()
  /// calls against a quiescent catalog are safe.
  [[nodiscard]] Snapshot snapshot() const;

  // ---- queries -------------------------------------------------------------

  /// Executes a SELECT with this session's planner/jobs settings.
  [[nodiscard]] QueryResult query(std::string_view select_text) const;
  [[nodiscard]] QueryResult query(const SelectStmt& stmt) const;

  /// True iff every SELECT of the invariant yields no rows.  Runs in exists
  /// mode (stops at the first violating row); always serial per statement —
  /// parallelism for invariants fans out across the suite, not within one.
  [[nodiscard]] bool check_empty(std::string_view invariant_text) const;
  [[nodiscard]] bool check_empty(const SelectStmt& stmt) const;

  /// Plans, executes, and renders the plan (est vs actual rows) into
  /// QueryResult::plan.  Always goes through the planner — there is no
  /// plan to show otherwise.
  [[nodiscard]] QueryResult explain(std::string_view select_text) const;

  /// EXPLAIN ANALYZE: like explain(), but every operator is profiled (wall
  /// time incl/self, rows in/out, batches, morsels, selection density,
  /// hash-build sizes) and a process-memory summary line (tables / indexes /
  /// hash builds, live and peak) is appended to the plan text.
  [[nodiscard]] QueryResult explain_analyze(std::string_view select_text) const;

  /// Full-statement execution (CREATE TABLE AS / DROP / INSERT / SELECT),
  /// mutating the owned catalog.
  Table execute(std::string_view statement_text) {
    return catalog_.execute(statement_text);
  }

  /// The solver's incremental-generation step — select(pred, cross(l, r))
  /// over free-standing tables — under this session's settings.
  [[nodiscard]] Table cross_select(const Table& left, const Table& right,
                                   const Expr& pred,
                                   const Schema& ident_schema) const;

 private:
  Catalog catalog_;
  std::optional<bool> use_planner_;
  std::size_t jobs_ = 0;  // 0 = follow the process-wide default
  /// One frozen Catalog per generation, shared by every snapshot taken at
  /// that generation.  Rebuilt lazily when the generation moves on.
  mutable std::mutex snap_mu_;
  mutable std::shared_ptr<const Catalog> snap_cache_;
  mutable std::uint64_t snap_gen_ = 0;
};

}  // namespace ccsql
