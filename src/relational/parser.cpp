#include "relational/parser.hpp"

#include <algorithm>
#include <cctype>

#include "relational/error.hpp"
#include "relational/lexer.hpp"

namespace ccsql {
namespace {

std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Recursive-descent parser over the token stream.  Keywords are matched
/// case-insensitively; identifiers keep their case.
class Parser {
 public:
  explicit Parser(std::string_view text) : toks_(lex(text)) {}

  Expr expr() {
    Expr cond = or_expr();
    if (accept(TokenKind::kQuestion)) {
      Expr then_e = expr();
      expect(TokenKind::kColon, "':' of ternary");
      Expr else_e = expr();
      return Expr::ternary(std::move(cond), std::move(then_e),
                           std::move(else_e));
    }
    return cond;
  }

  SelectStmt select() {
    expect_keyword("select");
    SelectStmt s;
    s.distinct = accept_keyword("distinct");
    if (accept(TokenKind::kStar)) {
      s.star = true;
    } else if (peek_keyword("count")) {
      advance();
      expect(TokenKind::kLParen, "'(' of count");
      expect(TokenKind::kStar, "'*' of count");
      expect(TokenKind::kRParen, "')' of count");
      s.count_star = true;
    } else {
      s.columns.push_back(ident("column name"));
      while (accept(TokenKind::kComma)) s.columns.push_back(ident("column"));
    }
    expect_keyword("from");
    s.from.push_back(table_ref());
    while (accept(TokenKind::kComma)) s.from.push_back(table_ref());
    if (accept_keyword("where")) s.where = expr();
    if (accept_keyword("order")) {
      expect_keyword("by");
      s.order_by.push_back(ident("order-by column"));
      while (accept(TokenKind::kComma)) {
        s.order_by.push_back(ident("order-by column"));
      }
    }
    while (accept_keyword("union")) {
      s.union_with.push_back(select());
    }
    return s;
  }

  Statement statement() {
    Statement out;
    if (accept_keyword("create")) {
      expect_keyword("table");
      out.kind = Statement::Kind::kCreateTableAs;
      out.table = ident("table name");
      expect_keyword("as");
      out.select = select();
      end();
      return out;
    }
    if (accept_keyword("drop")) {
      expect_keyword("table");
      out.kind = Statement::Kind::kDropTable;
      out.table = ident("table name");
      end();
      return out;
    }
    if (accept_keyword("insert")) {
      expect_keyword("into");
      out.kind = Statement::Kind::kInsert;
      out.table = ident("table name");
      expect_keyword("values");
      do {
        expect(TokenKind::kLParen, "'(' of values tuple");
        std::vector<std::string> row;
        if (!peek_is(TokenKind::kRParen)) {
          row.push_back(atom("value").text);
          while (accept(TokenKind::kComma)) row.push_back(atom("value").text);
        }
        expect(TokenKind::kRParen, "')' of values tuple");
        out.rows.push_back(std::move(row));
      } while (accept(TokenKind::kComma));
      end();
      return out;
    }
    out.kind = Statement::Kind::kSelect;
    out.select = select();
    end();
    return out;
  }

  std::vector<SelectStmt> invariant() {
    std::vector<SelectStmt> out;
    if (!peek_is(TokenKind::kLBracket)) {
      // Bare SELECT form.
      out.push_back(select());
      end();
      return out;
    }
    do {
      expect(TokenKind::kLBracket, "'['");
      out.push_back(select());
      expect(TokenKind::kRBracket, "']'");
      expect(TokenKind::kEq, "'=' before empty");
      expect_keyword("empty");
    } while (accept_keyword("and"));
    end();
    return out;
  }

  void end() {
    if (!peek_is(TokenKind::kEnd)) {
      throw ParseError("trailing input at offset " +
                       std::to_string(cur().pos) + ": '" + cur().text + "'");
    }
  }

 private:
  Expr or_expr() {
    std::vector<Expr> parts;
    parts.push_back(and_expr());
    while (accept_keyword("or")) parts.push_back(and_expr());
    return Expr::disjunction(std::move(parts));
  }

  Expr and_expr() {
    std::vector<Expr> parts;
    parts.push_back(unary());
    while (accept_keyword("and")) parts.push_back(unary());
    return Expr::conjunction(std::move(parts));
  }

  Expr unary() {
    if (accept_keyword("not")) return Expr::negation(unary());
    return primary();
  }

  Expr primary() {
    if (accept(TokenKind::kLParen)) {
      Expr e = expr();
      expect(TokenKind::kRParen, "')'");
      return e;
    }
    if (peek_keyword("true")) {
      advance();
      return Expr::boolean(true);
    }
    if (peek_keyword("false")) {
      advance();
      return Expr::boolean(false);
    }
    // Function call: ident '(' ... ')'.
    if (peek_is(TokenKind::kIdent) && peek_is(TokenKind::kLParen, 1) &&
        !is_keyword(cur().text)) {
      std::string name = cur().text;
      advance();
      advance();  // '('
      std::vector<Atom> args;
      if (!peek_is(TokenKind::kRParen)) {
        args.push_back(atom("function argument"));
        while (accept(TokenKind::kComma)) args.push_back(atom("argument"));
      }
      expect(TokenKind::kRParen, "')' of call");
      return Expr::call(std::move(name), std::move(args));
    }
    // Comparison or IN.
    Atom lhs = atom("operand");
    if (accept(TokenKind::kEq)) {
      return Expr::compare(std::move(lhs), /*negated=*/false,
                           atom("right operand"));
    }
    if (accept(TokenKind::kNe)) {
      return Expr::compare(std::move(lhs), /*negated=*/true,
                           atom("right operand"));
    }
    bool negated = false;
    if (accept_keyword("not")) negated = true;
    if (accept_keyword("in")) {
      expect(TokenKind::kLParen, "'(' of in-list");
      std::vector<Atom> set;
      set.push_back(atom("in-list element"));
      while (accept(TokenKind::kComma)) set.push_back(atom("element"));
      expect(TokenKind::kRParen, "')' of in-list");
      return Expr::in(std::move(lhs), negated, std::move(set));
    }
    throw ParseError("expected comparison operator at offset " +
                     std::to_string(cur().pos));
  }

  Atom atom(const char* what) {
    if (peek_is(TokenKind::kString)) {
      Atom a = Atom::quoted(cur().text);
      advance();
      return a;
    }
    // Statement-level keywords (select, drop, count, ...) are legal value
    // literals; only the expression grammar's own keywords are reserved
    // here.
    if (peek_is(TokenKind::kIdent) && !is_expr_keyword(cur().text)) {
      // `$N` lexes as an identifier token but denotes a parameter slot.
      Atom a = cur().text[0] == '$'
                   ? Atom{Atom::Kind::kParam, cur().text.substr(1)}
                   : Atom::ident(cur().text);
      advance();
      return a;
    }
    throw ParseError(std::string("expected ") + what + " at offset " +
                     std::to_string(cur().pos));
  }

  static bool is_expr_keyword(std::string_view t) {
    static const char* kw[] = {"and", "or", "not", "in", "true", "false",
                               "empty"};
    const std::string lo = lowered(t);
    for (const char* k : kw) {
      if (lo == k) return true;
    }
    return false;
  }

  TableRef table_ref() {
    TableRef ref;
    ref.table = ident("table name");
    // An optional alias: any identifier that is not a statement keyword
    // (`from D a, D b` — but `from D where ...` keeps `where` a keyword).
    if (peek_is(TokenKind::kIdent) && !is_keyword(cur().text)) {
      ref.alias = ident("table alias");
    }
    return ref;
  }

  std::string ident(const char* what) {
    if (!peek_is(TokenKind::kIdent)) {
      throw ParseError(std::string("expected ") + what + " at offset " +
                       std::to_string(cur().pos));
    }
    std::string s = cur().text;
    advance();
    return s;
  }

  static bool is_keyword(std::string_view t) {
    static const char* kw[] = {"and",    "or",     "not",    "in",
                               "true",   "false",  "select", "distinct",
                               "from",   "where",  "empty",  "union",
                               "order",  "by",     "count",  "create",
                               "table",  "as",     "drop",   "insert",
                               "into",   "values"};
    const std::string lo = lowered(t);
    for (const char* k : kw) {
      if (lo == k) return true;
    }
    return false;
  }

  const Token& cur() const { return toks_[pos_]; }
  void advance() { ++pos_; }
  bool peek_is(TokenKind k, std::size_t ahead = 0) const {
    return pos_ + ahead < toks_.size() && toks_[pos_ + ahead].kind == k;
  }
  bool peek_keyword(std::string_view kw) const {
    return peek_is(TokenKind::kIdent) && lowered(cur().text) == kw;
  }
  bool accept(TokenKind k) {
    if (peek_is(k)) {
      advance();
      return true;
    }
    return false;
  }
  bool accept_keyword(std::string_view kw) {
    if (peek_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }
  void expect(TokenKind k, const char* what) {
    if (!accept(k)) {
      throw ParseError(std::string("expected ") + what + " at offset " +
                       std::to_string(cur().pos));
    }
  }
  void expect_keyword(const char* kw) {
    if (!accept_keyword(kw)) {
      throw ParseError(std::string("expected keyword '") + kw +
                       "' at offset " + std::to_string(cur().pos));
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string SelectStmt::to_string() const {
  std::string s = "select ";
  if (distinct) s += "distinct ";
  if (star) {
    s += "*";
  } else if (count_star) {
    s += "count(*)";
  } else {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) s += ", ";
      s += columns[i];
    }
  }
  s += " from ";
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (i > 0) s += ", ";
    s += from[i].table;
    if (!from[i].alias.empty()) s += " " + from[i].alias;
  }
  if (where) s += " where " + where->to_string();
  if (!order_by.empty()) {
    s += " order by ";
    for (std::size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += order_by[i];
    }
  }
  for (const auto& u : union_with) s += " union " + u.to_string();
  return s;
}

Statement parse_statement(std::string_view text) {
  Parser p(text);
  return p.statement();
}

Expr parse_expr(std::string_view text) {
  Parser p(text);
  Expr e = p.expr();
  p.end();
  return e;
}

SelectStmt parse_select(std::string_view text) {
  Parser p(text);
  SelectStmt s = p.select();
  p.end();
  return s;
}

std::vector<SelectStmt> parse_invariant(std::string_view text) {
  Parser p(text);
  return p.invariant();
}

}  // namespace ccsql
