#pragma once

#include <memory>
#include <string>
#include <vector>

#include "relational/function_registry.hpp"
#include "relational/schema.hpp"
#include "relational/table.hpp"
#include "relational/value.hpp"

namespace ccsql {

/// An operand of a comparison / IN / function call before name resolution.
/// Bare identifiers are resolved against a schema at compile time: if the
/// identifier names a column of the *full* table schema it denotes that
/// column, otherwise it denotes the value literal with that spelling
/// (the paper writes both `dirst = "MESI"` and `dirpv = zero`).
/// Quoted strings always denote value literals.  Parameter atoms (`$1`,
/// `$2`, ...) are placeholders for prepared statements: bind_params
/// substitutes a quoted literal per slot before planning; compiling an
/// expression that still contains one is a BindError.
struct Atom {
  enum class Kind { kIdent, kQuoted, kParam };
  Kind kind = Kind::kIdent;
  std::string text;  // for kParam: the decimal slot number (1-based)

  static Atom ident(std::string t) { return {Kind::kIdent, std::move(t)}; }
  static Atom quoted(std::string t) { return {Kind::kQuoted, std::move(t)}; }
  static Atom param(std::size_t slot) {
    return {Kind::kParam, std::to_string(slot)};
  }

  /// The 1-based slot of a kParam atom.
  [[nodiscard]] std::size_t param_slot() const;

  friend bool operator==(const Atom&, const Atom&) = default;
};

/// Unresolved boolean expression AST for the paper's constraint language:
///
///   expr     := or ( '?' expr ':' expr )?          -- ternary (right-assoc)
///   or       := and ( 'or' and )*
///   and      := unary ( 'and' unary )*
///   unary    := 'not' unary | primary
///   primary  := '(' expr ')' | comparison | call | 'true' | 'false'
///   comparison := atom ('='|'!='|'<>') atom
///               | atom ('in'|'not in') '(' atom (',' atom)* ')'
///   call     := name '(' atom (',' atom)* ')'
///
/// The ternary `c ? t : f` is boolean-valued and equivalent to
/// (c and t) or (not c and f), matching the paper's column constraints.
class Expr {
 public:
  enum class Op {
    kBool,     // constant
    kCompare,  // lhs = rhs / lhs != rhs
    kIn,       // lhs in {set} / not in
    kAnd,
    kOr,
    kNot,
    kTernary,  // children: cond, then, else
    kCall,     // named predicate over atoms
  };

  Expr() : op_(Op::kBool), bool_value_(true) {}

  static Expr boolean(bool v);
  static Expr compare(Atom lhs, bool negated, Atom rhs);
  static Expr in(Atom lhs, bool negated, std::vector<Atom> set);
  static Expr conjunction(std::vector<Expr> children);
  static Expr disjunction(std::vector<Expr> children);
  static Expr negation(Expr child);
  static Expr ternary(Expr cond, Expr then_e, Expr else_e);
  static Expr call(std::string name, std::vector<Atom> args);

  [[nodiscard]] Op op() const noexcept { return op_; }
  [[nodiscard]] bool bool_value() const noexcept { return bool_value_; }
  [[nodiscard]] bool negated() const noexcept { return negated_; }
  [[nodiscard]] const Atom& lhs() const { return atoms_.front(); }
  [[nodiscard]] const std::vector<Atom>& atoms() const { return atoms_; }
  [[nodiscard]] const std::vector<Expr>& children() const { return children_; }
  [[nodiscard]] const std::string& callee() const { return callee_; }

  /// Column names (relative to `full` schema) this expression mentions.
  [[nodiscard]] std::vector<std::string> referenced_columns(
      const Schema& full) const;

  /// Renders the expression back to constraint-language text.
  [[nodiscard]] std::string to_string() const;

  /// Highest parameter slot ($N) referenced anywhere in the expression;
  /// 0 when the expression is parameter-free.
  [[nodiscard]] std::size_t param_count() const;

  /// A copy with every $i replaced by values[i-1] as a quoted literal.
  /// Throws BindError when a referenced slot has no value.
  [[nodiscard]] Expr bind_params(const std::vector<std::string>& values) const;

 private:
  Op op_;
  bool bool_value_ = false;
  bool negated_ = false;            // for kCompare / kIn
  std::vector<Atom> atoms_;         // operands for kCompare/kIn/kCall
  std::vector<Expr> children_;      // for kAnd/kOr/kNot/kTernary
  std::string callee_;              // for kCall
};

/// A compiled predicate: `Expr` resolved against a row schema, ready to
/// evaluate against rows at full speed (no name lookups).
class CompiledExpr {
 public:
  CompiledExpr() = default;

  [[nodiscard]] bool eval(RowView row) const;
  [[nodiscard]] explicit operator bool() const { return root_ != nullptr; }

  /// Adapts to the Table::select callback shape.
  [[nodiscard]] std::function<bool(RowView)> predicate() const;

  struct Node;

 private:
  friend CompiledExpr compile(const Expr&, const Schema&, const Schema&,
                              const FunctionRegistry*);
  std::shared_ptr<const Node> root_;
};

/// Resolves `expr` for evaluation against rows of `row_schema`.
///
/// `full_schema` decides identifier-hood: a bare identifier denotes a column
/// iff `full_schema` has a column of that name (it must then also exist in
/// `row_schema`, else BindError).  Pass the same schema twice in the common
/// case.  `functions` may be null if the expression calls no predicates.
CompiledExpr compile(const Expr& expr, const Schema& row_schema,
                     const Schema& full_schema,
                     const FunctionRegistry* functions = nullptr);

inline CompiledExpr compile(const Expr& expr, const Schema& schema,
                            const FunctionRegistry* functions = nullptr) {
  return compile(expr, schema, schema, functions);
}

}  // namespace ccsql
