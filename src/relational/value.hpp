#pragma once

#include "relational/symbol.hpp"

namespace ccsql {

/// A cell value: an interned symbol, where the reserved symbol denotes SQL
/// NULL.  In controller tables NULL means "don't care" in an input column and
/// "no operation" in an output column (paper, section 3).
///
/// Unlike full SQL, NULL here compares like an ordinary value: the paper's
/// constraint language treats NULL as just another domain element, so
/// `col = NULL` selects rows whose cell is NULL rather than being UNKNOWN.
using Value = Symbol;

/// The NULL / don't-care / no-op value.
inline Value null_value() noexcept { return Value{}; }

/// Shorthand for interning a value literal.
inline Value V(std::string_view text) { return Symbol::intern(text); }

}  // namespace ccsql
