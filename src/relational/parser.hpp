#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "relational/expr.hpp"

namespace ccsql {

/// One entry of a FROM list: a table name with an optional alias.  When an
/// alias is given every column of the table is visible as `alias.column`
/// (the paper's pairwise dependency joins use this to join a table with a
/// copy of itself); without an alias columns keep their bare names.
struct TableRef {
  std::string table;
  std::string alias;  // empty = no alias

  friend bool operator==(const TableRef&, const TableRef&) = default;
};

/// A parsed SELECT:
///
///   SELECT [DISTINCT] cols | * | COUNT(*)
///     FROM table [alias] (, table [alias])* [WHERE expr] [ORDER BY cols]
///     [UNION select ...]
///
/// A multi-table FROM denotes the cross product of its entries in order
/// (the planner lowers cross + equality predicates to hash joins).  UNION
/// branches are chained through `union_with` (set semantics, as in the
/// paper's "union of all the pairwise dependency tables").
struct SelectStmt {
  bool distinct = false;
  bool star = false;
  bool count_star = false;           // SELECT COUNT(*) ...
  std::vector<std::string> columns;  // empty iff star / count_star
  std::vector<TableRef> from;        // at least one entry once parsed
  std::optional<Expr> where;
  std::vector<std::string> order_by;
  std::vector<SelectStmt> union_with;

  [[nodiscard]] std::string to_string() const;
};

/// A parsed top-level statement: a query or one of the DDL/DML forms the
/// paper's flow uses (`Create Table Request_remmsg as Select distinct ...`).
struct Statement {
  enum class Kind { kSelect, kCreateTableAs, kDropTable, kInsert };
  Kind kind = Kind::kSelect;
  SelectStmt select;                // kSelect / kCreateTableAs
  std::string table;                // target of create/drop/insert
  std::vector<std::vector<std::string>> rows;  // kInsert VALUES tuples
};

/// Parses a full statement (SELECT / CREATE TABLE ... AS SELECT /
/// DROP TABLE / INSERT INTO ... VALUES).
Statement parse_statement(std::string_view text);

/// Parses a constraint-language boolean expression (see Expr for grammar).
/// Throws ParseError on malformed input or trailing tokens.
Expr parse_expr(std::string_view text);

/// Parses a single SELECT statement.
SelectStmt parse_select(std::string_view text);

/// Parses the paper's invariant form: one or more bracketed emptiness
/// checks joined by `and`:
///
///   [Select cols from T where e] = empty
///       and [Select ... ] = empty ...
///
/// A bare SELECT (no brackets / "= empty") is also accepted and treated as a
/// single emptiness check.  Returns the SELECTs whose results must all be
/// empty for the invariant to hold.
std::vector<SelectStmt> parse_invariant(std::string_view text);

}  // namespace ccsql
