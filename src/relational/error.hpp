#pragma once

#include <stdexcept>
#include <string>

namespace ccsql {

/// Base class for all errors raised by the ccsql libraries.
///
/// Every failure that stems from user-supplied input (malformed constraint
/// text, unknown column names, schema mismatches, inconsistent constraint
/// sets, ...) is reported via an exception derived from this type so that
/// callers can distinguish input errors from logic errors (assertions).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when constraint or query text fails to parse.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when an expression references a column or function that does not
/// exist in the schema / registry it is compiled against.
class BindError : public Error {
 public:
  explicit BindError(const std::string& what) : Error(what) {}
};

/// Raised when two tables are combined with incompatible schemas.
class SchemaError : public Error {
 public:
  explicit SchemaError(const std::string& what) : Error(what) {}
};

}  // namespace ccsql
