#include "relational/database.hpp"

#include <atomic>
#include <chrono>

#include "core/pool.hpp"
#include "obs/mem.hpp"
#include "obs/obs.hpp"
#include "plan/planner.hpp"
#include "relational/error.hpp"
#include "relational/expr.hpp"

namespace ccsql {
namespace {

std::uint64_t micros_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Live Snapshot handles, process-wide (the serve.snapshot.active gauge).
std::atomic<std::size_t> g_active_snapshots{0};

/// A per-generation frozen catalog copy plus the MemTracker reservation
/// covering the copy's own footprint.  Column storage and indexes are
/// shared with the live catalog (COW per column) and stay accounted by
/// their original StoredTable reservations; what a snapshot newly
/// allocates — and what used to go untracked — is the catalog map copy
/// itself (nodes, names, shared_ptr control blocks).
struct FrozenCatalog {
  Catalog catalog;
  obs::MemReservation mem;
};

std::size_t catalog_copy_bytes(const Catalog& c) {
  std::size_t bytes = sizeof(Catalog);
  for (const auto& [name, ptr] : c.tables()) {
    // One map node: key string, shared_ptr, and node/control overhead.
    bytes += name.capacity() + sizeof(void*) * 6;
  }
  return bytes;
}

}  // namespace

// ---- Snapshot ---------------------------------------------------------------

Snapshot::Snapshot(std::shared_ptr<const Catalog> state,
                   std::uint64_t generation, std::optional<bool> use_planner,
                   std::size_t jobs)
    : state_(std::move(state)),
      generation_(generation),
      use_planner_(use_planner),
      jobs_(jobs) {
  if (state_) g_active_snapshots.fetch_add(1, std::memory_order_relaxed);
}

Snapshot::Snapshot(const Snapshot& other)
    : state_(other.state_),
      generation_(other.generation_),
      use_planner_(other.use_planner_),
      jobs_(other.jobs_) {
  if (state_) g_active_snapshots.fetch_add(1, std::memory_order_relaxed);
}

Snapshot::Snapshot(Snapshot&& other) noexcept
    : state_(std::move(other.state_)),
      generation_(other.generation_),
      use_planner_(other.use_planner_),
      jobs_(other.jobs_) {
  other.state_.reset();
}

Snapshot& Snapshot::operator=(const Snapshot& other) {
  if (this != &other) {
    if (other.state_ && !state_) {
      g_active_snapshots.fetch_add(1, std::memory_order_relaxed);
    } else if (!other.state_ && state_) {
      g_active_snapshots.fetch_sub(1, std::memory_order_relaxed);
    }
    state_ = other.state_;
    generation_ = other.generation_;
    use_planner_ = other.use_planner_;
    jobs_ = other.jobs_;
  }
  return *this;
}

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    if (state_) g_active_snapshots.fetch_sub(1, std::memory_order_relaxed);
    state_ = std::move(other.state_);
    other.state_.reset();
    generation_ = other.generation_;
    use_planner_ = other.use_planner_;
    jobs_ = other.jobs_;
  }
  return *this;
}

Snapshot::~Snapshot() {
  if (state_) g_active_snapshots.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t Snapshot::active() noexcept {
  return g_active_snapshots.load(std::memory_order_relaxed);
}

std::size_t Snapshot::jobs() const {
  return jobs_ != 0 ? jobs_ : core::Pool::default_jobs();
}

bool Snapshot::planner_on() const {
  return use_planner_.value_or(plan::planner_enabled());
}

QueryResult Snapshot::query(std::string_view select_text) const {
  return query(parse_select(select_text));
}

QueryResult Snapshot::query(const SelectStmt& stmt) const {
  if (!state_) throw BindError("query on empty snapshot");
  QueryResult r;
  r.planned = planner_on();
  r.jobs = jobs();
  const auto t0 = std::chrono::steady_clock::now();
  if (r.planned) {
    plan::PlannerOptions opts;
    opts.jobs = r.jobs;
    r.rows = plan::run_select(*state_, stmt, opts);
  } else {
    r.rows = state_->run_naive(stmt);
  }
  r.micros = micros_since(t0);
  return r;
}

bool Snapshot::check_empty(std::string_view invariant_text) const {
  for (const SelectStmt& s : parse_invariant(invariant_text)) {
    if (!check_empty(s)) return false;
  }
  return true;
}

bool Snapshot::check_empty(const SelectStmt& stmt) const {
  if (!state_) throw BindError("check_empty on empty snapshot");
  if (planner_on()) {
    plan::PlannerOptions opts;
    opts.exists_only = true;
    return plan::run_select(*state_, stmt, opts).row_count() == 0;
  }
  return state_->run_naive(stmt).row_count() == 0;
}

// ---- Database ---------------------------------------------------------------

Snapshot Database::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (!snap_cache_ || snap_gen_ != catalog_.generation()) {
    auto frozen = std::make_shared<FrozenCatalog>();
    frozen->catalog = catalog_;
    frozen->mem = obs::MemReservation(obs::MemTracker::Category::kTables,
                                      catalog_copy_bytes(frozen->catalog));
    // Aliased: snapshots see a plain `const Catalog`, the reservation rides
    // along and releases when the last snapshot of this generation drops.
    const Catalog* view = &frozen->catalog;
    snap_cache_ = std::shared_ptr<const Catalog>(std::move(frozen), view);
    snap_gen_ = catalog_.generation();
  }
  return Snapshot(snap_cache_, snap_gen_, use_planner_, jobs_);
}

std::size_t Database::jobs() const {
  return jobs_ != 0 ? jobs_ : core::Pool::default_jobs();
}

bool Database::planner_on() const {
  return use_planner_.value_or(plan::planner_enabled());
}

QueryResult Database::query(std::string_view select_text) const {
  return query(parse_select(select_text));
}

QueryResult Database::query(const SelectStmt& stmt) const {
  CCSQL_SPAN(span, "db.query", "relational");
  QueryResult r;
  r.planned = planner_on();
  r.jobs = jobs();
  const auto t0 = std::chrono::steady_clock::now();
  if (r.planned) {
    plan::PlannerOptions opts;
    opts.jobs = r.jobs;
    r.rows = plan::run_select(catalog_, stmt, opts);
  } else {
    r.rows = catalog_.run_naive(stmt);
  }
  r.micros = micros_since(t0);
  span.arg("planned", r.planned);
  span.arg("jobs", static_cast<std::uint64_t>(r.jobs));
  span.arg("rows", r.rows.row_count());
  CCSQL_COUNT("db.queries", 1);
  CCSQL_COUNT("db.rows_emitted", r.rows.row_count());
  return r;
}

bool Database::check_empty(std::string_view invariant_text) const {
  for (const SelectStmt& s : parse_invariant(invariant_text)) {
    if (!check_empty(s)) return false;
  }
  return true;
}

bool Database::check_empty(const SelectStmt& stmt) const {
  CCSQL_COUNT("db.emptiness_probes", 1);
  if (planner_on()) {
    plan::PlannerOptions opts;
    opts.exists_only = true;
    return plan::run_select(catalog_, stmt, opts).row_count() == 0;
  }
  return catalog_.run_naive(stmt).row_count() == 0;
}

QueryResult Database::explain(std::string_view select_text) const {
  QueryResult r;
  r.planned = true;
  r.jobs = jobs();
  plan::PlannerOptions opts;
  opts.jobs = r.jobs;
  const auto t0 = std::chrono::steady_clock::now();
  r.plan = plan::explain_sql(catalog_, select_text, opts);
  r.micros = micros_since(t0);
  return r;
}

QueryResult Database::explain_analyze(std::string_view select_text) const {
  QueryResult r;
  r.planned = true;
  r.jobs = jobs();
  plan::PlannerOptions opts;
  opts.jobs = r.jobs;
  opts.analyze = true;
  const auto t0 = std::chrono::steady_clock::now();
  r.plan = plan::explain_sql(catalog_, select_text, opts);
  r.micros = micros_since(t0);
  r.plan += obs::MemTracker::global().summary();
  r.plan += "\n";
  return r;
}

Table Database::cross_select(const Table& left, const Table& right,
                             const Expr& pred,
                             const Schema& ident_schema) const {
  if (!planner_on()) {
    Table crossed = Table::cross(left, right);
    CompiledExpr compiled =
        compile(pred, crossed.schema(), ident_schema, &catalog_.functions());
    return crossed.select(compiled.predicate());
  }
  return plan::cross_select(left, right, pred, ident_schema,
                            &catalog_.functions(), jobs());
}

}  // namespace ccsql
