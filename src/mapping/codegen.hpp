#pragma once

#include <string>
#include <vector>

#include "relational/table.hpp"

namespace ccsql::mapping {

/// Target dialect of the emitted controller description.
enum class CodeDialect {
  kCxx,      // a C++ function with if-cascades
  kCasez,    // a Verilog-style casez block (one arm per row)
};

/// Emits hardware-controller code from an implementation table — the
/// paper's "code is automatically generated from these tables using SQL
/// report generation".  Input columns become the matched condition (NULL =
/// don't care, omitted), output columns become assignments (NULL = no-op,
/// omitted).  Rows are emitted in table order; the first matching row wins,
/// which is sound because implementation tables have disjoint input
/// combinations.
std::string generate_code(const Table& table, const std::string& unit_name,
                          CodeDialect dialect = CodeDialect::kCxx);

/// Emits an enum-style header declaring every distinct value used by the
/// table, so the generated unit is self-contained.
std::string generate_value_declarations(const Table& table,
                                        const std::string& unit_name);

/// Emits a complete, compilable C++ program: value declarations, the
/// generated step function, and a main() that replays every table row as a
/// test vector and checks the function reproduces the outputs.  The
/// program's exit status is the verification result — this closes the last
/// gap of the section 5 flow (the emitted code, not just the tables, is
/// checked against the debugged specification).
std::string generate_selfcheck_program(const Table& table,
                                       const std::string& unit_name);

}  // namespace ccsql::mapping
