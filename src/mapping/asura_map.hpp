#pragma once

#include <string>
#include <utility>
#include <vector>

#include "protocol/protocol_spec.hpp"

namespace ccsql::mapping {

/// Column groups of the directory controller's outputs, used to partition
/// the extended table into implementation tables (one table per output
/// port of the request / response controllers, paper section 5).
struct OutputGroup {
  std::string name;                      // "locmsg", "dir", ...
  std::vector<std::string> columns;
};

/// The output groups of D / ED.
const std::vector<OutputGroup>& directory_output_groups();

/// Builds the extended directory table spec ED (paper, section 5):
///  * inmsg domain gains the implementation-defined Dfdback request,
///  * new inputs Qstatus / Dqstatus (output-queue and update-queue
///    occupancy) and new output Fdback,
///  * requests finding Qstatus = Full are retried outright,
///  * responses finding Dqstatus = Full ship their directory update in a
///    Dfdback feedback request instead of writing the directory,
///  * a Dfdback request applies the deferred update.
ControllerSpec make_extended_directory(const ProtocolSpec& asura);

/// One generated implementation table.
struct ImplementationTable {
  std::string name;   // e.g. "Request_remmsg"
  bool request = false;  // request controller vs response controller
  std::string group;  // output group name
  Table table;
};

/// Partitions ED into the nine implementation tables:
/// Request_{locmsg,remmsg,memmsg,dir,bdir} and
/// Response_{locmsg,memmsg,dir,bdir}
/// (responses never snoop, so there is no Response_remmsg), each produced
/// by `Select distinct <inputs>, <group> from ED where is{request,response}
/// (inmsg)` exactly as in the paper.
std::vector<ImplementationTable> partition_directory(
    const Table& ed, const FunctionRegistry& functions);

/// Re-creates ED from the nine implementation tables by natural-joining
/// each controller's tables on the input columns and unioning the two
/// controllers (the paper's reverse table operations).
Table reconstruct_extended(const std::vector<ImplementationTable>& parts,
                           const Table& ed_reference);

/// Restores the debugged table D from ED: drop the implementation columns
/// and rows (Dfdback, Full states) and project onto D's schema.
Table reconstruct_base(const Table& ed, const Table& d_reference);

/// End-to-end result of the section 5 flow.
struct MappingReport {
  std::size_t ed_rows = 0;
  std::size_t ed_cols = 0;
  std::vector<std::pair<std::string, std::size_t>> table_rows;
  bool ed_reconstructed = false;    // join/union of parts == ED
  bool base_recovered = false;      // ED restricted/projected == D
  bool contains_debugged = false;   // reconstruction contains original D

  [[nodiscard]] bool ok() const {
    return ed_reconstructed && base_recovered && contains_debugged;
  }
};

/// Runs the full mapping flow for the ASURA directory controller and
/// checks that no errors were introduced (paper: "it was explicitly
/// checked that D could be reconstructed from these nine implementation
/// tables").
MappingReport verify_directory_mapping(const ProtocolSpec& asura);

}  // namespace ccsql::mapping
