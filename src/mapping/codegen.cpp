#include "mapping/codegen.hpp"

#include <cctype>
#include <set>
#include <sstream>

namespace ccsql::mapping {
namespace {

/// Value names are protocol identifiers like "Busy-rx-sd"; mangle them into
/// C identifiers.
std::string mangle(std::string_view text) {
  std::string out = "k";
  bool upper = true;
  for (char c : text) {
    if (c == '-' || c == '.' || c == '_') {
      upper = true;
      continue;
    }
    out += upper ? static_cast<char>(std::toupper(c)) : c;
    upper = false;
  }
  return out;
}

}  // namespace

std::string generate_code(const Table& table, const std::string& unit_name,
                          CodeDialect dialect) {
  std::ostringstream os;
  const Schema& schema = table.schema();

  std::vector<std::size_t> ins, outs;
  for (std::size_t c = 0; c < schema.size(); ++c) {
    (schema.column(c).kind == ColumnKind::kInput ? ins : outs).push_back(c);
  }
  std::vector<ColumnView> cols;
  cols.reserve(schema.size());
  for (std::size_t c = 0; c < schema.size(); ++c) cols.push_back(table.column(c));

  if (dialect == CodeDialect::kCxx) {
    os << "// Generated from implementation table " << unit_name << " ("
       << table.row_count() << " rows). Do not edit.\n";
    os << "void " << unit_name << "_step(const Inputs& in, Outputs& out) {\n";
    for (std::size_t r = 0; r < table.row_count(); ++r) {
      os << "  if (";
      bool first = true;
      for (std::size_t c : ins) {
        const Value v = cols[c][r];
        if (v.is_null()) continue;  // don't care
        if (!first) os << " && ";
        os << "in." << schema.column(c).name << " == " << mangle(v.str());
        first = false;
      }
      if (first) os << "true";
      os << ") {\n";
      for (std::size_t c : outs) {
        const Value v = cols[c][r];
        if (v.is_null()) continue;  // no-op
        os << "    out." << schema.column(c).name << " = "
           << mangle(v.str()) << ";\n";
      }
      os << "    return;\n  }\n";
    }
    os << "  out.error = true;  // illegal input combination\n}\n";
    return os.str();
  }

  // Verilog-style casez over the concatenated inputs.
  os << "// Generated from implementation table " << unit_name << " ("
     << table.row_count() << " rows). Do not edit.\n";
  os << "always @(*) begin : " << unit_name << "\n";
  os << "  casez ({";
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (i > 0) os << ", ";
    os << schema.column(ins[i]).name;
  }
  os << "})\n";
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    os << "    {";
    for (std::size_t i = 0; i < ins.size(); ++i) {
      if (i > 0) os << ", ";
      const Value v = cols[ins[i]][r];
      os << (v.is_null() ? std::string("ANY") : mangle(v.str()));
    }
    os << "}: begin ";
    for (std::size_t c : outs) {
      const Value v = cols[c][r];
      if (v.is_null()) continue;
      os << schema.column(c).name << " <= " << mangle(v.str()) << "; ";
    }
    os << "end\n";
  }
  os << "    default: protocol_error <= 1;\n  endcase\nend\n";
  return os.str();
}

std::string generate_selfcheck_program(const Table& table,
                                       const std::string& unit_name) {
  const Schema& schema = table.schema();
  std::vector<std::size_t> ins, outs;
  for (std::size_t c = 0; c < schema.size(); ++c) {
    (schema.column(c).kind == ColumnKind::kInput ? ins : outs).push_back(c);
  }

  std::ostringstream os;
  os << "// Self-checking unit generated from " << unit_name
     << ".  Exit 0 iff the generated logic reproduces every table row.\n";
  os << "#include <cstdio>\n\n";
  os << generate_value_declarations(table, unit_name) << "\n";
  // kNull (don't-care / no-op) plus an out-of-band initial value for
  // outputs so an untouched output is distinguishable from any real value.
  os << "constexpr int kNull = -1;\nconstexpr int kUnset = -2;\n\n";
  os << "struct Inputs {\n";
  for (std::size_t c : ins) {
    os << "  int " << schema.column(c).name << " = kNull;\n";
  }
  os << "};\nstruct Outputs {\n";
  for (std::size_t c : outs) {
    os << "  int " << schema.column(c).name << " = kUnset;\n";
  }
  os << "  bool error = false;\n};\n\n";
  os << generate_code(table, unit_name, CodeDialect::kCxx) << "\n";

  // The test vectors: one row each of inputs and expected outputs.
  os << "int main() {\n  int failures = 0;\n";
  os << "  struct Vector { Inputs in; Outputs want; };\n";
  os << "  const Vector vectors[] = {\n";
  std::vector<ColumnView> cols;
  cols.reserve(schema.size());
  for (std::size_t c = 0; c < schema.size(); ++c) cols.push_back(table.column(c));
  auto cell = [&](std::size_t r, std::size_t c) -> std::string {
    const Value v = cols[c][r];
    return v.is_null() ? "kNull" : mangle(v.str());
  };
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    os << "    {{";
    for (std::size_t i = 0; i < ins.size(); ++i) {
      if (i > 0) os << ", ";
      os << cell(r, ins[i]);
    }
    os << "}, {";
    for (std::size_t i = 0; i < outs.size(); ++i) {
      if (i > 0) os << ", ";
      os << cell(r, outs[i]);
    }
    os << ", false}},\n";
  }
  os << "  };\n";
  os << "  for (const Vector& v : vectors) {\n";
  os << "    Outputs got;\n";
  os << "    " << unit_name << "_step(v.in, got);\n";
  os << "    bool ok = !got.error;\n";
  for (std::size_t c : outs) {
    const auto& name = schema.column(c).name;
    // A no-op output (kNull in the table) must be left unset by the
    // generated code; anything else must match exactly.
    os << "    ok = ok && (v.want." << name << " == kNull ? got." << name
       << " == kUnset : got." << name << " == v.want." << name << ");\n";
  }
  os << "    if (!ok) { ++failures; }\n  }\n";
  os << "  std::printf(\"" << unit_name
     << ": %d failures over " << table.row_count()
     << " vectors\\n\", failures);\n";
  os << "  return failures == 0 ? 0 : 1;\n}\n";
  return os.str();
}

std::string generate_value_declarations(const Table& table,
                                        const std::string& unit_name) {
  std::set<std::string> values;
  for (std::size_t c = 0; c < table.column_count(); ++c) {
    for (const Value v : table.column(c)) {
      if (!v.is_null()) values.insert(mangle(v.str()));
    }
  }
  std::ostringstream os;
  os << "// Value symbols referenced by " << unit_name << ".\n";
  os << "enum " << unit_name << "_values {\n";
  for (const auto& v : values) os << "  " << v << ",\n";
  os << "};\n";
  return os.str();
}

}  // namespace ccsql::mapping
