#pragma once

#include <string>
#include <vector>

#include "protocol/controller_spec.hpp"

namespace ccsql {

/// Builds an extended controller spec from a debugged one (paper, section
/// 5): implementation detail is added by extending column domains (e.g. the
/// implementation-defined Dfdback request), inserting new implementation
/// input/output columns (Qstatus, Dqstatus, Fdback), and modifying the
/// original column constraints.
///
/// Constraint modification is restricted to *wrapping*: the new constraint
/// for a column is `cond ? then : (original constraints)`, so the original
/// architecture behaviour is preserved verbatim whenever the implementation
/// condition does not fire.  This is what makes the reconstruction check
/// (verify.hpp) meaningful.
class ExtendedTableBuilder {
 public:
  ExtendedTableBuilder(std::string name, const ControllerSpec& base);

  /// Adds extra values to an existing column's domain.
  ExtendedTableBuilder& extend_domain(const std::string& column,
                                      const std::vector<std::string>& extra);

  /// Adds a new implementation input column (placed after the base inputs).
  ExtendedTableBuilder& add_input(const std::string& name,
                                  std::vector<std::string> values);

  /// Adds a new implementation output column (placed after everything).
  ExtendedTableBuilder& add_output(const std::string& name,
                                   std::vector<std::string> values);

  /// Replaces the constraints of `column` with
  ///   cond ? then : (conjunction of the original constraints).
  /// May be called repeatedly; later wraps test their condition first.
  ExtendedTableBuilder& wrap(const std::string& column,
                             std::string_view cond, std::string_view then);

  /// Adds an extra (conjoined) constraint without touching existing ones.
  ExtendedTableBuilder& constrain(const std::string& column,
                                  std::string_view text);

  /// Produces the extended spec.  Message triples are copied from the base.
  [[nodiscard]] ControllerSpec build() const;

 private:
  struct Col {
    Column column;
    Domain domain;
  };

  std::string name_;
  std::vector<Col> base_inputs_;
  std::vector<Col> base_outputs_;
  std::vector<Col> new_inputs_;
  std::vector<Col> new_outputs_;
  std::vector<ColumnConstraint> constraints_;
  std::vector<MessageTriple> triples_;
};

}  // namespace ccsql
