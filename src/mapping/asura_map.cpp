#include "mapping/asura_map.hpp"

#include <algorithm>

#include "mapping/extend.hpp"
#include "protocol/asura/asura.hpp"
#include "relational/error.hpp"

namespace ccsql::mapping {
namespace {

/// The input columns of ED, in schema order (base inputs then the
/// implementation inputs).
std::vector<std::string> ed_input_columns(const Table& ed) {
  std::vector<std::string> out;
  for (const auto& col : ed.schema().columns()) {
    if (col.kind == ColumnKind::kInput) out.push_back(col.name);
  }
  return out;
}

}  // namespace

const std::vector<OutputGroup>& directory_output_groups() {
  static const std::vector<OutputGroup> kGroups = {
      {"locmsg", {"locmsg", "locmsgsrc", "locmsgdest", "locmsgres", "cmpl"}},
      {"remmsg", {"remmsg", "remmsgsrc", "remmsgdest", "remmsgres"}},
      {"memmsg", {"memmsg", "memmsgsrc", "memmsgdest", "memmsgres",
                  "datapath"}},
      {"dir", {"nxtdirst", "nxtdirpv", "dirupd", "Fdback"}},
      {"bdir", {"nxtbdirst", "nxtbdirpv", "bdirop"}},
  };
  return kGroups;
}

ControllerSpec make_extended_directory(const ProtocolSpec& asura) {
  ExtendedTableBuilder b("ED", asura.controller(asura::kDirectory));

  b.extend_domain("inmsg", {"Dfdback"});
  // Qstatus: Full if any output queue or the busy directory is full;
  // Dqstatus: whether the directory update queue is full.  Requests are
  // handled on Qstatus alone, responses on Dqstatus alone; the other
  // column is collapsed to NotFull to keep the table canonical.
  b.add_input("Qstatus", {"Full", "NotFull"});
  b.add_input("Dqstatus", {"Full", "NotFull"});
  b.add_output("Fdback", {"NULL", "Dfdback"});

  b.constrain("Qstatus",
              "isresponse(inmsg) ? Qstatus = NotFull : true");
  b.constrain("Dqstatus",
              "isrequest(inmsg) ? Dqstatus = NotFull : true");

  // The feedback request targets a settled line: the transaction whose
  // update it carries has already completed.
  b.constrain("bdirst", "inmsg = Dfdback ? bdirst = \"I\" : true");

  // Requests finding the output queues full are retried outright; the
  // internal feedback request is simply re-queued (no retry message).
  b.wrap("locmsg",
         "isrequest(inmsg) and Qstatus = Full",
         "inmsg = Dfdback ? locmsg = NULL : locmsg = retry");
  // A retried / re-queued request performs no other action, and the
  // feedback request's only action is the deferred directory write.
  const char* kSquelch =
      "(isrequest(inmsg) and Qstatus = Full) or inmsg = Dfdback";
  b.wrap("remmsg", kSquelch, "remmsg = NULL");
  b.wrap("memmsg", kSquelch, "memmsg = NULL");
  b.wrap("nxtdirst", kSquelch, "nxtdirst = NULL");
  b.wrap("nxtdirpv", kSquelch, "nxtdirpv = NULL");
  b.wrap("nxtbdirst", kSquelch, "nxtbdirst = NULL");
  b.wrap("nxtbdirpv", kSquelch, "nxtbdirpv = NULL");
  b.wrap("bdirop", kSquelch, "bdirop = NULL");
  b.wrap("datapath", kSquelch, "datapath = NULL");
  // Wrap order matters: the Dfdback behaviour is wrapped first so that the
  // outer Qstatus=Full wrap takes precedence (a feedback request that is
  // itself re-queued performs nothing yet).
  b.wrap("dirupd", "inmsg = Dfdback", "dirupd = upd");
  b.wrap("dirupd",
         "isrequest(inmsg) and Qstatus = Full",
         "dirupd = NULL");
  b.wrap("cmpl", "inmsg = Dfdback", "cmpl = done");
  b.wrap("cmpl",
         "isrequest(inmsg) and Qstatus = Full",
         "cmpl = NULL");

  // Routing columns of squelched messages follow their message columns via
  // the original `X = NULL ? Xsrc = NULL : ...` constraints, so they need
  // no wrapping.

  // The deferred-update feedback: a response that must write the directory
  // while the update queue is full ships the update as a Dfdback request.
  b.constrain("Fdback",
              "isresponse(inmsg) and Dqstatus = Full and dirupd = upd ? "
              "Fdback = Dfdback : Fdback = NULL");

  return b.build();
}

std::vector<ImplementationTable> partition_directory(
    const Table& ed, const FunctionRegistry& functions) {
  Catalog cat;
  cat.put("ED", ed);
  cat.functions() = functions;

  const std::vector<std::string> inputs = ed_input_columns(ed);
  std::vector<ImplementationTable> out;
  for (bool request : {true, false}) {
    for (const auto& group : directory_output_groups()) {
      if (!request && group.name == "remmsg") continue;  // responses never snoop
      std::vector<std::string> cols = inputs;
      cols.insert(cols.end(), group.columns.begin(), group.columns.end());
      // The paper's query shape:
      //   Create Table Request_remmsg as
      //     Select distinct ED.Inputs, remmsg from ED
      //     where isrequest(ED.Inputs.inmsg)
      std::string sql = "select distinct ";
      for (std::size_t i = 0; i < cols.size(); ++i) {
        if (i > 0) sql += ", ";
        sql += cols[i];
      }
      sql += " from ED where ";
      sql += request ? "isrequest(inmsg)" : "isresponse(inmsg)";
      ImplementationTable t;
      t.name = (request ? "Request_" : "Response_") + group.name;
      t.request = request;
      t.group = group.name;
      t.table = cat.query(sql);
      out.push_back(std::move(t));
    }
  }
  return out;
}

Table reconstruct_extended(const std::vector<ImplementationTable>& parts,
                           const Table& ed_reference) {
  Table request_side, response_side;
  bool req_init = false, resp_init = false;
  for (const auto& p : parts) {
    Table& side = p.request ? request_side : response_side;
    bool& init = p.request ? req_init : resp_init;
    if (!init) {
      side = p.table;
      init = true;
    } else {
      side = Table::natural_join(side, p.table);
    }
  }
  if (!req_init || !resp_init) {
    throw Error("reconstruct_extended: missing partition tables");
  }

  // The response side has no remmsg group: responses never snoop, so those
  // columns are NULL by construction.  Re-synthesize them before the union.
  for (const auto& col : ed_reference.schema().columns()) {
    if (col.kind == ColumnKind::kOutput &&
        !response_side.schema().has(col.name)) {
      // Widen columnar: hcat the existing columns with one all-NULL column
      // (a positional zip — no per-row copying).
      Table nulls(make_schema({col}));
      nulls.reserve_rows(response_side.row_count());
      for (std::size_t i = 0; i < response_side.row_count(); ++i) {
        nulls.append({null_value()});
      }
      SchemaPtr widened = make_schema([&] {
        auto cols = response_side.schema().columns();
        cols.push_back(col);
        return cols;
      }());
      response_side =
          Table::hcat(std::move(widened), response_side, nulls);
    }
  }

  // Align both sides to the reference column order and union.
  std::vector<std::string> ref_cols;
  for (const auto& c : ed_reference.schema().columns()) {
    ref_cols.push_back(c.name);
  }
  Table req = request_side.project(ref_cols, /*distinct=*/false);
  Table resp = response_side.project(ref_cols, /*distinct=*/false);
  return Table::union_distinct(req, resp).with_schema(
      ed_reference.schema_ptr());
}

Table reconstruct_base(const Table& ed, const Table& d_reference) {
  const Value dfdback = V("Dfdback");
  const Value full = V("Full");
  const std::size_t c_inmsg = ed.schema().index_of("inmsg");
  const std::size_t c_q = ed.schema().index_of("Qstatus");
  const std::size_t c_dq = ed.schema().index_of("Dqstatus");
  Table restricted = ed.select([&](RowView r) {
    return r[c_inmsg] != dfdback && r[c_q] != full && r[c_dq] != full;
  });
  std::vector<std::string> d_cols;
  for (const auto& c : d_reference.schema().columns()) {
    d_cols.push_back(c.name);
  }
  return restricted.project(d_cols, /*distinct=*/true)
      .with_schema(d_reference.schema_ptr());
}

MappingReport verify_directory_mapping(const ProtocolSpec& asura) {
  MappingReport report;
  ControllerSpec ed_spec = make_extended_directory(asura);
  const Table& ed = ed_spec.generate(&asura.database().functions());
  report.ed_rows = ed.row_count();
  report.ed_cols = ed.column_count();

  auto parts = partition_directory(ed, asura.database().functions());
  for (const auto& p : parts) {
    report.table_rows.emplace_back(p.name, p.table.row_count());
  }

  Table rebuilt = reconstruct_extended(parts, ed);
  report.ed_reconstructed = rebuilt.set_equal(ed);

  const Table& d = asura.database().get(asura::kDirectory);
  Table base = reconstruct_base(ed, d);
  report.base_recovered = base.set_equal(d);
  report.contains_debugged = base.contains_all(d);
  return report;
}

}  // namespace ccsql::mapping
