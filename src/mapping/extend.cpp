#include "mapping/extend.hpp"

#include <algorithm>

#include "relational/error.hpp"

namespace ccsql {

ExtendedTableBuilder::ExtendedTableBuilder(std::string name,
                                           const ControllerSpec& base)
    : name_(std::move(name)) {
  const Schema& schema = *base.schema();
  const auto& domains = base.domains();
  for (std::size_t i = 0; i < schema.size(); ++i) {
    // generation_input keeps domains in column order.
    Col col{schema.column(i), domains[i]};
    if (col.column.kind == ColumnKind::kInput) {
      base_inputs_.push_back(std::move(col));
    } else {
      base_outputs_.push_back(std::move(col));
    }
  }
  constraints_ = base.constraints();
  triples_ = base.message_triples();
}

ExtendedTableBuilder& ExtendedTableBuilder::extend_domain(
    const std::string& column, const std::vector<std::string>& extra) {
  for (auto* group : {&base_inputs_, &base_outputs_, &new_inputs_,
                      &new_outputs_}) {
    for (auto& col : *group) {
      if (col.column.name == column) {
        for (const auto& v : extra) col.domain.add(Symbol::intern(v));
        return *this;
      }
    }
  }
  throw BindError("extend_domain: unknown column " + column);
}

ExtendedTableBuilder& ExtendedTableBuilder::add_input(
    const std::string& name, std::vector<std::string> values) {
  new_inputs_.push_back(
      Col{{name, ColumnKind::kInput}, Domain(name, std::move(values))});
  return *this;
}

ExtendedTableBuilder& ExtendedTableBuilder::add_output(
    const std::string& name, std::vector<std::string> values) {
  new_outputs_.push_back(
      Col{{name, ColumnKind::kOutput}, Domain(name, std::move(values))});
  return *this;
}

ExtendedTableBuilder& ExtendedTableBuilder::wrap(const std::string& column,
                                                 std::string_view cond,
                                                 std::string_view then) {
  std::vector<Expr> originals;
  auto it = constraints_.begin();
  while (it != constraints_.end()) {
    if (it->column == column) {
      originals.push_back(std::move(it->expr));
      it = constraints_.erase(it);
    } else {
      ++it;
    }
  }
  Expr base = originals.empty() ? Expr::boolean(true)
                                : Expr::conjunction(std::move(originals));
  constraints_.push_back(ColumnConstraint{
      column, Expr::ternary(parse_expr(cond), parse_expr(then),
                            std::move(base))});
  return *this;
}

ExtendedTableBuilder& ExtendedTableBuilder::constrain(
    const std::string& column, std::string_view text) {
  constraints_.push_back(ColumnConstraint::from_text(column, text));
  return *this;
}

ControllerSpec ExtendedTableBuilder::build() const {
  ControllerSpec spec(name_);
  for (const auto* group : {&base_inputs_, &new_inputs_, &base_outputs_,
                            &new_outputs_}) {
    for (const auto& col : *group) {
      spec.add_column(col.column, col.domain);
    }
  }
  for (const auto& c : constraints_) {
    spec.constrain(c.column, c.expr.to_string());
  }
  for (const auto& t : triples_) spec.add_message_triple(t);
  return spec;
}

}  // namespace ccsql
