#include "solver/generator.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "relational/error.hpp"
#include "relational/format.hpp"
#include "relational/query.hpp"

namespace ccsql {
namespace {

/// A miniature directory-controller slice in the paper's style: two inputs
/// (inmsg, dirst) and two outputs (remmsg, nxtdirst).
GenerationInput mini_input() {
  GenerationInput in;
  in.schema = make_schema({{"inmsg", ColumnKind::kInput},
                           {"dirst", ColumnKind::kInput},
                           {"remmsg", ColumnKind::kOutput},
                           {"nxtdirst", ColumnKind::kOutput}});
  in.domains = {
      Domain("inmsg", std::vector<std::string>{"readex", "wb"}),
      Domain("dirst", std::vector<std::string>{"I", "SI", "MESI"}),
      Domain("remmsg", std::vector<std::string>{"NULL", "sinv"}),
      Domain("nxtdirst", std::vector<std::string>{"I", "Busy-sd", "Busy-d"}),
  };
  in.constraints = {
      // Legal input combinations: wb only arrives for a MESI line.
      ColumnConstraint::from_text(
          "dirst", "inmsg = wb ? dirst = MESI : dirst != MESI"),
      // Paper-style output constraint for remmsg.
      ColumnConstraint::from_text(
          "remmsg",
          "inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL"),
      // Next state.
      ColumnConstraint::from_text(
          "nxtdirst",
          "inmsg = readex ? "
          "(dirst = SI ? nxtdirst = \"Busy-sd\" : nxtdirst = \"Busy-d\") : "
          "nxtdirst = I"),
  };
  return in;
}

TEST(Generator, IncrementalProducesExpectedRows) {
  Table t = generate_incremental(mini_input());
  // Inputs surviving the dirst constraint: readex×{I,SI}, wb×{MESI} = 3.
  // Outputs are functionally determined, so 3 rows total.
  ASSERT_EQ(t.row_count(), 3u);
  Catalog cat;
  cat.put("T", t);
  EXPECT_EQ(cat.query("select * from T where inmsg = readex and dirst = SI "
                      "and remmsg = sinv and nxtdirst = \"Busy-sd\"")
                .row_count(),
            1u);
  EXPECT_EQ(cat.query("select * from T where inmsg = readex and dirst = I "
                      "and remmsg = NULL and nxtdirst = \"Busy-d\"")
                .row_count(),
            1u);
  EXPECT_EQ(cat.query("select * from T where inmsg = wb and dirst = MESI "
                      "and remmsg = NULL and nxtdirst = I")
                .row_count(),
            1u);
}

TEST(Generator, MonolithicMatchesIncremental) {
  GenerationInput in = mini_input();
  Table inc = generate_incremental(in);
  Table mono = generate_monolithic(in);
  EXPECT_TRUE(inc.set_equal(mono));
}

TEST(Generator, TraceRecordsPruning) {
  GenerationInput in = mini_input();
  IncrementalTrace trace;
  Table t = generate_incremental(in, &trace);
  ASSERT_EQ(trace.steps.size(), 4u);
  EXPECT_EQ(trace.steps[0].column, "inmsg");
  // After inmsg: 2 rows, no constraint applicable yet.
  EXPECT_EQ(trace.steps[0].rows_after, 2u);
  // After dirst: 6 crossed, pruned to 3 by the dirst constraint.
  EXPECT_EQ(trace.steps[1].rows_before_filter, 6u);
  EXPECT_EQ(trace.steps[1].rows_after, 3u);
  ASSERT_EQ(trace.steps[1].constraints_applied.size(), 1u);
  EXPECT_EQ(trace.steps[1].constraints_applied[0], "dirst");
  // Final row count matches the generated table.
  EXPECT_EQ(trace.steps.back().rows_after, t.row_count());
}

TEST(Generator, UnconstrainedColumnsGiveFullCross) {
  GenerationInput in;
  in.schema = Schema::of({"a", "b"});
  in.domains = {Domain("a", std::vector<std::string>{"1", "2"}),
                Domain("b", std::vector<std::string>{"x", "y", "z"})};
  Table t = generate_incremental(in);
  EXPECT_EQ(t.row_count(), 6u);
  EXPECT_EQ(in.cross_cardinality(), 6u);
  EXPECT_TRUE(generate_monolithic(in).set_equal(t));
}

TEST(Generator, InconsistentConstraintsYieldZeroRows) {
  GenerationInput in = mini_input();
  in.constraints.push_back(
      ColumnConstraint::from_text("inmsg", "inmsg = nosuchmsg"));
  Table t = generate_incremental(in);
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_EQ(first_emptying_column(in), "inmsg");
  EXPECT_EQ(generate_monolithic(in).row_count(), 0u);
}

TEST(Generator, FirstEmptyingColumnEmptyWhenConsistent) {
  EXPECT_EQ(first_emptying_column(mini_input()), "");
}

TEST(Generator, ConstraintOnLaterColumnDeferredUntilBound) {
  // A constraint naming a later column must not be applied early.
  GenerationInput in;
  in.schema = Schema::of({"a", "b"});
  in.domains = {Domain("a", std::vector<std::string>{"1", "2"}),
                Domain("b", std::vector<std::string>{"1", "2"})};
  in.constraints = {ColumnConstraint::from_text("a", "a = b")};
  IncrementalTrace trace;
  Table t = generate_incremental(in, &trace);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_TRUE(trace.steps[0].constraints_applied.empty());
  EXPECT_EQ(trace.steps[1].constraints_applied.size(), 1u);
}

TEST(Generator, FunctionsAvailableInConstraints) {
  FunctionRegistry fns;
  fns.add_unary("isrequest", [](Value v) { return v == V("readex"); });
  GenerationInput in;
  in.schema = Schema::of({"m", "act"});
  in.domains = {Domain("m", std::vector<std::string>{"readex", "data"}),
                Domain("act", std::vector<std::string>{"queue", "drop"})};
  in.constraints = {ColumnConstraint::from_text(
      "act", "isrequest(m) ? act = queue : act = drop")};
  in.functions = &fns;
  Table t = generate_incremental(in);
  ASSERT_EQ(t.row_count(), 2u);
  Catalog cat;
  cat.put("T", t);
  EXPECT_EQ(
      cat.query("select * from T where m = readex and act = queue")
          .row_count(),
      1u);
  EXPECT_TRUE(generate_monolithic(in).set_equal(t));
}

TEST(Generator, ValidateRejectsBadInputs) {
  GenerationInput in = mini_input();
  in.domains.pop_back();
  EXPECT_THROW(in.validate(), SchemaError);

  GenerationInput in2 = mini_input();
  in2.domains[0] = Domain("bogus", std::vector<std::string>{"x"});
  EXPECT_THROW(in2.validate(), Error);

  GenerationInput in3 = mini_input();
  in3.constraints.push_back(ColumnConstraint::unconstrained("nope"));
  EXPECT_THROW(in3.validate(), BindError);

  GenerationInput in4 = mini_input();
  in4.domains[0] = Domain("inmsg", std::vector<std::string>{});
  EXPECT_THROW(in4.validate(), SchemaError);
}

TEST(Generator, CrossCardinalitySaturates) {
  GenerationInput in;
  std::vector<Column> cols;
  for (int i = 0; i < 40; ++i) {
    std::string name = "c" + std::to_string(i);
    cols.push_back({name, ColumnKind::kInput});
    std::vector<std::string> vals;
    for (int v = 0; v < 10; ++v) vals.push_back(std::to_string(v));
    in.domains.emplace_back(name, vals);
  }
  in.schema = make_schema(cols);
  EXPECT_EQ(in.cross_cardinality(),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Generator, PaperDirpvConstraintShape) {
  // The paper's dirpv constraint:
  //   inmsg = "data" and dirst = "Busy-d" ? dirpv = zero : dirpv = one
  GenerationInput in;
  in.schema = Schema::of({"inmsg", "dirst", "dirpv"});
  in.domains = {
      Domain("inmsg", std::vector<std::string>{"data", "idone"}),
      Domain("dirst", std::vector<std::string>{"Busy-d", "Busy-s"}),
      Domain("dirpv", std::vector<std::string>{"zero", "one", "gone"}),
  };
  in.constraints = {ColumnConstraint::from_text(
      "dirpv",
      "inmsg = \"data\" and dirst = \"Busy-d\" ? dirpv = zero : "
      "dirpv = one")};
  Table t = generate_incremental(in);
  // 4 input combos, dirpv functionally determined -> 4 rows.
  ASSERT_EQ(t.row_count(), 4u);
  Catalog cat;
  cat.put("T", t);
  EXPECT_EQ(cat.query("select * from T where dirpv = gone").row_count(), 0u);
  EXPECT_EQ(cat.query("select * from T where inmsg = \"data\" and "
                      "dirst = \"Busy-d\" and dirpv = zero")
                .row_count(),
            1u);
  EXPECT_EQ(cat.query("select * from T where dirpv = one").row_count(), 3u);
}

}  // namespace
}  // namespace ccsql
