// Differential property test: on randomly generated schemas/domains and
// random column constraints, incremental generation must produce exactly the
// same table as monolithic conjunction solving.  This is the correctness
// argument for using the fast path everywhere.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "solver/generator.hpp"

namespace ccsql {
namespace {

class GeneratorEquivalence : public ::testing::TestWithParam<unsigned> {};

/// Builds a random expression over `cols`, each column having values
/// v0..v{alpha-1}.  Depth-bounded to keep evaluation cheap.
Expr random_expr(std::mt19937& rng, const std::vector<std::string>& cols,
                 int alpha, int depth) {
  std::uniform_int_distribution<int> pick(0, 5);
  std::uniform_int_distribution<int> col(0, static_cast<int>(cols.size()) - 1);
  std::uniform_int_distribution<int> val(0, alpha - 1);
  auto atom_col = [&] { return Atom::ident(cols[col(rng)]); };
  auto atom_val = [&] { return Atom::ident("v" + std::to_string(val(rng))); };
  if (depth <= 0) {
    return Expr::compare(atom_col(), rng() % 2 == 0, atom_val());
  }
  switch (pick(rng)) {
    case 0:
      return Expr::compare(atom_col(), rng() % 2 == 0, atom_val());
    case 1:
      return Expr::compare(atom_col(), rng() % 2 == 0, atom_col());
    case 2: {
      std::vector<Atom> set{atom_val(), atom_val()};
      return Expr::in(atom_col(), rng() % 2 == 0, std::move(set));
    }
    case 3:
      return Expr::conjunction({random_expr(rng, cols, alpha, depth - 1),
                                random_expr(rng, cols, alpha, depth - 1)});
    case 4:
      return Expr::disjunction({random_expr(rng, cols, alpha, depth - 1),
                                random_expr(rng, cols, alpha, depth - 1)});
    default:
      return Expr::ternary(random_expr(rng, cols, alpha, depth - 1),
                           random_expr(rng, cols, alpha, depth - 1),
                           random_expr(rng, cols, alpha, depth - 1));
  }
}

TEST_P(GeneratorEquivalence, IncrementalEqualsMonolithic) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> ncols_d(2, 5);
  std::uniform_int_distribution<int> alpha_d(2, 4);
  const int ncols = ncols_d(rng);
  const int alpha = alpha_d(rng);

  GenerationInput in;
  std::vector<std::string> names;
  std::vector<Column> cols;
  for (int i = 0; i < ncols; ++i) {
    names.push_back("c" + std::to_string(i));
    cols.push_back({names.back(), i < ncols / 2 ? ColumnKind::kInput
                                                : ColumnKind::kOutput});
    std::vector<std::string> vals;
    for (int v = 0; v < alpha; ++v) vals.push_back("v" + std::to_string(v));
    in.domains.emplace_back(names.back(), vals);
  }
  in.schema = make_schema(cols);

  std::uniform_int_distribution<int> nconstraints_d(0, ncols);
  const int nconstraints = nconstraints_d(rng);
  for (int k = 0; k < nconstraints; ++k) {
    std::uniform_int_distribution<int> col(0, ncols - 1);
    in.constraints.push_back(
        ColumnConstraint{names[col(rng)], random_expr(rng, names, alpha, 2)});
  }

  Table inc = generate_incremental(in);
  Table mono = generate_monolithic(in);
  EXPECT_TRUE(inc.set_equal(mono))
      << "ncols=" << ncols << " alpha=" << alpha
      << " constraints=" << nconstraints;
  EXPECT_EQ(inc.row_count(), mono.row_count());
}

TEST_P(GeneratorEquivalence, GeneratedRowsSatisfyAllConstraints) {
  std::mt19937 rng(GetParam() + 1000);
  std::vector<std::string> names{"a", "b", "c"};
  GenerationInput in;
  in.schema = Schema::of(names);
  for (const auto& n : names) {
    in.domains.emplace_back(n, std::vector<std::string>{"v0", "v1", "v2"});
  }
  for (int k = 0; k < 3; ++k) {
    in.constraints.push_back(
        ColumnConstraint{names[k % 3], random_expr(rng, names, 3, 2)});
  }
  Table t = generate_incremental(in);
  for (const auto& c : in.constraints) {
    CompiledExpr p = compile(c.expr, t.schema(), *in.schema, nullptr);
    for (std::size_t r = 0; r < t.row_count(); ++r) {
      EXPECT_TRUE(p.eval(t.row(r))) << c.expr.to_string();
    }
  }
  // And every cross-product row NOT in t violates some constraint.
  Table mono = generate_monolithic(in);
  EXPECT_TRUE(t.set_equal(mono));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorEquivalence,
                         ::testing::Range(1u, 21u));

}  // namespace
}  // namespace ccsql
