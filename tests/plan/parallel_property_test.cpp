// Property tests for the determinism contract of the parallel engine:
// `jobs` decides only where morsels run, so for any fixed seed the rows a
// query produces — including their ORDER — must be byte-identical between
// --jobs 1 (serial) and --jobs N.  Tables here are sized past the parallel
// threshold (2048 rows) so the morsel paths genuinely engage.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "relational/database.hpp"
#include "relational/format.hpp"

namespace ccsql {
namespace {

using Rng = std::mt19937;

std::size_t pick(Rng& rng, std::size_t n) {
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
}

const std::vector<std::string> kValues = {"v0", "v1", "v2", "v3",
                                          "v4", "v5", "v6", "v7"};

/// A table big enough (>= 2048 rows) that scans, filters, and hash-join
/// probes all take their parallel paths.
Table big_table(Rng& rng, const std::vector<std::string>& cols,
                std::size_t rows) {
  Table t(Schema::of(cols));
  t.reserve_rows(rows);
  std::vector<std::string> row(cols.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      row[c] = kValues[pick(rng, kValues.size())];
    }
    t.append_texts(row);
  }
  return t;
}

Database seeded_db(unsigned seed) {
  Rng rng(seed);
  Catalog cat;
  cat.put("L", big_table(rng, {"k", "p", "q"}, 4096));
  cat.put("R", big_table(rng, {"k", "r"}, 3000));
  cat.put("S", big_table(rng, {"p", "s"}, 2500));
  return Database(std::move(cat));
}

const std::vector<std::string> kQueries = {
    // Parallel scan+filter.
    "select k, p from L where p = v0",
    "select * from L where not q = v1 and not p = v2",
    "select k from L where k = v0 or k = v1 or k = v2 or k = v3",
    // Hash join: parallel build (index on y.k) + parallel probe over L.
    "select x.p, y.r from L x, R y where x.k = y.k and x.q = v0",
    // Three-way join through both big relations.
    "select y.r, z.s from L x, R y, S z where x.k = y.k and x.p = z.p "
    "and x.q = v2 and y.r = v0 and z.s = v1",
    // Fused count.
    "select count(*) from L where p = v0 and q = v1",
    "select count(*) from L",
};

TEST(ParallelProperty, QueriesAreByteIdenticalAcrossJobs) {
  for (unsigned seed : {1u, 7u, 42u}) {
    Database serial = seeded_db(seed);
    serial.set_planner(true).set_jobs(1);
    Database wide = seeded_db(seed);
    wide.set_planner(true).set_jobs(4);
    for (const auto& sql : kQueries) {
      EXPECT_EQ(to_csv(serial.query(sql).rows), to_csv(wide.query(sql).rows))
          << "seed " << seed << ": " << sql;
    }
  }
}

TEST(ParallelProperty, ParallelAgreesWithNaiveOracleOnScans) {
  // The naive oracle materialises the full FROM cross product, so only
  // single-table statements are feasible at parallel-threshold sizes; the
  // joins get their oracle check below, on oracle-sized tables.
  Database wide = seeded_db(3);
  wide.set_planner(true).set_jobs(4);
  Database naive = seeded_db(3);
  naive.set_planner(false);
  for (const auto& sql : kQueries) {
    if (sql.find(" y") != std::string::npos) continue;  // skip the joins
    Table oracle = naive.query(sql).rows;
    Table parallel = wide.query(sql).rows;
    EXPECT_EQ(to_csv(parallel), to_csv(oracle)) << sql;
  }
}

TEST(ParallelProperty, JoinsAgreeWithNaiveOracleAtOracleScale) {
  Rng rng(23);
  Catalog cat;
  cat.put("L", big_table(rng, {"k", "p", "q"}, 120));
  cat.put("R", big_table(rng, {"k", "r"}, 90));
  cat.put("S", big_table(rng, {"p", "s"}, 80));
  Database naive = Database(cat);
  naive.set_planner(false);
  Database wide = Database(std::move(cat));
  wide.set_planner(true).set_jobs(4);
  for (const auto& sql : kQueries) {
    EXPECT_EQ(to_csv(wide.query(sql).rows), to_csv(naive.query(sql).rows))
        << sql;
  }
}

TEST(ParallelProperty, CheckEmptyVerdictsMatchAcrossJobs) {
  Database serial = seeded_db(11);
  serial.set_jobs(1);
  Database wide = seeded_db(11);
  wide.set_jobs(4);
  const std::vector<std::string> invariants = {
      "[select k from L where p = v0 and q = v0 and k = v0] = empty",
      "[select k from L where p = nosuchvalue] = empty",
      "[select r from R where k = v0 and r = v1] = empty and "
      "[select s from S where p = v1 and s = v2] = empty",
  };
  for (const auto& inv : invariants) {
    EXPECT_EQ(serial.check_empty(inv), wide.check_empty(inv)) << inv;
  }
}

TEST(ParallelProperty, UnionIsByteIdenticalAcrossJobs) {
  for (unsigned seed : {5u, 19u}) {
    Database serial = seeded_db(seed);
    serial.set_planner(true).set_jobs(1);
    Database wide = seeded_db(seed);
    wide.set_planner(true).set_jobs(4);
    const std::string sql =
        "select k from L where p = v0 union "
        "select k from R where r = v1 union "
        "select k from L where q = v2";
    EXPECT_EQ(to_csv(serial.query(sql).rows), to_csv(wide.query(sql).rows))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace ccsql
