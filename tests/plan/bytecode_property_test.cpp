// Property tests for the bytecode engine's differential contract: for any
// expression the interpreter (CompiledExpr), the scalar bytecode engine
// (Program::eval), and the vectorized batch engine (Program::eval_batch)
// must select exactly the same rows, and whole queries must come out
// byte-identical with the engine on or off, at any jobs value.  Expressions
// and tables are random but seeded, so failures replay.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "relational/bytecode.hpp"
#include "relational/database.hpp"
#include "relational/expr.hpp"
#include "relational/format.hpp"

namespace ccsql {
namespace {

using Rng = std::mt19937;

std::size_t pick(Rng& rng, std::size_t n) {
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
}

const std::vector<std::string> kCols = {"a", "b", "c"};
const std::vector<std::string> kValues = {"v0", "v1", "v2", "v3", "v4"};

Atom random_atom(Rng& rng) {
  // Bare identifiers double as column names and value literals, exactly the
  // ambiguity compile()/compile_bytecode() must resolve identically.
  if (pick(rng, 2) == 0) return Atom::ident(kCols[pick(rng, kCols.size())]);
  return pick(rng, 2) == 0 ? Atom::ident(kValues[pick(rng, kValues.size())])
                           : Atom::quoted(kValues[pick(rng, kValues.size())]);
}

Expr random_expr(Rng& rng, int depth) {
  const std::size_t choice = depth <= 0 ? pick(rng, 3) : pick(rng, 7);
  switch (choice) {
    case 0:
      return Expr::compare(random_atom(rng), pick(rng, 2) == 0,
                           random_atom(rng));
    case 1: {
      std::vector<Atom> set;
      const std::size_t n = 1 + pick(rng, 3);
      for (std::size_t i = 0; i < n; ++i) set.push_back(random_atom(rng));
      return Expr::in(random_atom(rng), pick(rng, 2) == 0, std::move(set));
    }
    case 2:
      return Expr::boolean(pick(rng, 2) == 0);
    case 3:
    case 4: {
      std::vector<Expr> kids;
      const std::size_t n = 2 + pick(rng, 2);
      for (std::size_t i = 0; i < n; ++i) {
        kids.push_back(random_expr(rng, depth - 1));
      }
      return choice == 3 ? Expr::conjunction(std::move(kids))
                         : Expr::disjunction(std::move(kids));
    }
    case 5:
      return Expr::negation(random_expr(rng, depth - 1));
    default:
      return Expr::ternary(random_expr(rng, depth - 1),
                           random_expr(rng, depth - 1),
                           random_expr(rng, depth - 1));
  }
}

Table random_table(Rng& rng, std::size_t rows) {
  Table t(Schema::of(kCols));
  t.reserve_rows(rows);
  std::vector<std::string> row(kCols.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& cell : row) cell = kValues[pick(rng, kValues.size())];
    t.append_texts(row);
  }
  return t;
}

// The core differential property: three engines, one selection.
TEST(BytecodeProperty, EnginesSelectIdenticalRows) {
  for (unsigned seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    const Table t = random_table(rng, 3000);
    const Schema& s = t.schema();
    bc::Scratch scratch;
    for (int round = 0; round < 40; ++round) {
      const Expr e = random_expr(rng, 3);
      const CompiledExpr interp = compile(e, s, s);
      const bc::Program prog = compile_bytecode(e, s, s);

      bc::Sel expected;
      for (std::uint32_t i = 0; i < t.row_count(); ++i) {
        if (interp.eval(t.row(i))) expected.push_back(i);
      }

      bc::Sel scalar_hits;
      for (std::uint32_t i = 0; i < t.row_count(); ++i) {
        if (prog.eval(t.row(i))) scalar_hits.push_back(i);
      }
      EXPECT_EQ(scalar_hits, expected)
          << "seed " << seed << " scalar: " << e.to_string();

      // Vectorized, batch-at-a-time like the executor drives it.
      bc::Sel batch_hits;
      bc::Sel sel;
      bc::Sel out;
      const std::size_t n = t.row_count();
      for (std::size_t b = 0; b < n; b += 1024) {
        const std::size_t be = std::min(n, b + 1024);
        sel.clear();
        for (std::size_t i = b; i < be; ++i) {
          sel.push_back(static_cast<std::uint32_t>(i));
        }
        prog.eval_batch(t.column_ptrs(), sel, out, scratch);
        batch_hits.insert(batch_hits.end(), out.begin(), out.end());
      }
      EXPECT_EQ(batch_hits, expected)
          << "seed " << seed << " batch: " << e.to_string();
    }
  }
}

// End to end: the engine switch and the jobs knob must both be invisible in
// query results.
TEST(BytecodeProperty, QueriesByteIdenticalAcrossEnginesAndJobs) {
  const bool before = bytecode_enabled();
  for (unsigned seed : {11u, 29u}) {
    Rng rng(seed);
    Catalog cat;
    cat.put("T", random_table(rng, 3000));
    std::vector<std::string> sqls;
    for (int round = 0; round < 12; ++round) {
      sqls.push_back("select * from T where " +
                     random_expr(rng, 2).to_string());
    }

    std::vector<std::string> reference;
    for (int engine = 0; engine < 2; ++engine) {
      set_bytecode_enabled(engine == 1);
      for (int jobs : {1, 4}) {
        Database db{Catalog(cat)};
        db.set_planner(true).set_jobs(jobs);
        for (std::size_t q = 0; q < sqls.size(); ++q) {
          const std::string got = to_csv(db.query(sqls[q]).rows);
          if (reference.size() <= q) {
            reference.push_back(got);
          } else {
            EXPECT_EQ(got, reference[q])
                << "seed " << seed << " engine " << engine << " jobs " << jobs
                << ": " << sqls[q];
          }
        }
      }
    }
  }
  set_bytecode_enabled(before);
}

}  // namespace
}  // namespace ccsql
