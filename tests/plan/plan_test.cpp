#include "plan/planner.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "plan/explain.hpp"
#include "plan/ir.hpp"
#include "plan/optimizer.hpp"
#include "protocol/asura/asura.hpp"
#include "relational/database.hpp"
#include "relational/query.hpp"

namespace ccsql {
namespace {

using plan::PlanNode;
using plan::PlanPtr;

Catalog make_catalog() {
  Catalog db;
  Table d(Schema::of({"dirst", "dirpv", "memmsg"}));
  d.append_texts({"I", "zero", "mread"});
  d.append_texts({"MESI", "one", "NULL"});
  d.append_texts({"MESI", "one", "wb"});
  d.append_texts({"SI", "set", "NULL"});
  d.append_texts({"I", "zero", "wb"});
  db.put("D", std::move(d));
  Table m(Schema::of({"inmsg", "outmsg"}));
  m.append_texts({"mread", "data"});
  m.append_texts({"wb", "compl"});
  m.append_texts({"mwrite", "mdone"});
  db.put("M", std::move(m));
  return db;
}

TEST(FoldExpr, TernaryWithConstantCondition) {
  Expr e = plan::fold_expr(parse_expr("true ? a = x : b = y"));
  EXPECT_EQ(e.to_string(), "a = x");
  e = plan::fold_expr(parse_expr("false ? a = x : b = y"));
  EXPECT_EQ(e.to_string(), "b = y");
}

TEST(FoldExpr, TernaryWithConstantBranches) {
  // c ? true : false  ==  c
  Expr e = plan::fold_expr(parse_expr("a = x ? true : false"));
  EXPECT_EQ(e.to_string(), "a = x");
  // c ? false : true  ==  not c (folded into the comparison)
  e = plan::fold_expr(parse_expr("a = x ? false : true"));
  EXPECT_EQ(e.to_string(), "a != x");
  e = plan::fold_expr(parse_expr("a = x ? true : true"));
  EXPECT_EQ(e.to_string(), "true");
}

TEST(FoldExpr, NegationsFoldIntoComparisons) {
  EXPECT_EQ(plan::fold_expr(parse_expr("not a = x")).to_string(), "a != x");
  EXPECT_EQ(plan::fold_expr(parse_expr("not not a = x")).to_string(),
            "a = x");
  EXPECT_EQ(plan::fold_expr(parse_expr("not a in (x, y)")).to_string(),
            "a not in (x, y)");
}

TEST(FoldExpr, ConjunctionConstants) {
  EXPECT_EQ(plan::fold_expr(parse_expr("a = x and false")).to_string(),
            "false");
  EXPECT_EQ(plan::fold_expr(parse_expr("a = x and true")).to_string(),
            "a = x");
  EXPECT_EQ(plan::fold_expr(parse_expr("a = x or true")).to_string(), "true");
  EXPECT_EQ(plan::fold_expr(parse_expr("a = x or false")).to_string(),
            "a = x");
}

TEST(Planner, EqualityLiteralLowersToIndexLookup) {
  Catalog db = make_catalog();
  PlanPtr p = plan::plan_select(
      db, parse_select("select dirpv from D where dirst = \"MESI\""));
  ASSERT_EQ(p->kind, PlanNode::Kind::kProject);
  EXPECT_EQ(p->child().kind, PlanNode::Kind::kIndexLookup);
  EXPECT_EQ(p->child().columns, std::vector<std::string>{"dirst"});
}

TEST(Planner, CrossWithEqualityLowersToHashJoin) {
  Catalog db = make_catalog();
  PlanPtr p = plan::plan_select(
      db, parse_select("select a.memmsg, b.outmsg from D a, M b "
                       "where a.memmsg = b.inmsg"));
  ASSERT_EQ(p->kind, PlanNode::Kind::kProject);
  const PlanNode& join = p->child();
  ASSERT_EQ(join.kind, PlanNode::Kind::kHashJoin);
  EXPECT_EQ(join.left_keys, std::vector<std::string>{"a.memmsg"});
  EXPECT_EQ(join.right_keys, std::vector<std::string>{"b.inmsg"});
  EXPECT_EQ(join.child(0).kind, PlanNode::Kind::kScan);
  EXPECT_EQ(join.child(1).kind, PlanNode::Kind::kScan);
}

TEST(Planner, SingleSidePredicatesPushBelowTheJoin) {
  Catalog db = make_catalog();
  PlanPtr p = plan::plan_select(
      db, parse_select("select a.memmsg from D a, M b "
                       "where a.memmsg = b.inmsg and not b.outmsg = \"compl\" "
                       "and a.dirst = \"I\""));
  const PlanNode& join = p->child();
  ASSERT_EQ(join.kind, PlanNode::Kind::kHashJoin);
  // a.dirst = "I" became an index lookup on the left scan; the negated
  // b-side filter sank below the join on the right.
  EXPECT_EQ(join.child(0).kind, PlanNode::Kind::kIndexLookup);
  EXPECT_EQ(join.child(1).kind, PlanNode::Kind::kSelect);
  EXPECT_EQ(join.child(1).child().kind, PlanNode::Kind::kScan);
}

TEST(Planner, ExistsModeCapsThePlanWithLimitOne) {
  Catalog db = make_catalog();
  plan::PlannerOptions opts;
  opts.exists_only = true;
  PlanPtr p = plan::plan_select(
      db, parse_select("select dirst from D where dirst = I order by dirst"),
      opts);
  ASSERT_EQ(p->kind, PlanNode::Kind::kLimit);
  EXPECT_EQ(p->limit, 1u);
  // The ORDER BY is irrelevant to emptiness and was dropped.
  for (const PlanNode* n = p.get(); n != nullptr;
       n = n->children.empty() ? nullptr : &n->child()) {
    EXPECT_NE(n->kind, PlanNode::Kind::kSort);
  }
}

TEST(Planner, PlannedMatchesNaiveOnRepresentativeQueries) {
  Catalog db = make_catalog();
  const char* queries[] = {
      "select dirst, dirpv from D where dirst = \"MESI\" and "
      "not dirpv = \"one\"",
      "select distinct dirst from D",
      "select * from D where dirpv in (zero, set)",
      "select a.memmsg, b.outmsg from D a, M b where a.memmsg = b.inmsg",
      "select a.dirst from D a, M b where a.memmsg = b.inmsg and "
      "b.outmsg = \"compl\" order by a.dirst",
      "select count(*) from D where dirst = I",
      "select dirst from D where dirst = I union select dirst from D "
      "where dirst = \"SI\"",
      "select dirst from D where true ? dirst = I : false",
  };
  for (const char* q : queries) {
    SelectStmt stmt = parse_select(q);
    Table planned = plan::run_select(db, stmt);
    Table naive = db.run_naive(stmt);
    EXPECT_EQ(planned.row_count(), naive.row_count()) << q;
    EXPECT_TRUE(planned.set_equal(naive)) << q;
  }
}

TEST(Planner, GlobalToggleRoutesCatalogRun) {
  Catalog db = make_catalog();
  SelectStmt stmt =
      parse_select("select a.memmsg from D a, M b where a.memmsg = b.inmsg");
  ASSERT_TRUE(plan::planner_enabled());
  Table planned = db.run(stmt);
  plan::set_planner_enabled(false);
  Table naive = db.run(stmt);
  plan::set_planner_enabled(true);
  EXPECT_TRUE(planned.set_equal(naive));
  EXPECT_EQ(planned.row_count(), naive.row_count());
}

TEST(Planner, CheckEmptyAgreesWithNaive) {
  Catalog db = make_catalog();
  const char* invariants[] = {
      "[select dirst from D where dirst = \"MESI\" and dirpv = zero] = empty",
      "[select a.memmsg from D a, M b where a.memmsg = b.inmsg and "
      "not b.outmsg = \"compl\" and a.memmsg = \"wb\"] = empty",
      "[select dirst from D where dirst = I] = empty",
  };
  for (const char* inv : invariants) {
    const bool planned = db.check_empty(inv);
    plan::set_planner_enabled(false);
    const bool naive = db.check_empty(inv);
    plan::set_planner_enabled(true);
    EXPECT_EQ(planned, naive) << inv;
  }
}

TEST(CrossSelect, MatchesNaiveCrossPlusFilter) {
  Table left(Schema::of({"x", "y"}));
  left.append_texts({"a", "1"});
  left.append_texts({"b", "2"});
  left.append_texts({"c", "1"});
  Table right(Schema::of({"z"}));
  right.append_texts({"1"});
  right.append_texts({"2"});
  right.append_texts({"3"});
  const SchemaPtr full = Schema::of({"x", "y", "z"});
  Expr pred = parse_expr("y = z and not x = c");

  Table planned = plan::cross_select(left, right, pred, *full);
  Table crossed = Table::cross(left, right);
  Table naive =
      crossed.select(compile(pred, crossed.schema(), *full).predicate());
  EXPECT_EQ(planned.row_count(), naive.row_count());
  EXPECT_TRUE(planned.set_equal(naive));
  EXPECT_EQ(planned.row_count(), 2u);  // (a, 1, 1) and (b, 2, 2)
}

// ---- Golden EXPLAIN output for two representative ASURA invariant queries.

TEST(Explain, GoldenSingleTablePointLookup) {
  auto spec = asura::make_asura();
  // The first SELECT of the suite's first invariant
  // (dir-state-pv-consistency): an equality on dirst plus a residual
  // filter.
  const std::string out = plan::explain_sql(
      spec->database().catalog(),
      "Select dirst, dirpv from D where dirst = \"MESI\" and "
      "not dirpv = \"one\"");
  EXPECT_EQ(out,
            "Project [dirst, dirpv] (est=10.9, actual=0)\n"
            "  Select (dirpv != \"one\") (est=10.9, actual=0)\n"
            "    IndexLookup D (dirst = \"MESI\") (est=33.1, actual=11)\n");
}

TEST(Explain, GoldenCrossTableHashJoin) {
  auto spec = asura::make_asura();
  // The SELECT of mem-wb-reaches-completion: directory-to-memory writeback
  // handshake, planned as a hash join instead of a cross product.
  const std::string out = plan::explain_sql(
      spec->database().catalog(),
      "Select a.memmsg, b.inmsg, b.outmsg from D a, M b "
      "where a.memmsg = b.inmsg and a.memmsg = \"wb\" and "
      "not b.outmsg = \"compl\"");
  EXPECT_EQ(
      out,
      "Project [a.memmsg, b.inmsg, b.outmsg] (est=5.5, actual=0)\n"
      "  HashJoin (a.memmsg = b.inmsg) (est=5.5, actual=0)\n"
      "    IndexLookup D as a (a.memmsg = \"wb\") (est=33.1, actual=1)\n"
      "    Select (b.outmsg != \"compl\") (est=1.7, actual=4)\n"
      "      Scan M as b (est=5, actual=5)\n");
  EXPECT_NE(out.find("HashJoin"), std::string::npos);
  EXPECT_EQ(out.find("Cross"), std::string::npos);
}

TEST(Explain, UnexecutedPlanShowsDashForActual) {
  Catalog db = make_catalog();
  PlanPtr p =
      plan::plan_select(db, parse_select("select dirst from D"));
  EXPECT_NE(plan::render(*p).find("actual=-"), std::string::npos);
}

// ---- EXPLAIN ANALYZE: the per-operator runtime profile.

TEST(ExplainAnalyze, ReportsPerOperatorProfile) {
  auto spec = asura::make_asura();
  const char* sql =
      "Select a.memmsg, b.inmsg, b.outmsg from D a, M b "
      "where a.memmsg = b.inmsg and a.memmsg = \"wb\" and "
      "not b.outmsg = \"compl\"";
  plan::PlannerOptions opts;
  opts.analyze = true;
  const std::string out =
      plan::explain_sql(spec->database().catalog(), sql, opts);
  // Every executed operator carries a profile bracket; the hash join also
  // reports its build side; fused scan children are marked instead of
  // profiled (their work is attributed to the fusing operator).
  EXPECT_NE(out.find("time="), std::string::npos) << out;
  EXPECT_NE(out.find("self="), std::string::npos) << out;
  EXPECT_NE(out.find("rows_out="), std::string::npos) << out;
  EXPECT_NE(out.find("build="), std::string::npos) << out;
  EXPECT_NE(out.find("[fused]"), std::string::npos) << out;
  // The plain EXPLAIN rendering is unchanged by the profiler's existence.
  EXPECT_EQ(plan::explain_sql(spec->database().catalog(), sql)
                .find("time="),
            std::string::npos);
}

TEST(ExplainAnalyze, DatabaseFacadeAppendsMemorySummary) {
  auto spec = asura::make_asura();
  const QueryResult r = spec->database().explain_analyze(
      "Select dirst, dirpv from D where dirst = \"MESI\"");
  EXPECT_NE(r.plan.find("time="), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find("memory:"), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find("peak"), std::string::npos) << r.plan;
}

TEST(ExplainAnalyze, CountsAreIdenticalAcrossJobs) {
  auto spec = asura::make_asura();
  const Catalog& db = spec->database().catalog();
  const SelectStmt stmt = parse_select(
      "Select a.memmsg, b.inmsg from D a, M b "
      "where a.memmsg = b.inmsg and not b.outmsg = \"compl\"");

  // Preorder (rows_in, rows_out, batches) per operator.  Morsel counts are
  // excluded by design: the serial path dispatches none.
  using Profile = std::vector<std::array<std::uint64_t, 3>>;
  auto collect = [](const PlanNode& n, Profile& out, auto&& self) -> void {
    out.push_back({n.stats.rows_in, n.stats.rows_out, n.stats.batches});
    for (const auto& c : n.children) self(*c, out, self);
  };
  auto run = [&](std::size_t jobs) {
    plan::PlannerOptions opts;
    opts.analyze = true;
    opts.jobs = jobs;
    PlanPtr p = plan::plan_select(db, stmt, opts);
    plan::ExecContext ctx;
    ctx.catalog = &db;
    ctx.functions = &db.functions();
    ctx.jobs = jobs;
    ctx.analyze = true;
    Table out = plan::execute(*p, ctx);
    Profile prof;
    collect(*p, prof, collect);
    return std::pair<std::size_t, Profile>(out.row_count(), prof);
  };

  const auto [rows1, prof1] = run(1);
  const auto [rows4, prof4] = run(4);
  EXPECT_EQ(rows1, rows4);
  EXPECT_EQ(prof1, prof4);
}

}  // namespace
}  // namespace ccsql
