// Planner behaviour with tracing compiled out (CCSQL_TRACING_DISABLED).
//
// The obs macros are header-level, but the planner's spans and counters live
// in src/plan/*.cpp, so this target recompiles those sources with the define
// (see CMakeLists.txt) instead of relying on a test-file-only define.  The
// planner must produce identical results either way — the instrumentation is
// observation, not behaviour.

#include <gtest/gtest.h>

#include <string>

#include "plan/explain.hpp"
#include "plan/planner.hpp"
#include "relational/query.hpp"

#ifndef CCSQL_TRACING_DISABLED
#error "this target must compile with CCSQL_TRACING_DISABLED"
#endif

namespace ccsql {
namespace {

Catalog make_catalog() {
  Catalog db;
  Table d(Schema::of({"dirst", "memmsg"}));
  d.append_texts({"I", "mread"});
  d.append_texts({"MESI", "wb"});
  d.append_texts({"SI", "wb"});
  db.put("D", std::move(d));
  Table m(Schema::of({"inmsg", "outmsg"}));
  m.append_texts({"mread", "data"});
  m.append_texts({"wb", "compl"});
  db.put("M", std::move(m));
  return db;
}

TEST(PlanDisabledTracing, PlannedStillMatchesNaive) {
  Catalog db = make_catalog();
  const char* queries[] = {
      "select dirst from D where dirst = \"MESI\"",
      "select a.dirst, b.outmsg from D a, M b where a.memmsg = b.inmsg",
      "select distinct memmsg from D order by memmsg",
  };
  for (const char* q : queries) {
    SelectStmt stmt = parse_select(q);
    Table planned = plan::run_select(db, stmt);
    Table naive = db.run_naive(stmt);
    EXPECT_EQ(planned.row_count(), naive.row_count()) << q;
    EXPECT_TRUE(planned.set_equal(naive)) << q;
  }
}

TEST(PlanDisabledTracing, ExplainAndExistsStillWork) {
  Catalog db = make_catalog();
  const std::string out = plan::explain_sql(
      db, "select a.dirst from D a, M b where a.memmsg = b.inmsg");
  EXPECT_NE(out.find("HashJoin"), std::string::npos);
  EXPECT_EQ(out.find("Cross"), std::string::npos);

  EXPECT_FALSE(
      plan::is_empty(db, parse_select("select dirst from D where "
                                      "dirst = \"MESI\"")));
  EXPECT_TRUE(
      plan::is_empty(db, parse_select("select dirst from D where "
                                      "dirst = \"nonesuch\"")));
}

}  // namespace
}  // namespace ccsql
