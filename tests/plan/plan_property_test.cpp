// Property tests: the planned executor must agree with the naive reference
// executor (Catalog::run_naive) on randomized tables and predicates, for
// every fixed seed.  Any divergence is a planner bug by definition — the
// naive path is the oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "plan/planner.hpp"
#include "relational/query.hpp"

namespace ccsql {
namespace {

using Rng = std::mt19937;

std::size_t pick(Rng& rng, std::size_t n) {
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
}

bool chance(Rng& rng, double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
}

const std::vector<std::string> kValues = {"v0", "v1", "v2", "v3", "v4"};

/// A table with `cols` columns and up to 25 rows of values drawn from the
/// small shared pool, so random equalities hit often enough to matter.
Table random_table(Rng& rng, const std::vector<std::string>& cols) {
  Table t(Schema::of(cols));
  const std::size_t rows = pick(rng, 26);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    row.reserve(cols.size());
    for (std::size_t c = 0; c < cols.size(); ++c) {
      row.push_back(kValues[pick(rng, kValues.size())]);
    }
    t.append_texts(row);
  }
  return t;
}

std::string random_value(Rng& rng) {
  // Bare and quoted spellings intern to the same symbol; exercise both.
  const std::string& v = kValues[pick(rng, kValues.size())];
  return chance(rng, 0.3) ? "\"" + v + "\"" : v;
}

/// One comparison / membership leaf over `cols`.
std::string random_leaf(Rng& rng, const std::vector<std::string>& cols) {
  const std::string& col = cols[pick(rng, cols.size())];
  std::string s;
  switch (pick(rng, 5)) {
    case 0:
      s = col + " = " + random_value(rng);
      break;
    case 1:
      s = col + " != " + random_value(rng);
      break;
    case 2:  // column = column (the hash-join shape when it spans tables)
      s = col + " = " + cols[pick(rng, cols.size())];
      break;
    case 3:
      s = col + " in (" + random_value(rng) + ", " + random_value(rng) + ")";
      break;
    default:
      s = "not " + col + " = " + random_value(rng);
      break;
  }
  return s;
}

std::string join_leaves(Rng& rng, const std::vector<std::string>& cols,
                        const char* op) {
  const std::size_t n = 2 + pick(rng, 2);
  std::string s;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) s += std::string(" ") + op + " ";
    s += random_leaf(rng, cols);
  }
  return s;
}

/// A random WHERE clause: a leaf, a conjunction, a disjunction, or a ternary
/// (the shape of the paper's column constraints).  The grammar has no
/// parentheses, so nesting stays within what the parser accepts.
std::string random_predicate(Rng& rng, const std::vector<std::string>& cols) {
  switch (pick(rng, 5)) {
    case 0:
      return random_leaf(rng, cols);
    case 1:
      return join_leaves(rng, cols, "and");
    case 2:
      return join_leaves(rng, cols, "or");
    case 3:
      return random_leaf(rng, cols) + " ? " + join_leaves(rng, cols, "and") +
             " : " + join_leaves(rng, cols, "or");
    default:
      // Constant-foldable condition.
      return std::string(chance(rng, 0.5) ? "true" : "false") + " ? " +
             random_leaf(rng, cols) + " : " + random_leaf(rng, cols);
  }
}

/// Projection list: subset of `cols`, star, or COUNT(*).
std::string random_projection(Rng& rng, const std::vector<std::string>& cols,
                              std::vector<std::string>* chosen) {
  chosen->clear();
  if (chance(rng, 0.15)) return "count(*)";
  if (chance(rng, 0.2)) {
    *chosen = cols;
    return "*";
  }
  // Distinct columns: duplicate names in a projection are a schema error.
  std::vector<std::string> pool = cols;
  std::shuffle(pool.begin(), pool.end(), rng);
  std::string s;
  const std::size_t n = 1 + pick(rng, cols.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) s += ", ";
    s += pool[i];
    chosen->push_back(pool[i]);
  }
  return s;
}

std::string random_select(Rng& rng, const std::string& from,
                          const std::vector<std::string>& cols) {
  std::vector<std::string> chosen;
  std::string proj = random_projection(rng, cols, &chosen);
  std::string q = "select ";
  if (proj != "count(*)" && chance(rng, 0.3)) q += "distinct ";
  q += proj + " from " + from;
  if (chance(rng, 0.9)) q += " where " + random_predicate(rng, cols);
  if (!chosen.empty() && proj != "count(*)" && chance(rng, 0.3)) {
    q += " order by " + chosen[pick(rng, chosen.size())];
  }
  return q;
}

void expect_planned_matches_naive(const Catalog& db, const std::string& sql) {
  SelectStmt stmt = parse_select(sql);
  Table planned = plan::run_select(db, stmt);
  Table naive = db.run_naive(stmt);
  EXPECT_EQ(planned.row_count(), naive.row_count()) << sql;
  EXPECT_TRUE(planned.set_equal(naive)) << sql;
  EXPECT_EQ(plan::is_empty(db, stmt), naive.row_count() == 0) << sql;
}

class PlanPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlanPropertyTest, SingleTableQueries) {
  Rng rng(GetParam());
  const std::vector<std::string> cols = {"a0", "a1", "a2"};
  for (int iter = 0; iter < 60; ++iter) {
    Catalog db;
    db.put("A", random_table(rng, cols));
    expect_planned_matches_naive(db, random_select(rng, "A", cols));
  }
}

TEST_P(PlanPropertyTest, AliasedTwoTableQueries) {
  Rng rng(GetParam() + 1000);
  const std::vector<std::string> a_cols = {"a0", "a1"};
  const std::vector<std::string> b_cols = {"b0", "b1"};
  const std::vector<std::string> visible = {"x.a0", "x.a1", "y.b0", "y.b1"};
  for (int iter = 0; iter < 60; ++iter) {
    Catalog db;
    db.put("A", random_table(rng, a_cols));
    db.put("B", random_table(rng, b_cols));
    expect_planned_matches_naive(db,
                                 random_select(rng, "A x, B y", visible));
  }
}

TEST_P(PlanPropertyTest, UnionQueries) {
  Rng rng(GetParam() + 2000);
  const std::vector<std::string> cols = {"a0", "a1", "a2"};
  for (int iter = 0; iter < 40; ++iter) {
    Catalog db;
    db.put("A", random_table(rng, cols));
    // Same arity on both branches; positions align the union.
    std::string q = "select a0, a1 from A where " +
                    random_predicate(rng, cols) +
                    " union select a1, a2 from A where " +
                    random_predicate(rng, cols);
    expect_planned_matches_naive(db, q);
  }
}

TEST_P(PlanPropertyTest, CrossSelectMatchesNaiveCrossPlusFilter) {
  Rng rng(GetParam() + 3000);
  const std::vector<std::string> all = {"p", "q", "r"};
  for (int iter = 0; iter < 60; ++iter) {
    Table left = random_table(rng, {"p", "q"});
    Table right = random_table(rng, {"r"});
    const SchemaPtr full = Schema::of(all);
    Expr pred = parse_expr(random_predicate(rng, all));

    Table planned = plan::cross_select(left, right, pred, *full);
    Table crossed = Table::cross(left, right);
    Table naive =
        crossed.select(compile(pred, crossed.schema(), *full).predicate());
    EXPECT_EQ(planned.row_count(), naive.row_count()) << pred.to_string();
    EXPECT_TRUE(planned.set_equal(naive)) << pred.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanPropertyTest,
                         ::testing::Values(7u, 42u, 20260806u));

}  // namespace
}  // namespace ccsql
