// Differential pin: the radix-partitioned hash join must be byte-identical
// to the single-partition join, at every jobs level.  Seeded inputs large
// enough to cross the radix threshold (build side >= 8192 rows) make the
// partitioned path actually exercise multi-partition build + probe.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "relational/database.hpp"
#include "relational/format.hpp"
#include "relational/table.hpp"

namespace ccsql {
namespace {

/// Restores the process-wide radix toggle on scope exit.
class RadixGuard {
 public:
  RadixGuard() : prev_(radix_join_enabled()) {}
  ~RadixGuard() { set_radix_join_enabled(prev_); }

 private:
  bool prev_;
};

Table seeded_table(std::uint32_t seed, std::size_t rows, std::size_t keys,
                   const char* payload_prefix) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> key(0, keys - 1);
  Table t(Schema::of({"k1", "k2", std::string(payload_prefix) + "p"}));
  t.reserve_rows(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t k = key(rng);
    t.append({V("a" + std::to_string(k % 97)),
              V("b" + std::to_string(k / 97)),
              V(payload_prefix + std::to_string(i % 1024))});
  }
  return t;
}

std::string run_join(bool radix, std::size_t jobs) {
  RadixGuard guard;
  set_radix_join_enabled(radix);
  Database db;
  // Build side (right) crosses the 8192-row radix threshold.
  db.put("L", seeded_table(/*seed=*/7, /*rows=*/10000, /*keys=*/4096, "l"));
  db.put("R", seeded_table(/*seed=*/11, /*rows=*/16384, /*keys=*/4096, "r"));
  db.set_jobs(jobs);
  const QueryResult res = db.query(
      "select l.lp, r.rp from L l, R r "
      "where l.k1 = r.k1 and l.k2 = r.k2");
  EXPECT_TRUE(res.planned);
  EXPECT_GT(res.row_count(), 0u);
  return to_csv(res.rows);
}

TEST(RadixJoin, MatchesSinglePartitionAtEveryJobsLevel) {
  const std::string reference = run_join(/*radix=*/false, /*jobs=*/1);
  for (const std::size_t jobs : {1u, 4u, 8u}) {
    EXPECT_EQ(run_join(/*radix=*/true, jobs), reference)
        << "radix join diverged at jobs=" << jobs;
    EXPECT_EQ(run_join(/*radix=*/false, jobs), reference)
        << "single-partition join diverged at jobs=" << jobs;
  }
}

TEST(RadixJoin, BuildsMultiplePartitionsAboveThreshold) {
  RadixGuard guard;
  set_radix_join_enabled(true);
  Table r = seeded_table(/*seed=*/11, /*rows=*/16384, /*keys=*/4096, "r");
  const std::vector<std::size_t> cols{0, 1};
  const JoinIndex& idx = r.join_index_on(cols, /*jobs=*/4);
  EXPECT_GT(idx.partitions(), 1u);
  EXPECT_EQ(idx.row_count(), r.row_count());
}

TEST(RadixJoin, SmallBuildSideStaysSinglePartition) {
  RadixGuard guard;
  set_radix_join_enabled(true);
  Table r = seeded_table(/*seed=*/3, /*rows=*/512, /*keys=*/64, "r");
  const std::vector<std::size_t> cols{0, 1};
  const JoinIndex& idx = r.join_index_on(cols, /*jobs=*/4);
  EXPECT_EQ(idx.partitions(), 1u);
}

}  // namespace
}  // namespace ccsql
