#include "checks/vcg.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"
#include "relational/error.hpp"

namespace ccsql {
namespace {

/// A two-controller toy protocol: P consumes req on VCa and emits fwd on
/// VCb; Q consumes fwd on VCb and emits ack back on VCa -> cycle VCa<->VCb.
struct Toy {
  Table p{Schema::of({"inmsg", "insrc", "indst", "outmsg", "outsrc",
                      "outdst"})};
  Table q{Schema::of({"inmsg", "insrc", "indst", "outmsg", "outsrc",
                      "outdst"})};
  ChannelAssignment v{"toy"};
  std::vector<ControllerTableRef> tables;

  explicit Toy(bool close_the_loop) {
    p.append({V("req"), V("local"), V("home"), V("fwd"), V("home"),
              V("remote")});
    q.append({V("fwd"), V("home"), V("remote"), V("ack"), V("remote"),
              V("home")});
    v.assign("req", "local", "home", "VCa");
    v.assign("fwd", "home", "remote", "VCb");
    if (close_the_loop) {
      // ack rides the same channel as req: VCb depends back on VCa.
      v.assign("ack", "remote", "home", "VCa");
      // and processing an ack at P emits a req again.
      p.append({V("ack"), V("remote"), V("home"), V("req"), V("local"),
                V("home")});
    } else {
      v.assign("ack", "remote", "home", "VCc");
    }
    tables.push_back(make_ref("P", p));
    tables.push_back(make_ref("Q", q));
  }

  static ControllerTableRef make_ref(std::string name, const Table& t) {
    ControllerTableRef ref;
    ref.name = std::move(name);
    ref.table = &t;
    ref.input = MessageTriple{"inmsg", "insrc", "indst", true};
    ref.outputs = {MessageTriple{"outmsg", "outsrc", "outdst", false}};
    return ref;
  }
};

TEST(DeadlockAnalysis, ToyAcyclicAssignment) {
  Toy toy(/*close_the_loop=*/false);
  DeadlockAnalysis analysis(toy.tables, toy.v);
  EXPECT_TRUE(analysis.deadlock_free());
  EXPECT_FALSE(analysis.edges().empty());
  EXPECT_NE(analysis.report().find("deadlock-free"), std::string::npos);
}

TEST(DeadlockAnalysis, ToyCyclicAssignmentFindsCycle) {
  Toy toy(/*close_the_loop=*/true);
  DeadlockAnalysis analysis(toy.tables, toy.v);
  ASSERT_FALSE(analysis.deadlock_free());
  // The VCa -> VCb -> VCa cycle must be reported with witnesses.
  bool found = false;
  for (const auto& c : analysis.cycles()) {
    std::set<std::string> chans;
    for (Value ch : c.channels) chans.insert(std::string(ch.str()));
    if (chans == std::set<std::string>{"VCa", "VCb"}) {
      found = true;
      EXPECT_EQ(c.witnesses.size(), 2u);
    }
  }
  EXPECT_TRUE(found);
  auto cyc = analysis.cyclic_channels();
  EXPECT_GE(cyc.size(), 2u);
}

TEST(DeadlockAnalysis, DedicatedPathRemovesDependency) {
  Toy toy(/*close_the_loop=*/true);
  toy.v.unassign("ack", "remote", "home");  // dedicated path for ack
  DeadlockAnalysis analysis(toy.tables, toy.v);
  EXPECT_TRUE(analysis.deadlock_free());
}

TEST(DeadlockAnalysis, ProtocolDependencyTableColumns) {
  Toy toy(true);
  DeadlockAnalysis analysis(toy.tables, toy.v);
  Table t = analysis.protocol_dependency_table();
  ASSERT_EQ(t.column_count(), 8u);
  EXPECT_EQ(t.schema().column(0).name, "m1");
  EXPECT_EQ(t.schema().column(7).name, "v2");
  EXPECT_GT(t.row_count(), 0u);
  EXPECT_EQ(t.row_count(), t.distinct().row_count());
}

TEST(DeadlockAnalysis, MissingInputTripleThrows) {
  ControllerSpec spec("X");
  spec.add_input("a", {"x"});
  Table t = spec.generate(nullptr);
  EXPECT_THROW(ControllerTableRef::from_spec(spec, t), Error);
}

// ---- ASURA: the paper's three iterations ------------------------------------

class AsuraVcg : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = asura::make_asura().release();
    for (const auto& c : spec_->controllers()) {
      tables_.push_back(ControllerTableRef::from_spec(
          *c, spec_->database().get(c->name())));
    }
  }

  static const ProtocolSpec* spec_;
  static std::vector<ControllerTableRef> tables_;
};

const ProtocolSpec* AsuraVcg::spec_ = nullptr;
std::vector<ControllerTableRef> AsuraVcg::tables_;

TEST_F(AsuraVcg, V4HasCyclesAtHome) {
  // Paper, section 4.2: the initial four-channel assignment produced
  // several cycles, most involving the directory and memory controllers at
  // the home node (VC0 carries both local->home and directory->memory
  // requests).
  DeadlockAnalysis analysis(tables_, spec_->assignment(asura::kAssignV4));
  ASSERT_FALSE(analysis.deadlock_free());
  auto cyc = analysis.cyclic_channels();
  EXPECT_NE(std::find(cyc.begin(), cyc.end(), V("VC0")), cyc.end());
}

TEST_F(AsuraVcg, V5HasTheFigure4Cycle) {
  DeadlockAnalysis analysis(tables_, spec_->assignment(asura::kAssignV5));
  ASSERT_FALSE(analysis.deadlock_free());
  // The VC2/VC4 cycle of Figure 4.
  bool found = false;
  for (const auto& c : analysis.cycles()) {
    std::set<std::string> chans;
    for (Value ch : c.channels) chans.insert(std::string(ch.str()));
    if (chans == std::set<std::string>{"VC2", "VC4"}) found = true;
  }
  EXPECT_TRUE(found) << analysis.report();
  // VC0 is no longer part of any cycle: the home-request interference was
  // fixed by adding VC4.
  auto cyc = analysis.cyclic_channels();
  EXPECT_EQ(std::find(cyc.begin(), cyc.end(), V("VC0")), cyc.end());
}

TEST_F(AsuraVcg, V5ContainsThePaperR3Row) {
  // Section 4.2: composing R1 (memory: wb -> compl) with the placed R2'
  // (directory: idone -> mread under L != H = R) while ignoring messages
  // yields R3 = (wb, home, home, VC4, mread, home, home, VC4).
  DeadlockAnalysis analysis(tables_, spec_->assignment(asura::kAssignV5));
  bool found_r3 = false;
  for (const auto& r : analysis.protocol_rows()) {
    if (r.m1 == V("wb") && r.s1 == V("home") && r.d1 == V("home") &&
        r.v1 == V("VC4") && r.m2 == V("mread") && r.s2 == V("home") &&
        r.d2 == V("home") && r.v2 == V("VC4")) {
      found_r3 = true;
      EXPECT_TRUE(r.composed);
      EXPECT_TRUE(r.ignored_message);
    }
  }
  EXPECT_TRUE(found_r3);
}

TEST_F(AsuraVcg, V5FixIsDeadlockFree) {
  DeadlockAnalysis analysis(tables_, spec_->assignment(asura::kAssignV5Fix));
  EXPECT_TRUE(analysis.deadlock_free()) << analysis.report();
}

TEST_F(AsuraVcg, Figure4WitnessesSurviveWithoutPlacements) {
  // The core VC2 -> VC4 -> VC2 two-cycle does not require the placement
  // relaxation (both witness rows live at home already).
  DeadlockOptions opts;
  opts.use_placements = false;
  DeadlockAnalysis analysis(tables_, spec_->assignment(asura::kAssignV5),
                            opts);
  EXPECT_FALSE(analysis.deadlock_free());
}

TEST_F(AsuraVcg, CompositionRoundsConverge) {
  // Footnote 2: in practice one composition round suffices — a second
  // round adds no new VCG edges.
  DeadlockOptions one;
  one.composition_rounds = 1;
  DeadlockOptions many;
  many.composition_rounds = 5;
  DeadlockAnalysis a1(tables_, spec_->assignment(asura::kAssignV5), one);
  DeadlockAnalysis a2(tables_, spec_->assignment(asura::kAssignV5), many);
  EXPECT_EQ(a1.edges().size(), a2.edges().size());
  EXPECT_EQ(a1.cycles().size(), a2.cycles().size());
}

TEST_F(AsuraVcg, ControllerRowsAreSubsetOfProtocolRows) {
  DeadlockAnalysis analysis(tables_, spec_->assignment(asura::kAssignV5));
  EXPECT_GE(analysis.protocol_rows().size(), 1u);
  // Every controller row's 8-tuple appears in the protocol table.
  Table proto = analysis.protocol_dependency_table();
  for (const auto& r : analysis.controller_rows()) {
    std::vector<Value> row{r.m1, r.s1, r.d1, r.v1, r.m2, r.s2, r.d2, r.v2};
    EXPECT_TRUE(proto.contains(RowView(row))) << r.origin;
  }
}

}  // namespace
}  // namespace ccsql
