#include "checks/reach.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

TEST(Reach, TrivialConfigurationIsVerified) {
  ReachConfig cfg;
  cfg.n_quads = 1;
  cfg.n_addrs = 1;
  cfg.ops_per_node = 1;
  ReachResult r = explore(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.verified()) << (r.violations.empty()
                                    ? r.deadlock_example
                                    : r.violations.front());
  EXPECT_GT(r.states, 1u);
  EXPECT_GT(r.transitions, 0u);
}

TEST(Reach, TwoQuadsOneOpEachExhaustsCleanly) {
  ReachConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 1;
  cfg.ops_per_node = 1;
  for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
    ReachResult r = explore(spec(), spec().assignment(a), cfg);
    EXPECT_TRUE(r.complete) << a;
    EXPECT_TRUE(r.verified()) << a;
  }
}

TEST(Reach, TwoOpsPerNodeStillVerified) {
  // ~37k states: every interleaving of two transactions per node over one
  // line, including all the grant / upgrade / writeback races.
  ReachConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 1;
  cfg.ops_per_node = 2;
  ReachResult r = explore(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.verified()) << (r.violations.empty()
                                    ? r.deadlock_example
                                    : r.violations.front());
  EXPECT_GT(r.states, 10000u);
}

TEST(Reach, DeterministicStateCounts) {
  ReachConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 1;
  cfg.ops_per_node = 1;
  ReachResult a = explore(spec(), spec().assignment(asura::kAssignV5), cfg);
  ReachResult b = explore(spec(), spec().assignment(asura::kAssignV5), cfg);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
}

TEST(Reach, BudgetTruncationReported) {
  ReachConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 2;
  cfg.ops_per_node = 2;
  cfg.max_states = 500;
  ReachResult r = explore(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  EXPECT_FALSE(r.complete);
  EXPECT_FALSE(r.verified());
  EXPECT_GE(r.states, 500u);
}

TEST(Reach, DiscoversTheFigure4DeadlockUnaided) {
  // Two lines sharing a home plus two ops per node is enough for the
  // breadth-first search to walk into the Figure 4 wedge on its own: the
  // witness channels are exactly the paper's — an idone stuck in VC2 and a
  // directory->memory request stuck in VC4.
  ReachConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 3;  // addresses 0 and 2 share home 0
  cfg.ops_per_node = 2;
  cfg.stop_at_first_deadlock = true;
  ReachResult r = explore(spec(), spec().assignment(asura::kAssignV5), cfg);
  ASSERT_GE(r.deadlock_states, 1u);
  EXPECT_NE(r.deadlock_example.find("VC2"), std::string::npos);
  EXPECT_NE(r.deadlock_example.find("VC4"), std::string::npos);
  EXPECT_NE(r.deadlock_example.find("idone"), std::string::npos);
  EXPECT_TRUE(r.violations.empty());
}

}  // namespace
}  // namespace ccsql
