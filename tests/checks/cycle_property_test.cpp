// Property test for the cycle detector: on random channel graphs, the
// analysis reports a cycle iff one exists by an independent reachability
// check, and every reported cycle is a genuine simple cycle of the graph.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "checks/vcg.hpp"

namespace ccsql {
namespace {

/// Builds a single-controller "protocol" whose table encodes an arbitrary
/// edge list: each row consumes a unique message on channel `from` and
/// emits a unique message on channel `to`.
struct GraphFixture {
  Table t{Schema::of({"inmsg", "insrc", "indst", "outmsg", "outsrc",
                      "outdst"})};
  ChannelAssignment v{"graph"};
  std::vector<std::pair<int, int>> edge_list;

  void add_edge(int from, int to, int id) {
    const std::string min = "m_in_" + std::to_string(id);
    const std::string mout = "m_out_" + std::to_string(id);
    t.append({V(min), V("local"), V("home"), V(mout), V("local"),
              V("home")});
    v.assign(min, "local", "home", "VC" + std::to_string(from));
    v.assign(mout, "local", "home", "VC" + std::to_string(to));
    edge_list.emplace_back(from, to);
  }

  DeadlockAnalysis analyse() const {
    ControllerTableRef ref;
    ref.name = "G";
    ref.table = &t;
    ref.input = MessageTriple{"inmsg", "insrc", "indst", true};
    ref.outputs = {MessageTriple{"outmsg", "outsrc", "outdst", false}};
    DeadlockOptions opts;
    // Pure graph semantics: no role games, no composition.
    opts.use_placements = false;
    opts.composition_rounds = 0;
    opts.max_cycles = 10000;
    return DeadlockAnalysis({ref}, v, opts);
  }

  /// Independent ground truth: DFS colour-based cycle existence.
  [[nodiscard]] bool has_cycle(int nodes) const {
    std::vector<std::vector<int>> adj(nodes);
    for (auto [a, b] : edge_list) adj[a].push_back(b);
    std::vector<int> colour(nodes, 0);
    std::function<bool(int)> dfs = [&](int u) {
      colour[u] = 1;
      for (int w : adj[u]) {
        if (colour[w] == 1) return true;
        if (colour[w] == 0 && dfs(w)) return true;
      }
      colour[u] = 2;
      return false;
    };
    for (int i = 0; i < nodes; ++i) {
      if (colour[i] == 0 && dfs(i)) return true;
    }
    return false;
  }
};

class CycleProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CycleProperty, DetectionMatchesGroundTruth) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> nodes_d(2, 7);
  const int nodes = nodes_d(rng);
  std::uniform_int_distribution<int> edges_d(1, nodes * 2);
  const int edges = edges_d(rng);
  std::uniform_int_distribution<int> node_d(0, nodes - 1);

  GraphFixture g;
  std::set<std::pair<int, int>> used;
  int id = 0;
  for (int e = 0; e < edges; ++e) {
    const int a = node_d(rng), b = node_d(rng);
    if (!used.insert({a, b}).second) continue;
    g.add_edge(a, b, id++);
  }
  if (g.edge_list.empty()) return;

  DeadlockAnalysis analysis = g.analyse();
  EXPECT_EQ(!analysis.deadlock_free(), g.has_cycle(nodes));
}

TEST_P(CycleProperty, ReportedCyclesAreGenuineAndSimple) {
  std::mt19937 rng(GetParam() + 500);
  GraphFixture g;
  std::set<std::pair<int, int>> used;
  int id = 0;
  for (int e = 0; e < 12; ++e) {
    const int a = static_cast<int>(rng() % 5), b = static_cast<int>(rng() % 5);
    if (!used.insert({a, b}).second) continue;
    g.add_edge(a, b, id++);
  }
  DeadlockAnalysis analysis = g.analyse();
  for (const auto& c : analysis.cycles()) {
    // Nodes are distinct (simple cycle).
    std::set<std::string> distinct;
    for (Value ch : c.channels) distinct.insert(std::string(ch.str()));
    EXPECT_EQ(distinct.size(), c.channels.size());
    // Every hop is an edge of the graph, including the wrap-around.
    ASSERT_EQ(c.witnesses.size(), c.channels.size());
    for (std::size_t i = 0; i < c.channels.size(); ++i) {
      const Value from = c.channels[i];
      const Value to = c.channels[(i + 1) % c.channels.size()];
      EXPECT_EQ(c.witnesses[i].v1, from);
      EXPECT_EQ(c.witnesses[i].v2, to);
      const int a = std::stoi(std::string(from.str()).substr(2));
      const int b = std::stoi(std::string(to.str()).substr(2));
      EXPECT_TRUE(used.count({a, b}))
          << "reported edge not in graph: " << a << "->" << b;
    }
  }
}

TEST(CycleEnumeration, CompleteGraphCountsAreExact) {
  // K3 has 3C2*1 + 2 three-cycles... enumerate explicitly: directed K3
  // (all ordered pairs, no self loops) has three 2-cycles and two
  // 3-cycles.
  GraphFixture g;
  int id = 0;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a != b) g.add_edge(a, b, id++);
    }
  }
  DeadlockAnalysis analysis = g.analyse();
  std::size_t two = 0, three = 0;
  for (const auto& c : analysis.cycles()) {
    if (c.channels.size() == 2) ++two;
    if (c.channels.size() == 3) ++three;
  }
  EXPECT_EQ(two, 3u);
  EXPECT_EQ(three, 2u);
  EXPECT_EQ(analysis.cycles().size(), 5u);
}

TEST(CycleEnumeration, SelfLoopIsACycle) {
  GraphFixture g;
  g.add_edge(0, 0, 0);
  DeadlockAnalysis analysis = g.analyse();
  ASSERT_EQ(analysis.cycles().size(), 1u);
  EXPECT_EQ(analysis.cycles()[0].channels.size(), 1u);
  EXPECT_EQ(analysis.cycles()[0].witnesses.size(), 1u);
}

TEST(CycleEnumeration, MaxCyclesCapRespected) {
  GraphFixture g;
  int id = 0;
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      if (a != b) g.add_edge(a, b, id++);
    }
  }
  ControllerTableRef ref;
  ref.name = "G";
  ref.table = &g.t;
  ref.input = MessageTriple{"inmsg", "insrc", "indst", true};
  ref.outputs = {MessageTriple{"outmsg", "outsrc", "outdst", false}};
  DeadlockOptions opts;
  opts.use_placements = false;
  opts.composition_rounds = 0;
  opts.max_cycles = 3;
  DeadlockAnalysis analysis({ref}, g.v, opts);
  EXPECT_EQ(analysis.cycles().size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleProperty, ::testing::Range(1u, 26u));

}  // namespace
}  // namespace ccsql
