// Witness reconstruction: the parent-pointer trace of a deadlock must
// replay, action by action, on a fresh machine and land in a state that is
// wedged — messages in flight with no applicable action.
#include <gtest/gtest.h>

#include "checks/reach.hpp"
#include "protocol/asura/asura.hpp"
#include "sim/machine.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

/// The directed Figure 4 configuration: two addresses homed at quad 0,
/// read/atomic traffic, one remote requester.  Deadlocks under V5.
ReachParallelConfig fig4_config() {
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 3;
  cfg.ops_per_node = 2;
  cfg.inject_ops = {"prd", "patomic"};
  cfg.ops_by_node = {2, 1};
  return cfg;
}

sim::Machine fresh_machine(const ReachParallelConfig& cfg, const char* a) {
  sim::SimConfig sim_cfg;
  sim_cfg.n_quads = cfg.n_quads;
  sim_cfg.n_addrs = cfg.n_addrs;
  sim_cfg.channel_capacity = cfg.channel_capacity;
  sim_cfg.transactions_per_node = cfg.ops_per_node;
  sim_cfg.transactions_by_node = cfg.ops_by_node;
  sim_cfg.workload_ops = cfg.inject_ops;
  sim::Machine m(spec(), spec().assignment(a), sim_cfg);
  m.enable_random_workload();
  return m;
}

TEST(ReachWitness, Figure4TraceReplaysToAWedgedState) {
  const ReachParallelConfig cfg = fig4_config();
  const ReachParallelResult r =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5), cfg);
  ASSERT_GT(r.deadlock_states, 0u);
  ASSERT_FALSE(r.deadlock_trace.empty());
  ASSERT_TRUE(r.complete);  // the directed space is small enough to finish

  sim::Machine m = fresh_machine(cfg, asura::kAssignV5);
  for (const auto& act : r.deadlock_trace) {
    ASSERT_TRUE(m.apply_action(act)) << "stuck at: " << act.to_string();
  }

  // The replayed state is the deadlock the explorer reported: messages in
  // flight, nothing deliverable, nothing injectable.
  EXPECT_FALSE(m.quiescent());
  for (const auto& act : m.possible_actions()) {
    EXPECT_FALSE(m.apply_action(act)) << "live action: " << act.to_string();
  }
  EXPECT_TRUE(m.errors().empty());
}

TEST(ReachWitness, DeadlockListCoversTheFigure4Wedge) {
  const ReachParallelConfig cfg = fig4_config();
  const ReachParallelResult r =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5), cfg);
  ASSERT_FALSE(r.deadlocks.empty());
  // One recorded deadlock wedges exactly {VC2, VC4} — the Figure 4 cycle.
  bool found = false;
  for (const auto& d : r.deadlocks) {
    std::vector<std::string> names;
    for (const auto& vc : d.occupied) names.emplace_back(vc.str());
    if (names == std::vector<std::string>{"VC2", "VC4"}) {
      found = true;
      EXPECT_FALSE(d.trace.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST(ReachWitness, FixedAssignmentHasNoDeadlock) {
  const ReachParallelConfig cfg = fig4_config();
  const ReachParallelResult r =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.deadlock_states, 0u);
  EXPECT_TRUE(r.deadlock_trace.empty());
  EXPECT_TRUE(r.deadlocks.empty());
}

TEST(ReachWitness, StopAtFirstDeadlockShortCircuits) {
  ReachParallelConfig cfg = fig4_config();
  cfg.stop_at_first_deadlock = true;
  const ReachParallelResult r =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5), cfg);
  EXPECT_GT(r.deadlock_states, 0u);
  EXPECT_FALSE(r.complete);  // stopped early by design
  EXPECT_FALSE(r.deadlock_trace.empty());

  // The early trace replays just like the exhaustive one.
  sim::Machine m = fresh_machine(cfg, asura::kAssignV5);
  for (const auto& act : r.deadlock_trace) {
    ASSERT_TRUE(m.apply_action(act)) << "stuck at: " << act.to_string();
  }
  EXPECT_FALSE(m.quiescent());
}

TEST(ReachWitness, MaxStatesTruncationIsReported) {
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 1;
  cfg.ops_per_node = 2;
  cfg.max_states = 500;
  const ReachParallelResult r =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.states, 500u);
}

}  // namespace
}  // namespace ccsql
