// End-to-end determinism of the parallel checking layer: the ASURA
// invariant suite and the VCG deadlock analysis must produce identical
// reports — same verdicts, same row sets, same ordering — at --jobs 1 and
// --jobs N.  These are the workloads the paper times; byte-identical output
// is what lets the parallel engine replace the serial one silently.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checks/invariant.hpp"
#include "checks/vcg.hpp"
#include "protocol/asura/asura.hpp"
#include "relational/format.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static auto s = asura::make_asura();
  return *s;
}

TEST(ParallelDeterminism, InvariantSuiteVerdictsMatchAcrossJobs) {
  Database serial = spec().database();
  serial.set_jobs(1);
  Database wide = spec().database();
  wide.set_jobs(4);

  InvariantChecker serial_checker(serial);
  InvariantChecker wide_checker(wide);
  auto a = serial_checker.check_all(spec().invariants());
  auto b = wide_checker.check_all(spec().invariants());

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << i;  // suite order is preserved
    EXPECT_EQ(a[i].holds, b[i].holds) << a[i].name;
    ASSERT_EQ(a[i].violations.size(), b[i].violations.size()) << a[i].name;
    for (std::size_t v = 0; v < a[i].violations.size(); ++v) {
      EXPECT_EQ(to_csv(a[i].violations[v]), to_csv(b[i].violations[v]))
          << a[i].name;
    }
  }
}

TEST(ParallelDeterminism, InjectedViolationRowsMatchAcrossJobs) {
  // The failing path materialises violating rows; those must also be
  // byte-identical, not just the pass/fail verdicts.
  auto corrupted = [] {
    Database db = spec().database();
    Table d = db.get("D");
    std::vector<Value> row(d.row(0).begin(), d.row(0).end());
    row[d.schema().index_of("dirst")] = V("MESI");
    row[d.schema().index_of("dirpv")] = V("zero");
    d.append(RowView(row));
    db.put("D", std::move(d));
    return db;
  };
  Database serial = corrupted();
  serial.set_jobs(1);
  Database wide = corrupted();
  wide.set_jobs(4);
  std::string a = InvariantChecker::report(
      InvariantChecker(serial).check_all(spec().invariants()));
  std::string b = InvariantChecker::report(
      InvariantChecker(wide).check_all(spec().invariants()));
  // Timing lines differ; compare the verdict lines only.
  auto verdicts = [](const std::string& report) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < report.size()) {
      std::size_t eol = report.find('\n', pos);
      if (eol == std::string::npos) eol = report.size();
      std::string line = report.substr(pos, eol - pos);
      if (line.rfind("FAIL", 0) == 0 || line.rfind("PASS", 0) == 0) {
        out.push_back(line.substr(0, line.find(" (")));
      }
      pos = eol + 1;
    }
    return out;
  };
  EXPECT_EQ(verdicts(a), verdicts(b));
  EXPECT_FALSE(verdicts(a).empty());
}

TEST(ParallelDeterminism, VcgAnalysisMatchesAcrossJobs) {
  std::vector<ControllerTableRef> refs;
  for (const auto& c : spec().controllers()) {
    refs.push_back(ControllerTableRef::from_spec(
        *c, spec().database().get(c->name())));
  }
  const ChannelAssignment& v5 = spec().assignment(asura::kAssignV5);

  DeadlockOptions serial_opts;
  serial_opts.jobs = 1;
  DeadlockAnalysis serial(refs, v5, serial_opts);

  DeadlockOptions wide_opts;
  wide_opts.jobs = 4;
  DeadlockAnalysis wide(refs, v5, wide_opts);

  // Identical dependency rows in identical order, identical cycles,
  // identical rendered report.
  ASSERT_EQ(serial.protocol_rows().size(), wide.protocol_rows().size());
  for (std::size_t i = 0; i < serial.protocol_rows().size(); ++i) {
    EXPECT_EQ(serial.protocol_rows()[i].key(), wide.protocol_rows()[i].key())
        << i;
  }
  EXPECT_EQ(serial.cycles().size(), wide.cycles().size());
  EXPECT_EQ(serial.report(), wide.report());
  EXPECT_EQ(to_csv(serial.protocol_dependency_table()),
            to_csv(wide.protocol_dependency_table()));
}

}  // namespace
}  // namespace ccsql
