// Determinism property: the parallel explorer's aggregates are a pure
// function of the configuration — identical at any --jobs value, and
// identical to the sequential string-fingerprint oracle in reach.cpp.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checks/reach.hpp"
#include "protocol/asura/asura.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

struct Aggregates {
  std::uint64_t states;
  std::uint64_t transitions;
  bool complete;
  std::uint64_t deadlock_states;
  std::vector<std::string> violations;
  std::string deadlock_example;

  bool operator==(const Aggregates& o) const {
    return states == o.states && transitions == o.transitions &&
           complete == o.complete && deadlock_states == o.deadlock_states &&
           violations == o.violations && deadlock_example == o.deadlock_example;
  }
};

Aggregates of(const ReachResult& r) {
  return Aggregates{r.states,          r.transitions, r.complete,
                    r.deadlock_states, r.violations,  r.deadlock_example};
}

ReachParallelConfig base_config(int quads, int addrs, int ops) {
  ReachParallelConfig cfg;
  cfg.n_quads = quads;
  cfg.n_addrs = addrs;
  cfg.ops_per_node = ops;
  return cfg;
}

TEST(ReachParallelProperty, AggregatesIdenticalAtAnyJobsLevel) {
  const std::vector<ReachParallelConfig> configs = {
      base_config(1, 1, 2), base_config(2, 1, 1), base_config(2, 3, 1)};
  for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
    for (const auto& cfg : configs) {
      ReachParallelConfig c1 = cfg;
      c1.jobs = 1;
      const ReachParallelResult r1 =
          explore_parallel(spec(), spec().assignment(a), c1);
      for (std::size_t jobs : {std::size_t{4}, std::size_t{8}}) {
        ReachParallelConfig cj = cfg;
        cj.jobs = jobs;
        const ReachParallelResult rj =
            explore_parallel(spec(), spec().assignment(a), cj);
        EXPECT_TRUE(of(r1) == of(rj))
            << a << " quads=" << cfg.n_quads << " addrs=" << cfg.n_addrs
            << " jobs=" << jobs << ": " << r1.states << " vs " << rj.states
            << " states, " << r1.transitions << " vs " << rj.transitions
            << " transitions";
        EXPECT_EQ(r1.waves, rj.waves);
        EXPECT_EQ(r1.dedup_hits, rj.dedup_hits);
        EXPECT_EQ(r1.deadlock_trace.size(), rj.deadlock_trace.size());
      }
    }
  }
}

TEST(ReachParallelProperty, MatchesSequentialOracle) {
  const std::vector<ReachParallelConfig> configs = {
      base_config(1, 1, 2), base_config(2, 1, 1), base_config(2, 3, 1)};
  for (const char* a : {asura::kAssignV5, asura::kAssignV5Fix}) {
    for (const auto& cfg : configs) {
      const ReachResult seq = explore(spec(), spec().assignment(a), cfg);
      const ReachParallelResult par =
          explore_parallel(spec(), spec().assignment(a), cfg);
      EXPECT_TRUE(of(seq) == of(par))
          << a << " quads=" << cfg.n_quads << " addrs=" << cfg.n_addrs
          << ": seq " << seq.states << "/" << seq.transitions << ", par "
          << par.states << "/" << par.transitions;
    }
  }
}

TEST(ReachParallelProperty, DeadlockConfigMatchesOracle) {
  // The directed Figure 4 configuration: two same-home addresses, read and
  // atomic traffic only, one remote requester.  V5 deadlocks; both
  // explorers must agree on every aggregate including the deadlock report.
  ReachParallelConfig cfg = base_config(2, 3, 2);
  cfg.inject_ops = {"prd", "patomic"};
  cfg.ops_by_node = {2, 1};
  const ReachResult seq =
      explore(spec(), spec().assignment(asura::kAssignV5), cfg);
  const ReachParallelResult par =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5), cfg);
  EXPECT_GT(par.deadlock_states, 0u);
  EXPECT_TRUE(of(seq) == of(par))
      << "seq " << seq.states << "/" << seq.deadlock_states << ", par "
      << par.states << "/" << par.deadlock_states;
}

}  // namespace
}  // namespace ccsql
