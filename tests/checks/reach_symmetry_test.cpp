// Soundness of the symmetry reduction: exploring modulo the quad/address
// permutation group must preserve every verdict while visiting only one
// representative per orbit.
#include <gtest/gtest.h>

#include "checks/reach.hpp"
#include "protocol/asura/asura.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

TEST(ReachSymmetry, DifferentialAgainstUnreducedSearch) {
  // (2 quads, 4 addrs): two home classes of two addresses each, so the
  // group is the quad swap times per-class address swaps — order 8.
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 4;
  cfg.ops_per_node = 1;

  const ReachParallelResult full =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  cfg.symmetry = true;
  const ReachParallelResult reduced =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5Fix), cfg);

  EXPECT_EQ(reduced.canon_group, 8u);
  EXPECT_EQ(full.canon_group, 1u);

  // Verdicts must agree exactly.
  EXPECT_EQ(full.verified(), reduced.verified());
  EXPECT_EQ(full.complete, reduced.complete);
  EXPECT_EQ(full.deadlock_states > 0, reduced.deadlock_states > 0);
  EXPECT_EQ(full.violations, reduced.violations);

  // The reduction is real: at least 4x fewer states, and never more than
  // the group order (each orbit has at most |G| members).
  EXPECT_GE(full.states, 4 * reduced.states)
      << full.states << " vs " << reduced.states;
  EXPECT_LE(full.states, reduced.canon_group * reduced.states);
  EXPECT_LT(reduced.states, full.states);
}

TEST(ReachSymmetry, UnequalHomeClassesRestrictTheGroup) {
  // (2 quads, 3 addrs): home 0 owns {a0, a2}, home 1 owns {a1}.  The quad
  // swap maps classes of different sizes, so only the identity quad
  // permutation survives; swapping a0 and a2 remains — group order 2.
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 3;
  cfg.ops_per_node = 1;

  const ReachParallelResult full =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5), cfg);
  cfg.symmetry = true;
  const ReachParallelResult reduced =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5), cfg);

  EXPECT_EQ(reduced.canon_group, 2u);
  EXPECT_EQ(full.verified(), reduced.verified());
  EXPECT_EQ(full.violations, reduced.violations);
  EXPECT_LT(reduced.states, full.states);
  EXPECT_LE(full.states, 2 * reduced.states);
}

TEST(ReachSymmetry, SymmetryIsDeterministicAcrossJobs) {
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 4;
  cfg.ops_per_node = 1;
  cfg.symmetry = true;
  cfg.jobs = 1;
  const ReachParallelResult r1 =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  cfg.jobs = 4;
  const ReachParallelResult r4 =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  EXPECT_EQ(r1.states, r4.states);
  EXPECT_EQ(r1.transitions, r4.transitions);
  EXPECT_EQ(r1.dedup_hits, r4.dedup_hits);
  EXPECT_EQ(r1.waves, r4.waves);
}

TEST(ReachSymmetry, AsymmetricBudgetsDisableTheGroup) {
  // Per-node budgets make quads distinguishable; requesting symmetry then
  // must fall back to the exact search rather than unsoundly merging.
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 2;
  cfg.ops_per_node = 1;
  cfg.ops_by_node = {1, 0};
  cfg.symmetry = true;
  const ReachParallelResult r =
      explore_parallel(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  EXPECT_EQ(r.canon_group, 1u);
  EXPECT_TRUE(r.complete);
}

}  // namespace
}  // namespace ccsql
