// Golden output for VCG cycle classification (ccsql reach --classify /
// reach_dump --classify): the Figure 4 cycle is reachable with a concrete
// witness, the composition-artifact self-loops are provably unreachable,
// and a truncated search says so instead of claiming either.
#include <gtest/gtest.h>

#include "checks/reach.hpp"
#include "checks/vcg.hpp"
#include "protocol/asura/asura.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

std::vector<VcgCycle> cycles_of(const char* assignment) {
  std::vector<ControllerTableRef> refs;
  for (const auto& c : spec().controllers()) {
    refs.push_back(
        ControllerTableRef::from_spec(*c, spec().database().get(c->name())));
  }
  DeadlockAnalysis analysis(refs, spec().assignment(assignment));
  return analysis.cycles();
}

ReachParallelConfig fig4_config() {
  ReachParallelConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 3;
  cfg.ops_per_node = 2;
  cfg.inject_ops = {"prd", "patomic"};
  cfg.ops_by_node = {2, 1};
  return cfg;
}

TEST(ReachClassifyGolden, V5CyclesClassifiedAgainstDirectedSearch) {
  const auto cycles = cycles_of(asura::kAssignV5);
  ASSERT_EQ(cycles.size(), 3u);
  const auto result =
      classify_cycles(spec(), spec().assignment(asura::kAssignV5), cycles,
                      fig4_config());
  EXPECT_EQ(format_classification(result),
            "cycle 0 [VC2 VC4]: reachable  (witness: 16 actions)\n"
            "cycle 1 [VC4]: unreachable  (15429 states, search complete)\n"
            "cycle 2 [VC2]: unreachable  (15429 states, search complete)\n");

  // Structured view: the real cycle carries a witness, the artifacts don't.
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].verdict, CycleVerdict::kReachable);
  EXPECT_FALSE(result[0].witness.empty());
  EXPECT_EQ(result[1].verdict, CycleVerdict::kUnreachable);
  EXPECT_TRUE(result[1].witness.empty());
  EXPECT_EQ(result[2].verdict, CycleVerdict::kUnreachable);
}

TEST(ReachClassifyGolden, FixedAssignmentHasNothingToClassify) {
  const auto cycles = cycles_of(asura::kAssignV5Fix);
  EXPECT_TRUE(cycles.empty());
  const auto result =
      classify_cycles(spec(), spec().assignment(asura::kAssignV5Fix), cycles,
                      fig4_config());
  EXPECT_EQ(format_classification(result), "no cycles to classify\n");
}

TEST(ReachClassifyGolden, TruncatedSearchReportsBudgetNotAbsence) {
  ReachParallelConfig cfg = fig4_config();
  cfg.max_states = 200;  // far below the first deadlock's wave
  const auto cycles = cycles_of(asura::kAssignV5);
  const auto result = classify_cycles(
      spec(), spec().assignment(asura::kAssignV5), cycles, cfg);
  ASSERT_EQ(result.size(), 3u);
  for (const auto& c : result) {
    EXPECT_EQ(c.verdict, CycleVerdict::kBudget);
    EXPECT_EQ(c.states_searched, 200u);
  }
  EXPECT_EQ(format_classification(result),
            "cycle 0 [VC2 VC4]: not reached within budget  "
            "(200 states, search truncated)\n"
            "cycle 1 [VC4]: not reached within budget  "
            "(200 states, search truncated)\n"
            "cycle 2 [VC2]: not reached within budget  "
            "(200 states, search truncated)\n");
}

}  // namespace
}  // namespace ccsql
