#include "checks/invariant.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"
#include "relational/error.hpp"

namespace ccsql {
namespace {

Database small_db() {
  Catalog cat;
  Table d(Schema::of({"dirst", "dirpv"}));
  d.append({V("MESI"), V("one")});
  d.append({V("SI"), V("gone")});
  d.append({V("I"), V("zero")});
  cat.put("D", std::move(d));
  return Database(std::move(cat));
}

TEST(InvariantChecker, PassingInvariant) {
  Database db = small_db();
  InvariantChecker checker(db);
  NamedInvariant inv{"consistency", "",
                     "[select dirst from D where dirst = MESI and "
                     "not dirpv = one] = empty"};
  InvariantResult r = checker.check(inv);
  EXPECT_TRUE(r.holds);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_GT(r.micros, 0.0);
  EXPECT_EQ(r.name, "consistency");
}

TEST(InvariantChecker, FailingInvariantReportsViolatingRows) {
  Database db = small_db();
  InvariantChecker checker(db);
  NamedInvariant inv{"no-shared", "",
                     "[select dirst, dirpv from D where dirst = SI] = empty"};
  InvariantResult r = checker.check(inv);
  EXPECT_FALSE(r.holds);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].row_count(), 1u);
  EXPECT_EQ(r.violations[0].at(0, "dirpv"), V("gone"));
}

TEST(InvariantChecker, ConjunctionReportsEachFailingCheck) {
  Database db = small_db();
  InvariantChecker checker(db);
  NamedInvariant inv{
      "two-checks", "",
      "[select dirst from D where dirst = SI] = empty and "
      "[select dirst from D where dirst = I] = empty and "
      "[select dirst from D where dirst = nosuch] = empty"};
  InvariantResult r = checker.check(inv);
  EXPECT_FALSE(r.holds);
  EXPECT_EQ(r.violations.size(), 2u);
}

TEST(InvariantChecker, CheckAllAndAllHold) {
  Database db = small_db();
  InvariantChecker checker(db);
  std::vector<NamedInvariant> suite{
      {"ok", "", "[select dirst from D where dirst = nosuch] = empty"},
      {"bad", "", "[select dirst from D where dirst = I] = empty"},
  };
  auto results = checker.check_all(suite);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].holds);
  EXPECT_FALSE(results[1].holds);
  EXPECT_FALSE(InvariantChecker::all_hold(results));
  results.pop_back();
  EXPECT_TRUE(InvariantChecker::all_hold(results));
}

TEST(InvariantChecker, ReportMentionsFailuresAndCounts) {
  Database db = small_db();
  InvariantChecker checker(db);
  std::vector<NamedInvariant> suite{
      {"ok", "", "[select dirst from D where dirst = nosuch] = empty"},
      {"bad", "", "[select dirst from D where dirst = I] = empty"},
  };
  std::string report = InvariantChecker::report(checker.check_all(suite));
  EXPECT_NE(report.find("FAIL bad"), std::string::npos);
  EXPECT_EQ(report.find("PASS ok"), std::string::npos);  // non-verbose
  EXPECT_NE(report.find("2 invariants, 1 violated"), std::string::npos);
  EXPECT_NE(report.find("suite total:"), std::string::npos);
  EXPECT_NE(report.find("paper budget 300 s: PASS"), std::string::npos);
  std::string verbose =
      InvariantChecker::report(checker.check_all(suite), /*verbose=*/true);
  EXPECT_NE(verbose.find("PASS ok"), std::string::npos);
}

TEST(InvariantChecker, SuiteTotalAndBudget) {
  Database db = small_db();
  InvariantChecker checker(db);
  std::vector<NamedInvariant> suite{
      {"ok", "", "[select dirst from D where dirst = nosuch] = empty"},
      {"ok2", "", "[select dirst from D where dirst = nosuch] = empty"},
  };
  auto results = checker.check_all(suite);
  const double total = InvariantChecker::total_micros(results);
  EXPECT_DOUBLE_EQ(total, results[0].micros + results[1].micros);
  EXPECT_GT(total, 0.0);
  EXPECT_TRUE(InvariantChecker::within_budget(results));

  // A synthetic over-budget suite trips the check.
  results[0].micros = InvariantChecker::kSuiteBudgetMicros + 1.0;
  EXPECT_FALSE(InvariantChecker::within_budget(results));
}

TEST(InvariantChecker, MalformedSqlThrows) {
  Database db = small_db();
  InvariantChecker checker(db);
  NamedInvariant inv{"broken", "", "[select from] = empty"};
  EXPECT_THROW((void)checker.check(inv), ParseError);
}

TEST(InvariantChecker, FullAsuraSuiteHolds) {
  auto spec = asura::make_asura();
  InvariantChecker checker(spec->database());
  auto results = checker.check_all(spec->invariants());
  EXPECT_GE(results.size(), 45u);
  EXPECT_TRUE(InvariantChecker::all_hold(results))
      << InvariantChecker::report(results);
}

}  // namespace
}  // namespace ccsql
