#include "checks/lint.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

std::vector<std::string> finding_texts(
    const std::vector<LintFinding>& findings) {
  std::vector<std::string> out;
  for (const auto& f : findings) out.push_back(f.to_string());
  return out;
}

TEST(Lint, AsuraFindingsArePinned) {
  // The reconstruction's known hygiene advisories: deliberate domain
  // completeness (op/state symmetry), the implementation-only Dfdback
  // message (it lives in ED, not D), and two stale domain values kept for
  // documentation of the role-level history.  New findings mean the spec
  // drifted.
  auto findings = lint(spec(), asura::processor_sinks());
  auto texts = finding_texts(findings);
  const char* expected[] = {
      "D.nxtbdirpv: domain value 'inc' appears in no generated row",
      "D.nxtbdirpv: domain value 'drepl' appears in no generated row",
      "NC.nccmpl: domain value 'NULL' appears in no generated row",
      "CC.nxtcst: domain value 'E' appears in no generated row",
      "RAC.fwdmsgsrc: domain value 'home' appears in no generated row",
      "INT.inmsgsrc: domain value 'home' appears in no generated row",
      "INT.nxtintst: domain value 'w-st' appears in no generated row",
      "message 'Dfdback' appears in no controller table",
  };
  for (const char* e : expected) {
    EXPECT_NE(std::find(texts.begin(), texts.end(), e), texts.end()) << e;
  }
  EXPECT_EQ(findings.size(), std::size(expected))
      << lint_report(findings);
}

TEST(Lint, UnconstrainedOutputDetected) {
  ProtocolSpec p("toy");
  p.messages().add("req", MessageClass::kRequest);
  p.install_functions();
  ControllerSpec& c = p.add_controller("T");
  c.add_input("inmsg", {"req"});
  c.add_output("out", {"a", "b"});  // no constraint: free cross product
  c.add_message_triple({"inmsg", "insrc", "indst", true});
  auto findings = lint(p);
  bool found = false;
  for (const auto& f : findings) {
    if (f.kind == LintFinding::Kind::kUnconstrainedOutput &&
        f.column == "out") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lint, UnconsumedMessageDetectedAndSinkable) {
  ProtocolSpec p("toy");
  p.messages().add("req", MessageClass::kRequest);
  p.messages().add("resp", MessageClass::kResponse);
  p.install_functions();
  ControllerSpec& c = p.add_controller("T");
  c.add_input("inmsg", {"req"});
  c.add_input("insrc", {"local"});
  c.add_input("indst", {"home"});
  c.add_output("outmsg", {"resp"});
  c.add_output("outsrc", {"home"});
  c.add_output("outdst", {"local"});
  c.constrain("outmsg", "outmsg = resp");
  c.add_message_triple({"inmsg", "insrc", "indst", true});
  c.add_message_triple({"outmsg", "outsrc", "outdst", false});

  auto findings = lint(p);
  bool found = false;
  for (const auto& f : findings) {
    if (f.kind == LintFinding::Kind::kUnconsumedMessage && f.value == "resp") {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Declaring the message a processor-level sink silences the finding.
  auto with_sink = lint(p, {"resp"});
  for (const auto& f : with_sink) {
    EXPECT_FALSE(f.kind == LintFinding::Kind::kUnconsumedMessage &&
                 f.value == "resp");
  }
}

TEST(Lint, ReportCountsFindings) {
  auto findings = lint(spec());
  std::string report = lint_report(findings);
  EXPECT_NE(report.find("finding(s)"), std::string::npos);
}

}  // namespace
}  // namespace ccsql
