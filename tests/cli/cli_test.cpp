// End-to-end smoke tests of the ccsql command-line driver: every command
// runs, produces the expected headline output, and returns the documented
// exit code.  The binary path is injected by CMake.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run(const std::string& args) {
  const std::string cmd = std::string(CCSQL_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    r.output += buf.data();
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

TEST(Cli, NoArgsShowsUsage) {
  RunResult r = run("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: ccsql"), std::string::npos);
}

TEST(Cli, TablesListsAllEight) {
  RunResult r = run("tables");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name : {"D:", "M:", "NC:", "CC:", "RSN:", "RAC:", "IOC:",
                           "INT:"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST(Cli, TablesSingleCsv) {
  RunResult r = run("tables M --csv");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("inmsg,"), std::string::npos);
  EXPECT_NE(r.output.find("mread,"), std::string::npos);
}

TEST(Cli, SqlStatementChain) {
  RunResult r = run(
      "sql \"create table T as select distinct dirst from D; "
      "select count(*) from T order by count\"");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("3"), std::string::npos);  // I, SI, MESI
}

TEST(Cli, SqlErrorsAreReported) {
  RunResult r = run("sql \"select nope from Missing\"");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, InvariantsPass) {
  RunResult r = run("invariants");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("0 violated"), std::string::npos);
  // The suite reports its total time against the paper's <5 min budget.
  EXPECT_NE(r.output.find("suite total:"), std::string::npos);
  EXPECT_NE(r.output.find("paper budget 300 s: PASS"), std::string::npos);
}

TEST(Cli, DeadlockFindsFigure4AndExitsNonzero) {
  RunResult r = run("deadlock V5");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cycle"), std::string::npos);
  EXPECT_NE(r.output.find("VC4"), std::string::npos);
}

TEST(Cli, DeadlockCleanAssignmentExitsZero) {
  RunResult r = run("deadlock V5fix");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("deadlock-free"), std::string::npos);
}

TEST(Cli, MapVerifies) {
  RunResult r = run("map");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("ED reconstructed: 1"), std::string::npos);
}

TEST(Cli, CodegenEmitsFunction) {
  RunResult r = run("codegen Response_bdir");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("void Response_bdir_step"), std::string::npos);
  RunResult casez = run("codegen Response_bdir --casez");
  EXPECT_NE(casez.output.find("casez"), std::string::npos);
}

TEST(Cli, SimFig4DeadlocksUnderV5) {
  RunResult r = run("sim V5 --fig4");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("DEADLOCK"), std::string::npos);
}

TEST(Cli, SimRandomHealthyUnderFix) {
  RunResult r = run("sim V5fix --quads 3 --txns 30 --seed 5");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("completed=1"), std::string::npos);
  EXPECT_NE(r.output.find("errors=0"), std::string::npos);
}

TEST(Cli, ReachSmallConfigVerified) {
  RunResult r = run("reach V5fix --quads 2 --addrs 1 --ops 1");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("complete=1"), std::string::npos);
  EXPECT_NE(r.output.find("deadlock_states=0"), std::string::npos);
}

TEST(Cli, LintReportsPinnedAdvisories) {
  RunResult r = run("lint");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("8 finding(s)"), std::string::npos);
  EXPECT_NE(r.output.find("Dfdback"), std::string::npos);
}

TEST(Cli, FlowReportsDebugged) {
  RunResult r = run("flow");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("debugged under V5fix: 1"), std::string::npos);
  EXPECT_NE(r.output.find("hardware mapping:"), std::string::npos);
  EXPECT_NE(r.output.find("sim validation"), std::string::npos);
  EXPECT_NE(r.output.find("budget OK"), std::string::npos);
}

TEST(Cli, ExplainAnalyzeProfilesOperators) {
  RunResult r = run(
      "explain --analyze \"Select a.memmsg, b.inmsg, b.outmsg from D a, M b "
      "where a.memmsg = b.inmsg and a.memmsg = \\\"wb\\\" and "
      "not b.outmsg = \\\"compl\\\"\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("time="), std::string::npos);
  EXPECT_NE(r.output.find("rows_out="), std::string::npos);
  EXPECT_NE(r.output.find("build="), std::string::npos);
  EXPECT_NE(r.output.find("memory:"), std::string::npos);
  // Plain explain carries no profile brackets.
  RunResult plain = run("explain \"Select dirst from D\"");
  EXPECT_EQ(plain.exit_code, 0);
  EXPECT_EQ(plain.output.find("time="), std::string::npos);
}

TEST(Cli, StatsPrintsOnePageSummary) {
#ifdef CCSQL_TRACING_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (CCSQL_TRACING=OFF)";
#endif
  RunResult r = run("invariants --stats");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("=== run stats ==="), std::string::npos);
  EXPECT_NE(r.output.find("pool:"), std::string::npos);
  EXPECT_NE(r.output.find("memory:"), std::string::npos);
  EXPECT_NE(r.output.find("p95="), std::string::npos);
}

TEST(Cli, SimMetricsPrintsCounterTable) {
#ifdef CCSQL_TRACING_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (CCSQL_TRACING=OFF)";
#endif
  RunResult r = run("sim V5fix --quads 2 --txns 10 --metrics");
  EXPECT_EQ(r.exit_code, 0);
  // Per-run counters ...
  EXPECT_NE(r.output.find("sim.msgs_sent"), std::string::npos);
  EXPECT_NE(r.output.find("sim.table_hits"), std::string::npos);
  EXPECT_NE(r.output.find("sim.vc_sent."), std::string::npos);
  // ... and the global registry (solver counters from table generation).
  EXPECT_NE(r.output.find("solver.tables_generated"), std::string::npos);
}

TEST(Cli, FlowChromeTraceCoversEveryLayer) {
#ifdef CCSQL_TRACING_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (CCSQL_TRACING=OFF)";
#endif
  const std::string trace =
      "/tmp/ccsql_cli_trace_" + std::to_string(getpid()) + ".json";
  RunResult r = run("flow --trace " + trace + " --trace-format chrome");
  EXPECT_EQ(r.exit_code, 0) << r.output;

  std::ifstream in(trace);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string body = buffer.str();
  std::remove(trace.c_str());

  EXPECT_EQ(body.front(), '[');  // a trace_event JSON array
  // Spans from all four instrumented layers plus the flow driver itself.
  EXPECT_NE(body.find("\"cat\":\"relational\""), std::string::npos);
  EXPECT_NE(body.find("\"cat\":\"solver\""), std::string::npos);
  EXPECT_NE(body.find("\"cat\":\"checks\""), std::string::npos);
  EXPECT_NE(body.find("\"cat\":\"sim\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"flow.run\""), std::string::npos);
  // trace_event required keys.
  EXPECT_NE(body.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(body.find("\"ts\":"), std::string::npos);
}

TEST(Cli, TraceFlagRequiresAPath) {
  RunResult r = run("flow --trace");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--trace needs a file path"), std::string::npos);
}

TEST(Cli, BadTraceFormatIsRejected) {
  RunResult r = run("flow --trace /tmp/x.json --trace-format yaml");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--trace-format must be"), std::string::npos);
}

}  // namespace
