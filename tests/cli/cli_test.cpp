// End-to-end smoke tests of the ccsql command-line driver: every command
// runs, produces the expected headline output, and returns the documented
// exit code.  The binary path is injected by CMake.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run(const std::string& args) {
  const std::string cmd = std::string(CCSQL_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    r.output += buf.data();
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

TEST(Cli, NoArgsShowsUsage) {
  RunResult r = run("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: ccsql"), std::string::npos);
}

TEST(Cli, TablesListsAllEight) {
  RunResult r = run("tables");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name : {"D:", "M:", "NC:", "CC:", "RSN:", "RAC:", "IOC:",
                           "INT:"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST(Cli, TablesSingleCsv) {
  RunResult r = run("tables M --csv");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("inmsg,"), std::string::npos);
  EXPECT_NE(r.output.find("mread,"), std::string::npos);
}

TEST(Cli, SqlStatementChain) {
  RunResult r = run(
      "sql \"create table T as select distinct dirst from D; "
      "select count(*) from T order by count\"");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("3"), std::string::npos);  // I, SI, MESI
}

TEST(Cli, SqlErrorsAreReported) {
  RunResult r = run("sql \"select nope from Missing\"");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, InvariantsPass) {
  RunResult r = run("invariants");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("0 violated"), std::string::npos);
}

TEST(Cli, DeadlockFindsFigure4AndExitsNonzero) {
  RunResult r = run("deadlock V5");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cycle"), std::string::npos);
  EXPECT_NE(r.output.find("VC4"), std::string::npos);
}

TEST(Cli, DeadlockCleanAssignmentExitsZero) {
  RunResult r = run("deadlock V5fix");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("deadlock-free"), std::string::npos);
}

TEST(Cli, MapVerifies) {
  RunResult r = run("map");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("ED reconstructed: 1"), std::string::npos);
}

TEST(Cli, CodegenEmitsFunction) {
  RunResult r = run("codegen Response_bdir");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("void Response_bdir_step"), std::string::npos);
  RunResult casez = run("codegen Response_bdir --casez");
  EXPECT_NE(casez.output.find("casez"), std::string::npos);
}

TEST(Cli, SimFig4DeadlocksUnderV5) {
  RunResult r = run("sim V5 --fig4");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("DEADLOCK"), std::string::npos);
}

TEST(Cli, SimRandomHealthyUnderFix) {
  RunResult r = run("sim V5fix --quads 3 --txns 30 --seed 5");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("completed=1"), std::string::npos);
  EXPECT_NE(r.output.find("errors=0"), std::string::npos);
}

TEST(Cli, ReachSmallConfigVerified) {
  RunResult r = run("reach V5fix --quads 2 --addrs 1 --ops 1");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("complete=1"), std::string::npos);
  EXPECT_NE(r.output.find("deadlock_states=0"), std::string::npos);
}

TEST(Cli, LintReportsPinnedAdvisories) {
  RunResult r = run("lint");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("8 finding(s)"), std::string::npos);
  EXPECT_NE(r.output.find("Dfdback"), std::string::npos);
}

TEST(Cli, FlowReportsDebugged) {
  RunResult r = run("flow");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("debugged under V5fix: 1"), std::string::npos);
  EXPECT_NE(r.output.find("hardware mapping:"), std::string::npos);
}

}  // namespace
