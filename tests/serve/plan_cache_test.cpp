// The prepared-statement layer underneath serve::Server: SQL normalization
// and cache keys, $N parameter plumbing, the LRU/invalidating PlanCache,
// and build_statement/run_unit/unit_is_empty against the ASURA suite.
#include "serve/plan_cache.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"
#include "relational/error.hpp"
#include "relational/format.hpp"
#include "relational/parser.hpp"

namespace ccsql::serve {
namespace {

Database small_db() {
  Catalog cat;
  Table d(Schema::of({"dirst", "dirpv"}));
  d.append({V("MESI"), V("one")});
  d.append({V("SI"), V("gone")});
  d.append({V("I"), V("zero")});
  cat.put("D", std::move(d));
  return Database(std::move(cat));
}

TEST(NormalizeSql, CollapsesWhitespaceOutsideQuotes) {
  EXPECT_EQ(normalize_sql("  select   a\tfrom\n T  "), "select a from T");
  EXPECT_EQ(normalize_sql("select a from T where a = \"x  y\""),
            "select a from T where a = \"x  y\"");
  // Case is preserved: identifiers are case-sensitive.
  EXPECT_EQ(normalize_sql("SELECT a FROM T"), "SELECT a FROM T");
}

TEST(NormalizeSql, CacheKeyIsModePlusNormalizedText) {
  const std::string key = cache_key('E', "select  a from T");
  ASSERT_GE(key.size(), 2u);
  EXPECT_EQ(key[0], 'E');
  EXPECT_EQ(key[1], '\x1f');
  EXPECT_EQ(key.substr(2), "select a from T");
  // Equivalent statements collide; different modes never do.
  EXPECT_EQ(cache_key('Q', "select a  from T"), cache_key('Q', "select a from T"));
  EXPECT_NE(cache_key('Q', "select a from T"), cache_key('E', "select a from T"));
}

TEST(Params, ParseBindAndCount) {
  const SelectStmt stmt =
      parse_select("select dirst from D where dirst = $1 and dirpv != $2");
  EXPECT_EQ(param_count(stmt), 2u);
  const SelectStmt bound = bind_params(stmt, {"MESI", "zero"});
  EXPECT_EQ(param_count(bound), 0u);

  Database db = small_db();
  EXPECT_EQ(to_csv(db.query(bound).rows),
            to_csv(db.query("select dirst from D where dirst = \"MESI\" and "
                            "dirpv != \"zero\"")
                       .rows));
}

TEST(Params, UnboundParameterRefusesToCompile) {
  Database db = small_db();
  EXPECT_THROW((void)db.query("select dirst from D where dirst = $1"),
               BindError);
}

TEST(Params, DollarWithoutDigitsIsAParseError) {
  EXPECT_THROW((void)parse_select("select a from T where a = $"), ParseError);
}

TEST(PlanCacheLru, EvictsLeastRecentlyUsedBeyondCapacity) {
  Database db = small_db();
  Snapshot snap = db.snapshot();
  auto build = [&](const char* sql) {
    return build_statement(snap, {parse_select(sql)}, /*exists_mode=*/false);
  };
  PlanCache cache(/*capacity=*/2);
  cache.insert("a", build("select dirst from D"));
  cache.insert("b", build("select dirpv from D"));
  // Touch "a" so "b" is the LRU victim when "c" arrives.
  EXPECT_NE(cache.lookup("a", snap.generation()), nullptr);
  cache.insert("c", build("select dirst, dirpv from D"));

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_NE(cache.lookup("a", snap.generation()), nullptr);
  EXPECT_EQ(cache.lookup("b", snap.generation()), nullptr);
  EXPECT_NE(cache.lookup("c", snap.generation()), nullptr);
}

TEST(PlanCacheLru, GenerationMismatchInvalidatesResidentEntry) {
  Database db = small_db();
  Snapshot snap = db.snapshot();
  PlanCache cache;
  cache.insert("k", build_statement(snap, {parse_select("select dirst from D")},
                                    false));
  // Same generation: hit.
  EXPECT_NE(cache.lookup("k", snap.generation()), nullptr);
  // A writer moved the catalog on: the entry is dropped, not served.
  EXPECT_EQ(cache.lookup("k", snap.generation() + 1), nullptr);
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.entries, 0u);
  // And the key misses cold afterwards, even at the original generation.
  EXPECT_EQ(cache.lookup("k", snap.generation()), nullptr);
}

TEST(PlanCacheLru, TracksEstimatedBytes) {
  Database db = small_db();
  Snapshot snap = db.snapshot();
  PlanCache cache;
  EXPECT_EQ(cache.stats().bytes, 0u);
  cache.insert("k", build_statement(snap, {parse_select("select dirst from D")},
                                    false));
  EXPECT_GT(cache.stats().bytes, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// The fast emptiness probe must agree with the generic executor on every
// invariant of the real protocol — including the corrupted-table case where
// probes must find the violating rows.
TEST(FastEmpty, AgreesWithGenericExecutorOnAsuraSuite) {
  auto spec = asura::make_asura();
  Database db = spec->database();
  Snapshot snap = db.snapshot();
  std::size_t fast_units = 0;
  for (const auto& inv : spec->invariants()) {
    CachedStatementPtr cs =
        build_statement(snap, parse_invariant(inv.sql), /*exists_mode=*/true);
    for (std::size_t u = 0; u < cs->units.size(); ++u) {
      if (cs->units[u].fast) ++fast_units;
      EXPECT_EQ(unit_is_empty(*cs, u), run_unit(*cs, u, 1).row_count() == 0)
          << inv.name << " unit " << u;
      EXPECT_EQ(unit_is_empty(*cs, u), snap.check_empty(cs->units[u].stmt))
          << inv.name << " unit " << u;
    }
  }
  // The probe should cover the bulk of the suite, not a corner of it.
  EXPECT_GT(fast_units, 0u);
}

TEST(FastEmpty, FindsInjectedViolation) {
  auto spec = asura::make_asura();
  Database db = spec->database();
  Table d = db.get("D");
  std::vector<Value> row(d.row(0).begin(), d.row(0).end());
  row[d.schema().index_of("dirst")] = V("MESI");
  row[d.schema().index_of("dirpv")] = V("zero");
  d.append(RowView(row));
  db.put("D", std::move(d));
  Snapshot snap = db.snapshot();

  // dirpv-consistency style probe: MESI directory entries must name an
  // owner, so the corrupted row is a violation the probe must surface.
  const char* sql =
      "select dirst, dirpv from D where dirst = \"MESI\" and dirpv = \"zero\"";
  CachedStatementPtr cs =
      build_statement(snap, {parse_select(sql)}, /*exists_mode=*/true);
  EXPECT_FALSE(unit_is_empty(*cs, 0));
  EXPECT_EQ(unit_is_empty(*cs, 0), snap.check_empty(sql));
}

TEST(RunUnit, MatchesDatabaseQueryResults) {
  auto spec = asura::make_asura();
  Database db = spec->database();
  Snapshot snap = db.snapshot();
  const char* sql =
      "select inmsg, bdirst, locmsg from D where isrequest(inmsg) and "
      "not bdirst = \"I\" and not locmsg = \"retry\"";
  CachedStatementPtr cs =
      build_statement(snap, {parse_select(sql)}, /*exists_mode=*/false);
  EXPECT_EQ(to_csv(run_unit(*cs, 0, 1)), to_csv(db.query(sql).rows));
}

}  // namespace
}  // namespace ccsql::serve
