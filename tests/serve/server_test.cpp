// serve::Server: the cached-vs-fresh differential over the full ASURA
// invariant suite (across jobs and bytecode settings), cache eviction and
// writer invalidation through the public API, prepared-statement execution,
// admission gating, and the published stats.
#include "serve/server.hpp"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pool.hpp"
#include "obs/mem.hpp"
#include "protocol/asura/asura.hpp"
#include "relational/bytecode.hpp"
#include "relational/format.hpp"

namespace ccsql::serve {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

/// Every invariant of the suite as both a check_empty text and a list of
/// SELECTs whose results we can compare row-for-row.
std::vector<std::string> invariant_sqls() {
  std::vector<std::string> out;
  for (const auto& inv : spec().invariants()) out.push_back(inv.sql);
  return out;
}

/// Restores the process-wide bytecode toggle on scope exit.
struct BytecodeGuard {
  bool saved = bytecode_enabled();
  ~BytecodeGuard() { set_bytecode_enabled(saved); }
};

// The acceptance differential: for every invariant query, the server's
// cached answer must be byte-identical to a fresh Database evaluation —
// under serial and parallel execution, with and without the bytecode
// engine.  The second server pass answers from the cache (asserted via
// stats), so this exercises the cached path, not just first compilation.
TEST(Server, CachedMatchesFreshAcrossJobsAndBytecode) {
  BytecodeGuard guard;
  const std::vector<std::string> sqls = invariant_sqls();
  for (const bool bytecode : {true, false}) {
    set_bytecode_enabled(bytecode);
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      Database fresh = spec().database();
      fresh.set_jobs(jobs);
      ServerOptions opts;
      opts.jobs_per_query = jobs;
      Server server(spec().database(), opts);
      for (int pass = 0; pass < 2; ++pass) {
        for (const std::string& sql : sqls) {
          EXPECT_EQ(server.check_empty(sql), fresh.check_empty(sql))
              << "bytecode=" << bytecode << " jobs=" << jobs << " " << sql;
        }
      }
      const ServerStats s = server.stats();
      EXPECT_GE(s.cache.hits, sqls.size())
          << "second pass should answer from the cache";
      EXPECT_EQ(s.uncached_queries, 0u);
    }
  }
}

TEST(Server, QueryResultsMatchDatabaseRowForRow) {
  Database fresh = spec().database();
  Server server(spec().database());
  const std::vector<std::string> probes = {
      "select dirst, dirpv from D",
      "select inmsg, bdirst from D where isrequest(inmsg)",
      "select dirst from D where dirst = \"MESI\" and dirpv = \"zero\"",
  };
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& sql : probes) {
      EXPECT_EQ(to_csv(server.query(sql).rows), to_csv(fresh.query(sql).rows))
          << sql;
    }
  }
}

TEST(Server, CacheOffLegStillCorrectAndCountsUncached) {
  ServerOptions opts;
  opts.use_plan_cache = false;
  Server server(spec().database());
  Server nocache(spec().database(), opts);
  for (const std::string& sql : invariant_sqls()) {
    EXPECT_EQ(nocache.check_empty(sql), server.check_empty(sql)) << sql;
  }
  const ServerStats s = nocache.stats();
  EXPECT_EQ(s.uncached_queries, s.queries);
  EXPECT_GT(s.uncached_queries, 0u);
  EXPECT_EQ(s.cache.entries, 0u);
}

TEST(Server, TinyCacheEvictsButStaysCorrect) {
  ServerOptions opts;
  opts.plan_cache_capacity = 2;
  Server server(spec().database(), opts);
  Database fresh = spec().database();
  const std::vector<std::string> sqls = invariant_sqls();
  ASSERT_GT(sqls.size(), 2u);
  for (int pass = 0; pass < 3; ++pass) {
    for (const std::string& sql : sqls) {
      EXPECT_EQ(server.check_empty(sql), fresh.check_empty(sql)) << sql;
    }
  }
  const ServerStats s = server.stats();
  EXPECT_GT(s.cache.evictions, 0u);
  EXPECT_LE(s.cache.entries, 2u);
}

TEST(Server, WriterSwapInvalidatesCachedPlansAndStaysCorrect) {
  Server server(spec().database());
  const std::string probe =
      "select dirst, dirpv from D where dirst = \"MESI\" and dirpv = \"zero\"";
  EXPECT_TRUE(server.check_empty(probe));
  const std::uint64_t gen0 = server.stats().generation;

  // The writer corrupts D: a MESI line with an empty presence vector.
  server.update([](Database& db) {
    Table d = db.get(asura::kDirectory);
    std::vector<Value> row(d.row(0).begin(), d.row(0).end());
    row[d.schema().index_of("dirst")] = V("MESI");
    row[d.schema().index_of("dirpv")] = V("zero");
    d.append(RowView(row));
    db.put(asura::kDirectory, std::move(d));
  });

  // The cached plan must not answer from the old table.
  EXPECT_FALSE(server.check_empty(probe));
  const ServerStats s = server.stats();
  EXPECT_EQ(s.writer_swaps, 1u);
  EXPECT_GT(s.generation, gen0);
  EXPECT_GT(s.cache.invalidations, 0u);
}

TEST(Server, PreparedExecuteEqualsLiteralQuery) {
  Server server(spec().database());
  const Server::Prepared p = server.prepare(
      "select  dirst, dirpv from D where dirst = $1 and not dirpv = $2");
  EXPECT_EQ(p.params, 2u);
  // prepare() normalizes: the doubled space collapses.
  EXPECT_EQ(p.sql, "select dirst, dirpv from D where dirst = $1 and not dirpv = $2");

  const QueryResult bound = server.execute(p, {"MESI", "zero"});
  const QueryResult literal = server.query(
      "select dirst, dirpv from D where dirst = \"MESI\" and not dirpv = "
      "\"zero\"");
  EXPECT_EQ(to_csv(bound.rows), to_csv(literal.rows));
  // Distinct bindings answer differently and are cached separately.
  const QueryResult other = server.execute(p, {"I", "zero"});
  EXPECT_NE(to_csv(bound.rows), to_csv(other.rows));
  EXPECT_EQ(to_csv(server.execute(p, {"MESI", "zero"}).rows),
            to_csv(bound.rows));
  EXPECT_GT(server.stats().cache.hits, 0u);
}

TEST(Server, AdmissionGateSerializesButCompletesAll) {
  ServerOptions opts;
  opts.max_inflight = 1;
  Server server(spec().database(), opts);
  const std::vector<std::string> sqls = invariant_sqls();
  // Real OS threads, not pool lanes: on a single-core host pool tasks run
  // back-to-back and would never contend for the admission slot.  Four
  // preemptible threads spending nearly all their time inside the slot
  // contend as soon as the scheduler switches mid-query.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 400;
  std::atomic<std::size_t> violations{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t q = 0; q < kPerThread; ++q) {
        if (!server.check_empty(sqls[(t + q) % sqls.size()])) ++violations;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(server.stats().queries, kThreads * kPerThread);
  // Waits are scheduler-dependent, so don't assert a count — only that the
  // accounting stayed consistent (every wait recorded nonzero-able time).
  const ServerStats s = server.stats();
  if (s.admission_waits == 0) EXPECT_EQ(s.admission_wait_us, 0u);
}

TEST(Server, PublishStatsExposesServeGauges) {
  Server server(spec().database());
  (void)server.check_empty(invariant_sqls().front());
  (void)server.check_empty(invariant_sqls().front());
  obs::Metrics metrics;
  server.publish_stats(metrics);
  EXPECT_EQ(metrics.counter("serve.queries"), 2u);
  EXPECT_EQ(metrics.counter("serve.plan_cache.hits"), 1u);
  EXPECT_EQ(metrics.counter("serve.plan_cache.misses"), 1u);
  EXPECT_EQ(metrics.counter("serve.plan_cache.entries"), 1u);
  EXPECT_EQ(metrics.counter("serve.writer_swaps"), 0u);
}

TEST(Server, PlanCacheMemoryReturnsToBaselineOnDestruction) {
  const std::uint64_t base =
      obs::MemTracker::global().usage(obs::MemTracker::Category::kPlans).live;
  {
    Server server(spec().database());
    for (const std::string& sql : invariant_sqls()) {
      (void)server.check_empty(sql);
    }
    EXPECT_GT(
        obs::MemTracker::global().usage(obs::MemTracker::Category::kPlans).live,
        base);
  }
  EXPECT_EQ(
      obs::MemTracker::global().usage(obs::MemTracker::Category::kPlans).live,
      base);
}

}  // namespace
}  // namespace ccsql::serve
