// Snapshot isolation under concurrent writers (the PR's acceptance
// property): eight reader sessions run the invariant suite against
// serve::Server while a writer keeps republishing the directory table.
// Every reader answer must be byte-identical to a quiesced evaluation —
// readers are never blocked by, and never observe, a half-applied swap.
//
// Deterministic by construction: the writer always republishes
// identical-content tables (a fresh copy of the same rows), so the correct
// answer never changes even though the catalog generation — and therefore
// every cached plan — keeps churning.  Run under TSan in CI to prove the
// reader path is race-free, not just observably correct.
#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pool.hpp"
#include "protocol/asura/asura.hpp"
#include "relational/format.hpp"
#include "serve/server.hpp"

namespace ccsql::serve {
namespace {

constexpr std::size_t kReaders = 8;
constexpr std::size_t kQueriesPerReader = 200;

TEST(SnapshotIsolation, ReadersMatchQuiescedRunUnderConcurrentRegeneration) {
  const std::unique_ptr<ProtocolSpec> spec = asura::make_asura();

  // Quiesced oracle: every invariant's verdict and every probe's rows,
  // computed once before any concurrency.
  const Database& oracle_db = spec->database();
  std::vector<std::string> sqls;
  std::vector<bool> verdicts;
  for (const auto& inv : spec->invariants()) {
    sqls.push_back(inv.sql);
    verdicts.push_back(oracle_db.check_empty(inv.sql));
  }
  const std::string probe = "select dirst, dirpv, inmsg from D";
  const std::string probe_csv = to_csv(oracle_db.query(probe).rows);

  Server server(spec->database());
  const std::uint64_t gen0 = server.stats().generation;

  // The writer republishes D with identical contents (a row-for-row copy)
  // until the readers finish — each update() is one COW swap that
  // invalidates every cached plan.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> swaps{0};
  std::thread writer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      server.update([](Database& db) {
        Table copy = db.get(asura::kDirectory);
        db.put(asura::kDirectory, std::move(copy));
      });
      ++swaps;
      std::this_thread::yield();
    }
  });

  // Eight reader sessions, each with its own seeded query order, comparing
  // every answer against the quiesced oracle.
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> queries{0};
  core::Pool::global().parallel_tasks(kReaders, kReaders, [&](std::size_t r) {
    std::mt19937 rng(0xC0FFEE + static_cast<std::uint32_t>(r));
    for (std::size_t q = 0; q < kQueriesPerReader; ++q) {
      if (rng() % 8 == 0) {
        // Occasionally a full-table read: rows must be byte-identical,
        // never a mid-swap torn view.
        if (to_csv(server.query(probe).rows) != probe_csv) ++mismatches;
      } else {
        const std::size_t i = rng() % sqls.size();
        if (server.check_empty(sqls[i]) != verdicts[i]) ++mismatches;
      }
      ++queries;
    }
  });
  done.store(true);
  writer.join();

  EXPECT_EQ(mismatches.load(), 0u)
      << "a reader observed state differing from the quiesced run";
  EXPECT_EQ(queries.load(), kReaders * kQueriesPerReader);
  EXPECT_GT(swaps.load(), 0u) << "the writer never ran concurrently";
  const ServerStats s = server.stats();
  EXPECT_EQ(s.writer_swaps, swaps.load());
  EXPECT_GT(s.generation, gen0);
  // The churn invalidated cached plans; readers still answered correctly.
  EXPECT_GT(s.cache.invalidations, 0u);
}

// Same property through raw snapshots: a handle taken before a swap keeps
// answering from its frozen catalog while later handles see the new
// generation — the reader-side contract update() relies on.
TEST(SnapshotIsolation, OldHandlesSurviveSwapsUnchanged) {
  const std::unique_ptr<ProtocolSpec> spec = asura::make_asura();
  Server server(spec->database());
  const std::string probe = "select dirst, dirpv from D";

  Snapshot before = server.snapshot();
  const std::string before_csv = to_csv(before.query(probe).rows);

  server.update([](Database& db) {
    Table d = db.get(asura::kDirectory);
    std::vector<Value> row(d.row(0).begin(), d.row(0).end());
    row[d.schema().index_of("dirst")] = V("MESI");
    row[d.schema().index_of("dirpv")] = V("zero");
    d.append(RowView(row));
    db.put(asura::kDirectory, std::move(d));
  });

  Snapshot after = server.snapshot();
  EXPECT_EQ(to_csv(before.query(probe).rows), before_csv);
  EXPECT_NE(to_csv(after.query(probe).rows), before_csv);
  EXPECT_LT(before.generation(), after.generation());
}

}  // namespace
}  // namespace ccsql::serve
