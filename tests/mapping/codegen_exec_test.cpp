// The strongest section 5 check: the code emitted from an implementation
// table is compiled with the system compiler and executed; the generated
// program replays every table row as a test vector.  This verifies the
// emitted controller logic itself, not just the tables it came from.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "mapping/asura_map.hpp"
#include "mapping/codegen.hpp"
#include "protocol/asura/asura.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

int compile_and_run(const std::string& program, const std::string& name) {
  const std::string src = name + "_selfcheck.cpp";
  const std::string bin = "./" + name + "_selfcheck";
  std::ofstream(src) << program;
  const std::string compile = "c++ -std=c++17 -O0 -o " + bin + " " + src;
  if (std::system(compile.c_str()) != 0) return -1;
  const int status = std::system(bin.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
}

TEST(CodegenExec, GeneratedControllerReproducesItsTable) {
  ControllerSpec ed_spec = mapping::make_extended_directory(spec());
  const Table& ed = ed_spec.generate(&spec().database().functions());
  auto parts =
      mapping::partition_directory(ed, spec().database().functions());
  for (const auto& p : parts) {
    if (p.name != "Response_bdir" && p.name != "Response_locmsg") continue;
    std::string program =
        mapping::generate_selfcheck_program(p.table, p.name);
    EXPECT_EQ(compile_and_run(program, p.name), 0) << p.name;
  }
}

TEST(CodegenExec, CorruptedTableFailsItsOwnVectors) {
  // Flip one output cell after generating the vectors: the emitted logic
  // (from the corrupted table) no longer matches the vectors we built from
  // the original — build the program from the original table but emit the
  // logic from the corrupted one by splicing: simpler and equivalent, we
  // corrupt the table first and check the program STILL verifies (it is
  // self-consistent), then corrupt a vector by hand.
  Table t(make_schema({{"a", ColumnKind::kInput},
                       {"x", ColumnKind::kOutput}}));
  t.append({V("p"), V("r1")});
  t.append({V("q"), V("r2")});
  std::string program = mapping::generate_selfcheck_program(t, "Tiny");
  ASSERT_EQ(compile_and_run(program, "Tiny_ok"), 0);
  // Tamper with one expected vector: the run must now fail.
  auto pos = program.find("{kR2, false}");
  ASSERT_NE(pos, std::string::npos);
  program.replace(pos, 12, "{kR1, false}");
  EXPECT_EQ(compile_and_run(program, "Tiny_bad"), 1);
}

TEST(CodegenExec, SelfcheckProgramShape) {
  Table t(make_schema({{"a", ColumnKind::kInput},
                       {"x", ColumnKind::kOutput}}));
  t.append({V("p"), null_value()});  // no-op output row
  std::string program = mapping::generate_selfcheck_program(t, "U");
  EXPECT_NE(program.find("struct Inputs"), std::string::npos);
  EXPECT_NE(program.find("struct Outputs"), std::string::npos);
  EXPECT_NE(program.find("void U_step"), std::string::npos);
  EXPECT_NE(program.find("int main()"), std::string::npos);
  // The no-op output is encoded as kNull in the vector and checked to be
  // left untouched (kUnset) by the generated code.
  EXPECT_NE(program.find("kNull ? got.x == kUnset"), std::string::npos);
}

}  // namespace
}  // namespace ccsql
