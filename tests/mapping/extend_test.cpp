#include "mapping/extend.hpp"

#include <gtest/gtest.h>

#include "relational/error.hpp"
#include "relational/query.hpp"

namespace ccsql {
namespace {

ControllerSpec base_spec() {
  ControllerSpec c("B");
  c.add_input("inmsg", {"req"});
  c.add_input("st", {"idle", "busy"});
  c.add_output("out", {"NULL", "grant", "retry"});
  c.constrain("out", "st = idle ? out = grant : out = NULL");
  c.add_message_triple({"inmsg", "insrc", "indst", true});
  return c;
}

TEST(ExtendedTableBuilder, PreservesBaseWhenUnwrapped) {
  ControllerSpec base = base_spec();
  ControllerSpec ext = ExtendedTableBuilder("E", base).build();
  EXPECT_EQ(ext.name(), "E");
  const Table& bt = base.generate(nullptr);
  const Table& et = ext.generate(nullptr);
  EXPECT_TRUE(et.set_equal(bt.with_schema(et.schema_ptr())));
  EXPECT_EQ(ext.message_triples().size(), 1u);
}

TEST(ExtendedTableBuilder, NewInputGoesAfterBaseInputs) {
  ControllerSpec base = base_spec();
  ControllerSpec ext = ExtendedTableBuilder("E", base)
                           .add_input("qfull", {"yes", "no"})
                           .build();
  const Schema& s = *ext.schema();
  EXPECT_EQ(s.column(0).name, "inmsg");
  EXPECT_EQ(s.column(2).name, "qfull");
  EXPECT_EQ(s.column(2).kind, ColumnKind::kInput);
  EXPECT_EQ(s.column(3).name, "out");
  // Unconstrained new input doubles the rows.
  EXPECT_EQ(ext.generate(nullptr).row_count(),
            2 * base.generate(nullptr).row_count());
}

TEST(ExtendedTableBuilder, WrapOverridesConditionally) {
  ControllerSpec base = base_spec();
  ControllerSpec ext = ExtendedTableBuilder("E", base)
                           .add_input("qfull", {"yes", "no"})
                           .wrap("out", "qfull = yes", "out = retry")
                           .build();
  Catalog cat;
  cat.put("E", ext.generate(nullptr));
  // Wrapped branch.
  Table full = cat.query("select out from E where qfull = yes");
  for (std::size_t r = 0; r < full.row_count(); ++r) {
    EXPECT_EQ(full.at(r, 0), V("retry"));
  }
  // Base behaviour intact when the condition does not fire.
  EXPECT_EQ(cat.query("select * from E where qfull = no and st = idle and "
                      "out = grant")
                .row_count(),
            1u);
  EXPECT_EQ(cat.query("select * from E where qfull = no and st = busy and "
                      "out = NULL")
                .row_count(),
            1u);
}

TEST(ExtendedTableBuilder, ExtendDomainAddsValues) {
  ControllerSpec base = base_spec();
  ControllerSpec ext = ExtendedTableBuilder("E", base)
                           .extend_domain("inmsg", {"fdback"})
                           .wrap("out", "inmsg = fdback", "out = NULL")
                           .build();
  Catalog cat;
  cat.put("E", ext.generate(nullptr));
  EXPECT_EQ(cat.query("select * from E where inmsg = fdback").row_count(),
            2u);  // st idle / busy
  EXPECT_EQ(cat.query("select * from E where inmsg = fdback and "
                      "not out = NULL")
                .row_count(),
            0u);
  EXPECT_THROW(ExtendedTableBuilder("E", base).extend_domain("zzz", {"v"}),
               BindError);
}

TEST(ExtendedTableBuilder, DoubleWrapNestsInOrder) {
  ControllerSpec base = base_spec();
  ControllerSpec ext = ExtendedTableBuilder("E", base)
                           .add_input("a", {"0", "1"})
                           .add_input("b", {"0", "1"})
                           .wrap("out", "a = 1", "out = retry")
                           .wrap("out", "b = 1", "out = NULL")
                           .build();
  Catalog cat;
  cat.put("E", ext.generate(nullptr));
  // Outer wrap (b) wins over inner wrap (a).
  Table t = cat.query("select out from E where a = 1 and b = 1");
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    EXPECT_TRUE(t.at(r, 0).is_null());
  }
  Table t2 = cat.query("select out from E where a = 1 and b = 0");
  for (std::size_t r = 0; r < t2.row_count(); ++r) {
    EXPECT_EQ(t2.at(r, 0), V("retry"));
  }
}

}  // namespace
}  // namespace ccsql
