#include "mapping/asura_map.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"

namespace ccsql {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

const Table& ed_table() {
  static const ControllerSpec ed_spec =
      mapping::make_extended_directory(spec());
  return ed_spec.generate(&spec().database().functions());
}

TEST(AsuraMapping, EdShape) {
  // ED = D's 30 columns + Qstatus + Dqstatus + Fdback (paper, section 5).
  const Table& ed = ed_table();
  EXPECT_EQ(ed.column_count(), 33u);
  EXPECT_GT(ed.row_count(),
            spec().database().get(asura::kDirectory).row_count());
  EXPECT_TRUE(ed.schema().has("Qstatus"));
  EXPECT_TRUE(ed.schema().has("Dqstatus"));
  EXPECT_TRUE(ed.schema().has("Fdback"));
}

TEST(AsuraMapping, FullQueueRetriesRequests) {
  Catalog cat;
  cat.put("ED", ed_table());
  cat.functions() = spec().database().functions();
  Table t = cat.query(
      "select locmsg, remmsg, memmsg, cmpl from ED where "
      "isrequest(inmsg) and Qstatus = Full and not inmsg = \"Dfdback\"");
  ASSERT_GT(t.row_count(), 0u);
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    EXPECT_EQ(t.at(r, "locmsg"), V("retry"));
    EXPECT_TRUE(t.at(r, "remmsg").is_null());
    EXPECT_TRUE(t.at(r, "memmsg").is_null());
    EXPECT_TRUE(t.at(r, "cmpl").is_null());
  }
}

TEST(AsuraMapping, FullUpdateQueueGeneratesFeedback) {
  Catalog cat;
  cat.put("ED", ed_table());
  cat.functions() = spec().database().functions();
  // Responses that would write the directory ship the update as Dfdback.
  Table t = cat.query(
      "select Fdback from ED where isresponse(inmsg) and "
      "Dqstatus = Full and dirupd = upd");
  ASSERT_GT(t.row_count(), 0u);
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    EXPECT_EQ(t.at(r, 0), V("Dfdback"));
  }
  // Responses without a directory write never generate feedback.
  Table none = cat.query(
      "select Fdback from ED where isresponse(inmsg) and "
      "not dirupd = upd and not Fdback = NULL");
  EXPECT_EQ(none.row_count(), 0u);
}

TEST(AsuraMapping, DfdbackAppliesDeferredUpdate) {
  Catalog cat;
  cat.put("ED", ed_table());
  Table t = cat.query(
      "select dirupd, cmpl, locmsg, remmsg, memmsg from ED where "
      "inmsg = \"Dfdback\" and Qstatus = NotFull");
  ASSERT_GT(t.row_count(), 0u);
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    EXPECT_EQ(t.at(r, "dirupd"), V("upd"));
    EXPECT_EQ(t.at(r, "cmpl"), V("done"));
    EXPECT_TRUE(t.at(r, "locmsg").is_null());
    EXPECT_TRUE(t.at(r, "remmsg").is_null());
    EXPECT_TRUE(t.at(r, "memmsg").is_null());
  }
  // A re-queued feedback performs nothing.
  Table requeued = cat.query(
      "select dirupd, cmpl from ED where inmsg = \"Dfdback\" and "
      "Qstatus = Full");
  for (std::size_t r = 0; r < requeued.row_count(); ++r) {
    EXPECT_TRUE(requeued.at(r, "dirupd").is_null());
    EXPECT_TRUE(requeued.at(r, "cmpl").is_null());
  }
}

TEST(AsuraMapping, PartitionYieldsNineTables) {
  auto parts =
      mapping::partition_directory(ed_table(), spec().database().functions());
  ASSERT_EQ(parts.size(), 9u);
  std::set<std::string> names;
  for (const auto& p : parts) {
    names.insert(p.name);
    EXPECT_GT(p.table.row_count(), 0u) << p.name;
    // Every implementation table carries all ED inputs.
    EXPECT_TRUE(p.table.schema().has("inmsg"));
    EXPECT_TRUE(p.table.schema().has("Qstatus"));
  }
  EXPECT_TRUE(names.count("Request_remmsg"));
  EXPECT_TRUE(names.count("Response_dir"));
  EXPECT_FALSE(names.count("Response_remmsg"));  // responses never snoop
}

TEST(AsuraMapping, ReconstructionRoundTrips) {
  auto parts =
      mapping::partition_directory(ed_table(), spec().database().functions());
  Table rebuilt = mapping::reconstruct_extended(parts, ed_table());
  EXPECT_TRUE(rebuilt.set_equal(ed_table()));
}

TEST(AsuraMapping, BaseTableRecoveredFromEd) {
  const Table& d = spec().database().get(asura::kDirectory);
  Table base = mapping::reconstruct_base(ed_table(), d);
  EXPECT_TRUE(base.set_equal(d));
  EXPECT_TRUE(base.contains_all(d));
}

TEST(AsuraMapping, VerifyReportAllGreen) {
  auto report = mapping::verify_directory_mapping(spec());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.table_rows.size(), 9u);
  EXPECT_EQ(report.ed_cols, 33u);
}

TEST(AsuraMapping, FaultInjectionCorruptPartitionDetected) {
  auto parts =
      mapping::partition_directory(ed_table(), spec().database().functions());
  // Corrupt one output cell of one implementation table: flip a remmsg.
  for (auto& p : parts) {
    if (p.name != "Request_remmsg") continue;
    Table corrupted(p.table.schema_ptr());
    const std::size_t col = p.table.schema().index_of("remmsg");
    for (std::size_t r = 0; r < p.table.row_count(); ++r) {
      std::vector<Value> row(p.table.row(r).begin(), p.table.row(r).end());
      if (r == 0) row[col] = V("sflush");
      corrupted.append(RowView(row));
    }
    p.table = std::move(corrupted);
  }
  Table rebuilt = mapping::reconstruct_extended(parts, ed_table());
  EXPECT_FALSE(rebuilt.set_equal(ed_table()));
}

TEST(AsuraMapping, FaultInjectionDroppedRowDetected) {
  auto parts =
      mapping::partition_directory(ed_table(), spec().database().functions());
  for (auto& p : parts) {
    if (p.name != "Response_bdir") continue;
    Table shrunk(p.table.schema_ptr());
    for (std::size_t r = 1; r < p.table.row_count(); ++r) {
      shrunk.append(p.table.row(r));
    }
    p.table = std::move(shrunk);
  }
  Table rebuilt = mapping::reconstruct_extended(parts, ed_table());
  EXPECT_FALSE(rebuilt.contains_all(ed_table()));
}

}  // namespace
}  // namespace ccsql
