#include "mapping/codegen.hpp"

#include <gtest/gtest.h>

namespace ccsql {
namespace {

Table impl_table() {
  Table t(make_schema({{"inmsg", ColumnKind::kInput},
                       {"dirst", ColumnKind::kInput},
                       {"remmsg", ColumnKind::kOutput}}));
  t.append({V("readex"), V("SI"), V("sinv")});
  t.append({V("readex"), V("MESI"), V("sinv")});
  t.append({V("read"), null_value(), null_value()});  // don't-care / no-op
  return t;
}

TEST(Codegen, CxxEmitsConditionPerRow) {
  std::string code =
      mapping::generate_code(impl_table(), "Request_remmsg");
  EXPECT_NE(code.find("void Request_remmsg_step"), std::string::npos);
  EXPECT_NE(code.find("in.inmsg == kReadex && in.dirst == kSI"),
            std::string::npos);
  EXPECT_NE(code.find("out.remmsg = kSinv;"), std::string::npos);
  // Don't-care input omitted from the condition; no-op output omitted.
  EXPECT_NE(code.find("if (in.inmsg == kRead) {"), std::string::npos);
  // Fallthrough handles illegal inputs.
  EXPECT_NE(code.find("out.error = true"), std::string::npos);
}

TEST(Codegen, MangleHandlesProtocolNames) {
  Table t(make_schema({{"bdirst", ColumnKind::kInput},
                       {"nxt", ColumnKind::kOutput}}));
  t.append({V("Busy-rx-sd"), V("Busy-rx-s")});
  std::string code = mapping::generate_code(t, "U");
  EXPECT_NE(code.find("kBusyRxSd"), std::string::npos);
  EXPECT_NE(code.find("kBusyRxS;"), std::string::npos);
}

TEST(Codegen, CasezDialect) {
  std::string code = mapping::generate_code(impl_table(), "Request_remmsg",
                                            mapping::CodeDialect::kCasez);
  EXPECT_NE(code.find("casez ({inmsg, dirst})"), std::string::npos);
  EXPECT_NE(code.find("{kReadex, kSI}"), std::string::npos);
  EXPECT_NE(code.find("remmsg <= kSinv;"), std::string::npos);
  EXPECT_NE(code.find("{kRead, ANY}"), std::string::npos);
  EXPECT_NE(code.find("default: protocol_error"), std::string::npos);
}

TEST(Codegen, ValueDeclarationsCoverAllValues) {
  std::string decls =
      mapping::generate_value_declarations(impl_table(), "Request_remmsg");
  EXPECT_NE(decls.find("kReadex"), std::string::npos);
  EXPECT_NE(decls.find("kSI"), std::string::npos);
  EXPECT_NE(decls.find("kSinv"), std::string::npos);
  EXPECT_NE(decls.find("enum Request_remmsg_values"), std::string::npos);
}

TEST(Codegen, EmptyTableStillWellFormed) {
  Table t(make_schema({{"a", ColumnKind::kInput},
                       {"b", ColumnKind::kOutput}}));
  std::string code = mapping::generate_code(t, "Empty");
  EXPECT_NE(code.find("void Empty_step"), std::string::npos);
  EXPECT_NE(code.find("out.error = true"), std::string::npos);
}

}  // namespace
}  // namespace ccsql
