// Copy-on-write snapshots of the catalog (Database::snapshot): immutable
// views, generation tracking, the active-handles gauge, and query parity
// with the live database.
#include "relational/database.hpp"

#include <gtest/gtest.h>

#include "relational/format.hpp"
#include "relational/parser.hpp"

namespace ccsql {
namespace {

Database small_db() {
  Catalog cat;
  Table d(Schema::of({"dirst", "dirpv"}));
  d.append({V("MESI"), V("one")});
  d.append({V("SI"), V("gone")});
  d.append({V("I"), V("zero")});
  cat.put("D", std::move(d));
  return Database(std::move(cat));
}

TEST(Snapshot, SeesFrozenContentsAcrossTableReplacement) {
  Database db = small_db();
  Snapshot snap = db.snapshot();
  ASSERT_TRUE(snap.valid());
  const std::string before = to_csv(snap.catalog().get("D"));

  Table fresh(Schema::of({"dirst", "dirpv"}));
  fresh.append({V("X"), V("y")});
  db.put("D", std::move(fresh));

  // The snapshot still reads the generation it captured; the live database
  // reads the replacement.
  EXPECT_EQ(to_csv(snap.catalog().get("D")), before);
  EXPECT_EQ(db.get("D").row_count(), 1u);
  EXPECT_LT(snap.generation(), db.generation());
}

TEST(Snapshot, InsertCopiesOnWriteAwayFromSnapshots) {
  Database db = small_db();
  Snapshot snap = db.snapshot();
  const std::size_t before = snap.catalog().get("D").row_count();

  db.execute("insert into D values (\"E\", \"two\")");
  EXPECT_EQ(snap.catalog().get("D").row_count(), before);
  EXPECT_EQ(db.get("D").row_count(), before + 1);
}

TEST(Snapshot, GenerationBumpsOnEveryCatalogMutation) {
  Database db = small_db();
  const std::uint64_t g0 = db.generation();
  Table t(Schema::of({"a"}));
  t.append({V("v")});
  db.put("T", std::move(t));
  EXPECT_GT(db.generation(), g0);
  const std::uint64_t g1 = db.generation();
  db.execute("insert into T values (\"w\")");
  EXPECT_GT(db.generation(), g1);
}

TEST(Snapshot, SameGenerationSharesOneFrozenCatalog) {
  Database db = small_db();
  Snapshot a = db.snapshot();
  Snapshot b = db.snapshot();
  EXPECT_EQ(a.shared_catalog().get(), b.shared_catalog().get());

  db.put("T", Table(Schema::of({"a"})));
  Snapshot c = db.snapshot();
  EXPECT_NE(a.shared_catalog().get(), c.shared_catalog().get());
}

TEST(Snapshot, ActiveGaugeTracksHandleLifetimes) {
  const std::size_t base = Snapshot::active();
  Database db = small_db();
  {
    Snapshot a = db.snapshot();
    EXPECT_EQ(Snapshot::active(), base + 1);
    Snapshot b = a;  // copy: one more live handle
    EXPECT_EQ(Snapshot::active(), base + 2);
    Snapshot c = std::move(b);  // move: transfers, no net change
    EXPECT_EQ(Snapshot::active(), base + 2);
    (void)c;
  }
  EXPECT_EQ(Snapshot::active(), base);
}

TEST(Snapshot, QueryAndCheckEmptyMatchDatabase) {
  Database db = small_db();
  Snapshot snap = db.snapshot();
  const std::string sql = "select dirst, dirpv from D where not dirst = I";
  EXPECT_EQ(to_csv(snap.query(sql).rows), to_csv(db.query(sql).rows));
  EXPECT_EQ(snap.check_empty("select dirst from D where dirst = MOESI"),
            db.check_empty("select dirst from D where dirst = MOESI"));
  EXPECT_FALSE(snap.check_empty("select dirst from D where dirst = \"I\""));
}

TEST(Snapshot, CarriesSessionPlannerAndJobsSettings) {
  Database db = small_db();
  db.set_jobs(3).set_planner(false);
  Snapshot snap = db.snapshot();
  EXPECT_EQ(snap.jobs(), 3u);
  EXPECT_FALSE(snap.planner_on());
  EXPECT_FALSE(snap.query("select dirst from D").planned);
}

TEST(Snapshot, EmptySnapshotIsInvalid) {
  Snapshot snap;
  EXPECT_FALSE(snap.valid());
}

}  // namespace
}  // namespace ccsql
