#include "relational/parser.hpp"

#include <gtest/gtest.h>

#include "relational/error.hpp"
#include "relational/lexer.hpp"

namespace ccsql {
namespace {

TEST(Lexer, TokenizesOperatorsAndIdents) {
  auto toks = lex("inmsg = \"data\" and dirst != Busy-d ? x : y");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "inmsg");
  EXPECT_EQ(toks[1].kind, TokenKind::kEq);
  EXPECT_EQ(toks[2].kind, TokenKind::kString);
  EXPECT_EQ(toks[2].text, "data");
  EXPECT_EQ(toks[3].text, "and");
  EXPECT_EQ(toks[5].kind, TokenKind::kNe);
  EXPECT_EQ(toks[6].text, "Busy-d");  // dash kept inside identifier
  EXPECT_EQ(toks[7].kind, TokenKind::kQuestion);
  EXPECT_EQ(toks[9].kind, TokenKind::kColon);
}

TEST(Lexer, BracketsCommaStar) {
  auto toks = lex("[ ] , * ( )");
  EXPECT_EQ(toks[0].kind, TokenKind::kLBracket);
  EXPECT_EQ(toks[1].kind, TokenKind::kRBracket);
  EXPECT_EQ(toks[2].kind, TokenKind::kComma);
  EXPECT_EQ(toks[3].kind, TokenKind::kStar);
  EXPECT_EQ(toks[4].kind, TokenKind::kLParen);
  EXPECT_EQ(toks[5].kind, TokenKind::kRParen);
}

TEST(Lexer, ErrorsOnBadInput) {
  EXPECT_THROW(lex("a = \"unterminated"), ParseError);
  EXPECT_THROW(lex("a ! b"), ParseError);
  EXPECT_THROW(lex("a # b"), ParseError);
  EXPECT_THROW(lex("a < b"), ParseError);
}

TEST(Lexer, TrailingDashIsNotIdentifier) {
  // "x-" : dash not followed by ident char must not be swallowed.
  EXPECT_THROW(lex("x- = y"), ParseError);
}

TEST(ParseExpr, RejectsMalformed) {
  EXPECT_THROW(parse_expr(""), ParseError);
  EXPECT_THROW(parse_expr("inmsg ="), ParseError);
  EXPECT_THROW(parse_expr("inmsg = a extra"), ParseError);
  EXPECT_THROW(parse_expr("inmsg = a ? x = y"), ParseError);  // missing ':'
  EXPECT_THROW(parse_expr("(inmsg = a"), ParseError);
  EXPECT_THROW(parse_expr("inmsg in ()"), ParseError);
  EXPECT_THROW(parse_expr("and inmsg = a"), ParseError);
}

TEST(ParseExpr, KeywordsAreCaseInsensitive) {
  Expr e = parse_expr("inmsg = a AND dirst = b OR NOT dirpv = c");
  // (a and b) or (not c)
  EXPECT_EQ(e.op(), Expr::Op::kOr);
  ASSERT_EQ(e.children().size(), 2u);
  EXPECT_EQ(e.children()[0].op(), Expr::Op::kAnd);
  EXPECT_EQ(e.children()[1].op(), Expr::Op::kNot);
}

TEST(ParseExpr, TernaryIsRightAssociative) {
  Expr e = parse_expr("a = 1 ? b = 2 : c = 3 ? d = 4 : e = 5");
  ASSERT_EQ(e.op(), Expr::Op::kTernary);
  EXPECT_EQ(e.children()[2].op(), Expr::Op::kTernary);
}

TEST(ParseSelect, Basic) {
  SelectStmt s = parse_select("Select dirst, dirpv from D where dirst = I");
  EXPECT_FALSE(s.distinct);
  EXPECT_FALSE(s.star);
  EXPECT_EQ(s.columns, (std::vector<std::string>{"dirst", "dirpv"}));
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "D");
  EXPECT_TRUE(s.from[0].alias.empty());
  ASSERT_TRUE(s.where.has_value());
  EXPECT_EQ(s.where->op(), Expr::Op::kCompare);
}

TEST(ParseSelect, DistinctStarNoWhere) {
  SelectStmt s = parse_select("select distinct * from ED");
  EXPECT_TRUE(s.distinct);
  EXPECT_TRUE(s.star);
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "ED");
  EXPECT_FALSE(s.where.has_value());
}

TEST(ParseSelect, PaperImplementationTableQuery) {
  // From section 5 of the paper.
  SelectStmt s = parse_select(
      "Select distinct ED.Inputs, remmsg from ED "
      "Where (isrequest(ED.Inputs.inmsg))");
  EXPECT_TRUE(s.distinct);
  EXPECT_EQ(s.columns,
            (std::vector<std::string>{"ED.Inputs", "remmsg"}));
  ASSERT_TRUE(s.where.has_value());
  EXPECT_EQ(s.where->op(), Expr::Op::kCall);
}

TEST(ParseSelect, MultiTableFromWithAliases) {
  SelectStmt s = parse_select(
      "select a.memmsg, b.inmsg from D a, M b where a.memmsg = b.inmsg");
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0], (TableRef{"D", "a"}));
  EXPECT_EQ(s.from[1], (TableRef{"M", "b"}));
  ASSERT_TRUE(s.where.has_value());
  EXPECT_EQ(s.to_string(),
            "select a.memmsg, b.inmsg from D a, M b where a.memmsg = b.inmsg");
}

TEST(ParseSelect, FromListWithoutAliases) {
  SelectStmt s = parse_select("select * from D, M order by x");
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0], (TableRef{"D", ""}));
  EXPECT_EQ(s.from[1], (TableRef{"M", ""}));
  EXPECT_EQ(s.order_by, (std::vector<std::string>{"x"}));
}

TEST(ParseSelect, RejectsMalformed) {
  EXPECT_THROW(parse_select("select from D"), ParseError);
  EXPECT_THROW(parse_select("select a b from D"), ParseError);
  EXPECT_THROW(parse_select("select a from"), ParseError);
  EXPECT_THROW(parse_select("select a from D where"), ParseError);
}

TEST(ParseInvariant, SingleBracketedEmptiness) {
  auto checks = parse_invariant(
      "[Select dirst, dirpv from D where dirst = \"MESI\" and "
      "not dirpv = \"one\"] = empty");
  ASSERT_EQ(checks.size(), 1u);
  ASSERT_EQ(checks[0].from.size(), 1u);
  EXPECT_EQ(checks[0].from[0].table, "D");
}

TEST(ParseInvariant, ConjunctionOfChecks) {
  // Shape of the paper's serialization invariant (section 4.3).
  auto checks = parse_invariant(
      "[Select inmsg, bdirst, locmsg from D where isrequest(inmsg) and "
      "not (bdirst = \"I\" and locmsg = \"retry\")] = empty and "
      "[Select inmsg from D where not inmsg = \"compl\"] = empty");
  ASSERT_EQ(checks.size(), 2u);
  EXPECT_EQ(checks[0].columns.size(), 3u);
  EXPECT_EQ(checks[1].columns.size(), 1u);
}

TEST(ParseInvariant, BareSelectAccepted) {
  auto checks = parse_invariant("select a from T");
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_EQ(checks[0].from[0].table, "T");
}

TEST(ParseInvariant, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_invariant("[select a from T] = empty garbage"),
               ParseError);
  EXPECT_THROW(parse_invariant("[select a from T] = full"), ParseError);
}

TEST(SelectStmt, ToStringRoundTrips) {
  const char* texts[] = {
      "select a, b from T where a = x",
      "select distinct * from T",
      "select a from T",
  };
  for (const char* t : texts) {
    SelectStmt s = parse_select(t);
    SelectStmt s2 = parse_select(s.to_string());
    EXPECT_EQ(s.to_string(), s2.to_string()) << t;
  }
}

}  // namespace
}  // namespace ccsql
