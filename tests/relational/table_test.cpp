#include "relational/table.hpp"

#include <gtest/gtest.h>

#include "relational/error.hpp"

namespace ccsql {
namespace {

Table small() {
  Table t(Schema::of({"m", "s"}));
  t.append({V("readex"), V("I")});
  t.append({V("readex"), V("SI")});
  t.append({V("wb"), V("MESI")});
  return t;
}

TEST(Table, AppendAndAccess) {
  Table t = small();
  EXPECT_EQ(t.row_count(), 3u);
  EXPECT_EQ(t.column_count(), 2u);
  EXPECT_EQ(t.at(0, 0), V("readex"));
  EXPECT_EQ(t.at(2, "s"), V("MESI"));
  RowView r = t.row(1);
  EXPECT_EQ(r[1], V("SI"));
}

TEST(Table, AppendArityChecked) {
  Table t = small();
  EXPECT_THROW(t.append({V("x")}), SchemaError);
}

TEST(Table, AppendTextsInternsAndNullsEmpty) {
  Table t(Schema::of({"a", "b"}));
  t.append_texts({"x", ""});
  EXPECT_EQ(t.at(0, 0), V("x"));
  EXPECT_TRUE(t.at(0, 1).is_null());
}

TEST(Table, UnitHasOneEmptyRow) {
  Table u = Table::unit();
  EXPECT_EQ(u.row_count(), 1u);
  EXPECT_EQ(u.column_count(), 0u);
}

TEST(Table, SelectFilters) {
  Table t = small();
  Table sel = t.select([](RowView r) { return r[0] == V("readex"); });
  EXPECT_EQ(sel.row_count(), 2u);
  EXPECT_EQ(sel.at(1, 1), V("SI"));
}

TEST(Table, ProjectReordersAndDeduplicates) {
  Table t = small();
  Table p = t.project({"m"});
  EXPECT_EQ(p.column_count(), 1u);
  EXPECT_EQ(p.row_count(), 2u);  // readex deduplicated
  Table pk = t.project({"m"}, /*distinct=*/false);
  EXPECT_EQ(pk.row_count(), 3u);
  Table sw = t.project({"s", "m"});
  EXPECT_EQ(sw.at(0, 0), V("I"));
  EXPECT_EQ(sw.at(0, 1), V("readex"));
}

TEST(Table, DistinctKeepsFirstOccurrence) {
  Table t(Schema::of({"a"}));
  t.append({V("x")});
  t.append({V("y")});
  t.append({V("x")});
  Table d = t.distinct();
  EXPECT_EQ(d.row_count(), 2u);
  EXPECT_EQ(d.at(0, 0), V("x"));
  EXPECT_EQ(d.at(1, 0), V("y"));
}

TEST(Table, CrossProduct) {
  Table a(Schema::of({"x"}));
  a.append({V("1")});
  a.append({V("2")});
  Table b(Schema::of({"y", "z"}));
  b.append({V("p"), V("q")});
  b.append({V("r"), V("s")});
  b.append({V("t"), V("u")});
  Table c = Table::cross(a, b);
  EXPECT_EQ(c.row_count(), 6u);
  EXPECT_EQ(c.column_count(), 3u);
  EXPECT_EQ(c.at(0, 0), V("1"));
  EXPECT_EQ(c.at(0, 2), V("q"));
  EXPECT_EQ(c.at(5, 0), V("2"));
  EXPECT_EQ(c.at(5, 1), V("t"));
}

TEST(Table, CrossWithUnitIsIdentity) {
  Table t = small();
  Table l = Table::cross(Table::unit(), t);
  Table r = Table::cross(t, Table::unit());
  EXPECT_TRUE(l.set_equal(t));
  EXPECT_TRUE(r.set_equal(t));
}

TEST(Table, CrossRejectsDuplicateNames) {
  Table a(Schema::of({"x"}));
  Table b(Schema::of({"x"}));
  EXPECT_THROW(Table::cross(a, b), SchemaError);
}

TEST(Table, UnionAllAndDistinct) {
  Table t = small();
  Table u = Table::union_all(t, t);
  EXPECT_EQ(u.row_count(), 6u);
  Table ud = Table::union_distinct(t, t);
  EXPECT_EQ(ud.row_count(), 3u);
}

TEST(Table, UnionRequiresSameNames) {
  Table a(Schema::of({"x"}));
  Table b(Schema::of({"y"}));
  EXPECT_THROW(Table::union_all(a, b), SchemaError);
}

TEST(Table, Difference) {
  Table t = small();
  Table b(t.schema_ptr());
  b.append({V("readex"), V("SI")});
  Table d = Table::difference(t, b);
  EXPECT_EQ(d.row_count(), 2u);
  EXPECT_FALSE(d.contains(b.row(0)));
}

TEST(Table, RenamedKeepsData) {
  Table t = small().renamed("m", "inmsg");
  EXPECT_TRUE(t.schema().has("inmsg"));
  EXPECT_EQ(t.at(0, "inmsg"), V("readex"));
}

TEST(Table, ContainsAndContainsAll) {
  Table t = small();
  Table sub(t.schema_ptr());
  sub.append({V("wb"), V("MESI")});
  EXPECT_TRUE(t.contains_all(sub));
  EXPECT_FALSE(sub.contains_all(t));
  std::vector<Value> row{V("readex"), V("I")};
  EXPECT_TRUE(t.contains(RowView(row)));
  row[1] = V("nope");
  EXPECT_FALSE(t.contains(RowView(row)));
}

TEST(Table, SetEqualIgnoresOrderAndDuplicates) {
  Table a = small();
  Table b(a.schema_ptr());
  b.append({V("wb"), V("MESI")});
  b.append({V("readex"), V("SI")});
  b.append({V("readex"), V("I")});
  b.append({V("readex"), V("I")});
  EXPECT_TRUE(a.set_equal(b));
}

TEST(Table, SortedIsCanonical) {
  Table a = small();
  Table b(a.schema_ptr());
  b.append({V("wb"), V("MESI")});
  b.append({V("readex"), V("I")});
  b.append({V("readex"), V("SI")});
  Table sa = a.sorted(), sb = b.sorted();
  ASSERT_EQ(sa.row_count(), sb.row_count());
  for (std::size_t i = 0; i < sa.row_count(); ++i) {
    RowView ra = sa.row(i), rb = sb.row(i);
    EXPECT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin()));
  }
}

TEST(Table, WithSchemaRealignsNames) {
  Table t = small();
  auto s2 = Schema::of({"m1", "s1"});
  Table t2 = t.with_schema(s2);
  EXPECT_EQ(t2.at(0, "m1"), V("readex"));
  EXPECT_THROW(t.with_schema(Schema::of({"one"})), SchemaError);
}

TEST(Table, ZeroColumnSelect) {
  Table u = Table::unit();
  Table kept = u.select([](RowView) { return true; });
  EXPECT_EQ(kept.row_count(), 1u);
  Table dropped = u.select([](RowView) { return false; });
  EXPECT_EQ(dropped.row_count(), 0u);
}

}  // namespace
}  // namespace ccsql

namespace ccsql {
namespace {

TEST(Table, NaturalJoinOnCommonColumns) {
  Table a(Schema::of({"k", "x"}));
  a.append({V("1"), V("a")});
  a.append({V("2"), V("b")});
  a.append({V("3"), V("c")});
  Table b(Schema::of({"k", "y"}));
  b.append({V("1"), V("p")});
  b.append({V("2"), V("q")});
  b.append({V("2"), V("r")});
  Table j = Table::natural_join(a, b);
  EXPECT_EQ(j.column_count(), 3u);
  EXPECT_EQ(j.schema().column(2).name, "y");
  EXPECT_EQ(j.row_count(), 3u);  // 1 match for k=1, 2 for k=2, 0 for k=3
  Table k2 = j.select([](RowView r) { return r[0] == V("2"); });
  EXPECT_EQ(k2.row_count(), 2u);
}

TEST(Table, NaturalJoinMultiKey) {
  Table a(Schema::of({"k1", "k2", "x"}));
  a.append({V("1"), V("u"), V("a")});
  a.append({V("1"), V("v"), V("b")});
  Table b(Schema::of({"k1", "k2", "y"}));
  b.append({V("1"), V("u"), V("p")});
  Table j = Table::natural_join(a, b);
  ASSERT_EQ(j.row_count(), 1u);
  EXPECT_EQ(j.at(0, "x"), V("a"));
  EXPECT_EQ(j.at(0, "y"), V("p"));
}

TEST(Table, NaturalJoinRequiresCommonColumn) {
  Table a(Schema::of({"x"}));
  Table b(Schema::of({"y"}));
  EXPECT_THROW(Table::natural_join(a, b), SchemaError);
}

TEST(Table, NaturalJoinAllColumnsCommonActsAsIntersection) {
  Table a(Schema::of({"x"}));
  a.append({V("1")});
  a.append({V("2")});
  Table b(Schema::of({"x"}));
  b.append({V("2")});
  b.append({V("3")});
  Table j = Table::natural_join(a, b);
  EXPECT_EQ(j.row_count(), 1u);
  EXPECT_EQ(j.at(0, 0), V("2"));
}

}  // namespace
}  // namespace ccsql
