#include "relational/query.hpp"

#include <gtest/gtest.h>

#include "relational/error.hpp"

namespace ccsql {
namespace {

Catalog make_catalog() {
  Catalog cat;
  Table d(make_schema({{"inmsg", ColumnKind::kInput},
                       {"dirst", ColumnKind::kInput},
                       {"dirpv", ColumnKind::kInput},
                       {"locmsg", ColumnKind::kOutput}}));
  d.append({V("readex"), V("I"), V("zero"), V("compl")});
  d.append({V("readex"), V("SI"), V("gone"), null_value()});
  d.append({V("wb"), V("MESI"), V("one"), V("compl")});
  d.append({V("data"), V("Busy-d"), V("zero"), V("compl")});
  cat.put("D", std::move(d));
  cat.functions().add_unary("isrequest", [](Value v) {
    return v == V("readex") || v == V("wb");
  });
  return cat;
}

TEST(Catalog, PutGetHas) {
  Catalog cat = make_catalog();
  EXPECT_TRUE(cat.has("D"));
  EXPECT_FALSE(cat.has("E"));
  EXPECT_EQ(cat.get("D").row_count(), 4u);
  EXPECT_THROW(cat.get("E"), BindError);
  EXPECT_EQ(cat.size(), 1u);
}

TEST(Catalog, PutReplaces) {
  Catalog cat = make_catalog();
  Table t(Schema::of({"x"}));
  t.append({V("1")});
  cat.put("D", t);
  EXPECT_EQ(cat.get("D").row_count(), 1u);
}

TEST(Catalog, SelectWithWhere) {
  Catalog cat = make_catalog();
  Table r = cat.query("select inmsg, dirst from D where inmsg = readex");
  EXPECT_EQ(r.row_count(), 2u);
  EXPECT_EQ(r.column_count(), 2u);
}

TEST(Catalog, SelectStarKeepsAllColumns) {
  Catalog cat = make_catalog();
  Table r = cat.query("select * from D where dirst = \"Busy-d\"");
  EXPECT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.column_count(), 4u);
  EXPECT_EQ(r.at(0, "locmsg"), V("compl"));
}

TEST(Catalog, SelectDistinctProjection) {
  Catalog cat = make_catalog();
  Table all = cat.query("select locmsg from D");
  EXPECT_EQ(all.row_count(), 4u);  // plain select keeps duplicates
  Table dist = cat.query("select distinct locmsg from D");
  EXPECT_EQ(dist.row_count(), 2u);  // compl, NULL
}

TEST(Catalog, WhereUsesRegisteredFunctions) {
  Catalog cat = make_catalog();
  Table r = cat.query("select inmsg from D where isrequest(inmsg)");
  EXPECT_EQ(r.row_count(), 3u);
}

TEST(Catalog, CheckEmptyPaperInvariantShape) {
  Catalog cat = make_catalog();
  // dirst/dirpv consistency, in the paper's style: rows violating the
  // expected pairing must not exist.
  EXPECT_TRUE(cat.check_empty(
      "[Select dirst, dirpv from D where dirst = \"MESI\" and "
      "not dirpv = \"one\"] = empty"));
  EXPECT_FALSE(cat.check_empty(
      "[Select dirst from D where dirst = \"SI\"] = empty"));
}

TEST(Catalog, CheckEmptyConjunction) {
  Catalog cat = make_catalog();
  EXPECT_TRUE(cat.check_empty(
      "[select inmsg from D where inmsg = nosuch] = empty and "
      "[select inmsg from D where dirst = nosuch] = empty"));
  // One failing conjunct fails the invariant.
  EXPECT_FALSE(cat.check_empty(
      "[select inmsg from D where inmsg = nosuch] = empty and "
      "[select inmsg from D where inmsg = wb] = empty"));
}

TEST(Catalog, QueryAgainstMissingTableThrows) {
  Catalog cat = make_catalog();
  EXPECT_THROW(cat.query("select a from Missing"), BindError);
}

TEST(Catalog, WhereOnUnknownColumnThrows) {
  Catalog cat = make_catalog();
  // "nope" is not a column, so it is a literal; comparing a literal to a
  // literal is legal. But projecting an unknown column must throw.
  EXPECT_THROW(cat.query("select nope from D"), BindError);
}

}  // namespace
}  // namespace ccsql
