#include <gtest/gtest.h>

#include "relational/error.hpp"
#include "relational/format.hpp"
#include "relational/query.hpp"

namespace ccsql {
namespace {

Catalog db() {
  Catalog cat;
  Table d(Schema::of({"inmsg", "dirst"}));
  d.append({V("readex"), V("SI")});
  d.append({V("readex"), V("MESI")});
  d.append({V("wb"), V("MESI")});
  d.append({V("read"), V("I")});
  cat.put("D", std::move(d));
  return cat;
}

TEST(Statement, CountStar) {
  Catalog cat = db();
  Table r = cat.query("select count(*) from D");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.at(0, "count"), V("4"));
  Table f = cat.query("select count(*) from D where dirst = MESI");
  EXPECT_EQ(f.at(0, 0), V("2"));
  Table z = cat.query("select count(*) from D where dirst = nosuch");
  EXPECT_EQ(z.at(0, 0), V("0"));
}

TEST(Statement, OrderByGivesDeterministicTextOrder) {
  Catalog cat = db();
  Table r = cat.query("select inmsg, dirst from D order by inmsg, dirst");
  ASSERT_EQ(r.row_count(), 4u);
  EXPECT_EQ(r.at(0, "inmsg"), V("read"));
  EXPECT_EQ(r.at(1, "inmsg"), V("readex"));
  EXPECT_EQ(r.at(1, "dirst"), V("MESI"));
  EXPECT_EQ(r.at(2, "dirst"), V("SI"));
  EXPECT_EQ(r.at(3, "inmsg"), V("wb"));
}

TEST(Statement, UnionIsSetSemantics) {
  Catalog cat = db();
  Table r = cat.query(
      "select inmsg from D where dirst = MESI union "
      "select inmsg from D where inmsg = readex");
  // {readex, wb} ∪ {readex} = {readex, wb}
  EXPECT_EQ(r.row_count(), 2u);
}

TEST(Statement, UnionAcrossTables) {
  Catalog cat = db();
  Table e(Schema::of({"m"}));
  e.append({V("sinv")});
  cat.put("E", std::move(e));
  Table r = cat.query("select inmsg from D union select m from E");
  EXPECT_EQ(r.row_count(), 4u);  // read, readex, wb, sinv
  EXPECT_EQ(r.schema().column(0).name, "inmsg");
}

TEST(Statement, CreateTableAsSelectMaterialises) {
  Catalog cat = db();
  // The paper's section 5 DDL shape.
  Table created = cat.execute(
      "Create Table Owned as Select distinct inmsg, dirst from D "
      "Where dirst = MESI");
  EXPECT_EQ(created.row_count(), 2u);
  ASSERT_TRUE(cat.has("Owned"));
  EXPECT_EQ(cat.get("Owned").row_count(), 2u);
  // The created table is queryable like any other.
  EXPECT_EQ(cat.query("select count(*) from Owned").at(0, 0), V("2"));
}

TEST(Statement, DropTable) {
  Catalog cat = db();
  cat.execute("create table T as select * from D");
  ASSERT_TRUE(cat.has("T"));
  cat.execute("drop table T");
  EXPECT_FALSE(cat.has("T"));
  EXPECT_THROW(cat.execute("drop table T"), BindError);
}

TEST(Statement, InsertValues) {
  Catalog cat = db();
  cat.execute("insert into D values (flush, SI), (intr, I)");
  EXPECT_EQ(cat.get("D").row_count(), 6u);
  EXPECT_EQ(cat.query("select * from D where inmsg = intr").row_count(), 1u);
  EXPECT_THROW(cat.execute("insert into Missing values (x)"), BindError);
  // Arity mismatch is rejected by the table.
  EXPECT_THROW(cat.execute("insert into D values (only-one)"), SchemaError);
}

TEST(Statement, KeywordsAreLegalValueLiterals) {
  Catalog cat = db();
  cat.execute("insert into D values (drop, count)");
  EXPECT_EQ(
      cat.query("select * from D where inmsg = drop and dirst = count")
          .row_count(),
      1u);
}

TEST(Statement, SelectStatementViaExecute) {
  Catalog cat = db();
  Table r = cat.execute("select inmsg from D where dirst = I");
  EXPECT_EQ(r.row_count(), 1u);
}

TEST(Statement, ToStringRoundTrips) {
  const char* texts[] = {
      "select count(*) from D where dirst = MESI",
      "select inmsg from D order by inmsg",
      "select inmsg from D union select inmsg from D where dirst = I",
  };
  for (const char* t : texts) {
    SelectStmt s = parse_select(t);
    SelectStmt s2 = parse_select(s.to_string());
    EXPECT_EQ(s.to_string(), s2.to_string()) << t;
  }
}

TEST(Statement, MalformedStatementsRejected) {
  EXPECT_THROW(parse_statement("create table X"), ParseError);
  EXPECT_THROW(parse_statement("create X as select * from D"), ParseError);
  EXPECT_THROW(parse_statement("drop X"), ParseError);
  EXPECT_THROW(parse_statement("insert into X values"), ParseError);
  EXPECT_THROW(parse_statement("select count(inmsg) from D"), ParseError);
  EXPECT_THROW(parse_statement("select a from D order inmsg"), ParseError);
  EXPECT_THROW(parse_statement("select a from D union"), ParseError);
}

TEST(Statement, PaperImplementationTableFlow) {
  // End-to-end mini version of the paper's section 5 flow in pure SQL:
  // partition by request class, then rebuild by union and compare.
  Catalog cat = db();
  cat.functions().add_unary("isrequest", [](Value v) {
    return v == V("readex") || v == V("read") || v == V("wb");
  });
  cat.execute(
      "create table Req as select distinct inmsg, dirst from D "
      "where isrequest(inmsg)");
  cat.execute(
      "create table Resp as select distinct inmsg, dirst from D "
      "where not isrequest(inmsg)");
  Table rebuilt = cat.query("select * from Req union select * from Resp");
  EXPECT_TRUE(rebuilt.set_equal(cat.get("D")));
}

}  // namespace
}  // namespace ccsql
