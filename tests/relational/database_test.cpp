#include "relational/database.hpp"

#include <gtest/gtest.h>

#include "core/pool.hpp"
#include "plan/planner.hpp"
#include "relational/format.hpp"
#include "relational/parser.hpp"

namespace ccsql {
namespace {

Database small_db() {
  Catalog cat;
  Table d(Schema::of({"dirst", "dirpv"}));
  d.append({V("MESI"), V("one")});
  d.append({V("SI"), V("gone")});
  d.append({V("I"), V("zero")});
  cat.put("D", std::move(d));
  return Database(std::move(cat));
}

TEST(Database, QueryMatchesNaiveOracle) {
  Database db = small_db();
  const std::string sql = "select dirst, dirpv from D where not dirst = I";
  QueryResult r = db.query(sql);
  EXPECT_EQ(to_csv(r.rows), to_csv(db.catalog().run_naive(parse_select(sql))));
  EXPECT_EQ(r.row_count(), 2u);
  EXPECT_FALSE(r.empty());
}

TEST(Database, QueryReportsSessionSettings) {
  Database db = small_db();
  db.set_planner(true).set_jobs(3);
  QueryResult r = db.query("select dirst from D");
  EXPECT_TRUE(r.planned);
  EXPECT_EQ(r.jobs, 3u);

  db.set_planner(false);
  r = db.query("select dirst from D");
  EXPECT_FALSE(r.planned);
}

TEST(Database, PlannerOverrideBeatsProcessFlag) {
  Database db = small_db();
  EXPECT_EQ(db.planner_on(), plan::planner_enabled());
  db.set_planner(false);
  EXPECT_FALSE(db.planner_on());
  db.set_planner(true);
  EXPECT_TRUE(db.planner_on());
}

TEST(Database, JobsZeroFollowsProcessDefault) {
  Database db = small_db();
  EXPECT_EQ(db.jobs(), core::Pool::default_jobs());
  db.set_jobs(5);
  EXPECT_EQ(db.jobs(), 5u);
  db.set_jobs(0);
  EXPECT_EQ(db.jobs(), core::Pool::default_jobs());
}

TEST(Database, CheckEmptyMatchesQueryEmptiness) {
  Database db = small_db();
  EXPECT_TRUE(db.check_empty("[select dirst from D where dirst = X] = empty"));
  EXPECT_FALSE(
      db.check_empty("[select dirst from D where dirst = SI] = empty"));
  // Conjunctions hold iff every branch is empty.
  EXPECT_FALSE(db.check_empty(
      "[select dirst from D where dirst = X] = empty and "
      "[select dirst from D where dirst = I] = empty"));
}

TEST(Database, CheckEmptyAgreesAcrossPlannerModes) {
  Database planned = small_db();
  planned.set_planner(true);
  Database naive = small_db();
  naive.set_planner(false);
  for (const char* sql :
       {"[select dirst from D where dirst = X] = empty",
        "[select dirst from D where dirst = SI] = empty",
        "[select dirpv from D where dirst = MESI and dirpv = one] = empty"}) {
    EXPECT_EQ(planned.check_empty(sql), naive.check_empty(sql)) << sql;
  }
}

TEST(Database, ExplainRendersThePlan) {
  Database db = small_db();
  QueryResult r = db.explain("select dirst from D where dirst = MESI");
  EXPECT_TRUE(r.planned);
  // Executed plan with estimated and actual cardinalities (the operator
  // choice — Scan vs IndexLookup — is the planner's business).
  EXPECT_NE(r.plan.find("Project"), std::string::npos);
  EXPECT_NE(r.plan.find("est="), std::string::npos);
  EXPECT_NE(r.plan.find("actual=1"), std::string::npos);
}

TEST(Database, ExecuteMutatesTheOwnedCatalog) {
  Database db = small_db();
  (void)db.execute("create table T as select dirst from D where dirst = SI");
  ASSERT_TRUE(db.has("T"));
  EXPECT_EQ(db.get("T").row_count(), 1u);
  (void)db.execute("drop table T");
  EXPECT_FALSE(db.has("T"));
}

TEST(Database, CopiesAreIndependentSessions) {
  Database a = small_db();
  Database b = a;
  b.set_jobs(7);
  b.put("Extra", Table(Schema::of({"x"})));
  EXPECT_FALSE(a.has("Extra"));
  EXPECT_NE(a.jobs(), 7u);
  EXPECT_TRUE(b.has("Extra"));
}

TEST(Database, CrossSelectMatchesNaiveCrossAndFilter) {
  Database db;  // settings-only session; cross_select takes free tables
  Table l(Schema::of({"a"}));
  l.append({V("x")});
  l.append({V("y")});
  Table r(Schema::of({"b"}));
  r.append({V("x")});
  r.append({V("z")});
  SchemaPtr full = Schema::of({"a", "b"});

  Expr pred = parse_expr("a = b");
  Table joined = db.cross_select(l, r, pred, *full);
  ASSERT_EQ(joined.row_count(), 1u);
  EXPECT_EQ(joined.at(0, "a"), V("x"));
  EXPECT_EQ(joined.at(0, "b"), V("x"));

  // Planner off must agree: the naive path is the oracle.
  Database naive;
  naive.set_planner(false);
  EXPECT_EQ(to_csv(naive.cross_select(l, r, pred, *full)), to_csv(joined));
}

}  // namespace
}  // namespace ccsql
