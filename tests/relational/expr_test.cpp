#include "relational/expr.hpp"

#include <gtest/gtest.h>

#include "relational/error.hpp"
#include "relational/parser.hpp"

namespace ccsql {
namespace {

SchemaPtr schema() { return Schema::of({"inmsg", "dirst", "dirpv"}); }

std::vector<Value> row(const char* m, const char* st, const char* pv) {
  return {V(m), V(st), V(pv)};
}

bool eval(const std::string& text, const std::vector<Value>& r,
          const FunctionRegistry* fns = nullptr) {
  auto s = schema();
  CompiledExpr e = compile(parse_expr(text), *s, *s, fns);
  return e.eval(RowView(r));
}

TEST(Expr, EqualityOnColumnAndLiteral) {
  EXPECT_TRUE(eval("inmsg = \"readex\"", row("readex", "SI", "one")));
  EXPECT_FALSE(eval("inmsg = \"readex\"", row("wb", "SI", "one")));
  // Bare identifier literal (paper style: dirpv = zero).
  EXPECT_TRUE(eval("dirpv = zero", row("readex", "SI", "zero")));
}

TEST(Expr, ColumnToColumnComparison) {
  EXPECT_TRUE(eval("inmsg = dirst", {V("x"), V("x"), V("y")}));
  EXPECT_FALSE(eval("inmsg = dirst", {V("x"), V("y"), V("y")}));
}

TEST(Expr, Inequality) {
  EXPECT_TRUE(eval("dirst != \"I\"", row("m", "SI", "one")));
  EXPECT_FALSE(eval("dirst != \"I\"", row("m", "I", "one")));
  EXPECT_TRUE(eval("dirst <> \"I\"", row("m", "SI", "one")));
}

TEST(Expr, NullLiteralMatchesNullCell) {
  EXPECT_TRUE(eval("dirpv = NULL", {V("m"), V("I"), null_value()}));
  EXPECT_FALSE(eval("dirpv = NULL", row("m", "I", "one")));
  EXPECT_TRUE(eval("not dirpv = NULL", row("m", "I", "one")));
}

TEST(Expr, InSet) {
  EXPECT_TRUE(eval("dirst in (\"I\", \"SI\")", row("m", "SI", "x")));
  EXPECT_FALSE(eval("dirst in (\"I\", \"SI\")", row("m", "MESI", "x")));
  EXPECT_TRUE(eval("dirst not in (\"I\", \"SI\")", row("m", "MESI", "x")));
}

TEST(Expr, BooleanConnectives) {
  EXPECT_TRUE(
      eval("inmsg = readex and dirst = SI", row("readex", "SI", "x")));
  EXPECT_FALSE(
      eval("inmsg = readex and dirst = SI", row("readex", "I", "x")));
  EXPECT_TRUE(eval("inmsg = wb or dirst = SI", row("readex", "SI", "x")));
  EXPECT_TRUE(eval("not inmsg = wb", row("readex", "SI", "x")));
  EXPECT_TRUE(eval("true", row("a", "b", "c")));
  EXPECT_FALSE(eval("false", row("a", "b", "c")));
}

TEST(Expr, PrecedenceAndOverOr) {
  // a or b and c  ==  a or (b and c)
  EXPECT_TRUE(eval("inmsg = x or dirst = y and dirpv = z",
                   {V("x"), V("q"), V("q")}));
  EXPECT_FALSE(eval("inmsg = x or dirst = y and dirpv = z",
                    {V("q"), V("y"), V("q")}));
  EXPECT_TRUE(eval("inmsg = x or dirst = y and dirpv = z",
                   {V("q"), V("y"), V("z")}));
}

TEST(Expr, TernaryMatchesPaperSemantics) {
  // Paper: inmsg = "data" and dirst = "Busy-d" ? dirpv = zero : dirpv = one
  const std::string c =
      "inmsg = \"data\" and dirst = \"Busy-d\" ? dirpv = zero : dirpv = one";
  EXPECT_TRUE(eval(c, row("data", "Busy-d", "zero")));
  EXPECT_FALSE(eval(c, row("data", "Busy-d", "one")));
  EXPECT_TRUE(eval(c, row("data", "SI", "one")));
  EXPECT_FALSE(eval(c, row("data", "SI", "zero")));
}

TEST(Expr, NestedTernary) {
  const std::string c =
      "inmsg = a ? dirpv = p : (inmsg = b ? dirpv = q : dirpv = r)";
  EXPECT_TRUE(eval(c, {V("a"), V("x"), V("p")}));
  EXPECT_TRUE(eval(c, {V("b"), V("x"), V("q")}));
  EXPECT_TRUE(eval(c, {V("c"), V("x"), V("r")}));
  EXPECT_FALSE(eval(c, {V("c"), V("x"), V("q")}));
}

TEST(Expr, FunctionCall) {
  FunctionRegistry fns;
  fns.add_unary("isrequest", [](Value v) {
    return v == V("readex") || v == V("wb");
  });
  EXPECT_TRUE(eval("isrequest(inmsg)", row("readex", "I", "x"), &fns));
  EXPECT_FALSE(eval("isrequest(inmsg)", row("data", "I", "x"), &fns));
  EXPECT_TRUE(eval("not isrequest(inmsg)", row("data", "I", "x"), &fns));
}

TEST(Expr, UnknownFunctionThrows) {
  auto s = schema();
  EXPECT_THROW(compile(parse_expr("mystery(inmsg)"), *s, *s, nullptr),
               BindError);
  FunctionRegistry fns;
  EXPECT_THROW(compile(parse_expr("mystery(inmsg)"), *s, *s, &fns), BindError);
}

TEST(Expr, ReferencedColumns) {
  auto s = schema();
  Expr e = parse_expr("inmsg = readex and dirst = SI ? dirpv = one : true");
  auto cols = e.referenced_columns(*s);
  EXPECT_EQ(cols, (std::vector<std::string>{"inmsg", "dirst", "dirpv"}));
  // Literals that are not column names are not reported.
  Expr e2 = parse_expr("inmsg = readex");
  EXPECT_EQ(e2.referenced_columns(*s), std::vector<std::string>{"inmsg"});
}

TEST(Expr, CompileAgainstSubSchemaUsesFullSchemaForColumnness) {
  auto full = schema();
  auto sub = Schema::of({"inmsg"});
  // dirst is a column of the full schema but absent from the row schema:
  // compiling an expression that touches it must fail.
  EXPECT_THROW(compile(parse_expr("dirst = SI"), *sub, *full, nullptr),
               BindError);
  // inmsg alone is fine.
  CompiledExpr ok = compile(parse_expr("inmsg = readex"), *sub, *full);
  std::vector<Value> r{V("readex")};
  EXPECT_TRUE(ok.eval(RowView(r)));
}

TEST(Expr, ToStringRoundTripsThroughParser) {
  const char* texts[] = {
      "inmsg = \"readex\"",
      "(inmsg = a and dirst = b)",
      "dirst in (I, SI, MESI)",
      "(inmsg = a ? dirst = b : dirst = c)",
      "not inmsg = wb",
  };
  auto s = schema();
  for (const char* t : texts) {
    Expr e = parse_expr(t);
    Expr e2 = parse_expr(e.to_string());
    EXPECT_EQ(e.to_string(), e2.to_string()) << t;
    // Both must compile identically (smoke: evaluate on a row).
    std::vector<Value> r{V("a"), V("SI"), V("c")};
    EXPECT_EQ(compile(e, *s, *s).eval(RowView(r)),
              compile(e2, *s, *s).eval(RowView(r)))
        << t;
  }
}

TEST(Expr, PredicateAdapterWorksWithSelect) {
  Table t(schema());
  t.append({V("readex"), V("SI"), V("one")});
  t.append({V("wb"), V("MESI"), V("one")});
  auto s = schema();
  CompiledExpr e = compile(parse_expr("dirst = SI"), *s, *s);
  Table sel = t.select(e.predicate());
  EXPECT_EQ(sel.row_count(), 1u);
  EXPECT_EQ(sel.at(0, 0), V("readex"));
}

}  // namespace
}  // namespace ccsql
