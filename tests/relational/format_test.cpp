#include "relational/format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "relational/error.hpp"

namespace ccsql {
namespace {

Table sample() {
  Table t(Schema::of({"inmsg", "dirst"}));
  t.append({V("readex"), V("SI")});
  t.append({V("wb"), null_value()});
  return t;
}

TEST(Format, AsciiContainsHeaderAndCells) {
  std::string s = to_ascii(sample());
  EXPECT_NE(s.find("inmsg"), std::string::npos);
  EXPECT_NE(s.find("dirst"), std::string::npos);
  EXPECT_NE(s.find("readex"), std::string::npos);
  // NULL renders as '-'.
  EXPECT_NE(s.find("wb"), std::string::npos);
}

TEST(Format, AsciiTruncation) {
  Table t(Schema::of({"a"}));
  for (int i = 0; i < 10; ++i) t.append({V(std::to_string(i))});
  std::string s = to_ascii(t, 3);
  EXPECT_NE(s.find("7 more rows"), std::string::npos);
}

TEST(Format, StreamOperator) {
  std::ostringstream os;
  os << sample();
  EXPECT_NE(os.str().find("readex"), std::string::npos);
}

TEST(Format, CsvRoundTrip) {
  Table t = sample();
  Table back = from_csv(to_csv(t));
  ASSERT_EQ(back.row_count(), t.row_count());
  ASSERT_EQ(back.column_count(), t.column_count());
  EXPECT_TRUE(back.set_equal(t.with_schema(back.schema_ptr())));
  EXPECT_TRUE(back.at(1, 1).is_null());
}

TEST(Format, CsvHeaderOnlyForEmptyTable) {
  Table t(Schema::of({"x", "y"}));
  EXPECT_EQ(to_csv(t), "x,y\n");
  Table back = from_csv("x,y\n");
  EXPECT_EQ(back.row_count(), 0u);
  EXPECT_EQ(back.column_count(), 2u);
}

TEST(Format, FromCsvRejectsBadInput) {
  EXPECT_THROW(from_csv(""), ParseError);
  EXPECT_THROW(from_csv("a,b\n1\n"), ParseError);
}

}  // namespace
}  // namespace ccsql
