#include "relational/symbol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace ccsql {
namespace {

TEST(Symbol, DefaultIsNull) {
  Symbol s;
  EXPECT_TRUE(s.is_null());
  EXPECT_EQ(s.id(), 0u);
  EXPECT_EQ(s.str(), "NULL");
}

TEST(Symbol, InternIsIdempotent) {
  Symbol a = Symbol::intern("readex");
  Symbol b = Symbol::intern("readex");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.str(), "readex");
  EXPECT_FALSE(a.is_null());
}

TEST(Symbol, DistinctTextsDistinctSymbols) {
  EXPECT_NE(Symbol::intern("sinv"), Symbol::intern("mread"));
}

TEST(Symbol, EmptyAndNullTextInternToNull) {
  EXPECT_TRUE(Symbol::intern("").is_null());
  EXPECT_TRUE(Symbol::intern("NULL").is_null());
}

TEST(Symbol, LookupFindsInternedOnly) {
  Symbol a = Symbol::intern("lookup-target");
  EXPECT_EQ(Symbol::lookup("lookup-target"), a);
  EXPECT_TRUE(Symbol::lookup("never-interned-xyzzy").is_null());
}

TEST(Symbol, StrViewSurvivesFurtherInterning) {
  Symbol a = Symbol::intern("stable-string");
  std::string_view v = a.str();
  for (int i = 0; i < 2000; ++i) {
    Symbol::intern("churn-" + std::to_string(i));
  }
  EXPECT_EQ(v, "stable-string");
  EXPECT_EQ(a.str(), "stable-string");
}

TEST(Symbol, HashUsableInUnorderedSet) {
  std::unordered_set<Symbol> set;
  set.insert(Symbol::intern("a"));
  set.insert(Symbol::intern("b"));
  set.insert(Symbol::intern("a"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Symbol, OrderingIsByInterningId) {
  Symbol a = Symbol::intern("order-first");
  Symbol b = Symbol::intern("order-second");
  EXPECT_LT(a, b);
  EXPECT_LT(Symbol{}, a);  // NULL is id 0, smallest
}

TEST(Symbol, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  std::vector<std::vector<Symbol>> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      results[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(Symbol::intern("conc-" + std::to_string(i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
  for (int i = 0; i < kPerThread; ++i) {
    EXPECT_EQ(results[0][i].str(), "conc-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace ccsql
