// Robustness fuzzing of the lexer/parser: random token soup must never
// crash — every input either parses or throws ParseError — and every
// generated-valid expression round-trips through to_string/parse with
// identical semantics.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "relational/error.hpp"
#include "relational/expr.hpp"
#include "relational/parser.hpp"

namespace ccsql {
namespace {

const char* kFragments[] = {
    "select", "from",  "where",  "and",  "or",    "not",    "in",
    "(",      ")",     "[",      "]",    "=",     "!=",     "<>",
    "?",      ":",     ",",      "*",    "\"x\"", "inmsg",  "dirst",
    "true",   "false", "create", "table", "as",   "union",  "order",
    "by",     "count", "empty",  "a",    "Busy-rx-sd", "42", "drop",
    "insert", "into",  "values",
};

class ParserFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::size_t> pick(
      0, std::size(kFragments) - 1);
  std::uniform_int_distribution<int> len(1, 24);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) {
      text += kFragments[pick(rng)];
      text += ' ';
    }
    // Any outcome but a crash / non-ParseError exception is acceptable.
    try {
      (void)parse_expr(text);
    } catch (const ParseError&) {
    }
    try {
      (void)parse_statement(text);
    } catch (const ParseError&) {
    }
    try {
      (void)parse_invariant(text);
    } catch (const ParseError&) {
    }
  }
}

TEST_P(ParserFuzz, RandomBytesNeverCrashTheLexer) {
  std::mt19937 rng(GetParam() + 99);
  std::uniform_int_distribution<int> byte(1, 126);
  std::uniform_int_distribution<int> len(0, 64);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) {
      text += static_cast<char>(byte(rng));
    }
    try {
      (void)parse_statement(text);
    } catch (const ParseError&) {
    }
  }
}

/// Generates a random well-formed expression and checks the
/// text -> Expr -> text fixpoint plus semantic equality on random rows.
Expr random_expr(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> pick(0, 6);
  std::uniform_int_distribution<int> vals(0, 3);
  auto col = [&] {
    return Atom::ident(std::string("c") + std::to_string(vals(rng) % 2));
  };
  auto val = [&] {
    return Atom::ident(std::string("v") + std::to_string(vals(rng)));
  };
  if (depth <= 0) return Expr::compare(col(), rng() % 2 == 0, val());
  switch (pick(rng)) {
    case 0:
      return Expr::compare(col(), rng() % 2 == 0, val());
    case 1:
      return Expr::in(col(), rng() % 2 == 0, {val(), val(), val()});
    case 2:
      return Expr::conjunction(
          {random_expr(rng, depth - 1), random_expr(rng, depth - 1)});
    case 3:
      return Expr::disjunction(
          {random_expr(rng, depth - 1), random_expr(rng, depth - 1)});
    case 4:
      return Expr::negation(random_expr(rng, depth - 1));
    case 5:
      return Expr::ternary(random_expr(rng, depth - 1),
                           random_expr(rng, depth - 1),
                           random_expr(rng, depth - 1));
    default:
      return Expr::boolean(rng() % 2 == 0);
  }
}

TEST_P(ParserFuzz, GeneratedExpressionsRoundTripSemantically) {
  std::mt19937 rng(GetParam() + 1000);
  auto schema = Schema::of({"c0", "c1"});
  for (int trial = 0; trial < 100; ++trial) {
    Expr e = random_expr(rng, 3);
    const std::string text = e.to_string();
    Expr reparsed = parse_expr(text);
    EXPECT_EQ(reparsed.to_string(), text);
    CompiledExpr a = compile(e, *schema, *schema);
    CompiledExpr b = compile(reparsed, *schema, *schema);
    for (int r = 0; r < 16; ++r) {
      std::vector<Value> row{V("v" + std::to_string(rng() % 4)),
                             V("v" + std::to_string(rng() % 4))};
      EXPECT_EQ(a.eval(RowView(row)), b.eval(RowView(row))) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1u, 9u));

}  // namespace
}  // namespace ccsql
