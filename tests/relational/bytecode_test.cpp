#include "relational/bytecode.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "relational/error.hpp"
#include "relational/expr.hpp"
#include "relational/parser.hpp"
#include "relational/table.hpp"

namespace ccsql {
namespace {

SchemaPtr schema() { return Schema::of({"inmsg", "dirst", "dirpv"}); }

std::vector<Value> row(const char* m, const char* st, const char* pv) {
  return {V(m), V(st), V(pv)};
}

// Compiles `text` both ways and checks the bytecode engine agrees with the
// interpreter on `r` (and that it yields `expected`).
void expect_both(const std::string& text, const std::vector<Value>& r,
                 bool expected, const FunctionRegistry* fns = nullptr) {
  auto s = schema();
  const Expr ast = parse_expr(text);
  CompiledExpr interp = compile(ast, *s, *s, fns);
  bc::Program prog = compile_bytecode(ast, *s, *s, fns);
  ASSERT_TRUE(static_cast<bool>(prog)) << text;
  EXPECT_EQ(interp.eval(RowView(r)), expected) << text;
  EXPECT_EQ(prog.eval(RowView(r)), expected) << text;
}

TEST(Bytecode, BoolConstant) {
  expect_both("true", row("a", "b", "c"), true);
  expect_both("false", row("a", "b", "c"), false);
  expect_both("not true", row("a", "b", "c"), false);
}

TEST(Bytecode, CompareColumnToLiteral) {
  expect_both("inmsg = \"readex\"", row("readex", "SI", "one"), true);
  expect_both("inmsg = \"readex\"", row("wb", "SI", "one"), false);
  // Bare identifier literal (paper style).
  expect_both("dirpv = zero", row("readex", "SI", "zero"), true);
}

TEST(Bytecode, CompareColumnToColumn) {
  expect_both("inmsg = dirst", {V("x"), V("x"), V("y")}, true);
  expect_both("inmsg = dirst", {V("x"), V("y"), V("y")}, false);
}

TEST(Bytecode, CompareLiteralToLiteral) {
  expect_both("\"a\" = \"a\"", row("m", "s", "p"), true);
  expect_both("\"a\" = \"b\"", row("m", "s", "p"), false);
}

TEST(Bytecode, NegatedCompare) {
  expect_both("dirst != \"I\"", row("m", "SI", "one"), true);
  expect_both("dirst != \"I\"", row("m", "I", "one"), false);
}

TEST(Bytecode, NullIsAnOrdinaryValue) {
  expect_both("dirpv = NULL", {V("m"), V("I"), null_value()}, true);
  expect_both("dirpv = NULL", row("m", "I", "one"), false);
  expect_both("not dirpv = NULL", row("m", "I", "one"), true);
}

TEST(Bytecode, InSet) {
  expect_both("dirst in (\"I\", \"SI\")", row("m", "SI", "x"), true);
  expect_both("dirst in (\"I\", \"SI\")", row("m", "MESI", "x"), false);
  expect_both("dirst not in (\"I\", \"SI\")", row("m", "MESI", "x"), true);
  // Column members of the set.
  expect_both("dirpv in (inmsg, dirst)", {V("a"), V("b"), V("b")}, true);
  expect_both("dirpv in (inmsg, dirst)", {V("a"), V("b"), V("c")}, false);
}

TEST(Bytecode, Connectives) {
  expect_both("inmsg = readex and dirst = SI", row("readex", "SI", "x"), true);
  expect_both("inmsg = readex and dirst = SI", row("readex", "I", "x"), false);
  expect_both("inmsg = wb or dirst = SI", row("readex", "SI", "x"), true);
  expect_both("inmsg = wb or dirst = SI", row("readex", "I", "x"), false);
  expect_both("not inmsg = wb", row("readex", "SI", "x"), true);
}

TEST(Bytecode, EmptyConnectives) {
  // Vacuous conjunction is true, vacuous disjunction is false — same as the
  // interpreter's AndNode/OrNode defaults.
  auto s = schema();
  const std::vector<Value> r = row("a", "b", "c");
  bc::Program and0 = compile_bytecode(Expr::conjunction({}), *s, *s);
  bc::Program or0 = compile_bytecode(Expr::disjunction({}), *s, *s);
  EXPECT_TRUE(and0.eval(RowView(r)));
  EXPECT_FALSE(or0.eval(RowView(r)));
  EXPECT_EQ(compile(Expr::conjunction({}), *s, *s).eval(RowView(r)), true);
  EXPECT_EQ(compile(Expr::disjunction({}), *s, *s).eval(RowView(r)), false);
}

TEST(Bytecode, Ternary) {
  const std::string c =
      "inmsg = \"data\" and dirst = \"Busy-d\" ? dirpv = zero : dirpv = one";
  expect_both(c, row("data", "Busy-d", "zero"), true);
  expect_both(c, row("data", "Busy-d", "one"), false);
  expect_both(c, row("data", "SI", "one"), true);
  expect_both(c, row("data", "SI", "zero"), false);
}

TEST(Bytecode, NestedTernary) {
  const std::string c =
      "inmsg = a ? dirpv = p : (inmsg = b ? dirpv = q : dirpv = r)";
  expect_both(c, {V("a"), V("x"), V("p")}, true);
  expect_both(c, {V("b"), V("x"), V("q")}, true);
  expect_both(c, {V("c"), V("x"), V("r")}, true);
  expect_both(c, {V("c"), V("x"), V("q")}, false);
}

TEST(Bytecode, FunctionCall) {
  FunctionRegistry fns;
  fns.add_unary("isrequest", [](Value v) {
    return v == V("readex") || v == V("wb");
  });
  expect_both("isrequest(inmsg)", row("readex", "I", "x"), true, &fns);
  expect_both("isrequest(inmsg)", row("data", "I", "x"), false, &fns);
  expect_both("not isrequest(inmsg)", row("data", "I", "x"), true, &fns);
}

TEST(Bytecode, UnknownFunctionThrows) {
  auto s = schema();
  EXPECT_THROW(compile_bytecode(parse_expr("mystery(inmsg)"), *s, *s, nullptr),
               BindError);
  FunctionRegistry fns;
  EXPECT_THROW(compile_bytecode(parse_expr("mystery(inmsg)"), *s, *s, &fns),
               BindError);
}

TEST(Bytecode, UnknownColumnThrows) {
  auto s = schema();
  auto narrow = Schema::of({"inmsg"});
  // `dirst` is a column of the full schema but missing from the row schema.
  EXPECT_THROW(compile_bytecode(parse_expr("dirst = \"I\""), *narrow, *s),
               BindError);
}

// Batch evaluation must select exactly the rows the scalar engines select,
// in table order, including selection-refining paths (and/or/ternary).
TEST(Bytecode, BatchMatchesScalar) {
  auto s = schema();
  Table t(s);
  const char* msgs[] = {"readex", "wb", "data", "ack"};
  const char* states[] = {"I", "SI", "MESI", "Busy-d"};
  const char* pvs[] = {"zero", "one"};
  for (int i = 0; i < 257; ++i) {
    t.append({V(msgs[i % 4]), V(states[(i / 4) % 4]), V(pvs[i % 2])});
  }
  const std::vector<std::string> cases = {
      "true",
      "false",
      "inmsg = \"readex\"",
      "dirst != \"I\"",
      "inmsg = readex and dirst = SI",
      "inmsg = wb or dirst = MESI or dirpv = zero",
      "not (inmsg = data and dirpv = one)",
      "dirst in (\"I\", \"Busy-d\")",
      "inmsg = \"data\" and dirst = \"Busy-d\" ? dirpv = zero : dirpv = one",
      // Ternaries whose condition accepts nothing / everything: one branch
      // receives an empty selection (regression: cmp_batch's dense-batch
      // detection must not touch front()/back() of an empty selection).
      "false ? dirpv = zero : dirpv = one",
      "true ? dirpv = zero : dirpv = one",
      "inmsg = \"nomatch\" ? dirpv = zero : dirpv = one",
  };
  bc::Scratch scratch;
  for (const auto& text : cases) {
    const Expr ast = parse_expr(text);
    bc::Program prog = compile_bytecode(ast, *s, *s);
    CompiledExpr interp = compile(ast, *s, *s);

    bc::Sel sel(t.row_count());
    std::iota(sel.begin(), sel.end(), 0u);
    bc::Sel hits;
    const std::vector<const Value*> cols = t.column_ptrs();
    prog.eval_batch(cols, sel, hits, scratch);

    bc::Sel expected;
    for (std::uint32_t i = 0; i < t.row_count(); ++i) {
      if (interp.eval(t.row(i))) expected.push_back(i);
    }
    EXPECT_EQ(hits, expected) << text;

    // The dense-range entry point must agree, at any batch boundary.
    bc::Sel range_hits;
    prog.eval_range(cols, 0, static_cast<std::uint32_t>(t.row_count()),
                    range_hits, scratch);
    EXPECT_EQ(range_hits, expected) << text << " (range)";
  }
}

// eval_batch refines whatever selection it is handed, not just full tables.
TEST(Bytecode, BatchRespectsInputSelection) {
  auto s = schema();
  Table t(s);
  for (int i = 0; i < 100; ++i) {
    t.append({V(i % 2 ? "readex" : "wb"), V("I"), V("zero")});
  }
  bc::Program prog = compile_bytecode(parse_expr("inmsg = \"readex\""), *s, *s);
  bc::Scratch scratch;
  bc::Sel sel = {1, 2, 3, 50, 98, 99};
  bc::Sel hits;
  prog.eval_batch(t.column_ptrs(), sel, hits, scratch);
  EXPECT_EQ(hits, (bc::Sel{1, 3, 99}));
}

TEST(Bytecode, EngineSwitchRoundTrip) {
  const bool before = bytecode_enabled();
  set_bytecode_enabled(false);
  EXPECT_FALSE(bytecode_enabled());
  set_bytecode_enabled(true);
  EXPECT_TRUE(bytecode_enabled());
  set_bytecode_enabled(before);
}

}  // namespace
}  // namespace ccsql
