#include "relational/domain.hpp"

#include <gtest/gtest.h>

namespace ccsql {
namespace {

TEST(Domain, FromTexts) {
  Domain d("dirst", std::vector<std::string>{"I", "SI", "MESI"});
  EXPECT_EQ(d.column(), "dirst");
  EXPECT_EQ(d.size(), 3u);
  EXPECT_TRUE(d.contains(V("SI")));
  EXPECT_FALSE(d.contains(V("M")));
  EXPECT_FALSE(d.contains(null_value()));
}

TEST(Domain, FromValues) {
  Domain d("c", std::vector<Value>{V("a"), V("b")});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.contains(V("a")));
}

TEST(Domain, AddDeduplicates) {
  Domain d("c", std::vector<std::string>{"a"});
  d.add(V("a"));
  d.add(V("b"));
  d.add(V("b"));
  EXPECT_EQ(d.size(), 2u);
}

TEST(Domain, WithNullPrependsOnce) {
  Domain d("c", std::vector<std::string>{"a", "b"});
  Domain dn = d.with_null();
  EXPECT_EQ(dn.size(), 3u);
  EXPECT_TRUE(dn.values()[0].is_null());
  // Idempotent.
  Domain dn2 = dn.with_null();
  EXPECT_EQ(dn2.size(), 3u);
  // Original unchanged.
  EXPECT_EQ(d.size(), 2u);
}

TEST(Domain, ConstructionDeduplicates) {
  Domain d("c", std::vector<std::string>{"a", "b", "a"});
  EXPECT_EQ(d.size(), 2u);
}

}  // namespace
}  // namespace ccsql
