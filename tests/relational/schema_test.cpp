#include "relational/schema.hpp"

#include <gtest/gtest.h>

#include "relational/error.hpp"

namespace ccsql {
namespace {

SchemaPtr dir_schema() {
  return make_schema({{"inmsg", ColumnKind::kInput},
                      {"dirst", ColumnKind::kInput},
                      {"locmsg", ColumnKind::kOutput},
                      {"nxtdirst", ColumnKind::kOutput}});
}

TEST(Schema, BasicAccessors) {
  auto s = dir_schema();
  EXPECT_EQ(s->size(), 4u);
  EXPECT_EQ(s->column(0).name, "inmsg");
  EXPECT_EQ(s->column(2).kind, ColumnKind::kOutput);
}

TEST(Schema, FindAndIndexOf) {
  auto s = dir_schema();
  EXPECT_EQ(s->find("dirst"), std::size_t{1});
  EXPECT_FALSE(s->find("nope").has_value());
  EXPECT_EQ(s->index_of("nxtdirst"), 3u);
  EXPECT_THROW(s->index_of("nope"), BindError);
}

TEST(Schema, DuplicateNamesRejected) {
  EXPECT_THROW(Schema({{"a", ColumnKind::kInput}, {"a", ColumnKind::kInput}}),
               SchemaError);
}

TEST(Schema, ExtendedAppendsAndRejectsDuplicates) {
  auto s = dir_schema();
  auto e = s->extended({"vc", ColumnKind::kMeta});
  EXPECT_EQ(e->size(), 5u);
  EXPECT_EQ(e->column(4).name, "vc");
  EXPECT_EQ(s->size(), 4u);  // original untouched
  EXPECT_THROW(s->extended({"inmsg", ColumnKind::kMeta}), SchemaError);
}

TEST(Schema, ProjectKeepsOrderGiven) {
  auto s = dir_schema();
  auto p = s->project({"locmsg", "inmsg"});
  ASSERT_EQ(p->size(), 2u);
  EXPECT_EQ(p->column(0).name, "locmsg");
  EXPECT_EQ(p->column(1).name, "inmsg");
  EXPECT_EQ(p->column(0).kind, ColumnKind::kOutput);
}

TEST(Schema, RenamedReplacesOneColumn) {
  auto s = dir_schema();
  auto r = s->renamed("inmsg", "m1");
  EXPECT_TRUE(r->has("m1"));
  EXPECT_FALSE(r->has("inmsg"));
  EXPECT_TRUE(s->has("inmsg"));
}

TEST(Schema, SameNamesIgnoresKinds) {
  auto a = make_schema({{"x", ColumnKind::kInput}, {"y", ColumnKind::kInput}});
  auto b =
      make_schema({{"x", ColumnKind::kOutput}, {"y", ColumnKind::kMeta}});
  EXPECT_TRUE(a->same_names(*b));
  auto c = make_schema({{"y", ColumnKind::kInput}, {"x", ColumnKind::kInput}});
  EXPECT_FALSE(a->same_names(*c));
}

TEST(Schema, OfMakesAllInputs) {
  auto s = Schema::of({"a", "b"});
  EXPECT_EQ(s->column(0).kind, ColumnKind::kInput);
  EXPECT_EQ(s->column(1).kind, ColumnKind::kInput);
}

TEST(ColumnKind, ToString) {
  EXPECT_EQ(to_string(ColumnKind::kInput), "input");
  EXPECT_EQ(to_string(ColumnKind::kOutput), "output");
  EXPECT_EQ(to_string(ColumnKind::kMeta), "meta");
}

}  // namespace
}  // namespace ccsql
