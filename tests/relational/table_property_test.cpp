// Property-style tests of relational-algebra identities on pseudo-random
// tables.  Seeds are the TEST_P parameter, so every sweep instance exercises
// a different table while staying reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "relational/format.hpp"
#include "relational/table.hpp"

namespace ccsql {
namespace {

Table random_table(std::mt19937& rng, std::vector<std::string> cols,
                   std::size_t rows, int alphabet) {
  Table t(Schema::of(std::move(cols)));
  std::uniform_int_distribution<int> dist(0, alphabet - 1);
  std::vector<Value> row(t.column_count());
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& v : row) v = V("v" + std::to_string(dist(rng)));
    t.append(RowView(row));
  }
  return t;
}

class TableProperty : public ::testing::TestWithParam<unsigned> {
 protected:
  std::mt19937 rng_{GetParam()};
};

TEST_P(TableProperty, CrossCardinalityIsProduct) {
  Table a = random_table(rng_, {"a1", "a2"}, 7, 3);
  Table b = random_table(rng_, {"b1"}, 5, 3);
  Table c = Table::cross(a, b);
  EXPECT_EQ(c.row_count(), a.row_count() * b.row_count());
  EXPECT_EQ(c.column_count(), a.column_count() + b.column_count());
}

TEST_P(TableProperty, SelectThenProjectEqualsProjectThenSelect) {
  // When the predicate only touches projected columns, select and project
  // commute (as multisets).
  Table t = random_table(rng_, {"x", "y", "z"}, 40, 3);
  auto pred = [](RowView r) { return r[0] == V("v1"); };
  Table sp = t.select(pred).project({"x", "y"}, /*distinct=*/false);
  auto pred2 = [](RowView r) { return r[0] == V("v1"); };
  Table ps = t.project({"x", "y"}, /*distinct=*/false).select(pred2);
  EXPECT_TRUE(sp.set_equal(ps));
  EXPECT_EQ(sp.row_count(), ps.row_count());
}

TEST_P(TableProperty, DistinctIsIdempotent) {
  Table t = random_table(rng_, {"x", "y"}, 60, 2);  // many duplicates
  Table d1 = t.distinct();
  Table d2 = d1.distinct();
  EXPECT_EQ(d1.row_count(), d2.row_count());
  EXPECT_TRUE(d1.set_equal(t));
}

TEST_P(TableProperty, UnionDistinctIsCommutativeAndIdempotent) {
  Table a = random_table(rng_, {"x", "y"}, 20, 2);
  Table b = random_table(rng_, {"x", "y"}, 20, 2);
  Table ab = Table::union_distinct(a, b);
  Table ba = Table::union_distinct(b, a);
  EXPECT_TRUE(ab.set_equal(ba));
  EXPECT_TRUE(Table::union_distinct(a, a).set_equal(a));
}

TEST_P(TableProperty, DifferenceLaws) {
  Table a = random_table(rng_, {"x", "y"}, 25, 2);
  Table b = random_table(rng_, {"x", "y"}, 25, 2);
  // (a \ b) and b are disjoint; (a \ b) ∪ (a ∩ b-ish) rebuilds a's row set.
  Table diff = Table::difference(a, b);
  for (std::size_t i = 0; i < diff.row_count(); ++i) {
    EXPECT_FALSE(b.contains(diff.row(i)));
  }
  EXPECT_TRUE(a.contains_all(diff));
  Table self = Table::difference(a, a);
  EXPECT_EQ(self.row_count(), 0u);
  // a \ empty = a.
  Table empty(a.schema_ptr());
  EXPECT_TRUE(Table::difference(a, empty).set_equal(a));
}

TEST_P(TableProperty, ContainsAllIsReflexiveAndAntisymmetricOnSets) {
  Table a = random_table(rng_, {"x", "y"}, 30, 2);
  EXPECT_TRUE(a.contains_all(a));
  Table b = a.distinct();
  EXPECT_TRUE(a.contains_all(b));
  EXPECT_TRUE(b.contains_all(a));
  EXPECT_TRUE(a.set_equal(b));
}

TEST_P(TableProperty, SortedIsPermutationAndDeterministic) {
  Table a = random_table(rng_, {"x", "y", "z"}, 30, 4);
  Table s1 = a.sorted();
  EXPECT_EQ(s1.row_count(), a.row_count());
  EXPECT_TRUE(s1.set_equal(a));
  // Sorting a shuffled copy gives byte-identical output.
  Table shuffled(a.schema_ptr());
  std::vector<std::size_t> idx(a.row_count());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::shuffle(idx.begin(), idx.end(), rng_);
  for (std::size_t i : idx) shuffled.append(a.row(i));
  EXPECT_EQ(to_csv(shuffled.sorted()), to_csv(s1));
}

TEST_P(TableProperty, CsvRoundTripPreservesRows) {
  Table a = random_table(rng_, {"x", "y"}, 15, 3);
  Table back = from_csv(to_csv(a));
  EXPECT_EQ(back.row_count(), a.row_count());
  EXPECT_TRUE(back.set_equal(a.with_schema(back.schema_ptr())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace ccsql
