// Round-trip tests for the columnar Table storage: ColumnView access,
// copy-on-write column sharing, zero-copy head/project/hcat, width-0
// (unit-row) semantics, and the memory accounting that rides along
// (TupleKey overflow heap bytes in index_memory_bytes, snapshot catalog
// copies under kTables).
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "obs/mem.hpp"
#include "relational/database.hpp"
#include "relational/table.hpp"

namespace ccsql {
namespace {

Table small() {
  Table t(Schema::of({"m", "s"}));
  t.append({V("readex"), V("I")});
  t.append({V("readex"), V("SI")});
  t.append({V("wb"), V("MESI")});
  return t;
}

TEST(Columnar, ColumnSpansMatchAppendedRows) {
  Table t = small();
  ColumnView m = t.column(0);
  ColumnView s = t.column("s");
  ASSERT_EQ(m.size(), 3u);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(m[0], V("readex"));
  EXPECT_EQ(m[2], V("wb"));
  EXPECT_EQ(s[1], V("SI"));
  // Row and column views agree cell for cell.
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    EXPECT_EQ(t.row(r)[0], m[r]);
    EXPECT_EQ(t.row(r)[1], s[r]);
    EXPECT_EQ(t.at(r, 0), m[r]);
  }
}

TEST(Columnar, ColumnPtrsAreTheColumnData) {
  Table t = small();
  const std::vector<const Value*> ptrs = t.column_ptrs();
  ASSERT_EQ(ptrs.size(), 2u);
  EXPECT_EQ(ptrs[0], t.column(0).data());
  EXPECT_EQ(ptrs[1], t.column_data(1));
}

TEST(Columnar, CopySharesColumnsUntilWrite) {
  Table a = small();
  Table b = a;  // O(columns) copy: shared column vectors
  EXPECT_EQ(a.column_data(0), b.column_data(0));
  b.append({V("inv"), V("M")});  // COW: b clones, a untouched
  EXPECT_NE(a.column_data(0), b.column_data(0));
  EXPECT_EQ(a.row_count(), 3u);
  EXPECT_EQ(b.row_count(), 4u);
  EXPECT_EQ(a.column(0)[2], V("wb"));
  EXPECT_EQ(b.column(0)[3], V("inv"));
}

TEST(Columnar, HeadSharesColumnsAndTrims) {
  Table t = small();
  Table h = t.head(2);
  EXPECT_EQ(h.row_count(), 2u);
  // Zero-copy: head shares the column storage, only rows_ shrinks.
  EXPECT_EQ(h.column_data(0), t.column_data(0));
  EXPECT_EQ(h.column(0).size(), 2u);
  EXPECT_EQ(h.column(1)[1], V("SI"));
  // head beyond the row count is the identity.
  EXPECT_EQ(t.head(99).row_count(), 3u);
}

TEST(Columnar, ProjectSharesColumnStorage) {
  Table t = small();
  Table p = t.project({"s"}, /*distinct=*/false);
  EXPECT_EQ(p.column_count(), 1u);
  EXPECT_EQ(p.column_data(0), t.column_data(1));
}

TEST(Columnar, GatherRoundTrip) {
  Table t = small();
  const std::array<std::uint32_t, 4> sel{2, 0, 0, 1};
  Table g = t.gather(sel);
  ASSERT_EQ(g.row_count(), 4u);
  EXPECT_EQ(g.column(0)[0], V("wb"));
  EXPECT_EQ(g.column(0)[1], V("readex"));
  EXPECT_EQ(g.column(1)[3], V("SI"));
}

TEST(Columnar, HcatZipsColumns) {
  Table a = small();
  Table b(Schema::of({"x"}));
  b.append({V("1")});
  b.append({V("2")});
  b.append({V("3")});
  Table h = Table::hcat(make_schema([&] {
                          auto cols = a.schema().columns();
                          cols.push_back(b.schema().column(0));
                          return cols;
                        }()),
                        a, b);
  EXPECT_EQ(h.column_count(), 3u);
  EXPECT_EQ(h.row_count(), 3u);
  // Both sides' columns are shared, not copied.
  EXPECT_EQ(h.column_data(0), a.column_data(0));
  EXPECT_EQ(h.column_data(2), b.column_data(0));
  EXPECT_EQ(h.at(1, 2), V("2"));
}

TEST(Columnar, UnionAllDoesNotDisturbSharedSource) {
  Table a = small();
  Table keep = a;  // holds a second reference to a's columns
  Table u = Table::union_all(a, a);
  EXPECT_EQ(u.row_count(), 6u);
  EXPECT_EQ(keep.row_count(), 3u);
  EXPECT_EQ(keep.column(0)[2], V("wb"));
  EXPECT_EQ(u.column(0)[5], V("wb"));
}

// Width-0 tables carry pure row multiplicity (the old unit_rows_).
TEST(Columnar, WidthZeroRowSemantics) {
  Table u = Table::unit();
  EXPECT_EQ(u.row_count(), 1u);
  EXPECT_EQ(u.column_count(), 0u);
  Table uu = Table::union_all(u, u);
  EXPECT_EQ(uu.row_count(), 2u);
  // distinct collapses to a single unit row.
  EXPECT_EQ(uu.distinct().row_count(), 1u);
  // select counts predicate passes over empty rows.
  Table kept = uu.select([](RowView r) { return r.empty(); });
  EXPECT_EQ(kept.row_count(), 2u);
  Table none = uu.select([](RowView) { return false; });
  EXPECT_EQ(none.row_count(), 0u);
  EXPECT_EQ(uu.head(1).row_count(), 1u);
}

TEST(Columnar, RowViewIteratesColumns) {
  Table t = small();
  RowView r = t.row(1);
  std::vector<Value> vals(r.begin(), r.end());
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], V("readex"));
  EXPECT_EQ(vals[1], V("SI"));
  // Flat-buffer RowView (append path) agrees with the gather view.
  const std::vector<Value> flat{V("readex"), V("SI")};
  RowView f(flat);
  EXPECT_TRUE(std::equal(r.begin(), r.end(), f.begin(), f.end()));
}

TEST(Columnar, BuildKeysMatchesOfRow) {
  // 6 key columns force TupleKey overflow (only 4 ids pack inline).
  Table t(Schema::of({"a", "b", "c", "d", "e", "f"}));
  for (int i = 0; i < 32; ++i) {
    t.append({V("k" + std::to_string(i)), V("x"), V("y"), V("z"), V("w"),
              V("v" + std::to_string(i % 3))});
  }
  const std::vector<std::size_t> cols{0, 1, 2, 3, 4, 5};
  std::vector<TupleKey> keys(t.row_count());
  t.build_keys(cols, 0, t.row_count(), keys.data());
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    EXPECT_EQ(keys[r], TupleKey::of_row(t.row(r), cols));
    EXPECT_GT(keys[r].heap_bytes(), 0u) << "6-wide keys must overflow";
  }
}

// Satellite: index_memory_bytes must count TupleKey overflow allocations.
TEST(Columnar, IndexMemoryCountsKeyOverflow) {
  Table t(Schema::of({"a", "b", "c", "d", "e", "f"}));
  for (int i = 0; i < 64; ++i) {
    t.append({V("k" + std::to_string(i)), V("x"), V("y"), V("z"), V("w"),
              V("u")});
  }
  const std::vector<std::size_t> wide{0, 1, 2, 3, 4, 5};
  const std::vector<std::size_t> narrow{0, 1};
  const IndexMap& wide_index = t.index_on(wide);
  std::size_t overflow = 0;
  for (const auto& [key, rows] : wide_index) overflow += key.heap_bytes();
  EXPECT_GT(overflow, 0u);
  // The reported footprint includes every key's overflow heap allocation.
  std::size_t base = 0;
  for (const auto& [key, rows] : wide_index) {
    base += sizeof(key) + rows.capacity() * sizeof(std::size_t);
  }
  EXPECT_GE(Table::index_memory_bytes(wide_index), base + overflow);
  // And a narrow (inline-key) index reports no overflow component.
  const IndexMap& narrow_index = t.index_on(narrow);
  std::size_t narrow_overflow = 0;
  for (const auto& [key, rows] : narrow_index) {
    narrow_overflow += key.heap_bytes();
  }
  EXPECT_EQ(narrow_overflow, 0u);
}

// Satellite: per-generation frozen snapshot copies are tracked as kTables.
TEST(Columnar, SnapshotCopyIsAccounted) {
  using Cat = obs::MemTracker::Category;
  Database db;
  db.put("t", small());
  const std::uint64_t before =
      obs::MemTracker::global().usage(Cat::kTables).live;
  {
    Snapshot s = db.snapshot();
    const std::uint64_t during =
        obs::MemTracker::global().usage(Cat::kTables).live;
    EXPECT_GT(during, before) << "frozen catalog copy must be tracked";
    // Snapshots of one generation share the frozen copy: no double count.
    Snapshot s2 = db.snapshot();
    EXPECT_EQ(obs::MemTracker::global().usage(Cat::kTables).live, during);
  }
  // The cache inside Database still pins the frozen copy; a new generation
  // swaps it out and the old reservation drains.
  const std::uint64_t held =
      obs::MemTracker::global().usage(Cat::kTables).live;
  db.put("u", small());  // bump the generation
  {
    Snapshot s3 = db.snapshot();
  }
  (void)held;
  EXPECT_GT(obs::MemTracker::global().usage(Cat::kTables).live, before);
}

TEST(Columnar, JoinIndexFindsEveryRowOnce) {
  Table t(Schema::of({"k", "v"}));
  const int n = 20000;  // above the radix threshold
  for (int i = 0; i < n; ++i) {
    t.append({V("k" + std::to_string(i % 257)), V("v" + std::to_string(i))});
  }
  const std::vector<std::size_t> cols{0};
  const JoinIndex idx = JoinIndex::build(t, cols, /*jobs=*/4);
  EXPECT_GT(idx.partitions(), 1u);
  EXPECT_EQ(idx.key_count(), 257u);
  EXPECT_EQ(idx.row_count(), static_cast<std::size_t>(n));
  // Every row list is ascending (the determinism contract) and complete.
  std::size_t total = 0;
  for (int k = 0; k < 257; ++k) {
    const TupleKey key =
        Table::index_key(t.row(static_cast<std::size_t>(k)), cols);
    const std::vector<std::size_t>* rows = idx.find(key);
    ASSERT_NE(rows, nullptr);
    total += rows->size();
    for (std::size_t i = 1; i < rows->size(); ++i) {
      EXPECT_LT((*rows)[i - 1], (*rows)[i]);
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(n));
  EXPECT_GT(idx.memory_bytes(), 0u);
}

}  // namespace
}  // namespace ccsql
