// End-to-end: ccsql --trace writes a JSONL trace, trace_summary digests
// it.  Binary paths are injected by CMake.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <unistd.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run(const std::string& cmd) {
  RunResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    r.output += buf.data();
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string temp_trace_path() {
  return "/tmp/ccsql_trace_summary_test_" + std::to_string(getpid()) +
         ".jsonl";
}

TEST(TraceSummary, UsageWithoutArguments) {
  RunResult r = run(TRACE_SUMMARY_BIN);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TraceSummary, MissingFileFails) {
  RunResult r = run(std::string(TRACE_SUMMARY_BIN) + " /nonexistent.jsonl");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

TEST(TraceSummary, DigestsASimTrace) {
#ifdef CCSQL_TRACING_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (CCSQL_TRACING=OFF)";
#endif
  const std::string trace = temp_trace_path();
  RunResult sim = run(std::string(CCSQL_BIN) +
                      " sim V5fix --quads 2 --txns 5 --trace " + trace);
  ASSERT_EQ(sim.exit_code, 0) << sim.output;

  RunResult r = run(std::string(TRACE_SUMMARY_BIN) + " " + trace);
  std::remove(trace.c_str());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("top spans"), std::string::npos);
  EXPECT_NE(r.output.find("sim/sim.run"), std::string::npos);
  EXPECT_NE(r.output.find("counters:"), std::string::npos);
  EXPECT_NE(r.output.find("sim.msgs_sent"), std::string::npos);
  // The solver ran to generate the tables, so its spans appear too.
  EXPECT_NE(r.output.find("solver/"), std::string::npos);
}

}  // namespace
