// Compiled with CCSQL_TRACING_DISABLED (see CMakeLists): the CCSQL_*
// macros must reduce to no-ops whose argument expressions are never
// evaluated, and the spans they declare must be inert.  This exercises the
// `cmake -DCCSQL_TRACING=OFF` code path without a second build tree — the
// macros live entirely in the header.
#include <gtest/gtest.h>

#include "obs/obs.hpp"

#ifndef CCSQL_TRACING_DISABLED
#error "this test must be compiled with CCSQL_TRACING_DISABLED"
#endif

namespace {

int evaluations = 0;
int touch() {
  ++evaluations;
  return 1;
}

TEST(ObsDisabled, MacroArgumentsAreNeverEvaluated) {
  evaluations = 0;
  CCSQL_INSTANT("event", "test", ::ccsql::obs::arg("k", touch()));
  CCSQL_COUNT("counter", static_cast<std::uint64_t>(touch()));
  CCSQL_OBSERVE("histogram", touch());
  EXPECT_EQ(evaluations, 0);
  // Sanity: a direct call does evaluate (the macros removed the calls, not
  // the function).
  EXPECT_EQ(touch(), 1);
  EXPECT_EQ(evaluations, 1);
}

TEST(ObsDisabled, SpanIsInert) {
  CCSQL_SPAN(span, "name", "cat");
  EXPECT_FALSE(span.active());
  span.arg("k", 1);  // accepted, ignored
  span.end();
}

TEST(ObsDisabled, LibraryItselfStillWorks) {
  // Only the macros are compiled out; direct use of the library (sinks,
  // metrics, the summary tool) keeps working.
  ccsql::obs::Metrics m;
  m.add("direct", 2);
  EXPECT_EQ(m.counter("direct"), 2u);
}

}  // namespace
