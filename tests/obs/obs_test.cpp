// Unit tests for the ccsql::obs tracing/metrics subsystem: counter and
// histogram arithmetic, span nesting, the exact JSONL line format (golden)
// and Chrome trace_event validity (parsed back with the bundled JSON
// reader).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/json_mini.hpp"
#include "obs/mem.hpp"
#include "obs/obs.hpp"

namespace {

using namespace ccsql::obs;

/// Stores every event in an external vector (the tracer owns the sink).
class CaptureSink : public Sink {
 public:
  explicit CaptureSink(std::vector<Event>* out) : out_(out) {}
  void write(const Event& e) override { out_->push_back(e); }

 private:
  std::vector<Event>* out_;
};

// ---- metrics ----------------------------------------------------------------

TEST(Histogram, TracksCountSumMinMaxMean) {
  Histogram h;
  h.observe(3.0);
  h.observe(1.0);
  h.observe(8.0);
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 12.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, Log2Buckets) {
  Histogram h;
  h.observe(0.5);   // < 1           -> bucket 0
  h.observe(1.0);   // [1, 2)        -> bucket 1
  h.observe(3.0);   // [2, 4)        -> bucket 2
  h.observe(1024);  // [1024, 2048)  -> bucket 11
  ASSERT_EQ(h.buckets.size(), 12u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[11], 1u);
}

TEST(Histogram, PercentilesAreOrderedAndClamped) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(10.0);
  for (int i = 0; i < 10; ++i) h.observe(1000.0);
  // All mass sits in two log2 buckets; interpolation stays within them and
  // the result is clamped to the observed [min, max].
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double top = h.percentile(1.0);
  EXPECT_GE(p50, h.min);
  EXPECT_LT(p50, 16.0);  // inside the [8, 16) bucket holding the 10s
  EXPECT_GE(p95, 512.0);  // inside the [512, 1024) bucket holding the 1000s
  EXPECT_LE(p95, h.max);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, top);
  EXPECT_DOUBLE_EQ(top, h.max);
}

TEST(Histogram, PercentileOfEmptyIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Metrics, SetIsAGaugeNotACounter) {
  Metrics m;
  m.set("pool.workers", 8);
  m.set("pool.workers", 4);  // republish overwrites, never accumulates
  EXPECT_EQ(m.counter("pool.workers"), 4u);
  m.add("pool.workers", 1);  // add still works on the same slot
  EXPECT_EQ(m.counter("pool.workers"), 5u);
}

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  m.add("a");
  m.add("a", 41);
  m.add("b", 5);
  EXPECT_EQ(m.counter("a"), 42u);
  EXPECT_EQ(m.counter("b"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
  m.clear();
  EXPECT_EQ(m.counter("a"), 0u);
  EXPECT_TRUE(m.counters().empty());
}

TEST(Metrics, SummaryAndJson) {
  Metrics m;
  m.add("sim.msgs_sent", 7);
  m.observe("sim.steps", 10.0);
  m.observe("sim.steps", 30.0);
  const std::string s = m.summary();
  EXPECT_NE(s.find("sim.msgs_sent"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("mean=20"), std::string::npos);

  // to_json must be valid JSON with both sections.
  auto v = json::parse(m.to_json());
  EXPECT_EQ(v.at("counters").at("sim.msgs_sent").number, 7.0);
  EXPECT_EQ(v.at("histograms").at("sim.steps").at("count").number, 2.0);
  EXPECT_EQ(v.at("histograms").at("sim.steps").at("mean").number, 20.0);
}

// ---- memory accounting ------------------------------------------------------

TEST(MemTracker, LivePeakPerCategoryAndTotal) {
  MemTracker& t = MemTracker::global();
  t.reset();
  using Cat = MemTracker::Category;
  t.add(Cat::kTables, 100);
  t.add(Cat::kIndexes, 50);
  EXPECT_EQ(t.usage(Cat::kTables).live, 100u);
  EXPECT_EQ(t.usage(Cat::kIndexes).live, 50u);
  EXPECT_EQ(t.total().live, 150u);
  EXPECT_EQ(t.total().peak, 150u);
  t.release(Cat::kTables, 100);
  EXPECT_EQ(t.usage(Cat::kTables).live, 0u);
  EXPECT_EQ(t.usage(Cat::kTables).peak, 100u);  // high-water persists
  EXPECT_EQ(t.total().live, 50u);
  EXPECT_EQ(t.total().peak, 150u);
  t.reset();
}

TEST(MemTracker, ReservationRaiiCopyAndMove) {
  MemTracker& t = MemTracker::global();
  t.reset();
  using Cat = MemTracker::Category;
  {
    MemReservation a(Cat::kHashBuilds, 64);
    EXPECT_EQ(t.usage(Cat::kHashBuilds).live, 64u);
    MemReservation b = a;  // a copy owns its own buffer: registers again
    EXPECT_EQ(t.usage(Cat::kHashBuilds).live, 128u);
    MemReservation c = std::move(b);  // a move only transfers ownership
    EXPECT_EQ(t.usage(Cat::kHashBuilds).live, 128u);
    EXPECT_EQ(c.bytes(), 64u);
  }
  EXPECT_EQ(t.usage(Cat::kHashBuilds).live, 0u);
  EXPECT_EQ(t.usage(Cat::kHashBuilds).peak, 128u);
  t.reset();
}

TEST(MemTracker, PublishWritesGaugesAndSummaryFormats) {
  MemTracker& t = MemTracker::global();
  t.reset();
  t.add(MemTracker::Category::kTables, 2048);
  Metrics m;
  t.publish(m);
  EXPECT_EQ(m.counter("mem.tables_live_bytes"), 2048u);
  EXPECT_EQ(m.counter("mem.total_peak_bytes"), 2048u);
  t.publish(m);  // gauges overwrite on republish
  EXPECT_EQ(m.counter("mem.tables_live_bytes"), 2048u);
  EXPECT_NE(t.summary().find("tables"), std::string::npos);
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(3 << 20), "3.0 MiB");
  t.reset();
}

// ---- spans ------------------------------------------------------------------

TEST(Tracer, SpanNestingDepths) {
  std::vector<Event> events;
  Tracer t;
  t.set_sink(std::make_unique<CaptureSink>(&events));
  {
    Span outer = t.span("outer", "test");
    {
      Span inner = t.span("inner", "test");
      inner.arg("k", 1);
    }
    t.instant("tick", "test");
  }
  t.finish();

  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].phase, Phase::kBegin);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].phase, Phase::kEnd);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 1);
  ASSERT_EQ(events[2].args.size(), 1u);
  EXPECT_EQ(events[2].args[0].key, "k");
  EXPECT_EQ(events[2].args[0].value, "1");
  EXPECT_EQ(events[3].phase, Phase::kInstant);
  EXPECT_EQ(events[3].depth, 1);  // inside "outer"
  EXPECT_EQ(events[4].phase, Phase::kEnd);
  EXPECT_EQ(events[4].name, "outer");
  EXPECT_EQ(events[4].depth, 0);
}

TEST(Tracer, SpanInactiveWithoutSink) {
  Tracer t;
  Span s = t.span("quiet", "test");
  EXPECT_FALSE(s.active());
  s.arg("ignored", 1);  // must not crash
}

TEST(Tracer, FinishDumpsMetricsAsCounterEvents) {
  std::vector<Event> events;
  Tracer t;
  t.set_sink(std::make_unique<CaptureSink>(&events));
  t.count("hits", 3);
  t.observe("latency", 4.0);
  t.finish();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, Phase::kCounter);
  EXPECT_EQ(events[0].name, "hits");
  EXPECT_EQ(events[0].category, "metrics");
  ASSERT_FALSE(events[0].args.empty());
  EXPECT_EQ(events[0].args[0].key, "value");
  EXPECT_EQ(events[0].args[0].value, "3");
  EXPECT_EQ(events[1].name, "latency");
}

TEST(Tracer, CountIsIgnoredWhenFullyDisabled) {
  Tracer t;  // no sink, metrics off
  t.count("hits", 3);
  EXPECT_EQ(t.metrics().counter("hits"), 0u);
  t.enable_metrics();
  t.count("hits", 3);
  EXPECT_EQ(t.metrics().counter("hits"), 3u);
}

// ---- sink formats -----------------------------------------------------------

TEST(JsonlSink, GoldenLines) {
  std::ostringstream os;
  JsonlSink sink(os);

  Event begin;
  begin.phase = Phase::kBegin;
  begin.name = "query.select";
  begin.category = "relational";
  begin.ts_micros = 42;
  begin.depth = 1;
  begin.args.push_back(arg("table", "D"));
  begin.args.push_back(arg("rows", std::uint64_t{331}));
  sink.write(begin);

  Event end;
  end.phase = Phase::kEnd;
  end.name = "query.select";
  end.category = "relational";
  end.ts_micros = 49;
  end.dur_micros = 7;
  end.depth = 1;
  sink.write(end);

  Event instant;
  instant.phase = Phase::kInstant;
  instant.name = "a\"b";  // forces escaping
  instant.category = "sim";
  instant.ts_micros = 50;
  sink.write(instant);

  EXPECT_EQ(os.str(),
            "{\"ph\":\"B\",\"ts\":42,\"name\":\"query.select\","
            "\"cat\":\"relational\",\"depth\":1,"
            "\"args\":{\"table\":\"D\",\"rows\":331}}\n"
            "{\"ph\":\"E\",\"ts\":49,\"dur\":7,\"name\":\"query.select\","
            "\"cat\":\"relational\",\"depth\":1}\n"
            "{\"ph\":\"i\",\"ts\":50,\"name\":\"a\\\"b\",\"cat\":\"sim\","
            "\"depth\":0}\n");

  // Every line must parse as standalone JSON.
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto v = json::parse(line);
    EXPECT_TRUE(v.has("ph"));
    EXPECT_TRUE(v.has("ts"));
    EXPECT_TRUE(v.has("name"));
  }
}

TEST(ChromeSink, ProducesValidTraceEventJson) {
  std::ostringstream os;
  {
    Tracer t;
    t.set_sink(std::make_unique<ChromeSink>(os));
    {
      Span s = t.span("vcg.analysis", "checks");
      t.instant("sim.deadlock", "sim", {arg("t", 9)});
    }
    t.count("vcg.compositions", 12);
    t.finish();
  }

  auto v = json::parse(os.str());
  ASSERT_EQ(v.kind, json::JValue::Kind::kArray);
  ASSERT_EQ(v.arr.size(), 4u);  // B, i, E, C
  for (const auto& e : v.arr) {
    EXPECT_TRUE(e.has("ph"));
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
  }
  EXPECT_EQ(v.arr[0].at("ph").str, "B");
  EXPECT_EQ(v.arr[0].at("name").str, "vcg.analysis");
  EXPECT_EQ(v.arr[1].at("ph").str, "i");
  EXPECT_EQ(v.arr[1].at("s").str, "t");  // instant scope
  EXPECT_EQ(v.arr[2].at("ph").str, "E");
  EXPECT_EQ(v.arr[3].at("ph").str, "C");
  EXPECT_EQ(v.arr[3].at("args").at("value").number, 12.0);
}

TEST(ChromeSink, EmptyTraceIsAnEmptyArray) {
  std::ostringstream os;
  ChromeSink sink(os);
  sink.finish();
  auto v = json::parse(os.str());
  EXPECT_EQ(v.kind, json::JValue::Kind::kArray);
  EXPECT_TRUE(v.arr.empty());
}

TEST(TextSink, IndentsByDepth) {
  std::ostringstream os;
  TextSink sink(os);
  Event e;
  e.phase = Phase::kBegin;
  e.name = "inner";
  e.category = "test";
  e.ts_micros = 5;
  e.depth = 2;
  sink.write(e);
  EXPECT_EQ(os.str(), "    > test/inner @5us\n");
}

// ---- format selection -------------------------------------------------------

TEST(Format, ParseAndPathInference) {
  EXPECT_EQ(parse_format("text"), Format::kText);
  EXPECT_EQ(parse_format("jsonl"), Format::kJsonl);
  EXPECT_EQ(parse_format("chrome"), Format::kChrome);
  EXPECT_FALSE(parse_format("yaml").has_value());

  EXPECT_EQ(format_for_path("trace.jsonl"), Format::kJsonl);
  EXPECT_EQ(format_for_path("trace.json"), Format::kChrome);
  EXPECT_EQ(format_for_path("trace.txt"), Format::kText);
}

}  // namespace
