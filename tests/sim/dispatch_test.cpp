#include "sim/dispatch.hpp"

#include <gtest/gtest.h>

#include "protocol/asura/asura.hpp"
#include "sim/machine.hpp"
#include "sim/table_index.hpp"

namespace ccsql::sim {
namespace {

const ProtocolSpec& spec() {
  static const std::unique_ptr<ProtocolSpec> s = asura::make_asura();
  return *s;
}

/// Dense dispatch must agree with TableIndex on every row of a controller
/// table: same hit rows, same cell values through column handles.
TEST(ControllerDispatch, DenseMatchesTableIndexOnEveryRow) {
  const Table& cc = spec().database().catalog().get(asura::kCache);
  const std::vector<std::string> keys = {"inmsg", "cst"};
  ControllerDispatch dense(cc, keys, ControllerDispatch::Mode::kDense);
  ControllerDispatch hashed(cc, keys, ControllerDispatch::Mode::kHashed);
  ASSERT_TRUE(dense.dense());
  ASSERT_FALSE(hashed.dense());

  TableIndex oracle(cc, keys);
  const auto d_nxt = dense.col("nxtcst");
  const auto d_out = dense.col("outmsg");
  const auto h_nxt = hashed.col("nxtcst");
  const auto h_out = hashed.col("outmsg");

  const ColumnView in_col = cc.column("inmsg");
  const ColumnView st_col = cc.column("cst");
  for (std::size_t r = 0; r < cc.row_count(); ++r) {
    const Value in = in_col[r];
    const Value st = st_col[r];
    const auto dr = dense.find({in, st});
    const auto hr = hashed.find({in, st});
    const auto orc = oracle.find({in, st});
    ASSERT_TRUE(dr.has_value());
    ASSERT_TRUE(hr.has_value());
    ASSERT_TRUE(orc.has_value());
    EXPECT_EQ(*dr, *orc);
    EXPECT_EQ(*hr, *orc);
    EXPECT_EQ(dense.at(*dr, d_nxt), hashed.at(*hr, h_nxt));
    EXPECT_EQ(dense.at(*dr, d_out), hashed.at(*hr, h_out));
  }
}

TEST(ControllerDispatch, MissesAgree) {
  const Table& cc = spec().database().catalog().get(asura::kCache);
  ControllerDispatch dense(cc, {"inmsg", "cst"},
                           ControllerDispatch::Mode::kDense);
  TableIndex oracle(cc, {"inmsg", "cst"});
  // A symbol that never appears in the key columns, and a legal symbol in
  // the wrong column.
  const Value nosuch = Symbol::intern("definitely-not-a-message");
  const Value st = Symbol::intern("I");
  EXPECT_FALSE(dense.find({nosuch, st}).has_value());
  EXPECT_FALSE(oracle.find({nosuch, st}).has_value());
  EXPECT_FALSE(dense.find({st, nosuch}).has_value());
  EXPECT_FALSE(oracle.find({st, nosuch}).has_value());
}

TEST(CompiledTables, DenseIsSharedAcrossMachines) {
  auto tables =
      CompiledTables::compile(spec(), ControllerDispatch::Mode::kDense);
  SimConfig cfg;
  cfg.n_quads = 2;
  cfg.n_addrs = 4;
  cfg.channel_capacity = 2;
  cfg.transactions_per_node = 10;
  Machine a(spec(), spec().assignment(asura::kAssignV5Fix), cfg, tables);
  Machine b(spec(), spec().assignment(asura::kAssignV5Fix), cfg, tables);
  a.enable_workload();
  b.enable_workload();
  const SimResult ra = a.run();
  const SimResult rb = b.run();
  EXPECT_TRUE(ra.healthy());
  EXPECT_TRUE(rb.healthy());
  // Same compiled tables, same config, same seed: identical trajectories.
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

/// The differential replay at machine level: a dense-dispatch run and a
/// hashed (TableIndex) run of the same configuration must make identical
/// decisions — same final state fingerprint, same event counts, same cycle
/// charges.  Only the dispatch-internal accounting (table hit counters are
/// attributed per mode) and wall-clock rates may differ.
void differential_replay(Workload wl, unsigned seed) {
  SimConfig cfg;
  cfg.n_quads = 4;
  cfg.n_addrs = 8;
  cfg.channel_capacity = 2;
  cfg.transactions_per_node = 40;
  cfg.workload = wl;
  cfg.seed = seed;

  cfg.dense_dispatch = true;
  Machine dense(spec(), spec().assignment(asura::kAssignV5Fix), cfg);
  cfg.dense_dispatch = false;
  Machine hashed(spec(), spec().assignment(asura::kAssignV5Fix), cfg);

  dense.set_memory_latency(3);
  hashed.set_memory_latency(3);
  dense.enable_workload();
  hashed.enable_workload();

  const SimResult rd = dense.run();
  const SimResult rh = hashed.run();

  ASSERT_TRUE(rd.healthy()) << "dense run unhealthy (wl="
                            << workload_name(wl) << ")";
  ASSERT_TRUE(rh.healthy()) << "hashed run unhealthy (wl="
                            << workload_name(wl) << ")";
  EXPECT_EQ(dense.fingerprint(), hashed.fingerprint());
  EXPECT_EQ(rd.steps, rh.steps);
  EXPECT_EQ(rd.transactions_done, rh.transactions_done);
  EXPECT_EQ(rd.counters.msgs_sent, rh.counters.msgs_sent);
  EXPECT_EQ(rd.counters.msgs_recv, rh.counters.msgs_recv);
  EXPECT_EQ(rd.counters.ops_injected, rh.counters.ops_injected);
  EXPECT_EQ(rd.counters.send_stalls, rh.counters.send_stalls);
  EXPECT_EQ(rd.counters.cache_hits, rh.counters.cache_hits);
  EXPECT_EQ(rd.counters.cycles, rh.counters.cycles);
  EXPECT_EQ(rd.counters.mem_cycles, rh.counters.mem_cycles);
  EXPECT_EQ(rd.counters.bus_cycles, rh.counters.bus_cycles);
  EXPECT_EQ(rd.counters.c2c_cycles, rh.counters.c2c_cycles);
  EXPECT_EQ(rd.counters.table_hits, rh.counters.table_hits);
  EXPECT_EQ(rd.counters.table_misses, rh.counters.table_misses);
  EXPECT_EQ(rd.counters.per_vc_sent, rh.counters.per_vc_sent);
}

TEST(DispatchDifferential, RandomWorkloadReplays) {
  differential_replay(Workload::kRandom, 7);
  differential_replay(Workload::kRandom, 1234);
}

TEST(DispatchDifferential, ShapedWorkloadsReplay) {
  differential_replay(Workload::kLock, 7);
  differential_replay(Workload::kProducerConsumer, 7);
  differential_replay(Workload::kFalseSharing, 7);
  differential_replay(Workload::kStreaming, 7);
}

}  // namespace
}  // namespace ccsql::sim
