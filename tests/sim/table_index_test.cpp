#include "sim/table_index.hpp"

#include <gtest/gtest.h>

#include "relational/error.hpp"

namespace ccsql::sim {
namespace {

Table sample() {
  Table t(Schema::of({"inmsg", "st", "out"}));
  t.append({V("req"), V("idle"), V("grant")});
  t.append({V("req"), V("busy"), V("retry")});
  t.append({V("resp"), V("busy"), V("done")});
  return t;
}

TEST(TableIndex, FindsUniqueRow) {
  Table t = sample();
  TableIndex idx(t, {"inmsg", "st"});
  auto row = idx.find({V("req"), V("busy")});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(idx.at(*row, "out"), V("retry"));
  EXPECT_FALSE(idx.find({V("resp"), V("idle")}).has_value());
}

TEST(TableIndex, SingleColumnKey) {
  Table t(Schema::of({"inmsg", "out"}));
  t.append({V("a"), V("x")});
  t.append({V("b"), V("y")});
  TableIndex idx(t, {"inmsg"});
  EXPECT_TRUE(idx.find({V("a")}).has_value());
}

TEST(TableIndex, DuplicateKeyRejected) {
  Table t(Schema::of({"inmsg", "out"}));
  t.append({V("a"), V("x")});
  t.append({V("a"), V("y")});
  EXPECT_THROW(TableIndex(t, {"inmsg"}), Error);
}

TEST(TableIndex, UnknownKeyColumnRejected) {
  Table t = sample();
  EXPECT_THROW(TableIndex(t, {"nope"}), BindError);
}

TEST(TableIndex, NullValuesInKeysWork) {
  Table t(Schema::of({"inmsg", "out"}));
  t.append({null_value(), V("x")});
  t.append({V("a"), V("y")});
  TableIndex idx(t, {"inmsg"});
  auto row = idx.find({null_value()});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(idx.at(*row, "out"), V("x"));
}

}  // namespace
}  // namespace ccsql::sim
